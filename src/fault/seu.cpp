#include "fault/seu.hpp"

#include <random>

#include "hdlsim/gate_sim.hpp"
#include "kernel/vcd.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"

namespace scflow::fault {

namespace {

using hdlsim::GateSim;

struct Ports {
  std::vector<GateSim::PortRef> in, out;
};

Ports resolve_ports(const nl::Netlist& n) {
  Ports p;
  for (const nl::PortBits& pb : n.inputs()) p.in.push_back(&pb);
  for (const nl::PortBits& pb : n.outputs()) p.out.push_back(&pb);
  return p;
}

void drive(GateSim& sim, const Ports& p, const std::vector<std::uint64_t>& in) {
  for (std::size_t i = 0; i < p.in.size(); ++i) sim.set_input(p.in[i], in[i]);
  sim.step();
}

bool hard_diff(const GateSim::PortSample& a, const GateSim::PortSample& b) {
  return (a.known & b.known & (a.value ^ b.value)) != 0;
}

}  // namespace

void SeuResult::record_into(obs::Registry& reg, std::string_view prefix) const {
  const std::string p(prefix);
  reg.set_counter(p + ".trials", trials.size());
  reg.set_counter(p + ".injected", injected);
  reg.set_counter(p + ".skipped_x", skipped_x);
  reg.set_counter(p + ".diverged", diverged);
  reg.set_counter(p + ".recovered", recovered);
  reg.set_counter(p + ".silent", silent);
  reg.set_gauge(p + ".divergence_pct",
                injected == 0 ? 0.0
                              : 100.0 * static_cast<double>(diverged) /
                                    static_cast<double>(injected));
}

SeuResult run_seu_campaign(const nl::Netlist& n, const SeuOptions& options,
                           obs::Session* session) {
  SeuResult result;
  result.design = n.name();
  for (const nl::PortBits& p : n.outputs()) result.observe_ports.push_back(p.name);

  const Ports ports = resolve_ports(n);
  GateSim::Options sim_opt;
  sim_opt.x_initial_flops = options.x_initial_flops;

  const std::size_t total_cycles =
      static_cast<std::size_t>(options.warmup_cycles) +
      static_cast<std::size_t>(options.functional_cycles);

  // Deterministic stimulus: one random word per input port per cycle.
  std::mt19937_64 rng(options.seed);
  std::vector<std::vector<std::uint64_t>> program(total_cycles);
  for (auto& cyc : program) {
    cyc.resize(ports.in.size());
    for (auto& v : cyc) v = rng();
  }

  // Golden run, responses captured after every cycle.
  const std::size_t n_ports = ports.out.size();
  std::vector<GateSim::PortSample> good(total_cycles * n_ports);
  std::size_t flop_count = 0;
  {
    GateSim sim(n, sim_opt);
    flop_count = sim.flop_count();
    for (std::size_t c = 0; c < total_cycles; ++c) {
      drive(sim, ports, program[c]);
      for (std::size_t p = 0; p < n_ports; ++p)
        good[c * n_ports + p] = sim.output_sample(ports.out[p]);
    }
  }

  if (flop_count == 0 || options.functional_cycles <= 0 || options.injections <= 0) {
    if (session != nullptr) {
      const std::string prefix =
          options.metric_prefix.empty() ? "seu." + n.name() : options.metric_prefix;
      result.record_into(session->registry, prefix);
    }
    return result;
  }

  // Trial schedule drawn from its own stream so changing the trial count
  // never perturbs the stimulus.
  std::mt19937_64 trial_rng(options.seed ^ 0x791a15c8ed01e0ull);
  result.trials.resize(static_cast<std::size_t>(options.injections));
  for (SeuTrial& t : result.trials) {
    t.flop = static_cast<std::size_t>(trial_rng() % flop_count);
    t.cycle = static_cast<std::uint64_t>(options.warmup_cycles) +
              trial_rng() % static_cast<std::uint64_t>(options.functional_cycles);
  }

  std::int64_t first_divergent_trial = -1;
  for (std::size_t ti = 0; ti < result.trials.size(); ++ti) {
    SeuTrial& t = result.trials[ti];
    GateSim sim(n, sim_opt);
    std::uint64_t last_mismatch = 0;
    for (std::size_t c = 0; c < total_cycles; ++c) {
      drive(sim, ports, program[c]);
      if (c == t.cycle) {
        t.injected = sim.flip_flop(t.flop);
        if (!t.injected) break;  // state was X/Z: nothing to upset
        sim.settle();            // let the flip propagate to this cycle's outputs
      }
      if (c < t.cycle) continue;
      for (std::size_t p = 0; p < n_ports; ++p) {
        if (hard_diff(good[c * n_ports + p], sim.output_sample(ports.out[p]))) {
          if (!t.diverged) {
            t.diverged = true;
            t.first_divergent_cycle = c;
            t.first_divergent_port = static_cast<std::uint32_t>(p);
          }
          last_mismatch = c;
        }
      }
    }
    if (t.diverged) {
      t.recovered = last_mismatch + static_cast<std::uint64_t>(options.recovery_window) <
                    total_cycles;
      if (first_divergent_trial < 0) first_divergent_trial = static_cast<std::int64_t>(ti);
    }
  }

  for (const SeuTrial& t : result.trials) {
    if (!t.injected) {
      ++result.skipped_x;
      continue;
    }
    ++result.injected;
    if (t.diverged) {
      ++result.diverged;
      if (t.recovered) ++result.recovered;
    } else {
      ++result.silent;
    }
  }

  // Waveform triage: re-run the first divergent trial with full response
  // capture and dump good vs faulty (plus known masks) per observe port.
  if (first_divergent_trial >= 0 && !options.vcd_path.empty()) {
    const SeuTrial& t = result.trials[static_cast<std::size_t>(first_divergent_trial)];
    result.first_divergent_net = result.observe_ports[t.first_divergent_port];
    minisc::VcdFile vcd(options.vcd_path);
    std::vector<std::size_t> v_good(n_ports), v_bad(n_ports), v_gk(n_ports), v_bk(n_ports);
    for (std::size_t p = 0; p < n_ports; ++p) {
      const int w = static_cast<int>(ports.out[p]->nets.size());
      const std::string& name = result.observe_ports[p];
      v_good[p] = vcd.add_var(name + ".good", w);
      v_bad[p] = vcd.add_var(name + ".faulty", w);
      v_gk[p] = vcd.add_var(name + ".good_known", w);
      v_bk[p] = vcd.add_var(name + ".faulty_known", w);
    }
    GateSim sim(n, sim_opt);
    for (std::size_t c = 0; c < total_cycles; ++c) {
      drive(sim, ports, program[c]);
      if (c == t.cycle) {
        sim.flip_flop(t.flop);
        sim.settle();
      }
      vcd.time(c);
      for (std::size_t p = 0; p < n_ports; ++p) {
        const GateSim::PortSample& g = good[c * n_ports + p];
        const GateSim::PortSample f = sim.output_sample(ports.out[p]);
        vcd.change(v_good[p], g.value);
        vcd.change(v_bad[p], f.value);
        vcd.change(v_gk[p], g.known);
        vcd.change(v_bk[p], f.known);
      }
    }
    if (vcd.good()) result.vcd_written = options.vcd_path;
  }

  if (session != nullptr) {
    const std::string prefix =
        options.metric_prefix.empty() ? "seu." + n.name() : options.metric_prefix;
    result.record_into(session->registry, prefix);
  }
  return result;
}

}  // namespace scflow::fault
