// Transient single-event-upset (SEU) injection: flip one committed flop
// state bit at a seeded cycle, then watch the machine's outputs against a
// golden run of the same stimulus.  Classifies each trial as silent
// (masked), diverged, or diverged-then-recovered, and auto-dumps a VCD of
// the first divergent trial (good vs faulty response of every observe
// port) through minisc::VcdFile for waveform triage.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace scflow::obs {
class Registry;
struct Session;
}  // namespace scflow::obs

namespace scflow::fault {

struct SeuOptions {
  std::uint64_t seed = 0x5e0bf11c5ull;
  /// Cycles simulated before the injection window opens (state warm-up).
  int warmup_cycles = 8;
  /// Observed cycles after warm-up; injections land inside this window.
  int functional_cycles = 64;
  /// Number of seeded (flop, cycle) upset trials.
  int injections = 32;
  /// A diverged trial counts as recovered when its last `recovery_window`
  /// observed cycles are mismatch-free (the upset washed out of the state).
  int recovery_window = 8;
  bool x_initial_flops = false;
  /// When non-empty, the first divergent trial re-runs with full response
  /// capture and writes `<port>.good` / `<port>.faulty` (plus `.known`
  /// companions) waveforms here.
  std::string vcd_path;
  /// Metric prefix for session recording; empty = "seu.<netlist name>".
  std::string metric_prefix;
};

struct SeuTrial {
  std::size_t flop = 0;          ///< flattened flop index (scan-chain order)
  std::uint64_t cycle = 0;       ///< injection cycle (absolute program cycle)
  bool injected = false;         ///< flip happened (state was 0/1, not X/Z)
  bool diverged = false;         ///< some hard output mismatch after injection
  bool recovered = false;        ///< diverged, then clean for recovery_window
  std::uint64_t first_divergent_cycle = 0;
  std::uint32_t first_divergent_port = 0;  ///< index into SeuResult::observe_ports
};

struct SeuResult {
  std::string design;
  std::vector<std::string> observe_ports;
  std::vector<SeuTrial> trials;

  std::size_t injected = 0;
  std::size_t skipped_x = 0;   ///< flip refused: target state was X/Z
  std::size_t diverged = 0;
  std::size_t recovered = 0;
  std::size_t silent = 0;      ///< injected but never observable (masked)
  std::string vcd_written;     ///< path of the divergence dump, if any
  std::string first_divergent_net;  ///< output port name of the first diff

  void record_into(scflow::obs::Registry& reg, std::string_view prefix) const;
};

/// Runs `options.injections` seeded upset trials against @p n.  Fully
/// deterministic: the stimulus and the (flop, cycle) schedule are pure
/// functions of (netlist ports, options.seed).
SeuResult run_seu_campaign(const nl::Netlist& n, const SeuOptions& options = {},
                           scflow::obs::Session* session = nullptr);

}  // namespace scflow::fault
