// Concurrent stuck-at fault-simulation campaigns: one good-machine
// reference run, then one independently simulated faulty machine per
// fault, fanned across a hdlsim::BatchRunner (dynamic ticket claiming,
// per-fault wall budgets) and compared at every observe point (primary
// outputs every cycle, scan_out during shifts).
//
// Determinism: the stimulus program is a pure function of (netlist ports,
// options.seed); every fault writes only its own result slot; aggregates
// are derived from the slots.  With the wall budgets off, a campaign's
// CampaignResult is bit-identical for any thread count.  Wall budgets
// (per-fault and the campaign watchdog) trade that determinism for
// guaranteed termination: expired faults are classified
// FaultClass::kUndetectedBudget instead of stalling the run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "hdlsim/compile.hpp"
#include "netlist/netlist.hpp"

namespace scflow::obs {
class Registry;
struct Session;
}  // namespace scflow::obs

namespace scflow::fault {

struct CampaignOptions {
  std::uint64_t seed = 0xfa0175eedc0deull;
  /// Scan load/capture rounds (scan-ported netlists only): each pattern
  /// shifts a random state through the whole chain (observing scan_out on
  /// every shift cycle), then captures with random primary inputs.
  int scan_patterns = 2;
  int capture_cycles = 2;
  /// Trailing functional phase (all netlists): random primary inputs each
  /// cycle, primary outputs observed each cycle.
  int functional_cycles = 48;
  /// Cap on simulated faults (deterministic even stride over the collapsed
  /// list; 0 = simulate all).  Never silent: CampaignResult keeps both the
  /// population and the simulated count.
  std::size_t max_faults = 0;
  /// Per-fault simulated-cycle budget (0 = the full stimulus program).
  std::uint64_t cycle_budget = 0;
  /// Per-fault wall budget in ns (0 = off).  Enforced cooperatively via
  /// the BatchRunner job deadline; expired faults classify as
  /// kUndetectedBudget.  Nondeterministic by nature — leave off when
  /// comparing campaign results bit-for-bit.
  std::uint64_t fault_wall_budget_ns = 0;
  /// Campaign watchdog in ns (0 = off): once the whole campaign exceeds
  /// this wall budget, remaining faults are classified kUndetectedBudget
  /// without being simulated, so a pathological design degrades to a
  /// partial report instead of a hang.
  std::uint64_t campaign_wall_budget_ns = 0;
  /// BatchRunner lane count (1 = sequential, 0 = one per hardware thread).
  unsigned threads = 1;
  /// Power up flops to X (gate-level style).  Scan patterns still fully
  /// initialise the state, which is exactly what scan buys; without scan
  /// an uninitialisable faulty machine shows up as kOscillating.
  bool x_initial_flops = false;
  /// Observe cycles with soft divergence (good 0/1, faulty X) needed to
  /// classify a never-hard-detected fault as kOscillating.
  int oscillation_threshold = 4;
  /// Drive scan ports when the netlist has them (off: treat as functional
  /// inputs tied low — the scan-stripped baseline).
  bool use_scan = true;
  /// Metric prefix for record_into / session recording; empty = use
  /// "fault.<netlist name>".
  std::string metric_prefix;
  /// Engine for the good-machine reference run.  kCompiled runs the
  /// bit-parallel four-state CompiledSim (bit-exact with the interpreter
  /// on broadcast stimulus — see test_compiled_sim) and records its
  /// "compiled.<design>.ops/.words/.cycles" counters into the session.
  /// With engine == kEventDriven, faulty machines always run the
  /// interpreter (fault injection is an event-level hook).
  hdlsim::Backend reference_backend = hdlsim::Backend::kInterpreted;
  /// Faulty-machine engine.  kPpsfp batches up to 64 faults per compiled
  /// bit-parallel run (one stuck-at overlay lane each, dropped at first
  /// detection); faults the two-state screen can't prove exact — X/
  /// oscillation-sensitive programs, macro bus nets, x_initial_flops,
  /// cyclic netlists — fall back to the event-driven overlay per fault,
  /// so classifications are bit-identical with kEventDriven either way
  /// (the differential harness in tests/test_ppsfp.cpp holds this).
  enum class Engine { kEventDriven, kPpsfp };
  Engine engine = Engine::kEventDriven;
};

/// The campaign stimulus program, materialised the same way run_campaign
/// builds it: one value per input port (indexed like Netlist::inputs())
/// per cycle, scan shifts first when used.  Exposed so differential tests
/// can drive an arbitrary engine with the exact campaign stimulus.
std::vector<std::vector<std::uint64_t>> build_campaign_stimulus(
    const nl::Netlist& n, const CampaignOptions& options, bool* scan_used = nullptr);

struct FaultResult {
  Fault fault;
  FaultClass klass = FaultClass::kUndetected;
  std::uint64_t detect_cycle = 0;  ///< observe cycle of the first hard diff
  std::uint32_t detect_port = 0;   ///< index into CampaignResult::observe_ports
  std::uint64_t cycles = 0;        ///< faulty cycles actually simulated

  friend bool operator==(const FaultResult& a, const FaultResult& b) {
    return a.fault == b.fault && a.klass == b.klass && a.detect_cycle == b.detect_cycle &&
           a.detect_port == b.detect_port && a.cycles == b.cycles;
  }
};

struct CampaignResult {
  std::string design;
  FaultListStats list;            ///< enumeration bookkeeping
  std::size_t population = 0;     ///< collapsed fault-list size
  bool scan_used = false;
  std::uint64_t stimulus_cycles = 0;  ///< program length (= good-run cycles)
  std::vector<std::string> observe_ports;
  std::vector<FaultResult> faults;  ///< simulated faults, list order

  std::size_t detected = 0;
  std::size_t undetected = 0;
  std::size_t undetected_budget = 0;
  std::size_t oscillating = 0;
  std::uint64_t faulty_cycles_total = 0;
  /// PPSFP engine accounting (0 under kEventDriven): faults detected —
  /// and therefore dropped — on the bit-parallel path, and faults that
  /// fell back to the event-driven overlay.
  std::size_t ppsfp_dropped = 0;
  std::size_t ppsfp_fallback = 0;

  [[nodiscard]] std::size_t simulated() const { return faults.size(); }
  /// Stuck-at coverage over the simulated faults, in percent.
  [[nodiscard]] double coverage_pct() const {
    return faults.empty() ? 0.0 : 100.0 * static_cast<double>(detected) /
                                      static_cast<double>(faults.size());
  }

  /// Records counters ("<prefix>.detected", ...) and the coverage gauge
  /// ("<prefix>.coverage_pct") into the unified registry.
  void record_into(scflow::obs::Registry& reg, std::string_view prefix) const;
};

/// Enumerates (collapsed, optionally sampled per options.max_faults) and
/// simulates the stuck-at faults of @p n.  With @p session, records
/// metrics and the per-fault batch timeline under the metric prefix.
CampaignResult run_campaign(const nl::Netlist& n, const CampaignOptions& options = {},
                            scflow::obs::Session* session = nullptr);

/// Same, over a caller-supplied fault list (already collapsed/sampled) —
/// the flow uses this to compare scan vs no-scan variants of one design
/// over the identical fault universe.
CampaignResult run_campaign(const nl::Netlist& n, const std::vector<Fault>& faults,
                            const CampaignOptions& options = {},
                            scflow::obs::Session* session = nullptr);

}  // namespace scflow::fault
