#include "fault/ppsfp.hpp"

#include <bit>
#include <unordered_set>

#include "core/wordpack.hpp"
#include "hdlsim/compiled_sim.hpp"

namespace scflow::fault {

namespace {

using hdlsim::CompiledProgram;
using hdlsim::CompiledSim;
using hdlsim::GateSim;

/// Slots coupled to a macro's port buses: address/enable/data of every
/// read port plus the write buses.  A stuck-at on one of these nets
/// interacts with the interpreted macro models' own dirty/skip rules, so
/// those faults keep the event-driven overlay (the "RAM fallback paths").
std::unordered_set<std::uint32_t> macro_bus_slots(const CompiledProgram& prog) {
  std::unordered_set<std::uint32_t> slots;
  const auto add = [&](const std::vector<std::uint32_t>& v) {
    slots.insert(v.begin(), v.end());
  };
  for (const hdlsim::CompiledMacro& cm : prog.macros) {
    add(cm.wen_slots);
    add(cm.waddr_slots);
    add(cm.wdata_slots);
  }
  for (const hdlsim::CompiledMacroPort& mp : prog.macro_ports) {
    add(mp.addr_slots);
    add(mp.en_slots);
    add(mp.data_slots);
  }
  return slots;
}

}  // namespace

PpsfpPlan ppsfp_plan(const nl::Netlist& n, const CompiledProgram& prog,
                     const std::vector<std::vector<std::uint64_t>>& stimulus,
                     const std::vector<GateSim::PortSample>& reference,
                     bool x_initial_flops, const std::vector<Fault>& faults) {
  PpsfpPlan plan;
  const auto fall_back_all = [&](const char* reason) {
    plan.reason = reason;
    plan.fallback.resize(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) plan.fallback[i] = i;
    return plan;
  };

  // X power-up state is exactly what two-state execution cannot carry;
  // the event-driven overlay owns the whole list.
  if (x_initial_flops) return fall_back_all("x_initial_flops");

  // The screen: a broadcast two-state run of the good machine must
  // reproduce the four-state reference bit for bit — every sample fully
  // known and value-equal.  Any divergence means the program has a live X
  // (or Z) path the two-state lanes would silently misclassify.
  {
    CompiledSim sim(n, prog, CompiledSim::Options{});
    const auto& ins = n.inputs();
    const auto& outs = n.outputs();
    const std::size_t n_ports = outs.size();
    for (std::size_t c = 0; c < stimulus.size(); ++c) {
      for (std::size_t i = 0; i < ins.size(); ++i)
        sim.set_input(&ins[i], stimulus[c][i]);
      sim.step();
      for (std::size_t p = 0; p < n_ports; ++p) {
        const GateSim::PortSample got = sim.output_sample(&outs[p]);
        const GateSim::PortSample& ref = reference[c * n_ports + p];
        if (ref.known != got.known || ref.value != got.value)
          return fall_back_all("2-state/4-state divergence");
      }
    }
  }

  plan.eligible = true;
  const std::unordered_set<std::uint32_t> bus = macro_bus_slots(prog);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const nl::NetId net = faults[i].net;
    if (net < 0 || static_cast<std::size_t>(net) >= prog.slot_of_net.size()) {
      plan.fallback.push_back(i);
      continue;
    }
    const std::uint32_t slot = prog.slot_of_net[static_cast<std::size_t>(net)];
    (bus.contains(slot) ? plan.fallback : plan.parallel).push_back(i);
  }
  return plan;
}

void run_ppsfp_batch(const nl::Netlist& n, const CompiledProgram& prog,
                     const std::vector<std::vector<std::uint64_t>>& stimulus,
                     const std::vector<GateSim::PortSample>& reference,
                     const std::vector<Fault>& faults, const std::size_t* batch,
                     std::size_t count, std::uint64_t cycle_budget,
                     const std::function<bool()>& expired,
                     std::vector<FaultResult>& results) {
  CompiledSim sim(n, prog, CompiledSim::Options{});
  std::vector<CompiledSim::LaneFault> lanes(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Fault& f = faults[batch[i]];
    lanes[i] = {f.net, f.stuck_one, static_cast<unsigned>(i)};
    results[batch[i]].fault = f;
  }
  sim.set_fault_overlay(lanes);

  const auto& ins = n.inputs();
  const auto& outs = n.outputs();
  const std::size_t n_ports = outs.size();
  std::uint64_t alive =
      count >= CompiledSim::kLanes ? ~0ull : (std::uint64_t{1} << count) - 1;
  bool budget_hit = false;
  std::size_t c = 0;
  for (; c < stimulus.size() && alive != 0; ++c) {
    if (c >= cycle_budget) {
      budget_hit = true;
      break;
    }
    if ((c & 31u) == 0 && c != 0 && expired && expired()) {
      budget_hit = true;
      break;
    }
    for (std::size_t i = 0; i < ins.size(); ++i)
      sim.set_input(&ins[i], stimulus[c][i]);
    sim.step();
    for (std::size_t p = 0; p < n_ports && alive != 0; ++p) {
      const GateSim::PortSample& ref = reference[c * n_ports + p];
      std::uint64_t diff = 0;
      // The screen guaranteed ref.known covers the whole port, so the
      // hard-diff word is just XOR against the broadcast reference bit.
      for (std::uint64_t km = ref.known; km != 0; km &= km - 1) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(km));
        diff |= sim.output_word(&outs[p], b) ^
                core::word_broadcast(((ref.value >> b) & 1u) != 0);
      }
      std::uint64_t newly = diff & alive;
      alive &= ~newly;
      // First detecting (cycle, port) in scan order — drop the lane.
      for (; newly != 0; newly &= newly - 1) {
        FaultResult& fr = results[batch[std::countr_zero(newly)]];
        fr.klass = FaultClass::kDetected;
        fr.detect_cycle = c;
        fr.detect_port = static_cast<std::uint32_t>(p);
        fr.cycles = c + 1;
      }
    }
  }
  // Survivors: the two-state screen ruled X out, so there is no soft
  // divergence and kOscillating cannot arise on this path.
  for (std::uint64_t a = alive; a != 0; a &= a - 1) {
    FaultResult& fr = results[batch[std::countr_zero(a)]];
    fr.klass = budget_hit ? FaultClass::kUndetectedBudget : FaultClass::kUndetected;
    fr.cycles = c;
  }
}

}  // namespace scflow::fault
