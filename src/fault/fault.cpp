#include "fault/fault.hpp"

namespace scflow::fault {

const char* fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::kUndetected: return "undetected";
    case FaultClass::kDetected: return "detected";
    case FaultClass::kUndetectedBudget: return "undetected_budget";
    case FaultClass::kOscillating: return "oscillating";
  }
  return "?";
}

std::vector<Fault> enumerate_stuck_faults(const nl::Netlist& n, FaultListStats* stats) {
  const auto nets = static_cast<std::size_t>(n.net_count());
  // Fault sites: every driven net — cell outputs (flops included) and
  // primary-input port nets (macro read-data buses enter the netlist as
  // input ports, so they are covered too).
  std::vector<bool> site(nets, false);
  // Driver kind, for the trivially-untestable tie polarity.
  std::vector<std::int8_t> tie(nets, -1);  // 0/1 = tie value, -1 = not a tie
  for (const nl::Cell& c : n.cells()) {
    site[static_cast<std::size_t>(c.output)] = true;
    if (c.type == nl::CellType::kTie0) tie[static_cast<std::size_t>(c.output)] = 0;
    if (c.type == nl::CellType::kTie1) tie[static_cast<std::size_t>(c.output)] = 1;
  }
  for (const nl::PortBits& p : n.inputs())
    for (nl::NetId net : p.nets)
      if (net != nl::kNoNet) site[static_cast<std::size_t>(net)] = true;

  // Reader census for the collapse pass: a net observable at an output
  // port, or read by more than one consumer, is an FFR boundary (a fanout
  // stem) and keeps both its faults.  Nets with exactly one combinational
  // reader collapse by the classic equivalence rules.
  std::vector<std::uint32_t> fanout(nets, 0);
  std::vector<std::int32_t> sole_reader(nets, -1);
  const auto note_reader = [&](nl::NetId net, std::int32_t cell) {
    auto& f = fanout[static_cast<std::size_t>(net)];
    ++f;
    sole_reader[static_cast<std::size_t>(net)] = f == 1 ? cell : -1;
  };
  for (std::size_t ci = 0; ci < n.cells().size(); ++ci)
    for (nl::NetId in : n.cells()[ci].inputs) note_reader(in, static_cast<std::int32_t>(ci));
  for (const nl::PortBits& p : n.outputs())
    for (nl::NetId net : p.nets)
      if (net != nl::kNoNet) note_reader(net, -1);  // directly observable

  FaultListStats st;
  std::vector<Fault> out;
  out.reserve(2 * nets);
  for (std::size_t net = 0; net < nets; ++net) {
    if (!site[net]) continue;
    ++st.sites;
    for (const bool stuck_one : {false, true}) {
      // A tie net stuck at its own constant is the fault-free circuit.
      if (tie[net] == (stuck_one ? 1 : 0)) continue;
      ++st.raw;
      const std::int32_t rc = sole_reader[net];
      if (fanout[net] == 1 && rc >= 0) {
        // FFR-internal edge: drop the fault when it is equivalent to one
        // at the reader's output (controlling-value rules; inverting cells
        // collapse both polarities).
        const nl::CellType t = n.cells()[static_cast<std::size_t>(rc)].type;
        const bool drop =
            t == nl::CellType::kBuf || t == nl::CellType::kInv ||
            (!stuck_one && (t == nl::CellType::kAnd2 || t == nl::CellType::kNand2)) ||
            (stuck_one && (t == nl::CellType::kOr2 || t == nl::CellType::kNor2));
        if (drop) {
          ++st.collapsed;
          continue;
        }
      }
      out.push_back({static_cast<nl::NetId>(net), stuck_one});
    }
  }
  if (stats != nullptr) *stats = st;
  return out;
}

std::string describe_fault(const nl::Netlist& n, const Fault& f) {
  std::string where;
  for (std::size_t ci = 0; ci < n.cells().size(); ++ci)
    if (n.cells()[ci].output == f.net) {
      where = describe_cell(n, ci);
      break;
    }
  if (where.empty()) {
    for (const nl::PortBits& p : n.inputs())
      for (std::size_t i = 0; i < p.nets.size(); ++i)
        if (p.nets[i] == f.net)
          where = "input '" + p.name + "[" + std::to_string(i) + "]'";
  }
  if (where.empty()) where = "undriven";
  return "net " + std::to_string(f.net) + " (" + where + ") stuck-at-" +
         (f.stuck_one ? "1" : "0");
}

std::vector<Fault> sample_faults(const std::vector<Fault>& faults, std::size_t max_faults) {
  if (max_faults == 0 || faults.size() <= max_faults) return faults;
  std::vector<Fault> out;
  out.reserve(max_faults);
  // Centred even stride over the (net-ordered) list: pick the middle of
  // each of the max_faults equal spans.  The left-aligned i*N/M stride
  // could never reach the last span's tail (faults[N-1] was unreachable),
  // systematically under-selecting the design's last FFR group whenever
  // N % M == 0.  Indices stay strictly increasing for N > M.
  const std::size_t n = faults.size();
  for (std::size_t i = 0; i < max_faults; ++i)
    out.push_back(faults[(2 * i + 1) * n / (2 * max_faults)]);
  return out;
}

}  // namespace scflow::fault
