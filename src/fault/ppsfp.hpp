// Parallel-pattern single-fault (PPSFP) fault simulation on the compiled
// bit-parallel backend: up to 64 faulty machines per CompiledSim run, one
// stuck-at fault per pattern lane (CompiledSim::set_fault_overlay), each
// lane compared word-at-a-time against the cached good-machine response
// and dropped from further simulation at its first detecting (cycle,
// port) — the fault-dropping loop that makes full collapsed fault lists
// interactive.
//
// Exactness contract: the bit-parallel path runs two-state, so it is only
// taken when the campaign program provably has no X anywhere — decided by
// ppsfp_plan's screen (no x_initial_flops, and a cheap broadcast
// two-state run reproducing the four-state reference masks bit for bit).
// Faults on macro (RAM/ROM) bus nets always fall back to the event-driven
// faulty-machine overlay, as does the whole list when the screen fails,
// so the four-valued taxonomy (kOscillating, kUndetectedBudget, ...) is
// preserved exactly; classifications on the bit-parallel path are
// bit-identical with GateSim's by construction (see tests/test_ppsfp.cpp
// for the differential proof).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "hdlsim/compile.hpp"
#include "hdlsim/gate_sim.hpp"
#include "netlist/netlist.hpp"

namespace scflow::fault {

/// How the PPSFP engine handles each fault of a campaign, decided up
/// front: the program-level eligibility screen plus the per-fault
/// macro-coupling partition.
struct PpsfpPlan {
  /// Two-state bit-parallel execution is exact for this program.
  bool eligible = false;
  /// Diagnostic when !eligible ("x_initial_flops", "2-state/4-state
  /// divergence", "combinational cycle").
  std::string reason;
  std::vector<std::size_t> parallel;  ///< fault indices, bit-parallel path
  std::vector<std::size_t> fallback;  ///< fault indices, event-driven path
};

/// Screens (netlist, stimulus, reference) for two-state exactness and
/// splits @p faults into bit-parallel and fallback subsets.  @p stimulus
/// and @p reference are the campaign's materialised program and
/// good-machine samples (one per cycle x output port, port-major within
/// a cycle).  Runs one broadcast two-state pass over the program — cheap
/// relative to the fault fan-out it enables.
PpsfpPlan ppsfp_plan(const nl::Netlist& n, const hdlsim::CompiledProgram& prog,
                     const std::vector<std::vector<std::uint64_t>>& stimulus,
                     const std::vector<hdlsim::GateSim::PortSample>& reference,
                     bool x_initial_flops, const std::vector<Fault>& faults);

/// Simulates one PPSFP batch: faults[batch[0..count)] ride lanes
/// 0..count) of a single CompiledSim (count <= CompiledSim::kLanes),
/// writing only their own slots of @p results — the determinism contract
/// that keeps campaigns bit-identical across thread counts.  Detection
/// semantics mirror the event-driven engine exactly: ports scanned in
/// ascending order each cycle, first hard diff sets kDetected with
/// detect_cycle/detect_port/cycles = c+1; surviving lanes classify
/// kUndetected (full program) or kUndetectedBudget (@p cycle_budget hit,
/// or @p expired() true at the same 32-cycle cadence the event-driven
/// loop polls — batch granularity, so leave wall budgets off when
/// comparing engines bit-for-bit).
void run_ppsfp_batch(const nl::Netlist& n, const hdlsim::CompiledProgram& prog,
                     const std::vector<std::vector<std::uint64_t>>& stimulus,
                     const std::vector<hdlsim::GateSim::PortSample>& reference,
                     const std::vector<Fault>& faults, const std::size_t* batch,
                     std::size_t count, std::uint64_t cycle_budget,
                     const std::function<bool()>& expired,
                     std::vector<FaultResult>& results);

}  // namespace scflow::fault
