#include "fault/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <random>

#include "fault/ppsfp.hpp"
#include "hdlsim/batch_runner.hpp"
#include "hdlsim/compiled_sim.hpp"
#include "hdlsim/gate_sim.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"

namespace scflow::fault {

namespace {

using hdlsim::GateSim;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The whole campaign stimulus, materialised once: per cycle, one value
/// per input port (indexed like Netlist::inputs()).  Outputs are observed
/// after every cycle.  Pure function of (ports, options) — the source of
/// the campaign's thread-count determinism.
struct Program {
  std::vector<std::vector<std::uint64_t>> cycles;  // [cycle][input port]
  bool scan_used = false;
};

Program build_program(const nl::Netlist& n, const CampaignOptions& opt) {
  Program prog;
  const auto& ins = n.inputs();
  std::int32_t scan_in = -1, scan_en = -1;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (ins[i].name == "scan_in") scan_in = static_cast<std::int32_t>(i);
    if (ins[i].name == "scan_enable") scan_en = static_cast<std::int32_t>(i);
  }
  std::size_t chain_len = 0;
  for (const nl::Cell& c : n.cells())
    if (c.type == nl::CellType::kSdff) ++chain_len;
  prog.scan_used = opt.use_scan && scan_in >= 0 && scan_en >= 0 && chain_len > 0 &&
                   n.find_output("scan_out") != nullptr;

  std::mt19937_64 rng(opt.seed);
  const auto random_inputs = [&] {
    std::vector<std::uint64_t> v(ins.size());
    for (std::size_t i = 0; i < ins.size(); ++i) v[i] = rng();
    if (scan_in >= 0) v[static_cast<std::size_t>(scan_in)] = 0;
    if (scan_en >= 0) v[static_cast<std::size_t>(scan_en)] = 0;
    return v;
  };

  if (prog.scan_used) {
    for (int p = 0; p < opt.scan_patterns; ++p) {
      // Shift a random state through the whole chain.  Primary inputs are
      // held at one random value for the pattern; scan_out streams the
      // previous state and is observed on every shift cycle.
      const std::vector<std::uint64_t> held = random_inputs();
      for (std::size_t s = 0; s < chain_len; ++s) {
        std::vector<std::uint64_t> v = held;
        v[static_cast<std::size_t>(scan_en)] = 1;
        v[static_cast<std::size_t>(scan_in)] = rng() & 1u;
        prog.cycles.push_back(std::move(v));
      }
      for (int c = 0; c < opt.capture_cycles; ++c) prog.cycles.push_back(random_inputs());
    }
  }
  for (int c = 0; c < opt.functional_cycles; ++c) prog.cycles.push_back(random_inputs());
  return prog;
}

struct Observer {
  std::vector<GateSim::PortRef> in_refs;   // per input port
  std::vector<GateSim::PortRef> out_refs;  // per output port
};

/// Port handles resolve against the shared netlist (GateSim PortRefs point
/// into Netlist::inputs()/outputs()), so one Observer serves every
/// simulator over the same netlist — good machine and all faulty machines.
Observer make_observer(const nl::Netlist& n) {
  Observer o;
  for (const nl::PortBits& p : n.inputs()) o.in_refs.push_back(&p);
  for (const nl::PortBits& p : n.outputs()) o.out_refs.push_back(&p);
  return o;
}

template <typename Sim>
void apply_cycle(Sim& sim, const Observer& o, const std::vector<std::uint64_t>& in) {
  for (std::size_t i = 0; i < o.in_refs.size(); ++i) sim.set_input(o.in_refs[i], in[i]);
  sim.step();
}

/// Runs the good machine over the whole program and collects one
/// PortSample per (cycle, output port) — generic over the engine since
/// GateSim and CompiledSim share the handle/sample surface.
template <typename Sim>
std::vector<GateSim::PortSample> reference_run(Sim& sim, const Observer& o,
                                               const Program& prog) {
  std::vector<GateSim::PortSample> reference(prog.cycles.size() * o.out_refs.size());
  const std::size_t n_ports = o.out_refs.size();
  for (std::size_t c = 0; c < prog.cycles.size(); ++c) {
    apply_cycle(sim, o, prog.cycles[c]);
    for (std::size_t p = 0; p < n_ports; ++p)
      reference[c * n_ports + p] = sim.output_sample(o.out_refs[p]);
  }
  return reference;
}

/// Fingerprint of the options that change WHAT the campaign computes.
/// Scheduling/engine knobs (threads, wall budgets, reference backend, the
/// PPSFP faulty-machine engine) are deliberately excluded: results are
/// bit-identical across them, so a thread-sweep's (or an engine-sweep's)
/// ledgers must fingerprint identically.
std::uint64_t campaign_fingerprint(const CampaignOptions& o) {
  obs::Fnv1a h;
  h.update_str("fault-campaign-options-v1");
  h.update_u64(o.seed);
  h.update_u64(static_cast<std::uint64_t>(o.scan_patterns));
  h.update_u64(static_cast<std::uint64_t>(o.capture_cycles));
  h.update_u64(static_cast<std::uint64_t>(o.functional_cycles));
  h.update_u64(o.max_faults);
  h.update_u64(o.cycle_budget);
  h.update_u64(o.x_initial_flops ? 1 : 0);
  h.update_u64(static_cast<std::uint64_t>(o.oscillation_threshold));
  h.update_u64(o.use_scan ? 1 : 0);
  return h.digest();
}

}  // namespace

std::vector<std::vector<std::uint64_t>> build_campaign_stimulus(
    const nl::Netlist& n, const CampaignOptions& options, bool* scan_used) {
  Program prog = build_program(n, options);
  if (scan_used != nullptr) *scan_used = prog.scan_used;
  return std::move(prog.cycles);
}

void CampaignResult::record_into(obs::Registry& reg, std::string_view prefix) const {
  const std::string p(prefix);
  reg.set_counter(p + ".sites", list.sites);
  reg.set_counter(p + ".raw", list.raw);
  reg.set_counter(p + ".collapsed", list.collapsed);
  reg.set_counter(p + ".population", population);
  reg.set_counter(p + ".simulated", faults.size());
  reg.set_counter(p + ".detected", detected);
  reg.set_counter(p + ".undetected", undetected);
  reg.set_counter(p + ".undetected_budget", undetected_budget);
  reg.set_counter(p + ".oscillating", oscillating);
  reg.set_counter(p + ".stimulus_cycles", stimulus_cycles);
  reg.set_counter(p + ".faulty_cycles", faulty_cycles_total);
  reg.set_counter(p + ".observe_points", observe_ports.size());
  reg.set_counter(p + ".scan_used", scan_used ? 1 : 0);
  reg.set_counter(p + ".ppsfp_dropped", ppsfp_dropped);
  reg.set_counter(p + ".ppsfp_fallback_faults", ppsfp_fallback);
  reg.set_gauge(p + ".coverage_pct", coverage_pct());
}

CampaignResult run_campaign(const nl::Netlist& n, const CampaignOptions& options,
                            obs::Session* session) {
  FaultListStats stats;
  std::vector<Fault> faults = enumerate_stuck_faults(n, &stats);
  const std::size_t population = faults.size();
  faults = sample_faults(faults, options.max_faults);
  CampaignResult r = run_campaign(n, faults, options, session);
  r.list = stats;
  r.population = population;
  // The inner overload recorded with the sampled list standing in for the
  // population; overwrite those counters with the real enumeration figures.
  if (session != nullptr) {
    const std::string prefix =
        options.metric_prefix.empty() ? "fault." + n.name() : options.metric_prefix;
    r.record_into(session->registry, prefix);
  }
  return r;
}

CampaignResult run_campaign(const nl::Netlist& n, const std::vector<Fault>& faults,
                            const CampaignOptions& options, obs::Session* session) {
  const std::string prefix =
      options.metric_prefix.empty() ? "fault." + n.name() : options.metric_prefix;
  std::optional<obs::Registry::ScopedTimer> campaign_timer;
  if (session != nullptr) campaign_timer.emplace(session->registry.time_scope(prefix));
  const std::uint64_t t0_steady = steady_now_ns();
  // Root span of the campaign's fan-out: reserved up front so every batch
  // job span can parent-link to it, added (with its real extent) below.
  const std::uint64_t root_span =
      session != nullptr ? session->spans.reserve_id() : 0;
  const std::uint64_t trace_t0 = session != nullptr ? session->trace.now_ns() : 0;

  CampaignResult result;
  result.design = n.name();
  result.population = faults.size();

  const Program prog = build_program(n, options);
  const Observer obs_points = make_observer(n);
  result.scan_used = prog.scan_used;
  result.stimulus_cycles = prog.cycles.size();
  for (const nl::PortBits& p : n.outputs()) result.observe_ports.push_back(p.name);
  const std::size_t n_ports = obs_points.out_refs.size();

  GateSim::Options sim_opt;
  sim_opt.x_initial_flops = options.x_initial_flops;

  // One compile serves the compiled reference run, the PPSFP screen, and
  // every PPSFP batch.  A netlist the compiler rejects (combinational
  // cycle) simply keeps the whole fault list on the event-driven path.
  const bool use_ppsfp = options.engine == CampaignOptions::Engine::kPpsfp;
  std::optional<hdlsim::CompiledProgram> cprog;
  if (options.reference_backend == hdlsim::Backend::kCompiled) {
    cprog.emplace(hdlsim::compile_netlist(n));
  } else if (use_ppsfp) {
    try {
      cprog.emplace(hdlsim::compile_netlist(n));
    } catch (const std::exception&) {
    }
  }

  // Reference responses of the good machine, observed after every cycle.
  // The compiled backend runs the same program broadcast across its 64
  // pattern lanes (four-state so X propagation matches the interpreter);
  // either way the faulty machines below compare against identical masks.
  std::vector<GateSim::PortSample> reference;
  if (options.reference_backend == hdlsim::Backend::kCompiled) {
    hdlsim::CompiledSim::Options copt;
    copt.four_state = true;
    copt.x_initial_flops = options.x_initial_flops;
    // With a session listening, also collect the per-cycle op-throughput
    // distribution (off otherwise — benches measure the bare loop).
    copt.ops_histogram = session != nullptr;
    hdlsim::CompiledSim good(n, *cprog, copt);
    reference = reference_run(good, obs_points, prog);
    if (session != nullptr) good.record_into(session->registry, "compiled." + n.name());
  } else {
    GateSim good(n, sim_opt);
    reference = reference_run(good, obs_points, prog);
  }

  // One faulty machine per fault, fanned over the batch lanes.  Each job
  // writes only its own slot; with the wall budgets off every slot is a
  // pure function of (netlist, fault, program), so the result vector is
  // bit-identical for any lane count.
  result.faults.assign(faults.size(), {});
  const std::uint64_t campaign_deadline =
      options.campaign_wall_budget_ns == 0 ? 0
                                           : steady_now_ns() + options.campaign_wall_budget_ns;
  const std::uint64_t cycle_budget =
      options.cycle_budget == 0 ? prog.cycles.size() : options.cycle_budget;

  // The event-driven faulty machine: one whole GateSim per fault — the
  // kEventDriven engine, and the per-fault fallback of kPpsfp.
  const auto event_driven_fault = [&](std::size_t fi,
                                      const hdlsim::BatchRunner::JobContext& ctx) {
    FaultResult& fr = result.faults[fi];
    fr.fault = faults[fi];
    // Campaign watchdog: once the whole campaign is over budget, remaining
    // faults degrade to a budget classification without simulating.
    if (campaign_deadline != 0 && steady_now_ns() > campaign_deadline) {
      fr.klass = FaultClass::kUndetectedBudget;
      return;
    }
    GateSim sim(n, sim_opt);
    sim.inject_stuck(fr.fault.net, fr.fault.stuck_one ? Logic::L1 : Logic::L0);
    int soft_cycles = 0;
    bool budget_hit = false;
    std::size_t c = 0;
    for (; c < prog.cycles.size(); ++c) {
      if (c >= cycle_budget) {
        budget_hit = true;
        break;
      }
      if ((c & 31u) == 0 && c != 0 &&
          (ctx.expired() ||
           (campaign_deadline != 0 && steady_now_ns() > campaign_deadline))) {
        budget_hit = true;
        break;
      }
      apply_cycle(sim, obs_points, prog.cycles[c]);
      for (std::size_t p = 0; p < n_ports; ++p) {
        const GateSim::PortSample got = sim.output_sample(obs_points.out_refs[p]);
        const GateSim::PortSample& ref = reference[c * n_ports + p];
        if ((ref.known & got.known & (ref.value ^ got.value)) != 0) {
          fr.klass = FaultClass::kDetected;
          fr.detect_cycle = c;
          fr.detect_port = static_cast<std::uint32_t>(p);
          fr.cycles = c + 1;
          return;
        }
        if ((ref.known & ~got.known) != 0) ++soft_cycles;
      }
    }
    fr.cycles = c;
    if (budget_hit)
      fr.klass = FaultClass::kUndetectedBudget;
    else if (soft_cycles >= options.oscillation_threshold)
      fr.klass = FaultClass::kOscillating;
    else
      fr.klass = FaultClass::kUndetected;
  };

  hdlsim::BatchRunner runner(options.threads);
  runner.set_job_budget_ns(options.fault_wall_budget_ns);
  PpsfpPlan plan;
  if (!use_ppsfp) {
    runner.run(faults.size(), [&](std::size_t job, unsigned /*lane*/,
                                  const hdlsim::BatchRunner::JobContext& ctx) {
      event_driven_fault(job, ctx);
    });
  } else {
    if (cprog.has_value()) {
      plan = ppsfp_plan(n, *cprog, prog.cycles, reference, options.x_initial_flops,
                        faults);
    } else {
      plan.reason = "combinational cycle";
      plan.fallback.resize(faults.size());
      for (std::size_t i = 0; i < faults.size(); ++i) plan.fallback[i] = i;
    }
    // Jobs: the bit-parallel batches first (64 faults each), then one job
    // per fallback fault — all on one runner, each job writing only its
    // own faults' slots, so the thread-count bit-identity carries over.
    constexpr std::size_t kB = hdlsim::CompiledSim::kLanes;
    const std::size_t n_batches = (plan.parallel.size() + kB - 1) / kB;
    runner.run(n_batches + plan.fallback.size(),
               [&](std::size_t job, unsigned /*lane*/,
                   const hdlsim::BatchRunner::JobContext& ctx) {
                 if (job >= n_batches) {
                   event_driven_fault(plan.fallback[job - n_batches], ctx);
                   return;
                 }
                 const std::size_t begin = job * kB;
                 const std::size_t count = std::min(kB, plan.parallel.size() - begin);
                 // Same watchdog degradation as the per-fault path, at
                 // batch granularity.
                 if (campaign_deadline != 0 && steady_now_ns() > campaign_deadline) {
                   for (std::size_t i = 0; i < count; ++i) {
                     FaultResult& fr = result.faults[plan.parallel[begin + i]];
                     fr.fault = faults[plan.parallel[begin + i]];
                     fr.klass = FaultClass::kUndetectedBudget;
                   }
                   return;
                 }
                 run_ppsfp_batch(
                     n, *cprog, prog.cycles, reference, faults,
                     plan.parallel.data() + begin, count, cycle_budget,
                     [&] {
                       return ctx.expired() ||
                              (campaign_deadline != 0 &&
                               steady_now_ns() > campaign_deadline);
                     },
                     result.faults);
               });
    result.ppsfp_fallback = plan.fallback.size();
    for (const std::size_t fi : plan.parallel)
      if (result.faults[fi].klass == FaultClass::kDetected) ++result.ppsfp_dropped;
  }

  for (const FaultResult& fr : result.faults) {
    result.faulty_cycles_total += fr.cycles;
    switch (fr.klass) {
      case FaultClass::kDetected: ++result.detected; break;
      case FaultClass::kUndetected: ++result.undetected; break;
      case FaultClass::kUndetectedBudget: ++result.undetected_budget; break;
      case FaultClass::kOscillating: ++result.oscillating; break;
    }
  }

  // Per-fault simulated-cycle distribution — deterministic (fr.cycles is a
  // pure function of the fault and program when wall budgets are off), so
  // it lands in the ledger as a gating histogram, not a timing one.
  obs::Histogram fault_cycles;
  for (const FaultResult& fr : result.faults) fault_cycles.record(fr.cycles);

  if (session != nullptr) {
    result.record_into(session->registry, prefix);
    session->registry.merge_histogram(prefix + ".fault_cycles", fault_cycles);
    if (use_ppsfp) {
      // Which stimulus cycle dropped each bit-parallel fault — the
      // fault-dropping evidence.  Registry-only (like the ppsfp_* counters
      // record_into adds): the ledger entry below stays engine-invariant,
      // so cross-engine `scflow_report diff` is clean modulo timing.
      obs::Histogram dropped_at;
      for (const std::size_t fi : plan.parallel)
        if (result.faults[fi].klass == FaultClass::kDetected)
          dropped_at.record(result.faults[fi].detect_cycle);
      session->registry.merge_histogram(prefix + ".ppsfp_dropped_at", dropped_at);
    }
    session->spans.add({root_span, 0, prefix, "fault", trace_t0,
                        session->trace.now_ns(), 0});
    runner.record_into(*session, prefix + ".batch", root_span);

    obs::LedgerEntry entry;
    entry.phase = "fault";
    entry.design = prefix.rfind("fault.", 0) == 0 ? prefix.substr(6) : prefix;
    entry.input_hash = nl::content_hash(n);
    entry.options_fingerprint = campaign_fingerprint(options);
    entry.duration_ns = steady_now_ns() - t0_steady;
    entry.add_counter("population", result.population);
    entry.add_counter("simulated", result.faults.size());
    entry.add_counter("detected", result.detected);
    entry.add_counter("undetected", result.undetected);
    entry.add_counter("undetected_budget", result.undetected_budget);
    entry.add_counter("oscillating", result.oscillating);
    entry.add_counter("stimulus_cycles", result.stimulus_cycles);
    entry.add_counter("faulty_cycles", result.faulty_cycles_total);
    entry.add_counter("observe_points", result.observe_ports.size());
    entry.add_counter("scan_used", result.scan_used ? 1 : 0);
    entry.add_gauge("coverage_pct", result.coverage_pct());
    entry.add_histogram("fault_cycles", fault_cycles);
    session->ledger.append(std::move(entry));
  }
  return result;
}

}  // namespace scflow::fault
