// Single-stuck-at fault model over gate netlists — the testability side of
// the paper's scan-inserted gate-level endpoints (Fig. 10).  Fault sites
// are driven nets (cell outputs, primary inputs, macro read-data buses);
// the raw 2-faults-per-net list is collapsed by classic fault-equivalence
// rules inside fanout-free regions (a single-fanout net's controlling
// fault is indistinguishable from the dominated fault at its reader's
// output, so only the FFR-root representative is kept).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace scflow::fault {

/// Outcome taxonomy of one simulated fault.
enum class FaultClass : std::uint8_t {
  kUndetected,        ///< simulated the full stimulus, never observed
  kDetected,          ///< a hard 0/1 response difference at an observe point
  kUndetectedBudget,  ///< cycle/wall budget expired before detection
  kOscillating,       ///< persistent unknown (X) divergence at observe
                      ///< points — the 4-valued signature of an unstable
                      ///< or never-initialised faulty machine
};

[[nodiscard]] const char* fault_class_name(FaultClass c);

struct Fault {
  nl::NetId net = nl::kNoNet;
  bool stuck_one = false;  ///< false: stuck-at-0, true: stuck-at-1

  friend bool operator==(const Fault& a, const Fault& b) {
    return a.net == b.net && a.stuck_one == b.stuck_one;
  }
};

/// Bookkeeping of the enumeration: `sites` nets considered, `raw` faults
/// before collapsing (2 per site minus trivially untestable tie faults),
/// `collapsed` dropped as FFR-equivalent, leaving raw - collapsed faults.
struct FaultListStats {
  std::size_t sites = 0;
  std::size_t raw = 0;
  std::size_t collapsed = 0;
};

/// Enumerates the collapsed single-stuck-at fault list of @p n in
/// deterministic (net, polarity) order.
[[nodiscard]] std::vector<Fault> enumerate_stuck_faults(const nl::Netlist& n,
                                                        FaultListStats* stats = nullptr);

/// Human-readable fault site, e.g. "net 42 (AND2 #12) stuck-at-1" or
/// "net 3 (input 'in_left[3]') stuck-at-0".
[[nodiscard]] std::string describe_fault(const nl::Netlist& n, const Fault& f);

/// Deterministic evenly-strided subset of @p faults with at most
/// @p max_faults entries (the full list when max_faults is 0 or already
/// large enough).  Campaigns use this to bound work; the result-side
/// bookkeeping always reports both the full and the sampled count so the
/// cap is never silent.
[[nodiscard]] std::vector<Fault> sample_faults(const std::vector<Fault>& faults,
                                               std::size_t max_faults);

}  // namespace scflow::fault
