// Simulator observability counters, reported by the Fig. 8/9 benches so
// BENCH_*.json captures the perf trajectory of the interpreted engines.
// One struct serves the gate-level simulator, the RTL interpreter wrapper
// and the cosim bridge; engines leave fields they do not track at zero.
#pragma once

#include <cstdint>
#include <string_view>

namespace scflow::obs {
class Registry;
}

namespace scflow::hdlsim {

struct SimCounters {
  /// Unit (gate / macro-port / RTL-node) evaluations performed.
  std::uint64_t evaluations = 0;
  /// Dirty-queue insertions (event-driven engines only).
  std::uint64_t dirty_pushes = 0;
  /// settle() invocations (one per clock edge plus explicit calls).
  std::uint64_t settle_calls = 0;
  /// Level sweeps that actually found queued work inside settle().
  std::uint64_t settle_passes = 0;
  /// Macro read-port re-evaluations forced by RAM writes.
  std::uint64_t ram_rereads = 0;
  /// High-water mark of units queued dirty at once.  Sampled after each
  /// external mark batch (set_input, flop commit, RAM re-reads) and at
  /// each level boundary inside settle() — the per-settle sum across all
  /// sweep shards of a level — so the value is identical for every thread
  /// count, sharded or not.
  std::uint64_t peak_queue_depth = 0;
  /// Heap allocations performed by step()/settle() after construction.
  /// The table-driven engine keeps this at zero in steady state.
  std::uint64_t steady_state_allocs = 0;

  /// THE accessor that maps these fields into the unified metric registry
  /// ("<prefix>.evaluations", ...).  Every consumer (run_src_netlist
  /// results, the testbench VM, the cosim bridge, the benches) goes
  /// through this one function, so adding a field here cannot silently
  /// desync any of them.
  void record_into(scflow::obs::Registry& reg, std::string_view prefix) const;
};

/// One sweep lane's cumulative share of the parallel level sweep.  The
/// shard split depends only on the dirty-word partition (deterministic);
/// shard sums reproduce the SimCounters totals.
struct WorkerShardStats {
  /// Unit evaluations this lane performed (macro ports it *found* count
  /// here too — the deferred evaluation runs on the calling thread, but
  /// the consuming lane owns the work unit).
  std::uint64_t evaluations = 0;
  /// Fresh dirty-bit transitions this lane caused.  External marks (from
  /// construction, set_input, flop commits, RAM re-reads and deferred
  /// macro-port evaluation) run on the calling thread and count under
  /// lane 0, so the lane sum still reproduces the SimCounters total.
  std::uint64_t dirty_pushes = 0;
  /// Level sweeps this lane took part in (parallel rounds + inline runs
  /// on lane 0).
  std::uint64_t level_sweeps = 0;

  /// Registry mapping, mirroring SimCounters::record_into: emits
  /// "<prefix>.evaluations" etc.  Callers typically pass a per-lane
  /// prefix such as "gate.worker3".
  void record_into(scflow::obs::Registry& reg, std::string_view prefix) const;
};

}  // namespace scflow::hdlsim
