// Bit-parallel compiled gate simulator: executes the straight-line
// bytecode produced by compile_netlist() with 64 independent two-state
// patterns packed per machine word — one fused op per cell, operands
// pre-resolved to dense word slots, flop commit as one flat copy.  The
// Verilated-style answer to GateSim's event-driven interpreter: no dirty
// queue, no levels, just a tight dispatch loop whose pattern throughput
// (patterns x cycles / s) is what the compiled backend benches report.
//
// Two execution modes:
//  - two-state (default): one word per slot, X-free semantics.  Bit-exact
//    with GateSim wherever the stimulus and reset state are fully defined
//    (the SRC schedules, the CEC pre-pass, defined fuzz stimulus).
//  - four-state (value/known word pair per slot): X-capable parity mode.
//    Unknown bits carry known=0 (and value=0 — the masked invariant);
//    X and Z collapse to unknown, exactly as pessimistic as GateSim's
//    truth tables, so broadcast four-state runs reproduce GateSim's
//    output_sample() masks bit for bit (the fault campaign's reference
//    backend rests on this).
//
// Macro (RAM/ROM) read ports run as per-lane bit-serial interpreted ops
// inside the compiled program — the fallback-to-interpreter regime for
// logic the bytecode cannot fuse.  To match GateSim's event semantics
// (externally driven macro-data values persist until the port
// re-evaluates), a port only re-evaluates when its settled address/enable
// words changed since its last evaluation or the macro was written; with
// per-lane *independent* stimulus that change detection is whole-word
// (any lane re-evaluates all lanes), so netlists whose macro data ports
// are driven externally should use broadcast stimulus.  The checking RAM
// model (Options::check_ram) stays interpreter-only: make_gate_dut falls
// back to GateDut when it is requested.
//
// PPSFP fault overlay (set_fault_overlay, two-state only): each pattern
// lane carries one stuck-at fault.  The fault's slot is clamped after
// every write — at settle start for externally driven slots, right after
// its driver op (the executor splits that op's kind-homogeneous run at
// the clamp, since a reader may share the run), after the flat flop
// commit for Q slots — matching GateSim::inject_stuck's write-side
// semantics per lane.  With
// an overlay installed the macro change detection above switches to
// per-lane masks (changed/wrote lanes re-evaluate alone), so 64 faulty
// machines diverge independently exactly as 64 event-driven GateSims
// would; the fault campaign's PPSFP engine is the client.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dtypes/logic.hpp"
#include "hdlsim/compile.hpp"
#include "hdlsim/gate_sim.hpp"
#include "hdlsim/sim_counters.hpp"
#include "netlist/netlist.hpp"
#include "obs/histogram.hpp"

namespace scflow::obs {
class Registry;
}

namespace scflow::hdlsim {

class CompiledSim {
 public:
  struct Options {
    /// Run the value/known pair representation (X-capable).  Implied by
    /// x_initial_flops.
    bool four_state = false;
    /// Power-up flops unknown instead of their reset values; forces
    /// four_state on.
    bool x_initial_flops = false;
    /// Record a per-cycle executed-ops histogram (one sample per step()).
    /// Off by default: the benches measure the uninstrumented loop.
    bool ops_histogram = false;
  };

  /// Patterns per machine word — the parallel axis of this backend.
  static constexpr unsigned kLanes = 64;

  /// @p netlist must outlive the simulator (slots bind to its ports).
  explicit CompiledSim(const nl::Netlist& netlist) : CompiledSim(netlist, Options{}) {}
  CompiledSim(const nl::Netlist& netlist, Options options);
  /// Shares a pre-compiled @p program (from compile_netlist(netlist);
  /// must outlive the simulator).  Fan-out users — the PPSFP fault
  /// batches above all — compile once and construct many executors.
  CompiledSim(const nl::Netlist& netlist, const CompiledProgram& program, Options options);
  CompiledSim(const CompiledSim&) = delete;
  CompiledSim& operator=(const CompiledSim&) = delete;

  /// One stuck-at clamp of the PPSFP fault overlay: pattern lane
  /// @p lane's bit of @p net's slot is forced to @p stuck_one after every
  /// write to the slot.
  struct LaneFault {
    nl::NetId net = nl::kNoNet;
    bool stuck_one = false;
    unsigned lane = 0;
  };

  /// Installs a per-lane stuck-at overlay (replacing any previous one)
  /// and clamps the current state, like GateSim::inject_stuck.  Two-state
  /// mode only — the PPSFP campaign screens X-sensitive programs out to
  /// the event-driven engine first; throws std::logic_error in four-state
  /// mode.  An empty vector clears the overlay.
  void set_fault_overlay(const std::vector<LaneFault>& faults);

  using PortRef = const nl::PortBits*;
  [[nodiscard]] PortRef input_port(const std::string& name) const;
  [[nodiscard]] PortRef output_port(const std::string& name) const;

  // --- broadcast drivers (GateSim-compatible surface) ---
  /// Drives all 64 lanes with the same scalar value.
  void set_input(const std::string& name, std::uint64_t value);
  void set_input(PortRef port, std::uint64_t value);
  /// All bits unknown on every lane (four-state only; throws otherwise).
  void set_input_x(const std::string& name);
  /// Four-valued broadcast; X/Z bits require four_state (throws otherwise).
  void set_input_logic(const std::string& name, const scflow::LogicVector& bits);

  // --- pattern-word drivers (64 independent stimuli) ---
  /// Drives bit @p bit of @p port with one pattern per lane, all known.
  void set_input_word(PortRef port, std::size_t bit, std::uint64_t patterns);
  /// Four-state variant with an explicit known mask (unknown lanes get
  /// value 0 — the masked invariant is enforced here).
  void set_input_word(PortRef port, std::size_t bit, std::uint64_t value,
                      std::uint64_t known);

  /// Settles combinational logic: one straight-line pass over the ops.
  void settle();
  /// Full clock cycle: settle, RAM writes, flat flop commit.
  void step();

  // --- reads ---
  /// Lane-0 numeric output; requires all bits known (throws on X).
  [[nodiscard]] std::uint64_t output(const std::string& name);
  [[nodiscard]] std::uint64_t output(PortRef port);
  [[nodiscard]] scflow::LogicVector output_bits(const std::string& name,
                                                unsigned lane = 0) const;
  /// Packed never-throwing sample of one lane (GateSim::PortSample shape,
  /// so the fault campaign compares reference responses type-for-type).
  [[nodiscard]] GateSim::PortSample output_sample(PortRef port, unsigned lane = 0) const;
  /// The raw 64 patterns of one output bit (and its known mask;
  /// two-state reads return an all-ones mask).
  [[nodiscard]] std::uint64_t output_word(PortRef port, std::size_t bit) const;
  [[nodiscard]] std::uint64_t output_known_word(PortRef port, std::size_t bit) const;

  // --- GateSim-parity observability ---
  /// Always empty: the checking RAM model is interpreter-only.
  [[nodiscard]] const GateSim::RamViolation& ram_violations() const {
    return no_violations_;
  }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] std::uint64_t gate_evaluations() const { return counters_.evaluations; }
  [[nodiscard]] const SimCounters& counters() const { return counters_; }
  [[nodiscard]] std::vector<WorkerShardStats> worker_stats() const { return {}; }

  [[nodiscard]] bool four_state() const { return options_.four_state; }
  [[nodiscard]] const CompiledProgram& program() const { return prog_; }
  /// Bytecode ops executed so far (skipped macro reads excluded).
  [[nodiscard]] std::uint64_t ops_executed() const { return ops_run_; }
  /// 64-bit words written by those ops (two per op in four-state mode).
  [[nodiscard]] std::uint64_t words_written() const { return words_; }

  /// Per-cycle executed-ops distribution (empty unless
  /// Options::ops_histogram) — the throughput-shape evidence behind the
  /// flat "ops" counter.
  [[nodiscard]] const obs::Histogram& cycle_ops() const { return cycle_ops_; }

  /// Records "<prefix>.ops/.words/.cycles" counters (plus the
  /// "<prefix>.cycle_ops" histogram when enabled) into the registry —
  /// the obs surface of the compiled backend.
  void record_into(scflow::obs::Registry& reg, std::string_view prefix) const;

 private:
  struct MacroRt {
    std::vector<std::uint32_t> ram;  // [lane * entries + addr]; always defined
    std::uint32_t read_ports = 0;
    // Lanes written since the last settle: force port re-eval (whole word
    // without an overlay, per lane with one).
    std::uint64_t wrote_mask = 0;
  };
  struct PortRt {
    // Settled addr+en words at the last evaluation (four-state: value
    // words then known words) — the change detector that reproduces
    // GateSim's event-driven port dirtiness.
    std::vector<std::uint64_t> stash;
    bool valid = false;
  };

  // One merged write-site clamp of the fault overlay: lanes in `mask`
  // are forced to the bits of `val` (val is pre-masked).
  struct Clamp {
    std::uint32_t slot = 0;
    std::uint64_t mask = 0;
    std::uint64_t val = 0;
  };
  struct OpClamp {
    std::uint32_t op = 0;  // index into prog_.ops; applied right after that op
    Clamp clamp;
  };

  CompiledSim(const nl::Netlist& netlist, Options options, CompiledProgram own,
              const CompiledProgram* shared);

  template <bool FourState>
  void exec();
  template <bool FourState>
  bool eval_macro_port(std::uint32_t pi);
  bool eval_macro_port_overlay(std::uint32_t pi);
  template <bool FourState>
  void ram_writes();
  void apply_clamp(const Clamp& c) { vals_[c.slot] = (vals_[c.slot] & ~c.mask) | c.val; }

  [[nodiscard]] std::size_t in_index(PortRef port) const;
  [[nodiscard]] std::size_t out_index(PortRef port) const;
  void drive_bit(std::uint32_t slot, std::uint64_t value, std::uint64_t known);

  const nl::Netlist* nl_;
  Options options_;
  CompiledProgram prog_own_;     // owned compile when not sharing
  const CompiledProgram& prog_;  // the executed program (own or shared)
  std::vector<std::uint64_t> vals_;
  std::vector<std::uint64_t> known_;  // four-state only
  std::vector<MacroRt> macro_rt_;
  std::vector<PortRt> port_rt_;
  // Per-port data scatter scratch, sized to the widest data bus at
  // construction so the steady state never allocates.
  std::vector<std::uint64_t> scratch_v_, scratch_k_;
  std::unordered_map<std::string, PortRef> in_ports_, out_ports_;

  // Fault overlay, split by write site: externally driven / undriven
  // slots re-clamp at settle start, op-driven slots right after their
  // driver op (ov_op_ sorted by op index — a reader may share the
  // driver's kind-homogeneous run, so end-of-run clamping would be too
  // late), flop Q slots after the flat commit.
  bool overlay_ = false;
  std::vector<Clamp> ov_settle_, ov_commit_;
  std::vector<OpClamp> ov_op_;

  GateSim::RamViolation no_violations_;
  SimCounters counters_;
  obs::Histogram cycle_ops_;
  std::uint64_t cycles_ = 0;
  std::uint64_t ops_run_ = 0;
  std::uint64_t words_ = 0;
  std::uint64_t ops_at_cycle_start_ = 0;  // watermark for the per-cycle sample
};

}  // namespace scflow::hdlsim
