#include "hdlsim/gate_sim.hpp"

#include <stdexcept>

#include "dtypes/bit_int.hpp"

namespace scflow::hdlsim {

using nl::Cell;
using nl::CellType;
using nl::NetId;
using scflow::Logic;

GateSim::GateSim(const nl::Netlist& netlist, Options options)
    : nl_(&netlist), options_(options) {
  netlist.validate();
  values_.assign(static_cast<std::size_t>(netlist.net_count()), Logic::X);
  for (const auto& p : netlist.inputs()) in_ports_[p.name] = &p;
  for (const auto& p : netlist.outputs()) out_ports_[p.name] = &p;

  // Units: combinational cells + macro read ports.  Flops are sources.
  std::vector<NetId> driver_unit(static_cast<std::size_t>(netlist.net_count()), -1);
  for (std::size_t ci = 0; ci < netlist.cells().size(); ++ci) {
    const Cell& c = netlist.cells()[ci];
    if (nl::cell_is_sequential(c.type)) {
      flop_cells_.push_back(ci);
      continue;
    }
    driver_unit[static_cast<std::size_t>(c.output)] = static_cast<NetId>(units_.size());
    units_.push_back({false, ci, 0});
  }
  for (std::size_t mi = 0; mi < netlist.macros.size(); ++mi) {
    MacroState ms;
    ms.info = &netlist.macros[mi];
    if (ms.info->kind == nl::MacroInfo::Kind::kRam) {
      const std::size_t entries = std::size_t{1} << ms.info->addr_bits;
      ms.ram_words.assign(entries, 0);
      ms.written.assign(entries, false);
      ms.written_at.assign(entries, 0);
    }
    macros_.push_back(std::move(ms));
    for (std::size_t port = 0; port < netlist.macros[mi].read_data_ports.size(); ++port) {
      const auto* data = netlist.find_input(netlist.macros[mi].read_data_ports[port]);
      if (data == nullptr) throw std::logic_error("macro data port missing");
      for (NetId n : data->nets)
        driver_unit[static_cast<std::size_t>(n)] = static_cast<NetId>(units_.size());
      units_.push_back({true, (mi << 8) | port, 0});
    }
  }

  // Unit input nets (for fanout and levelling).
  auto unit_inputs = [this](const Unit& u) {
    std::vector<NetId> ins;
    if (!u.is_macro) {
      ins = nl_->cells()[u.index].inputs;
    } else {
      const auto& mi = *macros_[u.index >> 8].info;
      const std::size_t port = u.index & 0xff;
      for (NetId n : nl_->find_output(mi.read_addr_ports[port])->nets) ins.push_back(n);
      if (mi.kind == nl::MacroInfo::Kind::kRam) {
        // RAM reads also depend on contents, which change only at clock
        // edges — no combinational dependency.
        if (port < mi.read_enable_ports.size())
          for (NetId n : nl_->find_output(mi.read_enable_ports[port])->nets)
            ins.push_back(n);
      }
    }
    return ins;
  };

  fanout_.assign(static_cast<std::size_t>(netlist.net_count()), {});
  for (std::size_t ui = 0; ui < units_.size(); ++ui)
    for (NetId n : unit_inputs(units_[ui])) fanout_[static_cast<std::size_t>(n)].push_back(ui);

  // Levelise by relaxation (combinational depth is modest).
  bool changed = true;
  int guard = 0;
  while (changed) {
    changed = false;
    if (++guard > 100'000)
      throw std::logic_error("combinational cycle in netlist");
    for (std::size_t ui = 0; ui < units_.size(); ++ui) {
      int lvl = 0;
      for (NetId n : unit_inputs(units_[ui])) {
        const NetId du = driver_unit[static_cast<std::size_t>(n)];
        if (du >= 0) lvl = std::max(lvl, units_[static_cast<std::size_t>(du)].level + 1);
      }
      if (lvl > units_[ui].level) {
        units_[ui].level = lvl;
        changed = true;
      }
    }
  }
  for (const Unit& u : units_) max_level_ = std::max(max_level_, u.level);
  dirty_levels_.assign(static_cast<std::size_t>(max_level_) + 1, {});
  in_queue_.assign(units_.size(), false);

  // Initial state: flop outputs to init (or X), everything dirty once.
  for (std::size_t ci : flop_cells_) {
    const Cell& c = nl_->cells()[ci];
    values_[static_cast<std::size_t>(c.output)] =
        options_.x_initial_flops ? Logic::X : scflow::logic_from_bool(c.init != 0);
  }
  for (std::size_t ui = 0; ui < units_.size(); ++ui) {
    in_queue_[ui] = true;
    dirty_levels_[static_cast<std::size_t>(units_[ui].level)].push_back(ui);
  }
}

void GateSim::set_net(NetId net, Logic v) {
  auto& slot = values_[static_cast<std::size_t>(net)];
  if (slot == v) return;
  slot = v;
  mark_dirty_fanout(net);
}

void GateSim::mark_dirty_fanout(NetId net) {
  for (std::size_t ui : fanout_[static_cast<std::size_t>(net)]) {
    if (in_queue_[ui]) continue;
    in_queue_[ui] = true;
    dirty_levels_[static_cast<std::size_t>(units_[ui].level)].push_back(ui);
  }
}

void GateSim::set_input(const std::string& name, std::uint64_t value) {
  const auto it = in_ports_.find(name);
  if (it == in_ports_.end()) throw std::invalid_argument("no input '" + name + "'");
  for (std::size_t i = 0; i < it->second->nets.size(); ++i)
    set_net(it->second->nets[i], scflow::logic_from_bool(((value >> i) & 1u) != 0));
}

void GateSim::set_input_x(const std::string& name) {
  const auto it = in_ports_.find(name);
  if (it == in_ports_.end()) throw std::invalid_argument("no input '" + name + "'");
  for (NetId n : it->second->nets) set_net(n, Logic::X);
}

std::pair<bool, std::uint64_t> GateSim::read_bus(const std::vector<NetId>& nets) const {
  std::uint64_t v = 0;
  bool defined = true;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const Logic b = net(nets[i]);
    if (!scflow::logic_is_01(b)) defined = false;
    if (b == Logic::L1) v |= (std::uint64_t{1} << i);
  }
  return {defined, v};
}

void GateSim::eval_cell(std::size_t index) {
  const Cell& c = nl_->cells()[index];
  auto in = [this, &c](int i) { return net(c.inputs[static_cast<std::size_t>(i)]); };
  Logic out = Logic::X;
  switch (c.type) {
    case CellType::kTie0: out = Logic::L0; break;
    case CellType::kTie1: out = Logic::L1; break;
    case CellType::kBuf: out = in(0) == Logic::Z ? Logic::X : in(0); break;
    case CellType::kInv: out = scflow::logic_not(in(0)); break;
    case CellType::kAnd2: out = scflow::logic_and(in(0), in(1)); break;
    case CellType::kOr2: out = scflow::logic_or(in(0), in(1)); break;
    case CellType::kNand2: out = scflow::logic_not(scflow::logic_and(in(0), in(1))); break;
    case CellType::kNor2: out = scflow::logic_not(scflow::logic_or(in(0), in(1))); break;
    case CellType::kXor2: out = scflow::logic_xor(in(0), in(1)); break;
    case CellType::kXnor2: out = scflow::logic_not(scflow::logic_xor(in(0), in(1))); break;
    case CellType::kMux2: out = scflow::logic_mux(in(0), in(1), in(2)); break;
    default: return;  // flops not evaluated combinationally
  }
  set_net(c.output, out);
}

void GateSim::eval_macro_port(std::size_t macro, std::size_t port) {
  MacroState& ms = macros_[macro];
  const auto& mi = *ms.info;
  const auto [addr_ok, addr] = read_bus(nl_->find_output(mi.read_addr_ports[port])->nets);
  const auto* data_port = nl_->find_input(mi.read_data_ports[port]);

  bool enabled = false;
  if (mi.kind == nl::MacroInfo::Kind::kRam && port < mi.read_enable_ports.size()) {
    const auto [en_ok, en] = read_bus(nl_->find_output(mi.read_enable_ports[port])->nets);
    enabled = en_ok && en != 0;
  }

  std::uint64_t word = 0;
  bool defined = addr_ok;
  if (addr_ok) {
    if (mi.kind == nl::MacroInfo::Kind::kRom) {
      word = addr < mi.rom_contents.size()
                 ? static_cast<std::uint64_t>(mi.rom_contents[addr]) &
                       scflow::bit_mask(mi.data_bits)
                 : 0;
    } else {
      word = ms.ram_words[addr];
      if (options_.check_ram && enabled) {
        if (!ms.written[addr]) {
          if (ram_violation_.count++ == 0) {
            ram_violation_.first_cycle = cycles_;
            ram_violation_.first_address = static_cast<unsigned>(addr);
            ram_violation_.first_kind = "never-written";
          }
        } else if (ms.write_count - ms.written_at[addr] > 55) {
          if (ram_violation_.count++ == 0) {
            ram_violation_.first_cycle = cycles_;
            ram_violation_.first_address = static_cast<unsigned>(addr);
            ram_violation_.first_kind = "stale";
          }
        }
      }
    }
  } else if (options_.check_ram && enabled && mi.kind == nl::MacroInfo::Kind::kRam) {
    if (ram_violation_.count++ == 0) {
      ram_violation_.first_cycle = cycles_;
      ram_violation_.first_address = 0;
      ram_violation_.first_kind = "x-address";
    }
  }

  for (std::size_t i = 0; i < data_port->nets.size(); ++i)
    set_net(data_port->nets[i],
            defined ? scflow::logic_from_bool(((word >> i) & 1u) != 0) : Logic::X);
}

void GateSim::settle() {
  for (int lvl = 0; lvl <= max_level_; ++lvl) {
    auto& q = dirty_levels_[static_cast<std::size_t>(lvl)];
    for (std::size_t qi = 0; qi < q.size(); ++qi) {
      const std::size_t ui = q[qi];
      in_queue_[ui] = false;
      ++evaluations_;
      const Unit& u = units_[ui];
      if (u.is_macro) eval_macro_port(u.index >> 8, u.index & 0xff);
      else eval_cell(u.index);
    }
    q.clear();
  }
}

void GateSim::step() {
  settle();
  // Sample flop inputs (scan mux first when present).
  std::vector<Logic> next(flop_cells_.size());
  for (std::size_t i = 0; i < flop_cells_.size(); ++i) {
    const Cell& c = nl_->cells()[flop_cells_[i]];
    if (c.type == CellType::kSdff) {
      const Logic se = net(c.inputs[2]);
      next[i] = scflow::logic_mux(se, net(c.inputs[0]), net(c.inputs[1]));
    } else {
      next[i] = net(c.inputs[0]);
    }
  }
  // RAM writes.
  for (MacroState& ms : macros_) {
    if (ms.info->kind != nl::MacroInfo::Kind::kRam) continue;
    const auto [wen_ok, wen] = read_bus(nl_->find_output(ms.info->write_enable_port)->nets);
    if (!wen_ok || wen == 0) continue;
    const auto [addr_ok, addr] = read_bus(nl_->find_output(ms.info->write_addr_port)->nets);
    const auto [data_ok, data] = read_bus(nl_->find_output(ms.info->write_data_port)->nets);
    if (!addr_ok) continue;  // X write address: contents unknowable; skip
    ms.ram_words[addr] = data_ok ? static_cast<std::uint32_t>(data) : 0;
    ms.written[addr] = true;
    // Stamp with the pre-increment count: age := write_count - stamp then
    // matches the kernel models' (current_wc - wc_at_write) convention.
    ms.written_at[addr] = ms.write_count++;
    // Contents changed: re-evaluate read ports touching this RAM.
    for (const auto& rp : ms.info->read_data_ports)
      for (NetId n : nl_->find_input(rp)->nets) mark_dirty_fanout(n);
    for (std::size_t port = 0; port < ms.info->read_data_ports.size(); ++port) {
      // Mark the macro port unit itself dirty.
      for (std::size_t ui = 0; ui < units_.size(); ++ui) {
        if (units_[ui].is_macro &&
            macros_[units_[ui].index >> 8].info == ms.info &&
            (units_[ui].index & 0xff) == port && !in_queue_[ui]) {
          in_queue_[ui] = true;
          dirty_levels_[static_cast<std::size_t>(units_[ui].level)].push_back(ui);
        }
      }
    }
  }
  // Commit flops.
  for (std::size_t i = 0; i < flop_cells_.size(); ++i)
    set_net(nl_->cells()[flop_cells_[i]].output, next[i]);
  ++cycles_;
}

scflow::LogicVector GateSim::output_bits(const std::string& name) {
  const auto it = out_ports_.find(name);
  if (it == out_ports_.end()) throw std::invalid_argument("no output '" + name + "'");
  scflow::LogicVector v(it->second->nets.size());
  for (std::size_t i = 0; i < it->second->nets.size(); ++i)
    v.set(i, net(it->second->nets[i]));
  return v;
}

std::uint64_t GateSim::output(const std::string& name) {
  const auto v = output_bits(name);
  if (!v.is_fully_defined())
    throw std::runtime_error("output '" + name + "' carries X/Z: " + v.to_string());
  return v.to_uint();
}

}  // namespace scflow::hdlsim
