#include "hdlsim/gate_sim.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "core/thread_pool.hpp"
#include "dtypes/bit_int.hpp"

namespace scflow::hdlsim {

using nl::Cell;
using nl::CellType;
using nl::NetId;
using scflow::Logic;

namespace {

/// The original switch + logic_*() evaluator, kept verbatim as the oracle
/// for the table-driven path (and as the source the LUTs are built from,
/// so both paths share one definition of the 4-value semantics).
Logic reference_cell_eval(CellType t, Logic a, Logic b, Logic c) {
  switch (t) {
    case CellType::kTie0: return Logic::L0;
    case CellType::kTie1: return Logic::L1;
    case CellType::kBuf: return a == Logic::Z ? Logic::X : a;
    case CellType::kInv: return scflow::logic_not(a);
    case CellType::kAnd2: return scflow::logic_and(a, b);
    case CellType::kOr2: return scflow::logic_or(a, b);
    case CellType::kNand2: return scflow::logic_not(scflow::logic_and(a, b));
    case CellType::kNor2: return scflow::logic_not(scflow::logic_or(a, b));
    case CellType::kXor2: return scflow::logic_xor(a, b);
    case CellType::kXnor2: return scflow::logic_not(scflow::logic_xor(a, b));
    case CellType::kMux2: return scflow::logic_mux(a, b, c);
    default: return Logic::X;  // flops not evaluated combinationally
  }
}

/// One flat 16x64 block of truth tables, indexed type<<6 | packed input
/// code (in0 | in1<<2 | in2<<4; absent inputs read as any code — the
/// tables are constant across ignored-input codes).
const std::uint8_t* cell_luts() {
  static const auto tables = [] {
    std::array<std::uint8_t, 16 * 64> tb{};
    for (unsigned ti = 0; ti < 16; ++ti) {
      for (unsigned code = 0; code < 64; ++code) {
        const auto a = static_cast<Logic>(code & 3u);
        const auto b = static_cast<Logic>((code >> 2) & 3u);
        const auto c = static_cast<Logic>((code >> 4) & 3u);
        tb[(ti << 6) | code] =
            static_cast<std::uint8_t>(reference_cell_eval(static_cast<CellType>(ti), a, b, c));
      }
    }
    return tb;
  }();
  return tables.data();
}

}  // namespace

// Context of one parallel sweep round: the level's word range, cut into
// one contiguous chunk per lane.
struct GateSim::SweepJob {
  GateSim* self;
  std::uint32_t wb, we, chunk;
};

GateSim::GateSim(const nl::Netlist& netlist, Options options)
    : nl_(&netlist), options_(options) {
  netlist.validate();
  if (netlist.net_count() > 0xffff)
    throw std::logic_error(netlist.name() + ": too many nets for 16-bit unit encoding");
  // One extra sentinel slot past the real nets: permanently X, never
  // written, read by unused unit input slots.
  values_.assign(static_cast<std::size_t>(netlist.net_count()) + 1, Logic::X);
  const auto sentinel = static_cast<std::uint16_t>(netlist.net_count());
  for (const auto& p : netlist.inputs()) in_ports_[p.name] = &p;
  for (const auto& p : netlist.outputs()) out_ports_[p.name] = &p;

  // Flops are clock-edge sources, flattened into plain records so step()
  // walks contiguous memory.
  for (const Cell& c : netlist.cells()) {
    if (!nl::cell_is_sequential(c.type)) continue;
    FlopRec f;
    f.d = c.inputs[0];
    if (c.type == CellType::kSdff) {
      f.si = c.inputs[1];
      f.se = c.inputs[2];
      f.sdff = true;
    }
    f.out = c.output;
    f.init = c.init;
    flops_.push_back(f);
  }
  next_flop_.assign(flops_.size(), Logic::X);
  flop_dirty_words_.assign((flops_.size() + 63) / 64, 0);
  flop_active_.reserve(flops_.size());

  // Evaluation units: combinational cells (in the netlist's stable
  // topological order, so memory layout roughly follows level order) then
  // macro read ports.  src_cell/driver_unit are construction scaffolding.
  std::vector<std::size_t> src_cell;  // unit -> cell index (cells only)
  std::vector<std::int32_t> driver_unit(static_cast<std::size_t>(netlist.net_count()), -1);
  for (std::size_t ci : nl::combinational_topo_order(netlist)) {
    const Cell& c = netlist.cells()[ci];
    Unit u;
    u.type = static_cast<std::uint8_t>(c.type);
    u.n_inputs = static_cast<std::uint8_t>(c.inputs.size());
    u.in[0] = u.in[1] = u.in[2] = sentinel;
    for (std::size_t k = 0; k < c.inputs.size(); ++k)
      u.in[k] = static_cast<std::uint16_t>(c.inputs[k]);
    u.out = static_cast<std::uint16_t>(c.output);
    driver_unit[static_cast<std::size_t>(c.output)] = static_cast<std::int32_t>(units_.size());
    src_cell.push_back(ci);
    units_.push_back(u);
  }
  for (std::size_t mi = 0; mi < netlist.macros.size(); ++mi) {
    const auto& info = netlist.macros[mi];
    MacroState ms;
    ms.info = &info;
    if (info.kind == nl::MacroInfo::Kind::kRam) {
      const std::size_t entries = std::size_t{1} << info.addr_bits;
      ms.ram_words.assign(entries, 0);
      ms.written.assign(entries, false);
      ms.written_at.assign(entries, 0);
      ms.wen_nets = netlist.find_output(info.write_enable_port)->nets;
      ms.waddr_nets = netlist.find_output(info.write_addr_port)->nets;
      ms.wdata_nets = netlist.find_output(info.write_data_port)->nets;
    }
    for (std::size_t port = 0; port < info.read_data_ports.size(); ++port) {
      MacroPort mp;
      mp.macro = static_cast<std::uint32_t>(mi);
      mp.port = static_cast<std::uint32_t>(port);
      mp.addr_nets = netlist.find_output(info.read_addr_ports[port])->nets;
      // RAM reads also depend on contents, which change only at clock
      // edges — no combinational dependency on the write side.
      if (info.kind == nl::MacroInfo::Kind::kRam && port < info.read_enable_ports.size())
        mp.en_nets = netlist.find_output(info.read_enable_ports[port])->nets;
      const auto* data = netlist.find_input(info.read_data_ports[port]);
      if (data == nullptr) throw std::logic_error("macro data port missing");
      mp.data_nets = data->nets;

      Unit u;
      u.type = kMacroUnit;
      u.in[0] = u.in[1] = u.in[2] = sentinel;
      u.out = static_cast<std::uint16_t>(macro_ports_.size());
      for (NetId n : mp.data_nets)
        driver_unit[static_cast<std::size_t>(n)] = static_cast<std::int32_t>(units_.size());
      ms.port_unit.push_back(static_cast<std::uint32_t>(units_.size()));
      src_cell.push_back(~std::size_t{0});
      macro_ports_.push_back(std::move(mp));
      units_.push_back(u);
    }
    macros_.push_back(std::move(ms));
  }

  // Per-unit input nets as one flat arena (cells inline their ≤3 nets;
  // macro ports contribute address + read-enable nets), used to build the
  // fanout CSR and to run the Kahn pass.
  const auto for_each_unit_input = [this](const Unit& u, auto&& fn) {
    if (u.type != kMacroUnit) {
      for (std::size_t k = 0; k < u.n_inputs; ++k) fn(u.in[k]);
    } else {
      const MacroPort& mp = macro_ports_[static_cast<std::size_t>(u.out)];
      for (NetId n : mp.addr_nets) fn(n);
      for (NetId n : mp.en_nets) fn(n);
    }
  };
  // Flop sample taps ride in the same CSR, encoded past the unit range.
  const auto for_each_flop_input = [this](const FlopRec& f, auto&& fn) {
    fn(f.d);
    if (f.sdff) {
      fn(f.si);
      fn(f.se);
    }
  };
  const auto& out_ports = netlist.outputs();
  out_cache_.assign(out_ports.size(), {});
  const auto build_fanout = [&] {
    fanout_offsets_.assign(static_cast<std::size_t>(nl_->net_count()) + 1, 0);
    for (const Unit& u : units_) {
      if (u.type == kPadUnit) continue;
      for_each_unit_input(u, [&](NetId n) { ++fanout_offsets_[static_cast<std::size_t>(n) + 1]; });
    }
    for (const FlopRec& f : flops_)
      for_each_flop_input(f, [&](NetId n) { ++fanout_offsets_[static_cast<std::size_t>(n) + 1]; });
    for (const nl::PortBits& p : out_ports)
      for (NetId n : p.nets) ++fanout_offsets_[static_cast<std::size_t>(n) + 1];
    for (std::size_t i = 1; i < fanout_offsets_.size(); ++i)
      fanout_offsets_[i] += fanout_offsets_[i - 1];
    fanout_targets_.assign(fanout_offsets_.back(), 0);
    std::vector<std::uint32_t> cur(fanout_offsets_.begin(), fanout_offsets_.end() - 1);
    for (std::size_t ui = 0; ui < units_.size(); ++ui) {
      if (units_[ui].type == kPadUnit) continue;
      for_each_unit_input(units_[ui], [&](NetId n) {
        fanout_targets_[cur[static_cast<std::size_t>(n)]++] = static_cast<std::uint32_t>(ui);
      });
    }
    fanout_unit_end_ = cur;  // flop and output-port taps fill in after this
    for (std::size_t fi = 0; fi < flops_.size(); ++fi)
      for_each_flop_input(flops_[fi], [&](NetId n) {
        fanout_targets_[cur[static_cast<std::size_t>(n)]++] =
            static_cast<std::uint32_t>(units_.size() + fi);
      });
    for (std::size_t pi = 0; pi < out_ports.size(); ++pi)
      for (NetId n : out_ports[pi].nets)
        fanout_targets_[cur[static_cast<std::size_t>(n)]++] =
            static_cast<std::uint32_t>(units_.size() + flops_.size() + pi);
  };
  build_fanout();

  // Levelise with one Kahn pass over the unit graph (cells were already
  // cycle-checked by combinational_topo_order; this also covers cycles
  // that thread through a macro read port).  Every unit's drivers sit at
  // strictly lower levels — the property the (parallel) level sweep rests
  // on: within a level, units read only already-settled nets.
  std::vector<std::int32_t> level(units_.size(), 0);
  {
    std::vector<std::uint32_t> indeg(units_.size(), 0);
    for (std::size_t ui = 0; ui < units_.size(); ++ui)
      for_each_unit_input(units_[ui], [&](NetId n) {
        if (driver_unit[static_cast<std::size_t>(n)] >= 0) ++indeg[ui];
      });
    std::vector<std::uint32_t> ready;
    ready.reserve(units_.size());
    for (std::size_t ui = 0; ui < units_.size(); ++ui)
      if (indeg[ui] == 0) ready.push_back(static_cast<std::uint32_t>(ui));
    const auto relax_net = [&](NetId n, std::int32_t new_level) {
      const auto b = fanout_offsets_[static_cast<std::size_t>(n)];
      const auto e = fanout_offsets_[static_cast<std::size_t>(n) + 1];
      for (std::uint32_t k = b; k < e; ++k) {
        const std::uint32_t t = fanout_targets_[k];
        if (t >= units_.size()) continue;  // flop tap: no combinational edge
        level[t] = std::max(level[t], new_level);
        if (--indeg[t] == 0) ready.push_back(t);
      }
    };
    std::size_t head = 0;
    for (; head < ready.size(); ++head) {
      const std::uint32_t ui = ready[head];
      const Unit& u = units_[ui];
      if (u.type != kMacroUnit) {
        relax_net(u.out, level[ui] + 1);
      } else {
        for (NetId n : macro_ports_[static_cast<std::size_t>(u.out)].data_nets)
          relax_net(n, level[ui] + 1);
      }
    }
    if (head != units_.size()) {
      for (std::size_t ui = 0; ui < units_.size(); ++ui) {
        if (indeg[ui] == 0) continue;
        if (units_[ui].type != kMacroUnit)
          throw std::logic_error(netlist.name() + ": combinational cycle through " +
                                 nl::describe_cell(netlist, src_cell[ui]));
        const MacroPort& mp = macro_ports_[static_cast<std::size_t>(units_[ui].out)];
        throw std::logic_error(netlist.name() + ": combinational cycle through macro '" +
                               macros_[mp.macro].info->name + "' read port " +
                               std::to_string(mp.port));
      }
    }
  }

  // Reorder units by (level, creation order), padding each level to a
  // 64-unit boundary so every level owns whole dirty-bitmap words — the
  // invariant that lets the sweep hand a level's words to parallel lanes
  // without masks or cross-level word sharing.  Then rebuild the macro
  // port map and the fanout CSR against the final indices.
  {
    std::vector<std::uint32_t> perm(units_.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<std::uint32_t>(i);
    std::stable_sort(perm.begin(), perm.end(), [&level](std::uint32_t a, std::uint32_t b) {
      return level[a] < level[b];
    });
    Unit pad;
    pad.in[0] = pad.in[1] = pad.in[2] = sentinel;
    pad.out = sentinel;
    pad.type = kPadUnit;
    std::vector<Unit> new_units;
    new_units.reserve((units_.size() / 64 + 8) * 64);
    std::vector<std::uint32_t> old_to_new(units_.size());
    const auto pad_to_word = [&] {
      while (new_units.size() % 64 != 0) new_units.push_back(pad);
    };
    level_word_begin_.push_back(0);
    std::int32_t cur_level = perm.empty() ? 0 : level[perm[0]];
    for (const std::uint32_t oi : perm) {
      if (level[oi] != cur_level) {
        pad_to_word();
        level_word_begin_.push_back(static_cast<std::uint32_t>(new_units.size() / 64));
        cur_level = level[oi];
      }
      old_to_new[oi] = static_cast<std::uint32_t>(new_units.size());
      new_units.push_back(units_[oi]);
    }
    pad_to_word();
    level_word_begin_.push_back(static_cast<std::uint32_t>(new_units.size() / 64));
    units_ = std::move(new_units);
    for (MacroState& ms : macros_)
      for (std::uint32_t& ui : ms.port_unit) ui = old_to_new[ui];
    build_fanout();
  }

  luts_ = cell_luts();
  dirty_words_.assign(units_.size() / 64, 0);

  // Sweep lanes: one per resolved thread; the pool holds the rest of the
  // lanes beyond the calling thread.  Deferred-macro scratch is reserved
  // up front so the steady state never allocates.
  const unsigned lanes = core::ThreadPool::workers_for(options_.threads) + 1;
  lanes_ = std::vector<Lane>(lanes);
  for (Lane& l : lanes_) l.deferred_macros.reserve(macro_ports_.size());
  if (lanes > 1) pool_ = std::make_unique<core::ThreadPool>(lanes - 1);

  // Initial state: flop outputs to init (or X), every real unit and flop
  // dirty once (padding units stay permanently unmarked).
  for (const FlopRec& f : flops_)
    values_[static_cast<std::size_t>(f.out)] =
        options_.x_initial_flops ? Logic::X : scflow::logic_from_bool(f.init != 0);
  for (std::size_t t = 0; t < units_.size(); ++t)
    if (units_[t].type != kPadUnit) mark_target_dirty(static_cast<std::uint32_t>(t));
  for (std::size_t fi = 0; fi < flops_.size(); ++fi)
    mark_target_dirty(static_cast<std::uint32_t>(units_.size() + fi));
  note_queue_peak();
}

GateSim::~GateSim() = default;

std::vector<WorkerShardStats> GateSim::worker_stats() const {
  std::vector<WorkerShardStats> out;
  out.reserve(lanes_.size());
  for (const Lane& l : lanes_) out.push_back(l.total);
  return out;
}

void GateSim::set_net(NetId net, Logic v) {
  if (static_cast<std::uint32_t>(net) == stuck_net_) v = stuck_value_;
  auto& slot = values_[static_cast<std::size_t>(net)];
  if (slot == v) return;
  slot = v;
  mark_dirty_fanout(net);
}

void GateSim::inject_stuck(NetId net, Logic v) {
  if (net < 0 || net >= nl_->net_count())
    throw std::invalid_argument(nl_->name() + ": stuck-at net out of range");
  if (!scflow::logic_is_01(v))
    throw std::invalid_argument(nl_->name() + ": stuck-at value must be 0/1");
  stuck_net_ = static_cast<std::uint32_t>(net);
  stuck_value_ = v;
  set_net(net, v);  // clamps; marks fanout when the value actually changes
  note_queue_peak();
}

bool GateSim::flip_flop(std::size_t i) {
  const FlopRec& f = flops_[i];
  const Logic cur = values_[static_cast<std::size_t>(f.out)];
  if (!scflow::logic_is_01(cur)) return false;
  set_net(f.out, scflow::logic_not(cur));
  // Keep the committed-state buffer coherent with the (possibly clamped)
  // flipped value, and force a D re-sample at the next edge so the flop
  // recovers through its input cone like real hardware would.
  next_flop_[i] = values_[static_cast<std::size_t>(f.out)];
  mark_target_dirty(static_cast<std::uint32_t>(units_.size() + i));
  note_queue_peak();
  return true;
}

GateSim::PortSample GateSim::output_sample(PortRef port) const {
  PortSample s;
  for (std::size_t i = 0; i < port->nets.size(); ++i) {
    const Logic b = net(port->nets[i]);
    if (!scflow::logic_is_01(b)) continue;
    s.known |= std::uint64_t{1} << i;
    if (b == Logic::L1) s.value |= std::uint64_t{1} << i;
  }
  return s;
}

void GateSim::mark_dirty_fanout(NetId net) {
  const std::uint32_t b = fanout_offsets_[static_cast<std::size_t>(net)];
  const std::uint32_t e = fanout_offsets_[static_cast<std::size_t>(net) + 1];
  for (std::uint32_t k = b; k < e; ++k) mark_target_dirty(fanout_targets_[k]);
}

GateSim::PortRef GateSim::input_port(const std::string& name) const {
  const auto it = in_ports_.find(name);
  if (it == in_ports_.end()) throw std::invalid_argument("no input '" + name + "'");
  return it->second;
}

GateSim::PortRef GateSim::output_port(const std::string& name) const {
  const auto it = out_ports_.find(name);
  if (it == out_ports_.end()) throw std::invalid_argument("no output '" + name + "'");
  return it->second;
}

void GateSim::set_input(const std::string& name, std::uint64_t value) {
  set_input(input_port(name), value);
}

void GateSim::set_input(PortRef port, std::uint64_t value) {
  for (std::size_t i = 0; i < port->nets.size(); ++i)
    set_net(port->nets[i], scflow::logic_from_bool(((value >> i) & 1u) != 0));
  note_queue_peak();
}

void GateSim::set_input_x(const std::string& name) {
  const auto it = in_ports_.find(name);
  if (it == in_ports_.end()) throw std::invalid_argument("no input '" + name + "'");
  for (NetId n : it->second->nets) set_net(n, Logic::X);
  note_queue_peak();
}

void GateSim::set_input_logic(const std::string& name, const scflow::LogicVector& bits) {
  const auto it = in_ports_.find(name);
  if (it == in_ports_.end()) throw std::invalid_argument("no input '" + name + "'");
  if (bits.width() > it->second->nets.size())
    throw std::invalid_argument("vector wider than input '" + name + "'");
  for (std::size_t i = 0; i < bits.width(); ++i) set_net(it->second->nets[i], bits.at(i));
  note_queue_peak();
}

std::pair<bool, std::uint64_t> GateSim::read_bus(const std::vector<NetId>& nets) const {
  std::uint64_t v = 0;
  bool defined = true;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const Logic b = net(nets[i]);
    if (!scflow::logic_is_01(b)) defined = false;
    if (b == Logic::L1) v |= (std::uint64_t{1} << i);
  }
  return {defined, v};
}

void GateSim::eval_macro_port(const Unit& u) {
  const MacroPort& mp = macro_ports_[static_cast<std::size_t>(u.out)];
  MacroState& ms = macros_[mp.macro];
  const auto& mi = *ms.info;
  const auto [addr_ok, addr] = read_bus(mp.addr_nets);

  bool enabled = false;
  if (mi.kind == nl::MacroInfo::Kind::kRam && !mp.en_nets.empty()) {
    const auto [en_ok, en] = read_bus(mp.en_nets);
    enabled = en_ok && en != 0;
  }

  std::uint64_t word = 0;
  const bool defined = addr_ok;
  if (addr_ok) {
    if (mi.kind == nl::MacroInfo::Kind::kRom) {
      word = addr < mi.rom_contents.size()
                 ? static_cast<std::uint64_t>(mi.rom_contents[addr]) &
                       scflow::bit_mask(mi.data_bits)
                 : 0;
    } else {
      word = ms.ram_words[addr];
      if (options_.check_ram && enabled) {
        if (!ms.written[addr]) {
          if (ram_violation_.count++ == 0) {
            ram_violation_.first_cycle = cycles_;
            ram_violation_.first_address = static_cast<unsigned>(addr);
            ram_violation_.first_kind = "never-written";
          }
        } else if (ms.write_count - ms.written_at[addr] > 55) {
          if (ram_violation_.count++ == 0) {
            ram_violation_.first_cycle = cycles_;
            ram_violation_.first_address = static_cast<unsigned>(addr);
            ram_violation_.first_kind = "stale";
          }
        }
      }
    }
  } else if (options_.check_ram && enabled && mi.kind == nl::MacroInfo::Kind::kRam) {
    if (ram_violation_.count++ == 0) {
      ram_violation_.first_cycle = cycles_;
      ram_violation_.first_address = 0;
      ram_violation_.first_kind = "x-address";
    }
  }

  for (std::size_t i = 0; i < mp.data_nets.size(); ++i)
    set_net(mp.data_nets[i],
            defined ? scflow::logic_from_bool(((word >> i) & 1u) != 0) : Logic::X);
}

template <bool Atomic>
void GateSim::sweep_words(std::uint32_t wb, std::uint32_t we, Lane& lane) {
  // Everything the inner loop touches is hoisted into locals: stores into
  // dirty_words_ are std::uint64_t writes, so member counters of the same
  // type would otherwise be reloaded around every mark.
  Logic* const vals = values_.data();
  const Unit* const units = units_.data();
  const std::uint32_t* const fo = fanout_offsets_.data();
  const std::uint32_t* const fu = fanout_unit_end_.data();
  const std::uint32_t* const ft = fanout_targets_.data();
  std::uint64_t* const dw = dirty_words_.data();
  std::uint64_t* const fdw = flop_dirty_words_.data();
  OutCache* const oc = out_cache_.data();
  const std::uint8_t* const luts = luts_;
  const auto n_units = static_cast<std::uint32_t>(units_.size());
  const auto n_flops = static_cast<std::uint32_t>(flops_.size());
  const bool ref_eval = options_.use_reference_eval;
  const std::uint32_t stuck = stuck_net_;  // kNoStuckNet when fault-free
  std::uint64_t evals = lane.evals, pushes = lane.pushes;
  for (std::uint32_t wi = wb; wi < we; ++wi) {
    std::uint64_t bits = dw[wi];
    if (bits == 0) continue;
    // The caller owns [wb, we) exclusively for the duration of the level,
    // and evaluating an in-level unit marks only *later* levels' words, so
    // a plain read-and-clear consume is race-free even in the atomic
    // instantiation — one pass per word, no re-read loop.
    dw[wi] = 0;
    do {
      const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::uint32_t ui = (wi << 6) | b;
      const Unit& u = units[ui];
      ++evals;
      if (u.type >= kPadUnit) [[unlikely]] {
        // Macro read ports defer to the calling thread at the level
        // boundary (sequential RAM-violation bookkeeping); the consumed
        // bit still counts as this lane's work unit.  Padding units are
        // never marked; the branch only guards against corruption.
        if (u.type == kMacroUnit) lane.deferred_macros.push_back(ui);
        continue;
      }
      Logic out;
      std::uint32_t outn;
      if (ref_eval) [[unlikely]] {
        const Logic a = u.n_inputs > 0 ? vals[u.in[0]] : Logic::L0;
        const Logic bb = u.n_inputs > 1 ? vals[u.in[1]] : Logic::L0;
        const Logic cc = u.n_inputs > 2 ? vals[u.in[2]] : Logic::L0;
        out = reference_cell_eval(static_cast<CellType>(u.type), a, bb, cc);
        outn = u.out;
      } else {
        // Plain-cell fast path: LUT eval with no call boundaries.  All
        // three input slots are read unconditionally — unused slots point
        // at the sentinel net and the truth tables are constant across
        // ignored-input codes, so the arity never needs a branch.  The
        // three input ids and the output net share the unit's leading
        // 8 bytes — one (possibly unaligned, cheap on x86) load replaces
        // four dependent 16-bit loads at the head of the eval chain.
        std::uint64_t nets8;
        std::memcpy(&nets8, &u, sizeof nets8);
        const unsigned code = static_cast<unsigned>(vals[nets8 & 0xffffu]) |
                              (static_cast<unsigned>(vals[(nets8 >> 16) & 0xffffu]) << 2) |
                              (static_cast<unsigned>(vals[(nets8 >> 32) & 0xffffu]) << 4);
        out = static_cast<Logic>(luts[(static_cast<unsigned>(u.type) << 6) | code]);
        outn = static_cast<std::uint32_t>(nets8 >> 48);
      }
      // Stuck-at overlay: the faulty net's driver still evaluates, but its
      // write is clamped, so the fault propagates through change detection
      // exactly like a driven value.
      if (outn == stuck) [[unlikely]]
        out = stuck_value_;
      // Change detection: the output net belongs to this unit alone, so
      // the read-compare-write is private even mid-round.
      Logic& slot = vals[outn];
      if (slot == out) continue;
      slot = out;
      // Unit targets (branchless marking), then the usually-empty flop
      // tap tail of this net's CSR range.  Atomic lanes publish marks
      // with relaxed fetch_or — the pool join orders them before any
      // reader — and claim the fresh 0->1 transition exactly once, which
      // keeps the summed dirty_pushes identical to the sequential count.
      std::uint32_t k = fo[outn];
      const std::uint32_t fm = fu[outn];
      const std::uint32_t fe = fo[outn + 1];
      for (; k < fm; ++k) {
        const std::uint32_t t = ft[k];
        const std::uint64_t m = std::uint64_t{1} << (t & 63u);
        if constexpr (Atomic) {
          const std::uint64_t prev =
              std::atomic_ref<std::uint64_t>(dw[t >> 6]).fetch_or(m, std::memory_order_relaxed);
          pushes += (prev & m) == 0 ? 1u : 0u;
        } else {
          std::uint64_t& w = dw[t >> 6];
          pushes += (w & m) == 0 ? 1u : 0u;
          w |= m;
        }
      }
      for (; k < fe; ++k) {
        const std::uint32_t x = ft[k] - n_units;
        if (x < n_flops) {
          const std::uint64_t m = std::uint64_t{1} << (x & 63u);
          if constexpr (Atomic)
            std::atomic_ref<std::uint64_t>(fdw[x >> 6]).fetch_or(m, std::memory_order_relaxed);
          else
            fdw[x >> 6] |= m;
        } else {
          if constexpr (Atomic)
            std::atomic_ref<bool>(oc[x - n_flops].dirty).store(true, std::memory_order_relaxed);
          else
            oc[x - n_flops].dirty = true;
        }
      }
    } while (bits != 0);
  }
  lane.evals = evals;
  lane.pushes = pushes;
}

void GateSim::settle() {
  ++counters_.settle_calls;
  bool worked = false;
  const std::size_t n_levels = level_word_begin_.size() - 1;
  const auto n_lanes = static_cast<std::uint32_t>(lanes_.size());
  for (std::size_t L = 0; L < n_levels; ++L) {
    const std::uint32_t wb = level_word_begin_[L];
    const std::uint32_t we = level_word_begin_[L + 1];
    if (pool_ == nullptr) {
      // Sequential: sweep the level in place (clean words cost one load).
      sweep_words<false>(wb, we, lanes_[0]);
      if (lanes_[0].evals == 0) continue;
      ++lanes_[0].total.level_sweeps;
    } else {
      // Pre-scan decides dispatch.  It reads only the dirty state, so the
      // decision — and everything downstream of it — is a pure function
      // of the simulation history, not of scheduling.
      std::uint32_t nz = 0;
      for (std::uint32_t wi = wb; wi < we; ++wi) nz += dirty_words_[wi] != 0 ? 1u : 0u;
      if (nz == 0) continue;
      if (nz >= 2 * n_lanes) {
        SweepJob job{this, wb, we, (we - wb + n_lanes - 1) / n_lanes};
        pool_->run(
            [](void* ctx, unsigned lane) {
              auto* j = static_cast<SweepJob*>(ctx);
              const std::uint32_t b = j->wb + static_cast<std::uint32_t>(lane) * j->chunk;
              if (b >= j->we) return;
              const std::uint32_t e = std::min(j->we, b + j->chunk);
              j->self->sweep_words<true>(b, e, j->self->lanes_[lane]);
            },
            &job);
        for (Lane& l : lanes_) ++l.total.level_sweeps;
      } else {
        sweep_words<false>(wb, we, lanes_[0]);
        ++lanes_[0].total.level_sweeps;
      }
    }
    worked = true;
    // Merge the lanes' level transients into the canonical counters.  Lane
    // order is fixed, so the sums — and thus every reported counter — are
    // identical no matter how the words were partitioned.
    std::uint64_t consumed = 0;
    for (Lane& l : lanes_) {
      consumed += l.evals;
      counters_.evaluations += l.evals;
      counters_.dirty_pushes += l.pushes;
      queued_now_ += l.pushes;
      l.total.evaluations += l.evals;
      l.total.dirty_pushes += l.pushes;
      l.evals = 0;
      l.pushes = 0;
    }
    queued_now_ -= consumed;
    // Deferred macro read ports, in ascending unit order (each lane's
    // chunk is an ascending contiguous word range, and lanes are visited
    // in chunk order) — exactly the order the sequential sweep evaluates
    // them in, so RAM-violation "first" bookkeeping matches bit for bit.
    for (Lane& l : lanes_) {
      for (const std::uint32_t ui : l.deferred_macros) eval_macro_port(units_[ui]);
      l.deferred_macros.clear();
    }
    note_queue_peak();
  }
  if (worked) ++counters_.settle_passes;
}

void GateSim::step() {
  settle();
  // Sample only flops whose D/SI/SE nets changed since the last edge, into
  // the persistent buffer (scan mux first when present).  Untouched flops
  // keep their previous next-value, which equals their committed output.
  // The dirty bitmap drains into the scratch index list so the commit loop
  // below can revisit exactly the sampled flops after it is cleared.
  flop_active_.clear();
  // The scratch list was reserved to the flop count at construction, so
  // the drain below must never grow it; the counter records any future
  // regression of that invariant (and backs the zero-alloc test).
  const std::size_t active_cap = flop_active_.capacity();
  const std::uint8_t* mux_lut = luts_ + (static_cast<unsigned>(CellType::kMux2) << 6);
  for (std::size_t wi = 0; wi < flop_dirty_words_.size(); ++wi) {
    std::uint64_t bits = flop_dirty_words_[wi];
    if (bits == 0) continue;
    flop_dirty_words_[wi] = 0;
    do {
      const std::uint32_t fi =
          static_cast<std::uint32_t>((wi << 6) | static_cast<unsigned>(std::countr_zero(bits)));
      bits &= bits - 1;
      flop_active_.push_back(fi);
      const FlopRec& f = flops_[fi];
      if (f.sdff) {
        const unsigned code = static_cast<unsigned>(net(f.se)) |
                              (static_cast<unsigned>(net(f.d)) << 2) |
                              (static_cast<unsigned>(net(f.si)) << 4);
        next_flop_[fi] = static_cast<Logic>(mux_lut[code]);
      } else {
        next_flop_[fi] = net(f.d);
      }
    } while (bits != 0);
  }
  // RAM writes, through the write-port nets resolved at construction.
  for (MacroState& ms : macros_) {
    if (ms.info->kind != nl::MacroInfo::Kind::kRam) continue;
    const auto [wen_ok, wen] = read_bus(ms.wen_nets);
    if (!wen_ok || wen == 0) continue;
    const auto [addr_ok, addr] = read_bus(ms.waddr_nets);
    const auto [data_ok, data] = read_bus(ms.wdata_nets);
    if (!addr_ok) continue;  // X write address: contents unknowable; skip
    ms.ram_words[addr] = data_ok ? static_cast<std::uint32_t>(data) : 0;
    ms.written[addr] = true;
    // Stamp with the pre-increment count: age := write_count - stamp then
    // matches the kernel models' (current_wc - wc_at_write) convention.
    ms.written_at[addr] = ms.write_count++;
    // Contents changed: re-queue the read-port units via the precomputed
    // (macro, port) -> unit map; their re-evaluation propagates any data
    // change to the consumers.
    for (std::uint32_t ui : ms.port_unit) {
      ++counters_.ram_rereads;
      mark_target_dirty(ui);
    }
  }
  // Commit the sampled flops.  The bitmap was cleared before this loop, so
  // a flop fed by another flop (scan chains, shift registers) is re-marked
  // for the next edge by its own fanout walk.  Same flattened CSR walk as
  // the sweep: on a busy edge most flops toggle, so the per-flop set_net
  // call chain is worth eliding.
  {
    Logic* const vals = values_.data();
    const std::uint32_t* const fo = fanout_offsets_.data();
    const std::uint32_t* const fu = fanout_unit_end_.data();
    const std::uint32_t* const ft = fanout_targets_.data();
    std::uint64_t* const dw = dirty_words_.data();
    std::uint64_t* const fdw = flop_dirty_words_.data();
    OutCache* const oc = out_cache_.data();
    const auto n_units = static_cast<std::uint32_t>(units_.size());
    const auto n_flops = static_cast<std::uint32_t>(flops_.size());
    const std::uint32_t stuck = stuck_net_;
    std::uint64_t pushes = 0, qnow = queued_now_;
    for (const std::uint32_t fi : flop_active_) {
      const auto out = static_cast<std::uint32_t>(flops_[fi].out);
      const Logic v = out == stuck ? stuck_value_ : next_flop_[fi];
      Logic& slot = vals[out];
      if (slot == v) continue;
      slot = v;
      std::uint32_t k = fo[out];
      const std::uint32_t fm = fu[out];
      const std::uint32_t fe = fo[out + 1];
      for (; k < fm; ++k) {
        const std::uint32_t t = ft[k];
        std::uint64_t& w = dw[t >> 6];
        const std::uint64_t m = std::uint64_t{1} << (t & 63u);
        const std::uint64_t fresh = (w & m) == 0 ? 1u : 0u;
        w |= m;
        pushes += fresh;
        qnow += fresh;
      }
      for (; k < fe; ++k) {
        const std::uint32_t x = ft[k] - n_units;
        if (x < n_flops) {
          fdw[x >> 6] |= std::uint64_t{1} << (x & 63u);
        } else {
          oc[x - n_flops].dirty = true;
        }
      }
    }
    counters_.dirty_pushes += pushes;
    lanes_[0].total.dirty_pushes += pushes;  // calling-thread marks: lane 0
    queued_now_ = qnow;
    note_queue_peak();
  }
  if (flop_active_.capacity() != active_cap) ++counters_.steady_state_allocs;
  ++cycles_;
}

scflow::LogicVector GateSim::output_bits(const std::string& name) {
  const auto it = out_ports_.find(name);
  if (it == out_ports_.end()) throw std::invalid_argument("no output '" + name + "'");
  scflow::LogicVector v(it->second->nets.size());
  for (std::size_t i = 0; i < it->second->nets.size(); ++i)
    v.set(i, net(it->second->nets[i]));
  return v;
}

std::uint64_t GateSim::output(const std::string& name) { return output(output_port(name)); }

std::uint64_t GateSim::output(PortRef port) {
  // PortRefs from output_port() point into nl_->outputs(), so the cache
  // slot is the pointer offset.
  OutCache& c = out_cache_[static_cast<std::size_t>(port - nl_->outputs().data())];
  if (c.dirty) {
    const auto [defined, v] = read_bus(port->nets);
    c.value = v;
    c.defined = defined;
    c.dirty = false;
  }
  if (!c.defined) [[unlikely]]
    throw std::runtime_error("output '" + port->name + "' carries X/Z: " +
                             output_bits(port->name).to_string());
  return c.value;
}

}  // namespace scflow::hdlsim
