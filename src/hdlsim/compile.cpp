#include "hdlsim/compile.hpp"

#include <algorithm>
#include <stdexcept>

namespace scflow::hdlsim {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kInterpreted: return "interpreted";
    case Backend::kCompiled: return "compiled";
  }
  return "?";
}

CompiledProgram compile_netlist(const nl::Netlist& n) {
  n.validate();
  CompiledProgram prog;
  prog.name = n.name();

  const auto net_count = static_cast<std::size_t>(n.net_count());
  std::vector<std::size_t> flop_cells;
  for (std::size_t ci = 0; ci < n.cells().size(); ++ci)
    if (nl::cell_is_sequential(n.cells()[ci].type)) flop_cells.push_back(ci);
  const auto F = static_cast<std::uint32_t>(flop_cells.size());
  prog.flop_count = F;
  for (const std::size_t ci : flop_cells)
    prog.flop_init.push_back(n.cells()[ci].init != 0 ? 1 : 0);

  // --- unit graph: combinational cells + macro read ports ----------------
  // Same graph GateSim levelizes; here a plain Kahn emission order is
  // enough (straight-line execution only needs *a* topological order, and
  // releasing ready units in creation order keeps it deterministic).
  struct UnitRef {
    std::size_t cell = ~std::size_t{0};  // cell index, or ~0 for macro port
    std::uint32_t port = 0;              // macro_ports index when cell == ~0
  };
  std::vector<UnitRef> units;
  std::vector<std::int32_t> driver_unit(net_count, -1);
  for (std::size_t ci = 0; ci < n.cells().size(); ++ci) {
    const nl::Cell& c = n.cells()[ci];
    if (nl::cell_is_sequential(c.type)) continue;
    driver_unit[static_cast<std::size_t>(c.output)] = static_cast<std::int32_t>(units.size());
    units.push_back({ci, 0});
  }
  // Port-input nets (addr + en) and data nets per macro_ports entry — the
  // Kahn scaffolding; the slot forms are resolved after slot allocation.
  std::vector<std::vector<nl::NetId>> port_in_nets, port_data_nets;
  std::vector<std::vector<nl::NetId>> port_addr_nets, port_en_nets;
  for (std::size_t mi = 0; mi < n.macros.size(); ++mi) {
    const nl::MacroInfo& info = n.macros[mi];
    for (std::size_t port = 0; port < info.read_data_ports.size(); ++port) {
      CompiledMacroPort mp;
      mp.macro = static_cast<std::uint32_t>(mi);
      std::vector<nl::NetId> ins = n.find_output(info.read_addr_ports[port])->nets;
      port_addr_nets.push_back(ins);
      if (info.kind == nl::MacroInfo::Kind::kRam && port < info.read_enable_ports.size()) {
        const auto& en = n.find_output(info.read_enable_ports[port])->nets;
        port_en_nets.push_back(en);
        ins.insert(ins.end(), en.begin(), en.end());
      } else {
        port_en_nets.emplace_back();
      }
      const nl::PortBits* data = n.find_input(info.read_data_ports[port]);
      if (data == nullptr)
        throw std::logic_error(n.name() + ": macro data port missing");
      for (const nl::NetId net : data->nets)
        driver_unit[static_cast<std::size_t>(net)] = static_cast<std::int32_t>(units.size());
      units.push_back({~std::size_t{0}, static_cast<std::uint32_t>(prog.macro_ports.size())});
      port_in_nets.push_back(std::move(ins));
      port_data_nets.push_back(data->nets);
      prog.macro_ports.push_back(std::move(mp));
    }
  }

  const auto for_each_unit_input = [&](const UnitRef& u, auto&& fn) {
    if (u.cell != ~std::size_t{0}) {
      for (const nl::NetId in : n.cells()[u.cell].inputs) fn(in);
    } else {
      for (const nl::NetId in : port_in_nets[u.port]) fn(in);
    }
  };
  const auto for_each_unit_output = [&](const UnitRef& u, auto&& fn) {
    if (u.cell != ~std::size_t{0}) {
      fn(n.cells()[u.cell].output);
    } else {
      for (const nl::NetId net : port_data_nets[u.port]) fn(net);
    }
  };

  // Consumers per net, over units only (flops are sequential sinks).
  std::vector<std::vector<std::uint32_t>> consumers(net_count);
  std::vector<std::uint32_t> indeg(units.size(), 0);
  for (std::size_t ui = 0; ui < units.size(); ++ui)
    for_each_unit_input(units[ui], [&](nl::NetId in) {
      consumers[static_cast<std::size_t>(in)].push_back(static_cast<std::uint32_t>(ui));
      if (driver_unit[static_cast<std::size_t>(in)] >= 0) ++indeg[ui];
    });

  std::vector<std::uint32_t> ready;
  ready.reserve(units.size());
  for (std::size_t ui = 0; ui < units.size(); ++ui)
    if (indeg[ui] == 0) ready.push_back(static_cast<std::uint32_t>(ui));

  std::vector<std::uint32_t> level(units.size(), 0);
  std::size_t head = 0;
  for (; head < ready.size(); ++head) {
    const std::uint32_t u = ready[head];
    for_each_unit_output(units[u], [&](nl::NetId out) {
      for (const std::uint32_t t : consumers[static_cast<std::size_t>(out)]) {
        level[t] = std::max(level[t], level[u] + 1);
        if (--indeg[t] == 0) ready.push_back(t);
      }
    });
  }
  if (head != units.size()) {
    for (std::size_t ui = 0; ui < units.size(); ++ui) {
      if (indeg[ui] == 0) continue;
      if (units[ui].cell != ~std::size_t{0})
        throw std::logic_error(n.name() + ": combinational cycle through " +
                               nl::describe_cell(n, units[ui].cell));
      throw std::logic_error(
          n.name() + ": combinational cycle through macro '" +
          n.macros[prog.macro_ports[units[ui].port].macro].name + "' read port");
    }
  }

  // Emission order: levels are a topological order, and units within one
  // level are mutually independent, so each level is sorted by kind.  The
  // executor then runs long kind-homogeneous spans with one dispatch per
  // span (see OpRun) instead of an indirect jump per op.
  const auto unit_kind = [&](std::uint32_t ui) {
    return units[ui].cell != ~std::size_t{0}
               ? static_cast<std::uint8_t>(n.cells()[units[ui].cell].type)
               : kMacroReadOp;
  };
  std::vector<std::uint32_t> order(ready.begin(), ready.begin() + head);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (level[a] != level[b]) return level[a] < level[b];
    return unit_kind(a) < unit_kind(b);
  });

  // --- slot allocation ---------------------------------------------------
  // Flop Q nets claim [0,F) in sequential-cell order.  Every other net
  // gets a dense slot above 2F in *emission order* — input ports first,
  // then each unit's outputs as the straight-line program produces them —
  // so the executor's operand loads land in recently written cache lines
  // instead of hopping around in net-id order.  The [F,2F) next-state
  // region has no backing nets: the flop-sample ops write it directly.
  prog.slot_of_net.assign(net_count, 0);
  std::vector<bool> assigned(net_count, false);
  for (std::uint32_t fi = 0; fi < F; ++fi) {
    const auto q = static_cast<std::size_t>(n.cells()[flop_cells[fi]].output);
    prog.slot_of_net[q] = fi;
    assigned[q] = true;
  }
  std::uint32_t next_slot = 2 * F;
  const auto assign = [&](nl::NetId net) {
    const auto i = static_cast<std::size_t>(net);
    if (!assigned[i]) {
      assigned[i] = true;
      prog.slot_of_net[i] = next_slot++;
    }
  };
  for (const nl::PortBits& p : n.inputs())
    for (const nl::NetId net : p.nets) assign(net);
  for (const std::uint32_t ui : order) for_each_unit_output(units[ui], assign);
  for (std::size_t net = 0; net < net_count; ++net) assign(static_cast<nl::NetId>(net));
  prog.slot_count = next_slot;
  if (prog.slot_count > CompiledOp::kOutMask + 1)
    throw std::logic_error(n.name() + ": too many nets for the 24-bit op encoding");

  const auto slot = [&prog](nl::NetId net) {
    return prog.slot_of_net[static_cast<std::size_t>(net)];
  };
  const auto slots_of = [&](const std::vector<nl::NetId>& nets) {
    std::vector<std::uint32_t> s;
    s.reserve(nets.size());
    for (const nl::NetId net : nets) s.push_back(slot(net));
    return s;
  };

  // --- macro metadata ----------------------------------------------------
  for (const nl::MacroInfo& mi : n.macros) {
    CompiledMacro cm;
    cm.kind = mi.kind;
    cm.name = mi.name;
    cm.addr_bits = mi.addr_bits;
    cm.data_bits = mi.data_bits;
    if (mi.kind == nl::MacroInfo::Kind::kRom) {
      cm.rom_contents = mi.rom_contents;
    } else {
      cm.wen_slots = slots_of(n.find_output(mi.write_enable_port)->nets);
      cm.waddr_slots = slots_of(n.find_output(mi.write_addr_port)->nets);
      cm.wdata_slots = slots_of(n.find_output(mi.write_data_port)->nets);
    }
    prog.macros.push_back(std::move(cm));
  }
  for (std::size_t pi = 0; pi < prog.macro_ports.size(); ++pi) {
    prog.macro_ports[pi].addr_slots = slots_of(port_addr_nets[pi]);
    prog.macro_ports[pi].en_slots = slots_of(port_en_nets[pi]);
    prog.macro_ports[pi].data_slots = slots_of(port_data_nets[pi]);
  }

  // --- op emission in the Kahn order -------------------------------------
  const auto emit = [&](const UnitRef& u) {
    if (u.cell == ~std::size_t{0}) {
      CompiledOp op(kMacroReadOp, 0);
      op.in0 = u.port;
      prog.ops.push_back(op);
      return;
    }
    const nl::Cell& c = n.cells()[u.cell];
    if (c.type == nl::CellType::kTie0) {
      prog.tie0_slots.push_back(slot(c.output));
      return;
    }
    if (c.type == nl::CellType::kTie1) {
      prog.tie1_slots.push_back(slot(c.output));
      return;
    }
    CompiledOp op(static_cast<std::uint8_t>(c.type), slot(c.output));
    if (!c.inputs.empty()) op.in0 = slot(c.inputs[0]);
    if (c.inputs.size() > 1) op.in1 = slot(c.inputs[1]);
    if (c.inputs.size() > 2) op.in2 = slot(c.inputs[2]);
    prog.ops.push_back(op);
  };
  for (const std::uint32_t ui : order) emit(units[ui]);
  prog.comb_op_count = prog.ops.size();

  // --- flop-sample ops: next-state into the flat commit region -----------
  // dff samples D with a buffer; sdff is the scan mux (se ? si : d), the
  // same {sel, a0, a1} = {se, d, si} shape GateSim's sampler uses.
  for (std::uint32_t fi = 0; fi < F; ++fi) {
    const nl::Cell& c = n.cells()[flop_cells[fi]];
    if (c.type == nl::CellType::kDff) {
      CompiledOp op(static_cast<std::uint8_t>(nl::CellType::kBuf), F + fi);
      op.in0 = slot(c.inputs[0]);
      prog.ops.push_back(op);
    } else {
      CompiledOp op(static_cast<std::uint8_t>(nl::CellType::kMux2), F + fi);
      op.in0 = slot(c.inputs[2]);  // se
      op.in1 = slot(c.inputs[0]);  // d
      op.in2 = slot(c.inputs[1]);  // si
      prog.ops.push_back(op);
    }
  }

  // --- kind-homogeneous runs over the final op array ---------------------
  for (std::size_t i = 0; i < prog.ops.size();) {
    std::size_t j = i + 1;
    while (j < prog.ops.size() && prog.ops[j].kind() == prog.ops[i].kind()) ++j;
    prog.runs.push_back({prog.ops[i].kind(), static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j)});
    i = j;
  }

  // --- port bindings -----------------------------------------------------
  for (const nl::PortBits& p : n.inputs()) prog.input_slots.push_back(slots_of(p.nets));
  for (const nl::PortBits& p : n.outputs()) prog.output_slots.push_back(slots_of(p.nets));
  return prog;
}

}  // namespace scflow::hdlsim
