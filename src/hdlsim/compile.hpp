// Netlist-to-bytecode compiler for the bit-parallel gate backend: lowers
// a levelized gate netlist into compact straight-line two-state bytecode
// — one fused op per combinational cell, operands pre-resolved to dense
// word slots, flop commits as one flat copy region — executed by
// hdlsim::CompiledSim with 64 independent patterns packed per word.
//
// Slot layout (the property the executor's flat flop commit rests on):
//   [0, F)       flop Q values, in netlist sequential-cell (scan-chain)
//                order — the committed state
//   [F, 2F)      flop next-state values, same order — written by the
//                trailing flop-sample ops each settle
//   [2F, slots)  every remaining net — input ports first, then unit
//                outputs in emission (level, kind) order so each run's
//                stores are contiguous, then any leftover nets
// step() commits all flops with one contiguous copy of [F,2F) onto [0,F).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace scflow::hdlsim {

/// Simulation engine selector, threaded through GateDut / run_src_netlist
/// / BatchRunner / the fault campaign reference run.
enum class Backend {
  kInterpreted,  ///< event-driven four-valued GateSim
  kCompiled,     ///< straight-line bit-parallel CompiledSim
};

[[nodiscard]] const char* backend_name(Backend b);

/// One fused bytecode op, packed to 16 bytes so one cache line carries
/// four (the executor streams the whole op array every settle).  `kind()`
/// is a nl::CellType for plain cells (the flop-sample ops reuse
/// kBuf/kMux2 with a next-state output slot) or kMacroReadOp with the
/// macro-port index in `in0`.  Output slots take the low 24 bits of
/// `out_kind` — compile_netlist rejects programs with more slots.
struct CompiledOp {
  static constexpr unsigned kKindShift = 24;
  static constexpr std::uint32_t kOutMask = (1u << kKindShift) - 1;

  std::uint32_t in0 = 0;  // value slots (kMux2: {sel, a0, a1})
  std::uint32_t in1 = 0;
  std::uint32_t in2 = 0;
  std::uint32_t out_kind = 0;  // out | kind << kKindShift

  CompiledOp(std::uint8_t kind, std::uint32_t out)
      : out_kind(out | (std::uint32_t{kind} << kKindShift)) {}
  [[nodiscard]] std::uint32_t out() const { return out_kind & kOutMask; }
  [[nodiscard]] std::uint8_t kind() const {
    return static_cast<std::uint8_t>(out_kind >> kKindShift);
  }
};
static_assert(sizeof(CompiledOp) == 16);

constexpr std::uint8_t kMacroReadOp = 0xff;

/// A maximal contiguous span of ops sharing one kind.  The compiler sorts
/// each dependency level by kind, so the executor dispatches once per run
/// and sweeps the span in a tight branch-free loop instead of paying an
/// indirect jump per op.
struct OpRun {
  std::uint8_t kind = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// Macro storage metadata with the write side pre-resolved to slots.
struct CompiledMacro {
  nl::MacroInfo::Kind kind = nl::MacroInfo::Kind::kRam;
  std::string name;
  int addr_bits = 0;
  int data_bits = 0;
  std::vector<std::int64_t> rom_contents;                     // ROM only
  std::vector<std::uint32_t> wen_slots, waddr_slots, wdata_slots;  // RAM only
};

/// One macro read port: a kMacroReadOp op gathers the address from
/// `addr_slots` per lane and scatters the data word onto `data_slots`.
/// `en_slots` never affect the read value (the checking RAM model is
/// interpreter-only) but participate in the change detection that decides
/// whether the port re-evaluates — see CompiledSim.
struct CompiledMacroPort {
  std::uint32_t macro = 0;
  std::vector<std::uint32_t> addr_slots, en_slots, data_slots;
};

struct CompiledProgram {
  std::string name;
  std::uint32_t flop_count = 0;  ///< F: Q slots [0,F), next slots [F,2F)
  std::uint32_t slot_count = 0;  ///< = net_count + F
  /// net id -> value slot (flop Q nets map below F, the rest above 2F).
  std::vector<std::uint32_t> slot_of_net;
  /// Combinational ops in dependency order — levelized, each level sorted
  /// by kind (macro read ports at their topological position) — then one
  /// flop-sample op per flop.
  std::vector<CompiledOp> ops;
  std::size_t comb_op_count = 0;  ///< ops[comb_op_count..] are flop samples
  /// Kind-homogeneous spans covering ops[0..ops.size()) in order.
  std::vector<OpRun> runs;
  std::vector<std::uint8_t> flop_init;  ///< reset value per flop
  std::vector<CompiledMacro> macros;
  std::vector<CompiledMacroPort> macro_ports;
  /// Constant-cell output slots, preset once at reset (no hot-loop op).
  std::vector<std::uint32_t> tie0_slots, tie1_slots;
  /// Per-port slot bindings, parallel to Netlist::inputs()/outputs().
  std::vector<std::vector<std::uint32_t>> input_slots, output_slots;
};

/// Compiles @p n into straight-line bytecode.  Validates the netlist and
/// throws std::logic_error on a combinational cycle (including cycles
/// threading through a macro read port), mirroring GateSim's check.
[[nodiscard]] CompiledProgram compile_netlist(const nl::Netlist& n);

}  // namespace scflow::hdlsim
