// Device-under-test abstraction for the Fig. 9 simulations: the same
// testbench (interpreted VM or compiled minisc modules via the cosim
// bridge) can drive the interpreted RTL design ("RTL Verilog") or a gate
// netlist from either synthesis flow.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hdlsim/gate_sim.hpp"
#include "rtl/interpreter.hpp"

namespace scflow::hdlsim {

class Dut {
 public:
  virtual ~Dut() = default;
  virtual void set_input(const std::string& name, std::uint64_t value) = 0;
  virtual void step() = 0;
  [[nodiscard]] virtual std::uint64_t output(const std::string& name) = 0;
  /// Interpreter work performed so far (gate evaluations / node
  /// evaluations) — the simulator-load metric reported by the benches.
  [[nodiscard]] virtual std::uint64_t work_units() const = 0;
};

/// Gate netlist under the event-driven 4-value simulator.  Owns its
/// netlist copy so callers can hand in temporaries.
class GateDut final : public Dut {
 public:
  explicit GateDut(nl::Netlist netlist)
      : netlist_(std::move(netlist)), sim_(netlist_) {}
  void set_input(const std::string& name, std::uint64_t value) override {
    sim_.set_input(name, value);
  }
  void step() override { sim_.step(); }
  std::uint64_t output(const std::string& name) override { return sim_.output(name); }
  std::uint64_t work_units() const override { return sim_.gate_evaluations(); }
  GateSim& sim() { return sim_; }

 private:
  nl::Netlist netlist_;  // must outlive (and precede) the simulator
  GateSim sim_;
};

/// Word-level design under the cycle interpreter (stands in for
/// interpreted RTL-Verilog simulation).  Owns its design copy so callers
/// can hand in temporaries.
class RtlDut final : public Dut {
 public:
  explicit RtlDut(rtl::Design design) : design_(std::move(design)), it_(design_) {}
  void set_input(const std::string& name, std::uint64_t value) override {
    it_.set_input(name, value);
  }
  void step() override {
    it_.step();
    work_ += it_.design().nodes().size();
    fresh_ = false;
  }
  std::uint64_t output(const std::string& name) override {
    if (!fresh_) {  // one post-edge evaluation serves all reads this cycle
      it_.evaluate();
      work_ += it_.design().nodes().size();
      fresh_ = true;
    }
    return it_.output(name);
  }
  std::uint64_t work_units() const override { return work_; }

 private:
  rtl::Design design_;  // must outlive (and precede) the interpreter
  rtl::Interpreter it_;
  std::uint64_t work_ = 0;
  bool fresh_ = false;
};

}  // namespace scflow::hdlsim
