// Device-under-test abstraction for the Fig. 9 simulations: the same
// testbench (interpreted VM or compiled minisc modules via the cosim
// bridge) can drive the interpreted RTL design ("RTL Verilog") or a gate
// netlist from either synthesis flow.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hdlsim/compiled_sim.hpp"
#include "hdlsim/gate_sim.hpp"
#include "hdlsim/sim_counters.hpp"
#include "rtl/interpreter.hpp"

namespace scflow::hdlsim {

class Dut {
 public:
  virtual ~Dut() = default;
  virtual void set_input(const std::string& name, std::uint64_t value) = 0;
  virtual void step() = 0;
  [[nodiscard]] virtual std::uint64_t output(const std::string& name) = 0;
  /// Resolved port handles: testbench drivers look each port name up once
  /// and use the handle per cycle, keeping string-keyed map lookups out of
  /// the simulation hot loop.  Handles are only valid for this Dut.
  [[nodiscard]] virtual int input_handle(const std::string& name) = 0;
  [[nodiscard]] virtual int output_handle(const std::string& name) = 0;
  virtual void set_input(int handle, std::uint64_t value) = 0;
  [[nodiscard]] virtual std::uint64_t output(int handle) = 0;
  /// Interpreter work performed so far (gate evaluations / node
  /// evaluations) — the simulator-load metric reported by the benches.
  [[nodiscard]] virtual std::uint64_t work_units() const = 0;
  /// Engine observability counters; engines that track fewer dimensions
  /// leave the remaining fields at zero.
  [[nodiscard]] virtual SimCounters counters() const { return {}; }
  /// Per-worker sweep shards for engines with a parallel evaluation core;
  /// single-threaded engines return an empty vector.
  [[nodiscard]] virtual std::vector<WorkerShardStats> worker_stats() const { return {}; }
};

/// Gate netlist under the event-driven 4-value simulator.  Owns its
/// netlist copy so callers can hand in temporaries.
class GateDut final : public Dut {
 public:
  explicit GateDut(nl::Netlist netlist, GateSim::Options options = {})
      : netlist_(std::move(netlist)), sim_(netlist_, options) {}
  void set_input(const std::string& name, std::uint64_t value) override {
    sim_.set_input(name, value);
  }
  void step() override { sim_.step(); }
  std::uint64_t output(const std::string& name) override { return sim_.output(name); }
  int input_handle(const std::string& name) override {
    in_handles_.push_back(sim_.input_port(name));
    return static_cast<int>(in_handles_.size()) - 1;
  }
  int output_handle(const std::string& name) override {
    out_handles_.push_back(sim_.output_port(name));
    return static_cast<int>(out_handles_.size()) - 1;
  }
  void set_input(int handle, std::uint64_t value) override {
    sim_.set_input(in_handles_[static_cast<std::size_t>(handle)], value);
  }
  std::uint64_t output(int handle) override {
    return sim_.output(out_handles_[static_cast<std::size_t>(handle)]);
  }
  std::uint64_t work_units() const override { return sim_.gate_evaluations(); }
  SimCounters counters() const override { return sim_.counters(); }
  std::vector<WorkerShardStats> worker_stats() const override { return sim_.worker_stats(); }
  GateSim& sim() { return sim_; }

 private:
  nl::Netlist netlist_;  // must outlive (and precede) the simulator
  GateSim sim_;
  std::vector<GateSim::PortRef> in_handles_, out_handles_;
};

/// Gate netlist under the straight-line bit-parallel compiled simulator.
/// Broadcast drive: all 64 pattern lanes carry the testbench stimulus, so
/// every step simulates the pattern 64 times over — the patterns axis the
/// compiled benches report.  Owns its netlist copy.
class CompiledDut final : public Dut {
 public:
  explicit CompiledDut(nl::Netlist netlist, CompiledSim::Options options = {})
      : netlist_(std::move(netlist)), sim_(netlist_, options) {}
  void set_input(const std::string& name, std::uint64_t value) override {
    sim_.set_input(name, value);
  }
  void step() override { sim_.step(); }
  std::uint64_t output(const std::string& name) override { return sim_.output(name); }
  int input_handle(const std::string& name) override {
    in_handles_.push_back(sim_.input_port(name));
    return static_cast<int>(in_handles_.size()) - 1;
  }
  int output_handle(const std::string& name) override {
    out_handles_.push_back(sim_.output_port(name));
    return static_cast<int>(out_handles_.size()) - 1;
  }
  void set_input(int handle, std::uint64_t value) override {
    sim_.set_input(in_handles_[static_cast<std::size_t>(handle)], value);
  }
  std::uint64_t output(int handle) override {
    return sim_.output(out_handles_[static_cast<std::size_t>(handle)]);
  }
  std::uint64_t work_units() const override { return sim_.ops_executed(); }
  SimCounters counters() const override { return sim_.counters(); }
  CompiledSim& sim() { return sim_; }

 private:
  nl::Netlist netlist_;  // must outlive (and precede) the simulator
  CompiledSim sim_;
  std::vector<CompiledSim::PortRef> in_handles_, out_handles_;
};

/// Builds a gate DUT on the selected backend.  The compiled backend has no
/// checking RAM model and no reference evaluator, so options requesting
/// either fall back to the interpreter (as does Backend::kInterpreted
/// itself); `options.threads` only applies to the interpreter's parallel
/// sweep — the compiled engine's parallelism is its 64 pattern lanes.
inline std::unique_ptr<Dut> make_gate_dut(nl::Netlist netlist,
                                          const GateSim::Options& options,
                                          Backend backend) {
  if (backend == Backend::kCompiled && !options.check_ram &&
      !options.use_reference_eval) {
    CompiledSim::Options copt;
    copt.x_initial_flops = options.x_initial_flops;
    return std::make_unique<CompiledDut>(std::move(netlist), copt);
  }
  return std::make_unique<GateDut>(std::move(netlist), options);
}

/// Word-level design under the cycle interpreter (stands in for
/// interpreted RTL-Verilog simulation).  Owns its design copy so callers
/// can hand in temporaries.
class RtlDut final : public Dut {
 public:
  explicit RtlDut(rtl::Design design) : design_(std::move(design)), it_(design_) {}
  void set_input(const std::string& name, std::uint64_t value) override {
    it_.set_input(name, value);
  }
  void step() override {
    it_.step();
    work_ += it_.design().nodes().size();
    fresh_ = false;
  }
  std::uint64_t output(const std::string& name) override {
    refresh();
    return it_.output(name);
  }
  int input_handle(const std::string& name) override {
    return static_cast<int>(it_.input_index(name));
  }
  int output_handle(const std::string& name) override {
    return static_cast<int>(it_.output_node(name));
  }
  void set_input(int handle, std::uint64_t value) override {
    it_.set_input(static_cast<std::size_t>(handle), value);
  }
  std::uint64_t output(int handle) override {
    refresh();
    return it_.value(static_cast<rtl::NodeId>(handle));
  }
  std::uint64_t work_units() const override { return work_; }
  SimCounters counters() const override {
    // Node evaluations only: the RTL interpreter is cycle-based, so the
    // event-driven queue counters stay zero.
    SimCounters c;
    c.evaluations = work_;
    return c;
  }

 private:
  void refresh() {
    if (!fresh_) {  // one post-edge evaluation serves all reads this cycle
      it_.evaluate();
      work_ += it_.design().nodes().size();
      fresh_ = true;
    }
  }

  rtl::Design design_;  // must outlive (and precede) the interpreter
  rtl::Interpreter it_;
  std::uint64_t work_ = 0;
  bool fresh_ = false;
};

}  // namespace scflow::hdlsim
