// Interpreted-testbench virtual machine — the "native VHDL testbench" of
// the paper's Fig. 9 comparison.  A ModelSim-style simulator executes the
// testbench processes interpretively; this VM models that cost: testbench
// behaviour is bytecode dispatched instruction by instruction, with a
// clock-synchronous monitor process (output capture/compare) and a
// stimulus process that wakes per sample event.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsp/src_params.hpp"
#include "dsp/stimulus.hpp"
#include "hdlsim/dut.hpp"

namespace scflow::hdlsim {

/// One VM instruction.  Eight general registers r0..r7.
struct TbInstr {
  enum class Op : std::uint8_t {
    kSet,      ///< set DUT input `port` to imm
    kToggle,   ///< toggle DUT input `port` (internal toggle state)
    kWait,     ///< suspend this process for imm cycles
    kSample,   ///< reg_a = DUT output `port`
    kMov,      ///< reg_a = reg_b
    kXor,      ///< reg_a ^= reg_b
    kJeq,      ///< if reg_a == reg_b jump to imm
    kJmp,      ///< jump to imm
    kRecord,   ///< append (reg_a, reg_b) to the captured outputs
    kHalt,
  };
  Op op = Op::kHalt;
  std::string port;
  int reg_a = 0;
  int reg_b = 0;
  std::int64_t imm = 0;
};

using TbProgram = std::vector<TbInstr>;

/// Builds the two SRC testbench processes from an event schedule:
/// a stimulus process (sample writes / output requests at their quantised
/// cycles) and a per-clock monitor process capturing out_valid toggles.
struct SrcTestbenchProgram {
  TbProgram stimulus;
  TbProgram monitor;
  std::uint64_t run_cycles = 0;
};
SrcTestbenchProgram build_src_testbench(const std::vector<dsp::SrcEvent>& events,
                                        dsp::SrcMode mode);

struct VmRunResult {
  std::vector<dsp::StereoSample> outputs;
  std::uint64_t cycles = 0;
  std::uint64_t instructions_executed = 0;  ///< interpreted testbench work
  SimCounters dut_counters;
  /// DUT evaluations, derived from the one SimCounters copy (see
  /// SimCounters::record_into for the registry mapping).
  [[nodiscard]] std::uint64_t dut_work_units() const { return dut_counters.evaluations; }
};

/// Runs the interpreted testbench against the DUT: each clock cycle, every
/// process executes until it suspends on kWait, then the DUT steps.
VmRunResult run_testbench_vm(Dut& dut, const SrcTestbenchProgram& program);

}  // namespace scflow::hdlsim
