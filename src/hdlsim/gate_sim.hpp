// Event-driven four-valued gate-level simulator — the substrate's
// equivalent of interpreted HDL simulation of the synthesised netlist,
// including the behavioural macro models for the buffer RAM (optionally
// the address-checking variant that exposed the paper's golden-model bug)
// and the coefficient ROM.
//
// The evaluation core is table-driven and allocation-free: Logic values
// are 2-bit codes, every 0–3-input cell is one lookup in a precomputed
// 64-entry truth table, fanout lives in a CSR (offsets + targets) layout,
// input nets sit inline in each 10-byte evaluation unit, and the dirty
// set is a bitmap swept one topological level at a time.
//
// The level sweep is (optionally) parallel and always deterministic:
// units are laid out so every level owns whole 64-bit dirty words, a
// level's words are partitioned across a persistent worker pool, and
// next-level dirty bits are set with relaxed atomic-OR.  Within a level
// every unit reads only strictly-lower-level nets and writes only its own
// output net, so the evaluated set, the output values and the counters
// (evaluations / dirty_pushes / ram_rereads / peak_queue_depth) are
// bit-identical for every thread count, including 1.
// The original switch-based evaluator is retained behind
// Options::use_reference_eval as the differential-testing oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dtypes/logic.hpp"
#include "hdlsim/sim_counters.hpp"
#include "netlist/netlist.hpp"

namespace scflow::core {
class ThreadPool;
}

namespace scflow::hdlsim {

class GateSim {
 public:
  struct Options {
    /// Power-up flops to X instead of their reset/init values (classic
    /// gate-level X-propagation behaviour).
    bool x_initial_flops = false;
    /// Attach the checking RAM simulation model: flags reads of
    /// never-written or stale (age > 55 samples) slots and X addresses.
    bool check_ram = false;
    /// Evaluate cells through the original switch + logic_*() call chain
    /// instead of the packed truth-table LUTs.  Slower; kept as the
    /// reference oracle for the fuzz-equivalence tests.
    bool use_reference_eval = false;
    /// Worker lanes for the level sweep: 1 = fully sequential (no pool),
    /// N > 1 = persistent pool of N-1 workers plus the calling thread,
    /// 0 = one lane per hardware thread.  Results and counters are
    /// bit-identical for every value.
    unsigned threads = 1;
  };

  struct RamViolation {
    std::uint64_t count = 0;
    std::uint64_t first_cycle = 0;
    unsigned first_address = 0;
    std::string first_kind;
  };

  explicit GateSim(const nl::Netlist& netlist) : GateSim(netlist, Options()) {}
  GateSim(const nl::Netlist& netlist, Options options);
  GateSim(const GateSim&) = delete;
  GateSim& operator=(const GateSim&) = delete;
  ~GateSim();

  /// Resolved port handles: look the name up once, then drive/read the
  /// port every cycle without the string-keyed map lookup.
  using PortRef = const nl::PortBits*;
  [[nodiscard]] PortRef input_port(const std::string& name) const;
  [[nodiscard]] PortRef output_port(const std::string& name) const;

  void set_input(const std::string& name, std::uint64_t value);
  void set_input(PortRef port, std::uint64_t value);
  void set_input_x(const std::string& name);
  /// Drives an input port with arbitrary four-valued bits (X/Z injection
  /// for verification); vector width must not exceed the port width.
  void set_input_logic(const std::string& name, const scflow::LogicVector& bits);

  /// Settles combinational logic for the current inputs.
  void settle();
  /// Full clock cycle: settle, then update flops and RAM contents.
  void step();

  [[nodiscard]] scflow::LogicVector output_bits(const std::string& name);
  /// Numeric output; requires all bits 0/1 (throws on X/Z).
  [[nodiscard]] std::uint64_t output(const std::string& name);
  [[nodiscard]] std::uint64_t output(PortRef port);

  /// Packed, never-throwing output read for response comparison: bit i of
  /// `known` is set when bit i of the port is 0/1 (then bit i of `value`
  /// holds it); X/Z bits are unknown.  Used by the fault-simulation
  /// campaigns, which must tolerate X at observe points.
  struct PortSample {
    std::uint64_t value = 0;
    std::uint64_t known = 0;
  };
  [[nodiscard]] PortSample output_sample(PortRef port) const;

  // --- fault injection (src/fault) ---
  /// Overlays a single stuck-at fault: from now on every write to @p net
  /// (cell evaluation, flop commit, external input, macro data) is clamped
  /// to @p v, so the faulty value propagates exactly like a driven value —
  /// no netlist copy, no structural change.  The current value is forced
  /// and its fanout re-queued immediately.  One fault may be active per
  /// simulator; injecting again replaces it (the prior net keeps its last
  /// clamped value until its driver re-evaluates).
  void inject_stuck(nl::NetId net, scflow::Logic v);
  [[nodiscard]] nl::NetId stuck_net() const {
    return stuck_net_ == kNoStuckNet ? nl::kNoNet : static_cast<nl::NetId>(stuck_net_);
  }

  /// Sequential cells flattened in netlist cell order (scan-chain order).
  [[nodiscard]] std::size_t flop_count() const { return flops_.size(); }
  [[nodiscard]] nl::NetId flop_output(std::size_t i) const { return flops_[i].out; }
  /// Transient SEU: flips flop @p i's committed state bit (0<->1), marks
  /// its fanout dirty and forces a re-sample at the next edge (so the flop
  /// recovers through its D input like real hardware).  Returns false —
  /// and injects nothing — when the current state is X/Z.
  bool flip_flop(std::size_t i);

  [[nodiscard]] const RamViolation& ram_violations() const { return ram_violation_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  /// Gate evaluations performed so far — the "interpreted simulator work"
  /// metric the Fig. 9 benchmark reports against.
  [[nodiscard]] std::uint64_t gate_evaluations() const { return counters_.evaluations; }
  [[nodiscard]] const SimCounters& counters() const { return counters_; }

  /// Lanes the level sweep runs on (>= 1; resolved from Options::threads).
  [[nodiscard]] unsigned threads() const { return static_cast<unsigned>(lanes_.size()); }
  /// Per-lane shard of the sweep work (cumulative), for the obs worker
  /// tracks.  Shard *sums* equal the SimCounters totals; the per-lane split
  /// depends on the dirty-word partition, not on scheduling, so it is as
  /// deterministic as the totals.
  [[nodiscard]] std::vector<WorkerShardStats> worker_stats() const;

 private:
  struct MacroState {
    const nl::MacroInfo* info = nullptr;
    std::vector<std::uint32_t> ram_words;
    std::vector<bool> written;
    std::vector<std::uint64_t> written_at;  // write serial per slot
    std::uint64_t write_count = 0;
    // Write-side nets resolved once at construction (RAM only).
    std::vector<nl::NetId> wen_nets, waddr_nets, wdata_nets;
    // (macro, port) -> evaluation-unit index, so a RAM write re-queues its
    // read ports in O(#ports) instead of scanning every unit.
    std::vector<std::uint32_t> port_unit;
  };

  // Read-port nets resolved once at construction; shared by the LUT and
  // reference paths so neither chases port-name lookups while settling.
  struct MacroPort {
    std::uint32_t macro = 0;
    std::uint32_t port = 0;
    std::vector<nl::NetId> addr_nets, en_nets, data_nets;
  };

  // One evaluation unit: a combinational cell or a macro read port.
  // 10 bytes, with the (≤3) input nets inline as 16-bit ids (the
  // constructor rejects netlists with ≥2^16 nets), so six units share
  // each cache line the settle() sweep walks.  Unused input slots point at
  // the sentinel net (index net_count), which is never written — so the
  // branchless 3-slot read can never race a same-level writer.
  // After construction the index order IS (level, creation) order, with
  // each level padded to a 64-unit boundary so it owns whole dirty words.
  struct Unit {
    std::uint16_t in[3] = {0, 0, 0};  // cell input nets (unused: sentinel)
    std::uint16_t out = 0;            // cell output net | macro_ports_ index
    std::uint8_t type = 0;            // nl::CellType, kMacroUnit or kPadUnit
    std::uint8_t n_inputs = 0;
  };
  static constexpr std::uint8_t kMacroUnit = 0xff;
  // Level-alignment filler: never marked dirty, never evaluated.
  static constexpr std::uint8_t kPadUnit = 0xfe;

  struct FlopRec {
    nl::NetId d = nl::kNoNet, si = nl::kNoNet, se = nl::kNoNet;
    nl::NetId out = nl::kNoNet;
    bool sdff = false;
    int init = 0;
  };

  // Per-lane sweep state, cache-line separated.  `evals`/`pushes` are the
  // current level's transients, merged into the member counters at each
  // level boundary; `total` accumulates per-lane work for worker_stats().
  struct alignas(64) Lane {
    std::uint64_t evals = 0;
    std::uint64_t pushes = 0;
    // Macro read ports found dirty this level (ascending unit index):
    // evaluated by the calling thread after the lane barrier so the RAM
    // violation bookkeeping stays sequential and deterministic.
    std::vector<std::uint32_t> deferred_macros;
    WorkerShardStats total;
  };

  struct SweepJob;  // parallel-round context (defined in the .cpp)

  void eval_macro_port(const Unit& u);
  /// Sweeps the dirty words of one level: consumes this level's bits (the
  /// caller guarantees exclusive ownership of [wb, we)), evaluates cells
  /// in place and defers macro ports into @p lane.  Atomic lanes mark
  /// descendant levels with relaxed atomic-OR; the sequential instantiation
  /// uses plain loads/stores.  Both count identically.
  template <bool Atomic>
  void sweep_words(std::uint32_t wb, std::uint32_t we, Lane& lane);
  void set_net(nl::NetId net, scflow::Logic v);
  void mark_dirty_fanout(nl::NetId net);
  /// CSR target: unit index, or n_units + flop index for flop D/SI/SE taps.
  /// Kept inline — this runs once per fanout edge of every changed net.
  /// Callers sample the queue high-water mark after their mark batch (see
  /// note_queue_peak); settle() samples at level boundaries instead.
  void mark_target_dirty(std::uint32_t t) {
    if (t >= units_.size()) {
      const std::uint32_t x = t - static_cast<std::uint32_t>(units_.size());
      if (x < flops_.size()) {
        flop_dirty_words_[x >> 6] |= std::uint64_t{1} << (x & 63u);
      } else {
        out_cache_[x - flops_.size()].dirty = true;
      }
      return;
    }
    std::uint64_t& w = dirty_words_[t >> 6];
    const std::uint64_t m = std::uint64_t{1} << (t & 63u);
    if ((w & m) != 0) return;
    w |= m;
    ++counters_.dirty_pushes;
    // External marks always run on the calling thread — lane 0 — so the
    // per-lane shard sums reproduce the dirty_pushes total exactly.
    ++lanes_[0].total.dirty_pushes;
    ++queued_now_;
  }
  void note_queue_peak() {
    if (queued_now_ > counters_.peak_queue_depth) counters_.peak_queue_depth = queued_now_;
  }
  [[nodiscard]] scflow::Logic net(nl::NetId n) const {
    return values_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] std::pair<bool, std::uint64_t> read_bus(const std::vector<nl::NetId>& nets) const;

  const nl::Netlist* nl_;
  Options options_;
  // Net values plus one trailing sentinel slot (index net_count) that is
  // never written; unused unit input slots read it.
  std::vector<scflow::Logic> values_;

  std::vector<Unit> units_;             // (level, creation) order, level-padded
  const std::uint8_t* luts_ = nullptr;  // flat 16x64 truth tables
  // Fanout in CSR form: one offsets array per net, one flat target array.
  // Targets < units_.size() are evaluation units; larger targets encode
  // flop sample taps (n_units + flop index) and output-port taps
  // (n_units + n_flops + port index), so one lookup per net change serves
  // the dirty set, the touched-flop delta set and output-cache
  // invalidation alike.
  std::vector<std::uint32_t> fanout_offsets_;
  std::vector<std::uint32_t> fanout_targets_;
  // Within each net's CSR range, unit targets come first and flop taps
  // last; this is the boundary, so the hot sweep walks each sub-range
  // without a per-target range test.
  std::vector<std::uint32_t> fanout_unit_end_;
  // Dirty set as a bitmap over unit indices.  Units are level-sorted and
  // level-padded, so word range [level_word_begin_[L], level_word_begin_[L+1])
  // belongs to level L alone; evaluating a level-L unit can only set bits
  // in strictly later levels' words.
  std::vector<std::uint64_t> dirty_words_;
  // n_levels + 1 word boundaries (last entry = dirty_words_.size()).
  std::vector<std::uint32_t> level_word_begin_;
  std::uint64_t queued_now_ = 0;

  std::vector<FlopRec> flops_;
  std::vector<scflow::Logic> next_flop_;  // persistent step() buffer
  // Flop delta tracking: only flops whose D/SI/SE nets changed since the
  // last edge are re-sampled and re-committed.  Bitmap marks, drained
  // into the scratch index list each step (no steady-state allocation).
  std::vector<std::uint64_t> flop_dirty_words_;
  std::vector<std::uint32_t> flop_active_;
  std::vector<MacroState> macros_;
  std::vector<MacroPort> macro_ports_;
  std::unordered_map<std::string, const nl::PortBits*> in_ports_;
  std::unordered_map<std::string, const nl::PortBits*> out_ports_;
  // Packed per-output-port value cache, invalidated through the CSR port
  // taps; repeated monitor reads of an unchanged port cost O(1) instead
  // of a per-bit walk.  Parallel to nl_->outputs().
  struct OutCache {
    std::uint64_t value = 0;
    bool defined = false;
    bool dirty = true;
  };
  std::vector<OutCache> out_cache_;

  std::vector<Lane> lanes_;  // size = resolved thread count (>= 1)
  std::unique_ptr<core::ThreadPool> pool_;  // only when threads() > 1

  // Active stuck-at overlay: writers compare their output net against this
  // id (kNoStuckNet never matches a 16-bit-encodable net, so the fault-free
  // hot path costs one predictable register compare per evaluation).
  static constexpr std::uint32_t kNoStuckNet = 0xffffffffu;
  std::uint32_t stuck_net_ = kNoStuckNet;
  scflow::Logic stuck_value_ = scflow::Logic::X;

  RamViolation ram_violation_;
  std::uint64_t cycles_ = 0;
  SimCounters counters_;
};

}  // namespace scflow::hdlsim
