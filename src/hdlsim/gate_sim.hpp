// Event-driven four-valued gate-level simulator — the substrate's
// equivalent of interpreted HDL simulation of the synthesised netlist,
// including the behavioural macro models for the buffer RAM (optionally
// the address-checking variant that exposed the paper's golden-model bug)
// and the coefficient ROM.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dtypes/logic.hpp"
#include "netlist/netlist.hpp"

namespace scflow::hdlsim {

class GateSim {
 public:
  struct Options {
    /// Power-up flops to X instead of their reset/init values (classic
    /// gate-level X-propagation behaviour).
    bool x_initial_flops = false;
    /// Attach the checking RAM simulation model: flags reads of
    /// never-written or stale (age > 55 samples) slots and X addresses.
    bool check_ram = false;
  };

  struct RamViolation {
    std::uint64_t count = 0;
    std::uint64_t first_cycle = 0;
    unsigned first_address = 0;
    std::string first_kind;
  };

  explicit GateSim(const nl::Netlist& netlist) : GateSim(netlist, Options()) {}
  GateSim(const nl::Netlist& netlist, Options options);

  void set_input(const std::string& name, std::uint64_t value);
  void set_input_x(const std::string& name);

  /// Settles combinational logic for the current inputs.
  void settle();
  /// Full clock cycle: settle, then update flops and RAM contents.
  void step();

  [[nodiscard]] scflow::LogicVector output_bits(const std::string& name);
  /// Numeric output; requires all bits 0/1 (throws on X/Z).
  [[nodiscard]] std::uint64_t output(const std::string& name);

  [[nodiscard]] const RamViolation& ram_violations() const { return ram_violation_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  /// Gate evaluations performed so far — the "interpreted simulator work"
  /// metric the Fig. 9 benchmark reports against.
  [[nodiscard]] std::uint64_t gate_evaluations() const { return evaluations_; }

 private:
  struct MacroState {
    const nl::MacroInfo* info = nullptr;
    std::vector<std::uint32_t> ram_words;
    std::vector<bool> written;
    std::vector<std::uint64_t> written_at;  // write serial per slot
    std::uint64_t write_count = 0;
  };

  void eval_cell(std::size_t index);
  void eval_macro_port(std::size_t macro, std::size_t port);
  void set_net(nl::NetId net, scflow::Logic v);
  void mark_dirty_fanout(nl::NetId net);
  [[nodiscard]] scflow::Logic net(nl::NetId n) const {
    return values_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] std::pair<bool, std::uint64_t> read_bus(const std::vector<nl::NetId>& nets) const;

  const nl::Netlist* nl_;
  Options options_;
  std::vector<scflow::Logic> values_;

  // Evaluation units: cells then macro read ports, levelised.
  struct Unit {
    bool is_macro = false;
    std::size_t index = 0;  // cell index or (macro<<8|port)
    int level = 0;
  };
  std::vector<Unit> units_;
  std::vector<std::vector<std::size_t>> fanout_;       // net -> unit indices
  std::vector<std::vector<std::size_t>> dirty_levels_; // per level: unit queue
  std::vector<bool> in_queue_;
  int max_level_ = 0;

  std::vector<std::size_t> flop_cells_;
  std::vector<MacroState> macros_;
  std::unordered_map<std::string, const nl::PortBits*> in_ports_;
  std::unordered_map<std::string, const nl::PortBits*> out_ports_;

  RamViolation ram_violation_;
  std::uint64_t cycles_ = 0;
  std::uint64_t evaluations_ = 0;
};

}  // namespace scflow::hdlsim
