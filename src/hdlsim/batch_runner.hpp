// Sharded batch runner: fans a set of independent DUT simulations across
// a persistent worker pool.  Where the in-simulator level sweep splits a
// single netlist's work (fine grain, see gate_sim.hpp), this splits whole
// simulations (coarse grain) — the profitable axis for sweep-style
// workloads like the Fig. 9 schedule matrix, since jobs share nothing and
// never synchronise mid-run.
//
// Determinism: every job writes only its own preallocated result slot, so
// the result vector is identical for any thread count and any claiming
// order; only the wall-clock timeline (job_stats) depends on scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "dsp/src_params.hpp"
#include "dsp/stimulus.hpp"
#include "hdlsim/src_gate_sim.hpp"
#include "netlist/netlist.hpp"

namespace scflow::core {
class ThreadPool;
}
namespace scflow::obs {
struct Session;
}

namespace scflow::hdlsim {

/// Wall-clock record of one batch job (steady-clock nanoseconds).
struct BatchJobStat {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  unsigned lane = 0;
  /// The job's wall time exceeded the runner's per-job budget.  The job was
  /// never preempted (the pool survives); it either wound itself down via
  /// JobContext::expired() or ran to completion late — either way its
  /// result should be treated as incomplete.
  bool timed_out = false;
};

class BatchRunner {
 public:
  /// Same thread semantics as GateSim::Options::threads: 1 = run jobs
  /// inline on the caller, N > 1 = pool of N-1 workers plus the caller,
  /// 0 = one lane per hardware thread.
  explicit BatchRunner(unsigned threads);
  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;
  ~BatchRunner();

  [[nodiscard]] unsigned lanes() const;

  /// Per-job wall-clock deadline handed to cooperative jobs.  deadline_ns
  /// is a steady-clock stamp (0 = no budget); long-running jobs poll
  /// expired() at convenient boundaries (e.g. every few simulation cycles)
  /// and bail out early.  Jobs are never killed — a job that ignores the
  /// deadline just finishes late and is flagged timed_out afterwards.
  struct JobContext {
    std::uint64_t deadline_ns = 0;
    [[nodiscard]] bool expired() const;
  };

  /// Sets the per-job wall budget for subsequent run() calls (0 = none).
  void set_job_budget_ns(std::uint64_t ns) { job_budget_ns_ = ns; }
  [[nodiscard]] std::uint64_t job_budget_ns() const { return job_budget_ns_; }

  /// Runs jobs 0..n-1, dynamically claimed by the lanes (atomic ticket
  /// counter), and blocks until all complete.  @p fn must confine its
  /// writes to per-job state; it is called concurrently from all lanes.
  void run(std::size_t n, const std::function<void(std::size_t job, unsigned lane)>& fn);
  /// Same, with the per-job deadline exposed so the job can wind down
  /// before the budget expires.
  void run(std::size_t n,
           const std::function<void(std::size_t job, unsigned lane, const JobContext& ctx)>& fn);

  /// Per-job timings of the most recent run(), indexed by job.
  [[nodiscard]] const std::vector<BatchJobStat>& job_stats() const { return stats_; }

  /// Records the last run() into @p session: one span (= complete trace
  /// slice, tid = lane, so the trace shows the per-lane occupancy) per
  /// job, a "<prefix>.job_ns" latency histogram, plus "<prefix>.jobs",
  /// "<prefix>.lanes" and per-lane "<prefix>.lane<k>.jobs" counters.
  /// With @p parent_span_id (reserved from session.spans and added by the
  /// caller), every job span parent-links to it and the export draws
  /// Perfetto flow arrows from the parent slice into each lane — the link
  /// survives the thread hand-off because it is span data, not stack
  /// context.  Runs on the calling thread after the join — TraceWriter
  /// and SpanSet storage are not thread-safe.
  void record_into(obs::Session& session, std::string_view prefix,
                   std::uint64_t parent_span_id = 0) const;

 private:
  std::vector<BatchJobStat> stats_;
  std::unique_ptr<core::ThreadPool> pool_;  // only when lanes() > 1
  unsigned lanes_ = 1;
  std::uint64_t job_budget_ns_ = 0;  // 0 = unlimited
  // Offset mapping steady-clock stamps onto the session trace's epoch,
  // captured at the start of the last run().
  std::uint64_t run_t0_steady_ns_ = 0;
};

/// Runs one schedule per job over @p netlist (each job its own sequential
/// GateSim — parallelism comes from the batch axis), results in schedule
/// order.  @p options applies to every DUT except `threads`, which is
/// forced to 1 inside jobs; @p threads picks the batch lane count.  When
/// @p session is given, job slices and counters are recorded under
/// "gate_batch".  With @p job_timeout_ns, each job's simulation winds
/// down once its wall budget expires (GateRunResult::timed_out and the
/// matching BatchJobStat::timed_out are set; the other jobs and the pool
/// are unaffected).  @p backend selects the per-job engine (see
/// run_src_netlist); results are bit-identical across thread counts for
/// either backend since each job is sequential and slot-isolated.
std::vector<GateRunResult> run_src_netlist_batch(
    const nl::Netlist& netlist, dsp::SrcMode mode,
    const std::vector<std::vector<dsp::SrcEvent>>& schedules,
    GateSim::Options options, unsigned threads, obs::Session* session = nullptr,
    std::uint64_t job_timeout_ns = 0, Backend backend = Backend::kInterpreted);

}  // namespace scflow::hdlsim
