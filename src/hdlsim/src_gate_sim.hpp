// Drives a synthesised SRC gate netlist through GateSim with the standard
// event schedules — the gate-level leg of the refinement verification and
// the DUT side of the Fig. 9 simulations.
#pragma once

#include <vector>

#include "dsp/src_params.hpp"
#include "dsp/stimulus.hpp"
#include "hdlsim/compile.hpp"
#include "hdlsim/gate_sim.hpp"
#include "netlist/netlist.hpp"

namespace scflow::hdlsim {

struct GateRunResult {
  std::vector<dsp::StereoSample> outputs;
  std::uint64_t cycles = 0;
  GateSim::RamViolation ram_violations;
  SimCounters counters;
  /// The run stopped early because its wall-clock deadline expired; the
  /// outputs cover only the cycles actually simulated.
  bool timed_out = false;
  /// Derived from the one SimCounters copy — not a separately maintained
  /// field, so it cannot drift from counters.evaluations.
  [[nodiscard]] std::uint64_t gate_evaluations() const { return counters.evaluations; }
};

/// Runs the netlist over the schedule (events applied at their quantised
/// cycles, inputs before requests); collects out_valid-toggled results.
/// @p deadline_ns (steady-clock stamp, 0 = none) is polled every 64 cycles;
/// on expiry the run stops and flags GateRunResult::timed_out.
/// @p backend selects the engine; Backend::kCompiled falls back to the
/// interpreter when the options request interpreter-only features
/// (check_ram, use_reference_eval).  The compiled engine runs two-state
/// (four-state when x_initial_flops) and is bit-exact with the
/// interpreter on these fully defined schedules.
GateRunResult run_src_netlist(const nl::Netlist& netlist, dsp::SrcMode mode,
                              const std::vector<dsp::SrcEvent>& events,
                              GateSim::Options options = GateSim::Options(),
                              std::uint64_t deadline_ns = 0,
                              Backend backend = Backend::kInterpreted);

}  // namespace scflow::hdlsim
