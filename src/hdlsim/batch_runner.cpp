#include "hdlsim/batch_runner.hpp"

#include <atomic>
#include <chrono>
#include <string>

#include "core/thread_pool.hpp"
#include "obs/session.hpp"

namespace scflow::hdlsim {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

BatchRunner::BatchRunner(unsigned threads) {
  lanes_ = core::ThreadPool::workers_for(threads) + 1;
  if (lanes_ > 1) pool_ = std::make_unique<core::ThreadPool>(lanes_ - 1);
}

BatchRunner::~BatchRunner() = default;

unsigned BatchRunner::lanes() const { return lanes_; }

bool BatchRunner::JobContext::expired() const {
  return deadline_ns != 0 && steady_ns() > deadline_ns;
}

void BatchRunner::run(std::size_t n,
                      const std::function<void(std::size_t job, unsigned lane)>& fn) {
  run(n, [&fn](std::size_t job, unsigned lane, const JobContext&) { fn(job, lane); });
}

void BatchRunner::run(
    std::size_t n,
    const std::function<void(std::size_t job, unsigned lane, const JobContext& ctx)>& fn) {
  stats_.assign(n, {});
  run_t0_steady_ns_ = steady_ns();
  const std::uint64_t budget = job_budget_ns_;
  std::atomic<std::size_t> next{0};
  const auto lane_loop = [&](unsigned lane) {
    // Dynamic claiming: a lane stuck on a long job stops taking tickets
    // while the others drain the rest.  Each job touches only its own
    // stats_ slot, so the claiming order never shows in the results.
    for (;;) {
      const std::size_t job = next.fetch_add(1, std::memory_order_relaxed);
      if (job >= n) return;
      BatchJobStat& st = stats_[job];
      st.lane = lane;
      st.start_ns = steady_ns();
      const JobContext ctx{budget == 0 ? 0 : st.start_ns + budget};
      fn(job, lane, ctx);
      st.end_ns = steady_ns();
      st.timed_out = budget != 0 && st.end_ns - st.start_ns > budget;
    }
  };
  if (pool_ == nullptr) {
    lane_loop(0);
    return;
  }
  struct Ctx {
    const decltype(lane_loop)* loop;
  } ctx{&lane_loop};
  pool_->run(
      [](void* c, unsigned lane) { (*static_cast<Ctx*>(c)->loop)(lane); }, &ctx);
}

void BatchRunner::record_into(obs::Session& session, std::string_view prefix,
                              std::uint64_t parent_span_id) const {
  const std::string p(prefix);
  // Map steady-clock stamps onto the trace epoch via one common sample.
  const std::uint64_t trace_now = session.trace.now_ns();
  const std::uint64_t steady_now = steady_ns();
  const auto to_trace = [&](std::uint64_t t) {
    const std::uint64_t back = steady_now - t;  // both stamps are steady-clock
    return trace_now >= back ? trace_now - back : 0;
  };
  std::vector<std::uint64_t> per_lane(lanes_, 0);
  for (std::size_t j = 0; j < stats_.size(); ++j) {
    const BatchJobStat& st = stats_[j];
    ++per_lane[st.lane];
    session.spans.add({0, parent_span_id, p + ".job" + std::to_string(j), "batch",
                       to_trace(st.start_ns), to_trace(st.end_ns),
                       static_cast<int>(st.lane)});
    session.registry.record_value(p + ".job_ns", st.end_ns - st.start_ns);
  }
  session.registry.set_counter(p + ".jobs", stats_.size());
  session.registry.set_counter(p + ".lanes", lanes_);
  for (unsigned l = 0; l < lanes_; ++l)
    session.registry.set_counter(p + ".lane" + std::to_string(l) + ".jobs", per_lane[l]);
  // Export straight away so callers that only inspect session.trace (not
  // dump()) still see one slice per job; the SpanSet watermark keeps a
  // later dump() from re-emitting them.
  session.spans.export_to(session.trace);
}

std::vector<GateRunResult> run_src_netlist_batch(
    const nl::Netlist& netlist, dsp::SrcMode mode,
    const std::vector<std::vector<dsp::SrcEvent>>& schedules,
    GateSim::Options options, unsigned threads, obs::Session* session,
    std::uint64_t job_timeout_ns, Backend backend) {
  options.threads = 1;  // parallelism comes from the batch axis
  std::vector<GateRunResult> results(schedules.size());
  BatchRunner runner(threads);
  runner.set_job_budget_ns(job_timeout_ns);
  runner.run(schedules.size(),
             [&](std::size_t job, unsigned /*lane*/, const BatchRunner::JobContext& ctx) {
               results[job] = run_src_netlist(netlist, mode, schedules[job], options,
                                              ctx.deadline_ns, backend);
             });
  if (session != nullptr) runner.record_into(*session, "gate_batch");
  return results;
}

}  // namespace scflow::hdlsim
