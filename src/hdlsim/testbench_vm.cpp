#include "hdlsim/testbench_vm.hpp"

#include <map>
#include <queue>
#include <stdexcept>

#include "dsp/time_quantizer.hpp"
#include "dtypes/bit_int.hpp"

namespace scflow::hdlsim {

using P = dsp::SrcParams;

SrcTestbenchProgram build_src_testbench(const std::vector<dsp::SrcEvent>& events,
                                        dsp::SrcMode mode) {
  SrcTestbenchProgram prog;
  const dsp::TimeQuantizer quant(P::kClockPs);

  // Stimulus process: ordered per-cycle actions.
  std::map<std::uint64_t, std::vector<const dsp::SrcEvent*>> by_cycle;
  std::uint64_t last_cycle = 0;
  for (const auto& e : events) {
    const std::uint64_t c = quant.quantize_cycles(e.t_ps);
    by_cycle[c].push_back(&e);
    last_cycle = std::max(last_cycle, c);
  }
  auto& st = prog.stimulus;
  st.push_back({TbInstr::Op::kSet, "mode", 0, 0, static_cast<std::int64_t>(mode)});
  std::uint64_t cursor = 1;  // the process starts executing at cycle 1
  for (const auto& [cycle, evs] : by_cycle) {
    // Wait so the values are in place when edge `cycle` samples them: the
    // stimulus runs before the DUT steps within a VM cycle.
    if (cycle > cursor) {
      st.push_back({TbInstr::Op::kWait, "", 0, 0, static_cast<std::int64_t>(cycle - cursor)});
      cursor = cycle;
    }
    for (const dsp::SrcEvent* e : evs) {
      if (e->is_input) {
        st.push_back({TbInstr::Op::kSet, "in_left", 0, 0,
                      static_cast<std::uint16_t>(e->sample.left)});
        st.push_back({TbInstr::Op::kSet, "in_right", 0, 0,
                      static_cast<std::uint16_t>(e->sample.right)});
        st.push_back({TbInstr::Op::kToggle, "in_strobe", 0, 0, 0});
      } else {
        st.push_back({TbInstr::Op::kToggle, "out_req", 0, 0, 0});
      }
    }
  }
  st.push_back({TbInstr::Op::kHalt, "", 0, 0, 0});

  // Monitor process (runs every clock, VHDL bit-accuracy-checker style:
  // sample the full result bus each cycle, keep a running signature, and
  // record a result when out_valid toggles):
  //   r0: last out_valid; r1: sampled out_valid; r2/r3: data; r4/r5: sig
  auto& mon = prog.monitor;
  mon.push_back({TbInstr::Op::kSample, "out_valid", 1, 0, 0});  // 0
  mon.push_back({TbInstr::Op::kSample, "out_left", 2, 0, 0});   // 1
  mon.push_back({TbInstr::Op::kSample, "out_right", 3, 0, 0});  // 2
  mon.push_back({TbInstr::Op::kXor, "", 4, 2, 0});              // 3: signature
  mon.push_back({TbInstr::Op::kXor, "", 5, 3, 0});              // 4
  mon.push_back({TbInstr::Op::kJeq, "", 1, 0, 8});              // 5: same -> 8
  mon.push_back({TbInstr::Op::kMov, "", 0, 1, 0});              // 6
  mon.push_back({TbInstr::Op::kRecord, "", 2, 3, 0});           // 7
  mon.push_back({TbInstr::Op::kWait, "", 0, 0, 1});             // 8
  mon.push_back({TbInstr::Op::kJmp, "", 0, 0, 0});              // 9

  prog.run_cycles = last_cycle + 300;
  return prog;
}

namespace {

struct Process {
  const TbProgram* code;
  std::size_t pc = 0;
  bool halted = false;
};

}  // namespace

VmRunResult run_testbench_vm(Dut& dut, const SrcTestbenchProgram& program) {
  VmRunResult result;
  std::uint64_t regs[8] = {0};
  std::map<std::string, bool> toggles;

  Process procs[2] = {{&program.stimulus, 0, false}, {&program.monitor, 0, false}};
  // Resolve every port reference once up front; the dispatch loop then
  // drives the DUT through handles instead of string-keyed lookups.
  std::map<std::string, int> in_by_name, out_by_name;
  std::vector<int> port_handles[2];
  for (int pi = 0; pi < 2; ++pi) {
    const TbProgram& code = *procs[pi].code;
    port_handles[pi].assign(code.size(), -1);
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
      const TbInstr& in = code[pc];
      if (in.op == TbInstr::Op::kSet || in.op == TbInstr::Op::kToggle) {
        auto [it, fresh] = in_by_name.try_emplace(in.port, -1);
        if (fresh) it->second = dut.input_handle(in.port);
        port_handles[pi][pc] = it->second;
      } else if (in.op == TbInstr::Op::kSample) {
        auto [it, fresh] = out_by_name.try_emplace(in.port, -1);
        if (fresh) it->second = dut.output_handle(in.port);
        port_handles[pi][pc] = it->second;
      }
    }
  }
  // The simulator's event calendar: interpreted testbench processes are
  // scheduled through it on every wait, like any HDL simulator kernel.
  using WakeEntry = std::pair<std::uint64_t, int>;  // (cycle, process)
  std::priority_queue<WakeEntry, std::vector<WakeEntry>, std::greater<>> calendar;
  calendar.push({1, 0});
  calendar.push({1, 1});

  // Default input values so the first cycles are defined.
  dut.set_input("in_strobe", 0);
  dut.set_input("in_left", 0);
  dut.set_input("in_right", 0);
  dut.set_input("out_req", 0);

  for (std::uint64_t cycle = 1; cycle <= program.run_cycles; ++cycle) {
    while (!calendar.empty() && calendar.top().first <= cycle) {
      Process& p = procs[calendar.top().second];
      const int proc_index = calendar.top().second;
      calendar.pop();
      ++result.instructions_executed;  // process dispatch
      if (p.halted) continue;
      // Execute until the process suspends or halts.
      bool suspended = false;
      int guard = 0;
      while (!p.halted && !suspended) {
        if (++guard > 10'000) throw std::runtime_error("testbench process livelock");
        const TbInstr& in = (*p.code)[p.pc];
        ++result.instructions_executed;
        switch (in.op) {
          case TbInstr::Op::kSet:
            dut.set_input(port_handles[proc_index][p.pc], static_cast<std::uint64_t>(in.imm));
            ++p.pc;
            break;
          case TbInstr::Op::kToggle: {
            bool& t = toggles[in.port];
            t = !t;
            dut.set_input(port_handles[proc_index][p.pc], t ? 1 : 0);
            ++p.pc;
            break;
          }
          case TbInstr::Op::kWait:
            calendar.push({cycle + static_cast<std::uint64_t>(in.imm), proc_index});
            suspended = true;
            ++p.pc;
            break;
          case TbInstr::Op::kSample:
            regs[in.reg_a] = dut.output(port_handles[proc_index][p.pc]);
            ++p.pc;
            break;
          case TbInstr::Op::kMov:
            regs[in.reg_a] = regs[in.reg_b];
            ++p.pc;
            break;
          case TbInstr::Op::kXor:
            regs[in.reg_a] ^= regs[in.reg_b];
            ++p.pc;
            break;
          case TbInstr::Op::kJeq:
            p.pc = regs[in.reg_a] == regs[in.reg_b]
                       ? static_cast<std::size_t>(in.imm)
                       : p.pc + 1;
            break;
          case TbInstr::Op::kJmp:
            p.pc = static_cast<std::size_t>(in.imm);
            break;
          case TbInstr::Op::kRecord:
            result.outputs.push_back(
                {static_cast<std::int16_t>(scflow::sign_extend(regs[in.reg_a], 16)),
                 static_cast<std::int16_t>(scflow::sign_extend(regs[in.reg_b], 16))});
            ++p.pc;
            break;
          case TbInstr::Op::kHalt:
            p.halted = true;
            break;
        }
      }
    }
    dut.step();
  }
  result.cycles = program.run_cycles;
  result.dut_counters = dut.counters();
  return result;
}

}  // namespace scflow::hdlsim
