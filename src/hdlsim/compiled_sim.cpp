#include "hdlsim/compiled_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/wordpack.hpp"
#include "dtypes/bit_int.hpp"
#include "obs/registry.hpp"

namespace scflow::hdlsim {

namespace {
using CT = nl::CellType;
constexpr std::uint8_t op_kind(CT t) { return static_cast<std::uint8_t>(t); }
}  // namespace

CompiledSim::CompiledSim(const nl::Netlist& netlist, Options options)
    : CompiledSim(netlist, options, compile_netlist(netlist), nullptr) {}

CompiledSim::CompiledSim(const nl::Netlist& netlist, const CompiledProgram& program,
                         Options options)
    : CompiledSim(netlist, options, CompiledProgram{}, &program) {}

CompiledSim::CompiledSim(const nl::Netlist& netlist, Options options, CompiledProgram own,
                         const CompiledProgram* shared)
    : nl_(&netlist),
      options_(options),
      prog_own_(std::move(own)),
      prog_(shared != nullptr ? *shared : prog_own_) {
  if (options_.x_initial_flops) options_.four_state = true;

  vals_.assign(prog_.slot_count, 0);
  if (options_.four_state) known_.assign(prog_.slot_count, 0);
  auto* k = options_.four_state ? known_.data() : nullptr;
  for (const std::uint32_t s : prog_.tie0_slots) {
    vals_[s] = 0;
    if (k != nullptr) k[s] = ~0ull;
  }
  for (const std::uint32_t s : prog_.tie1_slots) {
    vals_[s] = ~0ull;
    if (k != nullptr) k[s] = ~0ull;
  }
  for (std::uint32_t fi = 0; fi < prog_.flop_count; ++fi) {
    if (options_.x_initial_flops) continue;  // unknown: value 0, known 0
    vals_[fi] = core::word_broadcast(prog_.flop_init[fi] != 0);
    if (k != nullptr) k[fi] = ~0ull;
  }

  std::size_t widest_data = 0;
  macro_rt_.resize(prog_.macros.size());
  for (std::size_t mi = 0; mi < prog_.macros.size(); ++mi) {
    const CompiledMacro& cm = prog_.macros[mi];
    if (cm.kind == nl::MacroInfo::Kind::kRam)
      macro_rt_[mi].ram.assign(std::size_t{kLanes} << cm.addr_bits, 0);
  }
  port_rt_.resize(prog_.macro_ports.size());
  for (std::size_t pi = 0; pi < prog_.macro_ports.size(); ++pi) {
    const CompiledMacroPort& mp = prog_.macro_ports[pi];
    ++macro_rt_[mp.macro].read_ports;
    const std::size_t stash_words = mp.addr_slots.size() + mp.en_slots.size();
    port_rt_[pi].stash.assign(stash_words * (options_.four_state ? 2 : 1), 0);
    widest_data = std::max(widest_data, mp.data_slots.size());
  }
  scratch_v_.assign(widest_data, 0);
  scratch_k_.assign(widest_data, 0);

  for (const nl::PortBits& p : netlist.inputs()) in_ports_[p.name] = &p;
  for (const nl::PortBits& p : netlist.outputs()) out_ports_[p.name] = &p;
}

CompiledSim::PortRef CompiledSim::input_port(const std::string& name) const {
  const auto it = in_ports_.find(name);
  if (it == in_ports_.end()) throw std::invalid_argument("no input '" + name + "'");
  return it->second;
}

CompiledSim::PortRef CompiledSim::output_port(const std::string& name) const {
  const auto it = out_ports_.find(name);
  if (it == out_ports_.end()) throw std::invalid_argument("no output '" + name + "'");
  return it->second;
}

std::size_t CompiledSim::in_index(PortRef port) const {
  const auto idx = static_cast<std::size_t>(port - nl_->inputs().data());
  if (idx >= nl_->inputs().size())
    throw std::invalid_argument("foreign input port handle");
  return idx;
}

std::size_t CompiledSim::out_index(PortRef port) const {
  const auto idx = static_cast<std::size_t>(port - nl_->outputs().data());
  if (idx >= nl_->outputs().size())
    throw std::invalid_argument("foreign output port handle");
  return idx;
}

void CompiledSim::drive_bit(std::uint32_t slot, std::uint64_t value, std::uint64_t known) {
  vals_[slot] = value & known;
  if (options_.four_state) known_[slot] = known;
  else if (known != ~0ull)
    throw std::invalid_argument(prog_.name + ": X/Z stimulus needs the four-state backend");
}

void CompiledSim::set_input(const std::string& name, std::uint64_t value) {
  set_input(input_port(name), value);
}

void CompiledSim::set_input(PortRef port, std::uint64_t value) {
  const auto& slots = prog_.input_slots[in_index(port)];
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const bool b = i < 64 && ((value >> i) & 1u) != 0;
    drive_bit(slots[i], core::word_broadcast(b), ~0ull);
  }
}

void CompiledSim::set_input_x(const std::string& name) {
  const auto& slots = prog_.input_slots[in_index(input_port(name))];
  for (const std::uint32_t s : slots) drive_bit(s, 0, 0);
}

void CompiledSim::set_input_logic(const std::string& name, const scflow::LogicVector& bits) {
  PortRef port = input_port(name);
  const auto& slots = prog_.input_slots[in_index(port)];
  if (bits.width() > slots.size())
    throw std::invalid_argument("vector wider than input '" + name + "'");
  for (std::size_t i = 0; i < bits.width(); ++i) {
    const scflow::Logic b = bits.at(i);
    if (scflow::logic_is_01(b))
      drive_bit(slots[i], core::word_broadcast(b == scflow::Logic::L1), ~0ull);
    else
      drive_bit(slots[i], 0, 0);
  }
}

void CompiledSim::set_input_word(PortRef port, std::size_t bit, std::uint64_t patterns) {
  drive_bit(prog_.input_slots[in_index(port)].at(bit), patterns, ~0ull);
}

void CompiledSim::set_input_word(PortRef port, std::size_t bit, std::uint64_t value,
                                 std::uint64_t known) {
  if (!options_.four_state && known != ~0ull)
    throw std::invalid_argument(prog_.name + ": X/Z stimulus needs the four-state backend");
  drive_bit(prog_.input_slots[in_index(port)].at(bit), value, known);
}

// --- PPSFP fault overlay ---------------------------------------------------

void CompiledSim::set_fault_overlay(const std::vector<LaneFault>& faults) {
  if (options_.four_state)
    throw std::logic_error(prog_.name + ": the PPSFP fault overlay is two-state only");
  ov_settle_.clear();
  ov_commit_.clear();
  ov_op_.clear();
  overlay_ = !faults.empty();
  if (!overlay_) return;

  // Merge the per-lane faults into one clamp per slot (a slot has one
  // driver, so every write site applies the whole merged word at once).
  std::unordered_map<std::uint32_t, Clamp> by_slot;
  for (const LaneFault& lf : faults) {
    if (lf.lane >= kLanes)
      throw std::invalid_argument(prog_.name + ": fault overlay lane out of range");
    if (lf.net < 0 || static_cast<std::size_t>(lf.net) >= prog_.slot_of_net.size())
      throw std::invalid_argument(prog_.name + ": fault overlay net out of range");
    const std::uint32_t slot = prog_.slot_of_net[static_cast<std::size_t>(lf.net)];
    const std::uint64_t mask = std::uint64_t{1} << lf.lane;
    Clamp& c = by_slot[slot];
    c.slot = slot;
    c.mask |= mask;
    if (lf.stuck_one) c.val |= mask;
  }

  std::unordered_map<std::uint32_t, bool> covered;  // slot -> has a write site
  for (const auto& [slot, c] : by_slot) covered[slot] = false;

  // Flop Q slots: rewritten only by the flat commit.
  for (auto& [slot, c] : by_slot)
    if (slot < prog_.flop_count) {
      ov_commit_.push_back(c);
      covered[slot] = true;
    }
  // Externally driven slots: re-clamped before every settle (set_input*
  // happens between steps, so a settle-start clamp is equivalent to
  // clamping inside every drive).
  for (const auto& slots : prog_.input_slots)
    for (const std::uint32_t s : slots) {
      const auto it = by_slot.find(s);
      if (it != by_slot.end()) {
        ov_settle_.push_back(it->second);
        covered[s] = true;
      }
    }
  // Op-driven slots (including macro data buses): clamp right after the
  // driver op itself.  Readers of the slot may share the driver's
  // kind-homogeneous run (a dependent same-kind chain compiles into one
  // run), so the executor splits the run at each clamped op instead of
  // clamping at run end.
  for (std::uint32_t ri = 0; ri < prog_.runs.size(); ++ri) {
    const OpRun& run = prog_.runs[ri];
    for (std::uint32_t oi = run.begin; oi < run.end; ++oi) {
      const CompiledOp& op = prog_.ops[oi];
      if (run.kind == kMacroReadOp) {
        for (const std::uint32_t s : prog_.macro_ports[op.in0].data_slots) {
          const auto it = by_slot.find(s);
          if (it != by_slot.end()) {
            ov_op_.push_back({oi, it->second});
            covered[s] = true;
          }
        }
      } else {
        const auto it = by_slot.find(op.out());
        if (it != by_slot.end()) {
          ov_op_.push_back({oi, it->second});
          covered[op.out()] = true;
        }
      }
    }
  }
  // Anything left (tie cells, undriven nets) never gets rewritten: the
  // install-time clamp below persists, but keep a settle-start clamp so
  // the invariant is enforced uniformly.
  for (const auto& [slot, c] : by_slot)
    if (!covered[slot]) ov_settle_.push_back(c);

  std::sort(ov_op_.begin(), ov_op_.end(),
            [](const OpClamp& a, const OpClamp& b) { return a.op < b.op; });
  // Clamp the current state immediately — inject_stuck semantics.
  for (const auto& [slot, c] : by_slot) apply_clamp(c);
}

// --- execution -------------------------------------------------------------

template <bool FourState>
bool CompiledSim::eval_macro_port(std::uint32_t pi) {
  if constexpr (!FourState)
    if (overlay_) return eval_macro_port_overlay(pi);
  const CompiledMacroPort& mp = prog_.macro_ports[pi];
  const CompiledMacro& cm = prog_.macros[mp.macro];
  MacroRt& mrt = macro_rt_[mp.macro];
  PortRt& prt = port_rt_[pi];

  // Change detection: re-evaluate only when the settled address/enable
  // words moved since the last evaluation or the RAM was written —
  // mirroring GateSim's dirty marking, which is what lets externally
  // driven data-port values persist identically on both engines.
  const std::size_t n_in = mp.addr_slots.size() + mp.en_slots.size();
  bool changed = !prt.valid || mrt.wrote_mask != 0;
  std::size_t w = 0;
  const auto scan = [&](const std::vector<std::uint32_t>& slots) {
    for (const std::uint32_t s : slots) {
      if (prt.stash[w] != vals_[s]) {
        changed = true;
        prt.stash[w] = vals_[s];
      }
      if constexpr (FourState) {
        if (prt.stash[n_in + w] != known_[s]) {
          changed = true;
          prt.stash[n_in + w] = known_[s];
        }
      }
      ++w;
    }
  };
  scan(mp.addr_slots);
  scan(mp.en_slots);
  prt.valid = true;
  if (!changed) return false;

  const std::size_t data_bits = mp.data_slots.size();
  std::fill_n(scratch_v_.begin(), data_bits, 0);
  if constexpr (FourState) std::fill_n(scratch_k_.begin(), data_bits, 0);
  const std::size_t entries = std::size_t{1} << cm.addr_bits;
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    std::uint64_t addr = 0;
    bool addr_ok = true;
    for (std::size_t b = 0; b < mp.addr_slots.size(); ++b) {
      const std::uint32_t s = mp.addr_slots[b];
      if constexpr (FourState)
        addr_ok &= core::word_lane(known_[s], lane);
      addr |= std::uint64_t{core::word_lane(vals_[s], lane)} << b;
    }
    if (!addr_ok) continue;  // whole data bus unknown for this lane
    std::uint64_t word;
    if (cm.kind == nl::MacroInfo::Kind::kRom) {
      word = addr < cm.rom_contents.size()
                 ? static_cast<std::uint64_t>(cm.rom_contents[addr]) &
                       scflow::bit_mask(cm.data_bits)
                 : 0;
    } else {
      word = mrt.ram[std::size_t{lane} * entries + addr];
    }
    for (std::size_t b = 0; b < data_bits; ++b) {
      if (((word >> b) & 1u) != 0) scratch_v_[b] |= std::uint64_t{1} << lane;
      if constexpr (FourState) scratch_k_[b] |= std::uint64_t{1} << lane;
    }
  }
  if constexpr (!FourState) {
    for (std::size_t b = 0; b < data_bits; ++b) vals_[mp.data_slots[b]] = scratch_v_[b];
  } else {
    for (std::size_t b = 0; b < data_bits; ++b) {
      vals_[mp.data_slots[b]] = scratch_v_[b];
      known_[mp.data_slots[b]] = scratch_k_[b];
    }
  }
  return true;
}

// Overlay-mode port evaluation: the same change detection per lane.  Each
// lane is one faulty machine, so only the lanes whose address/enable bits
// (or RAM contents) moved re-evaluate — the others keep their externally
// driven data-port values exactly as their event-driven twin would.
bool CompiledSim::eval_macro_port_overlay(std::uint32_t pi) {
  const CompiledMacroPort& mp = prog_.macro_ports[pi];
  const CompiledMacro& cm = prog_.macros[mp.macro];
  MacroRt& mrt = macro_rt_[mp.macro];
  PortRt& prt = port_rt_[pi];

  std::uint64_t changed = prt.valid ? mrt.wrote_mask : ~0ull;
  std::size_t w = 0;
  const auto scan = [&](const std::vector<std::uint32_t>& slots) {
    for (const std::uint32_t s : slots) {
      changed |= prt.stash[w] ^ vals_[s];
      prt.stash[w] = vals_[s];
      ++w;
    }
  };
  scan(mp.addr_slots);
  scan(mp.en_slots);
  prt.valid = true;
  if (changed == 0) return false;

  const std::size_t data_bits = mp.data_slots.size();
  std::fill_n(scratch_v_.begin(), data_bits, 0);
  const std::size_t entries = std::size_t{1} << cm.addr_bits;
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    if (((changed >> lane) & 1u) == 0) continue;
    std::uint64_t addr = 0;
    for (std::size_t b = 0; b < mp.addr_slots.size(); ++b)
      addr |= std::uint64_t{core::word_lane(vals_[mp.addr_slots[b]], lane)} << b;
    std::uint64_t word;
    if (cm.kind == nl::MacroInfo::Kind::kRom) {
      word = addr < cm.rom_contents.size()
                 ? static_cast<std::uint64_t>(cm.rom_contents[addr]) &
                       scflow::bit_mask(cm.data_bits)
                 : 0;
    } else {
      word = mrt.ram[std::size_t{lane} * entries + addr];
    }
    for (std::size_t b = 0; b < data_bits; ++b)
      if (((word >> b) & 1u) != 0) scratch_v_[b] |= std::uint64_t{1} << lane;
  }
  for (std::size_t b = 0; b < data_bits; ++b)
    vals_[mp.data_slots[b]] = (vals_[mp.data_slots[b]] & ~changed) | scratch_v_[b];
  return true;
}

template <bool FourState>
void CompiledSim::exec() {
  std::uint64_t* const v = vals_.data();
  std::uint64_t* const k = FourState ? known_.data() : nullptr;
  std::uint64_t ran = 0;
  const CompiledOp* const ops = prog_.ops.data();
  // One dispatch per kind-homogeneous run, then a tight branch-free sweep
  // of the span — the compiler's level-sorted emission order makes the
  // runs long, so the per-op cost is the loads and the ALU op, not an
  // indirect jump.  Fault-overlay clamps ride the same op order: each
  // clamp fires right after its driver op (oc walks ov_op_, sorted by op
  // index), with the run split at the clamped op — a dependent same-kind
  // chain shares one run, so a reader may sit just after the driver.
  // Overlay-free executions (the benches) never take the split: the oc
  // bound check fails once per run and the sweep covers the whole span.
  [[maybe_unused]] std::size_t oc = 0;
  const auto clamps_through = [&](std::uint32_t op_end) {
    if constexpr (!FourState)
      for (; oc < ov_op_.size() && ov_op_[oc].op < op_end; ++oc)
        apply_clamp(ov_op_[oc].clamp);
  };
  const auto sweep = [&](std::uint8_t kind, const CompiledOp* p,
                         const CompiledOp* const e) {
    constexpr std::uint32_t M = CompiledOp::kOutMask;
    if constexpr (!FourState) {
      switch (kind) {
        case op_kind(CT::kBuf):
          for (; p != e; ++p) v[p->out_kind & M] = v[p->in0];
          break;
        case op_kind(CT::kInv):
          for (; p != e; ++p) v[p->out_kind & M] = ~v[p->in0];
          break;
        case op_kind(CT::kAnd2):
          for (; p != e; ++p) v[p->out_kind & M] = v[p->in0] & v[p->in1];
          break;
        case op_kind(CT::kOr2):
          for (; p != e; ++p) v[p->out_kind & M] = v[p->in0] | v[p->in1];
          break;
        case op_kind(CT::kNand2):
          for (; p != e; ++p) v[p->out_kind & M] = ~(v[p->in0] & v[p->in1]);
          break;
        case op_kind(CT::kNor2):
          for (; p != e; ++p) v[p->out_kind & M] = ~(v[p->in0] | v[p->in1]);
          break;
        case op_kind(CT::kXor2):
          for (; p != e; ++p) v[p->out_kind & M] = v[p->in0] ^ v[p->in1];
          break;
        case op_kind(CT::kXnor2):
          for (; p != e; ++p) v[p->out_kind & M] = ~(v[p->in0] ^ v[p->in1]);
          break;
        case op_kind(CT::kMux2):
          for (; p != e; ++p) {
            const std::uint64_t s = v[p->in0];
            v[p->out_kind & M] = (s & v[p->in2]) | (~s & v[p->in1]);
          }
          break;
        default: break;
      }
    } else {
      // Masked value/known pairs (unknown bits carry value 0), derived
      // from the dtypes/logic.cpp truth tables with Z collapsed to X.
      switch (kind) {
        case op_kind(CT::kBuf):
          for (; p != e; ++p) {
            const std::uint32_t out = p->out_kind & M;
            v[out] = v[p->in0];
            k[out] = k[p->in0];
          }
          break;
        case op_kind(CT::kInv):
          for (; p != e; ++p) {
            const std::uint32_t out = p->out_kind & M;
            const std::uint64_t av = v[p->in0], ak = k[p->in0];
            v[out] = ak & ~av;
            k[out] = ak;
          }
          break;
        case op_kind(CT::kAnd2):
          for (; p != e; ++p) {
            const std::uint32_t out = p->out_kind & M;
            const std::uint64_t av = v[p->in0], ak = k[p->in0];
            const std::uint64_t bv = v[p->in1], bk = k[p->in1];
            const std::uint64_t rv = av & bv;  // a known 0 dominates
            v[out] = rv;
            k[out] = rv | (ak & ~av) | (bk & ~bv);
          }
          break;
        case op_kind(CT::kNand2):
          for (; p != e; ++p) {
            const std::uint32_t out = p->out_kind & M;
            const std::uint64_t av = v[p->in0], ak = k[p->in0];
            const std::uint64_t bv = v[p->in1], bk = k[p->in1];
            const std::uint64_t tv = av & bv;
            const std::uint64_t tk = tv | (ak & ~av) | (bk & ~bv);
            v[out] = tk & ~tv;
            k[out] = tk;
          }
          break;
        case op_kind(CT::kOr2):
          for (; p != e; ++p) {
            const std::uint32_t out = p->out_kind & M;
            const std::uint64_t av = v[p->in0], ak = k[p->in0];
            const std::uint64_t bv = v[p->in1], bk = k[p->in1];
            v[out] = av | bv;  // a known 1 dominates
            k[out] = av | bv | (ak & bk);
          }
          break;
        case op_kind(CT::kNor2):
          for (; p != e; ++p) {
            const std::uint32_t out = p->out_kind & M;
            const std::uint64_t av = v[p->in0], ak = k[p->in0];
            const std::uint64_t bv = v[p->in1], bk = k[p->in1];
            const std::uint64_t tv = av | bv;
            const std::uint64_t tk = tv | (ak & bk);
            v[out] = tk & ~tv;
            k[out] = tk;
          }
          break;
        case op_kind(CT::kXor2):
          for (; p != e; ++p) {
            const std::uint32_t out = p->out_kind & M;
            const std::uint64_t rk = k[p->in0] & k[p->in1];
            v[out] = rk & (v[p->in0] ^ v[p->in1]);
            k[out] = rk;
          }
          break;
        case op_kind(CT::kXnor2):
          for (; p != e; ++p) {
            const std::uint32_t out = p->out_kind & M;
            const std::uint64_t rk = k[p->in0] & k[p->in1];
            v[out] = rk & ~(v[p->in0] ^ v[p->in1]);
            k[out] = rk;
          }
          break;
        case op_kind(CT::kMux2):
          for (; p != e; ++p) {
            const std::uint32_t out = p->out_kind & M;
            const std::uint64_t sv = v[p->in0], sk = k[p->in0];
            const std::uint64_t pv = v[p->in1], pk = k[p->in1];
            const std::uint64_t qv = v[p->in2], qk = k[p->in2];
            const std::uint64_t s1 = sk & sv, s0 = sk & ~sv;
            // Unknown select: known only where both branches agree on 0/1.
            const std::uint64_t agree = pk & qk & ~(pv ^ qv);
            const std::uint64_t rk = (s0 & pk) | (s1 & qk) | (~sk & agree);
            v[out] = rk & ((s0 & pv) | (s1 & qv) | (~sk & pv));
            k[out] = rk;
          }
          break;
        default: break;
      }
    }
  };
  for (std::size_t ri = 0; ri < prog_.runs.size(); ++ri) {
    const OpRun& run = prog_.runs[ri];
    if (run.kind == kMacroReadOp) {
      // Read-port data slots clamp per op too: one port's data net can
      // directly address another port in the same run.
      for (std::uint32_t oi = run.begin; oi < run.end; ++oi) {
        ran += eval_macro_port<FourState>(ops[oi].in0) ? 1u : 0u;
        clamps_through(oi + 1);
      }
      continue;
    }
    ran += run.end - run.begin;
    std::uint32_t cur = run.begin;
    if constexpr (!FourState) {
      while (oc < ov_op_.size() && ov_op_[oc].op < run.end) {
        const std::uint32_t stop = ov_op_[oc].op + 1;
        sweep(run.kind, ops + cur, ops + stop);
        clamps_through(stop);
        cur = stop;
      }
    }
    sweep(run.kind, ops + cur, ops + run.end);
  }
  ops_run_ += ran;
  counters_.evaluations += ran;
  words_ += ran * (FourState ? 2 : 1);
}

template <bool FourState>
void CompiledSim::ram_writes() {
  for (std::size_t mi = 0; mi < prog_.macros.size(); ++mi) {
    const CompiledMacro& cm = prog_.macros[mi];
    if (cm.kind != nl::MacroInfo::Kind::kRam) continue;
    MacroRt& mrt = macro_rt_[mi];
    const std::size_t entries = std::size_t{1} << cm.addr_bits;
    const auto gather = [&](const std::vector<std::uint32_t>& slots, unsigned lane,
                            bool& ok) {
      std::uint64_t w = 0;
      for (std::size_t b = 0; b < slots.size(); ++b) {
        if constexpr (FourState) ok &= core::word_lane(known_[slots[b]], lane);
        w |= std::uint64_t{core::word_lane(vals_[slots[b]], lane)} << b;
      }
      return w;
    };
    std::uint64_t wrote = 0;
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      // Same rules as GateSim: X on the enable bus or a zero enable skips,
      // an X address makes the contents unknowable (skip), X data writes 0.
      bool wen_ok = true;
      const std::uint64_t wen = gather(cm.wen_slots, lane, wen_ok);
      if (!wen_ok || wen == 0) continue;
      bool addr_ok = true;
      const std::uint64_t addr = gather(cm.waddr_slots, lane, addr_ok);
      if (!addr_ok) continue;
      bool data_ok = true;
      const std::uint64_t data = gather(cm.wdata_slots, lane, data_ok);
      mrt.ram[std::size_t{lane} * entries + addr] =
          data_ok ? static_cast<std::uint32_t>(data) : 0;
      wrote |= std::uint64_t{1} << lane;
    }
    if (wrote != 0) {
      mrt.wrote_mask |= wrote;
      counters_.ram_rereads += mrt.read_ports;
    }
  }
}

void CompiledSim::settle() {
  ++counters_.settle_calls;
  ++counters_.settle_passes;
  // Externally driven slots were (re)written by set_input since the last
  // pass; re-assert their lane clamps before any op reads them.
  if (overlay_)
    for (const Clamp& c : ov_settle_) apply_clamp(c);
  if (options_.four_state) exec<true>();
  else exec<false>();
  // Write-forced re-evaluations were consumed by this pass.
  for (MacroRt& m : macro_rt_) m.wrote_mask = 0;
}

void CompiledSim::step() {
  settle();
  if (options_.four_state) ram_writes<true>();
  else ram_writes<false>();
  // The flat flop commit the slot layout was built for: next-state region
  // [F,2F) onto the committed region [0,F) in one contiguous copy.
  const std::uint32_t F = prog_.flop_count;
  std::copy_n(vals_.begin() + F, F, vals_.begin());
  if (options_.four_state) std::copy_n(known_.begin() + F, F, known_.begin());
  // Faulty Q slots: the commit is the write, the clamp follows it.
  if (overlay_)
    for (const Clamp& c : ov_commit_) apply_clamp(c);
  ++cycles_;
  if (options_.ops_histogram) {
    cycle_ops_.record(ops_run_ - ops_at_cycle_start_);
    ops_at_cycle_start_ = ops_run_;
  }
}

// --- reads -----------------------------------------------------------------

std::uint64_t CompiledSim::output(const std::string& name) {
  return output(output_port(name));
}

std::uint64_t CompiledSim::output(PortRef port) {
  const auto& slots = prog_.output_slots[out_index(port)];
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < slots.size() && i < 64; ++i) {
    if (options_.four_state && !core::word_lane(known_[slots[i]], 0))
      throw std::runtime_error("output '" + port->name + "' carries X/Z");
    v |= std::uint64_t{core::word_lane(vals_[slots[i]], 0)} << i;
  }
  return v;
}

scflow::LogicVector CompiledSim::output_bits(const std::string& name, unsigned lane) const {
  const auto it = out_ports_.find(name);
  if (it == out_ports_.end()) throw std::invalid_argument("no output '" + name + "'");
  const auto& slots = prog_.output_slots[out_index(it->second)];
  scflow::LogicVector v(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (options_.four_state && !core::word_lane(known_[slots[i]], lane))
      v.set(i, scflow::Logic::X);
    else
      v.set(i, scflow::logic_from_bool(core::word_lane(vals_[slots[i]], lane)));
  }
  return v;
}

GateSim::PortSample CompiledSim::output_sample(PortRef port, unsigned lane) const {
  const auto& slots = prog_.output_slots[out_index(port)];
  GateSim::PortSample s;
  for (std::size_t i = 0; i < slots.size() && i < 64; ++i) {
    if (options_.four_state && !core::word_lane(known_[slots[i]], lane)) continue;
    s.known |= std::uint64_t{1} << i;
    if (core::word_lane(vals_[slots[i]], lane)) s.value |= std::uint64_t{1} << i;
  }
  return s;
}

std::uint64_t CompiledSim::output_word(PortRef port, std::size_t bit) const {
  return vals_[prog_.output_slots[out_index(port)].at(bit)];
}

std::uint64_t CompiledSim::output_known_word(PortRef port, std::size_t bit) const {
  if (!options_.four_state) return ~0ull;
  return known_[prog_.output_slots[out_index(port)].at(bit)];
}

void CompiledSim::record_into(scflow::obs::Registry& reg, std::string_view prefix) const {
  const std::string p(prefix);
  reg.set_counter(p + ".ops", ops_run_);
  reg.set_counter(p + ".words", words_);
  reg.set_counter(p + ".cycles", cycles_);
  if (cycle_ops_.count() > 0) reg.merge_histogram(p + ".cycle_ops", cycle_ops_);
}

}  // namespace scflow::hdlsim
