#include "hdlsim/src_gate_sim.hpp"

#include <chrono>
#include <map>

#include "dsp/time_quantizer.hpp"
#include "dtypes/bit_int.hpp"
#include "hdlsim/compiled_sim.hpp"

namespace scflow::hdlsim {

using P = dsp::SrcParams;

namespace {
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The schedule driver, generic over the engine: GateSim and CompiledSim
// share the port-handle surface this loop touches, so both backends run
// the exact same stimulus/collection code.
template <typename Sim>
GateRunResult run_impl(Sim& sim, const nl::Netlist& netlist, dsp::SrcMode mode,
                       const std::vector<dsp::SrcEvent>& events,
                       std::uint64_t deadline_ns) {
  sim.set_input("mode", static_cast<std::uint64_t>(mode));
  sim.set_input("in_strobe", 0);
  sim.set_input("in_left", 0);
  sim.set_input("in_right", 0);
  sim.set_input("out_req", 0);
  if (netlist.find_input("scan_in") != nullptr) {
    sim.set_input("scan_in", 0);
    sim.set_input("scan_enable", 0);
  }

  const dsp::TimeQuantizer quant(P::kClockPs);
  std::map<std::uint64_t, std::vector<const dsp::SrcEvent*>> by_cycle;
  std::uint64_t last_cycle = 0;
  for (const auto& e : events) {
    const std::uint64_t c = quant.quantize_cycles(e.t_ps);
    by_cycle[c].push_back(&e);
    last_cycle = std::max(last_cycle, c);
  }

  GateRunResult result;
  bool strobe = false, req = false;
  bool last_valid = false;
  const auto p_in_left = sim.input_port("in_left");
  const auto p_in_right = sim.input_port("in_right");
  const auto p_in_strobe = sim.input_port("in_strobe");
  const auto p_out_req = sim.input_port("out_req");
  const auto p_out_valid = sim.output_port("out_valid");
  const auto p_out_left = sim.output_port("out_left");
  const auto p_out_right = sim.output_port("out_right");
  {
    sim.settle();
    last_valid = sim.output(p_out_valid) != 0;
  }
  auto next_event = by_cycle.begin();
  const std::uint64_t end_cycle = last_cycle + 300;
  std::uint64_t stopped_at = end_cycle;
  for (std::uint64_t cycle = 1; cycle <= end_cycle; ++cycle) {
    // Cooperative deadline: cheap enough to leave in the loop (one branch
    // per cycle, a clock read every 64), and what lets a batch job wind
    // down instead of stalling its lane on a pathological schedule.
    if (deadline_ns != 0 && (cycle & 63u) == 0 && steady_now_ns() > deadline_ns) {
      result.timed_out = true;
      stopped_at = cycle;
      break;
    }
    if (next_event != by_cycle.end() && next_event->first == cycle) {
      for (const dsp::SrcEvent* e : next_event->second) {
        if (e->is_input) {
          sim.set_input(p_in_left, static_cast<std::uint16_t>(e->sample.left));
          sim.set_input(p_in_right, static_cast<std::uint16_t>(e->sample.right));
          strobe = !strobe;
          sim.set_input(p_in_strobe, strobe ? 1 : 0);
        } else {
          req = !req;
          sim.set_input(p_out_req, req ? 1 : 0);
        }
      }
      ++next_event;
    }
    sim.step();
    const bool v = sim.output(p_out_valid) != 0;
    if (v != last_valid) {
      last_valid = v;
      result.outputs.push_back(
          {static_cast<std::int16_t>(scflow::sign_extend(sim.output(p_out_left), 16)),
           static_cast<std::int16_t>(scflow::sign_extend(sim.output(p_out_right), 16))});
    }
  }
  result.cycles = stopped_at;
  result.ram_violations = sim.ram_violations();
  result.counters = sim.counters();
  return result;
}
}  // namespace

GateRunResult run_src_netlist(const nl::Netlist& netlist, dsp::SrcMode mode,
                              const std::vector<dsp::SrcEvent>& events,
                              GateSim::Options options, std::uint64_t deadline_ns,
                              Backend backend) {
  // The checking RAM model and the reference evaluator only exist in the
  // interpreter; requesting either overrides the backend choice.
  if (backend == Backend::kCompiled && !options.check_ram &&
      !options.use_reference_eval) {
    CompiledSim::Options copt;
    copt.x_initial_flops = options.x_initial_flops;
    CompiledSim sim(netlist, copt);
    return run_impl(sim, netlist, mode, events, deadline_ns);
  }
  GateSim sim(netlist, options);
  return run_impl(sim, netlist, mode, events, deadline_ns);
}

}  // namespace scflow::hdlsim
