#include "hdlsim/sim_counters.hpp"

#include <string>

#include "obs/registry.hpp"

namespace scflow::hdlsim {

void SimCounters::record_into(scflow::obs::Registry& reg, std::string_view prefix) const {
  const std::string p = std::string(prefix) + ".";
  reg.set_counter(p + "evaluations", evaluations);
  reg.set_counter(p + "dirty_pushes", dirty_pushes);
  reg.set_counter(p + "settle_calls", settle_calls);
  reg.set_counter(p + "settle_passes", settle_passes);
  reg.set_counter(p + "ram_rereads", ram_rereads);
  reg.set_counter(p + "peak_queue_depth", peak_queue_depth);
  reg.set_counter(p + "steady_state_allocs", steady_state_allocs);
}

void WorkerShardStats::record_into(scflow::obs::Registry& reg, std::string_view prefix) const {
  const std::string p = std::string(prefix) + ".";
  reg.set_counter(p + "evaluations", evaluations);
  reg.set_counter(p + "dirty_pushes", dirty_pushes);
  reg.set_counter(p + "level_sweeps", level_sweeps);
}

}  // namespace scflow::hdlsim
