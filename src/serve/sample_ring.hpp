// Single-producer / single-consumer lock-free ring of stereo samples —
// the per-session transport between a client thread and whichever
// scheduler lane converts the session this step.  Bounded, so it IS the
// backpressure mechanism: push returns how many samples fit, pop returns
// how many were there; neither blocks, nothing is dropped silently.
//
// Threading contract: exactly one producer thread and one consumer
// thread at a time.  head_ is written only by the producer, tail_ only
// by the consumer; each side reads the other's index with acquire and
// publishes its own with release, so the payload writes are visible
// before the index that covers them.  The service hands a session to at
// most one lane per step (with a join between steps), so "the consumer"
// may be a different OS thread each step without violating the contract.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "dsp/src_params.hpp"

namespace scflow::serve {

class SampleRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).  A zero
  /// capacity is a configuration error, not a degenerate ring: every
  /// push would lie about backpressure, so it throws.
  explicit SampleRing(std::size_t capacity) : SampleRing(capacity, 0) {}

  /// Same, with both monotonic counters seeded at @p start_counter —
  /// lets tests exercise the u64 head/tail wraparound region directly
  /// instead of pushing 2^64 samples to reach it.
  SampleRing(std::size_t capacity, std::uint64_t start_counter)
      : head_(start_counter), tail_(start_counter) {
    if (capacity == 0) {
      throw std::invalid_argument("SampleRing: capacity must be non-zero");
    }
    std::size_t size = 2;
    while (size < capacity) size <<= 1;
    buf_.resize(size);
    mask_ = size - 1;
  }
  SampleRing(const SampleRing&) = delete;
  SampleRing& operator=(const SampleRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Producer side: appends up to @p n samples, returns how many fit.
  std::size_t push(const dsp::StereoSample* src, std::size_t n) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t free_slots = buf_.size() - static_cast<std::size_t>(head - tail);
    const std::size_t take = n < free_slots ? n : free_slots;
    for (std::size_t i = 0; i < take; ++i) {
      buf_[static_cast<std::size_t>(head + i) & mask_] = src[i];
    }
    head_.store(head + take, std::memory_order_release);
    return take;
  }

  /// Consumer side: removes up to @p n samples, returns how many came out.
  std::size_t pop(dsp::StereoSample* dst, std::size_t n) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::size_t avail = static_cast<std::size_t>(head - tail);
    const std::size_t take = n < avail ? n : avail;
    for (std::size_t i = 0; i < take; ++i) {
      dst[i] = buf_[static_cast<std::size_t>(tail + i) & mask_];
    }
    tail_.store(tail + take, std::memory_order_release);
    return take;
  }

  /// Occupancy snapshot (exact from either endpoint's own thread,
  /// a safe approximation from anywhere else).
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(head - tail);
  }
  [[nodiscard]] std::size_t free_space() const { return buf_.size() - size(); }

  /// Snapshot support: appends the queued contents (oldest first) to
  /// @p out without consuming them, and returns the tail counter so a
  /// restored ring can be reconstructed at the same logical position.
  /// Quiescent use only (no concurrent producer/consumer) — the
  /// service snapshots between steps with no clients running.
  std::uint64_t snapshot_into(std::vector<dsp::StereoSample>& out) const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    for (std::uint64_t i = tail; i != head; ++i) {
      out.push_back(buf_[static_cast<std::size_t>(i) & mask_]);
    }
    return tail;
  }

 private:
  std::vector<dsp::StereoSample> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< producer-owned
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< consumer-owned
};

}  // namespace scflow::serve
