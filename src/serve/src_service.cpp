#include "serve/src_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "hdlsim/batch_runner.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"
#include "serve/chaos.hpp"

namespace scflow::serve {

struct SrcService::SessionState {
  SessionState(const SessionConfig& cfg, const ServiceOptions& opt,
               std::uint64_t in_start = 0, std::uint64_t out_start = 0)
      : config(cfg),
        src(cfg.fs_in_hz, cfg.fs_out_hz, cfg.time_base),
        max_out_per_input(src.plan().max_outputs_per_input()),
        in(opt.input_ring, in_start),
        // A ring smaller than one input's worth of outputs could never
        // clear the scheduling watermark; round up.
        out(opt.output_ring > max_out_per_input ? opt.output_ring : max_out_per_input,
            out_start),
        conv_out(max_out_per_input) {}

  SessionConfig config;
  dsp::RationalSrc src;
  std::size_t max_out_per_input;
  SampleRing in;
  SampleRing out;
  std::vector<dsp::StereoSample> conv_out;  ///< lane-local conversion scratch
  SessionStats stats;
  obs::Fnv1a hasher;

  // Lease state.  Client threads stamp activity through the relaxed
  // atomic; the control thread samples it at step() into
  // client_marks_seen.  Everything else is control-thread-owned.
  std::uint64_t opened_at_step = 0;
  std::uint64_t last_active_step = 0;
  std::atomic<std::uint64_t> client_marks{0};
  std::uint64_t client_marks_seen = 0;
};

SrcService::SrcService(ServiceOptions options)
    : options_(options),
      runner_(std::make_unique<hdlsim::BatchRunner>(options.threads)) {
  slots_.reserve(options_.max_sessions);
}

SrcService::~SrcService() = default;

SrcService::SessionState* SrcService::resolve(SessionId id, bool allow_closing) const {
  if (!id.valid() || id.slot >= slots_.size()) return nullptr;
  const Slot& slot = slots_[id.slot];
  if (slot.generation != id.generation) return nullptr;
  if (slot.state == SlotState::kOpen ||
      (allow_closing && slot.state != SlotState::kFree)) {
    return slot.session.get();
  }
  return nullptr;
}

AdmitResult SrcService::try_open(const SessionConfig& config) {
  if (config.fs_in_hz < dsp::kMinRateHz || config.fs_in_hz > dsp::kMaxRateHz ||
      config.fs_out_hz < dsp::kMinRateHz || config.fs_out_hz > dsp::kMaxRateHz) {
    ++res_.admit_rate_unsupported;
    return {{}, AdmitStatus::kRateUnsupported};
  }
  // Keyed on the attempt counter (not opened_total_) so a failed attempt
  // advances the schedule — a client that retries gets a fresh draw.
  const std::uint64_t attempt = admit_attempts_++;
  if (chaos_ != nullptr && chaos_->fail_allocation(attempt)) {
    ++res_.chaos_alloc_failures;
    return {{}, AdmitStatus::kAllocFailed};
  }

  // Find capacity, escalating: a free slot, table growth, reclaiming
  // closed/evicted tenants, and finally — with shedding configured —
  // evicting the lowest-progress session.
  if (free_slots_.empty() && slots_.size() >= options_.max_sessions) {
    reclaim();            // folds kClosing slots (no lane holds them here)
    if (free_slots_.empty()) sweep_evicted();
    if (free_slots_.empty() && options_.shed_high_watermark > 0 &&
        slots_.size() - free_slots_.size() >= options_.shed_high_watermark) {
      shed_one();
    }
    if (free_slots_.empty()) {
      ++res_.admit_overloaded;
      return {{}, AdmitStatus::kOverloaded};
    }
  }

  std::unique_ptr<SessionState> session;
  try {
    session = std::make_unique<SessionState>(config, options_);
  } catch (const std::exception&) {
    // plan_ratio rejections are caught by the range check above, so this
    // is a genuine allocation/construction failure.
    return {{}, AdmitStatus::kAllocFailed};
  }
  session->opened_at_step = steps_;
  session->last_active_step = steps_;

  std::uint32_t idx = 0;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[idx];
  slot.state = SlotState::kOpen;
  slot.session = std::move(session);
  ++open_count_;
  ++opened_total_;
  return {{idx, slot.generation}, AdmitStatus::kAdmitted};
}

SessionId SrcService::open(const SessionConfig& config) {
  const AdmitResult r = try_open(config);
  if (r.status == AdmitStatus::kRateUnsupported) {
    throw std::invalid_argument("SrcService::open: rate outside supported range");
  }
  return r.id;  // invalid id on kOverloaded / kAllocFailed, as before
}

bool SrcService::close(SessionId id) {
  if (resolve(id) == nullptr) return false;
  slots_[id.slot].state = SlotState::kClosing;
  --open_count_;
  ++closed_total_;
  return true;
}

std::size_t SrcService::push(SessionId id, const dsp::StereoSample* samples,
                             std::size_t n) {
  if (!id.valid() || id.slot >= slots_.size()) return 0;
  const Slot& slot = slots_[id.slot];
  if (slot.generation != id.generation) return 0;
  if (slot.state == SlotState::kEvicting || slot.state == SlotState::kEvicted) {
    // Lease lapsed: the client's samples are refused (and counted) so the
    // session can finish draining what it already accepted.
    slot.session->stats.push_rejected += n;
    evict_push_rejected_.fetch_add(n, std::memory_order_relaxed);
    return 0;
  }
  if (slot.state != SlotState::kOpen) return 0;
  SessionState* s = slot.session.get();
  s->client_marks.fetch_add(1, std::memory_order_relaxed);
  if (samples == nullptr) {
    // Malformed push: refuse without dereferencing.
    s->stats.push_rejected += n;
    return 0;
  }
  const std::size_t accepted = s->in.push(samples, n);
  s->stats.accepted += accepted;
  s->stats.push_rejected += n - accepted;
  return accepted;
}

std::size_t SrcService::pull(SessionId id, dsp::StereoSample* out, std::size_t cap) {
  SessionState* s = resolve(id, /*allow_closing=*/true);
  if (s == nullptr || out == nullptr) return 0;
  s->client_marks.fetch_add(1, std::memory_order_relaxed);
  const std::size_t got = s->out.pop(out, cap);
  s->stats.pulled += got;
  return got;
}

std::size_t SrcService::in_free(SessionId id) const {
  const SessionState* s = resolve(id);
  return s == nullptr ? 0 : s->in.free_space();
}

std::size_t SrcService::out_available(SessionId id) const {
  const SessionState* s = resolve(id, /*allow_closing=*/true);
  return s == nullptr ? 0 : s->out.size();
}

const SessionStats* SrcService::stats(SessionId id) const {
  const SessionState* s = resolve(id, /*allow_closing=*/true);
  return s == nullptr ? nullptr : &s->stats;
}

SessionPhase SrcService::phase(SessionId id) const {
  if (!id.valid() || id.slot >= slots_.size()) return SessionPhase::kUnknown;
  const Slot& slot = slots_[id.slot];
  if (slot.generation != id.generation) return SessionPhase::kUnknown;
  switch (slot.state) {
    case SlotState::kOpen:
      return SessionPhase::kOpen;
    case SlotState::kClosing:
      return SessionPhase::kClosing;
    case SlotState::kEvicting:
      return SessionPhase::kEvicting;
    case SlotState::kEvicted:
      return SessionPhase::kEvicted;
    case SlotState::kFree:
      break;
  }
  return SessionPhase::kUnknown;
}

void SrcService::set_chaos(const ChaosPlan* plan) {
  chaos_ = plan;
  // Injected stalls burn the whole per-job budget; installing it on the
  // runner guarantees they expire instead of hanging a lane.
  runner_->set_job_budget_ns(plan != nullptr ? plan->options().stall_budget_ns : 0);
}

void SrcService::note_chaos(ChaosClass c) {
  switch (c) {
    case ChaosClass::kLaneStall:
      ++res_.chaos_stalls;
      break;
    case ChaosClass::kDisconnect:
      ++res_.chaos_disconnects;
      break;
    case ChaosClass::kOversizedPush:
      ++res_.chaos_oversized_pushes;
      break;
    case ChaosClass::kRingStorm:
      ++res_.chaos_ring_storms;
      break;
    case ChaosClass::kAllocFail:
      ++res_.chaos_alloc_failures;
      break;
  }
}

ResilienceStats SrcService::resilience_stats() const {
  ResilienceStats out = res_;
  out.chaos_stalls += lane_stalls_.load(std::memory_order_relaxed);
  out.evict_push_rejected += evict_push_rejected_.load(std::memory_order_relaxed);
  return out;
}

void SrcService::service_one(SessionState& s) const {
  ++s.stats.dispatches;
  for (std::size_t i = 0; i < options_.work_quantum; ++i) {
    // Watermark: only consume an input when a full worst-case burst of
    // outputs is guaranteed to fit — inputs are never popped just to be
    // dropped on a full output ring.
    if (s.out.free_space() < s.max_out_per_input) break;
    dsp::StereoSample in;
    if (s.in.pop(&in, 1) == 0) break;
    const std::size_t n = s.src.push(in, s.conv_out.data(), s.conv_out.size());
    ++s.stats.converted_in;
    if (n == 0) continue;
    for (std::size_t k = 0; k < n; ++k) {
      const auto left = static_cast<std::uint16_t>(s.conv_out[k].left);
      const auto right = static_cast<std::uint16_t>(s.conv_out[k].right);
      s.hasher.update_u64((std::uint64_t{left} << 16) | right);
    }
    s.stats.output_hash = s.hasher.digest();
    s.stats.produced += s.out.push(s.conv_out.data(), n);
  }
}

void SrcService::retire_slot(std::uint32_t idx) {
  Slot& slot = slots_[idx];
  const SessionState& s = *slot.session;
  const std::uint64_t key =
      (std::uint64_t{s.config.fs_in_hz} << 32) | s.config.fs_out_hz;
  RatioAgg& agg = closed_ratio_aggs_[key];
  ++agg.sessions;
  agg.accepted += s.stats.accepted;
  agg.push_rejected += s.stats.push_rejected;
  agg.converted_in += s.stats.converted_in;
  agg.produced += s.stats.produced;
  agg.pulled += s.stats.pulled;
  slot.session.reset();
  slot.state = SlotState::kFree;
  ++slot.generation;
  free_slots_.push_back(idx);
}

void SrcService::reclaim() {
  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    if (slots_[idx].state == SlotState::kClosing) retire_slot(idx);
  }
}

std::size_t SrcService::sweep_evicted() {
  std::size_t swept = 0;
  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    if (slots_[idx].state != SlotState::kEvicted) continue;
    res_.evict_unpulled += slots_[idx].session->out.size();
    retire_slot(idx);
    ++swept;
  }
  return swept;
}

bool SrcService::shed_one() {
  // Deterministic victim: least conversion progress, lowest slot on ties.
  std::uint32_t victim = SessionId::kInvalidSlot;
  std::uint64_t victim_progress = ~std::uint64_t{0};
  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    const Slot& slot = slots_[idx];
    if (slot.state != SlotState::kOpen && slot.state != SlotState::kEvicting) continue;
    if (slot.session->stats.converted_in < victim_progress) {
      victim_progress = slot.session->stats.converted_in;
      victim = idx;
    }
  }
  if (victim == SessionId::kInvalidSlot) return false;
  Slot& slot = slots_[victim];
  SessionState& s = *slot.session;
  ++res_.shed_sessions;
  res_.shed_dropped_inputs += s.in.size();
  res_.shed_dropped_outputs += s.out.size();
  if (slot.state == SlotState::kOpen) {
    --open_count_;
    ++closed_total_;
  }
  retire_slot(victim);
  return true;
}

void SrcService::apply_leases() {
  if (options_.idle_timeout_steps == 0 && options_.max_lifetime_steps == 0) return;
  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    Slot& slot = slots_[idx];
    if (slot.state != SlotState::kOpen) continue;
    SessionState& s = *slot.session;
    const std::uint64_t marks = s.client_marks.load(std::memory_order_relaxed);
    if (marks != s.client_marks_seen) {
      s.client_marks_seen = marks;
      s.last_active_step = steps_;
    }
    const bool idle = options_.idle_timeout_steps > 0 &&
                      steps_ - s.last_active_step > options_.idle_timeout_steps;
    const bool expired = options_.max_lifetime_steps > 0 &&
                         steps_ - s.opened_at_step > options_.max_lifetime_steps;
    if (!idle && !expired) continue;
    if (idle) {
      ++res_.evict_idle;
    } else {
      ++res_.evict_lifetime;
    }
    --open_count_;
    ++closed_total_;
    if (s.in.size() == 0) {
      slot.state = SlotState::kEvicted;
      ++res_.evict_drained;
    } else {
      slot.state = SlotState::kEvicting;  // drain queued inputs first
    }
  }
}

std::size_t SrcService::step() {
  reclaim();  // safe: no lane holds a session between steps
  ++steps_;
  apply_leases();
  const std::size_t n_slots = slots_.size();
  if (n_slots == 0) return 0;

  dispatch_list_.clear();
  starved_list_.clear();
  const std::size_t cap =
      options_.max_sessions_per_step == 0 ? n_slots : options_.max_sessions_per_step;
  for (std::size_t k = 0; k < n_slots; ++k) {
    const std::size_t idx = (rr_cursor_ + k) % n_slots;
    Slot& slot = slots_[idx];
    // kEvicting sessions keep being scheduled so their accepted inputs
    // drain; everything else only runs while kOpen.
    if (slot.state != SlotState::kOpen && slot.state != SlotState::kEvicting) continue;
    SessionState& s = *slot.session;
    const bool ready =
        s.in.size() > 0 && s.out.free_space() >= s.max_out_per_input;
    if (!ready) {
      // Not starving — it has no work, or the client isn't draining.
      s.stats.starve_streak = 0;
      continue;
    }
    if (dispatch_list_.size() < cap) {
      dispatch_list_.push_back(idx);
      s.last_active_step = steps_;  // conversion progress counts as activity
    } else {
      starved_list_.push_back(idx);
    }
  }

  for (std::size_t idx : starved_list_) {
    SessionStats& st = slots_[idx].session->stats;
    ++st.starve_streak;
    if (st.starve_streak > st.starve_streak_max) st.starve_streak_max = st.starve_streak;
    if (st.starve_streak > starve_streak_max_) starve_streak_max_ = st.starve_streak;
  }
  if (dispatch_list_.empty()) return 0;

  // Next step scans from just past the last grant, so this step's
  // starved sessions lead the next rotation — the fairness bound.
  rr_cursor_ = (dispatch_list_.back() + 1) % n_slots;

  const ChaosPlan* chaos = chaos_;
  const std::uint64_t step_now = steps_;
  runner_->run(dispatch_list_.size(),
               [this, chaos, step_now](std::size_t job, unsigned /*lane*/,
                                       const hdlsim::BatchRunner::JobContext& ctx) {
    const std::size_t slot_idx = dispatch_list_[job];
    SessionState& s = *slots_[slot_idx].session;
    s.stats.starve_streak = 0;
    if (chaos != nullptr && chaos->stall_lane(step_now, static_cast<std::uint32_t>(slot_idx))) {
      // Deadline abuse: burn the job's wall budget before doing the work.
      // Bounded twice over — the runner budget set_chaos() installed and
      // an iteration cap for the pathological zero-budget case.
      lane_stalls_.fetch_add(1, std::memory_order_relaxed);
      for (std::uint64_t spin = 0; spin < (1u << 22) && !ctx.expired(); ++spin) {
      }
    }
    service_one(s);
  });
  res_.chaos_stalls += lane_stalls_.exchange(0, std::memory_order_relaxed);
  dispatch_total_ += dispatch_list_.size();
  for (const auto& stat : runner_->job_stats()) {
    job_ns_.record(stat.end_ns - stat.start_ns);
  }
  // Post-join: evicting sessions that just drained become terminal.
  for (std::size_t idx : dispatch_list_) {
    Slot& slot = slots_[idx];
    if (slot.state == SlotState::kEvicting && slot.session->in.size() == 0) {
      slot.state = SlotState::kEvicted;
      ++res_.evict_drained;
    }
  }
  return dispatch_list_.size();
}

std::size_t SrcService::run_until_idle(std::size_t max_steps) {
  std::size_t taken = 0;
  while (taken < max_steps) {
    ++taken;
    if (step() == 0) break;
  }
  return taken;
}

namespace {

std::uint64_t options_fingerprint(const ServiceOptions& opt) {
  // Semantic options only: thread count is scheduling, not meaning, and
  // must not split otherwise-identical ledger entries.
  obs::Fnv1a fp;
  fp.update_u64(opt.max_sessions);
  fp.update_u64(opt.input_ring);
  fp.update_u64(opt.output_ring);
  fp.update_u64(opt.work_quantum);
  fp.update_u64(opt.max_sessions_per_step);
  fp.update_u64(opt.idle_timeout_steps);
  fp.update_u64(opt.max_lifetime_steps);
  fp.update_u64(opt.shed_high_watermark);
  return fp.digest();
}

}  // namespace

void SrcService::record_into(obs::Session& session, std::string_view run_label) const {
  // Closed-session aggregates plus everything still live.
  std::map<std::uint64_t, RatioAgg> aggs = closed_ratio_aggs_;
  for (const Slot& slot : slots_) {
    if (slot.state == SlotState::kFree) continue;
    const SessionState& s = *slot.session;
    const std::uint64_t key =
        (std::uint64_t{s.config.fs_in_hz} << 32) | s.config.fs_out_hz;
    RatioAgg& agg = aggs[key];
    ++agg.sessions;
    agg.accepted += s.stats.accepted;
    agg.push_rejected += s.stats.push_rejected;
    agg.converted_in += s.stats.converted_in;
    agg.produced += s.stats.produced;
    agg.pulled += s.stats.pulled;
  }

  RatioAgg total;
  for (const auto& [key, agg] : aggs) {
    (void)key;
    total.sessions += agg.sessions;
    total.accepted += agg.accepted;
    total.push_rejected += agg.push_rejected;
    total.converted_in += agg.converted_in;
    total.produced += agg.produced;
    total.pulled += agg.pulled;
  }

  const ResilienceStats res = resilience_stats();

  obs::Registry& reg = session.registry;
  reg.count("serve.sessions_opened", opened_total_);
  reg.count("serve.sessions_closed", closed_total_);
  reg.count("serve.steps", steps_);
  reg.count("serve.dispatches", dispatch_total_);
  reg.count("serve.samples_in", total.accepted);
  reg.count("serve.samples_out", total.produced);
  reg.count("serve.samples_pulled", total.pulled);
  reg.count("serve.push_rejected", total.push_rejected);
  reg.set_counter("serve.starve_streak_max", starve_streak_max_);
  reg.merge_histogram("serve.job_ns", job_ns_);
  reg.count("serve.evict.idle", res.evict_idle);
  reg.count("serve.evict.lifetime", res.evict_lifetime);
  reg.count("serve.evict.drained", res.evict_drained);
  reg.count("serve.evict.push_rejected", res.evict_push_rejected);
  reg.count("serve.evict.unpulled", res.evict_unpulled);
  reg.count("serve.shed.sessions", res.shed_sessions);
  reg.count("serve.shed.dropped_inputs", res.shed_dropped_inputs);
  reg.count("serve.shed.dropped_outputs", res.shed_dropped_outputs);
  reg.count("serve.admit.overloaded", res.admit_overloaded);
  reg.count("serve.admit.rate_unsupported", res.admit_rate_unsupported);
  reg.count("serve.chaos.stalls", res.chaos_stalls);
  reg.count("serve.chaos.disconnects", res.chaos_disconnects);
  reg.count("serve.chaos.oversized_pushes", res.chaos_oversized_pushes);
  reg.count("serve.chaos.ring_storms", res.chaos_ring_storms);
  reg.count("serve.chaos.alloc_failures", res.chaos_alloc_failures);
  reg.count("serve.snapshot.saves", res.snapshot_saves);
  reg.count("serve.snapshot.restores", res.snapshot_restores);
  reg.set_counter("serve.snapshot.bytes_last", res.snapshot_bytes_last);

  const std::uint64_t opt_fp = options_fingerprint(options_);
  obs::Fnv1a run_fp;
  for (const auto& [key, agg] : aggs) {
    const auto fs_in = static_cast<std::uint32_t>(key >> 32);
    const auto fs_out = static_cast<std::uint32_t>(key);
    obs::LedgerEntry e;
    e.phase = "serve.ratio";
    e.design = std::to_string(fs_in) + "->" + std::to_string(fs_out);
    obs::Fnv1a in_hash;
    in_hash.update_u64(key);
    e.input_hash = in_hash.digest();
    e.options_fingerprint = opt_fp;
    e.add_counter("sessions", agg.sessions);
    e.add_counter("samples_in", agg.accepted);
    e.add_counter("push_rejected", agg.push_rejected);
    e.add_counter("converted_in", agg.converted_in);
    e.add_counter("samples_out", agg.produced);
    e.add_counter("samples_pulled", agg.pulled);
    session.ledger.append(std::move(e));
    run_fp.update_u64(key);
    run_fp.update_u64(agg.sessions);
  }

  // The resilience census: everything the eviction / shedding /
  // admission / chaos / snapshot machinery did.  Deterministic (chaos
  // schedules are pure functions of seed and step coordinates), so this
  // entry is bit-identical across thread counts too.
  obs::LedgerEntry rese;
  rese.phase = "serve.resilience";
  rese.design = std::string(run_label);
  {
    obs::Fnv1a in_hash;
    in_hash.update_u64(chaos_ != nullptr ? chaos_->seed() : 0);
    rese.input_hash = in_hash.digest();
  }
  rese.options_fingerprint = opt_fp;
  rese.add_counter("evict_idle", res.evict_idle);
  rese.add_counter("evict_lifetime", res.evict_lifetime);
  rese.add_counter("evict_drained", res.evict_drained);
  rese.add_counter("evict_push_rejected", res.evict_push_rejected);
  rese.add_counter("evict_unpulled", res.evict_unpulled);
  rese.add_counter("shed_sessions", res.shed_sessions);
  rese.add_counter("shed_dropped_inputs", res.shed_dropped_inputs);
  rese.add_counter("shed_dropped_outputs", res.shed_dropped_outputs);
  rese.add_counter("admit_overloaded", res.admit_overloaded);
  rese.add_counter("admit_rate_unsupported", res.admit_rate_unsupported);
  rese.add_counter("chaos_stalls", res.chaos_stalls);
  rese.add_counter("chaos_disconnects", res.chaos_disconnects);
  rese.add_counter("chaos_oversized_pushes", res.chaos_oversized_pushes);
  rese.add_counter("chaos_ring_storms", res.chaos_ring_storms);
  rese.add_counter("chaos_alloc_failures", res.chaos_alloc_failures);
  rese.add_counter("snapshot_saves", res.snapshot_saves);
  rese.add_counter("snapshot_restores", res.snapshot_restores);
  rese.add_counter("snapshot_bytes_last", res.snapshot_bytes_last);
  session.ledger.append(std::move(rese));

  obs::LedgerEntry run;
  run.phase = "serve.run";
  run.design = std::string(run_label);
  run.input_hash = run_fp.digest();  // session-count x ratio fingerprint
  run.options_fingerprint = opt_fp;
  run.duration_ns = job_ns_.sum();
  run.add_counter("sessions_opened", opened_total_);
  run.add_counter("sessions_closed", closed_total_);
  run.add_counter("ratios", aggs.size());
  run.add_counter("steps", steps_);
  run.add_counter("dispatches", dispatch_total_);
  run.add_counter("samples_in", total.accepted);
  run.add_counter("push_rejected", total.push_rejected);
  run.add_counter("samples_out", total.produced);
  run.add_counter("samples_pulled", total.pulled);
  run.add_counter("starve_streak_max", starve_streak_max_);
  run.add_histogram("job_ns", job_ns_);
  session.ledger.append(std::move(run));
}

// ---------------------------------------------------------------------------
// Snapshot support.

namespace {

void save_ring(core::StateWriter& w, const SampleRing& ring) {
  std::vector<dsp::StereoSample> contents;
  const std::uint64_t tail = ring.snapshot_into(contents);
  w.u64(tail);
  w.u64(contents.size());
  for (const dsp::StereoSample& s : contents) {
    w.i16(s.left);
    w.i16(s.right);
  }
}

struct RingImage {
  std::uint64_t tail = 0;
  std::vector<dsp::StereoSample> contents;
};

bool read_ring_image(core::StateReader& r, RingImage* img, std::uint64_t cap_bound) {
  img->tail = r.u64();
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > cap_bound) return false;
  img->contents.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    dsp::StereoSample s;
    s.left = r.i16();
    s.right = r.i16();
    img->contents.push_back(s);
  }
  return r.ok();
}

}  // namespace

void SrcService::save_state(core::StateWriter& w) const {
  // Semantic options (threads is scheduling, restored service keeps its own).
  w.u64(options_.max_sessions);
  w.u64(options_.input_ring);
  w.u64(options_.output_ring);
  w.u64(options_.work_quantum);
  w.u64(options_.max_sessions_per_step);
  w.u64(options_.idle_timeout_steps);
  w.u64(options_.max_lifetime_steps);
  w.u64(options_.shed_high_watermark);

  // Lifetime counters (wall-clock data — the job_ns histogram — stays
  // out, so the image is byte-identical across thread counts).
  w.u64(opened_total_);
  w.u64(closed_total_);
  w.u64(admit_attempts_);
  w.u64(steps_);
  w.u64(dispatch_total_);
  w.u32(starve_streak_max_);
  w.u64(rr_cursor_);

  const ResilienceStats res = resilience_stats();
  w.u64(res.evict_idle);
  w.u64(res.evict_lifetime);
  w.u64(res.evict_drained);
  w.u64(res.evict_push_rejected);
  w.u64(res.evict_unpulled);
  w.u64(res.shed_sessions);
  w.u64(res.shed_dropped_inputs);
  w.u64(res.shed_dropped_outputs);
  w.u64(res.admit_overloaded);
  w.u64(res.admit_rate_unsupported);
  w.u64(res.chaos_stalls);
  w.u64(res.chaos_disconnects);
  w.u64(res.chaos_oversized_pushes);
  w.u64(res.chaos_ring_storms);
  w.u64(res.chaos_alloc_failures);
  w.u64(res.snapshot_saves);
  w.u64(res.snapshot_restores);
  w.u64(res.snapshot_bytes_last);

  w.u64(closed_ratio_aggs_.size());
  for (const auto& [key, agg] : closed_ratio_aggs_) {
    w.u64(key);
    w.u64(agg.sessions);
    w.u64(agg.accepted);
    w.u64(agg.push_rejected);
    w.u64(agg.converted_in);
    w.u64(agg.produced);
    w.u64(agg.pulled);
  }

  // The free stack verbatim: slot assignment after restore must replay
  // exactly as it would have uninterrupted.
  w.u64(free_slots_.size());
  for (std::uint32_t idx : free_slots_) w.u32(idx);

  w.u64(slots_.size());
  for (const Slot& slot : slots_) {
    w.u32(slot.generation);
    w.u8(static_cast<std::uint8_t>(slot.state));
    if (slot.state == SlotState::kFree) continue;
    const SessionState& s = *slot.session;
    w.u32(s.config.fs_in_hz);
    w.u32(s.config.fs_out_hz);
    w.u8(static_cast<std::uint8_t>(s.config.time_base));
    w.u64(s.stats.accepted);
    w.u64(s.stats.push_rejected);
    w.u64(s.stats.converted_in);
    w.u64(s.stats.produced);
    w.u64(s.stats.pulled);
    w.u64(s.stats.dispatches);
    w.u32(s.stats.starve_streak);
    w.u32(s.stats.starve_streak_max);
    w.u64(s.stats.output_hash);
    w.u64(s.hasher.digest());
    w.u64(s.opened_at_step);
    w.u64(s.last_active_step);
    w.u64(s.client_marks.load(std::memory_order_relaxed));
    w.u64(s.client_marks_seen);
    save_ring(w, s.in);
    save_ring(w, s.out);
    s.src.save_state(w);
  }
}

bool SrcService::load_state(core::StateReader& r, std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!slots_.empty() || opened_total_ != 0 || steps_ != 0) {
    return fail("load_state target must be a fresh service");
  }

  ServiceOptions opt;
  opt.threads = options_.threads;  // scheduling stays the target's choice
  opt.max_sessions = r.u64();
  opt.input_ring = r.u64();
  opt.output_ring = r.u64();
  opt.work_quantum = r.u64();
  opt.max_sessions_per_step = r.u64();
  opt.idle_timeout_steps = r.u64();
  opt.max_lifetime_steps = r.u64();
  opt.shed_high_watermark = r.u64();
  if (!r.ok()) return fail("truncated snapshot payload (options)");
  if (opt.max_sessions == 0 || opt.max_sessions > (1u << 24)) {
    return fail("implausible max_sessions in snapshot");
  }
  if (opt.input_ring == 0 || opt.output_ring == 0 || opt.work_quantum == 0) {
    return fail("implausible ring/quantum options in snapshot");
  }

  opened_total_ = r.u64();
  closed_total_ = r.u64();
  admit_attempts_ = r.u64();
  steps_ = r.u64();
  dispatch_total_ = r.u64();
  starve_streak_max_ = r.u32();
  rr_cursor_ = r.u64();

  ResilienceStats res;
  res.evict_idle = r.u64();
  res.evict_lifetime = r.u64();
  res.evict_drained = r.u64();
  res.evict_push_rejected = r.u64();
  res.evict_unpulled = r.u64();
  res.shed_sessions = r.u64();
  res.shed_dropped_inputs = r.u64();
  res.shed_dropped_outputs = r.u64();
  res.admit_overloaded = r.u64();
  res.admit_rate_unsupported = r.u64();
  res.chaos_stalls = r.u64();
  res.chaos_disconnects = r.u64();
  res.chaos_oversized_pushes = r.u64();
  res.chaos_ring_storms = r.u64();
  res.chaos_alloc_failures = r.u64();
  res.snapshot_saves = r.u64();
  res.snapshot_restores = r.u64();
  res.snapshot_bytes_last = r.u64();

  const std::uint64_t n_aggs = r.u64();
  if (!r.ok() || n_aggs > (1u << 20)) return fail("corrupt ratio aggregates");
  std::map<std::uint64_t, RatioAgg> aggs;
  for (std::uint64_t i = 0; i < n_aggs; ++i) {
    const std::uint64_t key = r.u64();
    RatioAgg agg;
    agg.sessions = r.u64();
    agg.accepted = r.u64();
    agg.push_rejected = r.u64();
    agg.converted_in = r.u64();
    agg.produced = r.u64();
    agg.pulled = r.u64();
    aggs[key] = agg;
  }

  const std::uint64_t n_free = r.u64();
  if (!r.ok() || n_free > opt.max_sessions) return fail("corrupt free-slot stack");
  std::vector<std::uint32_t> free_slots;
  free_slots.reserve(static_cast<std::size_t>(n_free));
  for (std::uint64_t i = 0; i < n_free; ++i) {
    const std::uint32_t idx = r.u32();
    if (idx >= opt.max_sessions) return fail("free-slot index out of range");
    free_slots.push_back(idx);
  }

  const std::uint64_t n_slots = r.u64();
  if (!r.ok() || n_slots > opt.max_sessions) return fail("slot count exceeds max_sessions");

  std::vector<Slot> slots(static_cast<std::size_t>(n_slots));
  std::size_t open_count = 0;
  for (std::uint64_t i = 0; i < n_slots; ++i) {
    Slot& slot = slots[static_cast<std::size_t>(i)];
    slot.generation = r.u32();
    const std::uint8_t state = r.u8();
    if (state > static_cast<std::uint8_t>(SlotState::kEvicted)) {
      return fail("invalid slot state in snapshot");
    }
    slot.state = static_cast<SlotState>(state);
    if (slot.state == SlotState::kFree) continue;

    SessionConfig cfg;
    cfg.fs_in_hz = r.u32();
    cfg.fs_out_hz = r.u32();
    const std::uint8_t tb = r.u8();
    if (tb > 1) return fail("invalid session time base in snapshot");
    cfg.time_base = static_cast<dsp::RationalSrc::TimeBase>(tb);
    if (!r.ok()) return fail("truncated snapshot payload (session config)");
    if (cfg.fs_in_hz < dsp::kMinRateHz || cfg.fs_in_hz > dsp::kMaxRateHz ||
        cfg.fs_out_hz < dsp::kMinRateHz || cfg.fs_out_hz > dsp::kMaxRateHz) {
      return fail("session rate outside supported range in snapshot");
    }

    SessionStats stats;
    stats.accepted = r.u64();
    stats.push_rejected = r.u64();
    stats.converted_in = r.u64();
    stats.produced = r.u64();
    stats.pulled = r.u64();
    stats.dispatches = r.u64();
    stats.starve_streak = r.u32();
    stats.starve_streak_max = r.u32();
    stats.output_hash = r.u64();
    const std::uint64_t hasher_digest = r.u64();
    const std::uint64_t opened_at_step = r.u64();
    const std::uint64_t last_active_step = r.u64();
    const std::uint64_t client_marks = r.u64();
    const std::uint64_t client_marks_seen = r.u64();
    if (!r.ok()) return fail("truncated snapshot payload (session stats)");

    // Ring images come before the session can exist (the saved counters
    // seed the reconstructed rings), so buffer them first.  The bound is
    // generous; exact capacity is enforced by the replaying push below.
    RingImage in_img;
    RingImage out_img;
    if (!read_ring_image(r, &in_img, 1u << 24)) {
      return fail("corrupt input-ring contents in snapshot");
    }
    if (!read_ring_image(r, &out_img, 1u << 24)) {
      return fail("corrupt output-ring contents in snapshot");
    }

    auto session = std::make_unique<SessionState>(cfg, opt, in_img.tail, out_img.tail);
    session->stats = stats;
    session->hasher.restore_digest(hasher_digest);
    session->opened_at_step = opened_at_step;
    session->last_active_step = last_active_step;
    session->client_marks.store(client_marks, std::memory_order_relaxed);
    session->client_marks_seen = client_marks_seen;
    if (session->in.push(in_img.contents.data(), in_img.contents.size()) !=
        in_img.contents.size()) {
      return fail("input-ring contents exceed ring capacity in snapshot");
    }
    if (session->out.push(out_img.contents.data(), out_img.contents.size()) !=
        out_img.contents.size()) {
      return fail("output-ring contents exceed ring capacity in snapshot");
    }
    if (!session->src.load_state(r)) {
      return fail("corrupt converter state in snapshot");
    }
    if (slot.state == SlotState::kOpen) ++open_count;
    slot.session = std::move(session);
  }
  if (!r.ok()) return fail("truncated snapshot payload");
  if (!r.exhausted()) return fail("trailing bytes after snapshot payload");

  options_ = opt;
  res_ = res;
  lane_stalls_.store(0, std::memory_order_relaxed);
  evict_push_rejected_.store(0, std::memory_order_relaxed);
  closed_ratio_aggs_ = std::move(aggs);
  free_slots_ = std::move(free_slots);
  slots_ = std::move(slots);
  open_count_ = open_count;
  return true;
}

}  // namespace scflow::serve
