#include "serve/src_service.hpp"

#include <string>

#include "hdlsim/batch_runner.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"

namespace scflow::serve {

struct SrcService::SessionState {
  SessionState(const SessionConfig& cfg, const ServiceOptions& opt)
      : config(cfg),
        src(cfg.fs_in_hz, cfg.fs_out_hz, cfg.time_base),
        max_out_per_input(src.plan().max_outputs_per_input()),
        in(opt.input_ring),
        // A ring smaller than one input's worth of outputs could never
        // clear the scheduling watermark; round up.
        out(opt.output_ring > max_out_per_input ? opt.output_ring : max_out_per_input),
        conv_out(max_out_per_input) {}

  SessionConfig config;
  dsp::RationalSrc src;
  std::size_t max_out_per_input;
  SampleRing in;
  SampleRing out;
  std::vector<dsp::StereoSample> conv_out;  ///< lane-local conversion scratch
  SessionStats stats;
  obs::Fnv1a hasher;
};

SrcService::SrcService(ServiceOptions options)
    : options_(options),
      runner_(std::make_unique<hdlsim::BatchRunner>(options.threads)) {
  slots_.reserve(options_.max_sessions);
}

SrcService::~SrcService() = default;

SrcService::SessionState* SrcService::resolve(SessionId id, bool allow_closing) const {
  if (!id.valid() || id.slot >= slots_.size()) return nullptr;
  const Slot& slot = slots_[id.slot];
  if (slot.generation != id.generation) return nullptr;
  if (slot.state == SlotState::kOpen ||
      (allow_closing && slot.state == SlotState::kClosing)) {
    return slot.session.get();
  }
  return nullptr;
}

SessionId SrcService::open(const SessionConfig& config) {
  std::uint32_t idx = 0;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
  } else if (slots_.size() < options_.max_sessions) {
    idx = static_cast<std::uint32_t>(slots_.size());
  } else {
    return {};  // at capacity
  }
  // Construct first: plan_ratio() throws on unsupported rates and the
  // slot table must stay untouched in that case.
  auto session = std::make_unique<SessionState>(config, options_);
  if (!free_slots_.empty()) {
    free_slots_.pop_back();
  } else {
    slots_.emplace_back();
  }
  Slot& slot = slots_[idx];
  slot.state = SlotState::kOpen;
  slot.session = std::move(session);
  ++open_count_;
  ++opened_total_;
  return {idx, slot.generation};
}

bool SrcService::close(SessionId id) {
  if (resolve(id) == nullptr) return false;
  slots_[id.slot].state = SlotState::kClosing;
  --open_count_;
  ++closed_total_;
  return true;
}

std::size_t SrcService::push(SessionId id, const dsp::StereoSample* samples,
                             std::size_t n) {
  SessionState* s = resolve(id);
  if (s == nullptr) return 0;
  const std::size_t accepted = s->in.push(samples, n);
  s->stats.accepted += accepted;
  s->stats.push_rejected += n - accepted;
  return accepted;
}

std::size_t SrcService::pull(SessionId id, dsp::StereoSample* out, std::size_t cap) {
  SessionState* s = resolve(id, /*allow_closing=*/true);
  if (s == nullptr) return 0;
  const std::size_t got = s->out.pop(out, cap);
  s->stats.pulled += got;
  return got;
}

std::size_t SrcService::in_free(SessionId id) const {
  const SessionState* s = resolve(id);
  return s == nullptr ? 0 : s->in.free_space();
}

std::size_t SrcService::out_available(SessionId id) const {
  const SessionState* s = resolve(id, /*allow_closing=*/true);
  return s == nullptr ? 0 : s->out.size();
}

const SessionStats* SrcService::stats(SessionId id) const {
  const SessionState* s = resolve(id, /*allow_closing=*/true);
  return s == nullptr ? nullptr : &s->stats;
}

void SrcService::service_one(SessionState& s) const {
  ++s.stats.dispatches;
  for (std::size_t i = 0; i < options_.work_quantum; ++i) {
    // Watermark: only consume an input when a full worst-case burst of
    // outputs is guaranteed to fit — inputs are never popped just to be
    // dropped on a full output ring.
    if (s.out.free_space() < s.max_out_per_input) break;
    dsp::StereoSample in;
    if (s.in.pop(&in, 1) == 0) break;
    const std::size_t n = s.src.push(in, s.conv_out.data(), s.conv_out.size());
    ++s.stats.converted_in;
    if (n == 0) continue;
    for (std::size_t k = 0; k < n; ++k) {
      const auto left = static_cast<std::uint16_t>(s.conv_out[k].left);
      const auto right = static_cast<std::uint16_t>(s.conv_out[k].right);
      s.hasher.update_u64((std::uint64_t{left} << 16) | right);
    }
    s.stats.output_hash = s.hasher.digest();
    s.stats.produced += s.out.push(s.conv_out.data(), n);
  }
}

void SrcService::reclaim() {
  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    Slot& slot = slots_[idx];
    if (slot.state != SlotState::kClosing) continue;
    const SessionState& s = *slot.session;
    const std::uint64_t key =
        (std::uint64_t{s.config.fs_in_hz} << 32) | s.config.fs_out_hz;
    RatioAgg& agg = closed_ratio_aggs_[key];
    ++agg.sessions;
    agg.accepted += s.stats.accepted;
    agg.push_rejected += s.stats.push_rejected;
    agg.converted_in += s.stats.converted_in;
    agg.produced += s.stats.produced;
    agg.pulled += s.stats.pulled;
    slot.session.reset();
    slot.state = SlotState::kFree;
    ++slot.generation;
    free_slots_.push_back(idx);
  }
}

std::size_t SrcService::step() {
  reclaim();  // safe: no lane holds a session between steps
  ++steps_;
  const std::size_t n_slots = slots_.size();
  if (n_slots == 0) return 0;

  dispatch_list_.clear();
  starved_list_.clear();
  const std::size_t cap =
      options_.max_sessions_per_step == 0 ? n_slots : options_.max_sessions_per_step;
  for (std::size_t k = 0; k < n_slots; ++k) {
    const std::size_t idx = (rr_cursor_ + k) % n_slots;
    Slot& slot = slots_[idx];
    if (slot.state != SlotState::kOpen) continue;
    SessionState& s = *slot.session;
    const bool ready =
        s.in.size() > 0 && s.out.free_space() >= s.max_out_per_input;
    if (!ready) {
      // Not starving — it has no work, or the client isn't draining.
      s.stats.starve_streak = 0;
      continue;
    }
    if (dispatch_list_.size() < cap) {
      dispatch_list_.push_back(idx);
    } else {
      starved_list_.push_back(idx);
    }
  }

  for (std::size_t idx : starved_list_) {
    SessionStats& st = slots_[idx].session->stats;
    ++st.starve_streak;
    if (st.starve_streak > st.starve_streak_max) st.starve_streak_max = st.starve_streak;
    if (st.starve_streak > starve_streak_max_) starve_streak_max_ = st.starve_streak;
  }
  if (dispatch_list_.empty()) return 0;

  // Next step scans from just past the last grant, so this step's
  // starved sessions lead the next rotation — the fairness bound.
  rr_cursor_ = (dispatch_list_.back() + 1) % n_slots;

  runner_->run(dispatch_list_.size(), [this](std::size_t job, unsigned /*lane*/) {
    SessionState& s = *slots_[dispatch_list_[job]].session;
    s.stats.starve_streak = 0;
    service_one(s);
  });
  dispatch_total_ += dispatch_list_.size();
  for (const auto& stat : runner_->job_stats()) {
    job_ns_.record(stat.end_ns - stat.start_ns);
  }
  return dispatch_list_.size();
}

std::size_t SrcService::run_until_idle(std::size_t max_steps) {
  std::size_t taken = 0;
  while (taken < max_steps) {
    ++taken;
    if (step() == 0) break;
  }
  return taken;
}

namespace {

std::uint64_t options_fingerprint(const ServiceOptions& opt) {
  // Semantic options only: thread count is scheduling, not meaning, and
  // must not split otherwise-identical ledger entries.
  obs::Fnv1a fp;
  fp.update_u64(opt.max_sessions);
  fp.update_u64(opt.input_ring);
  fp.update_u64(opt.output_ring);
  fp.update_u64(opt.work_quantum);
  fp.update_u64(opt.max_sessions_per_step);
  return fp.digest();
}

}  // namespace

void SrcService::record_into(obs::Session& session, std::string_view run_label) const {
  // Closed-session aggregates plus everything still live.
  std::map<std::uint64_t, RatioAgg> aggs = closed_ratio_aggs_;
  for (const Slot& slot : slots_) {
    if (slot.state == SlotState::kFree) continue;
    const SessionState& s = *slot.session;
    const std::uint64_t key =
        (std::uint64_t{s.config.fs_in_hz} << 32) | s.config.fs_out_hz;
    RatioAgg& agg = aggs[key];
    ++agg.sessions;
    agg.accepted += s.stats.accepted;
    agg.push_rejected += s.stats.push_rejected;
    agg.converted_in += s.stats.converted_in;
    agg.produced += s.stats.produced;
    agg.pulled += s.stats.pulled;
  }

  RatioAgg total;
  for (const auto& [key, agg] : aggs) {
    (void)key;
    total.sessions += agg.sessions;
    total.accepted += agg.accepted;
    total.push_rejected += agg.push_rejected;
    total.converted_in += agg.converted_in;
    total.produced += agg.produced;
    total.pulled += agg.pulled;
  }

  obs::Registry& reg = session.registry;
  reg.count("serve.sessions_opened", opened_total_);
  reg.count("serve.sessions_closed", closed_total_);
  reg.count("serve.steps", steps_);
  reg.count("serve.dispatches", dispatch_total_);
  reg.count("serve.samples_in", total.accepted);
  reg.count("serve.samples_out", total.produced);
  reg.count("serve.samples_pulled", total.pulled);
  reg.count("serve.push_rejected", total.push_rejected);
  reg.set_counter("serve.starve_streak_max", starve_streak_max_);
  reg.merge_histogram("serve.job_ns", job_ns_);

  const std::uint64_t opt_fp = options_fingerprint(options_);
  obs::Fnv1a run_fp;
  for (const auto& [key, agg] : aggs) {
    const auto fs_in = static_cast<std::uint32_t>(key >> 32);
    const auto fs_out = static_cast<std::uint32_t>(key);
    obs::LedgerEntry e;
    e.phase = "serve.ratio";
    e.design = std::to_string(fs_in) + "->" + std::to_string(fs_out);
    obs::Fnv1a in_hash;
    in_hash.update_u64(key);
    e.input_hash = in_hash.digest();
    e.options_fingerprint = opt_fp;
    e.add_counter("sessions", agg.sessions);
    e.add_counter("samples_in", agg.accepted);
    e.add_counter("push_rejected", agg.push_rejected);
    e.add_counter("converted_in", agg.converted_in);
    e.add_counter("samples_out", agg.produced);
    e.add_counter("samples_pulled", agg.pulled);
    session.ledger.append(std::move(e));
    run_fp.update_u64(key);
    run_fp.update_u64(agg.sessions);
  }

  obs::LedgerEntry run;
  run.phase = "serve.run";
  run.design = std::string(run_label);
  run.input_hash = run_fp.digest();  // session-count x ratio fingerprint
  run.options_fingerprint = opt_fp;
  run.duration_ns = job_ns_.sum();
  run.add_counter("sessions_opened", opened_total_);
  run.add_counter("sessions_closed", closed_total_);
  run.add_counter("ratios", aggs.size());
  run.add_counter("steps", steps_);
  run.add_counter("dispatches", dispatch_total_);
  run.add_counter("samples_in", total.accepted);
  run.add_counter("push_rejected", total.push_rejected);
  run.add_counter("samples_out", total.produced);
  run.add_counter("samples_pulled", total.pulled);
  run.add_counter("starve_streak_max", starve_streak_max_);
  run.add_histogram("job_ns", job_ns_);
  session.ledger.append(std::move(run));
}

}  // namespace scflow::serve
