// Streaming SRC service (ROADMAP item 3): session-oriented sample-rate
// conversion for thousands of concurrent streams.  A client opens a
// session with an arbitrary rational input/output rate pair (any ratio
// dsp::plan_ratio accepts — the four paper pairs run bit-exact with the
// golden model), pushes chunked stereo audio and pulls converted audio.
//
// Flow control is watermark-based and explicit: push() returns how many
// samples the bounded input ring accepted, pull() returns how many were
// available — neither blocks and nothing is dropped silently.  A session
// whose output ring is full simply stops being scheduled until the
// client drains it (the unconsumed inputs stay queued).
//
// Scheduling: step() scans the slot table in round-robin rotation,
// collects sessions that are ready (input queued AND enough output
// space for one full input's worth of results) and fans the first
// max_sessions_per_step of them over hdlsim::BatchRunner lanes, each
// dispatch bounded by work_quantum input samples.  The rotation cursor
// restarts after the last dispatched slot, so sessions passed over in
// one step lead the next — their starvation streak is bounded by
// ceil(ready / max_sessions_per_step) steps (asserted in tests).
//
// Determinism: a session is touched by at most one lane per step and the
// runner joins between steps, so each session's output stream — and its
// running FNV-1a output hash — depends only on its own input sequence,
// never on the lane count or claiming order (bit-identical for
// threads in {1,2,4,8}; see tests/test_serve.cpp).
//
// Threading contract: open/close/step/record_into belong to one control
// thread; push/pull/stats may run concurrently from one client thread
// per session (SampleRing is SPSC).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "dsp/rational_src.hpp"
#include "obs/histogram.hpp"
#include "obs/ledger.hpp"
#include "serve/sample_ring.hpp"

namespace scflow::obs {
struct Session;
}
namespace scflow::hdlsim {
class BatchRunner;
}

namespace scflow::serve {

/// Slot-plus-generation handle: reusing a slot after close() bumps the
/// generation, so a stale id held by a client resolves to nothing
/// instead of to the next tenant's stream.
struct SessionId {
  static constexpr std::uint32_t kInvalidSlot = 0xffff'ffffu;
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t generation = 0;
  [[nodiscard]] bool valid() const { return slot != kInvalidSlot; }
  friend bool operator==(const SessionId&, const SessionId&) = default;
};

struct SessionConfig {
  std::uint32_t fs_in_hz = 48'000;
  std::uint32_t fs_out_hz = 48'000;
  dsp::RationalSrc::TimeBase time_base = dsp::RationalSrc::TimeBase::kContinuousPs;
};

/// Per-session accounting.  The conservation laws the backpressure tests
/// pin: accepted == converted_in + (input ring occupancy), and
/// produced == pulled + (output ring occupancy) — nothing ever vanishes.
struct SessionStats {
  std::uint64_t accepted = 0;       ///< inputs the ring took from push()
  std::uint64_t push_rejected = 0;  ///< inputs push() had to turn away
  std::uint64_t converted_in = 0;   ///< inputs consumed by the converter
  std::uint64_t produced = 0;       ///< outputs written to the output ring
  std::uint64_t pulled = 0;         ///< outputs handed back through pull()
  std::uint64_t dispatches = 0;     ///< scheduler grants
  std::uint32_t starve_streak = 0;  ///< consecutive ready-but-skipped steps
  std::uint32_t starve_streak_max = 0;
  std::uint64_t output_hash = 0;    ///< FNV-1a over the produced stream
};

struct ServiceOptions {
  /// BatchRunner lane semantics: 1 = convert inline on the control
  /// thread, N > 1 = N-1 workers plus the control thread, 0 = one lane
  /// per hardware thread.
  unsigned threads = 1;
  std::size_t max_sessions = 4096;
  std::size_t input_ring = 1024;   ///< per-session input ring capacity
  std::size_t output_ring = 1024;  ///< per-session output ring capacity
  /// Work quantum: at most this many input samples are converted per
  /// session per dispatch, so one deep backlog cannot monopolise a lane.
  std::size_t work_quantum = 256;
  /// 0 = dispatch every ready session each step.
  std::size_t max_sessions_per_step = 0;
};

class SrcService {
 public:
  explicit SrcService(ServiceOptions options = {});
  SrcService(const SrcService&) = delete;
  SrcService& operator=(const SrcService&) = delete;
  ~SrcService();

  [[nodiscard]] const ServiceOptions& options() const { return options_; }

  /// Opens a session.  Returns an invalid id when max_sessions are live;
  /// throws std::invalid_argument for rates plan_ratio rejects.
  SessionId open(const SessionConfig& config);
  /// Marks the session closed.  Stats stay readable until the next
  /// step(), which reclaims the slot (no lane can be holding it then).
  bool close(SessionId id);

  /// Client side.  push returns how many of @p n samples were accepted;
  /// pull returns how many converted samples were written to @p out.
  std::size_t push(SessionId id, const dsp::StereoSample* samples, std::size_t n);
  std::size_t pull(SessionId id, dsp::StereoSample* out, std::size_t cap);
  [[nodiscard]] std::size_t in_free(SessionId id) const;
  [[nodiscard]] std::size_t out_available(SessionId id) const;
  /// Null for a stale or never-issued id.
  [[nodiscard]] const SessionStats* stats(SessionId id) const;

  /// One scheduler round; returns the number of sessions dispatched.
  std::size_t step();
  /// Steps until no session is ready (or @p max_steps); returns steps taken.
  std::size_t run_until_idle(std::size_t max_steps = ~std::size_t{0});

  [[nodiscard]] std::size_t session_count() const { return open_count_; }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  [[nodiscard]] std::uint64_t dispatches() const { return dispatch_total_; }
  [[nodiscard]] std::uint32_t starve_streak_max() const { return starve_streak_max_; }
  [[nodiscard]] const obs::Histogram& job_ns_histogram() const { return job_ns_; }

  /// Records the service's lifetime aggregates into @p session: registry
  /// counters under "serve.*", one "serve.ratio" ledger entry per
  /// distinct rate pair (sorted, deterministic) and one "serve.run"
  /// summary entry whose input hash fingerprints the session-count ×
  /// ratio population.  Everything except "*_ns" metrics is bit-identical
  /// across thread counts.
  void record_into(obs::Session& session, std::string_view run_label = "run") const;

 private:
  enum class SlotState : std::uint8_t { kFree, kOpen, kClosing };

  struct SessionState;

  struct Slot {
    std::uint32_t generation = 1;
    SlotState state = SlotState::kFree;
    std::unique_ptr<SessionState> session;
  };

  /// Aggregate of closed sessions sharing one rate pair; live sessions
  /// are folded in at record_into time.
  struct RatioAgg {
    std::uint64_t sessions = 0;
    std::uint64_t accepted = 0;
    std::uint64_t push_rejected = 0;
    std::uint64_t converted_in = 0;
    std::uint64_t produced = 0;
    std::uint64_t pulled = 0;
  };

  [[nodiscard]] SessionState* resolve(SessionId id, bool allow_closing = false) const;
  void service_one(SessionState& s) const;
  void reclaim();

  ServiceOptions options_;
  std::unique_ptr<hdlsim::BatchRunner> runner_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t rr_cursor_ = 0;
  std::size_t open_count_ = 0;

  std::uint64_t opened_total_ = 0;
  std::uint64_t closed_total_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t dispatch_total_ = 0;
  std::uint32_t starve_streak_max_ = 0;
  obs::Histogram job_ns_;  ///< per-dispatch wall time (control-thread merged)

  std::map<std::uint64_t, RatioAgg> closed_ratio_aggs_;  ///< key: fs_in<<32 | fs_out

  // Step scratch (control thread only).
  std::vector<std::size_t> dispatch_list_;
  std::vector<std::size_t> starved_list_;
};

}  // namespace scflow::serve
