// Streaming SRC service (ROADMAP item 3): session-oriented sample-rate
// conversion for thousands of concurrent streams.  A client opens a
// session with an arbitrary rational input/output rate pair (any ratio
// dsp::plan_ratio accepts — the four paper pairs run bit-exact with the
// golden model), pushes chunked stereo audio and pulls converted audio.
//
// Flow control is watermark-based and explicit: push() returns how many
// samples the bounded input ring accepted, pull() returns how many were
// available — neither blocks and nothing is dropped silently.  A session
// whose output ring is full simply stops being scheduled until the
// client drains it (the unconsumed inputs stay queued).
//
// Scheduling: step() scans the slot table in round-robin rotation,
// collects sessions that are ready (input queued AND enough output
// space for one full input's worth of results) and fans the first
// max_sessions_per_step of them over hdlsim::BatchRunner lanes, each
// dispatch bounded by work_quantum input samples.  The rotation cursor
// restarts after the last dispatched slot, so sessions passed over in
// one step lead the next — their starvation streak is bounded by
// ceil(ready / max_sessions_per_step) steps (asserted in tests).
//
// Determinism: a session is touched by at most one lane per step and the
// runner joins between steps, so each session's output stream — and its
// running FNV-1a output hash — depends only on its own input sequence,
// never on the lane count or claiming order (bit-identical for
// threads in {1,2,4,8}; see tests/test_serve.cpp).
//
// Resilience layer (tests/test_resilience.cpp):
//  * Leases — sessions carry step-based idle/lifetime leases.  A lapsed
//    lease moves the session to kEvicting: pushes are refused (counted),
//    but it keeps being scheduled until its queued inputs drain, then
//    lands in kEvicted — no accepted sample is silently dropped.  The
//    evicted slot's stats stay readable; reclaiming it bumps the
//    generation, invalidating stale handles.
//  * Admission control — try_open() returns a reasoned verdict
//    (kOverloaded / kRateUnsupported / kAllocFailed) instead of a bare
//    invalid id; with a shed watermark configured, a full table sheds
//    the lowest-progress session (deterministic victim: min converted
//    inputs, lowest slot breaks ties) to admit the newcomer, counting
//    every dropped sample.
//  * Chaos — an attached serve::ChaosPlan injects deterministic lane
//    stalls (bounded by the runner's per-job budget) and allocation
//    failures; drivers report their own plan-driven faults through
//    note_chaos().  All injections are pure functions of (seed, step /
//    open-index, slot), so the fault schedule — and every surviving
//    session's output hash — is bit-identical across thread counts.
//  * Snapshots — save_state()/load_state() serialize the complete
//    deterministic service state; serve/resilience.hpp wraps them in a
//    checksummed envelope for crash-consistent checkpoint/restore.
//
// Threading contract: open/close/step/record_into belong to one control
// thread; push/pull/stats may run concurrently from one client thread
// per session (SampleRing is SPSC).  Client threads stamp lease
// activity through a relaxed atomic the control thread samples at
// step() — no locks on the data path.  Slot lifecycle transitions
// (close, eviction, shed, reclaim) follow the same rule close() always
// had: the driver must not let a session's client calls race the
// control-thread call that retires that same session.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/state_io.hpp"
#include "dsp/rational_src.hpp"
#include "obs/histogram.hpp"
#include "obs/ledger.hpp"
#include "serve/chaos.hpp"
#include "serve/resilience.hpp"
#include "serve/sample_ring.hpp"

namespace scflow::obs {
struct Session;
}
namespace scflow::hdlsim {
class BatchRunner;
}

namespace scflow::serve {

/// Slot-plus-generation handle: reusing a slot after close() bumps the
/// generation, so a stale id held by a client resolves to nothing
/// instead of to the next tenant's stream.
struct SessionId {
  static constexpr std::uint32_t kInvalidSlot = 0xffff'ffffu;
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t generation = 0;
  [[nodiscard]] bool valid() const { return slot != kInvalidSlot; }
  friend bool operator==(const SessionId&, const SessionId&) = default;
};

/// try_open()'s verdict: the id is valid iff status == kAdmitted.
struct AdmitResult {
  SessionId id;
  AdmitStatus status = AdmitStatus::kAdmitted;
};

struct SessionConfig {
  std::uint32_t fs_in_hz = 48'000;
  std::uint32_t fs_out_hz = 48'000;
  dsp::RationalSrc::TimeBase time_base = dsp::RationalSrc::TimeBase::kContinuousPs;
};

/// Per-session accounting.  The conservation laws the backpressure tests
/// pin: accepted == converted_in + (input ring occupancy), and
/// produced == pulled + (output ring occupancy) — nothing ever vanishes.
struct SessionStats {
  std::uint64_t accepted = 0;       ///< inputs the ring took from push()
  std::uint64_t push_rejected = 0;  ///< inputs push() had to turn away
  std::uint64_t converted_in = 0;   ///< inputs consumed by the converter
  std::uint64_t produced = 0;       ///< outputs written to the output ring
  std::uint64_t pulled = 0;         ///< outputs handed back through pull()
  std::uint64_t dispatches = 0;     ///< scheduler grants
  std::uint32_t starve_streak = 0;  ///< consecutive ready-but-skipped steps
  std::uint32_t starve_streak_max = 0;
  std::uint64_t output_hash = 0;    ///< FNV-1a over the produced stream
};

/// External view of a session's lifecycle (SessionStats stays pure
/// sample accounting).
enum class SessionPhase : std::uint8_t {
  kUnknown = 0,  ///< stale or never-issued id
  kOpen,
  kClosing,
  kEvicting,  ///< lease lapsed; draining queued inputs, pushes refused
  kEvicted,   ///< drained; terminal, stats/pull alive until reclaim
};

struct ServiceOptions {
  /// BatchRunner lane semantics: 1 = convert inline on the control
  /// thread, N > 1 = N-1 workers plus the control thread, 0 = one lane
  /// per hardware thread.
  unsigned threads = 1;
  std::size_t max_sessions = 4096;
  std::size_t input_ring = 1024;   ///< per-session input ring capacity
  std::size_t output_ring = 1024;  ///< per-session output ring capacity
  /// Work quantum: at most this many input samples are converted per
  /// session per dispatch, so one deep backlog cannot monopolise a lane.
  std::size_t work_quantum = 256;
  /// 0 = dispatch every ready session each step.
  std::size_t max_sessions_per_step = 0;
  /// Lease timeouts in scheduler steps (0 disables).  Idle = steps since
  /// the session last saw client activity or converted work; lifetime =
  /// steps since open.  Step-based, not wall-clock, so lease decisions
  /// are bit-identical across thread counts.
  std::uint64_t idle_timeout_steps = 0;
  std::uint64_t max_lifetime_steps = 0;
  /// Load shedding: when > 0 and the table is full, try_open() evicts
  /// the lowest-progress session (dropping its queued samples, counted)
  /// once live sessions reach this watermark.  0 = never shed.
  std::size_t shed_high_watermark = 0;
};

class SrcService {
 public:
  explicit SrcService(ServiceOptions options = {});
  SrcService(const SrcService&) = delete;
  SrcService& operator=(const SrcService&) = delete;
  ~SrcService();

  [[nodiscard]] const ServiceOptions& options() const { return options_; }

  /// Opens a session with a reasoned verdict; never throws for a
  /// well-formed config.  Rejections are counted in resilience_stats().
  AdmitResult try_open(const SessionConfig& config);
  /// Legacy surface: returns an invalid id when the table is full,
  /// throws std::invalid_argument for rates plan_ratio rejects.
  SessionId open(const SessionConfig& config);
  /// Marks the session closed.  Stats stay readable until the next
  /// step(), which reclaims the slot (no lane can be holding it then).
  bool close(SessionId id);

  /// Client side.  push returns how many of @p n samples were accepted;
  /// pull returns how many converted samples were written to @p out.
  /// A malformed push (null @p samples with n > 0) is refused and
  /// counted, never dereferenced.
  std::size_t push(SessionId id, const dsp::StereoSample* samples, std::size_t n);
  std::size_t pull(SessionId id, dsp::StereoSample* out, std::size_t cap);
  [[nodiscard]] std::size_t in_free(SessionId id) const;
  [[nodiscard]] std::size_t out_available(SessionId id) const;
  /// Null for a stale or never-issued id.
  [[nodiscard]] const SessionStats* stats(SessionId id) const;
  [[nodiscard]] SessionPhase phase(SessionId id) const;

  /// One scheduler round; returns the number of sessions dispatched.
  std::size_t step();
  /// Steps until no session is ready (or @p max_steps); returns steps taken.
  std::size_t run_until_idle(std::size_t max_steps = ~std::size_t{0});
  /// Reclaims every kEvicted slot now (stats become unreadable, stale
  /// handles invalid); returns how many were swept.  Unpulled outputs
  /// are counted into evict_unpulled — never dropped silently.
  std::size_t sweep_evicted();

  /// Attaches (or detaches, nullptr) a chaos plan.  The plan must
  /// outlive the attachment.  While attached, the runner's per-job wall
  /// budget is the plan's stall budget, so injected stalls expire
  /// instead of hanging.
  void set_chaos(const ChaosPlan* plan);
  [[nodiscard]] const ChaosPlan* chaos() const { return chaos_; }
  /// Driver-side fault report: a workload that injected a plan-driven
  /// fault itself (disconnect, oversized push, ring storm) records it
  /// here so the ledger carries the complete census.
  void note_chaos(ChaosClass c);

  [[nodiscard]] std::size_t session_count() const { return open_count_; }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  [[nodiscard]] std::uint64_t dispatches() const { return dispatch_total_; }
  [[nodiscard]] std::uint32_t starve_streak_max() const { return starve_streak_max_; }
  [[nodiscard]] const obs::Histogram& job_ns_histogram() const { return job_ns_; }
  [[nodiscard]] ResilienceStats resilience_stats() const;

  /// Snapshot support — prefer serve/resilience.hpp's checksummed
  /// snapshot_service()/restore_service() envelope.  save_state writes
  /// the complete deterministic state; load_state (fresh service only)
  /// returns false with a diagnostic on any shape mismatch.
  void save_state(core::StateWriter& w) const;
  [[nodiscard]] bool load_state(core::StateReader& r, std::string* error = nullptr);

  /// Records the service's lifetime aggregates into @p session: registry
  /// counters under "serve.*", one "serve.ratio" ledger entry per
  /// distinct rate pair (sorted, deterministic), one "serve.resilience"
  /// entry carrying the eviction/shed/admission/chaos/snapshot census,
  /// and one "serve.run" summary entry whose input hash fingerprints the
  /// session-count × ratio population.  Everything except "*_ns"
  /// metrics is bit-identical across thread counts.
  void record_into(obs::Session& session, std::string_view run_label = "run") const;

 private:
  // The envelope layer records saves/restores in the census.
  friend std::string snapshot_service(SrcService& service);
  friend bool restore_service(std::string_view image, SrcService& into,
                              std::string* error);

  enum class SlotState : std::uint8_t {
    kFree = 0,
    kOpen,
    kClosing,
    kEvicting,
    kEvicted,
  };

  struct SessionState;

  struct Slot {
    std::uint32_t generation = 1;
    SlotState state = SlotState::kFree;
    std::unique_ptr<SessionState> session;
  };

  /// Aggregate of closed sessions sharing one rate pair; live sessions
  /// are folded in at record_into time.
  struct RatioAgg {
    std::uint64_t sessions = 0;
    std::uint64_t accepted = 0;
    std::uint64_t push_rejected = 0;
    std::uint64_t converted_in = 0;
    std::uint64_t produced = 0;
    std::uint64_t pulled = 0;
  };

  [[nodiscard]] SessionState* resolve(SessionId id, bool allow_closing = false) const;
  void service_one(SessionState& s) const;
  void reclaim();
  void retire_slot(std::uint32_t idx);  ///< fold stats, free, bump generation
  void apply_leases();
  [[nodiscard]] bool shed_one();  ///< evict lowest-progress; true if freed a slot

  ServiceOptions options_;
  std::unique_ptr<hdlsim::BatchRunner> runner_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t rr_cursor_ = 0;
  std::size_t open_count_ = 0;

  std::uint64_t opened_total_ = 0;
  std::uint64_t closed_total_ = 0;
  std::uint64_t admit_attempts_ = 0;  ///< try_open calls (chaos alloc-fail key)
  std::uint64_t steps_ = 0;
  std::uint64_t dispatch_total_ = 0;
  std::uint32_t starve_streak_max_ = 0;
  obs::Histogram job_ns_;  ///< per-dispatch wall time (control-thread merged)

  std::map<std::uint64_t, RatioAgg> closed_ratio_aggs_;  ///< key: fs_in<<32 | fs_out

  const ChaosPlan* chaos_ = nullptr;
  ResilienceStats res_;
  /// Lane-side stall census: lanes increment concurrently during a step,
  /// the control thread folds it into res_.chaos_stalls at the join.
  /// Addition commutes, so the total is scheduling-invariant.
  mutable std::atomic<std::uint64_t> lane_stalls_{0};
  /// Client-side refusal census (pushes to evicting/evicted sessions);
  /// atomic because clients hit it from their own threads.
  std::atomic<std::uint64_t> evict_push_rejected_{0};

  // Step scratch (control thread only).
  std::vector<std::size_t> dispatch_list_;
  std::vector<std::size_t> starved_list_;
};

}  // namespace scflow::serve
