#include "serve/chaos.hpp"

namespace scflow::serve {

const char* chaos_class_name(ChaosClass c) {
  switch (c) {
    case ChaosClass::kLaneStall:
      return "lane_stall";
    case ChaosClass::kDisconnect:
      return "disconnect";
    case ChaosClass::kOversizedPush:
      return "oversized_push";
    case ChaosClass::kRingStorm:
      return "ring_storm";
    case ChaosClass::kAllocFail:
      return "alloc_fail";
  }
  return "unknown";
}

std::uint64_t ChaosPlan::mix(std::uint64_t seed, std::uint8_t salt, std::uint64_t a,
                             std::uint64_t b) {
  // splitmix64 finalizer over the combined coordinates — full avalanche,
  // so adjacent (step, slot) pairs decorrelate and the per-class salt
  // keeps the fault classes' schedules independent of each other.
  std::uint64_t x = seed;
  x ^= 0x9e3779b97f4a7c15ULL * (salt + 1);
  x += a * 0xbf58476d1ce4e5b9ULL;
  x += b * 0x94d049bb133111ebULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace scflow::serve
