// Deterministic seeded chaos injection for the streaming SRC service.
//
// A ChaosPlan is a PURE FUNCTION of its seed: every query hashes
// (seed, fault-class salt, coordinates) and compares against a
// per-class firing rate, so the same seed produces the same fault
// schedule on every run, every thread count, and every host.  That
// purity is what makes chaos runs gateable: the soak asserts that
// surviving sessions' output hashes are bit-identical across lane
// counts {1,2,4,8} WITH the faults firing, which only means something
// if the faults themselves are scheduling-invariant.
//
// Five fault classes, mirroring what a hostile/overloaded deployment
// does to the service (ChaosClass):
//  * kLaneStall      — a dispatched conversion job burns its whole
//                      BatchRunner::JobContext wall budget before doing
//                      its work (deadline abuse; semantics preserved,
//                      time wasted).  Injected by SrcService itself.
//  * kDisconnect     — a client vanishes mid-stream (driver closes the
//                      session without draining it).
//  * kOversizedPush  — a client offers far more than the input ring can
//                      hold, preceded by a malformed (null-buffer) push.
//  * kRingStorm      — a client stops pulling, wedging the output ring
//                      full until the storm passes (backpressure path).
//  * kAllocFail      — session-state allocation "fails" at open() and
//                      the admission path must reject, not crash.
//                      Injected by SrcService itself.
//
// The service-side injections key on deterministic coordinates (step
// count, slot, open index); the driver-side ones key on the driver's own
// round counter.  Both land in ResilienceStats via SrcService counters
// or note_chaos(), so one ledger entry carries the whole fault census.
#pragma once

#include <cstdint>

namespace scflow::serve {

enum class ChaosClass : std::uint8_t {
  kLaneStall = 0,
  kDisconnect,
  kOversizedPush,
  kRingStorm,
  kAllocFail,
};
inline constexpr int kChaosClassCount = 5;

[[nodiscard]] const char* chaos_class_name(ChaosClass c);

/// Firing rates are probabilities in 1/65536 units (0 disables a class).
/// The defaults are tuned for soak workloads of a few dozen sessions and
/// a few dozen scheduler rounds: every class fires several times per
/// seed without drowning the workload.
struct ChaosOptions {
  std::uint64_t seed = 1;
  std::uint32_t stall_per_dispatch = 1u << 9;    ///< ~0.8% of dispatches
  std::uint32_t disconnect_per_round = 1u << 5;  ///< ~0.05% per (round, session)
  std::uint32_t oversized_per_round = 1u << 8;   ///< ~0.4% per (round, session)
  std::uint32_t storm_per_round = 1u << 7;       ///< ~0.2% per (round, session)
  std::uint32_t alloc_fail_per_open = 1u << 12;  ///< ~6% of opens
  std::uint32_t storm_len_rounds = 12;           ///< how long a storm blocks pulls
  /// Wall budget a stalled job burns (and the BatchRunner per-job budget
  /// SrcService installs while a plan is attached) — keeps every injected
  /// stall bounded: nothing hangs past its deadline.
  std::uint64_t stall_budget_ns = 200'000;
};

class ChaosPlan {
 public:
  explicit ChaosPlan(const ChaosOptions& options) : opt_(options) {}

  [[nodiscard]] const ChaosOptions& options() const { return opt_; }
  [[nodiscard]] std::uint64_t seed() const { return opt_.seed; }

  // Pure decision queries — no internal state, safe from any thread.
  [[nodiscard]] bool stall_lane(std::uint64_t step, std::uint32_t slot) const {
    return fire(opt_.stall_per_dispatch, ChaosClass::kLaneStall, step, slot);
  }
  [[nodiscard]] bool disconnect(std::uint64_t round, std::uint32_t session) const {
    return fire(opt_.disconnect_per_round, ChaosClass::kDisconnect, round, session);
  }
  [[nodiscard]] bool oversized_push(std::uint64_t round, std::uint32_t session) const {
    return fire(opt_.oversized_per_round, ChaosClass::kOversizedPush, round, session);
  }
  [[nodiscard]] bool ring_storm_start(std::uint64_t round, std::uint32_t session) const {
    return fire(opt_.storm_per_round, ChaosClass::kRingStorm, round, session);
  }
  [[nodiscard]] bool fail_allocation(std::uint64_t open_index) const {
    return fire(opt_.alloc_fail_per_open, ChaosClass::kAllocFail, open_index, 0);
  }

  /// The decision hash, exposed for the purity unit test.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t seed, std::uint8_t salt,
                                         std::uint64_t a, std::uint64_t b);

 private:
  [[nodiscard]] bool fire(std::uint32_t rate, ChaosClass salt, std::uint64_t a,
                          std::uint64_t b) const {
    if (rate == 0) return false;
    return (mix(opt_.seed, static_cast<std::uint8_t>(salt), a, b) & 0xffff) < rate;
  }

  ChaosOptions opt_;
};

}  // namespace scflow::serve
