// Resilience surface of the streaming SRC service: admission verdicts,
// the fault/eviction/shedding census, and crash-consistent snapshots.
//
// Snapshot format ("SCSNAP01", version 1): a small envelope —
//
//   magic[8] | version u32 | payload_size u64 | fnv1a(payload) u64 | payload
//
// — around a StateWriter payload holding the COMPLETE deterministic
// service state: semantic options, lifetime counters, the resilience
// census, closed-ratio aggregates, the free-slot stack (future slot
// assignment must replay identically), and per-slot session state down
// to each RationalSrc's filter histories and both rings' queued
// contents.  Wall-clock data (the job_ns histogram) is deliberately
// excluded, so the snapshot of a run is byte-identical across thread
// counts — pinned by tests/test_resilience.cpp.
//
// restore_service() verifies magic, version, size, and checksum before
// touching the payload, and the payload decode runs on a sticky-failure
// bounds-checked reader — a truncated or bit-flipped image produces a
// diagnostic, never a crash and never a half-restored service.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace scflow::serve {

class SrcService;

/// Why try_open() admitted or refused a session.
enum class AdmitStatus : std::uint8_t {
  kAdmitted = 0,
  kOverloaded,        ///< session table full and shedding off (or shed found no victim)
  kRateUnsupported,   ///< rate outside [dsp::kMinRateHz, dsp::kMaxRateHz]
  kAllocFailed,       ///< session-state allocation failed (or chaos said it did)
};

[[nodiscard]] const char* admit_status_name(AdmitStatus s);

// (AdmitResult — the {SessionId, AdmitStatus} pair try_open() returns —
// lives in src_service.hpp next to SessionId.)

/// Lifetime census of everything the resilience layer did: evictions,
/// load shedding, admission rejects, injected faults, snapshots.  Plain
/// counters (a copy is returned; reading races nothing).
struct ResilienceStats {
  // Leases & eviction.
  std::uint64_t evict_idle = 0;       ///< sessions evicted for idle timeout
  std::uint64_t evict_lifetime = 0;   ///< sessions evicted for max lifetime
  std::uint64_t evict_drained = 0;    ///< kEvicting -> kEvicted transitions
  std::uint64_t evict_push_rejected = 0;  ///< pushes refused while evicting/evicted
  std::uint64_t evict_unpulled = 0;   ///< outputs still queued when evicted slots reclaimed
  // Load shedding.
  std::uint64_t shed_sessions = 0;
  std::uint64_t shed_dropped_inputs = 0;   ///< accepted-but-unconverted inputs dropped by shed
  std::uint64_t shed_dropped_outputs = 0;  ///< produced-but-unpulled outputs dropped by shed
  // Admission control.
  std::uint64_t admit_overloaded = 0;
  std::uint64_t admit_rate_unsupported = 0;
  // Chaos census (service-injected + driver-reported via note_chaos()).
  std::uint64_t chaos_stalls = 0;
  std::uint64_t chaos_disconnects = 0;
  std::uint64_t chaos_oversized_pushes = 0;
  std::uint64_t chaos_ring_storms = 0;
  std::uint64_t chaos_alloc_failures = 0;
  // Snapshots.
  std::uint64_t snapshot_saves = 0;
  std::uint64_t snapshot_restores = 0;
  std::uint64_t snapshot_bytes_last = 0;
};

inline constexpr std::string_view kSnapshotMagic = "SCSNAP01";
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Serializes the full service state (see header comment).  Non-const:
/// bumps the service's snapshot_saves / snapshot_bytes_last census.
[[nodiscard]] std::string snapshot_service(SrcService& service);

/// Restores @p image into @p into, which must be a freshly constructed
/// service that has never opened a session (its thread count is kept;
/// every semantic option is overwritten from the image).  Returns false
/// with a diagnostic in *error on any corruption — bad magic, version,
/// size, checksum, or payload shape — leaving @p into unusable but the
/// process unharmed.
[[nodiscard]] bool restore_service(std::string_view image, SrcService& into,
                                   std::string* error = nullptr);

}  // namespace scflow::serve
