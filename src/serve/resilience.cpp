#include "serve/resilience.hpp"

#include "core/state_io.hpp"
#include "obs/ledger.hpp"
#include "serve/src_service.hpp"

namespace scflow::serve {

const char* admit_status_name(AdmitStatus s) {
  switch (s) {
    case AdmitStatus::kAdmitted:
      return "admitted";
    case AdmitStatus::kOverloaded:
      return "overloaded";
    case AdmitStatus::kRateUnsupported:
      return "rate_unsupported";
    case AdmitStatus::kAllocFailed:
      return "alloc_failed";
  }
  return "unknown";
}

namespace {

std::uint64_t payload_checksum(std::string_view payload) {
  obs::Fnv1a h;
  h.update_bytes(payload.data(), payload.size());
  return h.digest();
}

}  // namespace

std::string snapshot_service(SrcService& service) {
  // Record the save first so the image's own census includes it — a
  // restored service reports exactly as many saves as actually happened.
  ++service.res_.snapshot_saves;

  core::StateWriter payload;
  service.save_state(payload);

  core::StateWriter envelope;
  envelope.bytes(kSnapshotMagic.data(), kSnapshotMagic.size());
  envelope.u32(kSnapshotVersion);
  envelope.u64(payload.size());
  envelope.u64(payload_checksum(payload.data()));
  envelope.bytes(payload.data().data(), payload.size());
  // Full image size including the envelope — the number an operator
  // budgets for.  Set after save_state so it never serializes itself.
  service.res_.snapshot_bytes_last = envelope.size();
  return envelope.data();
}

bool restore_service(std::string_view image, SrcService& into, std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };

  core::StateReader header(image);
  char magic[8] = {};
  if (!header.read_bytes(magic, sizeof magic)) {
    return fail("truncated snapshot: shorter than the envelope header");
  }
  if (std::string_view(magic, sizeof magic) != kSnapshotMagic) {
    return fail("bad snapshot magic (not a service snapshot)");
  }
  const std::uint32_t version = header.u32();
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  if (!header.ok()) {
    return fail("truncated snapshot: envelope header cut short");
  }
  if (version != kSnapshotVersion) {
    return fail("unsupported snapshot version");
  }
  if (header.remaining() < payload_size) {
    return fail("truncated snapshot: payload shorter than the header claims");
  }
  if (header.remaining() > payload_size) {
    return fail("corrupt snapshot: trailing bytes after the payload");
  }
  const std::string_view payload =
      image.substr(image.size() - static_cast<std::size_t>(payload_size));
  if (payload_checksum(payload) != checksum) {
    return fail("snapshot checksum mismatch (corrupt payload)");
  }

  core::StateReader reader(payload);
  std::string inner;
  if (!into.load_state(reader, &inner)) {
    if (error != nullptr) *error = "snapshot payload rejected: " + inner;
    return false;
  }
  ++into.res_.snapshot_restores;
  return true;
}

}  // namespace scflow::serve
