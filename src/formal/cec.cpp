#include "formal/cec.hpp"

#include <bit>
#include <chrono>
#include <map>
#include <optional>
#include <unordered_map>

#include "core/wordpack.hpp"
#include "formal/aig.hpp"
#include "formal/bitblast.hpp"
#include "formal/sat.hpp"
#include "hdlsim/compiled_sim.hpp"
#include "hdlsim/gate_sim.hpp"
#include "kernel/vcd.hpp"
#include "obs/ledger.hpp"
#include "obs/registry.hpp"

namespace scflow::formal {

namespace {

struct CompareBit {
  const std::string* name;
  int bit;
  AigLit a, b;
  bool proved = false;
};

struct Engine {
  const CecOptions& opt;
  Aig aig;
  VarMap vars;
  sat::Solver solver;
  std::vector<sat::Var> node_var;
  std::vector<std::uint32_t> uf_parent;
  std::vector<std::uint8_t> uf_parity;
  CecStats stats;

  explicit Engine(const CecOptions& o) : opt(o), vars(aig) {}

  void sync_nodes() {
    node_var.resize(aig.node_count(), -1);
    while (uf_parent.size() < aig.node_count()) {
      uf_parent.push_back(static_cast<std::uint32_t>(uf_parent.size()));
      uf_parity.push_back(0);
    }
  }

  std::pair<std::uint32_t, bool> uf_find(std::uint32_t n) const {
    bool par = false;
    while (uf_parent[n] != n) {
      par ^= uf_parity[n] != 0;
      n = uf_parent[n];
    }
    return {n, par};
  }

  AigLit canon(AigLit l) const {
    const auto [r, par] = uf_find(aig_node(l));
    return (r << 1) | ((aig_phase(l) ^ par) ? 1u : 0u);
  }

  void uf_union(std::uint32_t a, std::uint32_t b, bool parity) {
    const auto [ra, pa] = uf_find(a);
    const auto [rb, pb] = uf_find(b);
    if (ra == rb) return;
    const bool rel = parity ^ pa ^ pb;
    if (ra < rb) {  // smaller id wins so the constant node stays a root
      uf_parent[rb] = ra;
      uf_parity[rb] = rel ? 1 : 0;
    } else {
      uf_parent[ra] = rb;
      uf_parity[ra] = rel ? 1 : 0;
    }
  }

  sat::Var var_of(std::uint32_t node) {
    if (node_var[node] >= 0) return node_var[node];
    std::vector<std::uint32_t> stack{node};
    while (!stack.empty()) {
      const std::uint32_t n = stack.back();
      if (node_var[n] >= 0) {
        stack.pop_back();
        continue;
      }
      if (n == 0) {  // constant-false node
        const sat::Var v = solver.new_var();
        solver.add_clause({sat::mk_lit(v, true)});
        node_var[n] = v;
        stack.pop_back();
        continue;
      }
      if (aig.is_input(n)) {
        node_var[n] = solver.new_var();
        stack.pop_back();
        continue;
      }
      const std::uint32_t f0 = aig_node(aig.fanin0(n));
      const std::uint32_t f1 = aig_node(aig.fanin1(n));
      if (node_var[f0] < 0) {
        stack.push_back(f0);
        continue;
      }
      if (node_var[f1] < 0) {
        stack.push_back(f1);
        continue;
      }
      // Tseitin for v <-> l0 & l1.
      const sat::Var v = solver.new_var();
      const sat::Lit lv = sat::mk_lit(v);
      const sat::Lit l0 = sat_lit_raw(aig.fanin0(n));
      const sat::Lit l1 = sat_lit_raw(aig.fanin1(n));
      solver.add_clause({sat::lit_neg(lv), l0});
      solver.add_clause({sat::lit_neg(lv), l1});
      solver.add_clause({lv, sat::lit_neg(l0), sat::lit_neg(l1)});
      node_var[n] = v;
      stack.pop_back();
    }
    return node_var[node];
  }

  sat::Lit sat_lit_raw(AigLit l) const {
    return sat::mk_lit(node_var[aig_node(l)], aig_phase(l));
  }
  sat::Lit sat_lit(AigLit l) {
    (void)var_of(aig_node(l));
    return sat_lit_raw(l);
  }

  /// Tries to refute la == lb.  kUnsat proves equality (and records it as
  /// clauses + a union-find merge); kSat leaves a distinguishing model.
  sat::Result prove_equal(AigLit la, AigLit lb, std::uint64_t budget) {
    const sat::Lit sa = sat_lit(la);
    const sat::Lit sb = sat_lit(lb);
    const sat::Var s = solver.new_var();
    const sat::Lit ls = sat::mk_lit(s);
    solver.add_clause({sat::lit_neg(ls), sa, sb});
    solver.add_clause({sat::lit_neg(ls), sat::lit_neg(sa), sat::lit_neg(sb)});
    ++stats.sat_calls;
    const std::uint64_t conflicts_before = solver.stats().conflicts;
    const sat::Result r = solver.solve({ls}, budget);
    stats.sat_call_conflicts.record(solver.stats().conflicts - conflicts_before);
    solver.add_clause({sat::lit_neg(ls)});  // retire the activation literal
    if (r == sat::Result::kUnsat) {
      solver.add_clause({sat::lit_neg(sa), sb});
      solver.add_clause({sa, sat::lit_neg(sb)});
      uf_union(aig_node(la), aig_node(lb), aig_phase(la) ^ aig_phase(lb));
    }
    return r;
  }
};

std::uint64_t lit_word(const Aig&, const std::vector<std::uint64_t>& node_words,
                       AigLit l) {
  return node_words[aig_node(l)] ^ (aig_phase(l) ? ~0ull : 0ull);
}

/// Extracts the concrete assignment at pattern @p pat of a simulated AIG
/// into a counterexample (inputs + divergent-point values).
CecCounterexample extract_cex(const Aig& aig, const VarMap& vars,
                              const std::vector<std::uint64_t>& node_words, int pat,
                              const std::string& name, int bit,
                              const std::vector<AigLit>& bits_a,
                              const std::vector<AigLit>& bits_b) {
  CecCounterexample cex;
  auto bit_of = [&](AigLit l) -> std::uint64_t {
    return (lit_word(aig, node_words, l) >> pat) & 1u;
  };
  for (const auto& [vname, lits] : vars.entries()) {
    CecInputAssignment in;
    in.name = vname;
    in.width = static_cast<int>(lits.size());
    for (std::size_t i = 0; i < lits.size() && i < 64; ++i)
      in.value |= bit_of(lits[i]) << i;
    cex.inputs.push_back(std::move(in));
  }
  cex.divergent_output = name;
  cex.divergent_bit = bit;
  for (std::size_t i = 0; i < bits_a.size() && i < 64; ++i)
    cex.value_a |= bit_of(bits_a[i]) << i;
  for (std::size_t i = 0; i < bits_b.size() && i < 64; ++i)
    cex.value_b |= bit_of(bits_b[i]) << i;
  return cex;
}

/// Replays the counterexample through GateSim on comb_view(n) and returns
/// the observed value of the divergent port (nullopt on X or port issues).
std::optional<std::uint64_t> replay_side(const nl::Netlist& n,
                                         const CecCounterexample& cex) {
  try {
    const nl::Netlist view = comb_view(n);
    hdlsim::GateSim sim(view);
    std::unordered_map<std::string, std::uint64_t> assign;
    for (const auto& in : cex.inputs) assign[in.name] = in.value;
    for (const nl::PortBits& p : view.inputs()) {
      const auto it = assign.find(p.name);
      sim.set_input(p.name, it == assign.end() ? 0 : it->second);
    }
    sim.settle();
    return sim.output(cex.divergent_output);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void replay_cex(CecCounterexample& cex, const nl::Netlist* a_nl,
                const nl::Netlist& b) {
  cex.replayed = true;
  const std::optional<std::uint64_t> vb = replay_side(b, cex);
  if (a_nl != nullptr) {
    const std::optional<std::uint64_t> va = replay_side(*a_nl, cex);
    cex.replay_confirmed = va.has_value() && vb.has_value() &&
                           *va == cex.value_a && *vb == cex.value_b &&
                           (((*va ^ *vb) >> cex.divergent_bit) & 1u) != 0;
  } else {
    // RTL side A: the AIG-predicted value stands in for a replay.
    cex.replay_confirmed = vb.has_value() && *vb == cex.value_b &&
                           (((cex.value_a ^ *vb) >> cex.divergent_bit) & 1u) != 0;
  }
}

/// Hash of the options that change what the engine computes (thread/wall
/// knobs would go here too if CEC had any — it is single-threaded).
std::uint64_t options_fingerprint(const CecOptions& opt) {
  obs::Fnv1a h;
  h.update_str("cec-options-v1");
  for (const auto& s : opt.tie_zero_inputs) h.update_str(s);
  for (const auto& s : opt.ignore_outputs) h.update_str(s);
  h.update_u64(opt.fraig_sweep ? 1 : 0);
  h.update_u64(static_cast<std::uint64_t>(opt.sim_rounds));
  h.update_u64(opt.compiled_presim ? 1 : 0);
  h.update_u64(opt.sweep_conflict_limit);
  h.update_u64(opt.sweep_max_checks);
  h.update_u64(opt.final_conflict_limit);
  h.update_u64(opt.seed);
  h.update_u64(opt.replay ? 1 : 0);
  return h.digest();
}

void record_metrics(obs::Registry* reg, const CecOptions& opt, const CecStats& st,
                    const CecResult& res, std::uint64_t input_hash,
                    std::uint64_t duration_ns) {
  if (reg == nullptr) return;
  const std::string& p = opt.metric_prefix;
  reg->set_counter(p + ".aig_nodes", st.aig_nodes);
  reg->set_counter(p + ".presim_rounds", st.presim_rounds);
  reg->set_counter(p + ".presim_ops", st.presim_ops);
  reg->set_counter(p + ".compare_points", st.compare_points);
  reg->set_counter(p + ".compare_bits", st.compare_bits);
  reg->set_counter(p + ".bits_structural", st.bits_structural);
  reg->set_counter(p + ".bits_sat_proved", st.bits_sat_proved);
  reg->set_counter(p + ".sweep_classes", st.sweep_classes);
  reg->set_counter(p + ".sweep_merges", st.sweep_merges);
  reg->set_counter(p + ".sat_calls", st.sat_calls);
  reg->set_counter(p + ".sat_conflicts", st.sat_conflicts);
  reg->set_counter(p + ".sat_decisions", st.sat_decisions);
  reg->set_counter(p + ".sat_propagations", st.sat_propagations);
  reg->set_counter(p + ".counterexamples", res.cex ? 1 : 0);
  reg->set_gauge(p + ".equivalent", res.equivalent() ? 1.0 : 0.0);
  if (st.sat_call_conflicts.count() > 0)
    reg->merge_histogram(p + ".sat_call_conflicts", st.sat_call_conflicts);
  if (obs::Ledger* ledger = reg->ledger(); ledger != nullptr) {
    obs::LedgerEntry e;
    e.phase = "cec";
    e.design = p;
    e.input_hash = input_hash;
    e.options_fingerprint = options_fingerprint(opt);
    e.duration_ns = duration_ns;
    e.add_counter("aig_nodes", st.aig_nodes);
    e.add_counter("presim_rounds", st.presim_rounds);
    e.add_counter("presim_ops", st.presim_ops);
    e.add_counter("compare_points", st.compare_points);
    e.add_counter("compare_bits", st.compare_bits);
    e.add_counter("bits_structural", st.bits_structural);
    e.add_counter("bits_sat_proved", st.bits_sat_proved);
    e.add_counter("sweep_classes", st.sweep_classes);
    e.add_counter("sweep_merges", st.sweep_merges);
    e.add_counter("sat_calls", st.sat_calls);
    e.add_counter("sat_conflicts", st.sat_conflicts);
    e.add_counter("sat_decisions", st.sat_decisions);
    e.add_counter("sat_propagations", st.sat_propagations);
    e.add_counter("counterexamples", res.cex ? 1 : 0);
    e.add_counter("equivalent", res.equivalent() ? 1 : 0);
    e.add_histogram("sat_call_conflicts", st.sat_call_conflicts);
    ledger->append(std::move(e));
  }
}

CecResult run_cec(const nl::Netlist* a_nl, const rtl::Design* a_rtl,
                  const nl::Netlist& b, obs::Registry* reg, const CecOptions& opt) {
  std::optional<obs::Registry::ScopedTimer> timer;
  if (reg != nullptr) timer.emplace(reg->time_scope(opt.metric_prefix));
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_ns = [t0] {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - t0)
                                          .count());
  };
  // Input identity for the run ledger (and a future artifact cache): the
  // structural hash of both sides.  The RTL variant keys on the design
  // name — rtl::Design has no canonical serialization yet.
  obs::Fnv1a input_h;
  if (a_nl != nullptr) input_h.update_u64(nl::content_hash(*a_nl));
  else input_h.update_str("rtl:" + a_rtl->name());
  input_h.update_u64(nl::content_hash(b));
  const std::uint64_t input_hash = input_h.digest();

  Engine eng(opt);
  CecResult res;

  // Positional flop pairing is only meaningful when both sides have the
  // same flop count; with provenance names this guard never fires.
  if (a_nl != nullptr) {
    const auto ka = flop_keys(*a_nl);
    const auto kb = flop_keys(b);
    const auto positional = [](const std::vector<std::string>& ks) {
      for (const auto& k : ks)
        if (!k.empty() && k[0] == '#') return true;
      return false;
    };
    if ((positional(ka) || positional(kb)) && ka.size() != kb.size()) {
      throw std::invalid_argument(
          "cec: cannot pair unnamed flops, counts differ (" +
          std::to_string(ka.size()) + " vs " + std::to_string(kb.size()) + ")");
    }
  } else if (!flop_keys(b).empty() && flop_keys(b).front()[0] == '#') {
    throw std::invalid_argument("cec: rtl comparison needs named netlist flops");
  }

  // Tie scan-style pins to 0 on whichever side has them.
  for (const std::string& name : opt.tie_zero_inputs) {
    std::size_t width = 0;
    if (const nl::PortBits* p = b.find_input(name)) width = p->nets.size();
    if (width == 0 && a_nl != nullptr) {
      if (const nl::PortBits* p = a_nl->find_input(name)) width = p->nets.size();
    }
    if (width == 0 && a_rtl != nullptr) {
      for (const auto& in : a_rtl->inputs())
        if (in.name == name) width = static_cast<std::size_t>(in.width);
    }
    if (width > 0) eng.vars.seed(name, std::vector<AigLit>(width, kAigFalse));
  }

  const BlastedOutputs oa = a_nl != nullptr
                                ? bitblast_netlist(*a_nl, eng.aig, eng.vars)
                                : bitblast_rtl(*a_rtl, eng.aig, eng.vars);
  const BlastedOutputs ob = bitblast_netlist(b, eng.aig, eng.vars);
  eng.sync_nodes();
  eng.stats.aig_nodes = eng.aig.node_count();

  // Pair comparison points by name.
  std::map<std::string, std::pair<const std::vector<AigLit>*, const std::vector<AigLit>*>>
      points;
  for (const auto& [name, bits] : oa.outputs) points[name].first = &bits;
  for (const auto& [name, bits] : ob.outputs) points[name].second = &bits;
  std::vector<CompareBit> cmp;
  for (auto& [name, sides] : points) {
    bool ignored = false;
    for (const auto& ig : opt.ignore_outputs) ignored |= ig == name;
    if (ignored) continue;
    if (sides.first == nullptr || sides.second == nullptr) {
      // A flop present on one side only stays free state: sound for passes
      // that drop flops no output cone reads.
      if (name.rfind("next:", 0) == 0) continue;
      throw std::invalid_argument("cec: output '" + name +
                                  "' exists on only one side");
    }
    if (sides.first->size() != sides.second->size()) {
      throw std::invalid_argument("cec: width mismatch on output '" + name + "'");
    }
    ++eng.stats.compare_points;
    for (std::size_t i = 0; i < sides.first->size(); ++i) {
      cmp.push_back({&name, static_cast<int>(i), (*sides.first)[i],
                     (*sides.second)[i]});
      ++eng.stats.compare_bits;
    }
  }

  const auto finish = [&](CecStatus status) {
    res.status = status;
    res.stats = eng.stats;
    res.stats.sat_conflicts = eng.solver.stats().conflicts;
    res.stats.sat_decisions = eng.solver.stats().decisions;
    res.stats.sat_propagations = eng.solver.stats().propagations;
    if (res.cex && opt.replay) replay_cex(*res.cex, a_nl, b);
    record_metrics(reg, opt, res.stats, res, input_hash, elapsed_ns());
    return res;
  };

  // --- compiled-simulation pre-pass: bit-parallel refutation -------------
  // Netlist-vs-netlist only: run both flop-stripped comb_views through the
  // two-state compiled engine on identical name-keyed pattern words
  // (core::pattern_word — each side derives its stimulus independently, so
  // same-named ports agree without shared state; the VarMap has already
  // enforced that shared names carry matching widths).  A differing output
  // word refutes equivalence before any AIG node words are allocated, and
  // the counterexample comes from an engine independent of the bitblaster.
  if (opt.compiled_presim && a_nl != nullptr && opt.sim_rounds > 0) {
    const nl::Netlist view_a = comb_view(*a_nl);
    const nl::Netlist view_b = comb_view(b);
    hdlsim::CompiledSim sim_a(view_a);
    hdlsim::CompiledSim sim_b(view_b);
    const auto tied = [&](const std::string& name) {
      for (const auto& t : opt.tie_zero_inputs)
        if (t == name) return true;
      return false;
    };
    // Output ports compared: exactly the both-sided, non-ignored points.
    std::vector<const std::string*> shared_outs;
    for (const auto& [name, sides] : points) {
      if (sides.first == nullptr || sides.second == nullptr) continue;
      bool ignored = false;
      for (const auto& ig : opt.ignore_outputs) ignored |= ig == name;
      if (!ignored) shared_outs.push_back(&name);
    }
    const auto drive = [&](hdlsim::CompiledSim& sim, const nl::Netlist& view, int round) {
      for (const nl::PortBits& p : view.inputs()) {
        const auto port = sim.input_port(p.name);
        const std::uint64_t h = core::hash_str(p.name);
        const bool tie = tied(p.name);
        for (std::size_t i = 0; i < p.nets.size(); ++i)
          sim.set_input_word(port, i,
                             tie ? 0
                                 : core::pattern_word(opt.seed, h,
                                                      static_cast<unsigned>(round),
                                                      static_cast<unsigned>(i)));
      }
    };
    for (int r = 0; r < opt.sim_rounds; ++r) {
      drive(sim_a, view_a, r);
      drive(sim_b, view_b, r);
      sim_a.settle();
      sim_b.settle();
      eng.stats.presim_rounds = static_cast<std::size_t>(r) + 1;
      for (const std::string* name : shared_outs) {
        const auto pa = sim_a.output_port(*name);
        const auto pb = sim_b.output_port(*name);
        for (std::size_t i = 0; i < pa->nets.size(); ++i) {
          const std::uint64_t wa = sim_a.output_word(pa, i);
          const std::uint64_t wb = sim_b.output_word(pb, i);
          if (wa == wb) continue;
          const unsigned lane = static_cast<unsigned>(std::countr_zero(wa ^ wb));
          CecCounterexample cex;
          // Inputs: the union of both views' ports, values as driven.
          std::unordered_map<std::string, bool> seen;
          const auto collect = [&](const nl::Netlist& view) {
            for (const nl::PortBits& p : view.inputs()) {
              if (!seen.emplace(p.name, true).second) continue;
              CecInputAssignment in;
              in.name = p.name;
              in.width = static_cast<int>(p.nets.size());
              const std::uint64_t h = core::hash_str(p.name);
              for (std::size_t bit = 0; bit < p.nets.size() && bit < 64; ++bit) {
                const std::uint64_t w =
                    tied(p.name) ? 0
                                 : core::pattern_word(opt.seed, h,
                                                      static_cast<unsigned>(r),
                                                      static_cast<unsigned>(bit));
                in.value |= std::uint64_t{core::word_lane(w, lane)} << bit;
              }
              cex.inputs.push_back(std::move(in));
            }
          };
          collect(view_a);
          collect(view_b);
          cex.divergent_output = *name;
          cex.divergent_bit = static_cast<int>(i);
          for (std::size_t bit = 0; bit < pa->nets.size() && bit < 64; ++bit) {
            cex.value_a |=
                std::uint64_t{core::word_lane(sim_a.output_word(pa, bit), lane)} << bit;
            cex.value_b |=
                std::uint64_t{core::word_lane(sim_b.output_word(pb, bit), lane)} << bit;
          }
          res.cex = std::move(cex);
          eng.stats.presim_ops = sim_a.ops_executed() + sim_b.ops_executed();
          return finish(CecStatus::kNotEquivalent);
        }
      }
    }
    eng.stats.presim_ops = sim_a.ops_executed() + sim_b.ops_executed();
  }

  // --- random simulation: cheap refutation + sweep signatures ---
  core::SplitMix64 rng{opt.seed};
  const int rounds = opt.sim_rounds > 0 ? opt.sim_rounds : 1;
  std::vector<std::uint64_t> input_words(eng.aig.input_count());
  std::vector<std::uint64_t> node_words;
  std::vector<std::vector<std::uint64_t>> sigs;  // per round, per node
  for (int r = 0; r < rounds; ++r) {
    for (auto& w : input_words) w = rng.next();
    eng.aig.simulate(input_words, node_words);
    for (const CompareBit& c : cmp) {
      const std::uint64_t wa = lit_word(eng.aig, node_words, c.a);
      const std::uint64_t wb = lit_word(eng.aig, node_words, c.b);
      if (wa != wb) {
        const int pat = std::countr_zero(wa ^ wb);
        res.cex = extract_cex(eng.aig, eng.vars, node_words, pat, *c.name, c.bit,
                              *points[*c.name].first, *points[*c.name].second);
        return finish(CecStatus::kNotEquivalent);
      }
    }
    if (opt.fraig_sweep) sigs.push_back(node_words);
  }

  // Mark structurally proven bits; collect the support of the rest.
  std::vector<bool> relevant(eng.aig.node_count(), false);
  relevant[0] = true;
  std::vector<std::uint32_t> dfs;
  auto mark = [&](AigLit l) {
    dfs.push_back(aig_node(l));
    while (!dfs.empty()) {
      const std::uint32_t n = dfs.back();
      dfs.pop_back();
      if (relevant[n]) continue;
      relevant[n] = true;
      if (eng.aig.is_and(n)) {
        dfs.push_back(aig_node(eng.aig.fanin0(n)));
        dfs.push_back(aig_node(eng.aig.fanin1(n)));
      }
    }
  };
  bool any_open = false;
  for (CompareBit& c : cmp) {
    if (c.a == c.b) {
      c.proved = true;
      ++eng.stats.bits_structural;
    } else {
      any_open = true;
      mark(c.a);
      mark(c.b);
    }
  }
  if (!any_open) return finish(CecStatus::kEquivalent);

  // --- fraig-lite sweep over the open bits' support ---
  if (opt.fraig_sweep && !sigs.empty()) {
    std::map<std::vector<std::uint64_t>, std::vector<std::pair<std::uint32_t, bool>>>
        classes;
    std::vector<std::uint64_t> key(sigs.size());
    for (std::uint32_t n = 0; n < eng.aig.node_count(); ++n) {
      if (!relevant[n]) continue;
      bool phase = false;
      for (std::size_t r = 0; r < sigs.size(); ++r) key[r] = sigs[r][n];
      if (key[0] & 1u) {  // canonicalise so pattern 0 is 0
        phase = true;
        for (auto& w : key) w = ~w;
      }
      classes[key].push_back({n, phase});
    }
    std::size_t checks = 0;
    for (const auto& [sig_key, members] : classes) {
      if (members.size() < 2) continue;
      ++eng.stats.sweep_classes;
      const auto [n0, p0] = members[0];
      const AigLit la = (n0 << 1) | (p0 ? 1u : 0u);
      for (std::size_t i = 1; i < members.size(); ++i) {
        if (checks >= opt.sweep_max_checks) break;
        const auto [ni, pi] = members[i];
        const AigLit lb = (ni << 1) | (pi ? 1u : 0u);
        if (eng.canon(la) == eng.canon(lb)) continue;
        ++checks;
        if (eng.prove_equal(la, lb, opt.sweep_conflict_limit) == sat::Result::kUnsat)
          ++eng.stats.sweep_merges;
      }
    }
  }

  // --- final per-bit discharge ---
  bool any_unknown = false;
  for (CompareBit& c : cmp) {
    if (c.proved) continue;
    if (eng.canon(c.a) == eng.canon(c.b)) {
      ++eng.stats.bits_structural;
      continue;
    }
    const sat::Result r = eng.prove_equal(c.a, c.b, opt.final_conflict_limit);
    if (r == sat::Result::kUnsat) {
      ++eng.stats.bits_sat_proved;
      continue;
    }
    if (r == sat::Result::kUnknown) {
      any_unknown = true;
      continue;
    }
    // SAT: evaluate the whole AIG under the model for a complete vector.
    for (std::uint32_t n = 1; n < eng.aig.node_count(); ++n) {
      if (!eng.aig.is_input(n)) continue;
      const bool v =
          eng.node_var[n] >= 0 && eng.solver.model_value(eng.node_var[n]);
      input_words[static_cast<std::size_t>(eng.aig.input_index(n))] = v ? 1u : 0u;
    }
    eng.aig.simulate(input_words, node_words);
    res.cex = extract_cex(eng.aig, eng.vars, node_words, 0, *c.name, c.bit,
                          *points[*c.name].first, *points[*c.name].second);
    return finish(CecStatus::kNotEquivalent);
  }
  return finish(any_unknown ? CecStatus::kUnknown : CecStatus::kEquivalent);
}

}  // namespace

CecOptions CecOptions::scan_modulo() {
  CecOptions o;
  o.tie_zero_inputs = {"scan_in", "scan_enable"};
  o.ignore_outputs = {"scan_out"};
  return o;
}

CecResult check_equivalence(const nl::Netlist& a, const nl::Netlist& b,
                            obs::Registry* reg, const CecOptions& options) {
  return run_cec(&a, nullptr, b, reg, options);
}

CecResult check_rtl_vs_netlist(const rtl::Design& a, const nl::Netlist& b,
                               obs::Registry* reg, const CecOptions& options) {
  return run_cec(nullptr, &a, b, reg, options);
}

bool write_cex_vcd(const CecCounterexample& cex, const std::string& path) {
  minisc::VcdFile vcd(path);
  std::vector<std::size_t> in_vars;
  in_vars.reserve(cex.inputs.size());
  for (const auto& in : cex.inputs) in_vars.push_back(vcd.add_var(in.name, in.width));
  const std::size_t va = vcd.add_var("a." + cex.divergent_output, 64);
  const std::size_t vb = vcd.add_var("b." + cex.divergent_output, 64);
  vcd.time(0);
  for (std::size_t i = 0; i < cex.inputs.size(); ++i)
    vcd.change(in_vars[i], cex.inputs[i].value);
  vcd.change(va, cex.value_a);
  vcd.change(vb, cex.value_b);
  vcd.flush();
  return vcd.good();
}

void assert_equivalent(const nl::Netlist& a, const nl::Netlist& b,
                       obs::Registry* reg, const CecOptions& options,
                       const std::string& cex_vcd_path) {
  CecResult res = check_equivalence(a, b, reg, options);
  if (res.equivalent()) return;
  std::string msg = "equivalence check failed: '" + a.name() + "' vs '" + b.name() + "'";
  if (res.status == CecStatus::kUnknown) {
    msg += " (inconclusive: conflict budget exhausted)";
  } else if (res.cex) {
    msg += ": first divergent net '" + res.cex->divergent_output + "' bit " +
           std::to_string(res.cex->divergent_bit) + " (a=" +
           std::to_string(res.cex->value_a) + ", b=" +
           std::to_string(res.cex->value_b) + ")";
    if (res.cex->replayed) {
      msg += res.cex->replay_confirmed ? "; GateSim replay confirms the mismatch"
                                       : "; GateSim replay did NOT confirm";
    }
    if (!cex_vcd_path.empty() && write_cex_vcd(*res.cex, cex_vcd_path)) {
      msg += "; counterexample dumped to " + cex_vcd_path;
    }
  }
  throw EquivalenceError(msg, std::move(res));
}

}  // namespace scflow::formal
