// Bitblasters: turn a gate-level netlist::Netlist or the combinational
// next-state/output cones of an rtl::Design into AIG cones over *named*
// variables, so two sides blasted into the same Aig with the same VarMap
// share primary-input / flop-boundary literals and can be mitered.
//
// Flop boundaries are cut: each flop's Q becomes the pseudo-input
// "state:<key>" and its effective D (for scan flops: se ? si : d) becomes
// the pseudo-output "next:<key>", where <key> is the cell's provenance
// name (lower_to_gates names flop cells "<register>_q<bit>") or a
// positional "#k" fallback.  Macro (RAM/ROM) ports need no special
// handling — their data ports are ordinary input ports (free variables)
// and their address/enable/write ports are ordinary outputs, which the
// CEC compares like any other output.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "formal/aig.hpp"
#include "netlist/netlist.hpp"
#include "rtl/ir.hpp"

namespace scflow::formal {

/// Named AIG variable vectors (LSB first) shared between the two sides of
/// a miter.  get() creates fresh AIG inputs on first use and type-checks
/// the width on every later use; seed() pre-binds a name, e.g. tying
/// "scan_enable" to constant 0 for scan-modulo comparisons.
class VarMap {
 public:
  explicit VarMap(Aig& aig) : aig_(&aig) {}

  const std::vector<AigLit>& get(const std::string& name, std::size_t width);
  void seed(const std::string& name, std::vector<AigLit> lits);
  [[nodiscard]] const std::map<std::string, std::vector<AigLit>>& entries() const {
    return vars_;
  }

 private:
  Aig* aig_;
  std::map<std::string, std::vector<AigLit>> vars_;
};

/// One bitblasted side: the comparison points (primary outputs, macro
/// address/enable/write ports and "next:<flop>" cones) in deterministic
/// order.
struct BlastedOutputs {
  std::vector<std::pair<std::string, std::vector<AigLit>>> outputs;
};

BlastedOutputs bitblast_netlist(const nl::Netlist& n, Aig& aig, VarMap& vars);
BlastedOutputs bitblast_rtl(const rtl::Design& d, Aig& aig, VarMap& vars);

/// Pairing keys for the sequential cells, in flop ordinal order: the
/// cell's provenance name when set, positional "#k" otherwise.
[[nodiscard]] std::vector<std::string> flop_keys(const nl::Netlist& n);

/// Combinational replay view: flops stripped (Q becomes the input port
/// "state:<key>", effective D the output port "next:<key>") and macros
/// dropped (their data/address ports stay as ordinary ports), so a CEC
/// counterexample is a plain input vector an hdlsim::GateSim can replay.
[[nodiscard]] nl::Netlist comb_view(const nl::Netlist& n);

}  // namespace scflow::formal
