#include "formal/sat.hpp"

#include <algorithm>
#include <cassert>

namespace scflow::formal::sat {

namespace {
// Luby restart sequence with base 2: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::uint64_t luby2(std::uint64_t x) {
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x %= size;
  }
  return 1ull << seq;
}
}  // namespace

Var Solver::new_var() {
  const Var v = static_cast<Var>(activity_.size());
  activity_.push_back(0.0);
  assign_.push_back(-1);
  reason_.push_back(kNoReason);
  level_.push_back(0);
  polarity_.push_back(true);  // branch negative first, MiniSat-style
  seen_.push_back(false);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

void Solver::enqueue(Lit p, ClauseRef from) {
  const auto v = static_cast<std::size_t>(lit_var(p));
  assign_[v] = lit_sign(p) ? std::int8_t{0} : std::int8_t{1};
  reason_[v] = from;
  level_[v] = decision_level();
  trail_.push_back(p);
}

bool Solver::add_clause(std::vector<Lit> c) {
  if (!ok_) return false;
  assert(decision_level() == 0);
  std::sort(c.begin(), c.end());
  std::size_t j = 0;
  Lit prev = kLitUndef;
  for (const Lit l : c) {
    if (value(l) == 1 || l == lit_neg(prev)) return true;  // satisfied / taut
    if (value(l) == 0 || l == prev) continue;              // root-false / dup
    c[j++] = l;
    prev = l;
  }
  c.resize(j);
  if (c.empty()) {
    ok_ = false;
    return false;
  }
  if (c.size() == 1) {
    enqueue(c[0], kNoReason);
    if (propagate() != kNoReason) {
      ok_ = false;
      return false;
    }
    return true;
  }
  attach_clause(c, false);
  return true;
}

Solver::ClauseRef Solver::attach_clause(const std::vector<Lit>& c, bool learned) {
  assert(c.size() >= 2);
  const auto cref = static_cast<ClauseRef>(clauses_.size());
  Clause cl;
  cl.begin = static_cast<std::uint32_t>(arena_.size());
  cl.size = static_cast<std::uint32_t>(c.size());
  cl.learned = learned;
  arena_.insert(arena_.end(), c.begin(), c.end());
  clauses_.push_back(cl);
  watches_[static_cast<std::size_t>(c[0])].push_back({cref, c[1]});
  watches_[static_cast<std::size_t>(c[1])].push_back({cref, c[0]});
  if (learned) learnts_.push_back(cref);
  return cref;
}

void Solver::detach_clause(ClauseRef cr) {
  const Lit* ls = lits(cr);
  for (int k = 0; k < 2; ++k) {
    auto& ws = watches_[static_cast<std::size_t>(ls[k])];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == cr) {
        ws[i] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

Solver::ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    const Lit false_lit = lit_neg(p);
    auto& ws = watches_[static_cast<std::size_t>(false_lit)];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i++];
      if (value(w.blocker) == 1) {  // clause already satisfied
        ws[j++] = w;
        continue;
      }
      const ClauseRef cref = w.cref;
      const Clause& c = clauses_[cref];
      Lit* ls = lits(cref);
      if (ls[0] == false_lit) std::swap(ls[0], ls[1]);
      const Lit first = ls[0];
      if (first != w.blocker && value(first) == 1) {
        ws[j++] = {cref, first};
        continue;
      }
      bool moved = false;
      for (std::uint32_t k = 2; k < c.size; ++k) {
        if (value(ls[k]) != 0) {  // non-false literal -> new watch
          std::swap(ls[1], ls[k]);
          watches_[static_cast<std::size_t>(ls[1])].push_back({cref, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[j++] = {cref, first};
      if (value(first) == 0) {
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        qhead_ = trail_.size();
        return cref;
      }
      enqueue(first, cref);
    }
    ws.resize(j);
  }
  return kNoReason;
}

void Solver::bump_var(Var v) {
  const auto idx = static_cast<std::size_t>(v);
  activity_[idx] += var_inc_;
  if (activity_[idx] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[idx] >= 0) heap_percolate_up(heap_pos_[idx]);
}

void Solver::decay_activities() {
  var_inc_ *= 1.0 / 0.95;
  cla_inc_ *= 1.0f / 0.999f;
  if (cla_inc_ > 1e20f) {
    for (const ClauseRef cr : learnts_) clauses_[cr].activity *= 1e-20f;
    cla_inc_ *= 1e-20f;
  }
}

void Solver::analyze(ClauseRef confl, std::vector<Lit>& learnt,
                     std::int32_t& bt_level) {
  learnt.clear();
  learnt.push_back(kLitUndef);  // slot for the asserting (1UIP) literal
  std::int32_t pathc = 0;
  Lit p = kLitUndef;
  std::size_t index = trail_.size();
  do {
    Clause& c = clauses_[confl];
    if (c.learned) c.activity += cla_inc_;
    const Lit* ls = lits(confl);
    // For a reason clause ls[0] is the implied literal (== p), skip it.
    for (std::uint32_t k = (p == kLitUndef) ? 0u : 1u; k < c.size; ++k) {
      const auto v = static_cast<std::size_t>(lit_var(ls[k]));
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = true;
      bump_var(lit_var(ls[k]));
      if (level_[v] >= decision_level()) {
        ++pathc;
      } else {
        learnt.push_back(ls[k]);
      }
    }
    while (!seen_[static_cast<std::size_t>(lit_var(trail_[--index]))]) {
    }
    p = trail_[index];
    confl = reason_[static_cast<std::size_t>(lit_var(p))];
    seen_[static_cast<std::size_t>(lit_var(p))] = false;
    --pathc;
  } while (pathc > 0);
  learnt[0] = lit_neg(p);

  if (learnt.size() == 1) {
    bt_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < learnt.size(); ++k) {
      if (level_[static_cast<std::size_t>(lit_var(learnt[k]))] >
          level_[static_cast<std::size_t>(lit_var(learnt[max_i]))]) {
        max_i = k;
      }
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[static_cast<std::size_t>(lit_var(learnt[1]))];
  }
  for (const Lit l : learnt) seen_[static_cast<std::size_t>(lit_var(l))] = false;
}

void Solver::analyze_final(Lit failed_assumption) {
  conflict_core_.clear();
  conflict_core_.push_back(failed_assumption);
  if (decision_level() > 0) {
    seen_[static_cast<std::size_t>(lit_var(failed_assumption))] = true;
    for (std::size_t i = trail_.size();
         i-- > static_cast<std::size_t>(trail_lim_[0]);) {
      const auto v = static_cast<std::size_t>(lit_var(trail_[i]));
      if (!seen_[v]) continue;
      if (reason_[v] == kNoReason) {
        // A decision below the first free level is an assumption.
        conflict_core_.push_back(trail_[i]);
      } else {
        const Clause& c = clauses_[reason_[v]];
        const Lit* ls = arena_.data() + c.begin;
        for (std::uint32_t k = 1; k < c.size; ++k) {
          const auto u = static_cast<std::size_t>(lit_var(ls[k]));
          if (level_[u] > 0) seen_[u] = true;
        }
      }
      seen_[v] = false;
    }
  }
  seen_[static_cast<std::size_t>(lit_var(failed_assumption))] = false;
}

void Solver::cancel_until(std::int32_t level) {
  if (decision_level() <= level) return;
  for (std::size_t i = trail_.size();
       i-- > static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(level)]);) {
    const auto v = static_cast<std::size_t>(lit_var(trail_[i]));
    assign_[v] = -1;
    polarity_[v] = lit_sign(trail_[i]);  // phase saving
    reason_[v] = kNoReason;
    if (heap_pos_[v] < 0) heap_insert(static_cast<Var>(v));
  }
  trail_.resize(static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(level)]));
  trail_lim_.resize(static_cast<std::size_t>(level));
  qhead_ = trail_.size();
}

void Solver::reduce_db() {
  std::sort(learnts_.begin(), learnts_.end(), [&](ClauseRef a, ClauseRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  const std::size_t target = learnts_.size() / 2;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    const ClauseRef cr = learnts_[i];
    Clause& c = clauses_[cr];
    const Lit l0 = lits(cr)[0];
    const bool locked =
        reason_[static_cast<std::size_t>(lit_var(l0))] == cr && value(l0) == 1;
    if (i < target && !locked && c.size > 2) {
      detach_clause(cr);
      c.dead = true;
      ++stats_.deleted_clauses;
    } else {
      learnts_[kept++] = cr;
    }
  }
  learnts_.resize(kept);
}

Lit Solver::pick_branch() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (assign_[static_cast<std::size_t>(v)] < 0) {
      return mk_lit(v, polarity_[static_cast<std::size_t>(v)]);
    }
  }
  return kLitUndef;
}

Result Solver::solve(const std::vector<Lit>& assumptions,
                     std::uint64_t conflict_budget) {
  ++stats_.solve_calls;
  conflict_core_.clear();
  if (!ok_) return Result::kUnsat;

  const std::uint64_t start_conflicts = stats_.conflicts;
  std::uint64_t restart_idx = 0;
  std::uint64_t restart_limit = 64;
  std::uint64_t conflicts_since_restart = 0;
  std::vector<Lit> learnt;

  for (;;) {
    const ClauseRef confl = propagate();
    if (confl != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (decision_level() == 0) {
        ok_ = false;  // refuted independently of any assumptions
        return Result::kUnsat;
      }
      std::int32_t bt_level = 0;
      analyze(confl, learnt, bt_level);
      cancel_until(bt_level);
      ++stats_.learned_clauses;
      stats_.learned_literals += learnt.size();
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        const ClauseRef cr = attach_clause(learnt, true);
        clauses_[cr].activity = cla_inc_;
        enqueue(learnt[0], cr);
      }
      decay_activities();
      if (conflict_budget != 0 &&
          stats_.conflicts - start_conflicts >= conflict_budget) {
        cancel_until(0);
        return Result::kUnknown;
      }
      if (learnts_.size() >= max_learnts_) {
        reduce_db();
        max_learnts_ += max_learnts_ / 2;
      }
    } else {
      if (conflicts_since_restart >= restart_limit) {
        ++stats_.restarts;
        ++restart_idx;
        restart_limit = 64 * luby2(restart_idx);
        conflicts_since_restart = 0;
        cancel_until(0);
        continue;
      }
      Lit next = kLitUndef;
      while (decision_level() < static_cast<std::int32_t>(assumptions.size())) {
        const Lit p = assumptions[static_cast<std::size_t>(decision_level())];
        if (value(p) == 1) {
          // Already implied: open a dummy level to keep level==index.
          trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
        } else if (value(p) == 0) {
          analyze_final(p);
          cancel_until(0);
          return Result::kUnsat;
        } else {
          next = p;
          break;
        }
      }
      if (next == kLitUndef) {
        next = pick_branch();
        if (next == kLitUndef) {
          model_.assign(assign_.size(), false);
          for (std::size_t v = 0; v < assign_.size(); ++v) {
            model_[v] = assign_[v] == 1;
          }
          cancel_until(0);
          return Result::kSat;
        }
        ++stats_.decisions;
      }
      trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
      enqueue(next, kNoReason);
    }
  }
}

void Solver::heap_insert(Var v) {
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_percolate_up(heap_pos_[static_cast<std::size_t>(v)]);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[static_cast<std::size_t>(top)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_percolate_down(0);
  }
  return top;
}

void Solver::heap_percolate_up(std::int32_t i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const std::int32_t parent = (i - 1) / 2;
    const Var pv = heap_[static_cast<std::size_t>(parent)];
    if (activity_[static_cast<std::size_t>(pv)] >=
        activity_[static_cast<std::size_t>(v)]) {
      break;
    }
    heap_[static_cast<std::size_t>(i)] = pv;
    heap_pos_[static_cast<std::size_t>(pv)] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

void Solver::heap_percolate_down(std::int32_t i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const auto n = static_cast<std::int32_t>(heap_.size());
  for (;;) {
    std::int32_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(child + 1)])] >
            activity_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(child)])]) {
      ++child;
    }
    const Var cv = heap_[static_cast<std::size_t>(child)];
    if (activity_[static_cast<std::size_t>(cv)] <=
        activity_[static_cast<std::size_t>(v)]) {
      break;
    }
    heap_[static_cast<std::size_t>(i)] = cv;
    heap_pos_[static_cast<std::size_t>(cv)] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

}  // namespace scflow::formal::sat
