#include "formal/aig.hpp"

#include "core/wordpack.hpp"

namespace scflow::formal {

// The open-addressing hash spreads packed fanin pairs with the shared
// core::mix64 finaliser (one mixing primitive across every bit-parallel
// engine — see core/wordpack.hpp).
using core::mix64;

Aig::Aig() {
  nodes_.push_back({});  // node 0: constant false
  input_index_.push_back(-1);
  rehash(1024);
}

void Aig::rehash(std::size_t new_size) {
  std::vector<std::uint64_t> old_keys = std::move(hash_keys_);
  std::vector<AigLit> old_vals = std::move(hash_vals_);
  hash_keys_.assign(new_size, 0);
  hash_vals_.assign(new_size, 0);
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == 0) continue;
    std::size_t slot = mix64(old_keys[i]) & (new_size - 1);
    while (hash_keys_[slot] != 0) slot = (slot + 1) & (new_size - 1);
    hash_keys_[slot] = old_keys[i];
    hash_vals_[slot] = old_vals[i];
  }
}

AigLit Aig::add_input() {
  const auto node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({});
  input_index_.push_back(static_cast<std::int32_t>(inputs_.size()));
  inputs_.push_back(node);
  return node << 1;
}

AigLit Aig::and2(AigLit a, AigLit b) {
  // Constant and trivial folds.
  if (a == kAigFalse || b == kAigFalse) return kAigFalse;
  if (a == kAigTrue) return b;
  if (b == kAigTrue) return a;
  if (a == b) return a;
  if (a == aig_not(b)) return kAigFalse;
  if (a > b) std::swap(a, b);

  const std::uint64_t key = hash_key(a, b);
  std::size_t slot = mix64(key) & (hash_keys_.size() - 1);
  while (hash_keys_[slot] != 0) {
    if (hash_keys_[slot] == key) return hash_vals_[slot];
    slot = (slot + 1) & (hash_keys_.size() - 1);
  }

  const auto node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({a, b});
  input_index_.push_back(-1);
  const AigLit lit = node << 1;
  hash_keys_[slot] = key;
  hash_vals_[slot] = lit;
  if (++hash_used_ * 2 > hash_keys_.size()) rehash(hash_keys_.size() * 2);
  return lit;
}

void Aig::simulate(const std::vector<std::uint64_t>& input_words,
                   std::vector<std::uint64_t>& node_words) const {
  node_words.assign(nodes_.size(), 0);
  for (std::uint32_t n = 1; n < nodes_.size(); ++n) {
    const std::int32_t in = input_index_[n];
    if (in >= 0) {
      node_words[n] = input_words[static_cast<std::size_t>(in)];
      continue;
    }
    const Node& nd = nodes_[n];
    const std::uint64_t w0 =
        node_words[aig_node(nd.f0)] ^ (aig_phase(nd.f0) ? ~0ull : 0ull);
    const std::uint64_t w1 =
        node_words[aig_node(nd.f1)] ^ (aig_phase(nd.f1) ? ~0ull : 0ull);
    node_words[n] = w0 & w1;
  }
}

}  // namespace scflow::formal
