// A small CDCL SAT solver in the MiniSat lineage — two-watched-literal
// propagation, first-UIP conflict-clause learning, VSIDS-lite variable
// activities with phase saving, Luby restarts, learned-clause reduction,
// and incremental solving under assumptions (with failed-assumption core
// extraction).  No external dependencies; this is the decision procedure
// behind the combinational equivalence checker in cec.hpp.
#pragma once

#include <cstdint>
#include <vector>

namespace scflow::formal::sat {

using Var = std::int32_t;
using Lit = std::int32_t;  // 2*var | sign (sign bit 0 = positive)
constexpr Lit kLitUndef = -1;

[[nodiscard]] constexpr Lit mk_lit(Var v, bool negated = false) {
  return 2 * v + (negated ? 1 : 0);
}
[[nodiscard]] constexpr Var lit_var(Lit l) { return l >> 1; }
[[nodiscard]] constexpr bool lit_sign(Lit l) { return (l & 1) != 0; }
[[nodiscard]] constexpr Lit lit_neg(Lit l) { return l ^ 1; }

enum class Result { kSat, kUnsat, kUnknown };

struct SolverStats {
  std::uint64_t solve_calls = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t deleted_clauses = 0;
};

class Solver {
 public:
  Solver() = default;

  Var new_var();
  [[nodiscard]] std::int32_t num_vars() const {
    return static_cast<std::int32_t>(activity_.size());
  }

  /// Adds a clause (root level only).  Returns false when the formula is
  /// already unsatisfiable (empty clause / contradicting units).
  bool add_clause(std::vector<Lit> lits);

  /// Solves under the given assumptions.  @p conflict_budget bounds the
  /// number of conflicts explored (0 = unbounded); exceeding it returns
  /// kUnknown.  The solver remains usable (incrementally) after any result.
  Result solve(const std::vector<Lit>& assumptions = {},
               std::uint64_t conflict_budget = 0);

  /// Model access after kSat.  Variables untouched by the last search
  /// default to false.
  [[nodiscard]] bool model_value(Var v) const {
    return v < static_cast<Var>(model_.size()) && model_[static_cast<std::size_t>(v)];
  }

  /// After kUnsat under assumptions: the subset of assumption literals the
  /// refutation actually used (the assumption-level unsat core).  Empty
  /// when the formula is unsatisfiable regardless of assumptions.
  [[nodiscard]] const std::vector<Lit>& failed_assumptions() const { return conflict_core_; }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }
  [[nodiscard]] bool okay() const { return ok_; }

 private:
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoReason = 0xffffffffu;

  struct Clause {
    std::uint32_t begin = 0;  // offset into arena_
    std::uint32_t size = 0;
    float activity = 0.0f;
    bool learned = false;
    bool dead = false;
  };
  struct Watcher {
    ClauseRef cref = 0;
    Lit blocker = kLitUndef;
  };

  [[nodiscard]] std::int8_t value(Lit l) const {
    const std::int8_t a = assign_[static_cast<std::size_t>(lit_var(l))];
    return a < 0 ? a : static_cast<std::int8_t>(a ^ static_cast<std::int8_t>(lit_sign(l)));
  }
  [[nodiscard]] std::int32_t decision_level() const {
    return static_cast<std::int32_t>(trail_lim_.size());
  }
  [[nodiscard]] Lit* lits(ClauseRef c) { return arena_.data() + clauses_[c].begin; }

  void enqueue(Lit p, ClauseRef from);
  ClauseRef propagate();
  void analyze(ClauseRef confl, std::vector<Lit>& learnt, std::int32_t& bt_level);
  void analyze_final(Lit failed_assumption);
  void cancel_until(std::int32_t level);
  ClauseRef attach_clause(const std::vector<Lit>& c, bool learned);
  void detach_clause(ClauseRef c);
  void reduce_db();
  [[nodiscard]] Lit pick_branch();
  void bump_var(Var v);
  void decay_activities();

  // Binary max-heap over variable activity.
  void heap_insert(Var v);
  void heap_percolate_up(std::int32_t i);
  void heap_percolate_down(std::int32_t i);
  Var heap_pop();

  std::vector<Lit> arena_;
  std::vector<Clause> clauses_;
  std::vector<ClauseRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal

  std::vector<std::int8_t> assign_;  // per var: -1 undef, 0 false, 1 true
  std::vector<ClauseRef> reason_;
  std::vector<std::int32_t> level_;
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  float cla_inc_ = 1.0f;
  std::vector<std::int32_t> heap_pos_;  // -1 when not in heap
  std::vector<Var> heap_;
  std::vector<bool> polarity_;  // saved phase (true = branch negative)

  std::vector<bool> seen_;  // analyze scratch
  std::vector<bool> model_;
  std::vector<Lit> conflict_core_;
  std::size_t max_learnts_ = 8192;
  bool ok_ = true;
  SolverStats stats_;
};

}  // namespace scflow::formal::sat
