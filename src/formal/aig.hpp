// And-inverter graph: the canonical two-input representation every formal
// engine in src/formal shares.  Literals carry the complement in bit 0
// (node 0 is the constant false, so kAigFalse = 0 and kAigTrue = 1), AND
// nodes are structurally hashed with canonical fanin order, and the usual
// constant/idempotence folds run on construction — so two structurally
// identical cones bitblasted into the same Aig converge onto the same
// literal before any SAT effort is spent.
#pragma once

#include <cstdint>
#include <vector>

namespace scflow::formal {

using AigLit = std::uint32_t;
constexpr AigLit kAigFalse = 0;
constexpr AigLit kAigTrue = 1;

[[nodiscard]] constexpr AigLit aig_not(AigLit l) { return l ^ 1u; }
[[nodiscard]] constexpr std::uint32_t aig_node(AigLit l) { return l >> 1; }
[[nodiscard]] constexpr bool aig_phase(AigLit l) { return (l & 1u) != 0; }

class Aig {
 public:
  Aig();

  /// Fresh primary input; returns its (positive) literal.
  AigLit add_input();

  /// Hashed, constant-folded AND of two literals.
  AigLit and2(AigLit a, AigLit b);

  // Derived gates (expressed through and2, so they share the hash).
  AigLit or2(AigLit a, AigLit b) { return aig_not(and2(aig_not(a), aig_not(b))); }
  AigLit xor2(AigLit a, AigLit b) {
    return or2(and2(a, aig_not(b)), and2(aig_not(a), b));
  }
  AigLit xnor2(AigLit a, AigLit b) { return aig_not(xor2(a, b)); }
  /// s ? t : e.
  AigLit ite(AigLit s, AigLit t, AigLit e) {
    return or2(and2(s, t), and2(aig_not(s), e));
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t input_count() const { return inputs_.size(); }
  [[nodiscard]] bool is_input(std::uint32_t node) const {
    return input_index_[node] >= 0;
  }
  /// Input ordinal of an input node (creation order), -1 otherwise.
  [[nodiscard]] std::int32_t input_index(std::uint32_t node) const {
    return input_index_[node];
  }
  [[nodiscard]] bool is_and(std::uint32_t node) const {
    return node != 0 && input_index_[node] < 0;
  }
  [[nodiscard]] AigLit fanin0(std::uint32_t node) const { return nodes_[node].f0; }
  [[nodiscard]] AigLit fanin1(std::uint32_t node) const { return nodes_[node].f1; }

  /// 64 parallel simulation patterns: @p input_words holds one word per
  /// primary input (creation order); @p node_words is resized to
  /// node_count() and filled with the per-node result words.
  void simulate(const std::vector<std::uint64_t>& input_words,
                std::vector<std::uint64_t>& node_words) const;

 private:
  struct Node {
    AigLit f0 = 0;
    AigLit f1 = 0;
  };

  std::vector<Node> nodes_;             // node 0 = constant false
  std::vector<std::int32_t> input_index_;
  std::vector<std::uint32_t> inputs_;   // input node ids, creation order
  // Structural hash: canonical (f0, f1) with f0 <= f1 -> existing literal.
  // Open-addressing over a power-of-two table keeps inserts allocation-free
  // between rehashes.
  std::vector<std::uint64_t> hash_keys_;
  std::vector<AigLit> hash_vals_;
  std::size_t hash_used_ = 0;

  void rehash(std::size_t new_size);
  [[nodiscard]] static std::uint64_t hash_key(AigLit a, AigLit b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
};

}  // namespace scflow::formal
