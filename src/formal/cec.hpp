// Combinational equivalence checking over matched primary-input / flop
// boundaries: the formal gate behind every netlist refinement step
// (gate optimisation, scan insertion, Verilog round-trips, RTL lowering).
//
// Engine: both sides bitblast into one shared, structurally hashed AIG
// (identical cones collapse to the same literal for free); 64-bit-parallel
// random simulation either finds a counterexample outright or partitions
// the nodes into candidate equivalence classes; a fraig-lite SAT sweep
// merges proven-equal internals with budgeted CDCL calls; and each
// remaining comparison bit is discharged by SAT on a miter under an
// activation assumption.  Counterexamples are concrete input vectors
// (including "state:<flop>" pseudo-inputs) that are replayed through
// hdlsim::GateSim on the flop-stripped comb_view of each netlist to
// confirm the mismatch end-to-end.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "obs/histogram.hpp"
#include "rtl/ir.hpp"

namespace scflow::obs {
class Registry;
}

namespace scflow::formal {

enum class CecStatus { kEquivalent, kNotEquivalent, kUnknown };

struct CecInputAssignment {
  std::string name;  // port or "state:<flop>" pseudo-input
  int width = 1;
  std::uint64_t value = 0;
};

struct CecCounterexample {
  std::vector<CecInputAssignment> inputs;  // every miter variable
  std::string divergent_output;            // first differing comparison point
  int divergent_bit = 0;
  std::uint64_t value_a = 0;  // full port value predicted for side A
  std::uint64_t value_b = 0;
  bool replayed = false;          // a GateSim replay was run
  bool replay_confirmed = false;  // ...and reproduced the mismatch
};

struct CecStats {
  std::size_t aig_nodes = 0;
  /// Compiled-simulation pre-pass: rounds of 64 patterns run through the
  /// bit-parallel CompiledSim on both comb_views, and the bytecode ops
  /// those rounds executed (both sides summed).  Zero when the pre-pass
  /// was disabled or skipped (RTL side A).
  std::size_t presim_rounds = 0;
  std::uint64_t presim_ops = 0;
  std::size_t compare_points = 0;  // ports/cones compared
  std::size_t compare_bits = 0;
  std::size_t bits_structural = 0;  // proven by hashing or sweep merges
  std::size_t bits_sat_proved = 0;
  std::size_t sweep_classes = 0;
  std::size_t sweep_merges = 0;
  std::size_t sat_calls = 0;
  std::uint64_t sat_conflicts = 0;
  std::uint64_t sat_decisions = 0;
  std::uint64_t sat_propagations = 0;
  /// Per-SAT-call conflict distribution (one sample per prove_equal call):
  /// the hardness profile behind the flat sat_conflicts total — a long
  /// tail here is what motivates sweep budget tuning.
  obs::Histogram sat_call_conflicts;
};

struct CecOptions {
  /// Input ports tied to constant 0 on whichever side has them (scan pins
  /// for scan-modulo comparisons).
  std::vector<std::string> tie_zero_inputs;
  /// Output ports excluded from the comparison (e.g. "scan_out").
  std::vector<std::string> ignore_outputs;
  bool fraig_sweep = true;  ///< SAT-sweep internal candidate equivalences
  int sim_rounds = 4;       ///< rounds of 64 random patterns each
  /// Netlist-vs-netlist only: before touching the AIG's random simulation,
  /// run sim_rounds rounds of shared name-keyed patterns through the
  /// two-state compiled simulator on both comb_views — the cheapest
  /// refutation layer (straight-line bytecode, no AIG node words), and a
  /// cross-check of the bitblaster itself since its counterexamples come
  /// from an independent engine.
  bool compiled_presim = true;
  std::uint64_t sweep_conflict_limit = 200;  ///< per sweep SAT call
  std::size_t sweep_max_checks = 10000;      ///< total sweep SAT calls
  std::uint64_t final_conflict_limit = 0;    ///< per output bit; 0 = unbounded
  std::uint64_t seed = 0x5eedf00dcafe1234ull;
  bool replay = true;  ///< replay counterexamples through GateSim
  std::string metric_prefix = "cec";
  /// Preset for comparing a scan-inserted netlist against its pre-scan
  /// original: scan_in/scan_enable tied to 0, scan_out ignored.
  [[nodiscard]] static CecOptions scan_modulo();
};

struct CecResult {
  CecStatus status = CecStatus::kUnknown;
  std::optional<CecCounterexample> cex;
  CecStats stats;
  [[nodiscard]] bool equivalent() const { return status == CecStatus::kEquivalent; }
};

/// Proves (or refutes) combinational equivalence of two netlists over
/// matched primary inputs, outputs and flop boundaries.  Flops are paired
/// by provenance name (Cell::name) with a positional fallback; a flop
/// present on only one side is treated as free state, which is sound for
/// optimisation passes that drop dead flops.  With @p reg, records
/// "<metric_prefix>.*" counters and a scoped timer.
CecResult check_equivalence(const nl::Netlist& a, const nl::Netlist& b,
                            obs::Registry* reg = nullptr,
                            const CecOptions& options = {});

/// RTL-vs-gates variant: proves nl::lower_to_gates preserved the design's
/// combinational next-state/output semantics.  Counterexamples replay
/// through side B (the netlist) only.
CecResult check_rtl_vs_netlist(const rtl::Design& a, const nl::Netlist& b,
                               obs::Registry* reg = nullptr,
                               const CecOptions& options = {});

/// Thrown by assert_equivalent; carries the full result (counterexample
/// included) and names the first divergent net in what().
class EquivalenceError : public std::runtime_error {
 public:
  EquivalenceError(const std::string& what, CecResult result_in)
      : std::runtime_error(what), result(std::move(result_in)) {}
  CecResult result;
};

/// check_equivalence that throws EquivalenceError on anything but
/// kEquivalent.  When @p cex_vcd_path is non-empty and a counterexample
/// exists, it is dumped there first (and the path named in the message).
void assert_equivalent(const nl::Netlist& a, const nl::Netlist& b,
                       obs::Registry* reg = nullptr, const CecOptions& options = {},
                       const std::string& cex_vcd_path = {});

/// Writes a counterexample (the input vector plus both sides' divergent
/// port values) as a VCD file.  Returns false on I/O failure.
bool write_cex_vcd(const CecCounterexample& cex, const std::string& path);

}  // namespace scflow::formal
