#include "formal/bitblast.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace scflow::formal {

namespace {
constexpr AigLit kUnsetLit = 0xffffffffu;
}

const std::vector<AigLit>& VarMap::get(const std::string& name, std::size_t width) {
  auto it = vars_.find(name);
  if (it != vars_.end()) {
    if (it->second.size() != width) {
      throw std::invalid_argument("cec: variable '" + name + "' used with width " +
                                  std::to_string(width) + " and width " +
                                  std::to_string(it->second.size()));
    }
    return it->second;
  }
  std::vector<AigLit> lits(width);
  for (auto& l : lits) l = aig_->add_input();
  return vars_.emplace(name, std::move(lits)).first->second;
}

void VarMap::seed(const std::string& name, std::vector<AigLit> lits) {
  vars_.insert_or_assign(name, std::move(lits));
}

std::vector<std::string> flop_keys(const nl::Netlist& n) {
  std::vector<std::string> keys;
  std::size_t k = 0;
  for (const nl::Cell& c : n.cells()) {
    if (!nl::cell_is_sequential(c.type)) continue;
    keys.push_back(c.name.empty() ? "#" + std::to_string(k) : c.name);
    ++k;
  }
  return keys;
}

BlastedOutputs bitblast_netlist(const nl::Netlist& n, Aig& aig, VarMap& vars) {
  std::vector<AigLit> net(static_cast<std::size_t>(n.net_count()), kUnsetLit);
  auto net_lit = [&](nl::NetId id) {
    const AigLit l = net[static_cast<std::size_t>(id)];
    if (l == kUnsetLit) {
      throw std::logic_error("cec: undriven net " + std::to_string(id) + " in '" +
                             n.name() + "'");
    }
    return l;
  };

  for (const nl::PortBits& p : n.inputs()) {
    const auto& lits = vars.get(p.name, p.nets.size());
    for (std::size_t i = 0; i < p.nets.size(); ++i) {
      net[static_cast<std::size_t>(p.nets[i])] = lits[i];
    }
  }

  const std::vector<std::string> keys = flop_keys(n);
  {
    std::unordered_set<std::string> seen;
    for (const auto& k : keys) {
      if (!seen.insert(k).second) {
        throw std::invalid_argument("cec: duplicate flop name '" + k + "' in '" +
                                    n.name() + "'");
      }
    }
  }
  {
    std::size_t k = 0;
    for (const nl::Cell& c : n.cells()) {
      if (!nl::cell_is_sequential(c.type)) continue;
      net[static_cast<std::size_t>(c.output)] = vars.get("state:" + keys[k], 1)[0];
      ++k;
    }
  }

  for (const std::size_t ci : nl::combinational_topo_order(n)) {
    const nl::Cell& c = n.cells()[ci];
    auto in = [&](std::size_t i) { return net_lit(c.inputs[i]); };
    AigLit y = kAigFalse;
    switch (c.type) {
      case nl::CellType::kTie0: y = kAigFalse; break;
      case nl::CellType::kTie1: y = kAigTrue; break;
      case nl::CellType::kBuf: y = in(0); break;
      case nl::CellType::kInv: y = aig_not(in(0)); break;
      case nl::CellType::kAnd2: y = aig.and2(in(0), in(1)); break;
      case nl::CellType::kOr2: y = aig.or2(in(0), in(1)); break;
      case nl::CellType::kNand2: y = aig_not(aig.and2(in(0), in(1))); break;
      case nl::CellType::kNor2: y = aig_not(aig.or2(in(0), in(1))); break;
      case nl::CellType::kXor2: y = aig.xor2(in(0), in(1)); break;
      case nl::CellType::kXnor2: y = aig.xnor2(in(0), in(1)); break;
      case nl::CellType::kMux2: y = aig.ite(in(0), in(2), in(1)); break;
      case nl::CellType::kDff:
      case nl::CellType::kSdff:
        throw std::logic_error("cec: sequential cell in combinational order");
    }
    net[static_cast<std::size_t>(c.output)] = y;
  }

  BlastedOutputs out;
  for (const nl::PortBits& p : n.outputs()) {
    std::vector<AigLit> bits(p.nets.size());
    for (std::size_t i = 0; i < p.nets.size(); ++i) bits[i] = net_lit(p.nets[i]);
    out.outputs.emplace_back(p.name, std::move(bits));
  }
  {
    std::size_t k = 0;
    for (const nl::Cell& c : n.cells()) {
      if (!nl::cell_is_sequential(c.type)) continue;
      AigLit d = net_lit(c.inputs[0]);
      if (c.type == nl::CellType::kSdff) {
        // Effective D of a scan flop: se ? si : d.
        d = aig.ite(net_lit(c.inputs[2]), net_lit(c.inputs[1]), d);
      }
      out.outputs.emplace_back("next:" + keys[k], std::vector<AigLit>{d});
      ++k;
    }
  }
  return out;
}

namespace {

// Mirrors nl::lower_to_gates' Lowerer gate-for-gate (same adder, array
// multiplier, comparison and mux structures, same port naming), so an RTL
// design and its freshly lowered netlist bitblast to *identical* AIG
// literals via structural hashing — the miter collapses without SAT.
struct RtlBlaster {
  using BitVec = std::vector<AigLit>;

  const rtl::Design& d;
  Aig& g;
  VarMap& vars;
  std::vector<BitVec> bits;
  std::vector<BitVec> flop_q;
  std::vector<int> ram_read_count;
  std::vector<int> rom_read_count;
  BlastedOutputs out;

  RtlBlaster(const rtl::Design& design, Aig& aig, VarMap& vm)
      : d(design), g(aig), vars(vm), bits(design.nodes().size()) {}

  AigLit inv(AigLit a) { return aig_not(a); }
  AigLit and2(AigLit a, AigLit b) { return g.and2(a, b); }
  AigLit or2(AigLit a, AigLit b) { return g.or2(a, b); }
  AigLit xor2(AigLit a, AigLit b) { return g.xor2(a, b); }
  AigLit xnor2(AigLit a, AigLit b) { return g.xnor2(a, b); }
  AigLit mux2(AigLit sel, AigLit a0, AigLit a1) { return g.ite(sel, a1, a0); }

  std::pair<AigLit, AigLit> full_adder(AigLit a, AigLit b, AigLit c) {
    const AigLit axb = xor2(a, b);
    const AigLit sum = xor2(axb, c);
    const AigLit carry = or2(and2(a, b), and2(c, axb));
    return {sum, carry};
  }

  BitVec ripple_add(const BitVec& a, const BitVec& b, AigLit cin,
                    AigLit* cout = nullptr) {
    BitVec sum(a.size());
    AigLit carry = cin;
    for (std::size_t i = 0; i < a.size(); ++i) {
      auto [s, c] = full_adder(a[i], b[i], carry);
      sum[i] = s;
      carry = c;
    }
    if (cout != nullptr) *cout = carry;
    return sum;
  }

  BitVec invert(const BitVec& a) {
    BitVec r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) r[i] = inv(a[i]);
    return r;
  }

  BitVec ripple_sub(const BitVec& a, const BitVec& b, AigLit* cout = nullptr) {
    return ripple_add(a, invert(b), kAigTrue, cout);
  }

  AigLit and_reduce(const BitVec& v) {
    AigLit acc = v[0];
    for (std::size_t i = 1; i < v.size(); ++i) acc = and2(acc, v[i]);
    return acc;
  }

  BitVec widen(const BitVec& a, std::size_t w, bool sign) {
    BitVec r = a;
    const AigLit fill = sign ? a.back() : kAigFalse;
    while (r.size() < w) r.push_back(fill);
    r.resize(w);
    return r;
  }

  BitVec multiply_signed(const BitVec& a, const BitVec& b, std::size_t out_w) {
    const std::size_t aw = a.size(), bw = b.size();
    const std::size_t pw = std::min(aw + bw, out_w);
    BitVec acc(pw, kAigFalse);
    for (std::size_t i = 0; i < bw && i < pw; ++i) {
      BitVec row(pw, kAigFalse);
      for (std::size_t j = 0; j < aw && i + j < pw; ++j) row[i + j] = and2(a[j], b[i]);
      acc = ripple_add(acc, row, kAigFalse);
    }
    auto correct = [this, pw](BitVec acc_in, const BitVec& v, std::size_t shift,
                              AigLit sgn) {
      BitVec masked(pw, kAigFalse);
      for (std::size_t j = 0; j < v.size() && shift + j < pw; ++j)
        masked[shift + j] = and2(v[j], sgn);
      return ripple_sub(acc_in, masked);
    };
    acc = correct(acc, b, aw, a.back());
    acc = correct(acc, a, bw, b.back());
    return widen(acc, out_w, true);
  }

  AigLit less_unsigned(const BitVec& a, const BitVec& b) {
    AigLit cout = kAigFalse;
    (void)ripple_sub(a, b, &cout);
    return inv(cout);
  }

  BitVec blast_node(rtl::NodeId id) {
    const rtl::Node& n = d.node(id);
    const auto w = static_cast<std::size_t>(n.width);
    auto arg = [this, &n](int i) -> const BitVec& {
      return bits[static_cast<std::size_t>(n.args[static_cast<std::size_t>(i)])];
    };
    switch (n.op) {
      case rtl::Op::kConst: {
        BitVec r(w);
        for (std::size_t i = 0; i < w; ++i)
          r[i] = ((static_cast<std::uint64_t>(n.imm) >> i) & 1u) ? kAigTrue : kAigFalse;
        return r;
      }
      case rtl::Op::kInput: return vars.get(n.name, w);
      case rtl::Op::kRegQ: return flop_q[static_cast<std::size_t>(n.imm)];
      case rtl::Op::kAdd: return ripple_add(arg(0), arg(1), kAigFalse);
      case rtl::Op::kAddC: return ripple_add(arg(0), arg(1), arg(2)[0]);
      case rtl::Op::kSub: return ripple_sub(arg(0), arg(1));
      case rtl::Op::kMul: return multiply_signed(arg(0), arg(1), w);
      case rtl::Op::kAnd: case rtl::Op::kOr: case rtl::Op::kXor: {
        BitVec r(w);
        for (std::size_t i = 0; i < w; ++i)
          r[i] = n.op == rtl::Op::kAnd ? and2(arg(0)[i], arg(1)[i])
               : n.op == rtl::Op::kOr ? or2(arg(0)[i], arg(1)[i])
                                      : xor2(arg(0)[i], arg(1)[i]);
        return r;
      }
      case rtl::Op::kNot: return invert(arg(0));
      case rtl::Op::kEq: case rtl::Op::kNe: {
        BitVec eqbits(arg(0).size());
        for (std::size_t i = 0; i < eqbits.size(); ++i)
          eqbits[i] = xnor2(arg(0)[i], arg(1)[i]);
        const AigLit eq_all = and_reduce(eqbits);
        return {n.op == rtl::Op::kEq ? eq_all : inv(eq_all)};
      }
      case rtl::Op::kLtU: return {less_unsigned(arg(0), arg(1))};
      case rtl::Op::kLtS: {
        BitVec a = arg(0), b = arg(1);
        a.back() = inv(a.back());
        b.back() = inv(b.back());
        return {less_unsigned(a, b)};
      }
      case rtl::Op::kShl: {
        BitVec r(w, kAigFalse);
        for (std::size_t i = 0; i < w; ++i)
          if (i >= static_cast<std::size_t>(n.imm))
            r[i] = arg(0)[i - static_cast<std::size_t>(n.imm)];
        return r;
      }
      case rtl::Op::kShr: {
        BitVec r(w, kAigFalse);
        for (std::size_t i = 0; i + static_cast<std::size_t>(n.imm) < w; ++i)
          r[i] = arg(0)[i + static_cast<std::size_t>(n.imm)];
        return r;
      }
      case rtl::Op::kMux: {
        BitVec r(w);
        for (std::size_t i = 0; i < w; ++i) r[i] = mux2(arg(0)[0], arg(1)[i], arg(2)[i]);
        return r;
      }
      case rtl::Op::kSlice: {
        BitVec r(w);
        for (std::size_t i = 0; i < w; ++i)
          r[i] = arg(0)[i + static_cast<std::size_t>(n.imm)];
        return r;
      }
      case rtl::Op::kZext: return widen(arg(0), w, false);
      case rtl::Op::kSext: return widen(arg(0), w, true);
      case rtl::Op::kRamRead: {
        const auto mem = static_cast<std::size_t>(n.imm);
        const int port = ram_read_count[mem]++;
        const auto& m = d.memories()[mem];
        const std::string base = m.name + "_r" + std::to_string(port);
        out.outputs.emplace_back(
            base + "_addr", widen(arg(0), static_cast<std::size_t>(m.addr_bits), false));
        out.outputs.emplace_back(base + "_ren", arg(1));
        return vars.get(base + "_data", w);
      }
      case rtl::Op::kRomRead: {
        const auto rom = static_cast<std::size_t>(n.imm);
        const int port = rom_read_count[rom]++;
        const auto& r = d.roms()[rom];
        const std::string base = r.name + "_r" + std::to_string(port);
        out.outputs.emplace_back(
            base + "_addr", widen(arg(0), static_cast<std::size_t>(r.addr_bits), false));
        return vars.get(base + "_data", w);
      }
    }
    throw std::logic_error("cec: unhandled op in rtl bitblast");
  }

  void run() {
    ram_read_count.assign(d.memories().size(), 0);
    rom_read_count.assign(d.roms().size(), 0);

    flop_q.resize(d.registers().size());
    for (std::size_t r = 0; r < d.registers().size(); ++r) {
      const auto& reg = d.registers()[r];
      flop_q[r].resize(static_cast<std::size_t>(reg.width));
      for (std::size_t i = 0; i < flop_q[r].size(); ++i) {
        flop_q[r][i] = vars.get("state:" + reg.name + "_q" + std::to_string(i), 1)[0];
      }
    }

    for (std::size_t i = 0; i < d.nodes().size(); ++i)
      bits[i] = blast_node(static_cast<rtl::NodeId>(i));

    for (std::size_t r = 0; r < d.registers().size(); ++r) {
      const auto& reg = d.registers()[r];
      const BitVec& next = bits[static_cast<std::size_t>(reg.next)];
      const AigLit en = reg.enable == rtl::kNoNode
                            ? kAigTrue
                            : bits[static_cast<std::size_t>(reg.enable)][0];
      for (std::size_t i = 0; i < flop_q[r].size(); ++i) {
        AigLit dnet = next[i];
        if (reg.enable != rtl::kNoNode) dnet = mux2(en, flop_q[r][i], next[i]);
        out.outputs.emplace_back("next:" + reg.name + "_q" + std::to_string(i),
                                 BitVec{dnet});
      }
    }

    for (std::size_t m = 0; m < d.memories().size(); ++m) {
      const auto& mem = d.memories()[m];
      out.outputs.emplace_back(mem.name + "_waddr",
                               bits[static_cast<std::size_t>(mem.write_addr)]);
      out.outputs.emplace_back(mem.name + "_wdata",
                               bits[static_cast<std::size_t>(mem.write_data)]);
      out.outputs.emplace_back(mem.name + "_wen",
                               bits[static_cast<std::size_t>(mem.write_enable)]);
    }

    for (const auto& o : d.outputs())
      out.outputs.emplace_back(o.name, bits[static_cast<std::size_t>(o.node)]);
  }
};

}  // namespace

BlastedOutputs bitblast_rtl(const rtl::Design& d, Aig& aig, VarMap& vars) {
  d.validate();
  RtlBlaster b(d, aig, vars);
  b.run();
  return std::move(b.out);
}

nl::Netlist comb_view(const nl::Netlist& n) {
  nl::Netlist out(n.name() + ".comb");
  while (out.net_count() < n.net_count()) (void)out.new_net();
  for (const nl::PortBits& p : n.inputs()) out.add_input(p.name, p.nets);
  for (const nl::PortBits& p : n.outputs()) out.add_output(p.name, p.nets);

  const std::vector<std::string> keys = flop_keys(n);
  std::size_t k = 0;
  for (const nl::Cell& c : n.cells()) {
    if (nl::cell_is_sequential(c.type)) {
      out.add_input("state:" + keys[k], {c.output});
      nl::NetId next = c.inputs[0];
      if (c.type == nl::CellType::kSdff) {
        // se ? si : d, matching the pseudo-output cone in the AIG.
        next = out.add_cell(nl::CellType::kMux2,
                            {c.inputs[2], c.inputs[0], c.inputs[1]});
      }
      out.add_output("next:" + keys[k], {next});
      ++k;
    } else {
      (void)out.add_cell(c.type, c.inputs, c.init);
      out.cells_mut().back().output = c.output;
      out.cells_mut().back().name = c.name;
    }
  }
  out.validate();
  return out;
}

}  // namespace scflow::formal
