#include "flow/synthesis_flow.hpp"

#include <iomanip>
#include <sstream>

#include "hls/src_beh.hpp"
#include "netlist/lower.hpp"
#include "rtl/passes.hpp"
#include "rtl/src_design.hpp"

namespace scflow::flow {

nl::Netlist synthesize_to_gates(const rtl::Design& design, nl::GateOptStats* gate_stats) {
  rtl::PassOptions word_opts;  // constant fold + CSE + DCE for every design
  const rtl::Design optimised = rtl::run_passes(design, word_opts);
  nl::Netlist gates = nl::lower_to_gates(optimised, {});
  gates = nl::optimize_gates(gates, gate_stats);
  nl::insert_scan_chain(gates);
  gates.validate();
  return gates;
}

std::vector<AreaRow> figure10_area_rows() {
  struct Entry {
    std::string label;
    rtl::Design design;
  };
  std::vector<Entry> entries;
  entries.push_back({"VHDL-Ref", rtl::build_src_design(rtl::vhdl_ref_config())});
  entries.push_back({"BEH unopt.", hls::build_beh_src_design(hls::beh_unopt_config())});
  entries.push_back({"BEH opt.", hls::build_beh_src_design(hls::beh_opt_config())});
  entries.push_back({"RTL unopt.", rtl::build_src_design(rtl::rtl_unopt_config())});
  entries.push_back({"RTL opt.", rtl::build_src_design(rtl::rtl_opt_config())});

  std::vector<AreaRow> rows;
  for (auto& e : entries) {
    AreaRow row;
    row.name = e.label;
    const nl::Netlist gates = synthesize_to_gates(e.design);
    row.area = nl::report_area(gates);
    row.flops = row.area.flop_count;
    rows.push_back(std::move(row));
  }
  const double ref_total = rows.front().area.total();
  for (AreaRow& r : rows) {
    r.combinational_pct = 100.0 * r.area.combinational / ref_total;
    r.sequential_pct = 100.0 * r.area.sequential / ref_total;
    r.total_pct = 100.0 * r.area.total() / ref_total;
  }
  return rows;
}

std::string format_area_table(const std::vector<AreaRow>& rows) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << "Figure 10: area relative to the VHDL reference (= 100 %)\n";
  os << "(memories excluded, scan chain included)\n\n";
  os << std::left << std::setw(12) << "design" << std::right << std::setw(12)
     << "comb [um^2]" << std::setw(12) << "seq [um^2]" << std::setw(8) << "flops"
     << std::setw(10) << "comb %" << std::setw(9) << "seq %" << std::setw(10)
     << "total %" << "\n";
  for (const AreaRow& r : rows) {
    os << std::left << std::setw(12) << r.name << std::right << std::setw(12)
       << r.area.combinational << std::setw(12) << r.area.sequential << std::setw(8)
       << r.flops << std::setw(10) << r.combinational_pct << std::setw(9)
       << r.sequential_pct << std::setw(10) << r.total_pct << "\n";
  }
  return os.str();
}

}  // namespace scflow::flow
