#include "flow/synthesis_flow.hpp"

#include <iomanip>
#include <optional>
#include <sstream>

#include "hls/src_beh.hpp"
#include "netlist/lower.hpp"
#include "obs/registry.hpp"
#include "rtl/passes.hpp"
#include "rtl/src_design.hpp"

namespace scflow::flow {

namespace obs = scflow::obs;

nl::Netlist synthesize_to_gates(const rtl::Design& design, nl::GateOptStats* gate_stats,
                                obs::Registry* reg, std::string_view prefix) {
  // One optional outer scope so the per-pass timers nest as
  // "<prefix>/word_passes", "<prefix>/lower", ...
  std::optional<obs::Registry::ScopedTimer> whole;
  if (reg != nullptr) whole.emplace(reg->time_scope(std::string(prefix)));
  const auto timed = [reg](const char* step) {
    return reg == nullptr ? std::optional<obs::Registry::ScopedTimer>()
                          : std::optional<obs::Registry::ScopedTimer>(
                                reg->time_scope(step));
  };

  rtl::PassOptions word_opts;  // constant fold + CSE + DCE for every design
  rtl::Design optimised = [&] {
    const auto t = timed("word_passes");
    return rtl::run_passes(design, word_opts);
  }();
  nl::Netlist gates = [&] {
    const auto t = timed("lower");
    return nl::lower_to_gates(optimised, {});
  }();
  nl::GateOptStats local_stats;
  nl::GateOptStats* stats = gate_stats != nullptr ? gate_stats : &local_stats;
  gates = [&] {
    const auto t = timed("gate_opt");
    return nl::optimize_gates(gates, stats);
  }();
  const std::size_t scan_flops = [&] {
    const auto t = timed("scan_insertion");
    return nl::insert_scan_chain(gates);
  }();
  gates.validate();

  if (reg != nullptr) {
    const std::string p(prefix);
    stats->record_into(*reg, p + ".opt");
    reg->set_counter(p + ".scan_flops", scan_flops);
    reg->set_counter(p + ".cells", gates.cells().size());
  }
  return gates;
}

std::vector<AreaRow> figure10_area_rows(obs::Registry* reg) {
  struct Entry {
    std::string label;
    std::string slug;  // registry-friendly name
    rtl::Design design;
    std::optional<hls::Schedule> schedule;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"VHDL-Ref", "vhdl_ref", rtl::build_src_design(rtl::vhdl_ref_config()), {}});
  hls::Schedule beh_u_sched, beh_o_sched;
  entries.push_back({"BEH unopt.", "beh_unopt",
                     hls::build_beh_src_design(hls::beh_unopt_config(), &beh_u_sched),
                     beh_u_sched});
  entries.push_back({"BEH opt.", "beh_opt",
                     hls::build_beh_src_design(hls::beh_opt_config(), &beh_o_sched),
                     beh_o_sched});
  entries.push_back(
      {"RTL unopt.", "rtl_unopt", rtl::build_src_design(rtl::rtl_unopt_config()), {}});
  entries.push_back(
      {"RTL opt.", "rtl_opt", rtl::build_src_design(rtl::rtl_opt_config()), {}});

  std::vector<AreaRow> rows;
  for (auto& e : entries) {
    AreaRow row;
    row.name = e.label;
    const std::string p = "fig10." + e.slug;
    const nl::Netlist gates = synthesize_to_gates(e.design, nullptr, reg, p);
    row.area = nl::report_area(gates);
    row.flops = row.area.flop_count;
    if (reg != nullptr) {
      reg->set_gauge(p + ".comb_um2", row.area.combinational);
      reg->set_gauge(p + ".seq_um2", row.area.sequential);
      reg->set_counter(p + ".flops", row.flops);
      if (e.schedule) e.schedule->record_into(*reg, p + ".hls");
    }
    rows.push_back(std::move(row));
  }
  const double ref_total = rows.front().area.total();
  for (AreaRow& r : rows) {
    r.combinational_pct = 100.0 * r.area.combinational / ref_total;
    r.sequential_pct = 100.0 * r.area.sequential / ref_total;
    r.total_pct = 100.0 * r.area.total() / ref_total;
  }
  if (reg != nullptr) {
    for (std::size_t i = 0; i < rows.size(); ++i)
      reg->set_gauge("fig10." + entries[i].slug + ".total_pct", rows[i].total_pct);
  }
  return rows;
}

std::string format_area_table(const std::vector<AreaRow>& rows) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << "Figure 10: area relative to the VHDL reference (= 100 %)\n";
  os << "(memories excluded, scan chain included)\n\n";
  os << std::left << std::setw(12) << "design" << std::right << std::setw(12)
     << "comb [um^2]" << std::setw(12) << "seq [um^2]" << std::setw(8) << "flops"
     << std::setw(10) << "comb %" << std::setw(9) << "seq %" << std::setw(10)
     << "total %" << "\n";
  for (const AreaRow& r : rows) {
    os << std::left << std::setw(12) << r.name << std::right << std::setw(12)
       << r.area.combinational << std::setw(12) << r.area.sequential << std::setw(8)
       << r.flops << std::setw(10) << r.combinational_pct << std::setw(9)
       << r.sequential_pct << std::setw(10) << r.total_pct << "\n";
  }
  return os.str();
}

}  // namespace scflow::flow
