#include "flow/synthesis_flow.hpp"

#include <chrono>
#include <iomanip>
#include <optional>
#include <sstream>

#include "formal/cec.hpp"
#include "hls/src_beh.hpp"
#include "netlist/lower.hpp"
#include "obs/ledger.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"
#include "rtl/passes.hpp"
#include "rtl/src_design.hpp"

namespace scflow::flow {

namespace obs = scflow::obs;

nl::Netlist synthesize_to_gates(const rtl::Design& design, nl::GateOptStats* gate_stats,
                                obs::Registry* reg, std::string_view prefix,
                                const SynthesisOptions& options,
                                nl::Netlist* pre_scan_out) {
  const std::string p(prefix);
  const auto t0 = std::chrono::steady_clock::now();
  // Input identity for the run ledger: the freshly lowered (pre-opt)
  // netlist is a deterministic function of the design, so its content
  // hash keys the whole pipeline without an rtl::Design serializer.
  std::uint64_t lowered_hash = 0;
  // Snapshots of each refinement step's input, kept only when the formal
  // gate is on or the caller wants the scan-stripped twin (netlists copy
  // cheaply: three vectors of PODs + port names).
  std::optional<nl::Netlist> pre_opt, pre_scan;
  const bool keep_pre_scan = options.verify_cec || pre_scan_out != nullptr;

  nl::GateOptStats local_stats;
  nl::GateOptStats* stats = gate_stats != nullptr ? gate_stats : &local_stats;
  std::size_t scan_flops = 0;
  nl::Netlist gates = [&] {
    // One optional outer scope so the per-pass timers nest as
    // "<prefix>/word_passes", "<prefix>/lower", ...  (The CEC gates run
    // outside it so their timers land flat at "<prefix>.cec.*".)
    std::optional<obs::Registry::ScopedTimer> whole;
    if (reg != nullptr) whole.emplace(reg->time_scope(p));
    const auto timed = [reg](const char* step) {
      return reg == nullptr ? std::optional<obs::Registry::ScopedTimer>()
                            : std::optional<obs::Registry::ScopedTimer>(
                                  reg->time_scope(step));
    };

    rtl::PassOptions word_opts;  // constant fold + CSE + DCE for every design
    rtl::Design optimised = [&] {
      const auto t = timed("word_passes");
      return rtl::run_passes(design, word_opts);
    }();
    nl::Netlist g = [&] {
      const auto t = timed("lower");
      return nl::lower_to_gates(optimised, {});
    }();
    lowered_hash = nl::content_hash(g);
    if (options.verify_cec) pre_opt = g;
    g = [&] {
      const auto t = timed("gate_opt");
      return nl::optimize_gates(g, stats);
    }();
    if (keep_pre_scan) pre_scan = g;
    scan_flops = [&] {
      const auto t = timed("scan_insertion");
      return nl::insert_scan_chain(g);
    }();
    g.validate();
    return g;
  }();

  if (reg != nullptr) {
    stats->record_into(*reg, p + ".opt");
    reg->set_counter(p + ".scan_flops", scan_flops);
    reg->set_counter(p + ".cells", gates.cells().size());
    if (obs::Ledger* ledger = reg->ledger(); ledger != nullptr) {
      obs::Fnv1a opt_h;
      opt_h.update_str("synthesis-options-v1");
      opt_h.update_u64(options.verify_cec ? 1 : 0);
      obs::LedgerEntry entry;
      entry.phase = "synth";
      entry.design = p;
      entry.input_hash = lowered_hash;
      entry.options_fingerprint = opt_h.digest();
      entry.duration_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      entry.add_counter("cells_before", stats->cells_before);
      entry.add_counter("cells_after", stats->cells_after);
      entry.add_counter("rewrites", stats->rewrites);
      entry.add_counter("iterations", static_cast<std::uint64_t>(stats->iterations));
      entry.add_counter("scan_flops", scan_flops);
      entry.add_counter("cells", gates.cells().size());
      entry.add_counter("output_hash", nl::content_hash(gates));
      ledger->append(std::move(entry));
    }
  }

  if (options.verify_cec) {
    // Formal gate on each refinement step: throws EquivalenceError (with
    // the counterexample dumped as VCD) if a pass changed behaviour.
    const std::string fail_vcd = p + ".cec_fail.vcd";
    formal::CecOptions opt_check;
    opt_check.metric_prefix = p + ".cec.opt";
    formal::assert_equivalent(*pre_opt, *pre_scan, reg, opt_check, fail_vcd);
    formal::CecOptions scan_check = formal::CecOptions::scan_modulo();
    scan_check.metric_prefix = p + ".cec.scan";
    formal::assert_equivalent(*pre_scan, gates, reg, scan_check, fail_vcd);
  }
  if (pre_scan_out != nullptr) *pre_scan_out = std::move(*pre_scan);
  return gates;
}

std::vector<AreaRow> figure10_area_rows(obs::Registry* reg,
                                        const SynthesisOptions& options,
                                        const FaultOptions& fault_options) {
  struct Entry {
    std::string label;
    std::string slug;  // registry-friendly name
    rtl::Design design;
    std::optional<hls::Schedule> schedule;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"VHDL-Ref", "vhdl_ref", rtl::build_src_design(rtl::vhdl_ref_config()), {}});
  hls::Schedule beh_u_sched, beh_o_sched;
  entries.push_back({"BEH unopt.", "beh_unopt",
                     hls::build_beh_src_design(hls::beh_unopt_config(), &beh_u_sched),
                     beh_u_sched});
  entries.push_back({"BEH opt.", "beh_opt",
                     hls::build_beh_src_design(hls::beh_opt_config(), &beh_o_sched),
                     beh_o_sched});
  entries.push_back(
      {"RTL unopt.", "rtl_unopt", rtl::build_src_design(rtl::rtl_unopt_config()), {}});
  entries.push_back(
      {"RTL opt.", "rtl_opt", rtl::build_src_design(rtl::rtl_opt_config()), {}});

  std::vector<AreaRow> rows;
  for (auto& e : entries) {
    AreaRow row;
    row.name = e.label;
    const std::string p = "fig10." + e.slug;
    nl::Netlist pre_scan("");
    const nl::Netlist gates =
        synthesize_to_gates(e.design, nullptr, reg, p, options,
                            fault_options.run ? &pre_scan : nullptr);
    row.area = nl::report_area(gates);
    row.flops = row.area.flop_count;
    if (reg != nullptr) {
      reg->set_gauge(p + ".comb_um2", row.area.combinational);
      reg->set_gauge(p + ".seq_um2", row.area.sequential);
      reg->set_counter(p + ".flops", row.flops);
      if (e.schedule) e.schedule->record_into(*reg, p + ".hls");
    }
    if (fault_options.run) {
      // One fault universe per design, enumerated on the pre-scan netlist
      // (scan insertion preserves net ids, so the same list is valid on
      // both variants) — the scan/no-scan coverage delta is then an
      // apples-to-apples testability measurement.
      fault::FaultListStats stats;
      std::vector<fault::Fault> list = fault::enumerate_stuck_faults(pre_scan, &stats);
      const std::size_t population = list.size();
      list = fault::sample_faults(list, fault_options.campaign.max_faults);

      fault::CampaignOptions co = fault_options.campaign;
      const auto fault_t0 = std::chrono::steady_clock::now();
      co.use_scan = true;
      co.metric_prefix = "fault." + e.slug + ".scan";
      fault::CampaignResult with_scan =
          fault::run_campaign(gates, list, co, fault_options.session);
      co.use_scan = false;
      co.metric_prefix = "fault." + e.slug + ".noscan";
      fault::CampaignResult no_scan =
          fault::run_campaign(pre_scan, list, co, fault_options.session);
      row.fault_wall_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - fault_t0)
              .count());
      for (fault::CampaignResult* r : {&with_scan, &no_scan}) {
        r->list = stats;
        r->population = population;
      }
      row.scan_coverage_pct = with_scan.coverage_pct();
      row.noscan_coverage_pct = no_scan.coverage_pct();
      row.fault_population = population;
      row.faults_simulated = list.size();
      if (reg != nullptr) {
        with_scan.record_into(*reg, "fault." + e.slug + ".scan");
        no_scan.record_into(*reg, "fault." + e.slug + ".noscan");
      }
    }
    rows.push_back(std::move(row));
  }
  const double ref_total = rows.front().area.total();
  for (AreaRow& r : rows) {
    r.combinational_pct = 100.0 * r.area.combinational / ref_total;
    r.sequential_pct = 100.0 * r.area.sequential / ref_total;
    r.total_pct = 100.0 * r.area.total() / ref_total;
  }
  if (reg != nullptr) {
    for (std::size_t i = 0; i < rows.size(); ++i)
      reg->set_gauge("fig10." + entries[i].slug + ".total_pct", rows[i].total_pct);
  }
  return rows;
}

std::string format_area_table(const std::vector<AreaRow>& rows) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << "Figure 10: area relative to the VHDL reference (= 100 %)\n";
  os << "(memories excluded, scan chain included)\n\n";
  os << std::left << std::setw(12) << "design" << std::right << std::setw(12)
     << "comb [um^2]" << std::setw(12) << "seq [um^2]" << std::setw(8) << "flops"
     << std::setw(10) << "comb %" << std::setw(9) << "seq %" << std::setw(10)
     << "total %" << "\n";
  for (const AreaRow& r : rows) {
    os << std::left << std::setw(12) << r.name << std::right << std::setw(12)
       << r.area.combinational << std::setw(12) << r.area.sequential << std::setw(8)
       << r.flops << std::setw(10) << r.combinational_pct << std::setw(9)
       << r.sequential_pct << std::setw(10) << r.total_pct << "\n";
  }
  return os.str();
}

std::string format_fault_table(const std::vector<AreaRow>& rows) {
  bool any = false;
  for (const AreaRow& r : rows) any = any || r.scan_coverage_pct >= 0.0;
  if (!any) return "";
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << "Stuck-at coverage: scan-inserted endpoint vs pre-scan twin\n";
  os << "(shared collapsed fault list per design; sampled when capped)\n\n";
  os << std::left << std::setw(12) << "design" << std::right << std::setw(12)
     << "population" << std::setw(11) << "simulated" << std::setw(10) << "scan %"
     << std::setw(11) << "noscan %" << std::setw(10) << "delta" << "\n";
  for (const AreaRow& r : rows) {
    if (r.scan_coverage_pct < 0.0) continue;
    os << std::left << std::setw(12) << r.name << std::right << std::setw(12)
       << r.fault_population << std::setw(11) << r.faults_simulated << std::setw(10)
       << r.scan_coverage_pct << std::setw(11) << r.noscan_coverage_pct
       << std::setw(10) << r.scan_coverage_pct - r.noscan_coverage_pct << "\n";
  }
  return os.str();
}

}  // namespace scflow::flow
