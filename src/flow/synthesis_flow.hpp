// The synthesis flow driver: takes each SRC architecture through
// word-level optimisation, bit-blasting, gate optimisation and scan
// insertion, and produces the Fig. 10 area comparison (relative to the
// VHDL reference = 100 %, memories excluded, scan included).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/opt.hpp"
#include "rtl/ir.hpp"

namespace scflow::obs {
class Registry;
}

namespace scflow::flow {

struct SynthesisOptions {
  /// Formally verify every netlist refinement step: gate optimisation is
  /// CEC'd against its input netlist, scan insertion against the pre-scan
  /// netlist (modulo scan ports).  A failed check throws
  /// formal::EquivalenceError with the counterexample dumped to
  /// "<prefix>.cec_fail.vcd".
  bool verify_cec = false;
};

/// Complete gate-level synthesis of one design (the "SystemC Compiler +
/// Design Compiler" pipeline of the paper).  With @p reg, every pass is
/// timed (scoped under "<prefix>") and its stats are recorded:
/// "<prefix>.opt.cells_before/.cells_after/.rewrites/.iterations",
/// "<prefix>.scan_flops", "<prefix>.cells" — the per-pass evidence behind
/// the Fig. 10 deltas.  With options.verify_cec, equivalence-check stats
/// land under "<prefix>.cec.opt.*" and "<prefix>.cec.scan.*".
nl::Netlist synthesize_to_gates(const rtl::Design& design,
                                nl::GateOptStats* gate_stats = nullptr,
                                scflow::obs::Registry* reg = nullptr,
                                std::string_view prefix = "synth",
                                const SynthesisOptions& options = {});

struct AreaRow {
  std::string name;
  nl::AreaReport area;
  double combinational_pct = 0.0;  ///< relative to the reference total
  double sequential_pct = 0.0;
  double total_pct = 0.0;
  std::size_t flops = 0;
};

/// All Fig. 10 designs: the VHDL reference, behavioural unopt/opt (through
/// the hls flow) and RTL unopt/opt — synthesised and normalised to the
/// reference's total area.  With @p reg, per-design synthesis pass stats,
/// hls scheduling stats (for the behavioural designs) and area results are
/// recorded under "fig10.<design>.*".
std::vector<AreaRow> figure10_area_rows(scflow::obs::Registry* reg = nullptr,
                                        const SynthesisOptions& options = {});

/// Formats the rows as the paper-style table.
std::string format_area_table(const std::vector<AreaRow>& rows);

}  // namespace scflow::flow
