// The synthesis flow driver: takes each SRC architecture through
// word-level optimisation, bit-blasting, gate optimisation and scan
// insertion, and produces the Fig. 10 area comparison (relative to the
// VHDL reference = 100 %, memories excluded, scan included).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fault/campaign.hpp"
#include "netlist/netlist.hpp"
#include "netlist/opt.hpp"
#include "rtl/ir.hpp"

namespace scflow::obs {
class Registry;
}

namespace scflow::flow {

struct SynthesisOptions {
  /// Formally verify every netlist refinement step: gate optimisation is
  /// CEC'd against its input netlist, scan insertion against the pre-scan
  /// netlist (modulo scan ports).  A failed check throws
  /// formal::EquivalenceError with the counterexample dumped to
  /// "<prefix>.cec_fail.vcd".
  bool verify_cec = false;
};

/// Complete gate-level synthesis of one design (the "SystemC Compiler +
/// Design Compiler" pipeline of the paper).  With @p reg, every pass is
/// timed (scoped under "<prefix>") and its stats are recorded:
/// "<prefix>.opt.cells_before/.cells_after/.rewrites/.iterations",
/// "<prefix>.scan_flops", "<prefix>.cells" — the per-pass evidence behind
/// the Fig. 10 deltas.  With options.verify_cec, equivalence-check stats
/// land under "<prefix>.cec.opt.*" and "<prefix>.cec.scan.*".  With
/// @p pre_scan_out, the optimised netlist *before* scan insertion is also
/// returned — the scan-stripped twin the testability comparison runs
/// against (scan insertion preserves net ids, so one fault list covers
/// both variants).
nl::Netlist synthesize_to_gates(const rtl::Design& design,
                                nl::GateOptStats* gate_stats = nullptr,
                                scflow::obs::Registry* reg = nullptr,
                                std::string_view prefix = "synth",
                                const SynthesisOptions& options = {},
                                nl::Netlist* pre_scan_out = nullptr);

/// Per-design stuck-at campaigns riding along with the Fig. 10 synthesis:
/// one shared (collapsed, sampled) fault list per design, simulated once
/// against the scan-inserted endpoint with scan patterns driven and once
/// against the pre-scan twin — the coverage delta is what scan insertion
/// buys in testability.  Metrics land under "fault.<design>.scan.*" and
/// "fault.<design>.noscan.*".
struct FaultOptions {
  bool run = false;  ///< run the campaigns (they cost simulation time)
  fault::CampaignOptions campaign;
  /// Routed into every run_campaign call: batch spans, the per-fault
  /// cycle histograms and one run-ledger entry per campaign land here
  /// (campaign counters still go to the @p reg the caller passed).
  obs::Session* session = nullptr;
  FaultOptions() { campaign.max_faults = 120; }
};

struct AreaRow {
  std::string name;
  nl::AreaReport area;
  double combinational_pct = 0.0;  ///< relative to the reference total
  double sequential_pct = 0.0;
  double total_pct = 0.0;
  std::size_t flops = 0;

  // Filled only when FaultOptions::run was set (-1 = campaign not run).
  double scan_coverage_pct = -1.0;    ///< stuck-at coverage, scan driven
  double noscan_coverage_pct = -1.0;  ///< same fault list, pre-scan netlist
  std::size_t fault_population = 0;   ///< collapsed list size before sampling
  std::size_t faults_simulated = 0;   ///< per campaign (scan and noscan each)
  /// Wall time of the scan+noscan campaign pair — the denominator of
  /// bench_fault's faults_per_s trajectory metric.
  std::uint64_t fault_wall_ns = 0;
};

/// All Fig. 10 designs: the VHDL reference, behavioural unopt/opt (through
/// the hls flow) and RTL unopt/opt — synthesised and normalised to the
/// reference's total area.  With @p reg, per-design synthesis pass stats,
/// hls scheduling stats (for the behavioural designs) and area results are
/// recorded under "fig10.<design>.*".  With fault_options.run, each design
/// additionally gets the scan-vs-noscan stuck-at campaign pair.
std::vector<AreaRow> figure10_area_rows(scflow::obs::Registry* reg = nullptr,
                                        const SynthesisOptions& options = {},
                                        const FaultOptions& fault_options = {});

/// Formats the rows as the paper-style table.
std::string format_area_table(const std::vector<AreaRow>& rows);

/// Formats the testability columns (scan vs no-scan stuck-at coverage);
/// empty string when no row carries campaign results.
std::string format_fault_table(const std::vector<AreaRow>& rows);

}  // namespace scflow::flow
