// The refinement-flow driver (paper Fig. 1): runs every abstraction level
// over one stimulus, re-validates each refinement step for bit accuracy
// (the paper's methodology), and reports the per-level results — including
// the continuous->quantised step (Fig. 7) which is the only value-changing
// transition in the chain.
#pragma once

#include <string>
#include <vector>

#include "core/run.hpp"
#include "obs/session.hpp"

namespace scflow::flow {

struct RefinementStep {
  std::string from;
  std::string to;
  bool bit_accurate = false;
  std::size_t outputs_compared = 0;
  std::size_t mismatches = 0;  ///< >0 only for the time-quantisation step
};

struct RefinementReport {
  std::vector<RefinementStep> steps;
  std::vector<std::pair<std::string, model::RunResult>> level_results;
  [[nodiscard]] bool all_steps_verified() const;
};

/// Runs the chain on @p samples of stereo tone stimulus in @p mode.
///
/// With @p session, the flow becomes observable: every level run and every
/// bit-accuracy revalidation is timed (trace slices on the session's
/// timeline, loadable in chrome://tracing / Perfetto), each level's kernel
/// statistics land in the registry under "level.<name>.*" (activations,
/// context_switches, delta_cycles, ...), per-process activation counts
/// under "process.<name>.activations", and revalidation outcomes under
/// "verify.*".  Dump with session.dump("report.json", "trace.json").
RefinementReport run_refinement_flow(dsp::SrcMode mode, std::size_t samples,
                                     obs::Session* session = nullptr);

std::string format_refinement_report(const RefinementReport& report);

}  // namespace scflow::flow
