#include "flow/refinement_flow.hpp"

#include <chrono>
#include <iomanip>
#include <optional>
#include <sstream>

#include "dsp/stimulus.hpp"

namespace scflow::flow {

using model::RefinementLevel;
using model::RunOptions;
using model::RunResult;
using P = dsp::SrcParams;

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

RefinementStep compare(const std::string& from, const std::string& to,
                       const RunResult& a, const RunResult& b) {
  RefinementStep s;
  s.from = from;
  s.to = to;
  s.outputs_compared = std::min(a.outputs.size(), b.outputs.size());
  for (std::size_t i = 0; i < s.outputs_compared; ++i)
    if (a.outputs[i] != b.outputs[i]) ++s.mismatches;
  s.bit_accurate = s.mismatches == 0 && a.outputs.size() == b.outputs.size();
  return s;
}

}  // namespace

bool RefinementReport::all_steps_verified() const {
  for (const auto& s : steps) {
    // The quantisation step is *expected* to differ; every other step must
    // be bit-accurate.
    const bool is_quantisation = s.to == "C++ (quantised time)";
    if (!is_quantisation && !s.bit_accurate) return false;
  }
  return true;
}

RefinementReport run_refinement_flow(dsp::SrcMode mode, std::size_t samples,
                                     obs::Session* session) {
  const double in_rate = 1e12 / static_cast<double>(P::input_period_ps(mode));
  const auto inputs = dsp::make_sine_stimulus(samples, 1000.0, in_rate);
  const auto events = dsp::make_schedule(inputs, P::input_period_ps(mode), samples,
                                         P::output_period_ps(mode));

  RefinementReport rep;
  obs::Registry* reg = session != nullptr ? &session->registry : nullptr;
  if (reg != nullptr) {
    reg->set_gauge("flow.samples", static_cast<double>(samples));
    reg->set_gauge("flow.events", static_cast<double>(events.size()));
  }
  // Stimulus identity shared by every ledger entry of this flow run.
  obs::Fnv1a stim_h;
  stim_h.update_str("refinement-flow-stimulus-v1");
  stim_h.update_u64(static_cast<std::uint64_t>(mode));
  stim_h.update_u64(samples);
  stim_h.update_u64(events.size());
  const std::uint64_t stimulus_hash = stim_h.digest();
  // Runs one level, timed as a "level:<slug>" trace slice, and records its
  // kernel statistics plus per-process activation attribution and one run
  // ledger entry.
  auto run = [&](RefinementLevel level, const char* tag = nullptr,
                 const RunOptions& opt = {}) {
    const std::string slug = tag != nullptr ? tag : model::level_slug(level);
    std::optional<obs::Registry::ScopedTimer> t;
    if (reg != nullptr) t.emplace(reg->time_scope("level:" + slug));
    const std::uint64_t t0 = steady_ns();
    auto r = model::run_level(level, mode, events, opt);
    if (reg != nullptr) {
      minisc::record_stats(*reg, "level." + slug, r.stats);
      reg->set_counter("level." + slug + ".simulated_cycles", r.simulated_cycles);
      reg->set_counter("level." + slug + ".outputs", r.outputs.size());
      for (const auto& [proc, n] : r.process_activations)
        reg->set_counter("process." + slug + "." + proc + ".activations", n);
      if (session != nullptr) {
        session->trace.counter_event("activations", session->trace.now_ns(),
                                     static_cast<double>(r.stats.process_activations));
        obs::Fnv1a opt_h;
        opt_h.update_str("run-options-v1");
        opt_h.update_u64(opt.inject_corner_bug ? 1 : 0);
        opt_h.update_u64(opt.check_ram ? 1 : 0);
        opt_h.update_u64(opt.quantized_time ? 1 : 0);
        obs::LedgerEntry e;
        e.phase = "flow.level";
        e.design = slug;
        e.input_hash = stimulus_hash;
        e.options_fingerprint = opt_h.digest();
        e.duration_ns = steady_ns() - t0;
        e.add_counter("simulated_cycles", r.simulated_cycles);
        e.add_counter("outputs", r.outputs.size());
        e.add_counter("delta_cycles", r.stats.delta_cycles);
        e.add_counter("timed_steps", r.stats.timed_steps);
        e.add_counter("process_activations", r.stats.process_activations);
        e.add_counter("context_switches", r.stats.context_switches);
        e.add_counter("method_invocations", r.stats.method_invocations);
        e.add_counter("signal_updates", r.stats.signal_updates);
        e.add_counter("events_notified", r.stats.events_notified);
        e.add_counter("events_fired", r.stats.events_fired);
        session->ledger.append(std::move(e));
      }
    }
    return r;
  };
  // Revalidates one refinement step, timed as a "verify:..." trace slice.
  auto check = [&](const std::string& from, const std::string& to, const RunResult& a,
                   const RunResult& b) {
    std::optional<obs::Registry::ScopedTimer> t;
    if (reg != nullptr) t.emplace(reg->time_scope("verify:" + from + " -> " + to));
    const std::uint64_t t0 = steady_ns();
    RefinementStep s = compare(from, to, a, b);
    if (reg != nullptr) {
      reg->count("verify.steps");
      reg->count("verify.outputs_compared", s.outputs_compared);
      reg->count("verify.mismatches", s.mismatches);
    }
    if (session != nullptr) {
      obs::LedgerEntry e;
      e.phase = "flow.verify";
      e.design = from + " -> " + to;
      e.input_hash = stimulus_hash;
      e.duration_ns = steady_ns() - t0;
      e.add_counter("outputs_compared", s.outputs_compared);
      e.add_counter("mismatches", s.mismatches);
      e.add_counter("bit_accurate", s.bit_accurate ? 1 : 0);
      session->ledger.append(std::move(e));
    }
    rep.steps.push_back(std::move(s));
  };
  RunOptions quantised;
  quantised.quantized_time = true;

  const auto cpp = run(RefinementLevel::kAlgorithmicCpp);
  const auto chan = run(RefinementLevel::kChannelSystemC);
  const auto cpp_q = run(RefinementLevel::kAlgorithmicCpp, "cpp_quantised", quantised);
  const auto beh_u = run(RefinementLevel::kBehUnopt);
  const auto beh_o = run(RefinementLevel::kBehOpt);
  const auto rtl_u = run(RefinementLevel::kRtlUnopt);
  const auto rtl_o = run(RefinementLevel::kRtlOpt);

  check("C++ (algorithmic)", "SystemC (channels)", cpp, chan);
  check("C++ (algorithmic)", "C++ (quantised time)", cpp, cpp_q);
  check("C++ (quantised time)", "Behavioural (unopt)", cpp_q, beh_u);
  check("Behavioural (unopt)", "Behavioural (opt)", beh_u, beh_o);
  check("Behavioural (opt)", "RTL (unopt)", beh_o, rtl_u);
  check("RTL (unopt)", "RTL (opt)", rtl_u, rtl_o);

  rep.level_results.emplace_back("C++ (algorithmic)", cpp);
  rep.level_results.emplace_back("SystemC (channels)", chan);
  rep.level_results.emplace_back("Behavioural (unopt)", beh_u);
  rep.level_results.emplace_back("Behavioural (opt)", beh_o);
  rep.level_results.emplace_back("RTL (unopt)", rtl_u);
  rep.level_results.emplace_back("RTL (opt)", rtl_o);
  return rep;
}

std::string format_refinement_report(const RefinementReport& report) {
  std::ostringstream os;
  os << "Refinement chain revalidation (paper Fig. 1 methodology)\n\n";
  for (const auto& s : report.steps) {
    os << "  " << std::left << std::setw(22) << s.from << " -> " << std::setw(22)
       << s.to;
    if (s.bit_accurate) {
      os << " bit-accurate over " << s.outputs_compared << " outputs\n";
    } else {
      os << " " << s.mismatches << "/" << s.outputs_compared
         << " outputs differ (time quantisation, paper Fig. 7)\n";
    }
  }
  os << "\n  chain verified: " << (report.all_steps_verified() ? "yes" : "NO") << "\n";
  return os.str();
}

}  // namespace scflow::flow
