#include "flow/refinement_flow.hpp"

#include <iomanip>
#include <optional>
#include <sstream>

#include "dsp/stimulus.hpp"

namespace scflow::flow {

using model::RefinementLevel;
using model::RunOptions;
using model::RunResult;
using P = dsp::SrcParams;

namespace {

RefinementStep compare(const std::string& from, const std::string& to,
                       const RunResult& a, const RunResult& b) {
  RefinementStep s;
  s.from = from;
  s.to = to;
  s.outputs_compared = std::min(a.outputs.size(), b.outputs.size());
  for (std::size_t i = 0; i < s.outputs_compared; ++i)
    if (a.outputs[i] != b.outputs[i]) ++s.mismatches;
  s.bit_accurate = s.mismatches == 0 && a.outputs.size() == b.outputs.size();
  return s;
}

}  // namespace

bool RefinementReport::all_steps_verified() const {
  for (const auto& s : steps) {
    // The quantisation step is *expected* to differ; every other step must
    // be bit-accurate.
    const bool is_quantisation = s.to == "C++ (quantised time)";
    if (!is_quantisation && !s.bit_accurate) return false;
  }
  return true;
}

RefinementReport run_refinement_flow(dsp::SrcMode mode, std::size_t samples,
                                     obs::Session* session) {
  const double in_rate = 1e12 / static_cast<double>(P::input_period_ps(mode));
  const auto inputs = dsp::make_sine_stimulus(samples, 1000.0, in_rate);
  const auto events = dsp::make_schedule(inputs, P::input_period_ps(mode), samples,
                                         P::output_period_ps(mode));

  RefinementReport rep;
  obs::Registry* reg = session != nullptr ? &session->registry : nullptr;
  if (reg != nullptr) {
    reg->set_gauge("flow.samples", static_cast<double>(samples));
    reg->set_gauge("flow.events", static_cast<double>(events.size()));
  }
  // Runs one level, timed as a "level:<slug>" trace slice, and records its
  // kernel statistics plus per-process activation attribution.
  auto run = [&](RefinementLevel level, const char* tag = nullptr,
                 const RunOptions& opt = {}) {
    const std::string slug = tag != nullptr ? tag : model::level_slug(level);
    std::optional<obs::Registry::ScopedTimer> t;
    if (reg != nullptr) t.emplace(reg->time_scope("level:" + slug));
    auto r = model::run_level(level, mode, events, opt);
    if (reg != nullptr) {
      minisc::record_stats(*reg, "level." + slug, r.stats);
      reg->set_counter("level." + slug + ".simulated_cycles", r.simulated_cycles);
      reg->set_counter("level." + slug + ".outputs", r.outputs.size());
      for (const auto& [proc, n] : r.process_activations)
        reg->set_counter("process." + slug + "." + proc + ".activations", n);
      if (session != nullptr)
        session->trace.counter_event("activations", session->trace.now_ns(),
                                     static_cast<double>(r.stats.process_activations));
    }
    return r;
  };
  // Revalidates one refinement step, timed as a "verify:..." trace slice.
  auto check = [&](const std::string& from, const std::string& to, const RunResult& a,
                   const RunResult& b) {
    std::optional<obs::Registry::ScopedTimer> t;
    if (reg != nullptr) t.emplace(reg->time_scope("verify:" + from + " -> " + to));
    RefinementStep s = compare(from, to, a, b);
    if (reg != nullptr) {
      reg->count("verify.steps");
      reg->count("verify.outputs_compared", s.outputs_compared);
      reg->count("verify.mismatches", s.mismatches);
    }
    rep.steps.push_back(std::move(s));
  };
  RunOptions quantised;
  quantised.quantized_time = true;

  const auto cpp = run(RefinementLevel::kAlgorithmicCpp);
  const auto chan = run(RefinementLevel::kChannelSystemC);
  const auto cpp_q = run(RefinementLevel::kAlgorithmicCpp, "cpp_quantised", quantised);
  const auto beh_u = run(RefinementLevel::kBehUnopt);
  const auto beh_o = run(RefinementLevel::kBehOpt);
  const auto rtl_u = run(RefinementLevel::kRtlUnopt);
  const auto rtl_o = run(RefinementLevel::kRtlOpt);

  check("C++ (algorithmic)", "SystemC (channels)", cpp, chan);
  check("C++ (algorithmic)", "C++ (quantised time)", cpp, cpp_q);
  check("C++ (quantised time)", "Behavioural (unopt)", cpp_q, beh_u);
  check("Behavioural (unopt)", "Behavioural (opt)", beh_u, beh_o);
  check("Behavioural (opt)", "RTL (unopt)", beh_o, rtl_u);
  check("RTL (unopt)", "RTL (opt)", rtl_u, rtl_o);

  rep.level_results.emplace_back("C++ (algorithmic)", cpp);
  rep.level_results.emplace_back("SystemC (channels)", chan);
  rep.level_results.emplace_back("Behavioural (unopt)", beh_u);
  rep.level_results.emplace_back("Behavioural (opt)", beh_o);
  rep.level_results.emplace_back("RTL (unopt)", rtl_u);
  rep.level_results.emplace_back("RTL (opt)", rtl_o);
  return rep;
}

std::string format_refinement_report(const RefinementReport& report) {
  std::ostringstream os;
  os << "Refinement chain revalidation (paper Fig. 1 methodology)\n\n";
  for (const auto& s : report.steps) {
    os << "  " << std::left << std::setw(22) << s.from << " -> " << std::setw(22)
       << s.to;
    if (s.bit_accurate) {
      os << " bit-accurate over " << s.outputs_compared << " outputs\n";
    } else {
      os << " " << s.mismatches << "/" << s.outputs_compared
         << " outputs differ (time quantisation, paper Fig. 7)\n";
    }
  }
  os << "\n  chain verified: " << (report.all_steps_verified() ? "yes" : "NO") << "\n";
  return os.str();
}

}  // namespace scflow::flow
