// Synchronisation event, the minisc analogue of sc_event.
//
// Supports the three SystemC notification flavours: immediate (same
// evaluate phase), delta (next delta cycle) and timed.  Threads wait on
// events dynamically (one-shot); method processes and clocked threads are
// sensitised statically (persistent).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/time.hpp"

namespace minisc {

class Simulation;
class ProcessBase;
class ThreadProcess;

class Event {
 public:
  explicit Event(Simulation& sim, std::string name = "event");
  ~Event();

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  /// Immediate notification: waiting processes become runnable within the
  /// current evaluate phase.
  void notify();
  /// Delta notification: waiting processes run in the next delta cycle.
  void notify_delta();
  /// Timed notification after @p delay.  A later notify overrides an
  /// earlier pending one only if it is sooner (SystemC semantics are
  /// simplified here to: the most recent call wins).
  void notify(Time delay);
  /// Cancels any pending delta/timed notification.
  void cancel();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulation& sim() const { return *sim_; }

  // --- kernel-internal ---
  /// Registers a thread as a one-shot dynamic waiter with its current wait
  /// generation (stale registrations are skipped at fire time).
  void add_dynamic_waiter(ThreadProcess& p, std::uint64_t generation);
  /// Adds a persistent, statically-sensitive process.
  void add_static_waiter(ProcessBase& p);
  /// Wakes waiters: called by the kernel when the notification matures.
  void fire();
  /// Membership flag for the kernel's delta-notification queue, so
  /// duplicate notify_delta() calls are deduplicated in O(1) instead of a
  /// linear scan of the queue.  Owned by Simulation.
  bool in_delta_queue = false;

 private:
  struct DynWaiter {
    ThreadProcess* process;
    std::uint64_t generation;
  };

  Simulation* sim_;
  std::string name_;
  std::vector<DynWaiter> dynamic_waiters_;
  std::vector<ProcessBase*> static_waiters_;
  std::uint64_t pending_generation_ = 0;  // bumped by cancel()/notify()
};

}  // namespace minisc
