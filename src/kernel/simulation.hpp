// The minisc discrete-event scheduler (analogue of the SystemC simulation
// kernel): evaluate / update / delta-notify / timed-notify phases.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <string_view>
#include <ucontext.h>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kernel/process.hpp"
#include "kernel/time.hpp"
#include "obs/probe.hpp"

namespace scflow::obs {
class Registry;
}

namespace minisc {

class Event;
class Object;
class PortBase;
class SignalUpdateIF;

/// Statistics the benchmarks report (cycles/s needs activation counts to be
/// meaningful across abstraction levels).  Collected while the kernel's
/// instrumentation probe is enabled (the default); see
/// Simulation::set_instrumentation.
struct SimulationStats {
  std::uint64_t delta_cycles = 0;
  std::uint64_t timed_steps = 0;          ///< distinct simulated instants
  std::uint64_t process_activations = 0;  ///< evaluate-phase dispatches
  std::uint64_t context_switches = 0;     ///< fiber swaps (threads only)
  std::uint64_t method_invocations = 0;   ///< activations of method processes
  std::uint64_t signal_updates = 0;       ///< update-phase apply calls
  std::uint64_t events_notified = 0;      ///< notify()/notify_delta()/notify(t)
  std::uint64_t events_fired = 0;         ///< matured notifications (fire())
};

/// Records every SimulationStats field into @p reg as
/// "<prefix>.delta_cycles", "<prefix>.activations", ... — the one place
/// that maps kernel counters to the unified report schema.
void record_stats(scflow::obs::Registry& reg, std::string_view prefix,
                  const SimulationStats& s);

/// One independent simulation context: owns the object registry, the
/// runnable/update/delta/timed queues and the scheduler loop.
class Simulation {
 public:
  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // --- user API ---
  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const SimulationStats& stats() const { return stats_; }
  [[nodiscard]] bool finished() const { return finished_; }

  /// Elaborates (checks port binding) on first use, then runs until there
  /// is no activity left or stop() was called.
  void run();
  /// Runs until simulated time would exceed @p until (events at == until
  /// are executed).
  void run_until(Time until);
  /// Requests the simulation to stop; takes effect at the next phase
  /// boundary.  Callable from inside processes.
  void stop() { stop_requested_ = true; }

  /// Process creation.  The returned pointers stay owned by the kernel.
  ThreadProcess& create_thread(Object* parent, std::string name, std::function<void()> body);
  MethodProcess& create_method(Object* parent, std::string name, std::function<void()> body);

  // --- wait primitives (called from a running thread) ---
  void wait_static();                         ///< wait() on static sensitivity
  void wait_event(Event& e);                  ///< wait(e)
  void wait_any(std::initializer_list<Event*> events);  ///< wait(e1 | e2)
  void wait_time(Time delay);                 ///< wait(10ns)

  [[nodiscard]] ThreadProcess* current_thread() const { return current_thread_; }

  // --- kernel-internal (used by Event/Signal/Object) ---
  void register_object(Object& o);
  void unregister_object(Object& o);
  void register_port(PortBase& p);
  [[nodiscard]] Object* find_object(const std::string& full_name) const;

  void make_runnable(ProcessBase& p);
  /// Queues a signal for the next update phase (once per delta).
  void request_update(SignalUpdateIF& s);
  /// Queues an event to fire in the delta-notification phase.
  void schedule_delta_fire(Event& e);
  /// Schedules a callback at absolute time @p t.
  void schedule_at(Time t, std::function<void()> fn);

  /// Turns kernel statistics collection on (default) or off.  Off mode
  /// makes every note_*() a no-op-cost add-of-zero — the scheduler runs
  /// identically, it just stops counting (stats keep their last values).
  void set_instrumentation(bool on) { probe_.set_enabled(on); }
  [[nodiscard]] bool instrumentation_enabled() const { return probe_.enabled(); }

  /// Per-process activation counts (full process name -> activations),
  /// for attributing the Fig. 8 activation load to individual processes.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  process_activations() const;

  ucontext_t* scheduler_context() { return &scheduler_context_; }
  void note_context_switch() { probe_.hit(stats_.context_switches); }
  void note_signal_update() { probe_.hit(stats_.signal_updates); }
  void note_event_notified() { probe_.hit(stats_.events_notified); }
  void note_event_fired() { probe_.hit(stats_.events_fired); }

  /// Delta-cycle limit without time advance, to catch oscillating
  /// zero-delay loops.  Throws std::runtime_error when exceeded.
  void set_max_delta_cycles(std::uint64_t n) { max_delta_cycles_ = n; }

 private:
  struct TimedEntry {
    Time at;
    std::uint64_t seq;  // tie-break for determinism
    std::function<void()> fn;
    bool operator>(const TimedEntry& o) const {
      return at > o.at || (at == o.at && seq > o.seq);
    }
  };

  void elaborate();
  /// Runs evaluate+update+delta phases until quiescent; returns false if
  /// stop was requested.
  bool run_delta_cycles();
  void evaluate_phase();
  void update_phase();
  void delta_notify_phase();

  Time now_;
  bool elaborated_ = false;
  bool stop_requested_ = false;
  bool finished_ = false;
  // Set by ~Simulation so owned processes skip unregistration (see there).
  bool tearing_down_ = false;
  std::uint64_t timed_seq_ = 0;
  std::uint64_t max_delta_cycles_ = 1'000'000;

  std::deque<ProcessBase*> runnable_;
  std::vector<SignalUpdateIF*> update_queue_;
  std::vector<Event*> delta_events_;
  std::priority_queue<TimedEntry, std::vector<TimedEntry>, std::greater<>> timed_;

  std::vector<std::unique_ptr<ProcessBase>> processes_;
  std::vector<Object*> objects_;
  // Name lookup index for find_object; holds the earliest-registered
  // object per full name.
  std::unordered_map<std::string, Object*> object_index_;
  std::vector<PortBase*> ports_;

  ThreadProcess* current_thread_ = nullptr;
  ucontext_t scheduler_context_{};
  SimulationStats stats_;
  scflow::obs::Probe probe_;
};

/// Interface a signal implements to take part in the update phase.
class SignalUpdateIF {
 public:
  virtual ~SignalUpdateIF() = default;
  virtual void apply_update() = 0;
  bool update_pending = false;
};

}  // namespace minisc
