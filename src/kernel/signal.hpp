// Signals: delta-delayed single-driver channels, the minisc analogue of
// sc_signal<T>.  The refinement step from IMC channels to signal-based
// communication (paper §4.3) lands the models on these.
#pragma once

#include <string>
#include <utility>

#include "kernel/event.hpp"
#include "kernel/object.hpp"
#include "kernel/simulation.hpp"

namespace minisc {

/// Read side of a signal (bindable through ports).
template <class T>
class SignalReadIF {
 public:
  virtual ~SignalReadIF() = default;
  [[nodiscard]] virtual const T& read() const = 0;
  virtual Event& value_changed_event() = 0;
};

/// Write side of a signal.
template <class T>
class SignalWriteIF {
 public:
  virtual ~SignalWriteIF() = default;
  virtual void write(const T& v) = 0;
};

/// Single-driver signal with SystemC update semantics: a write becomes
/// visible to readers only after the update phase of the current delta
/// cycle; a change fires value_changed (and pos/negedge for bool).
template <class T>
class Signal : public Object,
               public SignalUpdateIF,
               public SignalReadIF<T>,
               public SignalWriteIF<T> {
 public:
  Signal(Simulation& sim, Object* parent, std::string name, T initial = T{})
      : Object(sim, parent, std::move(name)),
        current_(initial),
        next_(initial),
        value_changed_(sim, Object::name() + ".value_changed"),
        posedge_(sim, Object::name() + ".posedge"),
        negedge_(sim, Object::name() + ".negedge") {}

  [[nodiscard]] const char* kind() const override { return "signal"; }

  [[nodiscard]] const T& read() const override { return current_; }
  /// Last written (pending) value; what the next update will publish.
  [[nodiscard]] const T& pending() const { return next_; }

  void write(const T& v) override {
    next_ = v;
    if (!update_pending) {
      update_pending = true;
      sim().request_update(*this);
    }
  }

  Event& value_changed_event() override { return value_changed_; }
  /// Only meaningful for T == bool.
  Event& posedge_event() { return posedge_; }
  Event& negedge_event() { return negedge_; }

  void apply_update() override {
    update_pending = false;
    if (next_ == current_) return;
    const T old = std::exchange(current_, next_);
    sim().note_signal_update();
    sim().schedule_delta_fire(value_changed_);
    if constexpr (std::is_same_v<T, bool>) {
      if (!old && current_) sim().schedule_delta_fire(posedge_);
      if (old && !current_) sim().schedule_delta_fire(negedge_);
    } else {
      (void)old;
    }
  }

 private:
  T current_;
  T next_;
  Event value_changed_;
  Event posedge_;
  Event negedge_;
};

}  // namespace minisc
