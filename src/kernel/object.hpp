// Named-object hierarchy, the minisc analogue of sc_object.
#pragma once

#include <string>

namespace minisc {

class Simulation;

/// Base for everything that lives in the design hierarchy (modules, signals,
/// ports, processes, clocks).  Objects register with their Simulation so the
/// kernel can elaborate and report on the full design.
class Object {
 public:
  Object(Simulation& sim, Object* parent, std::string name);
  virtual ~Object();

  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& full_name() const { return full_name_; }
  [[nodiscard]] Object* parent() const { return parent_; }
  [[nodiscard]] Simulation& sim() const { return *sim_; }

  /// Short description of what kind of object this is ("module", "signal"…).
  [[nodiscard]] virtual const char* kind() const { return "object"; }

 private:
  Simulation* sim_;
  Object* parent_;
  std::string name_;
  // Computed once at construction: the hierarchy above an object never
  // changes, and kernel-owned objects (processes) can outlive their
  // caller-owned parent modules — walking parent_ later would be a
  // use-after-destruction.
  std::string full_name_;
};

}  // namespace minisc
