#include "kernel/object.hpp"

#include "kernel/simulation.hpp"

namespace minisc {

Object::Object(Simulation& sim, Object* parent, std::string name)
    : sim_(&sim), parent_(parent), name_(std::move(name)) {
  full_name_ = parent_ == nullptr ? name_ : parent_->full_name() + "." + name_;
  sim_->register_object(*this);
}

Object::~Object() { sim_->unregister_object(*this); }

}  // namespace minisc
