#include "kernel/object.hpp"

#include "kernel/simulation.hpp"

namespace minisc {

Object::Object(Simulation& sim, Object* parent, std::string name)
    : sim_(&sim), parent_(parent), name_(std::move(name)) {
  sim_->register_object(*this);
}

Object::~Object() { sim_->unregister_object(*this); }

std::string Object::full_name() const {
  if (parent_ == nullptr) return name_;
  return parent_->full_name() + "." + name_;
}

}  // namespace minisc
