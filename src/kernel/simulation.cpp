#include "kernel/simulation.hpp"

#include <algorithm>
#include <stdexcept>

#include "kernel/event.hpp"
#include "kernel/object.hpp"
#include "kernel/port.hpp"
#include "obs/registry.hpp"

namespace minisc {

void record_stats(scflow::obs::Registry& reg, std::string_view prefix,
                  const SimulationStats& s) {
  const std::string p = std::string(prefix) + ".";
  reg.set_counter(p + "delta_cycles", s.delta_cycles);
  reg.set_counter(p + "timed_steps", s.timed_steps);
  reg.set_counter(p + "activations", s.process_activations);
  reg.set_counter(p + "context_switches", s.context_switches);
  reg.set_counter(p + "method_invocations", s.method_invocations);
  reg.set_counter(p + "signal_updates", s.signal_updates);
  reg.set_counter(p + "events_notified", s.events_notified);
  reg.set_counter(p + "events_fired", s.events_fired);
}

Simulation::Simulation() = default;

Simulation::~Simulation() {
  // Members are destroyed in reverse declaration order, so objects_ and
  // object_index_ die before processes_ — whose Object destructors would
  // then unregister against freed containers.  Their parent modules
  // (owned by the caller) may be gone by now as well, so full_name() is
  // not safe either.  Nothing can look objects up once the simulation is
  // going away; make unregistration a no-op instead of reordering.
  tearing_down_ = true;
}

void Simulation::register_object(Object& o) {
  objects_.push_back(&o);
  // First registration wins, matching the old linear scan over the
  // registration-ordered list.
  object_index_.emplace(o.full_name(), &o);
}

void Simulation::unregister_object(Object& o) {
  if (tearing_down_) return;
  objects_.erase(std::remove(objects_.begin(), objects_.end(), &o), objects_.end());
  const auto it = object_index_.find(o.full_name());
  if (it == object_index_.end() || it->second != &o) return;
  object_index_.erase(it);
  // Another object may share the name; the earliest-registered survivor
  // takes over the index slot.
  for (Object* other : objects_) {
    if (other->full_name() == o.full_name()) {
      object_index_.emplace(other->full_name(), other);
      break;
    }
  }
}

void Simulation::register_port(PortBase& p) { ports_.push_back(&p); }

Object* Simulation::find_object(const std::string& full_name) const {
  const auto it = object_index_.find(full_name);
  return it == object_index_.end() ? nullptr : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Simulation::process_activations()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(processes_.size());
  for (const auto& p : processes_) out.emplace_back(p->full_name(), p->activations);
  return out;
}

ThreadProcess& Simulation::create_thread(Object* parent, std::string name,
                                         std::function<void()> body) {
  auto p = std::make_unique<ThreadProcess>(*this, parent, std::move(name), std::move(body));
  ThreadProcess& ref = *p;
  processes_.push_back(std::move(p));
  return ref;
}

MethodProcess& Simulation::create_method(Object* parent, std::string name,
                                         std::function<void()> body) {
  auto p = std::make_unique<MethodProcess>(*this, parent, std::move(name), std::move(body));
  MethodProcess& ref = *p;
  processes_.push_back(std::move(p));
  return ref;
}

void Simulation::elaborate() {
  if (elaborated_) return;
  elaborated_ = true;
  for (PortBase* p : ports_) {
    if (!p->is_bound())
      throw std::logic_error("unbound port at elaboration: " + p->full_name());
  }
  // Initialisation phase: every process runs once at time zero.
  for (auto& p : processes_) make_runnable(*p);
}

void Simulation::make_runnable(ProcessBase& p) {
  if (p.in_runnable_queue) return;
  if (p.is_thread() && static_cast<ThreadProcess&>(p).terminated()) return;
  p.in_runnable_queue = true;
  runnable_.push_back(&p);
}

void Simulation::request_update(SignalUpdateIF& s) { update_queue_.push_back(&s); }

void Simulation::schedule_delta_fire(Event& e) {
  // Counted here, not in Event::notify_delta, so that signal updates (which
  // schedule their change events directly) are observed as notifications too.
  note_event_notified();
  if (e.in_delta_queue) return;
  e.in_delta_queue = true;
  delta_events_.push_back(&e);
}

void Simulation::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) throw std::logic_error("schedule_at in the past");
  timed_.push(TimedEntry{t, timed_seq_++, std::move(fn)});
}

void Simulation::evaluate_phase() {
  while (!runnable_.empty()) {
    ProcessBase* p = runnable_.front();
    runnable_.pop_front();
    p->in_runnable_queue = false;
    probe_.hit(stats_.process_activations);
    probe_.hit(p->activations);
    if (p->is_thread()) {
      current_thread_ = static_cast<ThreadProcess*>(p);
      p->execute();
      current_thread_ = nullptr;
    } else {
      probe_.hit(stats_.method_invocations);
      p->execute();
    }
    if (stop_requested_) return;
  }
}

void Simulation::update_phase() {
  std::vector<SignalUpdateIF*> q;
  q.swap(update_queue_);
  for (SignalUpdateIF* s : q) s->apply_update();
}

void Simulation::delta_notify_phase() {
  std::vector<Event*> events;
  events.swap(delta_events_);
  // Clear every membership flag before firing anything: a notify_delta()
  // from within a fire() must re-queue for the next delta cycle.
  for (Event* e : events) e->in_delta_queue = false;
  for (Event* e : events) e->fire();
}

bool Simulation::run_delta_cycles() {
  std::uint64_t deltas_here = 0;
  while (!runnable_.empty() || !update_queue_.empty() || !delta_events_.empty()) {
    probe_.hit(stats_.delta_cycles);
    if (++deltas_here > max_delta_cycles_)
      throw std::runtime_error("delta cycle limit exceeded (zero-delay loop?)");
    evaluate_phase();
    if (stop_requested_) return false;
    update_phase();
    delta_notify_phase();
  }
  return true;
}

void Simulation::run() { run_until(Time::max()); }

void Simulation::run_until(Time until) {
  elaborate();
  stop_requested_ = false;
  if (!run_delta_cycles()) { finished_ = true; return; }
  while (!timed_.empty()) {
    const Time next = timed_.top().at;
    if (next > until) { now_ = until == Time::max() ? now_ : until; return; }
    now_ = next;
    probe_.hit(stats_.timed_steps);
    // Release every action scheduled for this instant.
    while (!timed_.empty() && timed_.top().at == now_) {
      auto fn = std::move(const_cast<TimedEntry&>(timed_.top()).fn);
      timed_.pop();
      fn();
    }
    if (!run_delta_cycles()) { finished_ = true; return; }
  }
  finished_ = true;
}

void Simulation::wait_static() {
  ThreadProcess* t = current_thread_;
  if (t == nullptr) throw std::logic_error("wait() outside a thread process");
  if (t->static_sensitivity().empty())
    throw std::logic_error("wait() without static sensitivity in " + t->full_name());
  t->waiting_static = true;
  t->yield_to_scheduler();
}

void Simulation::wait_event(Event& e) { wait_any({&e}); }

void Simulation::wait_any(std::initializer_list<Event*> events) {
  ThreadProcess* t = current_thread_;
  if (t == nullptr) throw std::logic_error("wait(event) outside a thread process");
  const std::uint64_t gen = ++t->wait_generation;
  for (Event* e : events) e->add_dynamic_waiter(*t, gen);
  t->waiting_dynamic = true;
  t->yield_to_scheduler();
}

void Simulation::wait_time(Time delay) {
  ThreadProcess* t = current_thread_;
  if (t == nullptr) throw std::logic_error("wait(time) outside a thread process");
  const std::uint64_t gen = ++t->wait_generation;
  t->waiting_dynamic = true;
  schedule_at(now_ + delay, [this, t, gen] {
    if (t->wait_generation == gen && t->waiting_dynamic) {
      t->waiting_dynamic = false;
      ++t->wait_generation;
      make_runnable(*t);
    }
  });
  t->yield_to_scheduler();
}

}  // namespace minisc
