// Ports: typed interface pointers with elaboration-time binding checks,
// the minisc analogue of sc_port<IF> / sc_in<T> / sc_out<T>.
#pragma once

#include <stdexcept>
#include <string>

#include "kernel/object.hpp"
#include "kernel/signal.hpp"
#include "kernel/simulation.hpp"

namespace minisc {

/// Untyped base so the kernel can verify all ports are bound at elaboration.
class PortBase : public Object {
 public:
  PortBase(Simulation& sim, Object* parent, std::string name)
      : Object(sim, parent, std::move(name)) {
    sim.register_port(*this);
  }
  [[nodiscard]] const char* kind() const override { return "port"; }
  [[nodiscard]] virtual bool is_bound() const = 0;
};

/// A port requiring an implementation of interface IF.  Interface method
/// calls (IMC, paper §4.2) go through operator-> on the bound channel.
template <class IF>
class Port : public PortBase {
 public:
  using PortBase::PortBase;

  void bind(IF& impl) {
    if (impl_ != nullptr) throw std::logic_error("port '" + full_name() + "' already bound");
    impl_ = &impl;
  }
  void operator()(IF& impl) { bind(impl); }

  [[nodiscard]] bool is_bound() const override { return impl_ != nullptr; }

  IF* operator->() const { return impl_; }
  [[nodiscard]] IF& get() const { return *impl_; }

 private:
  IF* impl_ = nullptr;
};

/// Input port specialised for signals: adds read() and event access.
template <class T>
class InPort : public Port<SignalReadIF<T>> {
 public:
  using Port<SignalReadIF<T>>::Port;
  [[nodiscard]] const T& read() const { return (*this)->read(); }
  Event& value_changed_event() { return (*this)->value_changed_event(); }
};

/// Output port specialised for signals.
template <class T>
class OutPort : public Port<SignalWriteIF<T>> {
 public:
  using Port<SignalWriteIF<T>>::Port;
  void write(const T& v) { (*this)->write(v); }
};

}  // namespace minisc
