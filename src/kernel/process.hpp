// Process abstractions: fiber-backed threads (SC_THREAD) and method
// processes (SC_METHOD).
#pragma once

#include <cstdint>
#include <functional>
#include <ucontext.h>
#include <vector>

#include "kernel/object.hpp"

namespace minisc {

class Event;
class Simulation;

/// Common base for schedulable processes.
class ProcessBase : public Object {
 public:
  ProcessBase(Simulation& sim, Object* parent, std::string name);

  /// Invoked by the scheduler during the evaluate phase.
  virtual void execute() = 0;
  [[nodiscard]] virtual bool is_thread() const = 0;

  /// Adds an event to the static sensitivity list (persistent).
  void add_static_sensitivity(Event& e);
  [[nodiscard]] const std::vector<Event*>& static_sensitivity() const { return static_events_; }

  /// Times this process was dispatched in an evaluate phase (counted while
  /// the simulation's instrumentation probe is enabled).
  std::uint64_t activations = 0;

  // Scheduler bookkeeping.
  bool in_runnable_queue = false;
  /// Threads only: true while suspended in wait() on static sensitivity.
  bool waiting_static = false;
  /// Threads only: true while suspended in any wait().
  bool waiting_dynamic = false;

 private:
  std::vector<Event*> static_events_;
};

/// An SC_METHOD-style process: a plain callable re-invoked on every
/// sensitive event.  Cheap (no stack, no context switch).
class MethodProcess final : public ProcessBase {
 public:
  MethodProcess(Simulation& sim, Object* parent, std::string name,
                std::function<void()> body);

  void execute() override { body_(); }
  [[nodiscard]] bool is_thread() const override { return false; }
  [[nodiscard]] const char* kind() const override { return "method_process"; }

 private:
  std::function<void()> body_;
};

/// An SC_THREAD-style process backed by a ucontext fiber, so the body can
/// call wait() from arbitrarily deep call stacks — which is what makes
/// blocking interface-method calls through hierarchical channels possible.
class ThreadProcess final : public ProcessBase {
 public:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  ThreadProcess(Simulation& sim, Object* parent, std::string name,
                std::function<void()> body,
                std::size_t stack_bytes = kDefaultStackBytes);

  void execute() override;  // resumes the fiber
  [[nodiscard]] bool is_thread() const override { return true; }
  [[nodiscard]] const char* kind() const override { return "thread_process"; }

  [[nodiscard]] bool terminated() const { return terminated_; }

  /// Monotonic counter distinguishing the current wait from stale event
  /// registrations left behind by earlier any-of waits.
  std::uint64_t wait_generation = 0;

  // --- kernel-internal ---
  /// Suspends the fiber and returns control to the scheduler context.
  void yield_to_scheduler();

 private:
  static void trampoline(unsigned int hi, unsigned int lo);
  void run_body();

  std::function<void()> body_;
  std::vector<std::uint8_t> stack_;
  ucontext_t context_{};
  bool started_ = false;
  bool terminated_ = false;
};

}  // namespace minisc
