#include "kernel/process.hpp"

#include <cstdint>
#include <stdexcept>

#include "kernel/event.hpp"
#include "kernel/simulation.hpp"

namespace minisc {

ProcessBase::ProcessBase(Simulation& sim, Object* parent, std::string name)
    : Object(sim, parent, std::move(name)) {}

void ProcessBase::add_static_sensitivity(Event& e) { static_events_.push_back(&e); }

MethodProcess::MethodProcess(Simulation& sim, Object* parent, std::string name,
                             std::function<void()> body)
    : ProcessBase(sim, parent, std::move(name)), body_(std::move(body)) {}

ThreadProcess::ThreadProcess(Simulation& sim, Object* parent, std::string name,
                             std::function<void()> body, std::size_t stack_bytes)
    : ProcessBase(sim, parent, std::move(name)),
      body_(std::move(body)),
      stack_(stack_bytes) {}

void ThreadProcess::trampoline(unsigned int hi, unsigned int lo) {
  auto* self = reinterpret_cast<ThreadProcess*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run_body();
  // Never returns: run_body() ends with a final switch to the scheduler.
}

void ThreadProcess::run_body() {
  body_();
  terminated_ = true;
  // Hand control back to the scheduler for good.
  swapcontext(&context_, sim().scheduler_context());
  throw std::logic_error("terminated thread process resumed");
}

void ThreadProcess::execute() {
  if (terminated_) return;
  if (!started_) {
    started_ = true;
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.data();
    context_.uc_stack.ss_size = stack_.size();
    context_.uc_link = sim().scheduler_context();
    const auto p = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&context_, reinterpret_cast<void (*)()>(&ThreadProcess::trampoline), 2,
                static_cast<unsigned int>(p >> 32),
                static_cast<unsigned int>(p & 0xffffffffu));
  }
  sim().note_context_switch();
  swapcontext(sim().scheduler_context(), &context_);
}

void ThreadProcess::yield_to_scheduler() {
  sim().note_context_switch();
  swapcontext(&context_, sim().scheduler_context());
}

}  // namespace minisc
