// Simulated-time representation for the minisc kernel (picosecond ticks).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace minisc {

/// A point in (or duration of) simulated time, in integer picoseconds.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time ps(std::uint64_t v) { return Time(v); }
  static constexpr Time ns(std::uint64_t v) { return Time(v * 1000ull); }
  static constexpr Time us(std::uint64_t v) { return Time(v * 1000'000ull); }
  static constexpr Time ms(std::uint64_t v) { return Time(v * 1000'000'000ull); }
  static constexpr Time sec(std::uint64_t v) { return Time(v * 1000'000'000'000ull); }
  static constexpr Time max() { return Time(std::numeric_limits<std::uint64_t>::max()); }

  [[nodiscard]] constexpr std::uint64_t picoseconds() const { return ps_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ps_) * 1e-12; }

  friend constexpr Time operator+(Time a, Time b) { return Time(a.ps_ + b.ps_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ps_ - b.ps_); }
  friend constexpr Time operator*(Time a, std::uint64_t k) { return Time(a.ps_ * k); }
  friend constexpr std::uint64_t operator/(Time a, Time b) { return a.ps_ / b.ps_; }
  friend constexpr bool operator==(Time a, Time b) = default;
  friend constexpr auto operator<=>(Time a, Time b) = default;

  friend std::ostream& operator<<(std::ostream& os, Time t) { return os << t.ps_ << " ps"; }

 private:
  constexpr explicit Time(std::uint64_t ps) : ps_(ps) {}
  std::uint64_t ps_ = 0;
};

}  // namespace minisc
