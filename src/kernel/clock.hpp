// Periodic clock source (analogue of sc_clock), implemented with a
// self-rescheduling method process — no fiber stack needed.
#pragma once

#include <string>

#include "kernel/signal.hpp"

namespace minisc {

class Clock : public Object {
 public:
  /// First posedge occurs at t = period, then every period thereafter;
  /// the falling edge sits at the half-period point.
  Clock(Simulation& sim, std::string name, Time period);

  [[nodiscard]] const char* kind() const override { return "clock"; }

  [[nodiscard]] Time period() const { return period_; }
  [[nodiscard]] bool read() const { return signal_.read(); }
  [[nodiscard]] Signal<bool>& signal() { return signal_; }
  Event& posedge_event() { return signal_.posedge_event(); }
  Event& negedge_event() { return signal_.negedge_event(); }

  /// Number of rising edges generated so far.
  [[nodiscard]] std::uint64_t posedge_count() const { return posedges_; }

 private:
  void tick();

  Time period_;
  Signal<bool> signal_;
  Event tick_event_;
  std::uint64_t posedges_ = 0;
};

}  // namespace minisc
