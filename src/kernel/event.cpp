#include "kernel/event.hpp"

#include "kernel/process.hpp"
#include "kernel/simulation.hpp"

namespace minisc {

Event::Event(Simulation& sim, std::string name) : sim_(&sim), name_(std::move(name)) {}

Event::~Event() = default;

void Event::notify() {
  sim_->note_event_notified();
  fire();
}

void Event::notify_delta() {
  ++pending_generation_;
  sim_->schedule_delta_fire(*this);
}

void Event::notify(Time delay) {
  const std::uint64_t gen = ++pending_generation_;
  sim_->note_event_notified();
  sim_->schedule_at(sim_->now() + delay, [this, gen] {
    if (gen == pending_generation_) fire();
  });
}

void Event::cancel() { ++pending_generation_; }

void Event::add_dynamic_waiter(ThreadProcess& p, std::uint64_t generation) {
  dynamic_waiters_.push_back({&p, generation});
}

void Event::add_static_waiter(ProcessBase& p) { static_waiters_.push_back(&p); }

void Event::fire() {
  sim_->note_event_fired();
  // Dynamic (one-shot) waiters: skip registrations from superseded waits.
  if (!dynamic_waiters_.empty()) {
    std::vector<DynWaiter> waiters;
    waiters.swap(dynamic_waiters_);
    for (const DynWaiter& w : waiters) {
      if (w.process->wait_generation == w.generation && w.process->waiting_dynamic) {
        w.process->waiting_dynamic = false;
        ++w.process->wait_generation;  // invalidate sibling registrations
        sim_->make_runnable(*w.process);
      }
    }
  }
  // Static waiters: methods always trigger; threads only when parked in a
  // static wait().
  for (ProcessBase* p : static_waiters_) {
    if (p->is_thread()) {
      if (p->waiting_static) {
        p->waiting_static = false;
        sim_->make_runnable(*p);
      }
    } else {
      sim_->make_runnable(*p);
    }
  }
}

}  // namespace minisc
