#include "kernel/clock.hpp"

#include <stdexcept>

namespace minisc {

Clock::Clock(Simulation& sim, std::string name, Time period)
    : Object(sim, nullptr, std::move(name)),
      period_(period),
      signal_(sim, this, "sig", false),
      tick_event_(sim, Object::name() + ".tick") {
  if (period.picoseconds() < 2 || (period.picoseconds() % 2) != 0)
    throw std::invalid_argument("clock period must be a positive even number of ps");
  auto& proc = sim.create_method(this, "gen", [this] { tick(); });
  proc.add_static_sensitivity(tick_event_);
  tick_event_.add_static_waiter(proc);
}

void Clock::tick() {
  // The initialisation-phase run arms the first rising edge at t = period.
  if (sim().now().picoseconds() == 0 && !signal_.read()) {
    tick_event_.notify(period_);
    return;
  }
  const bool next = !signal_.read();
  signal_.write(next);
  if (next) ++posedges_;
  tick_event_.notify(Time::ps(period_.picoseconds() / 2));
}

}  // namespace minisc
