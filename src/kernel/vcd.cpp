#include "kernel/vcd.hpp"

namespace minisc {

VcdTrace::VcdTrace(Simulation& sim, const std::string& path) : sim_(&sim), out_(path) {}

VcdTrace::~VcdTrace() { out_.flush(); }

std::string VcdTrace::next_id() {
  // VCD identifiers: printable ASCII strings; base-94 counter.
  std::string id;
  int n = id_counter_++;
  do {
    id.push_back(static_cast<char>('!' + (n % 94)));
    n /= 94;
  } while (n > 0);
  return id;
}

void VcdTrace::write_header() {
  header_written_ = true;
  out_ << "$timescale 1ps $end\n$scope module top $end\n";
  for (const Var& v : vars_) {
    std::string flat = v.name;
    for (char& c : flat)
      if (c == '.') c = '_';
    out_ << "$var wire " << v.width << " " << v.id << " " << flat << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  last_.assign(vars_.size(), ~0ull);
}

void VcdTrace::sample() {
  if (!header_written_) write_header();
  bool time_emitted = false;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const std::uint64_t v = vars_[i].value();
    if (v == last_[i]) continue;
    if (!time_emitted) {
      const std::uint64_t t = sim_->now().picoseconds();
      if (t != last_time_) {
        out_ << "#" << t << "\n";
        last_time_ = t;
      }
      time_emitted = true;
    }
    last_[i] = v;
    if (vars_[i].width == 1) {
      out_ << (v & 1u) << vars_[i].id << "\n";
    } else {
      out_ << "b";
      for (int b = vars_[i].width - 1; b >= 0; --b) out_ << ((v >> b) & 1u);
      out_ << " " << vars_[i].id << "\n";
    }
  }
}

}  // namespace minisc
