#include "kernel/vcd.hpp"

namespace minisc {

VcdFile::~VcdFile() {
  if (!header_written_) write_header();
  out_.flush();
}

std::string VcdFile::next_id() {
  // VCD identifiers: printable ASCII strings; base-94 counter.
  std::string id;
  int n = id_counter_++;
  do {
    id.push_back(static_cast<char>('!' + (n % 94)));
    n /= 94;
  } while (n > 0);
  return id;
}

std::size_t VcdFile::add_var(const std::string& name, int width) {
  std::string flat = name;
  for (char& c : flat) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '$';
    if (!ok) c = '_';
  }
  vars_.push_back({std::move(flat), next_id(), width});
  return vars_.size() - 1;
}

void VcdFile::write_header() {
  if (header_written_) return;
  header_written_ = true;
  out_ << "$timescale 1ps $end\n$scope module top $end\n";
  for (const Var& v : vars_) {
    out_ << "$var wire " << v.width << " " << v.id << " " << v.name << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  last_.assign(vars_.size(), ~0ull);
}

void VcdFile::change(std::size_t var, std::uint64_t value) {
  if (!header_written_) write_header();
  if (last_[var] == value) return;
  if (pending_time_ != last_time_) {
    out_ << "#" << pending_time_ << "\n";
    last_time_ = pending_time_;
  }
  last_[var] = value;
  const Var& v = vars_[var];
  if (v.width == 1) {
    out_ << (value & 1u) << v.id << "\n";
  } else {
    out_ << "b";
    for (int b = v.width - 1; b >= 0; --b) out_ << ((value >> b) & 1u);
    out_ << " " << v.id << "\n";
  }
}

void VcdTrace::sample() {
  file_.write_header();
  file_.time(sim_->now().picoseconds());
  for (const Var& v : vars_) file_.change(v.idx, v.value());
}

}  // namespace minisc
