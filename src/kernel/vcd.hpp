// Minimal VCD (value-change dump) tracing for signals — the kernel-side
// equivalent of the waveform dumps the paper's flow relied on for the
// per-step bit-accuracy revalidation.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "kernel/signal.hpp"
#include "kernel/simulation.hpp"

namespace minisc {

class VcdTrace {
 public:
  VcdTrace(Simulation& sim, const std::string& path);
  ~VcdTrace();

  VcdTrace(const VcdTrace&) = delete;
  VcdTrace& operator=(const VcdTrace&) = delete;

  /// Registers a bool or integer-convertible signal for tracing.
  template <class T>
  void add(Signal<T>& sig, int width = default_width<T>()) {
    const std::string id = next_id();
    vars_.push_back({sig.full_name(), id, width,
                     [&sig, width] { return value_bits(sig.read(), width); }});
  }

  /// Samples all registered signals at the current simulation time.
  /// Call once per interesting instant (e.g. from a clock-edge method).
  void sample();

 private:
  struct Var {
    std::string name;
    std::string id;
    int width;
    std::function<std::uint64_t()> value;
  };

  template <class T>
  static constexpr int default_width() {
    if constexpr (std::is_same_v<T, bool>) return 1;
    else if constexpr (requires { T::width; }) return T::width;
    else return 64;
  }
  template <class T>
  static std::uint64_t value_bits(const T& v, int width) {
    if constexpr (std::is_same_v<T, bool>) { (void)width; return v ? 1u : 0u; }
    else if constexpr (requires { v.bits(); }) { (void)width; return v.bits(); }
    else return static_cast<std::uint64_t>(v);
  }

  std::string next_id();
  void write_header();

  Simulation* sim_;
  std::ofstream out_;
  std::vector<Var> vars_;
  std::vector<std::uint64_t> last_;
  bool header_written_ = false;
  int id_counter_ = 0;
  std::uint64_t last_time_ = ~0ull;
};

}  // namespace minisc
