// Minimal VCD (value-change dump) tracing for signals — the kernel-side
// equivalent of the waveform dumps the paper's flow relied on for the
// per-step bit-accuracy revalidation.
//
// Two layers: VcdFile is a standalone writer (register vars, then drive
// time()/change() explicitly) usable outside any simulation — the formal
// CEC engine dumps counterexample vectors through it.  VcdTrace keeps the
// original Simulation-coupled sampling API on top of it.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "kernel/signal.hpp"
#include "kernel/simulation.hpp"

namespace minisc {

class VcdFile {
 public:
  explicit VcdFile(const std::string& path) : out_(path) {}
  ~VcdFile();

  VcdFile(const VcdFile&) = delete;
  VcdFile& operator=(const VcdFile&) = delete;

  /// Registers a variable (before the header is emitted); returns its
  /// index for change().  Names are sanitised to VCD-safe identifiers.
  std::size_t add_var(const std::string& name, int width);

  /// Sets the current time; emitted lazily before the next change.
  void time(std::uint64_t t) { pending_time_ = t; }

  /// Records a new value; deduplicated against the last emitted value.
  void change(std::size_t var, std::uint64_t value);

  /// Emits the header ($timescale/$var/$enddefinitions); idempotent, and
  /// called automatically by the first change() (or the destructor).
  void write_header();

  [[nodiscard]] bool good() const { return out_.good(); }
  void flush() { out_.flush(); }

 private:
  struct Var {
    std::string name;
    std::string id;
    int width;
  };

  std::string next_id();

  std::ofstream out_;
  std::vector<Var> vars_;
  std::vector<std::uint64_t> last_;
  bool header_written_ = false;
  int id_counter_ = 0;
  std::uint64_t pending_time_ = 0;
  std::uint64_t last_time_ = ~0ull;
};

class VcdTrace {
 public:
  VcdTrace(Simulation& sim, const std::string& path) : sim_(&sim), file_(path) {}

  VcdTrace(const VcdTrace&) = delete;
  VcdTrace& operator=(const VcdTrace&) = delete;

  /// Registers a bool or integer-convertible signal for tracing.
  template <class T>
  void add(Signal<T>& sig, int width = default_width<T>()) {
    const std::size_t idx = file_.add_var(sig.full_name(), width);
    vars_.push_back({idx, [&sig, width] { return value_bits(sig.read(), width); }});
  }

  /// Samples all registered signals at the current simulation time.
  /// Call once per interesting instant (e.g. from a clock-edge method).
  void sample();

 private:
  struct Var {
    std::size_t idx;
    std::function<std::uint64_t()> value;
  };

  template <class T>
  static constexpr int default_width() {
    if constexpr (std::is_same_v<T, bool>) return 1;
    else if constexpr (requires { T::width; }) return T::width;
    else return 64;
  }
  template <class T>
  static std::uint64_t value_bits(const T& v, int width) {
    if constexpr (std::is_same_v<T, bool>) { (void)width; return v ? 1u : 0u; }
    else if constexpr (requires { v.bits(); }) { (void)width; return v.bits(); }
    else return static_cast<std::uint64_t>(v);
  }

  Simulation* sim_;
  VcdFile file_;
  std::vector<Var> vars_;
};

}  // namespace minisc
