// Module base class (analogue of sc_module) with process registration and
// wait() helpers for thread bodies.
#pragma once

#include <functional>
#include <initializer_list>
#include <string>

#include "kernel/event.hpp"
#include "kernel/object.hpp"
#include "kernel/process.hpp"
#include "kernel/simulation.hpp"

namespace minisc {

/// Fluent helper returned by Module::method()/thread() so sensitivity can
/// be declared next to the registration, SystemC-style:
///   method("fsm", [this]{ ... }).sensitive(clk_.posedge_event());
class ProcessBuilder {
 public:
  explicit ProcessBuilder(ProcessBase& p) : process_(&p) {}
  ProcessBuilder& sensitive(Event& e) {
    process_->add_static_sensitivity(e);
    e.add_static_waiter(*process_);
    return *this;
  }
  ProcessBase& process() { return *process_; }

 private:
  ProcessBase* process_;
};

/// Structural building block.  Hierarchical channels (paper Fig. 5/6) are
/// modules that additionally implement interfaces.
class Module : public Object {
 public:
  Module(Simulation& sim, std::string name) : Object(sim, nullptr, std::move(name)) {}
  Module(Module& parent, std::string name) : Object(parent.sim(), &parent, std::move(name)) {}

  [[nodiscard]] const char* kind() const override { return "module"; }

 protected:
  /// Registers an SC_THREAD-style fiber process.
  ProcessBuilder thread(std::string name, std::function<void()> body) {
    return ProcessBuilder(sim().create_thread(this, std::move(name), std::move(body)));
  }
  /// Registers an SC_METHOD-style process (declare sensitivity on the
  /// returned builder; the method is also run once at simulation start).
  ProcessBuilder method(std::string name, std::function<void()> body) {
    return ProcessBuilder(sim().create_method(this, std::move(name), std::move(body)));
  }

  // wait() helpers, callable from any thread process (including through
  // interface method calls into channel modules).
  void wait() { sim().wait_static(); }
  void wait(Event& e) { sim().wait_event(e); }
  void wait_any(std::initializer_list<Event*> events) { sim().wait_any(events); }
  void wait(Time delay) { sim().wait_time(delay); }
  /// Waits for @p n occurrences of the static sensitivity (clock edges).
  void wait(int n) {
    for (int i = 0; i < n; ++i) wait();
  }
};

}  // namespace minisc
