// The paper's Filter() free function: "the filter needs the samples from
// the input buffer in the same way it needs the coefficients of the
// polyphase filter.  Consequently the filter function was associated to
// neither of the classes" — it consumes both iterators.
#pragma once

#include <cstdint>

#include "dsp/input_buffer.hpp"
#include "dsp/polyphase.hpp"

namespace scflow::dsp {

/// Convolves kTapsPerPhase history samples with interpolated coefficients.
/// @param x  read iterator positioned at the newest sample to use; the
///           convolution steps it backwards (wrap handled by the iterator)
/// @param c  coefficient iterator for the output's phase/mu
/// @return   the raw 40-bit accumulator value (before rounding/saturation)
inline std::int64_t filter_accumulate(InputBuffer::ReadIterator x,
                                      PolyphaseFilter::Iterator c) {
  std::int64_t acc = 0;
  for (int k = 0; k < SrcParams::kTapsPerPhase; ++k) {
    acc += static_cast<std::int64_t>(*x) * (*c);
    --x;  // one sample further into the past
    ++c;
  }
  return acc;
}

/// Rounds and saturates the accumulator to a 16-bit output sample.
/// Shared by every refinement level (round-half-up at the Q15 point).
inline std::int16_t round_saturate_output(std::int64_t acc) {
  const std::int64_t rounded = (acc + (std::int64_t{1} << 14)) >> 15;
  if (rounded > 32767) return 32767;
  if (rounded < -32768) return -32768;
  return static_cast<std::int16_t>(rounded);
}

/// One complete output-sample computation for one channel.
inline std::int16_t filter_sample(const InputBuffer& buf, unsigned newest_index,
                                  const PolyphaseFilter& filter, int phase, int mu) {
  const std::int64_t acc = filter_accumulate(buf.reader_at_index(newest_index),
                                             filter.coefficients(phase, mu));
  return round_saturate_output(acc);
}

}  // namespace scflow::dsp
