#include "dsp/rational_src.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "dsp/filter.hpp"
#include "dsp/filter_design.hpp"

namespace scflow::dsp {
namespace {

// Splits an integer stage product into cascade factors: greedily the
// largest factor <= 8 (keeps each stage's anti-alias filter at a modest
// 8*m+1 taps), falling back to the smallest prime factor when all prime
// factors exceed 8 (rare audio-rate pairs like 4000 -> 44000).
std::vector<int> factor_stages(int product) {
  std::vector<int> factors;
  int q = product;
  while (q > 1) {
    int f = 0;
    for (int c = 8; c >= 2; --c) {
      if (q % c == 0) {
        f = c;
        break;
      }
    }
    if (f == 0) {
      f = q;  // q's smallest prime factor is > 8; q itself may be it
      for (int c = 9; c * c <= q; ++c) {
        if (q % c == 0) {
          f = c;
          break;
        }
      }
    }
    factors.push_back(f);
    q /= f;
  }
  return factors;
}

// Seed increment for the fractional core.  The four paper pairs keep
// their SrcMode table entries bit-for-bit — k48To44_1's 35665 is the
// truncated quotient, one LSB below nominal_increment_for()'s
// round-to-nearest 35666 — so a direct plan replays the golden model
// exactly from the first output on.
std::int64_t core_seed_increment(std::uint32_t fs_in, std::uint32_t fs_out) {
  if (fs_out == 48'000) {
    if (fs_in == 44'100) return SrcParams::nominal_increment(SrcMode::k44_1To48);
    if (fs_in == 48'000) return SrcParams::nominal_increment(SrcMode::k48To48);
    if (fs_in == 32'000) return SrcParams::nominal_increment(SrcMode::k32To48);
  }
  if (fs_in == 48'000 && fs_out == 44'100) {
    return SrcParams::nominal_increment(SrcMode::k48To44_1);
  }
  return nominal_increment_for(fs_in, fs_out);
}

}  // namespace

RatioPlan plan_ratio(std::uint32_t fs_in_hz, std::uint32_t fs_out_hz) {
  if (fs_in_hz < kMinRateHz || fs_in_hz > kMaxRateHz) {
    throw std::invalid_argument("plan_ratio: input rate outside supported range");
  }
  if (fs_out_hz < kMinRateHz || fs_out_hz > kMaxRateHz) {
    throw std::invalid_argument("plan_ratio: output rate outside supported range");
  }

  RatioPlan plan;
  plan.fs_in_hz = fs_in_hz;
  plan.fs_out_hz = fs_out_hz;
  const std::uint32_t g = std::gcd(fs_in_hz, fs_out_hz);
  plan.up = fs_out_hz / g;
  plan.down = fs_in_hz / g;

  // Integer staging keeps the fractional core's ratio inside (0.5, 2]:
  //  * an exact integer quotient goes entirely to one side (core ratio
  //    exactly 1, the resync case the core handles natively);
  //  * otherwise powers of two peel off until the residue fits.
  // The four paper pairs land in neither branch — they plan direct.
  std::uint32_t oversample = 1;
  std::uint32_t undersample = 1;
  if (fs_in_hz % fs_out_hz == 0 && fs_in_hz / fs_out_hz >= 2) {
    undersample = fs_in_hz / fs_out_hz;
  } else if (fs_out_hz % fs_in_hz == 0 && fs_out_hz / fs_in_hz >= 2) {
    oversample = fs_out_hz / fs_in_hz;
  } else {
    while (static_cast<std::uint64_t>(fs_in_hz) * oversample * 2 <= fs_out_hz) {
      oversample *= 2;
    }
    while (static_cast<std::uint64_t>(fs_out_hz) * undersample * 2 < fs_in_hz) {
      undersample *= 2;
    }
  }
  plan.oversample_stages = factor_stages(static_cast<int>(oversample));
  plan.undersample_stages = factor_stages(static_cast<int>(undersample));
  plan.core_fs_in_hz = fs_in_hz * oversample;
  plan.core_fs_out_hz = fs_out_hz * undersample;
  plan.core_increment = core_seed_increment(plan.core_fs_in_hz, plan.core_fs_out_hz);
  return plan;
}

IntegerStage::IntegerStage(Kind kind, int factor) : kind_(kind), factor_(factor) {
  const int length = SrcParams::kTapsPerPhase * factor + 1;
  const auto proto = design_prototype(length, factor);
  // Interpolator branches each see a full-scale input stream, so branch
  // DC gain is the clipping bound (same normalisation as the core ROM);
  // a decimator output is one complete convolution, so the whole-filter
  // DC gain is.
  const auto half = kind == Kind::kOversample
                        ? quantise_prototype_half(proto, factor)
                        : quantise_prototype_half_unity_dc(proto);
  coeffs_.resize(length);
  for (int i = 0; i < length; ++i) {
    coeffs_[i] = half[std::min(i, length - 1 - i)];
  }

  const int history = kind == Kind::kOversample ? SrcParams::kTapsPerPhase : length;
  unsigned size = 1;
  while (static_cast<int>(size) < history) size <<= 1;
  ring_mask_ = size - 1;
  for (auto& ring : ring_) ring.assign(size, 0);
}

std::int16_t IntegerStage::convolve_branch(int ch, int branch) const {
  std::int64_t acc = 0;
  for (int k = 0; k < SrcParams::kTapsPerPhase; ++k) {
    acc += static_cast<std::int64_t>(ring_[ch][(head_ - 1 - k) & ring_mask_]) *
           coeffs_[branch + factor_ * k];
  }
  return round_saturate_output(acc);
}

std::int16_t IntegerStage::convolve_full(int ch) const {
  std::int64_t acc = 0;
  for (int j = 0; j < static_cast<int>(coeffs_.size()); ++j) {
    acc += static_cast<std::int64_t>(ring_[ch][(head_ - 1 - j) & ring_mask_]) *
           coeffs_[j];
  }
  return round_saturate_output(acc);
}

std::size_t IntegerStage::feed(StereoSample s, std::vector<StereoSample>& out) {
  ring_[0][head_ & ring_mask_] = s.left;
  ring_[1][head_ & ring_mask_] = s.right;
  ++head_;

  if (kind_ == Kind::kOversample) {
    for (int p = 0; p < factor_; ++p) {
      out.push_back({convolve_branch(0, p), convolve_branch(1, p)});
    }
    return static_cast<std::size_t>(factor_);
  }
  if (++phase_ < factor_) return 0;
  phase_ = 0;
  out.push_back({convolve_full(0), convolve_full(1)});
  return 1;
}

void IntegerStage::save_state(core::StateWriter& w) const {
  w.u32(head_);
  w.u32(static_cast<std::uint32_t>(phase_));
  for (const auto& ring : ring_) {
    for (std::int16_t v : ring) w.i16(v);
  }
}

bool IntegerStage::load_state(core::StateReader& r) {
  head_ = r.u32();
  const std::uint32_t phase = r.u32();
  if (phase >= static_cast<std::uint32_t>(factor_)) return false;
  phase_ = static_cast<int>(phase);
  for (auto& ring : ring_) {
    for (std::int16_t& v : ring) v = r.i16();
  }
  return r.ok();
}

RationalSrc::RationalSrc(std::uint32_t fs_in_hz, std::uint32_t fs_out_hz,
                         TimeBase time_base)
    : plan_(plan_ratio(fs_in_hz, fs_out_hz)),
      core_(plan_.core_increment, time_base),
      core_in_period_ps_(rate_period_ps(plan_.core_fs_in_hz)),
      core_out_period_ps_(rate_period_ps(plan_.core_fs_out_hz)) {
  for (int m : plan_.oversample_stages) {
    pre_.emplace_back(IntegerStage::Kind::kOversample, m);
  }
  for (int m : plan_.undersample_stages) {
    post_.emplace_back(IntegerStage::Kind::kUndersample, m);
  }
}

void RationalSrc::emit(StereoSample s) {
  StereoSample cur = s;
  for (auto& stage : post_) {
    post_tmp_.clear();
    if (stage.feed(cur, post_tmp_) == 0) return;  // decimated away
    cur = post_tmp_[0];
  }
  ready_.push_back(cur);
  ++outputs_;
}

void RationalSrc::drain_core_until(std::uint64_t horizon_ps) {
  // Strict < keeps make_schedule's tie ordering: an output landing at
  // exactly the next input's timestamp is pulled after that input.
  while ((core_outputs_ + 1) * core_out_period_ps_ < horizon_ps) {
    const std::uint64_t t = (core_outputs_ + 1) * core_out_period_ps_;
    ++core_outputs_;
    emit(core_.pull_output(t));
  }
}

void RationalSrc::save_state(core::StateWriter& w) const {
  w.u64(inputs_);
  w.u64(outputs_);
  w.u64(core_inputs_);
  w.u64(core_outputs_);
  core_.save_state(w);
  w.u64(pre_.size());
  for (const IntegerStage& s : pre_) s.save_state(w);
  w.u64(post_.size());
  for (const IntegerStage& s : post_) s.save_state(w);
  // Undrained-output carry (non-empty only when a caller buffer was
  // undersized; the streaming service never leaves one, but the format
  // covers it so snapshots are valid at ANY push boundary).
  w.u64(ready_.size() - ready_read_);
  for (std::size_t i = ready_read_; i < ready_.size(); ++i) {
    w.i16(ready_[i].left);
    w.i16(ready_[i].right);
  }
}

bool RationalSrc::load_state(core::StateReader& r) {
  inputs_ = r.u64();
  outputs_ = r.u64();
  core_inputs_ = r.u64();
  core_outputs_ = r.u64();
  if (!core_.load_state(r)) return false;
  if (r.u64() != pre_.size()) return false;  // plan shape must match the config
  for (IntegerStage& s : pre_) {
    if (!s.load_state(r)) return false;
  }
  if (r.u64() != post_.size()) return false;
  for (IntegerStage& s : post_) {
    if (!s.load_state(r)) return false;
  }
  const std::uint64_t carry = r.u64();
  if (carry > (1u << 20)) return false;  // garbage guard: carry is tiny in practice
  ready_.clear();
  ready_read_ = 0;
  for (std::uint64_t i = 0; i < carry; ++i) {
    StereoSample s;
    s.left = r.i16();
    s.right = r.i16();
    ready_.push_back(s);
  }
  return r.ok();
}

std::size_t RationalSrc::push(StereoSample in, StereoSample* out, std::size_t cap) {
  ++inputs_;
  expand_a_.clear();
  expand_a_.push_back(in);
  for (auto& stage : pre_) {
    expand_b_.clear();
    for (const auto& s : expand_a_) stage.feed(s, expand_b_);
    expand_a_.swap(expand_b_);
  }

  for (const auto& s : expand_a_) {
    const std::uint64_t t_in = (core_inputs_ + 1) * core_in_period_ps_;
    drain_core_until(t_in);
    core_.push_input(t_in, s);
    ++core_inputs_;
  }
  // Release every output strictly before the NEXT (future) core input:
  // on the canonical timeline those events precede it.
  drain_core_until((core_inputs_ + 1) * core_in_period_ps_);

  std::size_t written = 0;
  while (written < cap && ready_read_ < ready_.size()) {
    out[written++] = ready_[ready_read_++];
  }
  if (ready_read_ == ready_.size()) {
    ready_.clear();
    ready_read_ = 0;
  }
  return written;
}

}  // namespace scflow::dsp
