// Coefficient storage for the polyphase filter — the paper's
// CPolyphaseFilter: an iterator hides "the storage order of the
// coefficients and the fact that only one half of the symmetrical impulse
// response is stored".
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "dsp/src_params.hpp"

namespace scflow::dsp {

/// The coefficient ROM: stores the first half (129 entries) of the odd
/// symmetric 257-tap prototype and mirrors accesses to the upper half.
class CoefficientRom {
 public:
  explicit CoefficientRom(std::vector<std::int16_t> half) : half_(std::move(half)) {
    if (static_cast<int>(half_.size()) != SrcParams::kProtoHalfLen)
      throw std::invalid_argument("coefficient ROM: wrong half length");
  }

  /// Full-prototype lookup with the symmetry fold: index 0..256.
  [[nodiscard]] std::int16_t at(int proto_index) const {
    const int folded = proto_index <= SrcParams::kProtoLen / 2
                           ? proto_index
                           : (SrcParams::kProtoLen - 1) - proto_index;
    return half_[static_cast<std::size_t>(folded)];
  }

  [[nodiscard]] const std::vector<std::int16_t>& stored_half() const { return half_; }

 private:
  std::vector<std::int16_t> half_;
};

/// Index of tap @p k of polyphase branch @p phase inside the prototype.
/// @p phase may be kNumPhases (the "one past" branch used for interpolation).
constexpr int proto_index(int phase, int k) {
  return phase + SrcParams::kNumPhases * k;
}

/// Linearly interpolated coefficient between branch @p phase and @p phase+1
/// with 10-bit fraction @p mu.  This is *the* shared arithmetic definition —
/// every refinement level reproduces it bit-exactly.
inline std::int32_t interpolated_coeff(const CoefficientRom& rom, int phase, int mu, int k) {
  const std::int32_t c0 = rom.at(proto_index(phase, k));
  const std::int32_t c1 = rom.at(proto_index(phase + 1, k));
  const std::int32_t diff = c1 - c0;                       // 17 bits
  return c0 + ((mu * diff) >> SrcParams::kMuBits);         // mu*diff: 27 bits
}

/// The paper's CPolyphaseFilter: owns the ROM and hands out per-output
/// coefficient iterators.
class PolyphaseFilter {
 public:
  explicit PolyphaseFilter(CoefficientRom rom) : rom_(std::move(rom)) {}

  /// Iterator over the interpolated coefficients of one output sample
  /// (fixed phase/mu), stepping through taps k = 0..kTapsPerPhase-1.
  class Iterator {
   public:
    Iterator(const CoefficientRom& rom, int phase, int mu)
        : rom_(&rom), phase_(phase), mu_(mu) {}

    [[nodiscard]] std::int32_t operator*() const {
      return interpolated_coeff(*rom_, phase_, mu_, k_);
    }
    Iterator& operator++() { ++k_; return *this; }
    [[nodiscard]] int tap() const { return k_; }

   private:
    const CoefficientRom* rom_;
    int phase_;
    int mu_;
    int k_ = 0;
  };

  [[nodiscard]] Iterator coefficients(int phase, int mu) const {
    return Iterator(rom_, phase, mu);
  }
  [[nodiscard]] const CoefficientRom& rom() const { return rom_; }

 private:
  CoefficientRom rom_;
};

/// Builds the ROM used throughout the evaluation (the design-time constant
/// all refinement levels and the synthesised netlists share).
CoefficientRom make_default_rom();

}  // namespace scflow::dsp
