// Stimulus generation and quality measurement for the SRC evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/src_params.hpp"

namespace scflow::dsp {

/// Deterministic sine generator quantised to 16 bits.
/// @param amplitude in [0,1] of full scale.
std::vector<StereoSample> make_sine_stimulus(std::size_t count, double freq_hz,
                                             double sample_rate_hz,
                                             double amplitude = 0.5);

/// Deterministic pseudo-random (xorshift) noise stimulus — used by the
/// property-style equivalence sweeps.
std::vector<StereoSample> make_noise_stimulus(std::size_t count, std::uint64_t seed,
                                              int amplitude_bits = 14);

/// One timestamped SRC event (input arrival or output request).
struct SrcEvent {
  std::uint64_t t_ps;
  bool is_input;
  StereoSample sample;  // inputs only
};

/// Builds the interleaved event schedule for a run: inputs every
/// @p in_period_ps from @p t0, output requests every @p out_period_ps.
/// At equal timestamps inputs sort first — the canonical ordering every
/// refinement level implements (input capture precedes the output stage).
std::vector<SrcEvent> make_schedule(const std::vector<StereoSample>& inputs,
                                    std::uint64_t in_period_ps,
                                    std::size_t output_count,
                                    std::uint64_t out_period_ps,
                                    std::uint64_t t0_ps = 0);

/// Signal-to-noise-and-distortion of @p samples against the single tone at
/// @p freq_hz (Goertzel bin vs. residual), in dB.  Used as the sanity
/// metric that the SRC actually converts audio, not as a bit-accuracy test.
double tone_snr_db(const std::vector<std::int16_t>& samples, double freq_hz,
                   double sample_rate_hz);

}  // namespace scflow::dsp
