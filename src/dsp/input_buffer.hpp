// The paper's CInputBuffer: a ring buffer whose read/write iterators
// encapsulate the wrap-around (Fig. 4) — "the iterator internally holds an
// index to an array and ensures a correct wrap around, because it can only
// be modified through public methods".
#pragma once

#include <array>
#include <cstdint>

#include "core/state_io.hpp"
#include "dsp/src_params.hpp"

namespace scflow::dsp {

/// Fixed-size power-of-two ring buffer of samples for one audio channel.
class InputBuffer {
 public:
  static constexpr int kSize = SrcParams::kBufferSize;
  static constexpr unsigned kMask = kSize - 1;

  /// Read access object: dereference + step backwards through history.
  /// Stepping below index 0 wraps to the top — callers never see indices.
  class ReadIterator {
   public:
    ReadIterator(const InputBuffer& buf, unsigned index)
        : buf_(&buf), index_(index & kMask) {}

    [[nodiscard]] std::int16_t operator*() const { return buf_->data_[index_]; }
    /// Moves one sample back in time (the convolution direction).
    ReadIterator& operator--() {
      index_ = (index_ - 1) & kMask;
      return *this;
    }
    ReadIterator& operator++() {
      index_ = (index_ + 1) & kMask;
      return *this;
    }
    [[nodiscard]] unsigned index() const { return index_; }

   private:
    const InputBuffer* buf_;
    unsigned index_;
  };

  /// Write access object: append a sample and advance.
  class WriteIterator {
   public:
    explicit WriteIterator(InputBuffer& buf) : buf_(&buf) {}
    void push(std::int16_t v) {
      buf_->data_[buf_->head_ & kMask] = v;
      ++buf_->head_;
    }

   private:
    InputBuffer* buf_;
  };

  InputBuffer() { data_.fill(0); }

  [[nodiscard]] WriteIterator writer() { return WriteIterator(*this); }
  /// Iterator positioned @p lag samples behind the newest written sample.
  [[nodiscard]] ReadIterator reader_at_lag(unsigned lag) const {
    return ReadIterator(*this, head_ - 1 - lag);
  }
  [[nodiscard]] ReadIterator reader_at_index(unsigned ring_index) const {
    return ReadIterator(*this, ring_index);
  }

  /// Total samples written (the ring position is head % kSize).
  [[nodiscard]] std::uint64_t head() const { return head_; }

  /// Snapshot support (serve resilience layer): the whole ring image plus
  /// the monotonic head, so convolution history survives a restore.
  void save_state(core::StateWriter& w) const {
    w.u64(head_);
    for (std::int16_t v : data_) w.i16(v);
  }
  [[nodiscard]] bool load_state(core::StateReader& r) {
    head_ = r.u64();
    for (std::int16_t& v : data_) v = r.i16();
    return r.ok();
  }

 private:
  std::array<std::int16_t, kSize> data_{};
  std::uint64_t head_ = 0;
};

}  // namespace scflow::dsp
