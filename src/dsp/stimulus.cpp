#include "dsp/stimulus.hpp"

#include <algorithm>
#include <cmath>

namespace scflow::dsp {

std::vector<StereoSample> make_sine_stimulus(std::size_t count, double freq_hz,
                                             double sample_rate_hz, double amplitude) {
  std::vector<StereoSample> out(count);
  const double w = 2.0 * M_PI * freq_hz / sample_rate_hz;
  for (std::size_t i = 0; i < count; ++i) {
    const double v = amplitude * std::sin(w * static_cast<double>(i));
    const auto q = static_cast<std::int16_t>(std::lrint(v * 32767.0));
    // Right channel carries the same tone at half amplitude so channel
    // swaps are caught by the equivalence tests.
    out[i] = {q, static_cast<std::int16_t>(q / 2)};
  }
  return out;
}

std::vector<StereoSample> make_noise_stimulus(std::size_t count, std::uint64_t seed,
                                              int amplitude_bits) {
  std::vector<StereoSample> out(count);
  std::uint64_t x = seed | 1;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  const std::uint64_t mask = (1ull << amplitude_bits) - 1;
  const std::int64_t mid = 1ll << (amplitude_bits - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i].left = static_cast<std::int16_t>(static_cast<std::int64_t>(next() & mask) - mid);
    out[i].right = static_cast<std::int16_t>(static_cast<std::int64_t>(next() & mask) - mid);
  }
  return out;
}

std::vector<SrcEvent> make_schedule(const std::vector<StereoSample>& inputs,
                                    std::uint64_t in_period_ps, std::size_t output_count,
                                    std::uint64_t out_period_ps, std::uint64_t t0_ps) {
  std::vector<SrcEvent> events;
  events.reserve(inputs.size() + output_count);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    events.push_back({t0_ps + (i + 1) * in_period_ps, true, inputs[i]});
  for (std::size_t j = 0; j < output_count; ++j)
    events.push_back({t0_ps + (j + 1) * out_period_ps, false, {}});
  std::stable_sort(events.begin(), events.end(), [](const SrcEvent& a, const SrcEvent& b) {
    if (a.t_ps != b.t_ps) return a.t_ps < b.t_ps;
    return a.is_input && !b.is_input;  // inputs first at equal times
  });
  return events;
}

double tone_snr_db(const std::vector<std::int16_t>& samples, double freq_hz,
                   double sample_rate_hz) {
  if (samples.size() < 16) return 0.0;
  const std::size_t n = samples.size();
  // Least-squares fit of A*sin + B*cos at the exact tone frequency (no bin
  // quantisation, so off-bin leakage cannot corrupt the measurement).
  const double w = 2.0 * M_PI * freq_hz / sample_rate_hz;
  double ss = 0, sc = 0, cc = 0, xs = 0, xc = 0, total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(samples[i]);
    const double si = std::sin(w * static_cast<double>(i));
    const double co = std::cos(w * static_cast<double>(i));
    ss += si * si;
    sc += si * co;
    cc += co * co;
    xs += x * si;
    xc += x * co;
    total += x * x;
  }
  const double det = ss * cc - sc * sc;
  if (std::abs(det) < 1e-9) return 0.0;
  const double a = (xs * cc - xc * sc) / det;
  const double b = (xc * ss - xs * sc) / det;
  const double tone_power = a * a * ss + 2.0 * a * b * sc + b * b * cc;
  const double noise_power = std::max(total - tone_power, 1e-9);
  return 10.0 * std::log10(std::max(tone_power, 1e-9) / noise_power);
}

}  // namespace scflow::dsp
