#include "dsp/polyphase.hpp"

#include "dsp/filter_design.hpp"

namespace scflow::dsp {

CoefficientRom make_default_rom() {
  const auto proto = design_prototype(SrcParams::kProtoLen, SrcParams::kNumPhases);
  return CoefficientRom(quantise_prototype_half(proto, SrcParams::kNumPhases));
}

}  // namespace scflow::dsp
