// Prototype-filter design for the bandlimited-interpolation SRC
// (Smith/Gossett, the paper's reference [2]): a Kaiser-windowed sinc,
// quantised to the 16-bit coefficient ROM all refinement levels share.
#pragma once

#include <cstdint>
#include <vector>

namespace scflow::dsp {

/// Designs the full odd-length prototype in double precision.
/// @param length      odd filter length (SrcParams::kProtoLen)
/// @param phases      polyphase branch count (zero crossings every @p phases taps)
/// @param cutoff_scale fraction of Nyquist used as passband edge (<1 leaves
///                     transition margin for the 8-tap branches)
/// @param kaiser_beta  window shape parameter
std::vector<double> design_prototype(int length, int phases,
                                     double cutoff_scale = 0.9,
                                     double kaiser_beta = 8.0);

/// Quantises the symmetric prototype to Q1.15, normalised so the worst-case
/// polyphase branch DC gain is just below full scale (no overflow for
/// full-scale DC input).  Returns only the stored half: indices 0..len/2.
std::vector<std::int16_t> quantise_prototype_half(const std::vector<double>& proto,
                                                  int phases);

/// Quantises the symmetric prototype to Q1.15, normalised so the FULL
/// filter DC gain sits just below unity (0.98 * 2^15).  This is the
/// normalisation an anti-alias decimation stage needs: every output is
/// one complete convolution over all branches, so the whole-filter sum —
/// not the worst branch — is the DC gain.  Returns the stored half.
std::vector<std::int16_t> quantise_prototype_half_unity_dc(const std::vector<double>& proto);

/// Zeroth-order modified Bessel function (Kaiser window helper).
double bessel_i0(double x);

}  // namespace scflow::dsp
