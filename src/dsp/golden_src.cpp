#include "dsp/golden_src.hpp"

namespace scflow::dsp {

AlgorithmicSrc::AlgorithmicSrc(SrcMode mode, TimeBase time_base, bool inject_corner_bug)
    : time_base_(time_base),
      inject_corner_bug_(inject_corner_bug),
      quantizer_(SrcParams::kClockPs),
      tracker_(mode, time_base == TimeBase::kQuantizedCycles
                         ? std::uint64_t{SrcParams::kDividerLatencyCycles}
                         : SrcParams::kDividerLatencyCycles * SrcParams::kClockPs),
      filter_(make_default_rom()) {}

AlgorithmicSrc::AlgorithmicSrc(std::int64_t nominal_increment, TimeBase time_base)
    : time_base_(time_base),
      inject_corner_bug_(false),
      quantizer_(SrcParams::kClockPs),
      tracker_(nominal_increment, time_base == TimeBase::kQuantizedCycles
                                      ? std::uint64_t{SrcParams::kDividerLatencyCycles}
                                      : SrcParams::kDividerLatencyCycles * SrcParams::kClockPs),
      filter_(make_default_rom()) {}

void AlgorithmicSrc::set_mode(SrcMode mode) { tracker_.set_mode(mode); }

void AlgorithmicSrc::save_state(core::StateWriter& w) const {
  w.u8(started_ ? 1 : 0);
  w.i64(depth_);
  w.u64(bug_triggers_);
  w.u64(outputs_);
  for (const InputBuffer& b : buffer_) b.save_state(w);
  tracker_.save_state(w);
}

bool AlgorithmicSrc::load_state(core::StateReader& r) {
  started_ = r.u8() != 0;
  depth_ = r.i64();
  bug_triggers_ = r.u64();
  outputs_ = r.u64();
  for (InputBuffer& b : buffer_) {
    if (!b.load_state(r)) return false;
  }
  return tracker_.load_state(r) && r.ok();
}

std::uint64_t AlgorithmicSrc::tracker_time(std::uint64_t t_ps) const {
  return time_base_ == TimeBase::kContinuousPs ? t_ps : quantizer_.quantize_cycles(t_ps);
}

void AlgorithmicSrc::push_input(std::uint64_t t_ps, StereoSample s) {
  tracker_.on_input(tracker_time(t_ps));
  buffer_[0].writer().push(s.left);
  buffer_[1].writer().push(s.right);
  if (started_) {
    depth_ += DepthConstants::kOne;
    if (depth_ > DepthConstants::kMaxDepth) depth_ = DepthConstants::kMaxDepth;
  } else if (buffer_[0].head() >= SrcParams::kStartupFill) {
    started_ = true;
    depth_ = SrcParams::kStartReadLag * DepthConstants::kOne;
  }
}

StereoSample AlgorithmicSrc::pull_output(std::uint64_t t_ps) {
  // Observing the request first commits any divider result whose latency
  // has elapsed; a window closing on this very request only takes effect
  // kDividerLatencyCycles later (hardware divider timing).
  tracker_.on_output(tracker_time(t_ps));
  const std::int64_t inc = tracker_.increment();
  if (!started_) return {};
  ++outputs_;

  std::int64_t ceil_depth = (depth_ + DepthConstants::kFracMask) >> SrcParams::kFracBits;
  const int frac = static_cast<int>((-depth_) & DepthConstants::kFracMask);
  const int phase = frac >> SrcParams::kMuBits;
  const int mu = frac & ((1 << SrcParams::kMuBits) - 1);

  if (inject_corner_bug_ && mu == 0 && phase == 0) {
    // The bug: one extra sample of read lag in the exact-alignment corner.
    ++ceil_depth;
    ++bug_triggers_;
  }

  StereoSample out;
  const unsigned newest =
      static_cast<unsigned>(buffer_[0].head() - static_cast<std::uint64_t>(ceil_depth));
  out.left = filter_sample(buffer_[0], newest, filter_, phase, mu);
  out.right = filter_sample(buffer_[1], newest, filter_, phase, mu);

  if (depth_ > inc) depth_ -= inc;  // underrun guard: stall rather than starve
  return out;
}

}  // namespace scflow::dsp
