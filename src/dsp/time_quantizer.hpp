// Clock quantisation of sample-event times (paper Fig. 7): "since the
// events at which input and output samples occur can only be detected at
// clock edges, these events are slightly delayed... the time quantisation
// was manually propagated back to the golden model" — this class *is* that
// propagation.
#pragma once

#include <cstdint>

#include "dsp/src_params.hpp"

namespace scflow::dsp {

class TimeQuantizer {
 public:
  explicit TimeQuantizer(std::uint64_t clock_period_ps = SrcParams::kClockPs)
      : period_(clock_period_ps) {}

  /// First clock edge at which an event occurring at @p t_ps is observable.
  /// Edges sit at k * period (k >= 1); an event exactly on an edge is seen
  /// at that edge (signal updates land in the delta before the edge's
  /// sensitive processes run).
  [[nodiscard]] std::uint64_t quantize_ps(std::uint64_t t_ps) const {
    const std::uint64_t k = (t_ps + period_ - 1) / period_;
    return (k == 0 ? 1 : k) * period_;
  }

  /// Same, expressed as a cycle index (what the hardware counters measure).
  [[nodiscard]] std::uint64_t quantize_cycles(std::uint64_t t_ps) const {
    return quantize_ps(t_ps) / period_;
  }

  [[nodiscard]] std::uint64_t period_ps() const { return period_; }

 private:
  std::uint64_t period_;
};

}  // namespace scflow::dsp
