// The golden algorithmic model (paper §4.1): the initial executable
// specification all refinements are validated against.
//
// The model is event-driven by sample timestamps.  Two time bases exist:
//  * kContinuousPs — exact event times feed the rate tracker (the original
//    "zero-time" C++ specification);
//  * kQuantizedCycles — event times are first snapped to the 25 MHz clock
//    grid, reproducing what the clocked implementations observe.  This is
//    the paper's "time quantisation propagated back to the golden model"
//    (Fig. 7) and makes the golden model bit-exact with BEH/RTL/gates.
#pragma once

#include <cstdint>

#include "dsp/filter.hpp"
#include "dsp/input_buffer.hpp"
#include "dsp/polyphase.hpp"
#include "dsp/rate_tracker.hpp"
#include "dsp/src_params.hpp"
#include "dsp/time_quantizer.hpp"

namespace scflow::dsp {

class AlgorithmicSrc {
 public:
  enum class TimeBase { kContinuousPs, kQuantizedCycles };

  /// @param inject_corner_bug reproduces the paper's golden-model bug: in
  /// the mu == 0 corner the read position is computed one sample too old,
  /// which only becomes an *invalid* buffer access when the depth sits at
  /// the overrun cap — "an erroneous access to an invalid buffer position
  /// in some corner cases".
  AlgorithmicSrc(SrcMode mode, TimeBase time_base,
                 bool inject_corner_bug = false);

  /// Arbitrary-ratio variant: seeds the rate tracker with an explicit
  /// nominal Q3.15 increment instead of a SrcMode's table entry.  For the
  /// four paper pairs this is bit-identical to the SrcMode constructor —
  /// the gcd-decomposed streaming path (dsp::RationalSrc) rides on that.
  AlgorithmicSrc(std::int64_t nominal_increment, TimeBase time_base);

  void set_mode(SrcMode mode);

  /// A stereo input sample arriving at absolute time @p t_ps.
  void push_input(std::uint64_t t_ps, StereoSample s);

  /// An output request at absolute time @p t_ps; returns silence until the
  /// startup fill level is reached.
  StereoSample pull_output(std::uint64_t t_ps);

  /// Snapshot support (serve resilience layer): serializes everything the
  /// constructor does NOT determine — startup flag, depth accumulator,
  /// both channel rings, the rate tracker's measurement state — so a
  /// restored converter continues bit-identically.  The caller must
  /// reconstruct with the same (increment / mode, time base) first.
  void save_state(core::StateWriter& w) const;
  [[nodiscard]] bool load_state(core::StateReader& r);

  // Introspection (used by the refinement-equivalence tests).
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] std::int64_t depth() const { return depth_; }
  [[nodiscard]] std::int64_t increment() const { return tracker_.increment(); }
  [[nodiscard]] bool tracking() const { return tracker_.tracking(); }
  [[nodiscard]] std::uint64_t corner_bug_triggers() const { return bug_triggers_; }
  [[nodiscard]] std::uint64_t outputs_produced() const { return outputs_; }
  [[nodiscard]] const PolyphaseFilter& filter() const { return filter_; }

 private:
  [[nodiscard]] std::uint64_t tracker_time(std::uint64_t t_ps) const;

  TimeBase time_base_;
  bool inject_corner_bug_;
  TimeQuantizer quantizer_;
  RateTracker tracker_;
  PolyphaseFilter filter_;
  InputBuffer buffer_[SrcParams::kChannels];

  bool started_ = false;
  std::int64_t depth_ = 0;  ///< Q6.15 write-head minus read-position
  std::uint64_t bug_triggers_ = 0;
  std::uint64_t outputs_ = 0;
};

}  // namespace scflow::dsp
