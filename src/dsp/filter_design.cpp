#include "dsp/filter_design.hpp"

#include <cmath>
#include <stdexcept>

namespace scflow::dsp {

double bessel_i0(double x) {
  // Power series; converges quickly for the argument range Kaiser uses.
  double sum = 1.0;
  double term = 1.0;
  const double half_x = x / 2.0;
  for (int k = 1; k < 64; ++k) {
    term *= (half_x / k) * (half_x / k);
    sum += term;
    if (term < 1e-18 * sum) break;
  }
  return sum;
}

std::vector<double> design_prototype(int length, int phases, double cutoff_scale,
                                     double kaiser_beta) {
  if (length % 2 == 0) throw std::invalid_argument("prototype length must be odd");
  const int centre = length / 2;
  // Cutoff relative to the polyphase-upsampled rate: Nyquist of the input
  // stream sits at 0.5/phases; scale back for transition band.
  const double fc = 0.5 * cutoff_scale / phases;
  const double i0_beta = bessel_i0(kaiser_beta);

  std::vector<double> h(length);
  for (int n = 0; n < length; ++n) {
    const int m = n - centre;
    const double sinc = (m == 0) ? 2.0 * fc
                                 : std::sin(2.0 * M_PI * fc * m) / (M_PI * m);
    const double r = static_cast<double>(m) / centre;  // in [-1, 1]
    const double window = bessel_i0(kaiser_beta * std::sqrt(1.0 - r * r)) / i0_beta;
    h[n] = sinc * window;
  }
  return h;
}

std::vector<std::int16_t> quantise_prototype_half(const std::vector<double>& proto,
                                                  int phases) {
  const int length = static_cast<int>(proto.size());
  const int taps = (length - 1) / phases;

  // Worst-case branch DC gain decides the normalisation: a full-scale DC
  // input convolved with the largest branch must not clip the 16-bit output.
  double max_branch_sum = 0.0;
  for (int p = 0; p <= phases; ++p) {
    double s = 0.0;
    for (int k = 0; k < taps; ++k) s += proto[p + phases * k];
    max_branch_sum = std::max(max_branch_sum, std::abs(s));
  }
  const double scale = 0.98 * 32768.0 / max_branch_sum;

  std::vector<std::int16_t> half(length / 2 + 1);
  for (int i = 0; i < static_cast<int>(half.size()); ++i) {
    const double q = std::nearbyint(proto[i] * scale);
    half[i] = static_cast<std::int16_t>(std::max(-32768.0, std::min(32767.0, q)));
  }
  return half;
}

std::vector<std::int16_t> quantise_prototype_half_unity_dc(const std::vector<double>& proto) {
  const int length = static_cast<int>(proto.size());
  double dc = 0.0;
  for (double v : proto) dc += v;
  const double scale = 0.98 * 32768.0 / std::abs(dc);

  std::vector<std::int16_t> half(length / 2 + 1);
  for (int i = 0; i < static_cast<int>(half.size()); ++i) {
    const double q = std::nearbyint(proto[i] * scale);
    half[i] = static_cast<std::int16_t>(std::max(-32768.0, std::min(32767.0, q)));
  }
  return half;
}

}  // namespace scflow::dsp
