// Asynchronous rate estimation: the SRC's input and output sides run on
// unrelated clocks, so the phase increment is derived from *measured*
// arrival periods.  This measurement is what makes clock quantisation
// (paper Fig. 7) change output values: the clocked implementations measure
// integer cycle counts, the algorithmic model measures exact timestamps.
#pragma once

#include <cstdint>
#include <deque>

#include "core/state_io.hpp"
#include "dsp/src_params.hpp"

namespace scflow::dsp {

/// Window-based period measurement plus the increment division.
///
/// Timestamps are in arbitrary units (picoseconds for the continuous
/// models, clock cycles for the quantised/hardware ones).  A recomputed
/// increment *commits* only strictly after @p commit_latency units — the
/// hardware reality that the sequential divider needs
/// SrcParams::kDividerLatencyCycles clocks before the increment register
/// updates.  The golden model shares the rule so the refinement chain
/// stays bit-exact.
class RateTracker {
 public:
  RateTracker(SrcMode mode, std::uint64_t commit_latency)
      : commit_latency_(commit_latency) {
    set_mode(mode);
  }

  /// Arbitrary-ratio variant (streaming service sessions): the nominal
  /// increment is given directly instead of looked up from a SrcMode.
  /// For the four paper pairs the two constructors are bit-identical,
  /// since SrcParams::nominal_increment(mode) is exactly the rounded
  /// fs_in/fs_out quotient this path receives.
  RateTracker(std::int64_t nominal_increment, std::uint64_t commit_latency)
      : commit_latency_(commit_latency) {
    set_nominal_increment(nominal_increment);
  }

  void set_mode(SrcMode mode) {
    mode_ = mode;
    set_nominal_increment(SrcParams::nominal_increment(mode));
  }

  /// Resets tracking state and seeds the increment register (Q3.15).
  void set_nominal_increment(std::int64_t increment) {
    increment_ = increment;
    pending_.clear();
    in_ = Window{};
    out_ = Window{};
  }

  /// Records an input arrival; must be called before on_output for events
  /// that share a timestamp (the canonical input-first ordering).
  void on_input(std::uint64_t t) { observe(in_, t); }
  void on_output(std::uint64_t t) { observe(out_, t); }

  /// Committed phase increment, Q3.15 input-samples per output sample.
  [[nodiscard]] std::int64_t increment() const { return increment_; }
  [[nodiscard]] bool tracking() const { return in_.have_window && out_.have_window; }
  [[nodiscard]] bool update_pending() const { return !pending_.empty(); }
  [[nodiscard]] SrcMode mode() const { return mode_; }

  /// Snapshot support (serve resilience layer): serializes the full
  /// measurement state — committed increment, the divider's pending
  /// queue, both period windows — so a restored tracker continues the
  /// exact event-for-event trajectory.  Construction-time parameters
  /// (mode / commit latency) are NOT serialized; the caller re-seeds
  /// them by reconstructing the tracker first.
  void save_state(core::StateWriter& w) const {
    w.i64(increment_);
    w.u64(pending_.size());
    for (const Pending& p : pending_) {
      w.i64(p.inc);
      w.u64(p.ready);
    }
    save_window(w, in_);
    save_window(w, out_);
  }
  [[nodiscard]] bool load_state(core::StateReader& r) {
    increment_ = r.i64();
    const std::uint64_t n = r.u64();
    // The divider can hold at most one aborted + one live quotient; a
    // large count here means the payload is garbage, not a deep queue.
    if (n > 16) return false;
    pending_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      Pending p;
      p.inc = r.i64();
      p.ready = r.u64();
      pending_.push_back(p);
    }
    load_window(r, in_);
    load_window(r, out_);
    return r.ok();
  }

  /// The exact integer division the hardware divider implements.
  static std::int64_t divide_increment(std::uint64_t out_window, std::uint64_t in_window) {
    if (in_window == 0) return SrcParams::kIncMax;
    const std::int64_t q = static_cast<std::int64_t>(
        (out_window << SrcParams::kFracBits) / in_window);
    if (q < SrcParams::kIncMin) return SrcParams::kIncMin;
    if (q > SrcParams::kIncMax) return SrcParams::kIncMax;
    return q;
  }

 private:
  struct Window {
    std::uint64_t prev = 0;
    bool have_prev = false;
    std::uint64_t elapsed = 0;
    int count = 0;
    std::uint64_t window = 0;   ///< latched duration of the last full window
    bool have_window = false;
  };

  void observe(Window& w, std::uint64_t t) {
    // Quotients commit to the increment register exactly at their ready
    // instant; an event at the ready instant itself still reads the old
    // value (register update semantics), hence the strict comparison.
    commit_due(t);
    if (w.have_prev) {
      w.elapsed += t - w.prev;
      if (++w.count == SrcParams::kRateWindow) {
        w.window = w.elapsed;
        w.elapsed = 0;
        w.count = 0;
        w.have_window = true;
        if (tracking()) {
          // A close restarts the divider.  A division whose ready instant
          // has not been reached yet is aborted and never commits; one
          // whose ready instant is exactly now still commits (the register
          // write and the restart land on the same clock edge).
          if (!pending_.empty() && pending_.back().ready > t) pending_.pop_back();
          pending_.push_back({divide_increment(out_.window, in_.window),
                              t + commit_latency_});
        }
      }
    }
    w.prev = t;
    w.have_prev = true;
  }

  static void save_window(core::StateWriter& w, const Window& win) {
    w.u64(win.prev);
    w.u8(win.have_prev ? 1 : 0);
    w.u64(win.elapsed);
    w.u32(static_cast<std::uint32_t>(win.count));
    w.u64(win.window);
    w.u8(win.have_window ? 1 : 0);
  }
  static void load_window(core::StateReader& r, Window& win) {
    win.prev = r.u64();
    win.have_prev = r.u8() != 0;
    win.elapsed = r.u64();
    win.count = static_cast<int>(r.u32());
    win.window = r.u64();
    win.have_window = r.u8() != 0;
  }

  void commit_due(std::uint64_t t) {
    while (!pending_.empty() && pending_.front().ready < t) {
      increment_ = pending_.front().inc;
      pending_.pop_front();
    }
  }

  struct Pending {
    std::int64_t inc;
    std::uint64_t ready;
  };

  SrcMode mode_ = SrcMode::k48To48;
  std::uint64_t commit_latency_;
  std::int64_t increment_ = 1 << SrcParams::kFracBits;
  std::deque<Pending> pending_;
  Window in_;
  Window out_;
};

}  // namespace scflow::dsp
