// Fixed numeric contract of the sample-rate converter.
//
// Every refinement level — the algorithmic C++ model, the channel-based
// model, both behavioural models, both RTL models and the gate-level
// netlist — implements *exactly* this arithmetic, which is what makes the
// paper's per-step bit-accuracy revalidation possible.
#pragma once

#include <cstdint>

namespace scflow::dsp {

/// Operating modes selectable through the SRC_CTRL interface (paper Fig. 5).
enum class SrcMode : std::uint8_t {
  k44_1To48 = 0,   ///< CD -> DVD
  k48To44_1 = 1,   ///< DVD -> CD
  k48To48 = 2,     ///< pass-through resync
  k32To48 = 3,     ///< DAB -> DVD
};

struct SrcParams {
  // Datapath widths (the paper's "type refinement" step pins these down).
  static constexpr int kSampleBits = 16;     ///< audio samples, signed
  static constexpr int kCoeffBits = 16;      ///< ROM coefficients, signed Q1.15
  static constexpr int kAccBits = 40;        ///< MAC accumulator
  static constexpr int kIncBits = 18;        ///< phase increment (Q3.15)

  // Phase accumulator layout.
  static constexpr int kFracBits = 15;       ///< fractional input-sample bits
  static constexpr int kPhaseBits = 5;       ///< 32 polyphase branches
  static constexpr int kMuBits = 10;         ///< intra-phase interpolation
  static constexpr int kNumPhases = 1 << kPhaseBits;
  static constexpr int kTapsPerPhase = 8;
  /// Odd-length symmetric prototype: centre tap + 128 mirrored pairs.
  static constexpr int kProtoLen = kNumPhases * kTapsPerPhase + 1;  // 257
  static constexpr int kProtoHalfLen = kProtoLen / 2 + 1;           // 129 stored

  // Input ring buffer (per channel).
  static constexpr int kBufferLog2 = 6;
  static constexpr int kBufferSize = 1 << kBufferLog2;  // 64 samples
  static constexpr int kChannels = 2;                   // stereo

  // Startup: output production begins once this many input samples landed;
  // the read position then starts kStartReadLag samples behind the head.
  static constexpr int kStartupFill = 16;
  static constexpr int kStartReadLag = 8;

  // Asynchronous rate tracking.
  static constexpr int kRateWindow = 16;     ///< arrivals per measurement window
  /// Clocks between a window closing and the increment register updating
  /// (32 divider steps plus control overhead, padded to a fixed latency).
  static constexpr int kDividerLatencyCycles = 40;
  static constexpr std::int64_t kIncMin = 1 << 13;
  static constexpr std::int64_t kIncMax = (1 << kIncBits) - 1;

  // System clock: the paper's 40 ns timing constraint (25 MHz).
  static constexpr std::uint64_t kClockPs = 40'000;

  // Nominal stimulus periods (integer picoseconds, close to the exact rates).
  static constexpr std::uint64_t kPeriod44k1Ps = 22'675'737;  // ~44.1 kHz
  static constexpr std::uint64_t kPeriod48kPs = 20'833'333;   // ~48 kHz
  static constexpr std::uint64_t kPeriod32kPs = 31'250'000;   // 32 kHz

  /// Nominal phase increment for a mode: round(f_in / f_out * 2^15).
  static constexpr std::int64_t nominal_increment(SrcMode m) {
    switch (m) {
      case SrcMode::k44_1To48: return 30106;   // 44100/48000 * 32768
      case SrcMode::k48To44_1: return 35665;   // 48000/44100 * 32768
      case SrcMode::k48To48: return 32768;
      case SrcMode::k32To48: return 21845;     // 32000/48000 * 32768
    }
    return 32768;
  }

  static constexpr std::uint64_t input_period_ps(SrcMode m) {
    switch (m) {
      case SrcMode::k44_1To48: return kPeriod44k1Ps;
      case SrcMode::k48To44_1: return kPeriod48kPs;
      case SrcMode::k48To48: return kPeriod48kPs;
      case SrcMode::k32To48: return kPeriod32kPs;
    }
    return kPeriod48kPs;
  }

  static constexpr std::uint64_t output_period_ps(SrcMode m) {
    switch (m) {
      case SrcMode::k48To44_1: return kPeriod44k1Ps;
      default: return kPeriod48kPs;
    }
  }
};

/// Read-position bookkeeping shared by all levels: the depth D is the
/// Q6.15 distance between the write head and the fractional read position.
struct DepthConstants {
  static constexpr std::int64_t kOne = std::int64_t{1} << SrcParams::kFracBits;
  static constexpr std::int64_t kFracMask = kOne - 1;
  /// Overrun cap: reads never age past 55 samples (checking memories use
  /// age <= 55 as the validity contract, so the injected corner-case bug
  /// is exactly one step outside it).
  static constexpr std::int64_t kMaxDepth = 48 * kOne;
};

/// One stereo sample.
struct StereoSample {
  std::int16_t left = 0;
  std::int16_t right = 0;
  friend bool operator==(const StereoSample&, const StereoSample&) = default;
};

}  // namespace scflow::dsp
