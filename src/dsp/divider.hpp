// Sequential restoring divider — the datapath block the refined models use
// to implement RateTracker::divide_increment in hardware.  One quotient bit
// per step; bit-exact with C++ integer division (restoring division *is*
// floor division), which the tests verify exhaustively enough.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace scflow::dsp {

/// Cycle-accurate model of an N/D restoring divider (32-bit dividend,
/// 16-bit divisor, 32-bit quotient).  Drive start(), then step() once per
/// clock until done().
class RestoringDivider {
 public:
  static constexpr int kDividendBits = 32;

  void start(std::uint32_t dividend, std::uint16_t divisor) {
    remainder_ = 0;
    quotient_ = dividend;
    divisor_ = divisor;
    steps_left_ = kDividendBits;
    busy_ = true;
  }

  /// One clock of work: shift in the next dividend bit, trial-subtract.
  void step() {
    if (!busy_) throw std::logic_error("divider stepped while idle");
    // Shift (remainder, quotient) left by one, pulling the quotient MSB in.
    remainder_ = (remainder_ << 1) | (quotient_ >> 31);
    quotient_ <<= 1;
    if (remainder_ >= divisor_) {  // trial subtraction succeeds
      remainder_ -= divisor_;
      quotient_ |= 1;
    }
    if (--steps_left_ == 0) busy_ = false;
  }

  [[nodiscard]] bool done() const { return !busy_; }
  [[nodiscard]] std::uint32_t quotient() const { return quotient_; }
  [[nodiscard]] std::uint32_t remainder() const { return static_cast<std::uint32_t>(remainder_); }
  [[nodiscard]] int steps_remaining() const { return steps_left_; }

  /// Convenience: runs the full division in one call.
  static std::uint32_t divide(std::uint32_t dividend, std::uint16_t divisor) {
    RestoringDivider d;
    d.start(dividend, divisor);
    while (!d.done()) d.step();
    return d.quotient();
  }

 private:
  std::uint64_t remainder_ = 0;  // needs divisor width + 1 bits
  std::uint32_t quotient_ = 0;
  std::uint16_t divisor_ = 1;
  int steps_left_ = 0;
  bool busy_ = false;
};

}  // namespace scflow::dsp
