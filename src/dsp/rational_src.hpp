// Arbitrary-rational-ratio sample-rate conversion (ROADMAP item 3): the
// streaming-service generalisation of the paper's four fixed SrcModes.
//
// A requested fs_in -> fs_out pair is gcd-reduced to L/M (up/down) and
// decomposed into integer stages around the existing fixed-point
// polyphase interpolation core (shibatch-ssrc style Oversample /
// Undersample staging):
//
//   input --[x o1]--[x o2]--> AlgorithmicSrc core --[/ d1]--[/ d2]--> output
//
// The integer stages are classic polyphase FIR interpolators / anti-alias
// decimators whose prototypes come from the SAME filter-design machinery
// (Kaiser-windowed sinc, Q1.15 quantisation) and whose arithmetic is the
// SAME SrcParams contract (16-bit samples, 40-bit accumulate, round-half-
// up at the Q15 point).  The fractional core is literally AlgorithmicSrc
// driven with the canonical nominal-period event timeline, so for the
// four paper pairs — which plan as stage-free "direct" conversions — the
// output is bit-exact with the golden model on either time base
// (tests/test_rational_src.cpp pins that sample-for-sample).
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/golden_src.hpp"
#include "dsp/src_params.hpp"

namespace scflow::dsp {

/// Supported session rates (audio-shaped; keeps stage factors bounded).
inline constexpr std::uint32_t kMinRateHz = 4'000;
inline constexpr std::uint32_t kMaxRateHz = 768'000;

/// Nominal period of a sample rate in integer picoseconds (round to
/// nearest).  Reproduces the SrcParams constants: 44100 -> kPeriod44k1Ps,
/// 48000 -> kPeriod48kPs, 32000 -> kPeriod32kPs.
constexpr std::uint64_t rate_period_ps(std::uint32_t hz) {
  return (1'000'000'000'000ULL + hz / 2) / hz;
}

/// round(fs_in / fs_out * 2^15) — the nominal Q3.15 phase increment of a
/// rate pair.  Matches SrcParams::nominal_increment for three of the four
/// paper modes; the k48To44_1 table entry is the *truncated* 35665, one
/// LSB below round-to-nearest, so plan_ratio() pins the paper pairs to
/// the legacy table seeds rather than this formula.
constexpr std::int64_t nominal_increment_for(std::uint32_t fs_in, std::uint32_t fs_out) {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(fs_in) << SrcParams::kFracBits) + fs_out / 2) /
         static_cast<std::int64_t>(fs_out);
}

/// The gcd decomposition of one rate pair into integer stages plus the
/// fractional core.  Built by plan_ratio(); immutable afterwards.
struct RatioPlan {
  std::uint32_t fs_in_hz = 0;
  std::uint32_t fs_out_hz = 0;
  std::uint32_t up = 1;    ///< L = fs_out / gcd(fs_in, fs_out)
  std::uint32_t down = 1;  ///< M = fs_in  / gcd(fs_in, fs_out)

  /// Input-side integer interpolators (factors in cascade order); their
  /// product raises the core input rate to fs_in * oversample_total().
  std::vector<int> oversample_stages;
  /// Output-side integer decimators; the core produces fs_out *
  /// undersample_total() and the cascade divides back down to fs_out.
  std::vector<int> undersample_stages;

  std::uint32_t core_fs_in_hz = 0;   ///< rate the fractional core consumes
  std::uint32_t core_fs_out_hz = 0;  ///< rate the fractional core produces
  std::int64_t core_increment = 0;   ///< nominal Q3.15 increment of the core

  [[nodiscard]] int oversample_total() const {
    int p = 1;
    for (int m : oversample_stages) p *= m;
    return p;
  }
  [[nodiscard]] int undersample_total() const {
    int p = 1;
    for (int m : undersample_stages) p *= m;
    return p;
  }
  /// Stage-free: the pair runs purely through the AlgorithmicSrc core —
  /// true for all four paper pairs (their ratios sit inside the core's
  /// comfortable increment band).
  [[nodiscard]] bool direct() const {
    return oversample_stages.empty() && undersample_stages.empty();
  }
  /// Upper bound on outputs one pushed input can release (service ring
  /// sizing / backpressure watermark).
  [[nodiscard]] std::size_t max_outputs_per_input() const {
    return static_cast<std::size_t>((fs_out_hz + fs_in_hz - 1) / fs_in_hz) + 2;
  }
};

/// Plans the decomposition for a rate pair.  Throws std::invalid_argument
/// when a rate is outside [kMinRateHz, kMaxRateHz].
RatioPlan plan_ratio(std::uint32_t fs_in_hz, std::uint32_t fs_out_hz);

/// One integer-factor polyphase FIR stage (stereo).  Interpolators emit
/// `factor` outputs per input (one per polyphase branch, 8 taps each);
/// decimators emit one output per `factor` inputs (one full 8*factor+1
/// tap anti-alias convolution).  Both run the SrcParams fixed-point
/// arithmetic via filter.hpp's round_saturate_output.
class IntegerStage {
 public:
  enum class Kind { kOversample, kUndersample };

  IntegerStage(Kind kind, int factor);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] int factor() const { return factor_; }

  /// Feeds one input sample; appends 0..factor outputs to @p out.
  std::size_t feed(StereoSample s, std::vector<StereoSample>& out);

  /// Snapshot support: history rings + cursors (coefficients are
  /// construction-determined and not serialized).
  void save_state(core::StateWriter& w) const;
  [[nodiscard]] bool load_state(core::StateReader& r);

 private:
  [[nodiscard]] std::int16_t convolve_branch(int ch, int branch) const;
  [[nodiscard]] std::int16_t convolve_full(int ch) const;

  Kind kind_;
  int factor_;
  std::vector<std::int16_t> coeffs_;  ///< full prototype, mirrored from the half
  // Per-channel history rings (power-of-two, newest at head_ - 1).
  unsigned ring_mask_;
  std::vector<std::int16_t> ring_[SrcParams::kChannels];
  unsigned head_ = 0;
  int phase_ = 0;  ///< decimator input-count modulo factor
};

/// The streaming arbitrary-ratio converter: push inputs one at a time;
/// every converted output that became computable is handed back
/// immediately.  Internally the core's event timeline is synthesised at
/// the canonical nominal periods (input k at (k+1)*P_in, output j at
/// (j+1)*P_out, inputs first on ties — exactly make_schedule's ordering),
/// so a direct plan replays the golden model's event sequence verbatim.
class RationalSrc {
 public:
  using TimeBase = AlgorithmicSrc::TimeBase;

  RationalSrc(std::uint32_t fs_in_hz, std::uint32_t fs_out_hz, TimeBase time_base);

  [[nodiscard]] const RatioPlan& plan() const { return plan_; }

  /// Feeds one input sample and writes the outputs that became computable
  /// to @p out (capacity @p cap).  Returns the number written.  A @p cap
  /// of at least plan().max_outputs_per_input() never truncates; fewer
  /// slots spill the excess into an internal carry drained by later calls.
  std::size_t push(StereoSample in, StereoSample* out, std::size_t cap);

  [[nodiscard]] std::uint64_t inputs_consumed() const { return inputs_; }
  [[nodiscard]] std::uint64_t outputs_produced() const { return outputs_; }

  /// Snapshot support (serve resilience layer): serializes the complete
  /// mid-stream state — event-timeline cursors, the fractional core, every
  /// integer stage's filter history, and the undrained-output carry — so
  /// that a converter reconstructed with the same (fs_in, fs_out, time
  /// base) and then load_state()ed produces the byte-identical remaining
  /// output stream.  load_state returns false (leaving the converter
  /// unusable) on truncated or shape-mismatched payloads; it never reads
  /// out of bounds.
  void save_state(core::StateWriter& w) const;
  [[nodiscard]] bool load_state(core::StateReader& r);

 private:
  void drain_core_until(std::uint64_t horizon_ps);
  void emit(StereoSample s);

  RatioPlan plan_;
  AlgorithmicSrc core_;
  std::vector<IntegerStage> pre_;   ///< oversample cascade (input side)
  std::vector<IntegerStage> post_;  ///< undersample cascade (output side)

  std::uint64_t core_in_period_ps_;
  std::uint64_t core_out_period_ps_;
  std::uint64_t core_inputs_ = 0;
  std::uint64_t core_outputs_ = 0;
  std::uint64_t inputs_ = 0;
  std::uint64_t outputs_ = 0;

  // Scratch for the cascade expansions (no per-push allocation once warm)
  // and the carry FIFO for undersized caller buffers.
  std::vector<StereoSample> expand_a_;
  std::vector<StereoSample> expand_b_;
  std::vector<StereoSample> post_tmp_;
  std::vector<StereoSample> ready_;
  std::size_t ready_read_ = 0;
};

}  // namespace scflow::dsp
