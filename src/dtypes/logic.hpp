// Four-valued logic scalar and vector, used by the gate-level simulator.
//
// The paper's gate-level bug anecdote depends on X-propagation: replacing
// the buffer memory with a checking simulation model made an invalid access
// visible at gate level.  A 0/1/X/Z value system is what makes that work.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace scflow {

/// One four-valued logic bit: 0, 1, X (unknown), Z (high impedance).
enum class Logic : std::uint8_t { L0 = 0, L1 = 1, X = 2, Z = 3 };

constexpr Logic logic_from_bool(bool b) { return b ? Logic::L1 : Logic::L0; }
constexpr bool logic_is_01(Logic v) { return v == Logic::L0 || v == Logic::L1; }
constexpr bool logic_to_bool(Logic v) { return v == Logic::L1; }

Logic logic_and(Logic a, Logic b);
Logic logic_or(Logic a, Logic b);
Logic logic_xor(Logic a, Logic b);
Logic logic_not(Logic a);
/// 2:1 mux with X-pessimism: an X select yields X unless both inputs agree.
Logic logic_mux(Logic sel, Logic a0, Logic a1);
/// Resolution of two drivers on one net (Z yields to the other driver).
Logic logic_resolve(Logic a, Logic b);

char logic_to_char(Logic v);
Logic logic_from_char(char c);

std::ostream& operator<<(std::ostream& os, Logic v);

/// A little-endian (index 0 = LSB) vector of four-valued bits.
class LogicVector {
 public:
  LogicVector() = default;
  explicit LogicVector(std::size_t width, Logic fill = Logic::X) : bits_(width, fill) {}

  static LogicVector from_uint(std::uint64_t v, std::size_t width);
  /// Parses a string like "01xz" (MSB first).
  static LogicVector from_string(const std::string& s);

  [[nodiscard]] std::size_t width() const { return bits_.size(); }
  [[nodiscard]] Logic at(std::size_t i) const { return bits_[i]; }
  void set(std::size_t i, Logic v) { bits_[i] = v; }

  /// True when every bit is 0 or 1.
  [[nodiscard]] bool is_fully_defined() const;
  /// Zero-extended numeric value; only valid when is_fully_defined().
  [[nodiscard]] std::uint64_t to_uint() const;
  [[nodiscard]] std::string to_string() const;  // MSB first

  friend bool operator==(const LogicVector& a, const LogicVector& b) { return a.bits_ == b.bits_; }

 private:
  std::vector<Logic> bits_;
};

std::ostream& operator<<(std::ostream& os, const LogicVector& v);

}  // namespace scflow
