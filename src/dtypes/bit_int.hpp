// Bit-accurate integer types with explicit widths.
//
// These types stand in for the SystemC sc_int/sc_uint/sc_bigint family the
// paper's "type refinement" step introduces ("the native C/C++ types were
// replaced by SystemC types with explicit bit-widths").  Arithmetic wraps to
// the declared width, exactly like two's-complement hardware registers, so a
// model written with BitInt is bit-accurate with the synthesised datapath.
#pragma once

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <type_traits>

namespace scflow {

/// Returns a mask with the low @p width bits set (width in 1..64).
constexpr std::uint64_t bit_mask(int width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Sign-extends the low @p width bits of @p v to a full int64_t.
constexpr std::int64_t sign_extend(std::uint64_t v, int width) {
  if (width >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t m = std::uint64_t{1} << (width - 1);
  const std::uint64_t x = v & bit_mask(width);
  return static_cast<std::int64_t>((x ^ m) - m);
}

/// Reduces @p v to the canonical value of a @p width-bit lane:
/// sign-extended when @p is_signed, zero-extended otherwise.
constexpr std::int64_t wrap_to_width(std::int64_t v, int width, bool is_signed) {
  const std::uint64_t u = static_cast<std::uint64_t>(v) & bit_mask(width);
  return is_signed ? sign_extend(u, width) : static_cast<std::int64_t>(u);
}

/// 64-bit two's-complement wrapping primitives.  The "compute in 64 bits,
/// then wrap" semantics promised by BitInt need modular arithmetic, and
/// signed overflow is undefined behaviour — so the intermediate goes
/// through unsigned.
constexpr std::int64_t wrapping_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b));
}
constexpr std::int64_t wrapping_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b));
}
constexpr std::int64_t wrapping_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b));
}
constexpr std::int64_t wrapping_neg(std::int64_t a) {
  return static_cast<std::int64_t>(0u - static_cast<std::uint64_t>(a));
}

/// Fixed-width two's-complement integer, W in [1, 64].
///
/// All arithmetic is performed in 64 bits and wrapped back to W bits, which
/// matches the semantics of a hardware register of that width.  Mixed-width
/// expressions must be widened explicitly (BitInt<W2,S>::from(x)), mirroring
/// the deliberate-width style hardware models use.
template <int W, bool Signed>
class BitInt {
  static_assert(W >= 1 && W <= 64, "BitInt supports widths 1..64");
  static_assert(W < 64 || Signed || true, "");

 public:
  static constexpr int width = W;
  static constexpr bool is_signed = Signed;

  constexpr BitInt() = default;
  constexpr BitInt(std::int64_t v) : value_(wrap_to_width(v, W, Signed)) {}  // NOLINT: implicit by design

  /// Explicit conversion from any other BitInt (re-wraps to this width).
  template <int W2, bool S2>
  static constexpr BitInt from(BitInt<W2, S2> other) {
    return BitInt(other.to_int64());
  }

  [[nodiscard]] constexpr std::int64_t to_int64() const { return value_; }
  [[nodiscard]] constexpr std::uint64_t to_uint64() const {
    return static_cast<std::uint64_t>(value_) & bit_mask(W);
  }
  [[nodiscard]] constexpr double to_double() const { return static_cast<double>(value_); }

  /// Raw bit pattern (zero-extended), as seen by a netlist.
  [[nodiscard]] constexpr std::uint64_t bits() const { return to_uint64(); }

  [[nodiscard]] static constexpr std::int64_t min_value() {
    return Signed ? -(std::int64_t{1} << (W - 1)) : 0;
  }
  [[nodiscard]] static constexpr std::int64_t max_value() {
    if constexpr (!Signed && W == 64) return std::numeric_limits<std::int64_t>::max();
    return Signed ? (std::int64_t{1} << (W - 1)) - 1
                  : static_cast<std::int64_t>(bit_mask(W));
  }

  [[nodiscard]] constexpr bool bit(int i) const { return ((to_uint64() >> i) & 1u) != 0; }

  /// Bit-range extraction [hi:lo], zero-extended into the result width.
  template <int RW = 64>
  [[nodiscard]] constexpr BitInt<RW, false> range(int hi, int lo) const {
    const std::uint64_t v = (to_uint64() >> lo) & bit_mask(hi - lo + 1);
    return BitInt<RW, false>(static_cast<std::int64_t>(v));
  }

  constexpr BitInt& set_bit(int i, bool b) {
    std::uint64_t u = to_uint64();
    if (b) u |= (std::uint64_t{1} << i); else u &= ~(std::uint64_t{1} << i);
    value_ = wrap_to_width(static_cast<std::int64_t>(u), W, Signed);
    return *this;
  }

  // Arithmetic (wrapping to W bits).
  friend constexpr BitInt operator+(BitInt a, BitInt b) { return BitInt(wrapping_add(a.value_, b.value_)); }
  friend constexpr BitInt operator-(BitInt a, BitInt b) { return BitInt(wrapping_sub(a.value_, b.value_)); }
  friend constexpr BitInt operator*(BitInt a, BitInt b) { return BitInt(wrapping_mul(a.value_, b.value_)); }
  friend constexpr BitInt operator/(BitInt a, BitInt b) { return BitInt(a.value_ / b.value_); }
  friend constexpr BitInt operator%(BitInt a, BitInt b) { return BitInt(a.value_ % b.value_); }
  friend constexpr BitInt operator&(BitInt a, BitInt b) { return BitInt(a.value_ & b.value_); }
  friend constexpr BitInt operator|(BitInt a, BitInt b) { return BitInt(a.value_ | b.value_); }
  friend constexpr BitInt operator^(BitInt a, BitInt b) { return BitInt(a.value_ ^ b.value_); }
  constexpr BitInt operator~() const { return BitInt(~value_); }
  constexpr BitInt operator-() const { return BitInt(wrapping_neg(value_)); }

  /// Shifts: logical left; right shift is arithmetic for signed, logical
  /// for unsigned (hardware convention).
  friend constexpr BitInt operator<<(BitInt a, int s) {
    if (s >= 64) return BitInt(0);
    return BitInt(static_cast<std::int64_t>(static_cast<std::uint64_t>(a.value_) << s));
  }
  friend constexpr BitInt operator>>(BitInt a, int s) {
    if (s >= 64) return BitInt(Signed && a.value_ < 0 ? -1 : 0);
    if constexpr (Signed) return BitInt(a.value_ >> s);
    return BitInt(static_cast<std::int64_t>(a.to_uint64() >> s));
  }

  constexpr BitInt& operator+=(BitInt b) { return *this = *this + b; }
  constexpr BitInt& operator-=(BitInt b) { return *this = *this - b; }
  constexpr BitInt& operator*=(BitInt b) { return *this = *this * b; }
  constexpr BitInt& operator<<=(int s) { return *this = *this << s; }
  constexpr BitInt& operator>>=(int s) { return *this = *this >> s; }
  constexpr BitInt& operator++() { return *this = *this + BitInt(1); }
  constexpr BitInt& operator--() { return *this = *this - BitInt(1); }

  friend constexpr bool operator==(BitInt a, BitInt b) { return a.value_ == b.value_; }
  friend constexpr auto operator<=>(BitInt a, BitInt b) { return a.value_ <=> b.value_; }

  friend std::ostream& operator<<(std::ostream& os, BitInt v) { return os << v.value_; }

 private:
  std::int64_t value_ = 0;  // canonical (sign/zero-extended) value
};

template <int W> using Int = BitInt<W, true>;
template <int W> using UInt = BitInt<W, false>;

/// Saturates @p v into the representable range of a W-bit lane.
constexpr std::int64_t saturate_to_width(std::int64_t v, int width, bool is_signed) {
  const std::int64_t lo = is_signed ? -(std::int64_t{1} << (width - 1)) : 0;
  const std::int64_t hi = is_signed ? (std::int64_t{1} << (width - 1)) - 1
                                    : static_cast<std::int64_t>(bit_mask(width));
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Minimum number of bits needed to represent @p v as an unsigned value.
constexpr int bits_for_unsigned(std::uint64_t v) {
  int n = 0;
  while (v != 0) { ++n; v >>= 1; }
  return n == 0 ? 1 : n;
}

}  // namespace scflow
