#include "dtypes/logic.hpp"

namespace scflow {

namespace {
constexpr Logic k0 = Logic::L0;
constexpr Logic k1 = Logic::L1;
constexpr Logic kX = Logic::X;
// Truth tables indexed [a][b]; Z behaves as X for gate inputs.
constexpr Logic kAnd[4][4] = {
    {k0, k0, k0, k0},
    {k0, k1, kX, kX},
    {k0, kX, kX, kX},
    {k0, kX, kX, kX},
};
constexpr Logic kOr[4][4] = {
    {k0, k1, kX, kX},
    {k1, k1, k1, k1},
    {kX, k1, kX, kX},
    {kX, k1, kX, kX},
};
constexpr Logic kXor[4][4] = {
    {k0, k1, kX, kX},
    {k1, k0, kX, kX},
    {kX, kX, kX, kX},
    {kX, kX, kX, kX},
};
}  // namespace

Logic logic_and(Logic a, Logic b) { return kAnd[static_cast<int>(a)][static_cast<int>(b)]; }
Logic logic_or(Logic a, Logic b) { return kOr[static_cast<int>(a)][static_cast<int>(b)]; }
Logic logic_xor(Logic a, Logic b) { return kXor[static_cast<int>(a)][static_cast<int>(b)]; }

Logic logic_not(Logic a) {
  switch (a) {
    case Logic::L0: return Logic::L1;
    case Logic::L1: return Logic::L0;
    default: return Logic::X;
  }
}

Logic logic_mux(Logic sel, Logic a0, Logic a1) {
  if (sel == Logic::L0) return a0 == Logic::Z ? Logic::X : a0;
  if (sel == Logic::L1) return a1 == Logic::Z ? Logic::X : a1;
  // Unknown select: result is known only if both data inputs agree on 0/1.
  if (a0 == a1 && logic_is_01(a0)) return a0;
  return Logic::X;
}

Logic logic_resolve(Logic a, Logic b) {
  if (a == Logic::Z) return b;
  if (b == Logic::Z) return a;
  if (a == b) return a;
  return Logic::X;
}

char logic_to_char(Logic v) {
  switch (v) {
    case Logic::L0: return '0';
    case Logic::L1: return '1';
    case Logic::X: return 'x';
    default: return 'z';
  }
}

Logic logic_from_char(char c) {
  switch (c) {
    case '0': return Logic::L0;
    case '1': return Logic::L1;
    case 'z': case 'Z': return Logic::Z;
    default: return Logic::X;
  }
}

std::ostream& operator<<(std::ostream& os, Logic v) { return os << logic_to_char(v); }

LogicVector LogicVector::from_uint(std::uint64_t v, std::size_t width) {
  LogicVector out(width, Logic::L0);
  for (std::size_t i = 0; i < width; ++i) out.bits_[i] = logic_from_bool((v >> i) & 1u);
  return out;
}

LogicVector LogicVector::from_string(const std::string& s) {
  LogicVector out(s.size(), Logic::X);
  for (std::size_t i = 0; i < s.size(); ++i) out.bits_[i] = logic_from_char(s[s.size() - 1 - i]);
  return out;
}

bool LogicVector::is_fully_defined() const {
  for (Logic b : bits_)
    if (!logic_is_01(b)) return false;
  return true;
}

std::uint64_t LogicVector::to_uint() const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits_.size() && i < 64; ++i)
    if (bits_[i] == Logic::L1) v |= (std::uint64_t{1} << i);
  return v;
}

std::string LogicVector::to_string() const {
  std::string s(bits_.size(), 'x');
  for (std::size_t i = 0; i < bits_.size(); ++i) s[bits_.size() - 1 - i] = logic_to_char(bits_[i]);
  return s;
}

std::ostream& operator<<(std::ostream& os, const LogicVector& v) { return os << v.to_string(); }

}  // namespace scflow
