// Fixed-point value type used during the paper's type-refinement step.
//
// A Fixed<W, F, Signed> holds a W-bit two's-complement integer interpreted
// as value * 2^-F.  Construction from double supports the rounding and
// saturation choices a designer makes when quantising an algorithmic model.
#pragma once

#include <cmath>
#include <ostream>

#include "dtypes/bit_int.hpp"

namespace scflow {

enum class Rounding { kTruncate, kNearest };
enum class Overflow { kWrap, kSaturate };

template <int W, int F, bool Signed = true>
class Fixed {
  static_assert(F >= 0 && F <= W, "fractional bits must fit the word");

 public:
  static constexpr int width = W;
  static constexpr int frac_bits = F;
  using Raw = BitInt<W, Signed>;

  constexpr Fixed() = default;
  constexpr explicit Fixed(Raw raw) : raw_(raw) {}

  /// Quantises @p v (real value) into the fixed-point grid.
  static Fixed from_double(double v, Rounding r = Rounding::kNearest,
                           Overflow o = Overflow::kSaturate) {
    const double scaled = std::ldexp(v, F);
    const double q = (r == Rounding::kNearest) ? std::nearbyint(scaled) : std::trunc(scaled);
    auto i = static_cast<std::int64_t>(q);
    if (o == Overflow::kSaturate) i = saturate_to_width(i, W, Signed);
    return Fixed(Raw(i));
  }

  static constexpr Fixed from_raw(std::int64_t raw) { return Fixed(Raw(raw)); }

  [[nodiscard]] constexpr Raw raw() const { return raw_; }
  [[nodiscard]] double to_double() const { return std::ldexp(static_cast<double>(raw_.to_int64()), -F); }

  friend constexpr Fixed operator+(Fixed a, Fixed b) { return Fixed(a.raw_ + b.raw_); }
  friend constexpr Fixed operator-(Fixed a, Fixed b) { return Fixed(a.raw_ - b.raw_); }
  constexpr Fixed operator-() const { return Fixed(-raw_); }

  /// Full-precision product re-quantised back to this format (truncating),
  /// the way a hardware MAC path truncates its accumulator tail.
  friend constexpr Fixed operator*(Fixed a, Fixed b) {
    const std::int64_t p = a.raw_.to_int64() * b.raw_.to_int64();
    return Fixed(Raw(p >> F));
  }

  friend constexpr bool operator==(Fixed a, Fixed b) { return a.raw_ == b.raw_; }
  friend constexpr auto operator<=>(Fixed a, Fixed b) { return a.raw_ <=> b.raw_; }

  friend std::ostream& operator<<(std::ostream& os, Fixed v) { return os << v.to_double(); }

 private:
  Raw raw_;
};

}  // namespace scflow
