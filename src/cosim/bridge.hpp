// Co-simulation bridge (the paper's SystemC/HDL-Cosim substitute): the
// compiled SystemC-style testbench lives in the minisc kernel while the
// DUT runs in the interpreted HDL simulator; the bridge synchronises the
// two at stimulus-event boundaries (the synchronisation-point negotiation
// real cosim tools perform), batching the DUT clocks in between.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "core/pins.hpp"
#include "dsp/src_params.hpp"
#include "dsp/stimulus.hpp"
#include "hdlsim/dut.hpp"
#include "kernel/module.hpp"

namespace scflow::cosim {

namespace dsp = scflow::dsp;

class DutBridge : public minisc::Module {
 public:
  /// @param sync_cycles sorted, unique clock-cycle indices at which the
  /// testbench drives new pin values (the negotiated sync points).
  DutBridge(minisc::Simulation& sim, std::string name, model::SrcPins& pins,
            hdlsim::Dut& dut, dsp::SrcMode mode,
            std::vector<std::uint64_t> sync_cycles);

  /// Number of cross-boundary synchronisations (batches) performed.
  [[nodiscard]] std::uint64_t sync_count() const { return syncs_; }
  [[nodiscard]] std::uint64_t dut_cycles() const { return dut_cycle_; }

 private:
  void run();
  /// Advances the DUT to (and including) edge @p target, publishing any
  /// out_valid toggle it produces on the way; returns true if a result was
  /// published.
  bool advance_to(std::uint64_t target);
  void transfer_inputs();

  model::SrcPins* pins_;
  hdlsim::Dut* dut_;
  // Resolved DUT port handles (see Dut::input_handle).
  int h_in_strobe_ = -1, h_in_left_ = -1, h_in_right_ = -1, h_out_req_ = -1;
  int h_out_valid_ = -1, h_out_left_ = -1, h_out_right_ = -1;
  std::vector<std::uint64_t> sync_cycles_;
  std::uint64_t dut_cycle_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t last_valid_ = 0;
};

struct CosimResult {
  std::vector<dsp::StereoSample> outputs;
  minisc::SimulationStats kernel_stats;
  std::uint64_t cycles = 0;
  std::uint64_t syncs = 0;
  hdlsim::SimCounters dut_counters;
  /// Per-worker sweep shards of a parallel DUT engine (empty when the DUT
  /// engine is single-threaded); shard sums reproduce dut_counters totals.
  std::vector<hdlsim::WorkerShardStats> dut_workers;
  /// DUT evaluations, derived from the one SimCounters copy so it cannot
  /// drift from dut_counters.evaluations.
  [[nodiscard]] std::uint64_t dut_work_units() const { return dut_counters.evaluations; }

  /// Records the whole result — kernel stats under "<prefix>.kernel.*",
  /// DUT counters under "<prefix>.dut.*" (plus "<prefix>.dut.worker<k>.*"
  /// shards when the DUT ran multi-lane), bridge sync counts under
  /// "<prefix>.bridge.*" — into the unified registry.
  void record_into(scflow::obs::Registry& reg, std::string_view prefix) const;
};

/// Runs a schedule against @p dut with the compiled minisc testbench
/// (PinProducer/PinConsumer) through the bridge.  @p on_run_start fires
/// after elaboration/setup, immediately before the kernel starts — the
/// benches use it to keep setup out of the timed region.
CosimResult run_cosim(hdlsim::Dut& dut, dsp::SrcMode mode,
                      const std::vector<dsp::SrcEvent>& events,
                      const std::function<void()>& on_run_start = {});

}  // namespace scflow::cosim
