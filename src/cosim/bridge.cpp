#include "cosim/bridge.hpp"

#include <algorithm>

#include "core/testbench.hpp"
#include "dsp/time_quantizer.hpp"
#include "dtypes/bit_int.hpp"
#include "obs/registry.hpp"

namespace scflow::cosim {

using P = dsp::SrcParams;

DutBridge::DutBridge(minisc::Simulation& sim, std::string name, model::SrcPins& pins,
                     hdlsim::Dut& dut, dsp::SrcMode mode,
                     std::vector<std::uint64_t> sync_cycles)
    : Module(sim, std::move(name)),
      pins_(&pins),
      dut_(&dut),
      sync_cycles_(std::move(sync_cycles)) {
  dut.set_input("mode", static_cast<std::uint64_t>(mode));
  // Port handles resolved once; every per-cycle transfer across the
  // bridge then skips the DUT's name lookup.
  h_in_strobe_ = dut.input_handle("in_strobe");
  h_in_left_ = dut.input_handle("in_left");
  h_in_right_ = dut.input_handle("in_right");
  h_out_req_ = dut.input_handle("out_req");
  h_out_valid_ = dut.output_handle("out_valid");
  h_out_left_ = dut.output_handle("out_left");
  h_out_right_ = dut.output_handle("out_right");
  dut.set_input(h_in_strobe_, 0);
  dut.set_input(h_in_left_, 0);
  dut.set_input(h_in_right_, 0);
  dut.set_input(h_out_req_, 0);
  thread("sync", [this] { run(); });
}

void DutBridge::transfer_inputs() {
  dut_->set_input(h_in_strobe_, pins_->in_strobe.read() ? 1 : 0);
  dut_->set_input(h_in_left_, pins_->in_left.read().to_uint64());
  dut_->set_input(h_in_right_, pins_->in_right.read().to_uint64());
  dut_->set_input(h_out_req_, pins_->out_req.read() ? 1 : 0);
}

bool DutBridge::advance_to(std::uint64_t target) {
  bool publish = false;
  while (dut_cycle_ < target) {
    dut_->step();
    ++dut_cycle_;
    const std::uint64_t valid = dut_->output(h_out_valid_);
    if (valid != last_valid_) {
      last_valid_ = valid;
      publish = true;  // at most one result per inter-event batch
    }
  }
  if (publish) {
    pins_->out_left.write(model::Sample16(
        static_cast<std::int64_t>(scflow::sign_extend(dut_->output(h_out_left_), 16))));
    pins_->out_right.write(model::Sample16(
        static_cast<std::int64_t>(scflow::sign_extend(dut_->output(h_out_right_), 16))));
    pins_->out_valid.write(last_valid_ != 0);
  }
  return publish;
}

void DutBridge::run() {
  for (const std::uint64_t ec : sync_cycles_) {
    // Wake at the stimulus edge, then yield one zero-time step so pin
    // writes from same-instant testbench threads have settled.
    const std::uint64_t wake = ec * P::kClockPs;
    const std::uint64_t now = sim().now().picoseconds();
    if (wake > now) wait(minisc::Time::ps(wake - now));
    wait(minisc::Time::ps(0));
    ++syncs_;
    // Catch the DUT up to the cycle *before* the new stimulus; if a result
    // was published, yield once so the pin toggle commits before a second
    // result from the stimulus edge itself could overwrite it.
    if (advance_to(ec - 1)) wait(minisc::Time::ps(0));
    // Apply the pins and clock the stimulus edge.
    transfer_inputs();
    advance_to(ec);
  }
  // Drain: let in-flight computations finish.
  ++syncs_;
  advance_to(dut_cycle_ + 300);
}

CosimResult run_cosim(hdlsim::Dut& dut, dsp::SrcMode mode,
                      const std::vector<dsp::SrcEvent>& events,
                      const std::function<void()>& on_run_start) {
  minisc::Simulation sim;
  model::SrcPins pins(sim);
  model::PinProducer producer(sim, pins, events);
  model::PinConsumer consumer(sim, pins, events);

  const dsp::TimeQuantizer quant(P::kClockPs);
  std::vector<std::uint64_t> sync_cycles;
  for (const auto& e : events) sync_cycles.push_back(quant.quantize_cycles(e.t_ps));
  std::sort(sync_cycles.begin(), sync_cycles.end());
  sync_cycles.erase(std::unique(sync_cycles.begin(), sync_cycles.end()),
                    sync_cycles.end());
  DutBridge bridge(sim, "bridge", pins, dut, mode, std::move(sync_cycles));

  if (on_run_start) on_run_start();
  sim.run();

  CosimResult r;
  r.outputs = consumer.outputs;
  r.kernel_stats = sim.stats();
  r.cycles = bridge.dut_cycles();
  r.syncs = bridge.sync_count();
  r.dut_counters = dut.counters();
  r.dut_workers = dut.worker_stats();
  return r;
}

void CosimResult::record_into(scflow::obs::Registry& reg, std::string_view prefix) const {
  const std::string p(prefix);
  minisc::record_stats(reg, p + ".kernel", kernel_stats);
  dut_counters.record_into(reg, p + ".dut");
  // Shards only when the engine actually ran multi-lane: a single-lane
  // report would just duplicate the totals above.
  if (dut_workers.size() > 1) {
    for (std::size_t w = 0; w < dut_workers.size(); ++w)
      dut_workers[w].record_into(reg, p + ".dut.worker" + std::to_string(w));
  }
  reg.set_counter(p + ".bridge.syncs", syncs);
  reg.set_counter(p + ".bridge.dut_cycles", cycles);
}

}  // namespace scflow::cosim
