#include "verilog/parser.hpp"

#include <cctype>
#include <climits>
#include <map>
#include <optional>
#include <vector>

namespace scflow::vlog {

namespace {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }
  Token take() {
    Token t = current_;
    advance();
    return t;
  }
  [[noreturn]] void fail(const std::string& msg,
                         ParseError::Kind kind = ParseError::Kind::kSyntax) const {
    // A syntax mismatch at end-of-input is a truncated file, which callers
    // may want to treat as retryable (partial write) rather than corrupt.
    if (kind == ParseError::Kind::kSyntax && current_.kind == Token::Kind::kEnd)
      kind = ParseError::Kind::kTruncated;
    throw ParseError(kind, current_.line, msg);
  }

 private:
  void advance() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') { ++line_; ++pos_; continue; }
      if (std::isspace(static_cast<unsigned char>(c))) { ++pos_; continue; }
      if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
    current_.line = line_;
    if (pos_ >= text_.size()) {
      current_ = {Token::Kind::kEnd, "", line_};
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_' ||
              text_[pos_] == '$'))
        ++pos_;
      current_ = {Token::Kind::kIdent, text_.substr(start, pos_ - start), line_};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '\''))
        ++pos_;
      current_ = {Token::Kind::kNumber, text_.substr(start, pos_ - start), line_};
      return;
    }
    current_ = {Token::Kind::kPunct, std::string(1, c), line_};
    ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

struct PortDecl {
  bool is_input = false;
  int width = 1;
};

struct Parser {
  Lexer lex;
  explicit Parser(const std::string& text) : lex(text) {}

  std::string expect_ident() {
    if (lex.peek().kind != Token::Kind::kIdent) lex.fail("expected identifier");
    return lex.take().text;
  }
  void expect_punct(const std::string& p) {
    if (lex.peek().kind != Token::Kind::kPunct || lex.peek().text != p)
      lex.fail("expected '" + p + "'");
    lex.take();
  }
  bool accept_punct(const std::string& p) {
    if (lex.peek().kind == Token::Kind::kPunct && lex.peek().text == p) {
      lex.take();
      return true;
    }
    return false;
  }
  int expect_number() {
    if (lex.peek().kind != Token::Kind::kNumber) lex.fail("expected number");
    const std::string text = lex.take().text;
    // The lexer's number token also swallows based literals ("4'b0") and
    // ident tails ("0abc"); only plain bounded decimals are valid here.
    int value = 0;
    for (const char c : text) {
      if (c < '0' || c > '9') lex.fail("malformed number '" + text + "'");
      if (value > (INT_MAX - (c - '0')) / 10)
        lex.fail("number '" + text + "' out of range");
      value = value * 10 + (c - '0');
    }
    return value;
  }

  /// "name" or "name[index]" -> flattened bit reference.
  struct BitRef {
    std::string name;
    std::optional<int> index;
  };
  BitRef parse_bitref() {
    BitRef r;
    r.name = expect_ident();
    if (accept_punct("[")) {
      r.index = expect_number();
      expect_punct("]");
    }
    return r;
  }

  nl::Netlist run() {
    // module NAME (port, port, ...);
    if (expect_ident() != "module") lex.fail("expected 'module'");
    const std::string name = expect_ident();
    expect_punct("(");
    std::vector<std::string> port_order;
    if (!accept_punct(")")) {
      do {
        port_order.push_back(expect_ident());
      } while (accept_punct(","));
      expect_punct(")");
    }
    expect_punct(";");

    nl::Netlist out(name);
    std::map<std::string, PortDecl> ports;
    std::map<std::string, nl::NetId> wires;
    std::map<std::string, std::vector<nl::NetId>> port_nets;
    std::map<nl::CellType, std::string> module_names;
    auto cell_type_of = [this](const std::string& s) -> nl::CellType {
      for (int t = 0; t <= static_cast<int>(nl::CellType::kSdff); ++t)
        if (s == nl::cell_name(static_cast<nl::CellType>(t)))
          return static_cast<nl::CellType>(t);
      lex.fail("unknown cell type '" + s + "'", ParseError::Kind::kUnknownCell);
    };
    auto wire_net = [&wires, &out, this](const std::string& n) {
      const auto it = wires.find(n);
      if (it == wires.end())
        lex.fail("unknown wire '" + n + "'", ParseError::Kind::kBadReference);
      return it->second;
    };

    // Deferred connections: assigns and instances reference wires/ports.
    struct Assign {
      BitRef lhs;
      BitRef rhs;
    };
    std::vector<Assign> assigns;
    struct Instance {
      nl::CellType type;
      std::string name;  // provenance label; empty for auto "u<N>" names
      std::map<std::string, BitRef> pins;
      int init = 0;
    };
    std::vector<Instance> instances;

    while (true) {
      if (lex.peek().kind == Token::Kind::kEnd) lex.fail("missing endmodule");
      const std::string kw = expect_ident();
      if (kw == "endmodule") break;
      if (kw == "input" || kw == "output") {
        PortDecl d;
        d.is_input = kw == "input";
        if (accept_punct("[")) {
          const int msb = expect_number();
          if (msb >= 64) lex.fail("port width " + std::to_string(msb + 1) +
                                  " exceeds the 64-bit port limit");
          d.width = msb + 1;
          expect_punct(":");
          expect_number();
          expect_punct("]");
        }
        const std::string pn = expect_ident();
        if (ports.count(pn) != 0)
          lex.fail("duplicate port '" + pn + "'", ParseError::Kind::kDuplicateDecl);
        ports[pn] = d;
        expect_punct(";");
        continue;
      }
      if (kw == "wire") {
        do {
          const std::string n = expect_ident();
          if (wires.count(n) != 0)
            lex.fail("duplicate wire '" + n + "'", ParseError::Kind::kDuplicateDecl);
          wires[n] = out.new_net();
        } while (accept_punct(","));
        expect_punct(";");
        continue;
      }
      if (kw == "assign") {
        Assign a;
        a.lhs = parse_bitref();
        expect_punct("=");
        a.rhs = parse_bitref();
        expect_punct(";");
        assigns.push_back(std::move(a));
        continue;
      }
      // Gate instance: TYPE name (.pin(net), ...);
      Instance inst;
      inst.type = cell_type_of(kw);
      // Keep the instance name as cell provenance unless it is one of the
      // writer's auto-generated positional "u<N>" names.
      inst.name = expect_ident();
      bool auto_name = inst.name.size() > 1 && inst.name[0] == 'u';
      for (std::size_t i = 1; auto_name && i < inst.name.size(); ++i)
        auto_name = inst.name[i] >= '0' && inst.name[i] <= '9';
      if (auto_name) inst.name.clear();
      expect_punct("(");
      do {
        expect_punct(".");
        const std::string pin = expect_ident();
        expect_punct("(");
        if (pin == "init") {
          inst.init = expect_number();
        } else {
          inst.pins[pin] = parse_bitref();
        }
        expect_punct(")");
      } while (accept_punct(","));
      expect_punct(")");
      expect_punct(";");
      instances.push_back(std::move(inst));
    }

    // Materialise port nets from the bit-hookup assigns:
    //   assign nK = in_port[i];   assign out_port[i] = nK;
    for (const auto& pname : port_order) {
      const auto it = ports.find(pname);
      if (it == ports.end())
        lex.fail("port '" + pname + "' not declared", ParseError::Kind::kBadReference);
      port_nets[pname].assign(static_cast<std::size_t>(it->second.width), nl::kNoNet);
    }
    for (const auto& a : assigns) {
      const bool lhs_is_port = ports.count(a.lhs.name) != 0;
      const BitRef& port = lhs_is_port ? a.lhs : a.rhs;
      const BitRef& wire = lhs_is_port ? a.rhs : a.lhs;
      if (ports.count(port.name) == 0) lex.fail("assign between two wires unsupported");
      const std::size_t bit = static_cast<std::size_t>(port.index.value_or(0));
      auto& nets = port_nets[port.name];
      if (bit >= nets.size())
        lex.fail("bit index " + std::to_string(bit) + " out of range for port '" +
                     port.name + "' of width " + std::to_string(nets.size()),
                 ParseError::Kind::kBadReference);
      nets[bit] = wire_net(wire.name);
    }
    for (const auto& pname : port_order) {
      if (ports[pname].is_input) out.add_input(pname, port_nets[pname]);
      else out.add_output(pname, port_nets[pname]);
    }

    // Cells (output pin 'y', inputs a/b/c).
    for (const auto& inst : instances) {
      std::vector<nl::NetId> ins;
      static const char* const pin_names[] = {"a", "b", "c"};
      for (int i = 0; i < nl::cell_input_count(inst.type); ++i) {
        const auto it = inst.pins.find(pin_names[i]);
        if (it == inst.pins.end()) lex.fail("missing input pin on instance");
        ins.push_back(wire_net(it->second.name));
      }
      const auto yit = inst.pins.find("y");
      if (yit == inst.pins.end()) lex.fail("missing output pin on instance");
      // add_cell allocates a fresh output net; rewrite it to the wire.
      out.add_cell(inst.type, std::move(ins), inst.init);
      out.cells_mut().back().output = wire_net(yit->second.name);
      out.cells_mut().back().name = inst.name;
    }
    (void)module_names;
    // Semantic validation failures (undriven nets, combinational cycles the
    // hookups happened to form) surface under the same structured contract
    // as lexical ones: parse_structural throws ParseError, nothing else.
    try {
      out.validate();
    } catch (const std::exception& e) {
      lex.fail(std::string("invalid netlist: ") + e.what(),
               ParseError::Kind::kBadReference);
    }
    return out;
  }
};

}  // namespace

const char* parse_error_kind_name(ParseError::Kind k) {
  switch (k) {
    case ParseError::Kind::kSyntax: return "syntax";
    case ParseError::Kind::kTruncated: return "truncated";
    case ParseError::Kind::kUnknownCell: return "unknown_cell";
    case ParseError::Kind::kDuplicateDecl: return "duplicate_decl";
    case ParseError::Kind::kBadReference: return "bad_reference";
  }
  return "?";
}

nl::Netlist parse_structural(const std::string& text) { return Parser(text).run(); }

}  // namespace scflow::vlog
