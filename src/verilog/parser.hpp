// Structural Verilog parser for the subset write_structural() emits —
// enough to round-trip synthesised netlists (module header, port
// declarations, wire lists, bit-hookup assigns, gate instances).
#pragma once

#include <stdexcept>
#include <string>

#include "netlist/netlist.hpp"

namespace scflow::vlog {

/// Structured parse failure: carries the defect category and the 1-based
/// source line in addition to the formatted what() message, so callers can
/// route truncated-input retries differently from genuinely bad netlists.
class ParseError : public std::runtime_error {
 public:
  enum class Kind {
    kSyntax,         ///< token-level mismatch (missing punctuation, ...)
    kTruncated,      ///< input ended mid-module (unexpected end of file)
    kUnknownCell,    ///< instance of a cell type outside the gate library
    kDuplicateDecl,  ///< wire or port name declared twice
    kBadReference,   ///< undeclared wire / out-of-range port bit index
  };

  ParseError(Kind kind, int line, const std::string& msg)
      : std::runtime_error("verilog parse error at line " + std::to_string(line) +
                           ": " + msg),
        kind_(kind),
        line_(line) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] int line() const { return line_; }

 private:
  Kind kind_;
  int line_;
};

[[nodiscard]] const char* parse_error_kind_name(ParseError::Kind k);

/// Parses one structural module.  Throws ParseError (a std::runtime_error
/// with category + line number) on malformed input.  Macro metadata
/// (Netlist::macros) is not representable in plain structural Verilog and
/// is left empty.
[[nodiscard]] nl::Netlist parse_structural(const std::string& text);

}  // namespace scflow::vlog
