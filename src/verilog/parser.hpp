// Structural Verilog parser for the subset write_structural() emits —
// enough to round-trip synthesised netlists (module header, port
// declarations, wire lists, bit-hookup assigns, gate instances).
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace scflow::vlog {

/// Parses one structural module.  Throws std::runtime_error with a line
/// number on malformed input.  Macro metadata (Netlist::macros) is not
/// representable in plain structural Verilog and is left empty.
[[nodiscard]] nl::Netlist parse_structural(const std::string& text);

}  // namespace scflow::vlog
