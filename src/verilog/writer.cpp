#include "verilog/writer.hpp"

#include <sstream>

#include "dtypes/bit_int.hpp"

namespace scflow::vlog {

namespace {

std::string net_name(nl::NetId n) { return "n" + std::to_string(n); }

/// Verilog primitive/UDPs for each cell type (module names in our little
/// gate library).
const char* cell_module(nl::CellType t) {
  switch (t) {
    case nl::CellType::kTie0: return "TIE0";
    case nl::CellType::kTie1: return "TIE1";
    case nl::CellType::kBuf: return "BUF";
    case nl::CellType::kInv: return "INV";
    case nl::CellType::kAnd2: return "AND2";
    case nl::CellType::kOr2: return "OR2";
    case nl::CellType::kNand2: return "NAND2";
    case nl::CellType::kNor2: return "NOR2";
    case nl::CellType::kXor2: return "XOR2";
    case nl::CellType::kXnor2: return "XNOR2";
    case nl::CellType::kMux2: return "MUX2";
    case nl::CellType::kDff: return "DFF";
    case nl::CellType::kSdff: return "SDFF";
  }
  return "?";
}

const char* const kInputPinNames[] = {"a", "b", "c"};

/// Instance name for a cell: its provenance name (sanitised to a Verilog
/// identifier) when present, else a positional "u<index>".  Keeping the
/// provenance name in the output lets a re-parse recover flop identity, so
/// round-tripped netlists stay formally comparable (CEC pairs flop
/// boundaries by name).
std::string instance_name(const nl::Cell& c, std::size_t ci) {
  if (c.name.empty()) return "u" + std::to_string(ci);
  std::string id = c.name;
  for (char& ch : id) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == '$';
    if (!ok) ch = '_';
  }
  if (id[0] >= '0' && id[0] <= '9') id.insert(id.begin(), '_');
  return id;
}

}  // namespace

std::string write_structural(const nl::Netlist& netlist) {
  std::ostringstream os;
  os << "// structural netlist emitted by scflow\n";
  os << "module " << netlist.name() << " (";
  bool first = true;
  for (const auto& p : netlist.inputs()) {
    os << (first ? "" : ", ") << p.name;
    first = false;
  }
  for (const auto& p : netlist.outputs()) {
    os << (first ? "" : ", ") << p.name;
    first = false;
  }
  os << ");\n";
  for (const auto& p : netlist.inputs()) {
    os << "  input ";
    if (p.nets.size() > 1) os << "[" << p.nets.size() - 1 << ":0] ";
    os << p.name << ";\n";
  }
  for (const auto& p : netlist.outputs()) {
    os << "  output ";
    if (p.nets.size() > 1) os << "[" << p.nets.size() - 1 << ":0] ";
    os << p.name << ";\n";
  }
  if (netlist.net_count() > 0)
    os << "  wire n0";
  for (nl::NetId n = 1; n < netlist.net_count(); ++n) {
    os << ((n % 16 == 0) ? ";\n  wire " : ", ") << net_name(n);
  }
  if (netlist.net_count() > 0) os << ";\n";
  // Port bit hookup.
  for (const auto& p : netlist.inputs())
    for (std::size_t i = 0; i < p.nets.size(); ++i)
      os << "  assign " << net_name(p.nets[i]) << " = " << p.name
         << (p.nets.size() > 1 ? "[" + std::to_string(i) + "]" : "") << ";\n";
  for (const auto& p : netlist.outputs())
    for (std::size_t i = 0; i < p.nets.size(); ++i)
      os << "  assign " << p.name
         << (p.nets.size() > 1 ? "[" + std::to_string(i) + "]" : "") << " = "
         << net_name(p.nets[i]) << ";\n";
  // Gate instances.
  for (std::size_t ci = 0; ci < netlist.cells().size(); ++ci) {
    const auto& c = netlist.cells()[ci];
    os << "  " << cell_module(c.type) << " " << instance_name(c, ci) << " (.y("
       << net_name(c.output) << ")";
    for (std::size_t i = 0; i < c.inputs.size(); ++i)
      os << ", ." << kInputPinNames[i] << "(" << net_name(c.inputs[i]) << ")";
    if (nl::cell_is_sequential(c.type)) os << ", .init(" << c.init << ")";
    os << ");\n";
  }
  os << "endmodule\n";
  return os.str();
}

std::string write_behavioural(const rtl::Design& design) {
  std::ostringstream os;
  auto w = [&os, &design](rtl::NodeId id) -> std::string {
    return "w" + std::to_string(id);
  };
  os << "// behavioural RTL emitted by scflow\n";
  os << "module " << design.name() << " (clk";
  for (const auto& p : design.inputs()) os << ", " << p.name;
  for (const auto& p : design.outputs()) os << ", " << p.name;
  os << ");\n  input clk;\n";
  for (const auto& p : design.inputs())
    os << "  input [" << p.width - 1 << ":0] " << p.name << ";\n";
  for (const auto& p : design.outputs())
    os << "  output [" << p.width - 1 << ":0] " << p.name << ";\n";
  for (const auto& r : design.registers())
    os << "  reg [" << r.width - 1 << ":0] " << r.name << "_q;\n";

  const auto live = design.live_nodes();
  for (std::size_t i = 0; i < design.nodes().size(); ++i) {
    if (!live[i]) continue;
    const auto& n = design.nodes()[i];
    const auto id = static_cast<rtl::NodeId>(i);
    os << "  wire [" << n.width - 1 << ":0] " << w(id) << " = ";
    auto a = [&](int k) { return w(n.args[static_cast<std::size_t>(k)]); };
    auto sgn = [&](int k) {
      return "$signed(" + a(k) + ")";
    };
    using rtl::Op;
    switch (n.op) {
      case Op::kConst: os << n.width << "'d" << (static_cast<std::uint64_t>(n.imm) & scflow::bit_mask(n.width)); break;
      case Op::kInput: os << n.name; break;
      case Op::kRegQ: os << design.registers()[static_cast<std::size_t>(n.imm)].name << "_q"; break;
      case Op::kAdd: os << a(0) << " + " << a(1); break;
      case Op::kSub: os << a(0) << " - " << a(1); break;
      case Op::kAddC: os << a(0) << " + " << a(1) << " + " << a(2); break;
      case Op::kMul: os << sgn(0) << " * " << sgn(1); break;
      case Op::kAnd: os << a(0) << " & " << a(1); break;
      case Op::kOr: os << a(0) << " | " << a(1); break;
      case Op::kXor: os << a(0) << " ^ " << a(1); break;
      case Op::kNot: os << "~" << a(0); break;
      case Op::kEq: os << a(0) << " == " << a(1); break;
      case Op::kNe: os << a(0) << " != " << a(1); break;
      case Op::kLtU: os << a(0) << " < " << a(1); break;
      case Op::kLtS: os << sgn(0) << " < " << sgn(1); break;
      case Op::kShl: os << a(0) << " << " << n.imm; break;
      case Op::kShr: os << a(0) << " >> " << n.imm; break;
      case Op::kMux: os << a(0) << " ? " << a(2) << " : " << a(1); break;
      case Op::kSlice: os << a(0) << "[" << n.imm + n.width - 1 << ":" << n.imm << "]"; break;
      case Op::kZext: os << "{" << n.width - design.node(n.args[0]).width << "'d0, " << a(0) << "}"; break;
      case Op::kSext: os << "{{" << n.width - design.node(n.args[0]).width << "{" << a(0)
                         << "[" << design.node(n.args[0]).width - 1 << "]}}, " << a(0) << "}"; break;
      case Op::kRamRead:
        os << design.memories()[static_cast<std::size_t>(n.imm)].name << "[" << a(0) << "]";
        break;
      case Op::kRomRead:
        os << design.roms()[static_cast<std::size_t>(n.imm)].name << "[" << a(0) << "]";
        break;
    }
    os << ";\n";
  }

  os << "  always @(posedge clk) begin\n";
  for (const auto& r : design.registers()) {
    os << "    ";
    if (r.enable != rtl::kNoNode) os << "if (" << w(r.enable) << ") ";
    os << r.name << "_q <= " << w(r.next) << ";\n";
  }
  os << "  end\n";
  for (const auto& p : design.outputs())
    os << "  assign " << p.name << " = " << w(p.node) << ";\n";
  os << "endmodule\n";
  return os.str();
}

}  // namespace scflow::vlog
