// Verilog emission: structural gate-level netlists (the synthesis
// artefact the paper's flow hands to ModelSim) and behavioural RTL
// (the "intermediate RTL Verilog code from RTL SystemC synthesis").
#pragma once

#include <string>

#include "netlist/netlist.hpp"
#include "rtl/ir.hpp"

namespace scflow::vlog {

/// Structural Verilog: one module, primitive gate instances from the cell
/// library, macro connections as ports.
[[nodiscard]] std::string write_structural(const nl::Netlist& netlist);

/// Behavioural Verilog for a word-level design: wire declarations with
/// assign statements plus one clocked always block for the registers.
[[nodiscard]] std::string write_behavioural(const rtl::Design& design);

}  // namespace scflow::vlog
