// Word-level optimisation passes applied before bit-blasting — the RTL
// half of the "Design Compiler" substitute.  All designs in the Fig. 10
// comparison run the same passes; the area differences between them come
// from their architectures, not from uneven optimisation effort.
#pragma once

#include <cstddef>

#include "rtl/ir.hpp"

namespace scflow::rtl {

struct PassOptions {
  bool constant_fold = true;   ///< + cheap algebraic identities
  bool cse = true;             ///< structural hashing
  bool dce = true;             ///< unreachable-node removal
  bool merge_registers = false;  ///< unify registers with identical D/EN/reset
  bool sweep_dead_registers = false;  ///< drop registers nothing reads
  int max_iterations = 4;
};

struct PassStats {
  std::size_t nodes_before = 0;
  std::size_t nodes_after = 0;
  std::size_t registers_before = 0;
  std::size_t registers_after = 0;
  std::size_t folded = 0;
  std::size_t merged_registers = 0;
};

/// Runs the selected passes to a fixpoint (bounded by max_iterations) and
/// returns the optimised design.
Design run_passes(const Design& design, const PassOptions& options,
                  PassStats* stats = nullptr);

}  // namespace scflow::rtl
