#include "rtl/src_sim.hpp"

#include <map>
#include <stdexcept>

#include "dsp/time_quantizer.hpp"
#include "dtypes/bit_int.hpp"

namespace scflow::rtl {

using P = dsp::SrcParams;

SrcSimResult run_src_design(const Design& design, dsp::SrcMode mode,
                            const std::vector<dsp::SrcEvent>& events,
                            Interpreter* interpreter) {
  Interpreter local(design);
  Interpreter& it = interpreter != nullptr ? *interpreter : local;

  // Locate the output-side registers once (cheap post-edge observation).
  int valid_reg = -1, out_l_reg = -1, out_r_reg = -1;
  for (std::size_t r = 0; r < design.registers().size(); ++r) {
    const auto& name = design.registers()[r].name;
    if (name == "out_valid_r") valid_reg = static_cast<int>(r);
    if (name == "out_l_r") out_l_reg = static_cast<int>(r);
    if (name == "out_r_r") out_r_reg = static_cast<int>(r);
  }
  if (valid_reg < 0 || out_l_reg < 0 || out_r_reg < 0)
    throw std::logic_error("design lacks the SRC output registers");

  // Events per observation cycle, inputs first (stable by construction of
  // make_schedule, which orders ties input-first).
  const dsp::TimeQuantizer quant(P::kClockPs);
  std::map<std::uint64_t, std::vector<const dsp::SrcEvent*>> by_cycle;
  std::uint64_t last_cycle = 0;
  for (const auto& e : events) {
    const std::uint64_t c = quant.quantize_cycles(e.t_ps);
    by_cycle[c].push_back(&e);
    last_cycle = std::max(last_cycle, c);
  }

  SrcSimResult result;
  it.set_input("mode", static_cast<std::uint64_t>(mode));
  bool strobe = false, req = false;
  std::uint64_t last_valid = it.register_value(static_cast<std::size_t>(valid_reg));
  const std::uint64_t end_cycle = last_cycle + 300;
  auto next_event = by_cycle.begin();
  for (std::uint64_t cycle = 1; cycle <= end_cycle; ++cycle) {
    if (next_event != by_cycle.end() && next_event->first == cycle) {
      for (const dsp::SrcEvent* e : next_event->second) {
        if (e->is_input) {
          it.set_input("in_left", static_cast<std::uint16_t>(e->sample.left));
          it.set_input("in_right", static_cast<std::uint16_t>(e->sample.right));
          strobe = !strobe;
          it.set_input("in_strobe", strobe ? 1 : 0);
        } else {
          req = !req;
          it.set_input("out_req", req ? 1 : 0);
        }
      }
      ++next_event;
    }
    it.step();
    const std::uint64_t v = it.register_value(static_cast<std::size_t>(valid_reg));
    if (v != last_valid) {
      last_valid = v;
      result.outputs.push_back(
          {static_cast<std::int16_t>(scflow::sign_extend(
               it.register_value(static_cast<std::size_t>(out_l_reg)), 16)),
           static_cast<std::int16_t>(scflow::sign_extend(
               it.register_value(static_cast<std::size_t>(out_r_reg)), 16))});
    }
  }
  result.cycles = end_cycle;
  return result;
}

}  // namespace scflow::rtl
