#include "rtl/src_design.hpp"

#include <algorithm>

#include "dsp/polyphase.hpp"
#include "dsp/src_params.hpp"

namespace scflow::rtl {

namespace {
using P = scflow::dsp::SrcParams;
constexpr std::int64_t kOne = std::int64_t{1} << P::kFracBits;
constexpr std::int64_t kMaxDepth = scflow::dsp::DepthConstants::kMaxDepth;
}  // namespace

SrcArchConfig rtl_opt_config() {
  SrcArchConfig c;
  c.name = "src_rtl_opt";
  return c;
}

SrcArchConfig rtl_unopt_config() {
  SrcArchConfig c;
  c.name = "src_rtl_unopt";
  c.extra_output_stage = true;
  c.duplicate_param_regs = true;
  return c;
}

SrcArchConfig vhdl_ref_config() {
  SrcArchConfig c;
  c.name = "src_vhdl_ref";
  c.acc_bits = 48;           // the C spec accumulated in a wide long
  c.index_bits = 32;         // C 'int' loop/index/address variables
  c.split_accumulators = true;
  c.dual_multiplier = true;  // one-cycle MAC straight from the C statement
  c.extra_output_stage = true;
  c.duplicate_param_regs = true;
  return c;
}

Sig rom_fold(DesignBuilder& b, Sig idx9) {
  const Sig le = b.le_u(idx9, b.c(9, P::kProtoLen / 2));
  const Sig mirrored = b.sub(b.c(9, P::kProtoLen - 1), idx9);
  return b.slice(b.select(le, idx9, mirrored), 7, 0);
}

Sig round_saturate(DesignBuilder& b, Sig acc) {
  const int w = acc.width;
  const Sig sum = b.add(acc, b.c(w, std::int64_t{1} << 14));
  const Sig shifted = b.sra(sum, P::kFracBits);
  const Sig too_big = b.lt_s(b.c(w, 32767), shifted);
  const Sig too_small = b.lt_s(shifted, b.c(w, -32768));
  return b.select(too_big, b.c(16, 32767),
                  b.select(too_small, b.c(16, -32768), b.slice(shifted, 15, 0)));
}

SrcInfra build_src_infra(DesignBuilder& b, bool inject_corner_bug) {
  SrcInfra s;
  s.mode = b.input("mode", 2);
  s.in_strobe = b.input("in_strobe", 1);
  s.in_left = b.input("in_left", 16);
  s.in_right = b.input("in_right", 16);
  s.out_req = b.input("out_req", 1);
  s.ram = b.memory("sample_ram", P::kBufferLog2, 32);
  {
    const auto half = scflow::dsp::make_default_rom().stored_half();
    std::vector<std::int64_t> contents(half.begin(), half.end());
    s.rom = b.rom("coeff_rom", 8, 16, std::move(contents));
  }

  // Free-running cycle stamp: holds k during the processing of edge k.
  const Reg cycle = b.reg("cycle", 16, 1);
  b.assign_always(cycle, b.add(cycle.q, b.c(16, 1)));

  // Toggle-strobe edge detection.
  const Reg last_strobe = b.reg("last_strobe", 1);
  const Sig in_ev = b.ne(s.in_strobe, last_strobe.q);
  b.assign_always(last_strobe, s.in_strobe);
  const Reg last_req = b.reg("last_req", 1);
  const Sig out_ev = b.ne(s.out_req, last_req.q);
  b.assign_always(last_req, s.out_req);

  // Ring write position, startup fill counter, started flag.
  const Reg wc = b.reg("wc", P::kBufferLog2);
  const Reg fill = b.reg("fill", 5);
  const Reg started = b.reg("started", 1);
  const Sig fill_lt16 = b.lt_u(fill.q, b.c(5, P::kStartupFill));
  b.assign(wc, in_ev, b.add(wc.q, b.c(P::kBufferLog2, 1)));
  b.assign(fill, b.and_(in_ev, fill_lt16), b.add(fill.q, b.c(5, 1)));
  const Sig fill_reaches = b.and_(in_ev, b.eq(fill.q, b.c(5, P::kStartupFill - 1)));
  const Sig started_after = b.or_(started.q, fill_reaches);
  b.assign(started, fill_reaches, b.c(1, 1));

  // Sample memory write: one 32-bit word per stereo sample.
  const Sig word = b.or_(b.shl(b.zext(s.in_right, 32), 16), b.zext(s.in_left, 32));
  b.ram_write(s.ram, wc.q, word, in_ev);

  // --- rate measurement windows ---
  struct WindowSigs {
    Sig close;
    Sig win_new;
    Sig have;
  };
  auto make_window = [&b, &cycle](const std::string& nm, Sig ev) {
    const Reg prev = b.reg(nm + "_prev", 16);
    const Reg havep = b.reg(nm + "_havep", 1);
    const Reg elapsed = b.reg(nm + "_elapsed", 16);
    const Reg cnt = b.reg(nm + "_cnt", 4);
    const Reg win = b.reg(nm + "_win", 16);
    const Reg havew = b.reg(nm + "_havew", 1);
    const Sig diff = b.sub(cycle.q, prev.q);
    const Sig new_elapsed = b.add(elapsed.q, diff);
    const Sig counted = b.and_(ev, havep.q);
    const Sig close = b.and_(counted, b.eq(cnt.q, b.c(4, P::kRateWindow - 1)));
    b.assign(prev, ev, cycle.q);
    b.assign(havep, ev, b.c(1, 1));
    b.assign(elapsed, counted, b.select(close, b.c(16, 0), new_elapsed));
    b.assign(cnt, counted, b.select(close, b.c(4, 0), b.add(cnt.q, b.c(4, 1))));
    b.assign(win, close, new_elapsed);
    b.assign(havew, close, b.c(1, 1));
    return WindowSigs{close, b.select(close, new_elapsed, win.q),
                      b.or_(havew.q, close)};
  };
  const WindowSigs in_w = make_window("inw", in_ev);
  const WindowSigs out_w = make_window("outw", out_ev);

  // --- restoring divider with fixed 40-cycle commit latency ---
  const Reg div_active = b.reg("div_active", 1);
  const Reg div_lat = b.reg("div_lat", 6);
  const Reg div_quo = b.reg("div_quo", 32);
  const Reg div_rem = b.reg("div_rem", 17);
  const Reg div_divisor = b.reg("div_divisor", 16);
  const Reg inc_reg = b.reg("inc_reg", P::kIncBits);
  const Reg inc_valid = b.reg("inc_valid", 1);

  const Sig tmp = b.or_(b.shl(b.zext(div_rem.q, 18), 1), b.zext(b.bit(div_quo.q, 31), 18));
  const Sig ge = b.ge_u(tmp, b.zext(div_divisor.q, 18));
  const Sig rem_n = b.slice(b.select(ge, b.sub(tmp, b.zext(div_divisor.q, 18)), tmp), 16, 0);
  const Sig quo_n = b.or_(b.shl(div_quo.q, 1), b.zext(ge, 32));
  const Sig stepping = b.and_(div_active.q, b.lt_u(div_lat.q, b.c(6, 32)));
  b.assign(div_rem, stepping, rem_n);
  b.assign(div_quo, stepping, quo_n);
  b.assign(div_lat, div_active.q, b.add(div_lat.q, b.c(6, 1)));

  const Sig commit = b.and_(div_active.q,
                            b.eq(div_lat.q, b.c(6, P::kDividerLatencyCycles - 1)));
  const Sig clamped = b.select(
      b.gt_u(div_quo.q, b.c(32, P::kIncMax)), b.c(P::kIncBits, P::kIncMax),
      b.select(b.lt_u(div_quo.q, b.c(32, P::kIncMin)), b.c(P::kIncBits, P::kIncMin),
               b.slice(div_quo.q, P::kIncBits - 1, 0)));
  b.assign(inc_reg, commit, clamped);
  b.assign(inc_valid, commit, b.c(1, 1));
  b.assign(div_active, commit, b.c(1, 0));

  const Sig start = b.and_(b.or_(in_w.close, out_w.close),
                           b.and_(in_w.have, out_w.have));
  const Sig dividend = b.shl(b.zext(out_w.win_new, 32), P::kFracBits);
  b.assign(div_quo, start, dividend);
  b.assign(div_rem, start, b.c(17, 0));
  b.assign(div_divisor, start, in_w.win_new);
  b.assign(div_lat, start, b.c(6, 0));
  b.assign(div_active, start, b.c(1, 1));

  // Nominal increment by mode until the first tracked value commits.
  const Sig nominal = b.select(
      b.eq(s.mode, b.c(2, 0)),
      b.c(P::kIncBits, P::nominal_increment(dsp::SrcMode::k44_1To48)),
      b.select(b.eq(s.mode, b.c(2, 1)),
               b.c(P::kIncBits, P::nominal_increment(dsp::SrcMode::k48To44_1)),
               b.select(b.eq(s.mode, b.c(2, 2)),
                        b.c(P::kIncBits, P::nominal_increment(dsp::SrcMode::k48To48)),
                        b.c(P::kIncBits, P::nominal_increment(dsp::SrcMode::k32To48)))));
  const Sig inc_used = b.select(inc_valid.q, inc_reg.q, nominal);

  // --- depth bookkeeping (input first, then the request's advance) ---
  const Reg depth = b.reg("depth", 21);
  const Sig d_plus = b.add(depth.q, b.c(21, kOne));
  const Sig d_capped = b.select(b.gt_u(d_plus, b.c(21, kMaxDepth)),
                                b.c(21, kMaxDepth), d_plus);
  const Sig d_after_input = b.select(
      in_ev,
      b.select(started.q, d_capped,
               b.select(fill_reaches, b.c(21, P::kStartReadLag * kOne), depth.q)),
      depth.q);
  const Sig inc21 = b.zext(inc_used, 21);
  const Sig advance_ok =
      b.and_(b.and_(out_ev, started_after), b.gt_u(d_after_input, inc21));
  b.assign_always(depth, b.select(advance_ok, b.sub(d_after_input, inc21), d_after_input));

  // --- request parameters, latched at the observation edge ---
  const Sig ceil6 = b.slice(b.add(d_after_input, b.c(21, kOne - 1)), 20, P::kFracBits);
  const Sig low15 = b.slice(d_after_input, P::kFracBits - 1, 0);
  const Sig frac = b.slice(b.sub(b.c(16, kOne), b.zext(low15, 16)), P::kFracBits - 1, 0);
  Sig ceil_eff = ceil6;
  if (inject_corner_bug)
    ceil_eff = b.select(b.eq(frac, b.c(P::kFracBits, 0)),
                        b.add(ceil6, b.c(P::kBufferLog2, 1)), ceil6);
  const Sig wc_after = b.select(in_ev, b.add(wc.q, b.c(P::kBufferLog2, 1)), wc.q);

  const Reg phase_r = b.reg("phase_r", P::kPhaseBits);
  const Reg mu_r = b.reg("mu_r", P::kMuBits);
  const Reg base_r = b.reg("base_r", P::kBufferLog2);
  const Reg startup_zero = b.reg("startup_zero", 1);
  s.req_pending = b.reg("req_pending", 1);
  b.assign(phase_r, out_ev, b.slice(frac, 14, 10));
  b.assign(mu_r, out_ev, b.slice(frac, 9, 0));
  b.assign(base_r, out_ev, b.sub(wc_after, ceil_eff));
  b.assign(startup_zero, out_ev, b.not_(started_after));
  b.assign(s.req_pending, out_ev, b.c(1, 1));

  s.startup_zero_q = startup_zero.q;
  s.phase_q = phase_r.q;
  s.mu_q = mu_r.q;
  s.base_q = base_r.q;
  s.wc_q = wc.q;
  return s;
}

namespace {

/// The hand-written RTL main datapath: a 2-cycle MAC that time-shares one
/// 16x17 multiplier between coefficient interpolation and the MAC itself.
void build_rtl_main(DesignBuilder& b, const SrcInfra& infra, const SrcArchConfig& cfg) {
  enum : std::int64_t { kIdle = 0, kInterp = 1, kMac = 2, kRound = 3, kWrite = 4, kExtra = 5 };
  const int iw = cfg.index_bits;  // loop/index register width (6 or 32)

  const Reg state = b.reg("state", 3, kIdle);
  const Reg iter = b.reg("iter", iw);  // bit3: channel, bits2..0: tap
  // The two-cycle shared-multiplier schedule pipelines the interpolated
  // coefficient and sample through registers; the one-cycle dual-multiplier
  // architecture needs neither.
  const Reg c_r = cfg.dual_multiplier ? Reg{} : b.reg("c_r", cfg.coeff_bits);
  const Reg x_r = cfg.dual_multiplier ? Reg{} : b.reg("x_r", 16);
  const Reg res_l = b.reg("res_l", 16);
  const Reg res_r = b.reg("res_r", 16);
  const Reg out_l = b.reg("out_l_r", 16);
  const Reg out_r = b.reg("out_r_r", 16);
  const Reg valid = b.reg("out_valid_r", 1);

  // Accumulators: one shared or one per channel (the C-spec architecture).
  const Reg acc0 = b.reg("acc0", cfg.acc_bits);
  const Reg acc1 = cfg.split_accumulators ? b.reg("acc1", cfg.acc_bits) : acc0;

  // Optional conservative-refinement leftovers.
  const Reg phase_dup = cfg.duplicate_param_regs ? b.reg("phase_dup", P::kPhaseBits) : Reg{};
  const Reg mu_dup = cfg.duplicate_param_regs ? b.reg("mu_dup", P::kMuBits) : Reg{};
  const Reg staged_l = cfg.extra_output_stage ? b.reg("staged_l", 16) : Reg{};
  const Reg staged_r = cfg.extra_output_stage ? b.reg("staged_r", 16) : Reg{};

  auto in_state = [&](std::int64_t v) { return b.eq(state.q, b.c(3, v)); };
  const Sig idle = in_state(kIdle);
  const Sig interp = in_state(kInterp);
  const Sig mac = in_state(kMac);
  const Sig round = in_state(kRound);
  const Sig write = in_state(kWrite);

  const Sig tap = b.slice(iter.q, 2, 0);
  const Sig channel = b.bit(iter.q, 3);

  // IDLE: accept a pending request.
  const Sig accept = b.and_(idle, infra.req_pending.q);
  b.assign(infra.req_pending, accept, b.c(1, 0));
  const Sig go_zero = b.and_(accept, infra.startup_zero_q);
  const Sig go_comp = b.and_(accept, b.not_(infra.startup_zero_q));
  b.assign(res_l, go_zero, b.c(16, 0));
  b.assign(res_r, go_zero, b.c(16, 0));
  b.assign(state, go_zero, b.c(3, cfg.extra_output_stage ? kExtra : kWrite));
  b.assign(iter, go_comp, b.c(iw, 0));
  b.assign(acc0, go_comp, b.c(cfg.acc_bits, 0));
  if (cfg.split_accumulators) b.assign(acc1, go_comp, b.c(cfg.acc_bits, 0));
  if (cfg.duplicate_param_regs) {
    b.assign(phase_dup, go_comp, infra.phase_q);
    b.assign(mu_dup, go_comp, infra.mu_q);
  }
  b.assign(state, go_comp, b.c(3, cfg.dual_multiplier ? kMac : kInterp));

  // Coefficient addresses (index arithmetic in the configured width: the
  // C-spec architecture computes them with 32-bit adders).
  const Sig phase_for_idx1 = cfg.duplicate_param_regs ? phase_dup.q : infra.phase_q;
  const Sig mu_used = cfg.duplicate_param_regs ? mu_dup.q : infra.mu_q;
  const int xw = std::max(iw, 9);  // prototype indices need 9 bits
  const Sig idx0_w = b.add(b.zext(infra.phase_q, xw), b.shl(b.zext(tap, xw), P::kPhaseBits));
  const Sig idx1_w = b.add(b.add(b.zext(phase_for_idx1, xw),
                                 b.shl(b.zext(tap, xw), P::kPhaseBits)),
                           b.c(xw, 1));
  const Sig c0 = b.rom_read(infra.rom, rom_fold(b, b.slice(idx0_w, 8, 0)));
  const Sig c1 = b.rom_read(infra.rom, rom_fold(b, b.slice(idx1_w, 8, 0)));
  const Sig diff = b.sub(b.sext(c1, 17), b.sext(c0, 17));

  // Sample fetch (address arithmetic in the configured width).
  const Sig addr_w = b.sub(b.zext(infra.base_q, iw), b.zext(tap, iw));
  const Sig ram_word = b.ram_read(infra.ram, b.slice(addr_w, P::kBufferLog2 - 1, 0),
                                  cfg.dual_multiplier ? mac : interp);
  const Sig x = b.select(channel, b.slice(ram_word, 31, 16), b.slice(ram_word, 15, 0));

  Sig mac_product;  // 33 bits, valid during the accumulate state
  if (cfg.dual_multiplier) {
    // Direct C-recode datapath: both multiplies in one cycle, one tap per
    // clock, no pipeline registers.
    const Sig p28 = b.mul(b.zext(mu_used, 11), diff, 28);
    const Sig cint = b.add(b.sext(c0, cfg.coeff_bits),
                           b.resize_s(b.sra(p28, P::kMuBits), cfg.coeff_bits));
    mac_product = b.mul(x, b.resize_s(cint, 17), 33);
  } else {
    // The refined schedule: one 16x17 multiplier time-shared between
    // interpolation (mu * diff) and MAC (x * c_r).
    const Sig mul_a = b.select(mac, b.sext(x_r.q, 16), b.zext(mu_used, 16));
    const Sig mul_b = b.select(mac, b.sext(c_r.q, 17), b.sext(diff, 17));
    const Sig mul_out = b.mul(mul_a, mul_b, 33);
    // INTERP: c_r <- c0 + ((mu*diff) >> 10); latch the sample alongside.
    const Sig interp_sh = b.sra(b.slice(mul_out, 27, 0), P::kMuBits);  // 28 -> 28
    const Sig cint = b.add(b.sext(c0, cfg.coeff_bits),
                           b.resize_s(interp_sh, cfg.coeff_bits));
    b.assign(c_r, interp, cint);
    b.assign(x_r, interp, x);
    b.assign(state, interp, b.c(3, kMac));
    mac_product = mul_out;
  }

  // MAC: accumulate, then advance the tap or round up the channel.
  const Sig acc_cur = b.select(channel, acc1.q, acc0.q);
  const Sig acc_next = b.add(acc_cur, b.sext(mac_product, cfg.acc_bits));
  if (cfg.split_accumulators) {
    b.assign(acc0, b.and_(mac, b.not_(channel)), acc_next);
    b.assign(acc1, b.and_(mac, channel), acc_next);
  } else {
    b.assign(acc0, mac, acc_next);
  }
  const Sig tap_last = b.eq(tap, b.c(3, P::kTapsPerPhase - 1));
  b.assign(iter, b.and_(mac, b.not_(tap_last)), b.add(iter.q, b.c(iw, 1)));
  b.assign(state, mac,
           b.select(tap_last, b.c(3, kRound),
                    b.c(3, cfg.dual_multiplier ? kMac : kInterp)));

  // ROUND: saturate one channel; restart the loop or emit.
  const Sig y = round_saturate(b, b.select(channel, acc1.q, acc0.q));
  b.assign(res_l, b.and_(round, b.not_(channel)), y);
  b.assign(res_r, b.and_(round, channel), y);
  const Sig ch0_done = b.and_(round, b.not_(channel));
  b.assign(iter, ch0_done, b.c(iw, P::kTapsPerPhase));  // iter = 8: channel 1, tap 0
  if (!cfg.split_accumulators) b.assign(acc0, ch0_done, b.c(cfg.acc_bits, 0));
  b.assign(state, ch0_done, b.c(3, cfg.dual_multiplier ? kMac : kInterp));
  const Sig ch1_done = b.and_(round, channel);
  b.assign(state, ch1_done,
           b.c(3, cfg.extra_output_stage ? kExtra : kWrite));

  if (cfg.extra_output_stage) {
    const Sig extra = in_state(kExtra);
    b.assign(staged_l, extra, res_l.q);
    b.assign(staged_r, extra, res_r.q);
    b.assign(state, extra, b.c(3, kWrite));
  }

  // WRITE: publish and toggle out_valid (through the extra stage when the
  // conservative refinement kept it).
  b.assign(out_l, write, cfg.extra_output_stage ? staged_l.q : res_l.q);
  b.assign(out_r, write, cfg.extra_output_stage ? staged_r.q : res_r.q);
  b.assign(valid, write, b.not_(valid.q));
  b.assign(state, write, b.c(3, kIdle));

  b.output("out_valid", valid.q);
  b.output("out_left", out_l.q);
  b.output("out_right", out_r.q);
}

}  // namespace

Design build_src_design(const SrcArchConfig& config) {
  DesignBuilder b(config.name);
  SrcInfra infra = build_src_infra(b, config.inject_corner_bug);
  build_rtl_main(b, infra, config);
  return b.finalise();
}

}  // namespace scflow::rtl
