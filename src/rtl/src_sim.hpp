// Drives a synthesisable SRC design (rtl::Design) through the interpreter
// with the same event schedules the kernel testbenches use, so the IR
// architectures can be verified against the quantised golden model.
#pragma once

#include <vector>

#include "dsp/src_params.hpp"
#include "dsp/stimulus.hpp"
#include "rtl/interpreter.hpp"
#include "rtl/ir.hpp"

namespace scflow::rtl {

struct SrcSimResult {
  std::vector<dsp::StereoSample> outputs;
  std::uint64_t cycles = 0;
};

/// Runs the design over the schedule: events are applied at their
/// clock-quantised cycles (inputs before requests within a cycle), outputs
/// are collected on out_valid toggles.
SrcSimResult run_src_design(const Design& design, dsp::SrcMode mode,
                            const std::vector<dsp::SrcEvent>& events,
                            Interpreter* interpreter = nullptr);

}  // namespace scflow::rtl
