#include "rtl/builder.hpp"

namespace scflow::rtl {

Design DesignBuilder::finalise() {
  // Fold the assignment list into per-register mux chains.  Later
  // assignments wrap earlier ones, so they win on overlapping conditions —
  // the "last assignment wins" semantics of an HDL clocked process.
  for (std::size_t r = 0; r < d_.registers().size(); ++r) {
    NodeId next = d_.registers()[r].q;  // hold by default
    for (const Assign& a : assigns_) {
      if (a.reg != static_cast<int>(r)) continue;
      Node n;
      n.op = Op::kMux;
      n.width = d_.registers()[r].width;
      n.args = {a.cond, next, a.value};
      next = d_.add_node(std::move(n));
    }
    d_.set_register_next(static_cast<int>(r), next);
  }
  assigns_.clear();
  d_.validate();
  return std::move(d_);
}

}  // namespace scflow::rtl
