#include "rtl/interpreter.hpp"

#include <stdexcept>

#include "dtypes/bit_int.hpp"

namespace scflow::rtl {

namespace {
std::uint64_t mask_w(int width) { return scflow::bit_mask(width); }
std::int64_t as_signed(std::uint64_t v, int width) {
  return scflow::sign_extend(v, width);
}
}  // namespace

Interpreter::Interpreter(const Design& design) : design_(&design) {
  design.validate();
  values_.assign(design.nodes().size(), 0);
  reg_state_.assign(design.registers().size(), 0);
  for (const Memory& m : design.memories())
    mem_state_.emplace_back(std::size_t{1} << m.addr_bits, 0);
  for (const PortDef& o : design.outputs()) output_by_name_[o.name] = o.node;
  input_values_.assign(design.inputs().size(), 0);
  for (std::size_t i = 0; i < design.inputs().size(); ++i)
    input_by_name_[design.inputs()[i].name] = i;
  reset();
}

void Interpreter::reset() {
  for (std::size_t i = 0; i < reg_state_.size(); ++i)
    reg_state_[i] = static_cast<std::uint64_t>(design_->registers()[i].reset_value) &
                    mask_w(design_->registers()[i].width);
  for (auto& m : mem_state_) std::fill(m.begin(), m.end(), 0);
  std::fill(input_values_.begin(), input_values_.end(), 0);
  cycles_ = 0;
  evaluated_ = false;
}

void Interpreter::set_input(const std::string& name, std::uint64_t value) {
  set_input(input_index(name), value);
}

std::size_t Interpreter::input_index(const std::string& name) const {
  const auto it = input_by_name_.find(name);
  if (it == input_by_name_.end()) throw std::invalid_argument("no input '" + name + "'");
  return it->second;
}

NodeId Interpreter::output_node(const std::string& name) const {
  const auto it = output_by_name_.find(name);
  if (it == output_by_name_.end()) throw std::invalid_argument("no output '" + name + "'");
  return it->second;
}

void Interpreter::set_input(std::size_t index, std::uint64_t value) {
  input_values_[index] = value & mask_w(design_->inputs()[index].width);
  evaluated_ = false;
}

std::uint64_t Interpreter::eval_node(const Node& n) {
  const std::uint64_t m = mask_w(n.width);
  auto arg = [this, &n](int i) { return values_[static_cast<std::size_t>(n.args[static_cast<std::size_t>(i)])]; };
  auto argw = [this, &n](int i) {
    return design_->node(n.args[static_cast<std::size_t>(i)]).width;
  };
  switch (n.op) {
    case Op::kConst: return static_cast<std::uint64_t>(n.imm) & m;
    case Op::kInput: return 0;  // patched by caller
    case Op::kRegQ: return reg_state_[static_cast<std::size_t>(n.imm)];
    case Op::kAdd: return (arg(0) + arg(1)) & m;
    case Op::kSub: return (arg(0) - arg(1)) & m;
    case Op::kAddC: return (arg(0) + arg(1) + (arg(2) & 1u)) & m;
    case Op::kMul: {
      const std::int64_t a = as_signed(arg(0), argw(0));
      const std::int64_t b = as_signed(arg(1), argw(1));
      return static_cast<std::uint64_t>(a * b) & m;
    }
    case Op::kAnd: return arg(0) & arg(1);
    case Op::kOr: return arg(0) | arg(1);
    case Op::kXor: return arg(0) ^ arg(1);
    case Op::kNot: return (~arg(0)) & m;
    case Op::kEq: return arg(0) == arg(1) ? 1 : 0;
    case Op::kNe: return arg(0) != arg(1) ? 1 : 0;
    case Op::kLtU: return arg(0) < arg(1) ? 1 : 0;
    case Op::kLtS:
      return as_signed(arg(0), argw(0)) < as_signed(arg(1), argw(1)) ? 1 : 0;
    case Op::kShl: return (n.imm >= 64 ? 0 : arg(0) << n.imm) & m;
    case Op::kShr: return (n.imm >= 64 ? 0 : arg(0) >> n.imm) & m;
    case Op::kMux: return arg(0) ? arg(2) : arg(1);
    case Op::kSlice: return (arg(0) >> n.imm) & m;
    case Op::kZext: return arg(0);
    case Op::kSext:
      return static_cast<std::uint64_t>(as_signed(arg(0), argw(0))) & m;
    case Op::kRamRead: {
      const auto mem = static_cast<std::size_t>(n.imm);
      const std::uint64_t addr =
          arg(0) & mask_w(design_->memories()[mem].addr_bits);
      const bool enabled = (arg(1) & 1u) != 0;
      if (enabled && ram_read_hook_) ram_read_hook_(static_cast<int>(mem), arg(0));
      return mem_state_[mem][addr] & m;
    }
    case Op::kRomRead: {
      const auto& rom = design_->roms()[static_cast<std::size_t>(n.imm)];
      const std::uint64_t addr = arg(0) & mask_w(rom.addr_bits);
      if (addr >= rom.contents.size()) return 0;
      return static_cast<std::uint64_t>(rom.contents[addr]) & m;
    }
  }
  throw std::logic_error("unhandled op");
}

void Interpreter::evaluate() {
  // Load inputs, then evaluate in topological (index) order.
  for (std::size_t i = 0; i < design_->inputs().size(); ++i)
    values_[static_cast<std::size_t>(design_->inputs()[i].node)] = input_values_[i];
  const auto& nodes = design_->nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].op == Op::kInput) continue;
    values_[i] = eval_node(nodes[i]);
  }
  evaluated_ = true;
}

void Interpreter::step() {
  evaluate();

  // Rising edge: commit memory writes, then registers.
  for (std::size_t mi = 0; mi < design_->memories().size(); ++mi) {
    const Memory& mem = design_->memories()[mi];
    if (values_[static_cast<std::size_t>(mem.write_enable)] & 1u) {
      const std::uint64_t addr =
          values_[static_cast<std::size_t>(mem.write_addr)] & mask_w(mem.addr_bits);
      const std::uint64_t data =
          values_[static_cast<std::size_t>(mem.write_data)] & mask_w(mem.data_bits);
      mem_state_[mi][addr] = data;
      if (ram_write_hook_) ram_write_hook_(static_cast<int>(mi), addr, data);
    }
  }
  for (std::size_t ri = 0; ri < design_->registers().size(); ++ri) {
    const Register& r = design_->registers()[ri];
    const bool en = r.enable == kNoNode ||
                    (values_[static_cast<std::size_t>(r.enable)] & 1u) != 0;
    if (en)
      reg_state_[ri] = values_[static_cast<std::size_t>(r.next)] & mask_w(r.width);
  }
  ++cycles_;
}

std::uint64_t Interpreter::output(const std::string& name) const {
  const auto it = output_by_name_.find(name);
  if (it == output_by_name_.end()) throw std::invalid_argument("no output '" + name + "'");
  return values_[static_cast<std::size_t>(it->second)];
}

}  // namespace scflow::rtl
