// Ergonomic construction layer over the RTL IR: width-checked operators,
// HDL-style "last assignment wins" register assignment collection, and
// helpers (arithmetic shifts, saturation, toggles) the SRC designs share.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "rtl/ir.hpp"

namespace scflow::rtl {

/// A width-carrying handle to an IR node.
struct Sig {
  NodeId id = kNoNode;
  int width = 0;
  [[nodiscard]] bool valid() const { return id != kNoNode; }
};

/// A register handle: index plus its Q output.
struct Reg {
  int index = -1;
  Sig q;
};

class DesignBuilder {
 public:
  explicit DesignBuilder(std::string name) : d_(std::move(name)) {}

  Design& design() { return d_; }

  // --- sources ---
  Sig input(const std::string& name, int width) { return {d_.input(name, width), width}; }
  Sig c(int width, std::int64_t value) { return {d_.constant(width, value), width}; }
  Reg reg(const std::string& name, int width, std::int64_t reset = 0) {
    const int idx = d_.add_register(name, width, reset);
    return {idx, {d_.registers()[static_cast<std::size_t>(idx)].q, width}};
  }

  // --- combinational ops (widths checked) ---
  Sig add(Sig a, Sig b) { return bin(Op::kAdd, a, b, same(a, b)); }
  Sig sub(Sig a, Sig b) { return bin(Op::kSub, a, b, same(a, b)); }
  /// Signed multiply; operands keep their natural widths (the array
  /// multiplier cost scales with them), result truncated to @p width.
  Sig mul(Sig a, Sig b, int width) { return bin(Op::kMul, a, b, width); }
  Sig addc(Sig a, Sig b, Sig cin) {
    if (cin.width != 1) throw std::logic_error("carry-in must be 1 bit");
    (void)same(a, b);
    Node n;
    n.op = Op::kAddC;
    n.width = a.width;
    n.args = {a.id, b.id, cin.id};
    return {design().add_node(std::move(n)), a.width};
  }
  Sig and_(Sig a, Sig b) { return bin(Op::kAnd, a, b, same(a, b)); }
  Sig or_(Sig a, Sig b) { return bin(Op::kOr, a, b, same(a, b)); }
  Sig xor_(Sig a, Sig b) { return bin(Op::kXor, a, b, same(a, b)); }
  Sig not_(Sig a) { return unary(Op::kNot, a, a.width); }
  Sig eq(Sig a, Sig b) { return bin(Op::kEq, a, b, 1); }
  Sig ne(Sig a, Sig b) { return bin(Op::kNe, a, b, 1); }
  Sig lt_u(Sig a, Sig b) { return bin(Op::kLtU, a, b, 1); }
  Sig lt_s(Sig a, Sig b) { return bin(Op::kLtS, a, b, 1); }
  Sig gt_u(Sig a, Sig b) { return lt_u(b, a); }
  Sig le_u(Sig a, Sig b) { return not_(lt_u(b, a)); }
  Sig ge_u(Sig a, Sig b) { return not_(lt_u(a, b)); }

  Sig shl(Sig a, int k) {
    Node n;
    n.op = Op::kShl;
    n.width = a.width;
    n.args = {a.id};
    n.imm = k;
    return {d_.add_node(std::move(n)), a.width};
  }
  Sig shr(Sig a, int k) {  // logical
    Node n;
    n.op = Op::kShr;
    n.width = a.width;
    n.args = {a.id};
    n.imm = k;
    return {d_.add_node(std::move(n)), a.width};
  }
  /// Arithmetic shift right: sign-extend then take the upper window.
  Sig sra(Sig a, int k) { return slice(sext(a, a.width + k), a.width + k - 1, k); }

  Sig mux(Sig sel, Sig if0, Sig if1) {
    if (sel.width != 1) throw std::logic_error("mux select must be 1 bit");
    (void)same(if0, if1);
    Node n;
    n.op = Op::kMux;
    n.width = if0.width;
    n.args = {sel.id, if0.id, if1.id};
    return {d_.add_node(std::move(n)), if0.width};
  }
  /// C-style select: cond ? t : f.
  Sig select(Sig cond, Sig t, Sig f) { return mux(cond, f, t); }

  Sig slice(Sig a, int hi, int lo) {
    if (hi < lo || hi >= a.width) throw std::logic_error("bad slice bounds");
    Node n;
    n.op = Op::kSlice;
    n.width = hi - lo + 1;
    n.args = {a.id};
    n.imm = lo;
    return {d_.add_node(std::move(n)), n.width};
  }
  Sig bit(Sig a, int i) { return slice(a, i, i); }
  Sig zext(Sig a, int width) { return extend(Op::kZext, a, width); }
  Sig sext(Sig a, int width) { return extend(Op::kSext, a, width); }
  /// Truncate or zero-extend to an exact width.
  Sig resize_u(Sig a, int width) {
    if (width == a.width) return a;
    return width < a.width ? slice(a, width - 1, 0) : zext(a, width);
  }
  Sig resize_s(Sig a, int width) {
    if (width == a.width) return a;
    return width < a.width ? slice(a, width - 1, 0) : sext(a, width);
  }

  // --- memories ---
  int memory(const std::string& name, int addr_bits, int data_bits) {
    return d_.add_memory(name, addr_bits, data_bits);
  }
  /// Asynchronous RAM read; @p enable marks cycles where the access is
  /// live (checking simulation models validate only enabled reads).
  Sig ram_read(int mem, Sig addr, Sig enable) {
    if (enable.width != 1) throw std::logic_error("read enable must be 1 bit");
    Node n;
    n.op = Op::kRamRead;
    n.width = d_.memories()[static_cast<std::size_t>(mem)].data_bits;
    n.args = {addr.id, enable.id};
    n.imm = mem;
    return {d_.add_node(std::move(n)), n.width};
  }
  Sig ram_read(int mem, Sig addr) { return ram_read(mem, addr, c(1, 1)); }
  void ram_write(int mem, Sig addr, Sig data, Sig enable) {
    d_.set_memory_write(mem, addr.id, data.id, enable.id);
  }
  int rom(const std::string& name, int addr_bits, int data_bits,
          std::vector<std::int64_t> contents) {
    return d_.add_rom(name, addr_bits, data_bits, std::move(contents));
  }
  Sig rom_read(int rom_idx, Sig addr) {
    Node n;
    n.op = Op::kRomRead;
    n.width = d_.roms()[static_cast<std::size_t>(rom_idx)].data_bits;
    n.args = {addr.id};
    n.imm = rom_idx;
    return {d_.add_node(std::move(n)), n.width};
  }

  // --- register assignment (HDL style: later assignments take priority) ---
  void assign(const Reg& r, Sig cond, Sig value) {
    if (cond.width != 1) throw std::logic_error("assign condition must be 1 bit");
    if (value.width != r.q.width) throw std::logic_error("assign width mismatch");
    assigns_.push_back({r.index, cond.id, value.id});
  }
  void assign_always(const Reg& r, Sig value) { assign(r, c(1, 1), value); }

  void output(const std::string& name, Sig s) { d_.add_output(name, s.id); }

  /// Builds every register's next-function from the collected assignments
  /// (hold value when no condition fires) and validates the design.
  Design finalise();

 private:
  struct Assign {
    int reg;
    NodeId cond;
    NodeId value;
  };

  int same(Sig a, Sig b) const {
    if (a.width != b.width) throw std::logic_error("operand width mismatch");
    return a.width;
  }
  Sig bin(Op op, Sig a, Sig b, int width) {
    Node n;
    n.op = op;
    n.width = width;
    n.args = {a.id, b.id};
    return {d_.add_node(std::move(n)), width};
  }
  Sig unary(Op op, Sig a, int width) {
    Node n;
    n.op = op;
    n.width = width;
    n.args = {a.id};
    return {d_.add_node(std::move(n)), width};
  }
  Sig extend(Op op, Sig a, int width) {
    if (width < a.width) throw std::logic_error("extension narrows");
    if (width == a.width) return a;
    Node n;
    n.op = op;
    n.width = width;
    n.args = {a.id};
    return {d_.add_node(std::move(n)), width};
  }

  Design d_;
  std::vector<Assign> assigns_;
};

}  // namespace scflow::rtl
