// The synthesisable SRC architectures, expressed in the RTL IR.
//
// All variants share the always-on infrastructure (input capture, rate
// measurement, restoring divider, depth bookkeeping) — the paper notes the
// I/O and control blocks "only contained simple control functionality";
// the area differences concentrate in the SRC_MAIN datapath, which is what
// the architecture configs vary:
//
//  * rtl_opt     — hand-optimised RTL: one shared 16x17 multiplier
//                  (interpolation and MAC time-share it), 40-bit
//                  accumulator, minimal registers.
//  * rtl_unopt   — same datapath, conservative refinement leftovers:
//                  an extra output register stage and duplicated parameter
//                  registers ("registers that could be eliminated").
//  * vhdl_ref    — the series-production reference recoded from a low-level
//                  C specification: the C architecture computes each tap in
//                  one statement (so a dedicated interpolation multiplier
//                  sits next to the MAC multiplier), fixes 32-bit loop /
//                  index / address registers and adders (C 'int'
//                  semantics), and keeps split per-channel 48-bit
//                  accumulators and staged pipeline registers.
//
// The behavioural variants are *not* built here — they are emitted by the
// hls:: behavioural synthesiser (see hls/src_beh.hpp), as in the paper's
// flow.
#pragma once

#include "rtl/builder.hpp"
#include "rtl/ir.hpp"

namespace scflow::rtl {

struct SrcArchConfig {
  std::string name = "src";
  int acc_bits = 40;                 ///< MAC accumulator width
  int coeff_bits = 17;               ///< interpolated-coefficient path width
  int index_bits = 6;                ///< loop/index/address register width
  bool split_accumulators = false;   ///< per-channel accumulator registers
  /// One MAC per cycle with a dedicated interpolation multiplier (the
  /// direct C-recode architecture); false = the refined two-cycle schedule
  /// that time-shares one 16x17 multiplier.
  bool dual_multiplier = false;
  bool extra_output_stage = false;   ///< stage results through extra regs
  bool duplicate_param_regs = false; ///< shadow copies of phase/mu
  bool inject_corner_bug = false;    ///< the golden-model corner-case bug
};

[[nodiscard]] SrcArchConfig rtl_opt_config();
[[nodiscard]] SrcArchConfig rtl_unopt_config();
[[nodiscard]] SrcArchConfig vhdl_ref_config();

/// Handles into the shared infrastructure, used by main-datapath builders
/// (both the hand-written ones here and the hls-generated behavioural one).
struct SrcInfra {
  // External input signals.
  Sig mode;        // 2
  Sig in_strobe, out_req;  // 1
  Sig in_left, in_right;   // 16
  int ram = -1;    ///< 64 x 32 sample memory (L | R<<16), macro
  int rom = -1;    ///< 129 x 16 stored coefficient half, macro

  // Request handoff: set by infra on request observation, cleared by main.
  Reg req_pending;
  Sig startup_zero_q;      // 1: request arrived before startup fill
  Sig phase_q;             // 5
  Sig mu_q;                // 10
  Sig base_q;              // 6 (ring index of newest sample to use)
  Sig wc_q;                // 6 current ring write position
};

/// Builds the shared infrastructure into @p b and returns the handles.
SrcInfra build_src_infra(DesignBuilder& b, bool inject_corner_bug);

/// ROM symmetry fold: maps a 9-bit prototype index to the 8-bit stored-half
/// address (idx <= 128 ? idx : 256 - idx) — design logic, counted in area.
Sig rom_fold(DesignBuilder& b, Sig idx9);

/// Saturating Q15 rounding of an accumulator to 16 bits (shared helper —
/// combinational, so using it does not hide any area).
Sig round_saturate(DesignBuilder& b, Sig acc);

/// Builds a complete SRC design for one architecture config.
Design build_src_design(const SrcArchConfig& config);

}  // namespace scflow::rtl
