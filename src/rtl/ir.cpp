#include "rtl/ir.hpp"

#include <stdexcept>

namespace scflow::rtl {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kInput: return "input";
    case Op::kRegQ: return "reg_q";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kAddC: return "addc";
    case Op::kMul: return "mul";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNot: return "not";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLtU: return "ltu";
    case Op::kLtS: return "lts";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kMux: return "mux";
    case Op::kSlice: return "slice";
    case Op::kZext: return "zext";
    case Op::kSext: return "sext";
    case Op::kRamRead: return "ram_read";
    case Op::kRomRead: return "rom_read";
  }
  return "?";
}

NodeId Design::add_node(Node n) {
  if (n.width <= 0 || n.width > 64) throw std::invalid_argument("node width out of range");
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Design::constant(int width, std::int64_t value) {
  Node n;
  n.op = Op::kConst;
  n.width = width;
  n.imm = value;
  return add_node(std::move(n));
}

NodeId Design::input(const std::string& name, int width) {
  Node n;
  n.op = Op::kInput;
  n.width = width;
  n.name = name;
  const NodeId id = add_node(std::move(n));
  ins_.push_back({name, width, id});
  return id;
}

int Design::add_register(const std::string& name, int width, std::int64_t reset) {
  Register r;
  r.name = name;
  r.width = width;
  r.reset_value = reset;
  Node q;
  q.op = Op::kRegQ;
  q.width = width;
  q.imm = static_cast<std::int64_t>(regs_.size());
  q.name = name;
  r.q = add_node(std::move(q));
  regs_.push_back(std::move(r));
  return static_cast<int>(regs_.size() - 1);
}

int Design::add_memory(const std::string& name, int addr_bits, int data_bits) {
  mems_.push_back({name, addr_bits, data_bits, kNoNode, kNoNode, kNoNode});
  return static_cast<int>(mems_.size() - 1);
}

int Design::add_rom(const std::string& name, int addr_bits, int data_bits,
                    std::vector<std::int64_t> contents) {
  roms_.push_back({name, addr_bits, data_bits, std::move(contents)});
  return static_cast<int>(roms_.size() - 1);
}

void Design::add_output(const std::string& name, NodeId node) {
  outs_.push_back({name, node == kNoNode ? 1 : nodes_[static_cast<std::size_t>(node)].width, node});
}

void Design::set_register_next(int reg, NodeId next, NodeId enable) {
  regs_[static_cast<std::size_t>(reg)].next = next;
  regs_[static_cast<std::size_t>(reg)].enable = enable;
}

void Design::set_memory_write(int mem, NodeId addr, NodeId data, NodeId enable) {
  auto& m = mems_[static_cast<std::size_t>(mem)];
  m.write_addr = addr;
  m.write_data = data;
  m.write_enable = enable;
}

void Design::validate() const {
  auto check_ref = [this](NodeId id, const char* what) {
    if (id < 0 || id >= static_cast<NodeId>(nodes_.size()))
      throw std::logic_error(name_ + ": dangling node reference in " + what);
  };
  for (const Node& n : nodes_)
    for (NodeId a : n.args) check_ref(a, op_name(n.op));
  for (const Register& r : regs_) {
    if (r.next == kNoNode) throw std::logic_error(name_ + ": register '" + r.name + "' has no next");
    check_ref(r.next, "register next");
    if (node(r.next).width != r.width)
      throw std::logic_error(name_ + ": width mismatch on register '" + r.name + "'");
    if (r.enable != kNoNode) check_ref(r.enable, "register enable");
  }
  for (const Memory& m : mems_) {
    if (m.write_addr == kNoNode || m.write_data == kNoNode || m.write_enable == kNoNode)
      throw std::logic_error(name_ + ": memory '" + m.name + "' write port unconnected");
  }
  for (const PortDef& o : outs_) check_ref(o.node, "output");
  (void)topo_order();  // throws on combinational cycles
}

std::vector<NodeId> Design::topo_order() const {
  // Nodes are append-only and arguments must pre-exist except through
  // registers (which break cycles by construction), so index order *is* a
  // topological order — but verify there is no forward reference.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].op == Op::kRegQ) continue;
    for (NodeId a : nodes_[i].args)
      if (a >= static_cast<NodeId>(i))
        throw std::logic_error(name_ + ": combinational forward reference at node " +
                               std::to_string(i));
  }
  std::vector<NodeId> order(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) order[i] = static_cast<NodeId>(i);
  return order;
}

std::vector<bool> Design::live_nodes() const {
  std::vector<bool> live(nodes_.size(), false);
  std::vector<NodeId> work;
  auto mark = [&](NodeId id) {
    if (id != kNoNode && !live[static_cast<std::size_t>(id)]) {
      live[static_cast<std::size_t>(id)] = true;
      work.push_back(id);
    }
  };
  for (const PortDef& o : outs_) mark(o.node);
  for (const Register& r : regs_) {
    mark(r.next);
    mark(r.enable);
    mark(r.q);
  }
  for (const Memory& m : mems_) {
    mark(m.write_addr);
    mark(m.write_data);
    mark(m.write_enable);
  }
  while (!work.empty()) {
    const NodeId id = work.back();
    work.pop_back();
    for (NodeId a : node(id).args) mark(a);
  }
  return live;
}

Design::Stats Design::stats() const {
  Stats s;
  const auto live = live_nodes();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!live[i]) continue;
    ++s.nodes;
    if (nodes_[i].op == Op::kMul) ++s.multipliers;
    if (nodes_[i].op == Op::kAdd || nodes_[i].op == Op::kSub || nodes_[i].op == Op::kAddC)
      ++s.adders;
  }
  s.registers = regs_.size();
  for (const Register& r : regs_) s.register_bits += static_cast<std::size_t>(r.width);
  return s;
}

}  // namespace scflow::rtl
