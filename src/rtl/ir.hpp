// Word-level RTL intermediate representation.
//
// This is the common currency of the synthesis substrate: hand-written RTL
// architectures (the paper's RTL-SystemC designs and the VHDL reference)
// are built directly in it, the behavioural synthesiser (hls/) emits it,
// the cycle-accurate interpreter executes it, and the netlist stage
// bit-blasts it to gates.
//
// Semantics: a Design is one clock domain.  Combinational logic is a DAG
// of width-annotated nodes over inputs, register outputs and memory reads;
// registers update on the (implicit) rising edge; memories have synchronous
// write and asynchronous read ports and are black-box macros (excluded
// from synthesis area, like the paper's buffer RAM and coefficient ROM).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scflow::rtl {

using NodeId = std::int32_t;
constexpr NodeId kNoNode = -1;

enum class Op : std::uint8_t {
  kConst,    // imm = value
  kInput,    // top-level input port
  kRegQ,     // output of register imm
  kAdd, kSub, kMul,          // two's-complement, result truncated to width
  kAddC,                     // args {a, b, cin}: a + b + cin (shared-ALU idiom)
  kAnd, kOr, kXor, kNot,
  kEq, kNe, kLtU, kLtS,      // 1-bit results
  kShl, kShr,                // constant shift amount in imm (logical)
  kMux,                      // args: {sel, a0, a1} -> sel ? a1 : a0
  kSlice,                    // bits [imm+width-1 : imm] of arg
  kZext, kSext,              // width extension
  kRamRead,                  // async read: args {addr, enable}, imm = memory index
  kRomRead,                  // args {addr}, imm = rom index
};

[[nodiscard]] const char* op_name(Op op);

struct Node {
  Op op = Op::kConst;
  int width = 1;
  std::vector<NodeId> args;
  std::int64_t imm = 0;
  std::string name;  // inputs and debug labels
};

struct Register {
  std::string name;
  int width = 1;
  std::int64_t reset_value = 0;
  NodeId next = kNoNode;    ///< D input (required after finalise)
  NodeId enable = kNoNode;  ///< optional write enable (kNoNode = always)
  NodeId q = kNoNode;       ///< the kRegQ node representing the output
};

/// Black-box memory macro with one synchronous write port; reads appear as
/// kRamRead nodes.  Contents live in the interpreter / simulation model.
struct Memory {
  std::string name;
  int addr_bits = 0;
  int data_bits = 0;
  NodeId write_addr = kNoNode;
  NodeId write_data = kNoNode;
  NodeId write_enable = kNoNode;
};

/// Black-box ROM macro with baked contents (used by the interpreter and
/// the gate-level simulation model; excluded from synthesis area).
struct Rom {
  std::string name;
  int addr_bits = 0;
  int data_bits = 0;
  std::vector<std::int64_t> contents;  // sign-extended values
};

struct PortDef {
  std::string name;
  int width = 1;
  NodeId node = kNoNode;  // kInput node / driven output node
};

class Design {
 public:
  explicit Design(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // --- construction ---
  NodeId add_node(Node n);
  NodeId constant(int width, std::int64_t value);
  NodeId input(const std::string& name, int width);
  int add_register(const std::string& name, int width, std::int64_t reset = 0);
  int add_memory(const std::string& name, int addr_bits, int data_bits);
  int add_rom(const std::string& name, int addr_bits, int data_bits,
              std::vector<std::int64_t> contents);
  void add_output(const std::string& name, NodeId node);

  void set_register_next(int reg, NodeId next, NodeId enable = kNoNode);
  void set_memory_write(int mem, NodeId addr, NodeId data, NodeId enable);

  // --- access ---
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] Node& node_mut(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const std::vector<Register>& registers() const { return regs_; }
  [[nodiscard]] std::vector<Register>& registers_mut() { return regs_; }
  [[nodiscard]] const std::vector<Memory>& memories() const { return mems_; }
  [[nodiscard]] std::vector<Memory>& memories_mut() { return mems_; }
  [[nodiscard]] const std::vector<Rom>& roms() const { return roms_; }
  [[nodiscard]] const std::vector<PortDef>& inputs() const { return ins_; }
  [[nodiscard]] const std::vector<PortDef>& outputs() const { return outs_; }
  [[nodiscard]] std::vector<PortDef>& outputs_mut() { return outs_; }

  /// Checks that every register has a next function, all widths are
  /// positive and argument references are in range.  Throws on violation.
  void validate() const;

  /// Topological order of all nodes (inputs/consts/regQ/ram-reads are
  /// sources; ram reads depend on their address).  Deterministic.
  [[nodiscard]] std::vector<NodeId> topo_order() const;

  /// Every node reachable from outputs, register inputs and memory ports.
  [[nodiscard]] std::vector<bool> live_nodes() const;

  /// Simple statistics used by reports and tests.
  struct Stats {
    std::size_t nodes = 0;
    std::size_t registers = 0;
    std::size_t register_bits = 0;
    std::size_t multipliers = 0;  // live kMul nodes
    std::size_t adders = 0;       // live kAdd/kSub nodes
  };
  [[nodiscard]] Stats stats() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Register> regs_;
  std::vector<Memory> mems_;
  std::vector<Rom> roms_;
  std::vector<PortDef> ins_;
  std::vector<PortDef> outs_;
};

}  // namespace scflow::rtl
