#include "rtl/passes.hpp"

#include <map>
#include <optional>
#include <tuple>

#include "dtypes/bit_int.hpp"

namespace scflow::rtl {

namespace {

std::uint64_t mask_w(int width) { return scflow::bit_mask(width); }

/// Constant evaluation mirroring the interpreter's semantics.
std::optional<std::uint64_t> fold_const(const Design& d, const Node& n,
                                        const std::vector<Node>& new_nodes,
                                        const std::vector<NodeId>& remap) {
  // All arguments must be constants in the *new* design.
  std::vector<std::uint64_t> a;
  std::vector<int> aw;
  for (NodeId old_arg : n.args) {
    const Node& arg = new_nodes[static_cast<std::size_t>(remap[static_cast<std::size_t>(old_arg)])];
    if (arg.op != Op::kConst) return std::nullopt;
    a.push_back(static_cast<std::uint64_t>(arg.imm) & mask_w(arg.width));
    aw.push_back(arg.width);
  }
  const std::uint64_t m = mask_w(n.width);
  switch (n.op) {
    case Op::kAdd: return (a[0] + a[1]) & m;
    case Op::kSub: return (a[0] - a[1]) & m;
    case Op::kAddC: return (a[0] + a[1] + (a[2] & 1u)) & m;
    case Op::kMul:
      return static_cast<std::uint64_t>(scflow::sign_extend(a[0], aw[0]) *
                                        scflow::sign_extend(a[1], aw[1])) & m;
    case Op::kAnd: return a[0] & a[1];
    case Op::kOr: return a[0] | a[1];
    case Op::kXor: return a[0] ^ a[1];
    case Op::kNot: return (~a[0]) & m;
    case Op::kEq: return a[0] == a[1] ? 1 : 0;
    case Op::kNe: return a[0] != a[1] ? 1 : 0;
    case Op::kLtU: return a[0] < a[1] ? 1 : 0;
    case Op::kLtS:
      return scflow::sign_extend(a[0], aw[0]) < scflow::sign_extend(a[1], aw[1]) ? 1 : 0;
    case Op::kShl: return (n.imm >= 64 ? 0 : a[0] << n.imm) & m;
    case Op::kShr: return (n.imm >= 64 ? 0 : a[0] >> n.imm) & m;
    case Op::kMux: return a[0] ? a[2] : a[1];
    case Op::kSlice: return (a[0] >> n.imm) & m;
    case Op::kZext: return a[0];
    case Op::kSext: return static_cast<std::uint64_t>(scflow::sign_extend(a[0], aw[0])) & m;
    case Op::kRomRead: {
      const auto& rom = d.roms()[static_cast<std::size_t>(n.imm)];
      const std::uint64_t addr = a[0] & mask_w(rom.addr_bits);
      if (addr >= rom.contents.size()) return 0;
      return static_cast<std::uint64_t>(rom.contents[addr]) & m;
    }
    default: return std::nullopt;
  }
}

struct Rebuilder {
  const Design& src;
  const PassOptions& opts;
  Design out;
  std::vector<NodeId> remap;
  std::map<std::tuple<int, int, std::vector<NodeId>, std::int64_t>, NodeId> hash;
  std::size_t folded = 0;

  explicit Rebuilder(const Design& s, const PassOptions& o)
      : src(s), opts(o), out(s.name()), remap(s.nodes().size(), kNoNode) {}

  NodeId emit(Node n) {
    if (opts.cse && n.op != Op::kRegQ && n.op != Op::kInput && n.op != Op::kRamRead) {
      auto key = std::make_tuple(static_cast<int>(n.op), n.width, n.args, n.imm);
      const auto it = hash.find(key);
      if (it != hash.end()) return it->second;
      const NodeId id = out.add_node(n);
      hash.emplace(std::move(key), id);
      return id;
    }
    return out.add_node(std::move(n));
  }

  NodeId mapped(NodeId old_id) const {
    return old_id == kNoNode ? kNoNode : remap[static_cast<std::size_t>(old_id)];
  }

  /// Cheap algebraic identities returning an existing new-node id.
  std::optional<NodeId> identity(const Node& n, const std::vector<NodeId>& new_args) {
    auto is_const = [&](NodeId id, std::uint64_t v) {
      const Node& c = out.node(id);
      return c.op == Op::kConst &&
             (static_cast<std::uint64_t>(c.imm) & mask_w(c.width)) == v;
    };
    switch (n.op) {
      case Op::kAdd:
      case Op::kSub:
      case Op::kOr:
      case Op::kXor:
      case Op::kShl:
      case Op::kShr:
        if (n.op == Op::kShl || n.op == Op::kShr) {
          if (n.imm == 0) return new_args[0];
        } else if (is_const(new_args[1], 0) &&
                   out.node(new_args[0]).width == n.width) {
          return new_args[0];
        }
        return std::nullopt;
      case Op::kMux:
        if (new_args[1] == new_args[2]) return new_args[1];
        if (is_const(new_args[0], 1)) return new_args[2];
        if (is_const(new_args[0], 0)) return new_args[1];
        return std::nullopt;
      case Op::kSlice:
        if (n.imm == 0 && out.node(new_args[0]).width == n.width) return new_args[0];
        return std::nullopt;
      default:
        return std::nullopt;
    }
  }

  void run() {
    // Pre-create registers so kRegQ nodes can map by register index, and
    // carry memories/roms over verbatim.
    for (const Register& r : src.registers())
      out.add_register(r.name, r.width, r.reset_value);
    for (const Memory& m : src.memories())
      out.add_memory(m.name, m.addr_bits, m.data_bits);
    for (const Rom& r : src.roms())
      out.add_rom(r.name, r.addr_bits, r.data_bits, r.contents);

    const auto live = src.live_nodes();
    for (std::size_t i = 0; i < src.nodes().size(); ++i) {
      const Node& n = src.nodes()[i];
      if (opts.dce && !live[i] && n.op != Op::kInput) continue;
      if (n.op == Op::kRegQ) {
        remap[i] = out.registers()[static_cast<std::size_t>(n.imm)].q;
        continue;
      }
      if (n.op == Op::kInput) {
        remap[i] = out.input(n.name, n.width);
        continue;
      }
      if (opts.constant_fold) {
        if (auto v = fold_const(src, n, out.nodes(), remap)) {
          remap[i] = emit([&] {
            Node c;
            c.op = Op::kConst;
            c.width = n.width;
            c.imm = static_cast<std::int64_t>(*v);
            return c;
          }());
          ++folded;
          continue;
        }
      }
      Node copy = n;
      for (NodeId& a : copy.args) a = mapped(a);
      if (opts.constant_fold) {
        if (auto id = identity(n, copy.args)) {
          remap[i] = *id;
          ++folded;
          continue;
        }
      }
      remap[i] = emit(std::move(copy));
    }

    for (std::size_t r = 0; r < src.registers().size(); ++r)
      out.set_register_next(static_cast<int>(r), mapped(src.registers()[r].next),
                            mapped(src.registers()[r].enable));
    for (std::size_t m = 0; m < src.memories().size(); ++m) {
      const Memory& mem = src.memories()[m];
      out.set_memory_write(static_cast<int>(m), mapped(mem.write_addr),
                           mapped(mem.write_data), mapped(mem.write_enable));
    }
    for (const PortDef& o : src.outputs()) out.add_output(o.name, mapped(o.node));
  }
};

/// Merges registers whose (width, reset, next, enable) coincide after CSE:
/// all-but-one become aliases.  Returns the number of merges performed.
std::size_t merge_identical_registers(Design& d) {
  std::map<std::tuple<int, std::int64_t, NodeId, NodeId>, std::size_t> groups;
  std::vector<std::size_t> alias(d.registers().size());
  std::size_t merged = 0;
  for (std::size_t r = 0; r < d.registers().size(); ++r) {
    const Register& reg = d.registers()[r];
    const auto key = std::make_tuple(reg.width, reg.reset_value, reg.next, reg.enable);
    const auto [it, inserted] = groups.emplace(key, r);
    alias[r] = it->second;
    if (!inserted) ++merged;
  }
  if (merged == 0) return 0;
  // Redirect q references of merged registers to the group leader's q.
  std::vector<NodeId> q_replacement(d.nodes().size(), kNoNode);
  for (std::size_t r = 0; r < d.registers().size(); ++r) {
    if (alias[r] != r)
      q_replacement[static_cast<std::size_t>(d.registers()[r].q)] =
          d.registers()[alias[r]].q;
  }
  auto redirect = [&](NodeId& id) {
    if (id != kNoNode && q_replacement[static_cast<std::size_t>(id)] != kNoNode)
      id = q_replacement[static_cast<std::size_t>(id)];
  };
  for (std::size_t i = 0; i < d.nodes().size(); ++i) {
    Node& n = d.node_mut(static_cast<NodeId>(i));
    for (NodeId& a : n.args) redirect(a);
  }
  for (Register& r : d.registers_mut()) {
    redirect(r.next);
    redirect(r.enable);
  }
  for (Memory& m : d.memories_mut()) {
    redirect(m.write_addr);
    redirect(m.write_data);
    redirect(m.write_enable);
  }
  for (PortDef& o : d.outputs_mut()) redirect(o.node);
  // Drop the now-unreferenced duplicate registers: rebuild register list.
  // Their q nodes become dead and a later DCE pass removes them.
  std::vector<Register> kept;
  std::vector<std::size_t> new_index(d.registers().size());
  for (std::size_t r = 0; r < d.registers().size(); ++r) {
    if (alias[r] == r) {
      new_index[r] = kept.size();
      kept.push_back(d.registers()[r]);
    }
  }
  for (const Register& r : kept)
    d.node_mut(r.q).imm = static_cast<std::int64_t>(new_index[static_cast<std::size_t>(
        d.node(r.q).imm)]);
  d.registers_mut() = std::move(kept);
  return merged;
}

/// Removes registers whose q node is unreachable from any output, memory
/// port or *other* register's logic.
std::size_t sweep_dead_regs(Design& d) {
  const auto live = d.live_nodes();
  // A register is dead if its q is only reachable through its own next
  // chain.  Approximate conservatively: drop registers whose q has no
  // liveness at all (live_nodes marks q of every register, so compute
  // reachability from outputs/memories only).
  std::vector<bool> reach(d.nodes().size(), false);
  std::vector<NodeId> work;
  auto mark = [&](NodeId id) {
    if (id != kNoNode && !reach[static_cast<std::size_t>(id)]) {
      reach[static_cast<std::size_t>(id)] = true;
      work.push_back(id);
    }
  };
  for (const PortDef& o : d.outputs()) mark(o.node);
  for (const Memory& m : d.memories()) {
    mark(m.write_addr);
    mark(m.write_data);
    mark(m.write_enable);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    while (!work.empty()) {
      const NodeId id = work.back();
      work.pop_back();
      for (NodeId a : d.node(id).args) mark(a);
    }
    // Registers whose q is reached pull in their next/enable cones.
    for (const Register& r : d.registers()) {
      if (reach[static_cast<std::size_t>(r.q)] &&
          !reach[static_cast<std::size_t>(r.next)]) {
        mark(r.next);
        mark(r.enable);
        changed = true;
      }
    }
  }
  (void)live;
  std::vector<Register> kept;
  std::vector<std::size_t> new_index(d.registers().size());
  std::size_t removed = 0;
  for (std::size_t r = 0; r < d.registers().size(); ++r) {
    if (reach[static_cast<std::size_t>(d.registers()[r].q)]) {
      new_index[r] = kept.size();
      kept.push_back(d.registers()[r]);
    } else {
      ++removed;
    }
  }
  if (removed == 0) return 0;
  for (const Register& r : kept)
    d.node_mut(r.q).imm = static_cast<std::int64_t>(
        new_index[static_cast<std::size_t>(d.node(r.q).imm)]);
  d.registers_mut() = std::move(kept);
  return removed;
}

}  // namespace

Design run_passes(const Design& design, const PassOptions& options, PassStats* stats) {
  PassStats local;
  local.nodes_before = design.nodes().size();
  local.registers_before = design.registers().size();

  Design current("tmp");
  {
    Rebuilder rb(design, options);
    rb.run();
    local.folded += rb.folded;
    current = std::move(rb.out);
  }
  for (int it = 1; it < options.max_iterations; ++it) {
    bool changed = false;
    if (options.merge_registers)
      if (const auto m = merge_identical_registers(current); m > 0) {
        local.merged_registers += m;
        changed = true;
      }
    if (options.sweep_dead_registers)
      if (sweep_dead_regs(current) > 0) changed = true;
    Rebuilder rb(current, options);
    rb.run();
    if (rb.out.nodes().size() != current.nodes().size() || rb.folded > 0) changed = true;
    local.folded += rb.folded;
    current = std::move(rb.out);
    if (!changed) break;
  }
  current.validate();
  local.nodes_after = current.nodes().size();
  local.registers_after = current.registers().size();
  if (stats != nullptr) *stats = local;
  return current;
}

}  // namespace scflow::rtl
