// Cycle-accurate interpreter for rtl::Design — the substrate's equivalent
// of RTL simulation, and the reference the gate-level netlist is verified
// against.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/ir.hpp"

namespace scflow::rtl {

class Interpreter {
 public:
  explicit Interpreter(const Design& design);

  /// Registers to reset values, memories to zero, inputs to zero.
  void reset();

  void set_input(const std::string& name, std::uint64_t value);
  void set_input(std::size_t index, std::uint64_t value);
  /// Index of a named input, for the indexed set_input overload.
  [[nodiscard]] std::size_t input_index(const std::string& name) const;
  /// Node driving a named output, for direct value() reads.
  [[nodiscard]] NodeId output_node(const std::string& name) const;

  /// Evaluates combinational logic for the current inputs (no clock).
  void evaluate();
  /// Evaluates, then performs one rising clock edge (register + memory
  /// updates).  Outputs sampled *before* the edge are the pre-edge values.
  void step();

  [[nodiscard]] std::uint64_t output(const std::string& name) const;
  [[nodiscard]] std::uint64_t value(NodeId id) const {
    return values_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::uint64_t register_value(std::size_t index) const {
    return reg_state_[index];
  }
  [[nodiscard]] const Design& design() const { return *design_; }

  /// Observation hook for memory-checking simulation models: called for
  /// every RAM read (mem index, address) during evaluate().
  void set_ram_read_hook(std::function<void(int, std::uint64_t)> hook) {
    ram_read_hook_ = std::move(hook);
  }
  /// Called for every committed RAM write (mem index, address, data).
  void set_ram_write_hook(std::function<void(int, std::uint64_t, std::uint64_t)> hook) {
    ram_write_hook_ = std::move(hook);
  }

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

 private:
  [[nodiscard]] std::uint64_t eval_node(const Node& n);

  const Design* design_;
  std::vector<std::uint64_t> values_;      // per node, masked to width
  std::vector<std::uint64_t> reg_state_;   // per register, masked
  std::vector<std::vector<std::uint64_t>> mem_state_;
  std::unordered_map<std::string, NodeId> output_by_name_;
  std::unordered_map<std::string, std::size_t> input_by_name_;
  std::vector<std::uint64_t> input_values_;
  std::function<void(int, std::uint64_t)> ram_read_hook_;
  std::function<void(int, std::uint64_t, std::uint64_t)> ram_write_hook_;
  std::uint64_t cycles_ = 0;
  bool evaluated_ = false;
};

}  // namespace scflow::rtl
