// Chrome trace-event JSON writer (the "JSON Object Format" understood by
// chrome://tracing and Perfetto): complete slices ("ph":"X"), instant
// events ("ph":"i") and counter tracks ("ph":"C").  The flow drivers use
// it to lay scheduler / synthesis / cosim activity on one timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scflow::obs {

class TraceWriter {
 public:
  /// Construction pins the trace epoch: all timestamps are nanoseconds
  /// relative to it (emitted as microseconds, the trace-event unit).
  TraceWriter();

  /// Nanoseconds elapsed since the epoch (monotonic clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// A completed slice: [ts, ts+dur) on thread track @p tid.
  void complete_event(std::string name, std::string category, std::uint64_t ts_ns,
                      std::uint64_t dur_ns, int tid = 0);
  /// A zero-duration marker.
  void instant_event(std::string name, std::string category, std::uint64_t ts_ns,
                     int tid = 0);
  /// A sample on a counter track (renders as a value graph).
  void counter_event(std::string name, std::uint64_t ts_ns, double value);

  /// Flow-event pair: a flow with @p flow_id starts inside the slice
  /// enclosing (tid, ts) and ends ("bp":"e" binding) inside the slice
  /// enclosing the end point — Perfetto draws an arrow between the two
  /// slices even when they sit on different thread tracks.
  void flow_start(std::string name, std::string category, std::uint64_t ts_ns, int tid,
                  std::uint64_t flow_id);
  void flow_end(std::string name, std::string category, std::uint64_t ts_ns, int tid,
                std::uint64_t flow_id);

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

  /// The whole trace as {"traceEvents":[...],"displayTimeUnit":"ms"}.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to @p path; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  enum class Phase { kComplete, kInstant, kCounter, kFlowStart, kFlowEnd };
  struct Event {
    Phase phase;
    std::string name;
    std::string category;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    int tid = 0;
    double value = 0.0;
    std::uint64_t flow_id = 0;
  };

  std::uint64_t epoch_ns_;  // steady-clock origin
  std::vector<Event> events_;
};

}  // namespace scflow::obs
