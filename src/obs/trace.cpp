#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/json.hpp"

namespace scflow::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Trace-event timestamps are microseconds; emit with ns precision.
void append_us(std::ostringstream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
     << static_cast<char>('0' + (ns % 100) / 10) << static_cast<char>('0' + ns % 10);
}

}  // namespace

TraceWriter::TraceWriter() : epoch_ns_(steady_ns()) {}

std::uint64_t TraceWriter::now_ns() const { return steady_ns() - epoch_ns_; }

void TraceWriter::complete_event(std::string name, std::string category,
                                 std::uint64_t ts_ns, std::uint64_t dur_ns, int tid) {
  events_.push_back({Phase::kComplete, std::move(name), std::move(category), ts_ns,
                     dur_ns, tid, 0.0});
}

void TraceWriter::instant_event(std::string name, std::string category,
                                std::uint64_t ts_ns, int tid) {
  events_.push_back(
      {Phase::kInstant, std::move(name), std::move(category), ts_ns, 0, tid, 0.0});
}

void TraceWriter::counter_event(std::string name, std::uint64_t ts_ns, double value) {
  events_.push_back({Phase::kCounter, std::move(name), "counter", ts_ns, 0, 0, value, 0});
}

void TraceWriter::flow_start(std::string name, std::string category, std::uint64_t ts_ns,
                             int tid, std::uint64_t flow_id) {
  events_.push_back(
      {Phase::kFlowStart, std::move(name), std::move(category), ts_ns, 0, tid, 0.0, flow_id});
}

void TraceWriter::flow_end(std::string name, std::string category, std::uint64_t ts_ns,
                           int tid, std::uint64_t flow_id) {
  events_.push_back(
      {Phase::kFlowEnd, std::move(name), std::move(category), ts_ns, 0, tid, 0.0, flow_id});
}

std::string TraceWriter::to_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.category) << "\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":";
    append_us(os, e.ts_ns);
    switch (e.phase) {
      case Phase::kComplete:
        os << ",\"ph\":\"X\",\"dur\":";
        append_us(os, e.dur_ns);
        break;
      case Phase::kInstant:
        os << ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case Phase::kCounter:
        os << ",\"ph\":\"C\",\"args\":{\"value\":" << json_number(e.value) << '}';
        break;
      case Phase::kFlowStart:
        os << ",\"ph\":\"s\",\"id\":" << e.flow_id;
        break;
      case Phase::kFlowEnd:
        os << ",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << e.flow_id;
        break;
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

bool TraceWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace scflow::obs
