// The flow-wide metric registry: named monotonic counters, gauges,
// log-bucketed histograms and scoped RAII timers with monotonic-clock
// nesting.  Every layer of the stack (kernel stats, gate-sim counters,
// hls/netlist pass stats, flow step timings) records into one Registry,
// which then emits a single machine-readable report.json — the unified
// schema the benches and the flow drivers share ("scflow-obs-2").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"

namespace scflow::obs {

class Ledger;
class TraceWriter;

class Registry {
 public:
  Registry() = default;
  // Scoped timers hold a pointer back into the registry.
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // --- counters (monotonic, integral) ---
  void count(std::string_view name, std::uint64_t delta = 1);
  /// Sets an absolute counter value (for re-exposing externally accumulated
  /// counts such as SimCounters fields).
  void set_counter(std::string_view name, std::uint64_t value);
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;  ///< 0 if absent
  [[nodiscard]] bool has_counter(std::string_view name) const;

  // --- gauges (latest-value, floating point) ---
  void set_gauge(std::string_view name, double value);
  [[nodiscard]] double gauge(std::string_view name) const;  ///< 0.0 if absent

  // --- histograms (log2-bucketed value distributions) ---
  /// Records one sample into the named histogram (created on first use).
  void record_value(std::string_view name, std::uint64_t value);
  /// Bucket-wise merges @p h into the named histogram.
  void merge_histogram(std::string_view name, const Histogram& h);
  [[nodiscard]] const Histogram* histogram(std::string_view name) const;  ///< null if absent
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  // --- scoped timers ---
  struct TimerStat {
    std::uint64_t total_ns = 0;
    std::uint64_t count = 0;
  };

  /// RAII scope: accumulates wall time (monotonic clock) into the timer
  /// named by the '/'-joined stack of open scopes, so nested scopes record
  /// under hierarchical paths ("flow/level/RTL (opt)").  If a TraceWriter
  /// is attached, closing the scope also emits a complete trace slice.
  class ScopedTimer {
   public:
    ~ScopedTimer();
    ScopedTimer(ScopedTimer&& o) noexcept;
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ScopedTimer& operator=(ScopedTimer&&) = delete;

   private:
    friend class Registry;
    ScopedTimer(Registry& reg, std::uint64_t start_ns) : reg_(&reg), start_ns_(start_ns) {}
    Registry* reg_;
    std::uint64_t start_ns_;
  };

  [[nodiscard]] ScopedTimer time_scope(std::string name);
  [[nodiscard]] const TimerStat* timer(std::string_view path) const;  ///< null if absent

  /// Attaches a trace timeline: every scope close adds a slice; counter
  /// and gauge writes do not (call TraceWriter::counter_event directly for
  /// sampled tracks).  Pass nullptr to detach.
  void attach_trace(TraceWriter* trace) { trace_ = trace; }
  [[nodiscard]] TraceWriter* trace() const { return trace_; }

  /// Attaches a run ledger so engines that only receive a Registry* can
  /// still append invocation entries.  Pass nullptr to detach.
  void attach_ledger(Ledger* ledger) { ledger_ = ledger; }
  [[nodiscard]] Ledger* ledger() const { return ledger_; }

  /// Merges every metric of @p other into this registry under
  /// "<prefix>.name" (counters add, gauges overwrite, timers accumulate,
  /// histograms bucket-wise merge).
  void merge_from(const Registry& other, std::string_view prefix = {});

  /// The unified report: {"schema":"scflow-obs-2","counters":{...},
  /// "gauges":{...},"histograms":{...},"timers":{"path":{"ns":..,
  /// "count":..}}} with keys in deterministic (lexicographic) order.
  [[nodiscard]] std::string report_json() const;
  /// Writes report_json() to @p path; returns false on I/O failure.
  bool write_report(const std::string& path) const;

 private:
  void close_scope(std::uint64_t start_ns);

  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, TimerStat, std::less<>> timers_;
  std::vector<std::string> scope_stack_;
  TraceWriter* trace_ = nullptr;
  Ledger* ledger_ = nullptr;
};

}  // namespace scflow::obs
