// Structured spans: timed regions with identities and parent links, built
// for work that hops threads.  A parent (e.g. a fault campaign) reserves
// an id, hands it to jobs that execute on BatchRunner lanes, and each job
// becomes a child span carrying parent_id — the link survives the thread
// hand-off because it is plain data, not stack context.  SpanSet collects
// the spans (ids are reservable from any thread; span storage is appended
// post-join on the owning thread, same discipline as TraceWriter) and
// exports them as Chrome/Perfetto events: one complete slice per span
// plus a flow-event pair (ph "s" at the parent, ph "f" binding into the
// child slice) per parent link, so a campaign's fan-out across lanes
// renders as one connected graph in the Perfetto UI.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace scflow::obs {

class TraceWriter;

struct Span {
  std::uint64_t id = 0;         ///< non-zero, unique within the SpanSet
  std::uint64_t parent_id = 0;  ///< 0 = root span
  std::string name;
  std::string category;
  std::uint64_t start_ns = 0;  ///< trace-epoch relative
  std::uint64_t end_ns = 0;
  int tid = 0;  ///< lane / thread track the span ran on
};

class SpanSet {
 public:
  SpanSet() = default;
  SpanSet(const SpanSet&) = delete;
  SpanSet& operator=(const SpanSet&) = delete;

  /// Reserves a fresh span id.  Thread-safe: lanes may reserve ids
  /// concurrently while the owning thread is elsewhere.
  [[nodiscard]] std::uint64_t reserve_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends a finished span.  NOT thread-safe — call from the owning
  /// thread (post-join), like TraceWriter.  A zero id is assigned one.
  void add(Span s);

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::size_t size() const { return spans_.size(); }

  /// Emits every span added since the previous export_to call as a
  /// complete slice on its tid, plus a flow s/f pair for each parent
  /// link whose parent span is known.  Idempotent per span (watermark).
  void export_to(TraceWriter& trace);

 private:
  std::atomic<std::uint64_t> next_id_{1};
  std::vector<Span> spans_;
  std::size_t exported_ = 0;
};

}  // namespace scflow::obs
