#include "obs/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace scflow::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  // max_digits10 guarantees a lossless double round-trip; %g keeps the
  // common integral gauges short ("42" not "42.000000000000000").
  std::snprintf(buf, sizeof buf, "%.*g", std::numeric_limits<double>::max_digits10, v);
  return buf;
}

namespace {

/// Recursive-descent JSON syntax checker over a string_view cursor.
class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    error_ = error;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after JSON value");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_ != nullptr)
      *error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    return false;
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    bool ok = false;
    if (eof()) {
      ok = fail("unexpected end of input");
    } else {
      switch (peek()) {
        case '{': ok = object(); break;
        case '[': ok = array(); break;
        case '"': ok = string(); break;
        case 't': ok = literal("true"); break;
        case 'f': ok = literal("false"); break;
        case 'n': ok = literal("null"); break;
        default: ok = number(); break;
      }
    }
    --depth_;
    return ok;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key string");
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (true) {
      if (eof()) return fail("unterminated string");
      const auto c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || !is_hex(text_[pos_])) return fail("bad \\u escape");
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      }
      ++pos_;
    }
  }

  static bool is_hex(char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }
  static bool is_digit(char c) { return c >= '0' && c <= '9'; }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !is_digit(peek())) return fail("expected a number");
    if (peek() == '0') ++pos_;  // no leading zeros
    else while (!eof() && is_digit(peek())) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !is_digit(peek())) return fail("expected digits after decimal point");
      while (!eof() && is_digit(peek())) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !is_digit(peek())) return fail("expected exponent digits");
      while (!eof() && is_digit(peek())) ++pos_;
    }
    return pos_ > start;
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string* error_ = nullptr;
};

}  // namespace

bool json_validate(std::string_view text, std::string* error) {
  return Checker(text).run(error);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

std::uint64_t JsonValue::as_u64(std::uint64_t dflt) const {
  if (kind != Kind::kNumber) return dflt;
  if (is_uint) return uint_image;
  if (number >= 0.0 && number < 1.8446744073709552e19) return static_cast<std::uint64_t>(number);
  return dflt;
}

double JsonValue::as_double(double dflt) const {
  return kind == Kind::kNumber ? number : dflt;
}

namespace {

/// Recursive-descent parser building a JsonValue DOM.  Grammar identical
/// to Checker; numbers additionally keep an exact uint64 image when the
/// lexeme is a plain non-negative integer in range.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool run(JsonValue* out, std::string* error) {
    error_ = error;
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after JSON value");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_ != nullptr)
      *error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    return false;
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue* out) {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    bool ok = false;
    if (eof()) {
      ok = fail("unexpected end of input");
    } else {
      switch (peek()) {
        case '{': ok = object(out); break;
        case '[': ok = array(out); break;
        case '"':
          out->kind = JsonValue::Kind::kString;
          ok = string(&out->string);
          break;
        case 't':
          out->kind = JsonValue::Kind::kBool;
          out->boolean = true;
          ok = literal("true");
          break;
        case 'f':
          out->kind = JsonValue::Kind::kBool;
          out->boolean = false;
          ok = literal("false");
          break;
        case 'n':
          out->kind = JsonValue::Kind::kNull;
          ok = literal("null");
          break;
        default: ok = number(out); break;
      }
    }
    --depth_;
    return ok;
  }

  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key string");
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return fail("expected ',' or ']' in array");
    }
  }

  static bool is_hex(char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }
  static bool is_digit(char c) { return c >= '0' && c <= '9'; }
  static unsigned hex_val(char c) {
    if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
    return static_cast<unsigned>(c - 'A' + 10);
  }

  void append_utf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool string(std::string* out) {
    ++pos_;  // opening quote
    while (true) {
      if (eof()) return fail("unterminated string");
      const auto c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        const char e = text_[pos_];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              ++pos_;
              if (eof() || !is_hex(text_[pos_])) return fail("bad \\u escape");
              cp = cp * 16 + hex_val(text_[pos_]);
            }
            // Surrogate pair: stitch \uD8xx\uDCxx into one code point.
            if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 6 < text_.size() &&
                text_[pos_ + 1] == '\\' && text_[pos_ + 2] == 'u') {
              unsigned lo = 0;
              bool ok = true;
              for (int i = 0; i < 4; ++i) {
                const char h = text_[pos_ + 3 + static_cast<std::size_t>(i)];
                if (!is_hex(h)) { ok = false; break; }
                lo = lo * 16 + hex_val(h);
              }
              if (ok && lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                pos_ += 6;
              }
            }
            append_utf8(out, cp);
            break;
          }
          default: return fail("bad escape character");
        }
        ++pos_;
        continue;
      }
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    bool neg = false;
    if (!eof() && peek() == '-') { neg = true; ++pos_; }
    if (eof() || !is_digit(peek())) return fail("expected a number");
    if (peek() == '0') ++pos_;  // no leading zeros
    else while (!eof() && is_digit(peek())) ++pos_;
    bool integral = true;
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      if (eof() || !is_digit(peek())) return fail("expected digits after decimal point");
      while (!eof() && is_digit(peek())) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !is_digit(peek())) return fail("expected exponent digits");
      while (!eof() && is_digit(peek())) ++pos_;
    }
    const std::string lexeme(text_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(lexeme.c_str(), nullptr);
    if (integral && !neg) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long u = std::strtoull(lexeme.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out->is_uint = true;
        out->uint_image = u;
      }
    }
    return true;
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string* error_ = nullptr;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  return Parser(text).run(out, error);
}

}  // namespace scflow::obs
