#include "obs/json.hpp"

#include <cstdio>

namespace scflow::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

/// Recursive-descent JSON syntax checker over a string_view cursor.
class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    error_ = error;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after JSON value");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_ != nullptr)
      *error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    return false;
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    bool ok = false;
    if (eof()) {
      ok = fail("unexpected end of input");
    } else {
      switch (peek()) {
        case '{': ok = object(); break;
        case '[': ok = array(); break;
        case '"': ok = string(); break;
        case 't': ok = literal("true"); break;
        case 'f': ok = literal("false"); break;
        case 'n': ok = literal("null"); break;
        default: ok = number(); break;
      }
    }
    --depth_;
    return ok;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key string");
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (true) {
      if (eof()) return fail("unterminated string");
      const auto c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || !is_hex(text_[pos_])) return fail("bad \\u escape");
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      }
      ++pos_;
    }
  }

  static bool is_hex(char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }
  static bool is_digit(char c) { return c >= '0' && c <= '9'; }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !is_digit(peek())) return fail("expected a number");
    if (peek() == '0') ++pos_;  // no leading zeros
    else while (!eof() && is_digit(peek())) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !is_digit(peek())) return fail("expected digits after decimal point");
      while (!eof() && is_digit(peek())) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !is_digit(peek())) return fail("expected exponent digits");
      while (!eof() && is_digit(peek())) ++pos_;
    }
    return pos_ > start;
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string* error_ = nullptr;
};

}  // namespace

bool json_validate(std::string_view text, std::string* error) {
  return Checker(text).run(error);
}

}  // namespace scflow::obs
