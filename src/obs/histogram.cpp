#include "obs/histogram.hpp"

#include <bit>
#include <cstdio>
#include <sstream>

#include "obs/json.hpp"

namespace scflow::obs {

namespace {

/// Inclusive lower bound of bucket @p b (bucket 0 = {0}, bucket b = [2^(b-1), 2^b)).
std::uint64_t bucket_lo(int b) { return b == 0 ? 0 : (1ULL << (b - 1)); }

/// Exclusive upper bound of bucket @p b, saturated for the last bucket.
std::uint64_t bucket_hi(int b) {
  return b >= 64 ? ~0ULL : (b == 0 ? 1ULL : (1ULL << b));
}

}  // namespace

void Histogram::record(std::uint64_t value) {
  buckets_[static_cast<std::size_t>(std::bit_width(value))] += 1;
  count_ += 1;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i)
    buckets_[static_cast<std::size_t>(i)] += other.buckets_[static_cast<std::size_t>(i)];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max_;
  // Rank of the target sample (1-based), then walk buckets until the
  // cumulative count covers it.
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (static_cast<double>(cum + n) >= rank) {
      const double frac = (rank - static_cast<double>(cum)) / static_cast<double>(n);
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      auto est = static_cast<std::uint64_t>(lo + frac * (hi - lo));
      if (est < min()) est = min();
      if (est > max_) est = max_;
      return est;
    }
    cum += n;
  }
  return max_;
}

std::string Histogram::to_json() const {
  std::ostringstream os;
  os << "{\"count\":" << count_ << ",\"sum\":" << sum_ << ",\"min\":" << min()
     << ",\"max\":" << max_ << ",\"p50\":" << p50() << ",\"p90\":" << p90()
     << ",\"p99\":" << p99() << ",\"buckets\":{";
  bool first = true;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << bucket_hi(b) << "\":" << n;
  }
  os << "}}";
  return os.str();
}

bool Histogram::from_json(const std::string& json, Histogram* out) {
  *out = Histogram{};
  JsonValue v;
  if (!json_parse(json, &v) || v.kind != JsonValue::Kind::kObject) return false;
  const JsonValue* count = v.find("count");
  const JsonValue* sum = v.find("sum");
  const JsonValue* buckets = v.find("buckets");
  if (count == nullptr || sum == nullptr || buckets == nullptr ||
      buckets->kind != JsonValue::Kind::kObject) {
    return false;
  }
  out->count_ = count->as_u64();
  out->sum_ = sum->as_u64();
  if (const JsonValue* mn = v.find("min"); mn != nullptr && out->count_ > 0)
    out->min_ = mn->as_u64();
  if (const JsonValue* mx = v.find("max"); mx != nullptr) out->max_ = mx->as_u64();
  std::uint64_t total = 0;
  for (const auto& [key, val] : buckets->members) {
    const std::uint64_t hi = std::strtoull(key.c_str(), nullptr, 10);
    // Recover the bucket index from its exclusive upper bound.
    int b = 0;
    if (key == "18446744073709551615") b = 64;
    else if (hi > 1) b = std::bit_width(hi - 1);
    if (b < 0 || b >= kBuckets) return false;
    out->buckets_[static_cast<std::size_t>(b)] += val.as_u64();
    total += val.as_u64();
  }
  return total == out->count_;
}

namespace {

/// Scales a nanosecond value to a short human string (ns/us/ms/s).
std::string scale_ns(std::uint64_t ns) {
  char buf[32];
  const auto v = static_cast<double>(ns);
  if (ns < 1000) std::snprintf(buf, sizeof buf, "%lluns", static_cast<unsigned long long>(ns));
  else if (ns < 1000000) std::snprintf(buf, sizeof buf, "%.1fus", v / 1e3);
  else if (ns < 1000000000ULL) std::snprintf(buf, sizeof buf, "%.1fms", v / 1e6);
  else std::snprintf(buf, sizeof buf, "%.2fs", v / 1e9);
  return buf;
}

}  // namespace

std::string Histogram::summary(bool ns_values) const {
  std::ostringstream os;
  os << "n=" << count_;
  if (count_ == 0) return os.str();
  auto fmt = [ns_values](std::uint64_t v) {
    return ns_values ? scale_ns(v) : std::to_string(v);
  };
  os << " p50=" << fmt(p50()) << " p90=" << fmt(p90()) << " p99=" << fmt(p99())
     << " max=" << fmt(max_);
  return os.str();
}

}  // namespace scflow::obs
