// The run ledger: an append-only JSONL artifact where every engine
// invocation (refinement-flow level, synthesis, CEC, fault campaign,
// bench) records one schema-versioned entry — {phase, design, input
// content-hash, options fingerprint, duration, counters, gauges,
// histograms}.  The first line is a header stamping {schema, rev, host,
// hw_threads, tool}; each following line is one entry, so runs can
// append to a shared file and tools can stream it line-by-line.
//
// Determinism contract: entries are built EXPLICITLY by the engines from
// their deterministic result counters (never scraped from a registry
// prefix), so scheduling-dependent metrics (per-lane job counts, wall
// budgets) stay out.  All timing lives in fields/keys that name
// nanoseconds ("duration_ns", "*_ns"), which diff and the thread-sweep
// tests exclude — everything else must be bit-identical across reruns
// and thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace scflow::obs {

inline constexpr std::string_view kLedgerSchema = "scflow-ledger-1";

/// Streaming FNV-1a 64-bit hash — the flow's content-hash / options-
/// fingerprint primitive (stable across platforms and runs).
class Fnv1a {
 public:
  void update_bytes(const void* data, std::size_t n);
  void update_u64(std::uint64_t v);
  void update_str(std::string_view s);  ///< length-prefixed (no concat ambiguity)
  [[nodiscard]] std::uint64_t digest() const { return h_; }
  /// Resumes a streaming hash from a previously observed digest (FNV-1a's
  /// running state IS its digest) — snapshot/restore of per-session
  /// output hashes in the serve resilience layer rides on this.
  void restore_digest(std::uint64_t digest) { h_ = digest; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

/// Provenance stamped into ledger headers and bench context: git SHA
/// (SCFLOW_GIT_REV env or "unknown"), hostname, hardware thread count.
struct RunMetadata {
  std::string rev = "unknown";
  std::string host = "unknown";
  unsigned hw_threads = 0;
  std::string tool;
};

/// Collects RunMetadata for the current process.
[[nodiscard]] RunMetadata collect_run_metadata(std::string tool);

/// One engine invocation.  Metric vectors keep insertion order in memory
/// but serialize sorted by name, so two runs that record the same
/// metrics in different orders still emit identical lines.
struct LedgerEntry {
  std::string phase;   ///< "flow.level", "flow.verify", "synth", "cec", "fault", "bench"
  std::string design;  ///< design / step label
  std::uint64_t input_hash = 0;           ///< content hash of the engine's input
  std::uint64_t options_fingerprint = 0;  ///< hash of semantic options only
  std::uint64_t duration_ns = 0;

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram>> histograms;

  void add_counter(std::string name, std::uint64_t value) {
    counters.emplace_back(std::move(name), value);
  }
  void add_gauge(std::string name, double value) {
    gauges.emplace_back(std::move(name), value);
  }
  void add_histogram(std::string name, Histogram h) {
    histograms.emplace_back(std::move(name), std::move(h));
  }
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;  ///< 0 if absent

  /// One JSON object (no trailing newline).  With @p strip_timing, the
  /// duration and every "*_ns" metric are omitted and "*_ns" histograms
  /// reduce to their count — the deterministic projection the
  /// thread-sweep bit-identity test compares.
  [[nodiscard]] std::string to_json(bool strip_timing = false) const;
};

/// In-memory ledger.  An engine appends entries as it runs; the owner
/// writes the JSONL at the end (or incrementally via write(append)).
class Ledger {
 public:
  Ledger() = default;
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  RunMetadata meta;

  void append(LedgerEntry entry) { entries_.push_back(std::move(entry)); }
  [[nodiscard]] const std::vector<LedgerEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Full JSONL image (header line + one line per entry).
  [[nodiscard]] std::string to_jsonl(bool strip_timing = false) const;

  /// Writes the JSONL to @p path.  With @p append and a non-empty
  /// existing file, entries are appended without a second header.
  bool write(const std::string& path, bool append = false) const;

 private:
  std::vector<LedgerEntry> entries_;
};

/// One line the lenient parser had to skip (truncated tail, bit flip,
/// partial write): where and why, so tools can report it precisely.
struct MalformedLine {
  std::size_t line_no = 0;  ///< 1-based; 0 flags a file-level problem
  std::string error;
};

/// A ledger read back from disk.
struct LoadedLedger {
  RunMetadata meta;
  std::vector<LedgerEntry> entries;
  std::vector<MalformedLine> malformed;  ///< populated in lenient mode only
};

/// Parses a ledger JSONL file.  Strict mode (default): returns false
/// (with *error) on I/O or schema problems; every line must be valid
/// JSON of the right shape.  Lenient mode (@p skip_malformed): damaged
/// lines — truncated tails, bit flips, partial writes — are skipped and
/// recorded in LoadedLedger::malformed with their line numbers, every
/// intact entry is kept, and the call fails only when the file cannot
/// be read at all.
[[nodiscard]] bool load_ledger(const std::string& path, LoadedLedger* out,
                               std::string* error = nullptr,
                               bool skip_malformed = false);
/// Same, from an in-memory JSONL string.
[[nodiscard]] bool parse_ledger(std::string_view jsonl, LoadedLedger* out,
                                std::string* error = nullptr,
                                bool skip_malformed = false);

/// One metric difference between matched entries.
struct MetricDelta {
  std::string entry;   ///< "phase/design[#k]"
  std::string metric;  ///< counter/gauge/hash field name
  double a = 0.0;
  double b = 0.0;
};

/// Result of diffing two ledgers.  Entries match by (phase, design,
/// occurrence index); timing metrics ("duration_ns", "*_ns" keys) are
/// reported separately and never make a diff unclean.
struct LedgerDiff {
  std::vector<std::string> only_a;       ///< entry keys present only in A
  std::vector<std::string> only_b;       ///< entry keys present only in B
  std::vector<MetricDelta> deltas;       ///< gating: counters/gauges/hashes/histograms
  std::vector<MetricDelta> timing_only;  ///< informational: timing drift

  /// True iff the ledgers agree on everything except timing.
  [[nodiscard]] bool clean() const {
    return only_a.empty() && only_b.empty() && deltas.empty();
  }
};

[[nodiscard]] LedgerDiff diff_ledgers(const LoadedLedger& a, const LoadedLedger& b);

/// Per-phase table: entries grouped by phase with design, duration,
/// hashes and headline counters.
[[nodiscard]] std::string format_ledger_table(const LoadedLedger& ledger);
/// Histogram summaries ("phase/design metric: n=.. p50=.. ..") for every
/// entry that carries histograms.
[[nodiscard]] std::string format_ledger_histograms(const LoadedLedger& ledger);
/// Human rendering of a diff (empty-string when fully identical
/// including timing).
[[nodiscard]] std::string format_diff(const LedgerDiff& diff);

/// True for metric names that denote wall-clock timing and are excluded
/// from diff gating: "duration_ns" and any name ending in "_ns".
[[nodiscard]] bool is_timing_metric(std::string_view name);

}  // namespace scflow::obs
