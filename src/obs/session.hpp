// An observability session: one Registry wired to one TraceWriter.  The
// flow drivers and benches take an optional Session* and, when given,
// record step timings (as trace slices), counters and gauges into it; the
// caller then dumps report.json / trace.json.  Stack-allocate and keep it
// alive for the run — the registry holds a pointer to the trace.
#pragma once

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace scflow::obs {

struct Session {
  Session() { registry.attach_trace(&trace); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Registry registry;
  TraceWriter trace;

  /// Convenience: writes both artifacts; empty paths are skipped.
  /// Returns false if any requested write failed.
  bool dump(const std::string& report_path, const std::string& trace_path) const {
    bool ok = true;
    if (!report_path.empty()) ok = registry.write_report(report_path) && ok;
    if (!trace_path.empty()) ok = trace.write_file(trace_path) && ok;
    return ok;
  }
};

}  // namespace scflow::obs
