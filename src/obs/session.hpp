// An observability session: one Registry wired to one TraceWriter, one
// SpanSet and one run Ledger.  The flow drivers and benches take an
// optional Session* and, when given, record step timings (as trace
// slices), counters, gauges, histograms, spans and ledger entries into
// it; the caller then dumps report.json / trace.json / ledger.jsonl.
// Stack-allocate and keep it alive for the run — the registry holds
// pointers to the trace and ledger.
#pragma once

#include "obs/ledger.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace scflow::obs {

struct Session {
  Session() {
    registry.attach_trace(&trace);
    registry.attach_ledger(&ledger);
  }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Registry registry;
  TraceWriter trace;
  SpanSet spans;
  Ledger ledger;

  /// Convenience: exports pending spans into the trace, then writes the
  /// requested artifacts; empty paths are skipped.  Returns false if any
  /// requested write failed.
  bool dump(const std::string& report_path, const std::string& trace_path,
            const std::string& ledger_path = {}) {
    if (!trace_path.empty()) spans.export_to(trace);
    bool ok = true;
    if (!report_path.empty()) ok = registry.write_report(report_path) && ok;
    if (!trace_path.empty()) ok = trace.write_file(trace_path) && ok;
    if (!ledger_path.empty()) ok = ledger.write(ledger_path) && ok;
    return ok;
  }
};

}  // namespace scflow::obs
