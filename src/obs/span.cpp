#include "obs/span.hpp"

#include <unordered_map>

#include "obs/trace.hpp"

namespace scflow::obs {

void SpanSet::add(Span s) {
  if (s.id == 0) s.id = reserve_id();
  spans_.push_back(std::move(s));
}

void SpanSet::export_to(TraceWriter& trace) {
  if (exported_ >= spans_.size()) return;
  // Index every span (not just new ones): a new child may link to a
  // parent exported in an earlier batch.
  std::unordered_map<std::uint64_t, const Span*> by_id;
  by_id.reserve(spans_.size());
  for (const Span& s : spans_) by_id.emplace(s.id, &s);
  for (std::size_t i = exported_; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    const std::uint64_t dur = s.end_ns > s.start_ns ? s.end_ns - s.start_ns : 0;
    trace.complete_event(s.name, s.category.empty() ? "span" : s.category, s.start_ns,
                         dur, s.tid);
    if (s.parent_id == 0) continue;
    const auto it = by_id.find(s.parent_id);
    if (it == by_id.end()) continue;
    const Span& p = *it->second;
    // Flow events bind to the slice enclosing (tid, ts): start inside the
    // parent slice (clamped to its extent), end at the child slice start.
    std::uint64_t from_ts = s.start_ns;
    if (from_ts < p.start_ns) from_ts = p.start_ns;
    if (from_ts > p.end_ns) from_ts = p.end_ns;
    trace.flow_start(s.name, "flow", from_ts, p.tid, s.id);
    trace.flow_end(s.name, "flow", s.start_ns, s.tid, s.id);
  }
  exported_ = spans_.size();
}

}  // namespace scflow::obs
