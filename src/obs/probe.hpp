// The near-zero-cost instrumentation switch.  Hot paths route every
// counter increment through a Probe owned by their engine; when
// instrumentation is enabled the hit() compiles to an unconditional
// `add 1`, when disabled to `add 0` — branchless either way, so the
// gate/kernel hot loops pay (at most) one fused add per counter and the
// off mode costs nothing measurable (see the EXPERIMENTS.md note).
#pragma once

#include <cstdint>

namespace scflow::obs {

class Probe {
 public:
  constexpr Probe() = default;
  explicit constexpr Probe(bool enabled) : enabled_(enabled ? 1 : 0) {}

  constexpr void set_enabled(bool on) { enabled_ = on ? 1 : 0; }
  [[nodiscard]] constexpr bool enabled() const { return enabled_ != 0; }

  /// Counter increment: c += 1 when enabled, c += 0 when not.
  constexpr void hit(std::uint64_t& c) const { c += enabled_; }
  /// Counter bulk add (gated; delta may be expensive to compute — callers
  /// should guard with enabled() in that case).
  constexpr void add(std::uint64_t& c, std::uint64_t delta) const {
    c += delta * enabled_;
  }

 private:
  std::uint64_t enabled_ = 1;
};

}  // namespace scflow::obs
