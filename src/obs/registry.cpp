#include "obs/registry.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace scflow::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void Registry::count(std::string_view name, std::uint64_t delta) {
  const auto it = counters_.find(name);
  if (it == counters_.end()) counters_.emplace(std::string(name), delta);
  else it->second += delta;
}

void Registry::set_counter(std::string_view name, std::uint64_t value) {
  counters_.insert_or_assign(std::string(name), value);
}

std::uint64_t Registry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

bool Registry::has_counter(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

void Registry::set_gauge(std::string_view name, double value) {
  gauges_.insert_or_assign(std::string(name), value);
}

double Registry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void Registry::record_value(std::string_view name, std::uint64_t value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(std::string(name), Histogram{}).first;
  it->second.record(value);
}

void Registry::merge_histogram(std::string_view name, const Histogram& h) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(std::string(name), Histogram{}).first;
  it->second.merge_from(h);
}

const Histogram* Registry::histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

Registry::ScopedTimer::~ScopedTimer() {
  if (reg_ != nullptr) reg_->close_scope(start_ns_);
}

Registry::ScopedTimer::ScopedTimer(ScopedTimer&& o) noexcept
    : reg_(o.reg_), start_ns_(o.start_ns_) {
  o.reg_ = nullptr;
}

Registry::ScopedTimer Registry::time_scope(std::string name) {
  scope_stack_.push_back(std::move(name));
  return ScopedTimer(*this, steady_ns());
}

void Registry::close_scope(std::uint64_t start_ns) {
  const std::uint64_t elapsed = steady_ns() - start_ns;
  std::string path;
  for (const std::string& s : scope_stack_) {
    if (!path.empty()) path += '/';
    path += s;
  }
  TimerStat& t = timers_[path];
  t.total_ns += elapsed;
  ++t.count;
  if (trace_ != nullptr && !scope_stack_.empty()) {
    // Slice timestamps live on the trace's own epoch.
    const std::uint64_t end = trace_->now_ns();
    const std::uint64_t dur = elapsed < end ? elapsed : end;
    trace_->complete_event(scope_stack_.back(), "timer", end - dur, dur);
  }
  if (!scope_stack_.empty()) scope_stack_.pop_back();
}

const Registry::TimerStat* Registry::timer(std::string_view path) const {
  const auto it = timers_.find(path);
  return it == timers_.end() ? nullptr : &it->second;
}

void Registry::merge_from(const Registry& other, std::string_view prefix) {
  const std::string pre = prefix.empty() ? std::string() : std::string(prefix) + ".";
  for (const auto& [k, v] : other.counters_) count(pre + k, v);
  for (const auto& [k, v] : other.gauges_) set_gauge(pre + k, v);
  for (const auto& [k, v] : other.histograms_) merge_histogram(pre + k, v);
  for (const auto& [k, v] : other.timers_) {
    TimerStat& t = timers_[pre + k];
    t.total_ns += v.total_ns;
    t.count += v.count;
  }
}

std::string Registry::report_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"scflow-obs-2\",\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : counters_) {
    os << (first ? "" : ",") << '"' << json_escape(k) << "\":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : gauges_) {
    // json_number so non-finite gauges degrade to null, not bare "inf".
    os << (first ? "" : ",") << '"' << json_escape(k) << "\":" << json_number(v);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [k, v] : histograms_) {
    os << (first ? "" : ",") << '"' << json_escape(k) << "\":" << v.to_json();
    first = false;
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [k, v] : timers_) {
    os << (first ? "" : ",") << '"' << json_escape(k) << "\":{\"ns\":" << v.total_ns
       << ",\"count\":" << v.count << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

bool Registry::write_report(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = report_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace scflow::obs
