// Minimal JSON utilities for the observability layer: string escaping for
// the emitters, a tiny syntax checker so tests can assert that every
// report.json / trace.json the flow writes is actually well-formed JSON
// (the structural half of "loads in Perfetto"), and a small DOM parser so
// the run-ledger tooling (obs::Ledger, tools/scflow_report) can load the
// artifacts it wrote.  No dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scflow::obs {

/// Escapes @p s for use inside a JSON string literal (quotes not added):
/// ", \, control characters as \uXXXX, common ones as \n \t \r \b \f.
/// Bytes >= 0x20 pass through, so UTF-8 payloads survive untouched.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Renders a double as a JSON number.  JSON has no inf/nan tokens, so
/// non-finite values render as "null" — every emitter (registry gauges,
/// trace counter tracks, ledger fields) must go through this instead of
/// operator<< or the artifact stops parsing.  Finite values round-trip
/// (max_digits10 precision).
[[nodiscard]] std::string json_number(double v);

/// Full-syntax JSON well-formedness check (RFC 8259 grammar: values,
/// objects, arrays, strings with escapes, numbers, literals; rejects
/// trailing garbage).  Returns true iff @p text is one valid JSON value;
/// on failure, *error (if given) describes the first problem and its
/// byte offset.
[[nodiscard]] bool json_validate(std::string_view text, std::string* error = nullptr);

/// Parsed JSON value (document order preserved for object members).
/// Integral numbers that fit keep an exact uint64 image next to the
/// double, so 64-bit counters survive a round-trip unrounded.
struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t uint_image = 0;  ///< exact value when is_uint
  bool is_uint = false;          ///< number was a non-negative integer <= 2^64-1
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject
  std::vector<JsonValue> items;                            ///< kArray

  /// First member with @p key, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t dflt = 0) const;
  [[nodiscard]] double as_double(double dflt = 0.0) const;
  [[nodiscard]] const std::string& as_string() const { return string; }
};

/// Parses one JSON document (same grammar as json_validate).  Returns
/// false on malformed input with *error describing the first problem.
[[nodiscard]] bool json_parse(std::string_view text, JsonValue* out,
                              std::string* error = nullptr);

}  // namespace scflow::obs
