// Minimal JSON utilities for the observability layer: string escaping for
// the emitters and a tiny syntax checker so tests can assert that every
// report.json / trace.json the flow writes is actually well-formed JSON
// (the structural half of "loads in Perfetto").  No DOM, no dependencies.
#pragma once

#include <string>
#include <string_view>

namespace scflow::obs {

/// Escapes @p s for use inside a JSON string literal (quotes not added):
/// ", \, control characters as \uXXXX, common ones as \n \t \r \b \f.
/// Bytes >= 0x20 pass through, so UTF-8 payloads survive untouched.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Full-syntax JSON well-formedness check (RFC 8259 grammar: values,
/// objects, arrays, strings with escapes, numbers, literals; rejects
/// trailing garbage).  Returns true iff @p text is one valid JSON value;
/// on failure, *error (if given) describes the first problem and its
/// byte offset.
[[nodiscard]] bool json_validate(std::string_view text, std::string* error = nullptr);

}  // namespace scflow::obs
