// Log2-bucketed histogram metric.  Values land in power-of-two buckets
// (bucket 0 holds value 0; bucket b holds [2^(b-1), 2^b)), which keeps
// the footprint fixed (65 counts) while covering the full uint64 range —
// per-job nanosecond latencies and per-SAT-call conflict counts both fit
// without configuration.  Count/sum/min/max are exact; quantiles are
// estimated by a bucket walk with linear interpolation inside the
// resolving bucket.  merge_from is a bucket-wise add, so merging is
// associative and commutative — shard-local histograms fold into a
// flow-wide one in any order with identical results.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace scflow::obs {

class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void record(std::uint64_t value);
  void merge_from(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t bucket(int i) const { return buckets_[static_cast<std::size_t>(i)]; }

  /// Estimated value at quantile @p q in [0,1]: walks buckets to the one
  /// containing the q-th sample and interpolates linearly across its
  /// [lo,hi) range, clamped to the observed min/max.  Exact for q=0/q=1.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  [[nodiscard]] std::uint64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p90() const { return quantile(0.90); }
  [[nodiscard]] std::uint64_t p99() const { return quantile(0.99); }

  [[nodiscard]] bool operator==(const Histogram& other) const = default;

  /// JSON object: {"count":..,"sum":..,"min":..,"max":..,"p50":..,
  /// "p90":..,"p99":..,"buckets":{"8":3,"16":12,...}} — buckets keyed by
  /// their exclusive upper bound, zero buckets omitted.  Stable across
  /// runs for identical data, so ledger diffs can compare it textually.
  [[nodiscard]] std::string to_json() const;

  /// Rebuilds a histogram from its to_json() image (count/sum/min/max +
  /// buckets).  Returns false if @p json is not a valid image.
  [[nodiscard]] static bool from_json(const std::string& json, Histogram* out);

  /// One-line human summary: "n=1234 p50=8.2us p90=... max=..." with the
  /// unit scaled when @p ns_values (values are nanoseconds).
  [[nodiscard]] std::string summary(bool ns_values) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace scflow::obs
