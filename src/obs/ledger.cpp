#include "obs/ledger.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <thread>

#include "obs/json.hpp"

namespace scflow::obs {

void Fnv1a::update_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= p[i];
    h_ *= 1099511628211ULL;
  }
}

void Fnv1a::update_u64(std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  update_bytes(bytes, sizeof bytes);
}

void Fnv1a::update_str(std::string_view s) {
  update_u64(s.size());
  update_bytes(s.data(), s.size());
}

RunMetadata collect_run_metadata(std::string tool) {
  RunMetadata meta;
  meta.tool = std::move(tool);
  if (const char* rev = std::getenv("SCFLOW_GIT_REV"); rev != nullptr && *rev != '\0')
    meta.rev = rev;
  char host[256] = {};
  if (gethostname(host, sizeof host - 1) == 0 && host[0] != '\0') meta.host = host;
  meta.hw_threads = std::thread::hardware_concurrency();
  return meta;
}

namespace {

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex64(const JsonValue& v, std::uint64_t* out) {
  if (v.kind == JsonValue::Kind::kNumber) {
    *out = v.as_u64();
    return true;
  }
  if (v.kind != JsonValue::Kind::kString) return false;
  *out = std::strtoull(v.string.c_str(), nullptr, 16);
  return true;
}

}  // namespace

bool is_timing_metric(std::string_view name) {
  return name.size() >= 3 && name.substr(name.size() - 3) == "_ns";
}

std::uint64_t LedgerEntry::counter(std::string_view name) const {
  for (const auto& [k, v] : counters)
    if (k == name) return v;
  return 0;
}

std::string LedgerEntry::to_json(bool strip_timing) const {
  // Serialize metrics sorted by name so recording order never shows.
  std::map<std::string_view, std::uint64_t> cs;
  for (const auto& [k, v] : counters)
    if (!strip_timing || !is_timing_metric(k)) cs.emplace(k, v);
  std::map<std::string_view, double> gs;
  for (const auto& [k, v] : gauges)
    if (!strip_timing || !is_timing_metric(k)) gs.emplace(k, v);
  std::map<std::string_view, const Histogram*> hs;
  for (const auto& [k, v] : histograms) hs.emplace(k, &v);

  std::ostringstream os;
  os << "{\"phase\":\"" << json_escape(phase) << "\",\"design\":\"" << json_escape(design)
     << "\",\"input_hash\":\"" << hex64(input_hash) << "\",\"options_fingerprint\":\""
     << hex64(options_fingerprint) << '"';
  if (!strip_timing) os << ",\"duration_ns\":" << duration_ns;
  os << ",\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : cs) {
    os << (first ? "" : ",") << '"' << json_escape(k) << "\":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : gs) {
    os << (first ? "" : ",") << '"' << json_escape(k) << "\":" << json_number(v);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : hs) {
    os << (first ? "" : ",") << '"' << json_escape(k) << "\":";
    // Timing histograms carry wall-clock values; their deterministic
    // projection is the sample count alone.
    if (strip_timing && is_timing_metric(k)) os << "{\"count\":" << h->count() << '}';
    else os << h->to_json();
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string Ledger::to_jsonl(bool strip_timing) const {
  std::ostringstream os;
  os << "{\"schema\":\"" << kLedgerSchema << "\",\"rev\":\"" << json_escape(meta.rev)
     << "\",\"host\":\"" << json_escape(meta.host) << "\",\"hw_threads\":" << meta.hw_threads
     << ",\"tool\":\"" << json_escape(meta.tool) << "\"}\n";
  for (const LedgerEntry& e : entries_) os << e.to_json(strip_timing) << '\n';
  return os.str();
}

bool Ledger::write(const std::string& path, bool append) const {
  bool skip_header = false;
  if (append) {
    if (std::FILE* f = std::fopen(path.c_str(), "r"); f != nullptr) {
      skip_header = std::fgetc(f) != EOF;
      std::fclose(f);
    }
  }
  std::FILE* f = std::fopen(path.c_str(), append ? "a" : "w");
  if (f == nullptr) return false;
  const std::string all = to_jsonl();
  std::string_view body = all;
  if (skip_header) body.remove_prefix(all.find('\n') + 1);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

namespace {

bool parse_entry(const JsonValue& v, LedgerEntry* e, std::string* error) {
  const JsonValue* phase = v.find("phase");
  const JsonValue* design = v.find("design");
  if (phase == nullptr || design == nullptr) {
    if (error != nullptr) *error = "entry missing phase/design";
    return false;
  }
  e->phase = phase->as_string();
  e->design = design->as_string();
  if (const JsonValue* h = v.find("input_hash"); h != nullptr)
    if (!parse_hex64(*h, &e->input_hash)) return false;
  if (const JsonValue* h = v.find("options_fingerprint"); h != nullptr)
    if (!parse_hex64(*h, &e->options_fingerprint)) return false;
  if (const JsonValue* d = v.find("duration_ns"); d != nullptr) e->duration_ns = d->as_u64();
  if (const JsonValue* cs = v.find("counters");
      cs != nullptr && cs->kind == JsonValue::Kind::kObject) {
    for (const auto& [k, c] : cs->members) e->add_counter(k, c.as_u64());
  }
  if (const JsonValue* gs = v.find("gauges");
      gs != nullptr && gs->kind == JsonValue::Kind::kObject) {
    for (const auto& [k, g] : gs->members) e->add_gauge(k, g.as_double());
  }
  // Histograms are parsed by the caller, which still holds the DOM.
  return true;
}

}  // namespace

bool parse_ledger(std::string_view jsonl, LoadedLedger* out, std::string* error,
                  bool skip_malformed) {
  *out = LoadedLedger{};
  std::size_t line_no = 0;
  std::size_t pos = 0;
  bool saw_header = false;
  // In lenient mode a damaged line is recorded and skipped; in strict
  // mode it fails the whole parse with the same message.
  const auto reject = [&](std::size_t ln, std::string msg) {
    if (skip_malformed) {
      out->malformed.push_back({ln, std::move(msg)});
      return true;  // keep going
    }
    if (error != nullptr) *error = "line " + std::to_string(ln) + ": " + msg;
    return false;
  };
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string_view::npos) nl = jsonl.size();
    const std::string_view line = jsonl.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue v;
    std::string perr;
    if (!json_parse(line, &v, &perr) || v.kind != JsonValue::Kind::kObject) {
      if (!reject(line_no, perr.empty() ? "not an object" : perr)) return false;
      continue;
    }
    if (const JsonValue* schema = v.find("schema"); schema != nullptr) {
      if (schema->as_string() != kLedgerSchema) {
        if (!reject(line_no, "unknown schema '" + schema->as_string() + "'")) {
          return false;
        }
        continue;
      }
      if (!saw_header) {
        saw_header = true;
        if (const JsonValue* r = v.find("rev"); r != nullptr) out->meta.rev = r->as_string();
        if (const JsonValue* h = v.find("host"); h != nullptr) out->meta.host = h->as_string();
        if (const JsonValue* t = v.find("hw_threads"); t != nullptr)
          out->meta.hw_threads = static_cast<unsigned>(t->as_u64());
        if (const JsonValue* t = v.find("tool"); t != nullptr) out->meta.tool = t->as_string();
      }
      continue;  // later headers (appended runs) keep the first stamp
    }
    LedgerEntry e;
    std::string eerr;
    if (!parse_entry(v, &e, &eerr)) {
      if (!reject(line_no, eerr.empty() ? "malformed entry" : eerr)) return false;
      continue;
    }
    bool entry_ok = true;
    if (const JsonValue* hs = v.find("histograms");
        hs != nullptr && hs->kind == JsonValue::Kind::kObject) {
      for (const auto& [k, hv] : hs->members) {
        Histogram h;
        if (const JsonValue* buckets = hv.find("buckets"); buckets != nullptr) {
          // Full image: rebuild via the textual round-trip.
          std::ostringstream img;
          img << "{\"count\":" << (hv.find("count") != nullptr ? hv.find("count")->as_u64() : 0)
              << ",\"sum\":" << (hv.find("sum") != nullptr ? hv.find("sum")->as_u64() : 0)
              << ",\"min\":" << (hv.find("min") != nullptr ? hv.find("min")->as_u64() : 0)
              << ",\"max\":" << (hv.find("max") != nullptr ? hv.find("max")->as_u64() : 0)
              << ",\"buckets\":{";
          bool first = true;
          for (const auto& [bk, bv] : buckets->members) {
            img << (first ? "" : ",") << '"' << bk << "\":" << bv.as_u64();
            first = false;
          }
          img << "}}";
          if (!Histogram::from_json(img.str(), &h)) {
            if (!reject(line_no, "bad histogram '" + k + "'")) return false;
            entry_ok = false;
            break;
          }
        } else if (const JsonValue* c = hv.find("count"); c != nullptr) {
          // Stripped-timing projection: count only.
          for (std::uint64_t i = 0; i < c->as_u64(); ++i) h.record(0);
        }
        e.add_histogram(k, std::move(h));
      }
    }
    if (entry_ok) out->entries.push_back(std::move(e));
  }
  if (!saw_header && !(out->entries.empty() && out->malformed.empty())) {
    if (skip_malformed) {
      out->malformed.push_back({0, "missing ledger header line"});
    } else {
      if (error != nullptr) *error = "missing ledger header line";
      return false;
    }
  }
  return true;
}

bool load_ledger(const std::string& path, LoadedLedger* out, std::string* error,
                 bool skip_malformed) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_ledger(text, out, error, skip_malformed);
}

namespace {

/// "phase/design" with "#k" appended for repeated invocations of the
/// same (phase, design) pair.
std::vector<std::string> entry_keys(const std::vector<LedgerEntry>& entries) {
  std::map<std::string, int> seen;
  std::vector<std::string> keys;
  keys.reserve(entries.size());
  for (const LedgerEntry& e : entries) {
    std::string key = e.phase + "/" + e.design;
    const int k = seen[key]++;
    if (k > 0) key += "#" + std::to_string(k);
    keys.push_back(std::move(key));
  }
  return keys;
}

void diff_entry(const std::string& key, const LedgerEntry& a, const LedgerEntry& b,
                LedgerDiff* out) {
  auto delta = [&](std::vector<MetricDelta>* dst, std::string metric, double va, double vb) {
    dst->push_back({key, std::move(metric), va, vb});
  };
  if (a.input_hash != b.input_hash)
    delta(&out->deltas, "input_hash", static_cast<double>(a.input_hash),
          static_cast<double>(b.input_hash));
  if (a.options_fingerprint != b.options_fingerprint)
    delta(&out->deltas, "options_fingerprint", static_cast<double>(a.options_fingerprint),
          static_cast<double>(b.options_fingerprint));
  if (a.duration_ns != b.duration_ns)
    delta(&out->timing_only, "duration_ns", static_cast<double>(a.duration_ns),
          static_cast<double>(b.duration_ns));

  auto diff_map = [&](auto getter, const char* kind) {
    std::map<std::string, double> ma;
    std::map<std::string, double> mb;
    for (const auto& [k, v] : getter(a)) ma[k] = static_cast<double>(v);
    for (const auto& [k, v] : getter(b)) mb[k] = static_cast<double>(v);
    (void)kind;
    for (const auto& [k, va] : ma) {
      const auto it = mb.find(k);
      const double vb = it == mb.end() ? 0.0 : it->second;
      if (va != vb)
        delta(is_timing_metric(k) ? &out->timing_only : &out->deltas, k, va, vb);
      if (it != mb.end()) mb.erase(it);
    }
    for (const auto& [k, vb] : mb)
      if (vb != 0.0)
        delta(is_timing_metric(k) ? &out->timing_only : &out->deltas, k, 0.0, vb);
  };
  diff_map([](const LedgerEntry& e) -> const auto& { return e.counters; }, "counter");
  diff_map([](const LedgerEntry& e) -> const auto& { return e.gauges; }, "gauge");

  // Histograms: timing histograms gate on sample count only; value
  // histograms gate on the full image.
  std::map<std::string, const Histogram*> ha;
  std::map<std::string, const Histogram*> hb;
  for (const auto& [k, h] : a.histograms) ha[k] = &h;
  for (const auto& [k, h] : b.histograms) hb[k] = &h;
  for (const auto& [k, pa] : ha) {
    const auto it = hb.find(k);
    if (it == hb.end()) {
      delta(&out->deltas, k + ".count", static_cast<double>(pa->count()), 0.0);
      continue;
    }
    const Histogram* pb = it->second;
    if (pa->count() != pb->count())
      delta(&out->deltas, k + ".count", static_cast<double>(pa->count()),
            static_cast<double>(pb->count()));
    else if (!is_timing_metric(k) && !(*pa == *pb))
      delta(&out->deltas, k + ".sum", static_cast<double>(pa->sum()),
            static_cast<double>(pb->sum()));
    hb.erase(it);
  }
  for (const auto& [k, pb] : hb)
    delta(&out->deltas, k + ".count", 0.0, static_cast<double>(pb->count()));
}

}  // namespace

LedgerDiff diff_ledgers(const LoadedLedger& a, const LoadedLedger& b) {
  LedgerDiff out;
  const std::vector<std::string> ka = entry_keys(a.entries);
  const std::vector<std::string> kb = entry_keys(b.entries);
  std::map<std::string, std::size_t> ib;
  for (std::size_t i = 0; i < kb.size(); ++i) ib.emplace(kb[i], i);
  std::vector<bool> matched(kb.size(), false);
  for (std::size_t i = 0; i < ka.size(); ++i) {
    const auto it = ib.find(ka[i]);
    if (it == ib.end()) {
      out.only_a.push_back(ka[i]);
      continue;
    }
    matched[it->second] = true;
    diff_entry(ka[i], a.entries[i], b.entries[it->second], &out);
  }
  for (std::size_t i = 0; i < kb.size(); ++i)
    if (!matched[i]) out.only_b.push_back(kb[i]);
  return out;
}

namespace {

std::string fmt_ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string fmt_value(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e18 && v < 1e18) {
    return std::to_string(static_cast<long long>(v));
  }
  return json_number(v);
}

}  // namespace

std::string format_ledger_table(const LoadedLedger& ledger) {
  std::ostringstream os;
  os << "ledger: tool=" << ledger.meta.tool << " rev=" << ledger.meta.rev
     << " host=" << ledger.meta.host << " hw_threads=" << ledger.meta.hw_threads << "\n";
  // Group by phase, preserving first-appearance order.
  std::vector<std::string> phases;
  for (const LedgerEntry& e : ledger.entries)
    if (std::find(phases.begin(), phases.end(), e.phase) == phases.end())
      phases.push_back(e.phase);
  for (const std::string& phase : phases) {
    os << "\n[" << phase << "]\n";
    os << "  " << std::left;
    char head[128];
    std::snprintf(head, sizeof head, "%-28s %10s  %-18s %-18s %s", "design", "ms",
                  "input_hash", "opts_fp", "counters");
    os << head << "\n";
    for (const LedgerEntry& e : ledger.entries) {
      if (e.phase != phase) continue;
      char row[160];
      std::snprintf(row, sizeof row, "%-28s %10s  0x%016llx 0x%016llx", e.design.c_str(),
                    fmt_ms(e.duration_ns).c_str(),
                    static_cast<unsigned long long>(e.input_hash),
                    static_cast<unsigned long long>(e.options_fingerprint));
      os << "  " << row << " ";
      // Up to four headline (non-timing) counters keep rows readable.
      int shown = 0;
      for (const auto& [k, v] : e.counters) {
        if (is_timing_metric(k)) continue;
        if (shown++ == 4) {
          os << "…";
          break;
        }
        os << (shown > 1 ? " " : "") << k << "=" << v;
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string format_ledger_histograms(const LoadedLedger& ledger) {
  std::ostringstream os;
  for (const LedgerEntry& e : ledger.entries) {
    for (const auto& [k, h] : e.histograms) {
      os << e.phase << "/" << e.design << " " << k << ": "
         << h.summary(is_timing_metric(k)) << "\n";
    }
  }
  return os.str();
}

std::string format_diff(const LedgerDiff& diff) {
  std::ostringstream os;
  for (const std::string& k : diff.only_a) os << "only in A: " << k << "\n";
  for (const std::string& k : diff.only_b) os << "only in B: " << k << "\n";
  for (const MetricDelta& d : diff.deltas) {
    os << "DELTA " << d.entry << " " << d.metric << ": " << fmt_value(d.a) << " -> "
       << fmt_value(d.b) << "\n";
  }
  for (const MetricDelta& d : diff.timing_only) {
    os << "timing " << d.entry << " " << d.metric << ": " << fmt_value(d.a) << " -> "
       << fmt_value(d.b) << "\n";
  }
  return os.str();
}

}  // namespace scflow::obs
