// Word-level to gate-level lowering: ripple-carry adders, array
// multipliers with sign correction, mux trees, comparators — the
// structural part of the "Design Compiler" substitute.
#pragma once

#include "netlist/netlist.hpp"
#include "rtl/ir.hpp"

namespace scflow::nl {

struct LowerOptions {
  /// Replace flops by scan flops and stitch a scan chain immediately.
  /// The synthesis flow normally lowers, optimises, *then* inserts scan
  /// (insert_scan_chain), so this stays off by default.
  bool insert_scan = false;
};

/// Bit-blasts @p design into a gate netlist.  RAM/ROM macros become port
/// groups described by Netlist::macros.
Netlist lower_to_gates(const rtl::Design& design, const LowerOptions& options = {});

/// Converts every DFF into an SDFF and threads scan_in -> ... -> scan_out
/// with a scan_enable input (idempotent on netlists without plain DFFs).
/// Returns the number of flops converted to scan flops.
std::size_t insert_scan_chain(Netlist& n);

}  // namespace scflow::nl
