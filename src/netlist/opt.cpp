#include "netlist/opt.hpp"

#include <map>
#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace scflow::nl {

void GateOptStats::record_into(scflow::obs::Registry& reg, std::string_view prefix) const {
  const std::string p = std::string(prefix) + ".";
  reg.set_counter(p + "cells_before", cells_before);
  reg.set_counter(p + "cells_after", cells_after);
  reg.set_counter(p + "rewrites", rewrites);
  reg.set_counter(p + "iterations", static_cast<std::uint64_t>(iterations));
}

namespace {

struct Optimizer {
  const Netlist& in;
  std::vector<Cell> cells;
  std::vector<NetId> repl;        // union-find-ish alias map
  std::vector<int> constv;        // -1 unknown, 0/1 constant
  std::vector<NetId> inv_of;      // known inverter outputs per net
  std::vector<bool> dead;
  NetId tie0 = kNoNet, tie1 = kNoNet;
  std::size_t rewrites = 0;

  explicit Optimizer(const Netlist& n)
      : in(n),
        cells(n.cells()),
        repl(static_cast<std::size_t>(n.net_count()), kNoNet),
        constv(static_cast<std::size_t>(n.net_count()), -1),
        inv_of(static_cast<std::size_t>(n.net_count()), kNoNet),
        dead(n.cells().size(), false) {
    for (std::size_t i = 0; i < repl.size(); ++i) repl[i] = static_cast<NetId>(i);
    // Pre-create the tie cells: const_net() must never reallocate `cells`
    // while simplify_pass holds references into it.
    (void)const_net(0);
    (void)const_net(1);
  }

  NetId find(NetId n) {
    while (repl[static_cast<std::size_t>(n)] != n) {
      repl[static_cast<std::size_t>(n)] =
          repl[static_cast<std::size_t>(repl[static_cast<std::size_t>(n)])];
      n = repl[static_cast<std::size_t>(n)];
    }
    return n;
  }

  void alias(NetId from, NetId to) {
    repl[static_cast<std::size_t>(find(from))] = find(to);
    ++rewrites;
  }

  NetId const_net(int v) {
    NetId& cache = v ? tie1 : tie0;
    if (cache == kNoNet) {
      Cell c;
      c.type = v ? CellType::kTie1 : CellType::kTie0;
      c.output = static_cast<NetId>(repl.size());
      repl.push_back(c.output);
      constv.push_back(v);
      inv_of.push_back(kNoNet);
      cells.push_back(c);
      dead.push_back(false);
      cache = c.output;
    }
    return cache;
  }

  bool simplify_pass() {
    bool changed = false;
    std::map<std::tuple<int, std::vector<NetId>>, NetId> hash;
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
      if (dead[ci]) continue;
      Cell& c = cells[ci];
      if (c.type == CellType::kTie0) { constv[static_cast<std::size_t>(find(c.output))] = 0; continue; }
      if (c.type == CellType::kTie1) { constv[static_cast<std::size_t>(find(c.output))] = 1; continue; }
      for (NetId& n : c.inputs) n = find(n);
      auto cv = [this](NetId n) { return constv[static_cast<std::size_t>(n)]; };
      auto kill_with_alias = [&](NetId target) {
        // A stale cache entry can point back at this very cell's output;
        // aliasing a net to itself would orphan it, so keep the cell.
        if (find(target) == find(c.output)) return;
        alias(c.output, target);
        dead[ci] = true;
        changed = true;
      };
      auto kill_with_const = [&](int v) { kill_with_alias(const_net(v)); };
      auto become_inv = [&](NetId a) {
        const NetId cached = inv_of[static_cast<std::size_t>(a)];
        if (cached != kNoNet && find(cached) != find(c.output)) {
          kill_with_alias(find(cached));
          return;
        }
        c.type = CellType::kInv;
        c.inputs = {a};
        changed = true;
        ++rewrites;
      };

      switch (c.type) {
        case CellType::kBuf:
          kill_with_alias(c.inputs[0]);
          break;
        case CellType::kInv: {
          const NetId a = c.inputs[0];
          if (cv(a) >= 0) { kill_with_const(1 - cv(a)); break; }
          // INV(INV(x)) = x.
          const NetId cached = inv_of[static_cast<std::size_t>(a)];
          if (cached != kNoNet && find(cached) != find(c.output)) {
            kill_with_alias(find(cached));
            break;
          }
          inv_of[static_cast<std::size_t>(a)] = find(c.output);
          // Record the reverse direction too: x is the inversion of out.
          inv_of[static_cast<std::size_t>(find(c.output))] = a;
          break;
        }
        case CellType::kAnd2: case CellType::kNand2: {
          const bool nand = c.type == CellType::kNand2;
          const NetId a = c.inputs[0], b = c.inputs[1];
          if (cv(a) == 0 || cv(b) == 0) { kill_with_const(nand ? 1 : 0); break; }
          if (cv(a) == 1 && cv(b) == 1) { kill_with_const(nand ? 0 : 1); break; }
          if (cv(a) == 1) { if (nand) become_inv(b); else kill_with_alias(b); break; }
          if (cv(b) == 1) { if (nand) become_inv(a); else kill_with_alias(a); break; }
          if (a == b) { if (nand) become_inv(a); else kill_with_alias(a); }
          break;
        }
        case CellType::kOr2: case CellType::kNor2: {
          const bool nor = c.type == CellType::kNor2;
          const NetId a = c.inputs[0], b = c.inputs[1];
          if (cv(a) == 1 || cv(b) == 1) { kill_with_const(nor ? 0 : 1); break; }
          if (cv(a) == 0 && cv(b) == 0) { kill_with_const(nor ? 1 : 0); break; }
          if (cv(a) == 0) { if (nor) become_inv(b); else kill_with_alias(b); break; }
          if (cv(b) == 0) { if (nor) become_inv(a); else kill_with_alias(a); break; }
          if (a == b) { if (nor) become_inv(a); else kill_with_alias(a); }
          break;
        }
        case CellType::kXor2: case CellType::kXnor2: {
          const bool xnor = c.type == CellType::kXnor2;
          const NetId a = c.inputs[0], b = c.inputs[1];
          if (cv(a) >= 0 && cv(b) >= 0) { kill_with_const((cv(a) ^ cv(b)) ^ (xnor ? 1 : 0)); break; }
          if (a == b) { kill_with_const(xnor ? 1 : 0); break; }
          if (cv(a) == 0) { if (xnor) become_inv(b); else kill_with_alias(b); break; }
          if (cv(b) == 0) { if (xnor) become_inv(a); else kill_with_alias(a); break; }
          if (cv(a) == 1) { if (xnor) kill_with_alias(b); else become_inv(b); break; }
          if (cv(b) == 1) { if (xnor) kill_with_alias(a); else become_inv(a); break; }
          break;
        }
        case CellType::kMux2: {
          const NetId s = c.inputs[0], a0 = c.inputs[1], a1 = c.inputs[2];
          if (cv(s) == 0) { kill_with_alias(a0); break; }
          if (cv(s) == 1) { kill_with_alias(a1); break; }
          if (a0 == a1) { kill_with_alias(a0); break; }
          if (cv(a0) == 0 && cv(a1) == 1) { kill_with_alias(s); break; }
          if (cv(a0) == 1 && cv(a1) == 0) { become_inv(s); break; }
          break;
        }
        default:
          break;  // flops and ties handled elsewhere
      }
      if (dead[ci]) continue;
      // Structural hashing (combinational cells only).
      if (!cell_is_sequential(c.type) && c.type != CellType::kTie0 &&
          c.type != CellType::kTie1) {
        std::vector<NetId> key_inputs = c.inputs;
        // Commutative gates: canonical input order.
        if (c.type != CellType::kMux2 && key_inputs.size() == 2 &&
            key_inputs[0] > key_inputs[1])
          std::swap(key_inputs[0], key_inputs[1]);
        auto key = std::make_tuple(static_cast<int>(c.type), key_inputs);
        const auto [it, inserted] = hash.emplace(key, find(c.output));
        if (!inserted && it->second != find(c.output)) {
          kill_with_alias(it->second);
        }
      }
    }
    return changed;
  }

  Netlist rebuild() {
    // Resolve aliases in flop inputs too, then keep cells reachable from
    // primary outputs (flop D-cones pulled transitively).
    for (Cell& c : cells)
      for (NetId& n : c.inputs) n = find(n);

    std::vector<NetId> driver(repl.size(), kNoNet);  // net -> cell index
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
      if (dead[ci]) continue;
      driver[static_cast<std::size_t>(find(cells[ci].output))] = static_cast<NetId>(ci);
    }
    std::vector<bool> keep(cells.size(), false);
    std::vector<NetId> work;
    auto mark_net = [&](NetId n) {
      const NetId ci = driver[static_cast<std::size_t>(find(n))];
      if (ci != kNoNet && !keep[static_cast<std::size_t>(ci)]) {
        keep[static_cast<std::size_t>(ci)] = true;
        work.push_back(ci);
      }
    };
    for (const auto& p : in.outputs())
      for (NetId n : p.nets) mark_net(n);
    while (!work.empty()) {
      const NetId ci = work.back();
      work.pop_back();
      for (NetId n : cells[static_cast<std::size_t>(ci)].inputs) mark_net(n);
    }

    Netlist out(in.name());
    out.macros = in.macros;
    // Net renumbering on demand.
    std::vector<NetId> new_net(repl.size(), kNoNet);
    auto map_net = [&out, &new_net, this](NetId n) {
      n = find(n);
      if (new_net[static_cast<std::size_t>(n)] == kNoNet)
        new_net[static_cast<std::size_t>(n)] = out.new_net();
      return new_net[static_cast<std::size_t>(n)];
    };
    for (const auto& p : in.inputs()) {
      std::vector<NetId> nets;
      nets.reserve(p.nets.size());
      for (NetId n : p.nets) nets.push_back(map_net(n));
      out.add_input(p.name, std::move(nets));
    }
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
      if (!keep[ci]) continue;
      Cell c = cells[ci];
      for (NetId& n : c.inputs) n = map_net(n);
      c.output = map_net(c.output);
      out.cells_mut().push_back(std::move(c));
    }
    for (const auto& p : in.outputs()) {
      std::vector<NetId> nets;
      nets.reserve(p.nets.size());
      for (NetId n : p.nets) nets.push_back(map_net(n));
      out.add_output(p.name, std::move(nets));
    }
    out.validate();
    return out;
  }
};

}  // namespace

Netlist optimize_gates(const Netlist& input, GateOptStats* stats) {
  Optimizer opt(input);
  GateOptStats local;
  local.cells_before = input.cells().size();
  for (int it = 0; it < 16; ++it) {
    ++local.iterations;
    if (!opt.simplify_pass()) break;
  }
  Netlist out = opt.rebuild();
  local.rewrites = opt.rewrites;
  local.cells_after = out.cells().size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace scflow::nl
