#include "netlist/netlist.hpp"

#include <stdexcept>

#include "obs/ledger.hpp"

namespace scflow::nl {

const char* cell_name(CellType t) {
  switch (t) {
    case CellType::kTie0: return "TIE0";
    case CellType::kTie1: return "TIE1";
    case CellType::kBuf: return "BUF";
    case CellType::kInv: return "INV";
    case CellType::kAnd2: return "AND2";
    case CellType::kOr2: return "OR2";
    case CellType::kNand2: return "NAND2";
    case CellType::kNor2: return "NOR2";
    case CellType::kXor2: return "XOR2";
    case CellType::kXnor2: return "XNOR2";
    case CellType::kMux2: return "MUX2";
    case CellType::kDff: return "DFF";
    case CellType::kSdff: return "SDFF";
  }
  return "?";
}

int cell_input_count(CellType t) {
  switch (t) {
    case CellType::kTie0:
    case CellType::kTie1: return 0;
    case CellType::kBuf:
    case CellType::kInv:
    case CellType::kDff: return 1;
    case CellType::kMux2:
    case CellType::kSdff: return 3;
    default: return 2;
  }
}

bool cell_is_sequential(CellType t) {
  return t == CellType::kDff || t == CellType::kSdff;
}

double CellLibrary::area(CellType t) {
  // Representative 0.25 µ standard-cell areas in µm².
  switch (t) {
    case CellType::kTie0:
    case CellType::kTie1: return 5.5;
    case CellType::kBuf: return 11.1;
    case CellType::kInv: return 8.3;
    case CellType::kAnd2:
    case CellType::kOr2: return 13.9;
    case CellType::kNand2:
    case CellType::kNor2: return 11.1;
    case CellType::kXor2:
    case CellType::kXnor2: return 22.2;
    case CellType::kMux2: return 25.0;
    case CellType::kDff: return 61.1;
    case CellType::kSdff: return 72.2;
  }
  return 0.0;
}

NetId Netlist::add_cell(CellType type, std::vector<NetId> inputs, int init) {
  if (static_cast<int>(inputs.size()) != cell_input_count(type))
    throw std::invalid_argument(std::string("wrong input count for ") + cell_name(type));
  Cell c;
  c.type = type;
  c.inputs = std::move(inputs);
  c.output = new_net();
  c.init = init;
  cells_.push_back(std::move(c));
  return cells_.back().output;
}

NetId Netlist::const_net(bool value) {
  NetId& cache = value ? tie1_ : tie0_;
  if (cache == kNoNet)
    cache = add_cell(value ? CellType::kTie1 : CellType::kTie0, {});
  return cache;
}

void Netlist::add_input(const std::string& name, std::vector<NetId> nets) {
  inputs_.push_back({name, std::move(nets)});
}

void Netlist::add_output(const std::string& name, std::vector<NetId> nets) {
  outputs_.push_back({name, std::move(nets)});
}

const PortBits* Netlist::find_input(const std::string& name) const {
  for (const auto& p : inputs_)
    if (p.name == name) return &p;
  return nullptr;
}

const PortBits* Netlist::find_output(const std::string& name) const {
  for (const auto& p : outputs_)
    if (p.name == name) return &p;
  return nullptr;
}

void Netlist::validate() const {
  std::vector<bool> driven(static_cast<std::size_t>(net_count_), false);
  for (const auto& p : inputs_)
    for (NetId n : p.nets) driven[static_cast<std::size_t>(n)] = true;
  for (const Cell& c : cells_) driven[static_cast<std::size_t>(c.output)] = true;
  for (const Cell& c : cells_)
    for (NetId n : c.inputs)
      if (n == kNoNet || !driven[static_cast<std::size_t>(n)])
        throw std::logic_error(name_ + ": undriven cell input net");
  for (const auto& p : outputs_)
    for (NetId n : p.nets)
      if (n == kNoNet || !driven[static_cast<std::size_t>(n)])
        throw std::logic_error(name_ + ": undriven output net " + p.name);
}

std::string describe_cell(const Netlist& n, std::size_t cell_index) {
  const Cell& c = n.cells()[cell_index];
  std::string s = std::string(cell_name(c.type)) + " #" + std::to_string(cell_index) +
                  " -> net " + std::to_string(c.output);
  for (const auto& p : n.outputs())
    for (std::size_t i = 0; i < p.nets.size(); ++i)
      if (p.nets[i] == c.output)
        return s + " (feeds output '" + p.name + "[" + std::to_string(i) + "]')";
  return s;
}

std::vector<std::size_t> combinational_topo_order(const Netlist& n) {
  const auto& cells = n.cells();
  // Net -> combinational driver cell (sequential outputs, primary inputs
  // and macro data ports count as sources and contribute no edge).
  std::vector<std::int32_t> driver(static_cast<std::size_t>(n.net_count()), -1);
  std::vector<std::size_t> comb;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    if (cell_is_sequential(cells[ci].type)) continue;
    driver[static_cast<std::size_t>(cells[ci].output)] = static_cast<std::int32_t>(ci);
    comb.push_back(ci);
  }
  std::vector<std::size_t> indeg(cells.size(), 0);
  for (std::size_t ci : comb)
    for (NetId in : cells[ci].inputs)
      if (driver[static_cast<std::size_t>(in)] >= 0) ++indeg[ci];
  std::vector<std::size_t> order;
  order.reserve(comb.size());
  // FIFO seeded in creation order keeps the result deterministic.
  std::vector<std::size_t> ready;
  for (std::size_t ci : comb)
    if (indeg[ci] == 0) ready.push_back(ci);
  // Per-net fanout among combinational cells, CSR-style.
  std::vector<std::size_t> fan_off(static_cast<std::size_t>(n.net_count()) + 1, 0);
  for (std::size_t ci : comb)
    for (NetId in : cells[ci].inputs)
      if (driver[static_cast<std::size_t>(in)] >= 0) ++fan_off[static_cast<std::size_t>(in) + 1];
  for (std::size_t i = 1; i < fan_off.size(); ++i) fan_off[i] += fan_off[i - 1];
  std::vector<std::size_t> fan(fan_off.back());
  {
    std::vector<std::size_t> cur(fan_off.begin(), fan_off.end() - 1);
    for (std::size_t ci : comb)
      for (NetId in : cells[ci].inputs)
        if (driver[static_cast<std::size_t>(in)] >= 0) fan[cur[static_cast<std::size_t>(in)]++] = ci;
  }
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const std::size_t ci = ready[head];
    order.push_back(ci);
    const auto out = static_cast<std::size_t>(cells[ci].output);
    for (std::size_t k = fan_off[out]; k < fan_off[out + 1]; ++k)
      if (--indeg[fan[k]] == 0) ready.push_back(fan[k]);
  }
  if (order.size() != comb.size()) {
    for (std::size_t ci : comb)
      if (indeg[ci] != 0)
        throw std::logic_error(n.name() + ": combinational cycle through " +
                               describe_cell(n, ci));
  }
  return order;
}

std::uint64_t content_hash(const Netlist& n) {
  obs::Fnv1a h;
  h.update_str(n.name());
  h.update_u64(static_cast<std::uint64_t>(n.net_count()));
  h.update_u64(n.cells().size());
  for (const Cell& c : n.cells()) {
    h.update_u64(static_cast<std::uint64_t>(c.type));
    h.update_u64(c.inputs.size());
    for (const NetId in : c.inputs) h.update_u64(static_cast<std::uint64_t>(in));
    h.update_u64(static_cast<std::uint64_t>(c.output));
    h.update_u64(static_cast<std::uint64_t>(c.init));
    h.update_str(c.name);
  }
  const auto hash_ports = [&h](const std::vector<PortBits>& ports) {
    h.update_u64(ports.size());
    for (const PortBits& p : ports) {
      h.update_str(p.name);
      h.update_u64(p.nets.size());
      for (const NetId net : p.nets) h.update_u64(static_cast<std::uint64_t>(net));
    }
  };
  hash_ports(n.inputs());
  hash_ports(n.outputs());
  h.update_u64(n.macros.size());
  for (const MacroInfo& m : n.macros) {
    h.update_u64(static_cast<std::uint64_t>(m.kind));
    h.update_str(m.name);
    h.update_u64(static_cast<std::uint64_t>(m.addr_bits));
    h.update_u64(static_cast<std::uint64_t>(m.data_bits));
    for (const std::string& p : m.read_addr_ports) h.update_str(p);
    for (const std::string& p : m.read_data_ports) h.update_str(p);
    for (const std::string& p : m.read_enable_ports) h.update_str(p);
    h.update_str(m.write_addr_port);
    h.update_str(m.write_data_port);
    h.update_str(m.write_enable_port);
    h.update_u64(m.rom_contents.size());
    for (const std::int64_t v : m.rom_contents) h.update_u64(static_cast<std::uint64_t>(v));
  }
  return h.digest();
}

AreaReport report_area(const Netlist& n) {
  AreaReport r;
  for (const Cell& c : n.cells()) {
    ++r.cell_count;
    const double a = CellLibrary::area(c.type);
    if (cell_is_sequential(c.type)) {
      r.sequential += a;
      ++r.flop_count;
    } else {
      r.combinational += a;
    }
  }
  return r;
}

}  // namespace scflow::nl
