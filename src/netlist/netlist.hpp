// Gate-level netlist IR and the synthetic standard-cell library — the
// substrate's equivalent of the 0.25 µ CMOS library + Design Compiler
// output the paper synthesises into.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scflow::nl {

using NetId = std::int32_t;
constexpr NetId kNoNet = -1;

enum class CellType : std::uint8_t {
  kTie0, kTie1,
  kBuf, kInv,
  kAnd2, kOr2, kNand2, kNor2, kXor2, kXnor2,
  kMux2,   // inputs {sel, a0, a1}: sel ? a1 : a0
  kDff,    // inputs {d}; init value in Cell::init
  kSdff,   // scan flop: inputs {d, si, se}
};

[[nodiscard]] const char* cell_name(CellType t);
[[nodiscard]] int cell_input_count(CellType t);
[[nodiscard]] bool cell_is_sequential(CellType t);

/// Per-cell area in µm² of a representative 0.25 µ-class library.  Only
/// area *ratios* matter for the Fig. 10 reproduction.
struct CellLibrary {
  [[nodiscard]] static double area(CellType t);
};

struct Cell {
  CellType type = CellType::kBuf;
  std::vector<NetId> inputs;
  NetId output = kNoNet;
  int init = 0;  // flops: initial/reset value
  // Provenance label, e.g. "<register>_q<bit>" for flops; carried through
  // opt/scan passes so formal CEC can pair flop boundaries across netlists.
  std::string name;
};

struct PortBits {
  std::string name;
  std::vector<NetId> nets;  // LSB first
};

/// Black-box macro attachment metadata: the buffer RAM and coefficient ROM
/// stay macros (excluded from area, like the paper's memories); the
/// simulator binds behavioural models to these port groups.
struct MacroInfo {
  enum class Kind : std::uint8_t { kRam, kRom };
  Kind kind = Kind::kRam;
  std::string name;
  int addr_bits = 0;
  int data_bits = 0;
  // Netlist-side port names (inputs() for data-from-macro, outputs() for
  // address/data/enable-to-macro).
  std::vector<std::string> read_addr_ports;  // one per read port
  std::vector<std::string> read_data_ports;
  std::vector<std::string> read_enable_ports;  // RAM: live-access markers
  std::string write_addr_port;  // RAM only
  std::string write_data_port;
  std::string write_enable_port;
  std::vector<std::int64_t> rom_contents;  // ROM only
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  NetId new_net() { return net_count_++; }
  [[nodiscard]] std::int32_t net_count() const { return net_count_; }

  /// Adds a cell; returns its output net.
  NetId add_cell(CellType type, std::vector<NetId> inputs, int init = 0);
  NetId const_net(bool value);  // shared TIE cells

  void add_input(const std::string& name, std::vector<NetId> nets);
  void add_output(const std::string& name, std::vector<NetId> nets);

  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }
  [[nodiscard]] std::vector<Cell>& cells_mut() { return cells_; }
  [[nodiscard]] const std::vector<PortBits>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<PortBits>& outputs() const { return outputs_; }
  [[nodiscard]] const PortBits* find_input(const std::string& name) const;
  [[nodiscard]] const PortBits* find_output(const std::string& name) const;

  std::vector<MacroInfo> macros;

  /// Structural sanity: every cell input must be driven (by a cell output
  /// or a primary/macro input).  Throws on violation.
  void validate() const;

 private:
  std::string name_;
  std::int32_t net_count_ = 0;
  std::vector<Cell> cells_;
  std::vector<PortBits> inputs_;
  std::vector<PortBits> outputs_;
  NetId tie0_ = kNoNet;
  NetId tie1_ = kNoNet;
};

/// One-line human-readable cell description for diagnostics, e.g.
/// "AND2 #12 -> net 42 (feeds output 'out_left[3]')".
[[nodiscard]] std::string describe_cell(const Netlist& n, std::size_t cell_index);

/// Deterministic Kahn topological order over the combinational cells.
/// Sequential cell outputs, primary inputs and macro data ports are
/// sources.  Ready cells are released in creation order, so the result is
/// stable across runs for the same netlist.  Throws std::logic_error
/// naming an offending cell (via describe_cell) on a combinational cycle.
[[nodiscard]] std::vector<std::size_t> combinational_topo_order(const Netlist& n);

/// Area accounting in the style of Design Compiler's report_area: macros
/// (RAM/ROM) excluded, scan flops included.
struct AreaReport {
  double combinational = 0.0;
  double sequential = 0.0;
  std::size_t cell_count = 0;
  std::size_t flop_count = 0;
  [[nodiscard]] double total() const { return combinational + sequential; }
};

[[nodiscard]] AreaReport report_area(const Netlist& n);

/// Deterministic 64-bit content hash over the whole structure (name,
/// cells with types/nets/init/provenance labels, ports, macros) — the
/// ledger's input identity and the key a flow artifact cache can memoize
/// on.  Stable across runs and platforms; any structural edit changes it.
[[nodiscard]] std::uint64_t content_hash(const Netlist& n);

}  // namespace scflow::nl
