// Gate-level logic optimisation: constant propagation, algebraic gate
// rewrites, structural hashing (dedup) and dead-cell removal — run before
// scan insertion, like Design Compiler's compile step.
#pragma once

#include <cstddef>
#include <string_view>

#include "netlist/netlist.hpp"

namespace scflow::obs {
class Registry;
}

namespace scflow::nl {

struct GateOptStats {
  std::size_t cells_before = 0;
  std::size_t cells_after = 0;
  std::size_t rewrites = 0;
  int iterations = 0;

  /// Records the pass outcome into the unified metric registry as
  /// "<prefix>.cells_before", ".cells_after", ".rewrites", ".iterations".
  void record_into(scflow::obs::Registry& reg, std::string_view prefix) const;
};

[[nodiscard]] Netlist optimize_gates(const Netlist& input, GateOptStats* stats = nullptr);

}  // namespace scflow::nl
