#include "netlist/lower.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace scflow::nl {

namespace {

using rtl::NodeId;
using rtl::Op;
using BitVec = std::vector<NetId>;

struct Lowerer {
  const rtl::Design& d;
  Netlist out;
  std::vector<BitVec> bits;          // per rtl node
  std::vector<BitVec> flop_q;        // per register: flop output nets
  std::vector<int> ram_read_count;   // per memory
  std::vector<int> rom_read_count;   // per rom

  explicit Lowerer(const rtl::Design& design)
      : d(design), out(design.name()), bits(design.nodes().size()) {}

  NetId c0() { return out.const_net(false); }
  NetId c1() { return out.const_net(true); }

  // --- gate helpers ---
  NetId inv(NetId a) { return out.add_cell(CellType::kInv, {a}); }
  NetId and2(NetId a, NetId b) { return out.add_cell(CellType::kAnd2, {a, b}); }
  NetId or2(NetId a, NetId b) { return out.add_cell(CellType::kOr2, {a, b}); }
  NetId xor2(NetId a, NetId b) { return out.add_cell(CellType::kXor2, {a, b}); }
  NetId xnor2(NetId a, NetId b) { return out.add_cell(CellType::kXnor2, {a, b}); }
  NetId mux2(NetId sel, NetId a0, NetId a1) {
    return out.add_cell(CellType::kMux2, {sel, a0, a1});
  }

  /// Full adder; returns {sum, carry}.
  std::pair<NetId, NetId> full_adder(NetId a, NetId b, NetId c) {
    const NetId axb = xor2(a, b);
    const NetId sum = xor2(axb, c);
    const NetId carry = or2(and2(a, b), and2(c, axb));
    return {sum, carry};
  }

  /// Ripple-carry a + b + cin, truncated to a.size() bits.
  BitVec ripple_add(const BitVec& a, const BitVec& b, NetId cin, NetId* cout = nullptr) {
    BitVec sum(a.size());
    NetId carry = cin;
    for (std::size_t i = 0; i < a.size(); ++i) {
      auto [s, c] = full_adder(a[i], b[i], carry);
      sum[i] = s;
      carry = c;
    }
    if (cout != nullptr) *cout = carry;
    return sum;
  }

  BitVec invert(const BitVec& a) {
    BitVec r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) r[i] = inv(a[i]);
    return r;
  }

  BitVec ripple_sub(const BitVec& a, const BitVec& b, NetId* cout = nullptr) {
    return ripple_add(a, invert(b), c1(), cout);
  }

  NetId and_reduce(const BitVec& v) {
    NetId acc = v[0];
    for (std::size_t i = 1; i < v.size(); ++i) acc = and2(acc, v[i]);
    return acc;
  }

  BitVec widen(const BitVec& a, std::size_t w, bool sign) {
    BitVec r = a;
    const NetId fill = sign ? a.back() : c0();
    while (r.size() < w) r.push_back(fill);
    r.resize(w);
    return r;
  }

  /// Signed array multiplier: unsigned partial-product core of the natural
  /// operand widths plus two conditional sign-correction subtractions.
  BitVec multiply_signed(const BitVec& a, const BitVec& b, std::size_t out_w) {
    const std::size_t aw = a.size(), bw = b.size();
    const std::size_t pw = std::min(aw + bw, out_w + 0);
    // Unsigned core: accumulate masked shifted rows.
    BitVec acc(pw, c0());
    for (std::size_t i = 0; i < bw && i < pw; ++i) {
      BitVec row(pw, c0());
      for (std::size_t j = 0; j < aw && i + j < pw; ++j) row[i + j] = and2(a[j], b[i]);
      acc = ripple_add(acc, row, c0());
    }
    // Corrections: acc -= a_sign ? (b << aw) : 0;  acc -= b_sign ? (a << bw) : 0.
    auto correct = [this, pw](BitVec acc_in, const BitVec& v, std::size_t shift, NetId sgn) {
      BitVec masked(pw, c0());
      for (std::size_t j = 0; j < v.size() && shift + j < pw; ++j)
        masked[shift + j] = and2(v[j], sgn);
      return ripple_sub(acc_in, masked);
    };
    acc = correct(acc, b, aw, a.back());
    acc = correct(acc, a, bw, b.back());
    // Truncate/extend to the node width (product is sign-correct mod 2^pw).
    return widen(acc, out_w, true);
  }

  NetId less_unsigned(const BitVec& a, const BitVec& b) {
    NetId cout = kNoNet;
    (void)ripple_sub(a, b, &cout);
    return inv(cout);  // borrow <=> no carry out
  }

  BitVec lower_node(NodeId id) {
    const rtl::Node& n = d.node(id);
    const auto w = static_cast<std::size_t>(n.width);
    auto arg = [this, &n](int i) -> const BitVec& {
      return bits[static_cast<std::size_t>(n.args[static_cast<std::size_t>(i)])];
    };
    switch (n.op) {
      case Op::kConst: {
        BitVec r(w);
        for (std::size_t i = 0; i < w; ++i)
          r[i] = ((static_cast<std::uint64_t>(n.imm) >> i) & 1u) ? c1() : c0();
        return r;
      }
      case Op::kInput: {
        BitVec r(w);
        for (std::size_t i = 0; i < w; ++i) r[i] = out.new_net();
        out.add_input(n.name, r);
        return r;
      }
      case Op::kRegQ: return flop_q[static_cast<std::size_t>(n.imm)];
      case Op::kAdd: return ripple_add(arg(0), arg(1), c0());
      case Op::kAddC: return ripple_add(arg(0), arg(1), arg(2)[0]);
      case Op::kSub: return ripple_sub(arg(0), arg(1));
      case Op::kMul: return multiply_signed(arg(0), arg(1), w);
      case Op::kAnd: case Op::kOr: case Op::kXor: {
        BitVec r(w);
        for (std::size_t i = 0; i < w; ++i)
          r[i] = n.op == Op::kAnd ? and2(arg(0)[i], arg(1)[i])
               : n.op == Op::kOr ? or2(arg(0)[i], arg(1)[i])
                                 : xor2(arg(0)[i], arg(1)[i]);
        return r;
      }
      case Op::kNot: return invert(arg(0));
      case Op::kEq: case Op::kNe: {
        BitVec eqbits(arg(0).size());
        for (std::size_t i = 0; i < eqbits.size(); ++i)
          eqbits[i] = xnor2(arg(0)[i], arg(1)[i]);
        const NetId eq_all = and_reduce(eqbits);
        return {n.op == Op::kEq ? eq_all : inv(eq_all)};
      }
      case Op::kLtU: return {less_unsigned(arg(0), arg(1))};
      case Op::kLtS: {
        // Bias trick: flip both MSBs, compare unsigned.
        BitVec a = arg(0), b = arg(1);
        a.back() = inv(a.back());
        b.back() = inv(b.back());
        return {less_unsigned(a, b)};
      }
      case Op::kShl: {
        BitVec r(w, c0());
        for (std::size_t i = 0; i < w; ++i)
          if (i >= static_cast<std::size_t>(n.imm)) r[i] = arg(0)[i - n.imm];
        return r;
      }
      case Op::kShr: {
        BitVec r(w, c0());
        for (std::size_t i = 0; i + n.imm < w; ++i) r[i] = arg(0)[i + n.imm];
        return r;
      }
      case Op::kMux: {
        BitVec r(w);
        for (std::size_t i = 0; i < w; ++i) r[i] = mux2(arg(0)[0], arg(1)[i], arg(2)[i]);
        return r;
      }
      case Op::kSlice: {
        BitVec r(w);
        for (std::size_t i = 0; i < w; ++i) r[i] = arg(0)[i + n.imm];
        return r;
      }
      case Op::kZext: return widen(arg(0), w, false);
      case Op::kSext: return widen(arg(0), w, true);
      case Op::kRamRead: {
        const auto mem = static_cast<std::size_t>(n.imm);
        const int port = ram_read_count[mem]++;
        const auto& m = d.memories()[mem];
        const std::string base = m.name + "_r" + std::to_string(port);
        out.add_output(base + "_addr",
                       widen(arg(0), static_cast<std::size_t>(m.addr_bits), false));
        out.add_output(base + "_ren", arg(1));
        BitVec data(w);
        for (std::size_t i = 0; i < w; ++i) data[i] = out.new_net();
        out.add_input(base + "_data", data);
        out.macros[mem].read_addr_ports.push_back(base + "_addr");
        out.macros[mem].read_data_ports.push_back(base + "_data");
        out.macros[mem].read_enable_ports.push_back(base + "_ren");
        return data;
      }
      case Op::kRomRead: {
        const auto rom = static_cast<std::size_t>(n.imm);
        const int port = rom_read_count[rom]++;
        const auto& r = d.roms()[rom];
        const std::string base = r.name + "_r" + std::to_string(port);
        const std::size_t macro_idx = d.memories().size() + rom;
        out.add_output(base + "_addr",
                       widen(arg(0), static_cast<std::size_t>(r.addr_bits), false));
        BitVec data(w);
        for (std::size_t i = 0; i < w; ++i) data[i] = out.new_net();
        out.add_input(base + "_data", data);
        out.macros[macro_idx].read_addr_ports.push_back(base + "_addr");
        out.macros[macro_idx].read_data_ports.push_back(base + "_data");
        return data;
      }
    }
    throw std::logic_error("unhandled op in lowering");
  }

  void run() {
    ram_read_count.assign(d.memories().size(), 0);
    rom_read_count.assign(d.roms().size(), 0);
    for (const auto& m : d.memories()) {
      MacroInfo mi;
      mi.kind = MacroInfo::Kind::kRam;
      mi.name = m.name;
      mi.addr_bits = m.addr_bits;
      mi.data_bits = m.data_bits;
      out.macros.push_back(std::move(mi));
    }
    for (const auto& r : d.roms()) {
      MacroInfo mi;
      mi.kind = MacroInfo::Kind::kRom;
      mi.name = r.name;
      mi.addr_bits = r.addr_bits;
      mi.data_bits = r.data_bits;
      mi.rom_contents = r.contents;
      out.macros.push_back(std::move(mi));
    }

    // Flops first so kRegQ references resolve.
    flop_q.resize(d.registers().size());
    for (std::size_t r = 0; r < d.registers().size(); ++r) {
      flop_q[r].resize(static_cast<std::size_t>(d.registers()[r].width));
      for (std::size_t i = 0; i < flop_q[r].size(); ++i) flop_q[r][i] = out.new_net();
    }

    for (std::size_t i = 0; i < d.nodes().size(); ++i)
      bits[i] = lower_node(static_cast<NodeId>(i));

    // Connect flop D inputs (enable becomes a recirculating mux).
    std::vector<std::size_t> flop_cell_base(d.registers().size());
    for (std::size_t r = 0; r < d.registers().size(); ++r) {
      const auto& reg = d.registers()[r];
      const BitVec& next = bits[static_cast<std::size_t>(reg.next)];
      const NetId en = reg.enable == rtl::kNoNode
                           ? kNoNet
                           : bits[static_cast<std::size_t>(reg.enable)][0];
      for (std::size_t i = 0; i < flop_q[r].size(); ++i) {
        NetId dnet = next[i];
        if (en != kNoNet) dnet = mux2(en, flop_q[r][i], next[i]);
        const int init = static_cast<int>(
            (static_cast<std::uint64_t>(reg.reset_value) >> i) & 1u);
        // The flop's output net was pre-allocated: emit the cell and then
        // rewrite its output to the reserved net.
        const NetId placed = out.add_cell(CellType::kDff, {dnet}, init);
        out.cells_mut().back().output = flop_q[r][i];
        out.cells_mut().back().name = reg.name + "_q" + std::to_string(i);
        (void)placed;
      }
      (void)flop_cell_base;
    }

    // Memory write ports.
    for (std::size_t m = 0; m < d.memories().size(); ++m) {
      const auto& mem = d.memories()[m];
      out.add_output(mem.name + "_waddr", bits[static_cast<std::size_t>(mem.write_addr)]);
      out.add_output(mem.name + "_wdata", bits[static_cast<std::size_t>(mem.write_data)]);
      out.add_output(mem.name + "_wen", bits[static_cast<std::size_t>(mem.write_enable)]);
      out.macros[m].write_addr_port = mem.name + "_waddr";
      out.macros[m].write_data_port = mem.name + "_wdata";
      out.macros[m].write_enable_port = mem.name + "_wen";
    }

    for (const auto& o : d.outputs())
      out.add_output(o.name, bits[static_cast<std::size_t>(o.node)]);
  }
};

}  // namespace

Netlist lower_to_gates(const rtl::Design& design, const LowerOptions& options) {
  design.validate();
  Lowerer l(design);
  l.run();
  if (options.insert_scan) insert_scan_chain(l.out);
  l.out.validate();
  return std::move(l.out);
}

std::size_t insert_scan_chain(Netlist& n) {
  NetId scan_in = n.new_net();
  n.add_input("scan_in", {scan_in});
  const NetId scan_en = n.new_net();
  n.add_input("scan_enable", {scan_en});
  NetId chain = scan_in;
  std::size_t converted = 0;
  for (Cell& c : n.cells_mut()) {
    if (c.type != CellType::kDff) continue;
    c.type = CellType::kSdff;
    c.inputs.push_back(chain);    // si
    c.inputs.push_back(scan_en);  // se
    chain = c.output;
    ++converted;
  }
  n.add_output("scan_out", {chain});
  return converted;
}

}  // namespace scflow::nl
