#include "hls/src_beh.hpp"

#include "dsp/src_params.hpp"
#include "hls/kernel.hpp"
#include "hls/synthesize.hpp"
#include "rtl/src_design.hpp"

namespace scflow::hls {

namespace {
using P = scflow::dsp::SrcParams;
using rtl::Sig;
}  // namespace

BehConfig beh_unopt_config() {
  BehConfig c;
  c.name = "src_beh_unopt";
  c.acc_bits = 48;   // template-generic widths, chosen very pessimistically
  c.coeff_bits = 28;
  c.ram_handshake_states = 1;
  return c;
}

BehConfig beh_opt_config() {
  BehConfig c;
  c.name = "src_beh_opt";
  return c;
}

rtl::Design build_beh_src_design(const BehConfig& cfg, Schedule* schedule_out) {
  rtl::DesignBuilder b(cfg.name);
  rtl::SrcInfra infra = rtl::build_src_infra(b, cfg.inject_corner_bug);

  // --- the compute kernel: 16 iterations (channel x tap) per output ---
  const int AB = cfg.acc_bits;
  const int CB = cfg.coeff_bits;
  Kernel k("mac", P::kChannels * P::kTapsPerPhase, 4);

  const ValueId phase = k.external(infra.phase_q);
  const ValueId mu = k.external(infra.mu_q);
  const ValueId base = k.external(infra.base_q);
  const int acc = k.add_state("acc", AB, k.constant(AB, 0));

  const ValueId it = k.iter();
  const ValueId tap = k.slice(it, 2, 0);
  const ValueId ch = k.slice(it, 3, 3);

  // Sample fetch (dedicated address logic + the shared RAM read port).
  const ValueId addr = k.addr_sub(k.zext(base, P::kBufferLog2), k.zext(tap, P::kBufferLog2));
  const ValueId word = k.ram_read(infra.ram, addr, 32);
  const ValueId x = k.mux(ch, k.slice(word, 15, 0), k.slice(word, 31, 16));

  // Coefficient fetch through the symmetry fold (dedicated index logic).
  auto folded = [&k](ValueId idx9) {
    const ValueId le = k.not_(k.lt_u(k.constant(9, P::kProtoLen / 2), idx9));
    const ValueId mirror = k.addr_sub(k.constant(9, P::kProtoLen - 1), idx9);
    return k.slice(k.mux(le, mirror, idx9), 7, 0);
  };
  const ValueId idx0 = k.addr_add(k.zext(phase, 9), k.shl(k.zext(tap, 9), P::kPhaseBits));
  const ValueId idx1 = k.addr_add(idx0, k.constant(9, 1));
  const ValueId c0 = k.rom_read(infra.rom, folded(idx0), 16);
  const ValueId c1 = k.rom_read(infra.rom, folded(idx1), 16);

  // Interpolation and MAC on the shared ALU/multiplier.
  const ValueId diff = k.sub(k.sext(c1, 17), k.sext(c0, 17));
  const ValueId p = k.mul(k.zext(mu, 11), diff, 28);
  const ValueId p_sh = k.slice(k.sra(p, P::kMuBits), CB - 1, 0);
  const ValueId cint = k.add(k.sext(c0, CB), p_sh);
  const ValueId q = k.mul(x, cint, 16 + CB);
  const ValueId acc_new = k.add(k.state(acc), k.sext(q, AB));

  // Rounding/saturation: the round add shares the ALU; the comparisons
  // against constants are dedicated logic.
  const ValueId rsum = k.add(acc_new, k.constant(AB, std::int64_t{1} << 14));
  const ValueId shifted = k.sra(rsum, P::kFracBits);
  const ValueId too_big = k.lt_s(k.constant(AB, 32767), shifted);
  const ValueId too_small = k.lt_s(shifted, k.constant(AB, -32768));
  const ValueId y = k.mux(too_big,
                          k.mux(too_small, k.slice(shifted, 15, 0), k.constant(16, -32768)),
                          k.constant(16, 32767));

  const ValueId is_ch0_last = k.eq(it, k.constant(4, P::kTapsPerPhase - 1));
  const ValueId is_final = k.eq(it, k.constant(4, P::kChannels * P::kTapsPerPhase - 1));
  k.update(acc, kNoValue, k.mux(is_ch0_last, acc_new, k.constant(AB, 0)));
  k.capture("res_l", is_ch0_last, y);
  k.capture("res_r", is_final, y);

  // --- protocol wrapper (same pin protocol as the hand-written RTL) ---
  const rtl::Reg pstate = b.reg("proto_state", 2);  // 0 idle, 1 run, 2 write
  const rtl::Reg was_zero = b.reg("was_zero", 1);
  const rtl::Reg out_l = b.reg("out_l_r", 16);
  const rtl::Reg out_r = b.reg("out_r_r", 16);
  const rtl::Reg valid = b.reg("out_valid_r", 1);

  const Sig idle = b.eq(pstate.q, b.c(2, 0));
  const Sig accept = b.and_(idle, infra.req_pending.q);
  b.assign(infra.req_pending, accept, b.c(1, 0));
  const Sig go_zero = b.and_(accept, infra.startup_zero_q);
  const Sig go_comp = b.and_(accept, b.not_(infra.startup_zero_q));
  b.assign(was_zero, accept, infra.startup_zero_q);

  ResourceConstraints rc;
  rc.ram_handshake_states = cfg.ram_handshake_states;
  SynthesisResult syn = synthesize_kernel(b, k, go_comp, rc);
  if (schedule_out != nullptr) *schedule_out = syn.schedule;

  b.assign(pstate, go_comp, b.c(2, 1));
  b.assign(pstate, go_zero, b.c(2, 2));
  b.assign(pstate, b.and_(b.eq(pstate.q, b.c(2, 1)), syn.done_pulse), b.c(2, 2));

  const Sig write = b.eq(pstate.q, b.c(2, 2));
  b.assign(out_l, write, b.select(was_zero.q, b.c(16, 0), syn.captures.at("res_l")));
  b.assign(out_r, write, b.select(was_zero.q, b.c(16, 0), syn.captures.at("res_r")));
  b.assign(valid, write, b.not_(valid.q));
  b.assign(pstate, write, b.c(2, 0));

  b.output("out_valid", valid.q);
  b.output("out_left", out_l.q);
  b.output("out_right", out_r.q);
  return b.finalise();
}

}  // namespace scflow::hls
