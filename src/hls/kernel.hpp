// Behavioural-synthesis input representation: a counted-loop compute
// kernel in SSA form — the substrate's equivalent of the synthesisable
// behavioural SystemC the paper feeds to the SystemC Compiler.
//
// A Kernel describes *one iteration* of a counted loop: a DAG of operations
// over constants, external signals (stable during the computation),
// loop-carried state variables and the loop counter.  State updates and
// output captures are predicated and commit at the end of each iteration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/builder.hpp"

namespace scflow::hls {

using ValueId = std::int32_t;
constexpr ValueId kNoValue = -1;

enum class HOp : std::uint8_t {
  kConst, kExternal, kState, kIter,
  kAdd, kSub,            // datapath arithmetic -> shared ALU
  kMul,                  // -> shared multiplier
  kAddrAdd, kAddrSub,    // address/index arithmetic -> dedicated logic
  kAnd, kOr, kXor, kNot,
  kEq, kNe, kLtU, kLtS,
  kShlK, kShrK, kSraK,   // constant shifts (wiring)
  kSlice, kZext, kSext,
  kMux,
  kRamRead,              // occupies a RAM read port for its step
  kRomRead,              // occupies a ROM read port for its step
};

/// Functional-unit class an op occupies during scheduling.
enum class FuClass : std::uint8_t { kNone, kAlu, kMult, kRamPort, kRomPort };

[[nodiscard]] FuClass fu_class(HOp op);

struct HNode {
  HOp op = HOp::kConst;
  int width = 1;
  std::vector<ValueId> args;
  std::int64_t imm = 0;       // constant value / shift amount / slice lo / mem index
  rtl::Sig external;          // kExternal only
  int index = -1;             // kState: state var index
};

struct StateVar {
  std::string name;
  int width = 1;
  ValueId init = kNoValue;  ///< loaded when the kernel starts (consts/externals only)
};

struct Update {
  int state;
  ValueId pred;   ///< kNoValue = unconditional
  ValueId value;
};

struct Capture {
  std::string name;
  ValueId pred;
  ValueId value;
};

class Kernel {
 public:
  Kernel(std::string name, int loop_count, int iter_width)
      : name_(std::move(name)), loop_count_(loop_count), iter_width_(iter_width) {}

  // --- values ---
  ValueId constant(int width, std::int64_t v) { return node({HOp::kConst, width, {}, v, {}, -1}); }
  ValueId external(rtl::Sig s) { return node({HOp::kExternal, s.width, {}, 0, s, -1}); }
  int add_state(const std::string& nm, int width, ValueId init) {
    states_.push_back({nm, width, init});
    return static_cast<int>(states_.size() - 1);
  }
  ValueId state(int idx) {
    return node({HOp::kState, states_[static_cast<std::size_t>(idx)].width, {}, 0, {}, idx});
  }
  ValueId iter() { return node({HOp::kIter, iter_width_, {}, 0, {}, -1}); }

  ValueId add(ValueId a, ValueId b) { return bin(HOp::kAdd, a, b, width(a)); }
  ValueId sub(ValueId a, ValueId b) { return bin(HOp::kSub, a, b, width(a)); }
  ValueId mul(ValueId a, ValueId b, int w) { return bin(HOp::kMul, a, b, w); }
  ValueId addr_add(ValueId a, ValueId b) { return bin(HOp::kAddrAdd, a, b, width(a)); }
  ValueId addr_sub(ValueId a, ValueId b) { return bin(HOp::kAddrSub, a, b, width(a)); }
  ValueId and_(ValueId a, ValueId b) { return bin(HOp::kAnd, a, b, width(a)); }
  ValueId or_(ValueId a, ValueId b) { return bin(HOp::kOr, a, b, width(a)); }
  ValueId xor_(ValueId a, ValueId b) { return bin(HOp::kXor, a, b, width(a)); }
  ValueId not_(ValueId a) { return node({HOp::kNot, width(a), {a}, 0, {}, -1}); }
  ValueId eq(ValueId a, ValueId b) { return bin(HOp::kEq, a, b, 1); }
  ValueId lt_u(ValueId a, ValueId b) { return bin(HOp::kLtU, a, b, 1); }
  ValueId lt_s(ValueId a, ValueId b) { return bin(HOp::kLtS, a, b, 1); }
  ValueId shl(ValueId a, int k) { return node({HOp::kShlK, width(a), {a}, k, {}, -1}); }
  ValueId sra(ValueId a, int k) { return node({HOp::kSraK, width(a), {a}, k, {}, -1}); }
  ValueId slice(ValueId a, int hi, int lo) {
    return node({HOp::kSlice, hi - lo + 1, {a}, lo, {}, -1});
  }
  ValueId zext(ValueId a, int w) { return w == width(a) ? a : node({HOp::kZext, w, {a}, 0, {}, -1}); }
  ValueId sext(ValueId a, int w) { return w == width(a) ? a : node({HOp::kSext, w, {a}, 0, {}, -1}); }
  ValueId mux(ValueId sel, ValueId if0, ValueId if1) {
    return node({HOp::kMux, width(if0), {sel, if0, if1}, 0, {}, -1});
  }
  ValueId select(ValueId cond, ValueId t, ValueId f) { return mux(cond, f, t); }
  ValueId ram_read(int mem, ValueId addr, int data_bits) {
    return node({HOp::kRamRead, data_bits, {addr}, mem, {}, -1});
  }
  ValueId rom_read(int rom, ValueId addr, int data_bits) {
    return node({HOp::kRomRead, data_bits, {addr}, rom, {}, -1});
  }

  void update(int state_idx, ValueId pred, ValueId value) {
    updates_.push_back({state_idx, pred, value});
  }
  void capture(const std::string& nm, ValueId pred, ValueId value) {
    captures_.push_back({nm, pred, value});
  }

  // --- access ---
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int loop_count() const { return loop_count_; }
  [[nodiscard]] int iter_width() const { return iter_width_; }
  [[nodiscard]] const std::vector<HNode>& nodes() const { return nodes_; }
  [[nodiscard]] const HNode& at(ValueId v) const { return nodes_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] const std::vector<StateVar>& states() const { return states_; }
  [[nodiscard]] const std::vector<Update>& updates() const { return updates_; }
  [[nodiscard]] const std::vector<Capture>& captures() const { return captures_; }
  [[nodiscard]] int width(ValueId v) const { return at(v).width; }

 private:
  ValueId node(HNode n) {
    nodes_.push_back(std::move(n));
    return static_cast<ValueId>(nodes_.size() - 1);
  }
  ValueId bin(HOp op, ValueId a, ValueId b, int w) { return node({op, w, {a, b}, 0, {}, -1}); }

  std::string name_;
  int loop_count_;
  int iter_width_;
  std::vector<HNode> nodes_;
  std::vector<StateVar> states_;
  std::vector<Update> updates_;
  std::vector<Capture> captures_;
};

}  // namespace scflow::hls
