// Binding/datapath generation: turns a scheduled kernel into RTL —
// shared functional units with state-muxed operand networks, temp
// registers from the allocation, and the controlling FSM (the paper's
// "creating an FSM that realises the scheduling", done by the tool).
#pragma once

#include <map>
#include <string>

#include "hls/kernel.hpp"
#include "hls/schedule.hpp"
#include "rtl/builder.hpp"

namespace scflow::hls {

struct SynthesisResult {
  rtl::Sig busy;        ///< 1 while an invocation is running
  rtl::Sig done_pulse;  ///< 1 during the final slot of the last iteration
  std::map<std::string, rtl::Sig> captures;  ///< capture registers (q)
  Schedule schedule;
};

/// Emits the kernel's datapath + FSM into @p b.  The kernel starts when
/// @p start_pulse is 1 while idle; captures hold their values from the end
/// of the invocation until the next one.
SynthesisResult synthesize_kernel(rtl::DesignBuilder& b, const Kernel& kernel,
                                  rtl::Sig start_pulse,
                                  const ResourceConstraints& rc);

}  // namespace scflow::hls
