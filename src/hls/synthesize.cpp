#include "hls/synthesize.hpp"

#include <algorithm>
#include <stdexcept>

#include "dtypes/bit_int.hpp"

namespace scflow::hls {

namespace {

using rtl::Sig;

struct Emitter {
  rtl::DesignBuilder& b;
  const Kernel& k;
  const Schedule& sched;
  const ResourceConstraints& rc;

  rtl::Reg fsm;   // 0 = idle, 1..num_slots = slots
  rtl::Reg iter;
  std::vector<rtl::Reg> state_regs;
  std::vector<rtl::Reg> temp_regs;
  std::vector<Sig> in_step_sig;            // per compute step
  std::vector<Sig> fu_result;              // per FU op: its instance output (op width)
  std::map<std::pair<ValueId, int>, Sig> memo;

  /// Emits the rtl expression for @p v as seen *during* compute step
  /// @p step (-1 = context-free: constants/externals/registers only).
  Sig value(ValueId v, int step) {
    const auto key = std::make_pair(v, step);
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    const HNode& n = k.at(v);
    Sig out;
    switch (n.op) {
      case HOp::kConst: out = b.c(n.width, n.imm); break;
      case HOp::kExternal: out = n.external; break;
      case HOp::kState: out = state_regs[static_cast<std::size_t>(n.index)].q; break;
      case HOp::kIter: out = iter.q; break;
      default: {
        if (fu_class(n.op) != FuClass::kNone) {
          const int def = sched.step_of[static_cast<std::size_t>(v)];
          if (step == def) {
            out = fu_result[static_cast<std::size_t>(v)];
          } else if (step > def || step < 0) {
            const int r = sched.reg_of[static_cast<std::size_t>(v)];
            if (r < 0)
              throw std::logic_error("value used after its step but not registered");
            out = temp_regs[static_cast<std::size_t>(r)].q;
          } else {
            throw std::logic_error("value used before its producing step");
          }
          break;
        }
        // Free (wiring) op.
        auto arg = [&](int i) { return value(n.args[static_cast<std::size_t>(i)], step); };
        switch (n.op) {
          case HOp::kAddrAdd: out = b.add(arg(0), arg(1)); break;
          case HOp::kAddrSub: out = b.sub(arg(0), arg(1)); break;
          case HOp::kAnd: out = b.and_(arg(0), arg(1)); break;
          case HOp::kOr: out = b.or_(arg(0), arg(1)); break;
          case HOp::kXor: out = b.xor_(arg(0), arg(1)); break;
          case HOp::kNot: out = b.not_(arg(0)); break;
          case HOp::kEq: out = b.eq(arg(0), arg(1)); break;
          case HOp::kNe: out = b.ne(arg(0), arg(1)); break;
          case HOp::kLtU: out = b.lt_u(arg(0), arg(1)); break;
          case HOp::kLtS: out = b.lt_s(arg(0), arg(1)); break;
          case HOp::kShlK: out = b.shl(arg(0), static_cast<int>(n.imm)); break;
          case HOp::kShrK: out = b.shr(arg(0), static_cast<int>(n.imm)); break;
          case HOp::kSraK: out = b.sra(arg(0), static_cast<int>(n.imm)); break;
          case HOp::kSlice:
            out = b.slice(arg(0), static_cast<int>(n.imm) + n.width - 1,
                          static_cast<int>(n.imm));
            break;
          case HOp::kZext: out = b.zext(arg(0), n.width); break;
          case HOp::kSext: out = b.sext(arg(0), n.width); break;
          case HOp::kMux: out = b.mux(arg(0), arg(1), arg(2)); break;
          default: throw std::logic_error("unhandled free op");
        }
      }
    }
    memo.emplace(key, out);
    return out;
  }
};

}  // namespace

SynthesisResult synthesize_kernel(rtl::DesignBuilder& b, const Kernel& kernel,
                                  Sig start_pulse, const ResourceConstraints& rc) {
  const Schedule sched = schedule_kernel(kernel, rc);
  Emitter e{b, kernel, sched, rc, {}, {}, {}, {}, {}, {}, {}};

  const std::string prefix = kernel.name() + "_";
  const int fsm_w = scflow::bits_for_unsigned(static_cast<std::uint64_t>(sched.num_slots));
  e.fsm = b.reg(prefix + "state", fsm_w);
  e.iter = b.reg(prefix + "iter", kernel.iter_width());
  for (const StateVar& sv : kernel.states())
    e.state_regs.push_back(b.reg(prefix + sv.name, sv.width));
  for (std::size_t r = 0; r < sched.temp_regs.size(); ++r)
    e.temp_regs.push_back(
        b.reg(prefix + "t" + std::to_string(r), sched.temp_regs[r].width));

  e.in_step_sig.resize(static_cast<std::size_t>(sched.num_steps));
  for (int s = 0; s < sched.num_steps; ++s)
    e.in_step_sig[static_cast<std::size_t>(s)] =
        b.eq(e.fsm.q, b.c(fsm_w, sched.slot_of_step[static_cast<std::size_t>(s)] + 1));

  // --- group FU ops into instances ---
  e.fu_result.assign(kernel.nodes().size(), Sig{});
  struct OpRef {
    ValueId v;
    int step;
  };
  std::map<std::pair<int, int>, std::vector<OpRef>> instances;  // (class*1000+mem, inst)
  {
    std::map<std::pair<int, int>, int> used_in_step;  // (key, step) -> count
    for (std::size_t i = 0; i < kernel.nodes().size(); ++i) {
      const HNode& n = kernel.nodes()[i];
      const FuClass cls = fu_class(n.op);
      if (cls == FuClass::kNone) continue;
      const int step = sched.step_of[i];
      int group = static_cast<int>(cls) * 1000;
      if (cls == FuClass::kRamPort || cls == FuClass::kRomPort)
        group += static_cast<int>(n.imm);
      const int inst = used_in_step[{group, step}]++;
      instances[{group, inst}].push_back({static_cast<ValueId>(i), step});
    }
  }

  // Emit each instance: operand mux networks keyed by step, one FU node.
  for (auto& [key, ops] : instances) {
    const FuClass cls = static_cast<FuClass>(key.first / 1000);
    std::sort(ops.begin(), ops.end(), [](const OpRef& a, const OpRef& b2) {
      return a.step < b2.step;
    });
    auto mux_operand = [&](auto get_expr, int width, bool sign) {
      Sig acc{};
      for (const OpRef& op : ops) {
        Sig v = get_expr(op);
        v = sign ? b.resize_s(v, width) : b.resize_u(v, width);
        acc = acc.valid()
                  ? b.select(e.in_step_sig[static_cast<std::size_t>(op.step)], v, acc)
                  : v;
      }
      return acc;
    };
    switch (cls) {
      case FuClass::kMult: {
        int aw = 0, bw = 0;
        for (const OpRef& op : ops) {
          aw = std::max(aw, kernel.width(kernel.at(op.v).args[0]));
          bw = std::max(bw, kernel.width(kernel.at(op.v).args[1]));
        }
        const Sig a = mux_operand(
            [&](const OpRef& op) { return e.value(kernel.at(op.v).args[0], op.step); }, aw, true);
        const Sig bb = mux_operand(
            [&](const OpRef& op) { return e.value(kernel.at(op.v).args[1], op.step); }, bw, true);
        const Sig out = b.mul(a, bb, std::min(aw + bw, 64));
        for (const OpRef& op : ops)
          e.fu_result[static_cast<std::size_t>(op.v)] =
              b.resize_s(out, kernel.width(op.v));
        break;
      }
      case FuClass::kAlu: {
        int w = 0;
        for (const OpRef& op : ops) w = std::max(w, kernel.width(op.v));
        const Sig a = mux_operand(
            [&](const OpRef& op) { return e.value(kernel.at(op.v).args[0], op.step); }, w, true);
        const Sig braw = mux_operand(
            [&](const OpRef& op) { return e.value(kernel.at(op.v).args[1], op.step); }, w, true);
        // Subtract flag: OR of the step selects of the kSub ops.
        Sig sub_flag = b.c(1, 0);
        for (const OpRef& op : ops)
          if (kernel.at(op.v).op == HOp::kSub)
            sub_flag = b.or_(sub_flag, e.in_step_sig[static_cast<std::size_t>(op.step)]);
        const Sig b_eff = b.xor_(braw, b.sext(sub_flag, w));
        const Sig out = b.addc(a, b_eff, sub_flag);
        for (const OpRef& op : ops)
          e.fu_result[static_cast<std::size_t>(op.v)] =
              b.resize_s(out, kernel.width(op.v));
        break;
      }
      case FuClass::kRamPort: {
        const int mem = key.first % 1000;
        const int abits = b.design().memories()[static_cast<std::size_t>(mem)].addr_bits;
        const Sig addr = mux_operand(
            [&](const OpRef& op) { return e.value(kernel.at(op.v).args[0], op.step); },
            abits, false);
        Sig ren = b.c(1, 0);
        for (const OpRef& op : ops)
          ren = b.or_(ren, e.in_step_sig[static_cast<std::size_t>(op.step)]);
        const Sig out = b.ram_read(mem, addr, ren);
        for (const OpRef& op : ops)
          e.fu_result[static_cast<std::size_t>(op.v)] =
              b.resize_u(out, kernel.width(op.v));
        break;
      }
      case FuClass::kRomPort: {
        const int rom = key.first % 1000;
        const int abits = b.design().roms()[static_cast<std::size_t>(rom)].addr_bits;
        const Sig addr = mux_operand(
            [&](const OpRef& op) { return e.value(kernel.at(op.v).args[0], op.step); },
            abits, false);
        const Sig out = b.rom_read(rom, addr);
        for (const OpRef& op : ops)
          e.fu_result[static_cast<std::size_t>(op.v)] =
              b.resize_u(out, kernel.width(op.v));
        break;
      }
      default: break;
    }
  }

  // Temp-register writes at the producing step.
  for (std::size_t i = 0; i < kernel.nodes().size(); ++i) {
    const int r = sched.reg_of[i];
    if (r < 0) continue;
    const int def = sched.step_of[i];
    b.assign(e.temp_regs[static_cast<std::size_t>(r)],
             e.in_step_sig[static_cast<std::size_t>(def)],
             e.fu_result[i]);
  }

  // Loop-carried state updates and output captures at the last step.
  const int last = sched.num_steps - 1;
  const Sig in_last_step = e.in_step_sig[static_cast<std::size_t>(last)];
  for (const Update& u : kernel.updates()) {
    Sig cond = in_last_step;
    if (u.pred != kNoValue) cond = b.and_(cond, e.value(u.pred, last));
    b.assign(e.state_regs[static_cast<std::size_t>(u.state)], cond, e.value(u.value, last));
  }
  SynthesisResult result;
  for (const Capture& c : kernel.captures()) {
    const rtl::Reg cap = b.reg(prefix + c.name, kernel.width(c.value));
    b.assign(cap, b.and_(in_last_step, e.value(c.pred, last)), e.value(c.value, last));
    result.captures[c.name] = cap.q;
  }

  // --- control FSM ---
  const Sig idle = b.eq(e.fsm.q, b.c(fsm_w, 0));
  const Sig start = b.and_(idle, start_pulse);
  b.assign(e.fsm, start, b.c(fsm_w, 1));
  b.assign(e.iter, start, b.c(kernel.iter_width(), 0));
  for (std::size_t s = 0; s < kernel.states().size(); ++s)
    b.assign(e.state_regs[s], start, e.value(kernel.states()[s].init, -1));

  const Sig in_final_slot = b.eq(e.fsm.q, b.c(fsm_w, sched.num_slots));
  const Sig iter_done =
      b.eq(e.iter.q, b.c(kernel.iter_width(), kernel.loop_count() - 1));
  const Sig advancing = b.and_(b.not_(idle), b.not_(in_final_slot));
  b.assign(e.fsm, advancing, b.add(e.fsm.q, b.c(fsm_w, 1)));
  b.assign(e.fsm, in_final_slot, b.select(iter_done, b.c(fsm_w, 0), b.c(fsm_w, 1)));
  b.assign(e.iter, in_final_slot, b.add(e.iter.q, b.c(kernel.iter_width(), 1)));

  result.busy = b.not_(idle);
  result.done_pulse = b.and_(in_final_slot, iter_done);
  result.schedule = sched;
  return result;
}

}  // namespace scflow::hls
