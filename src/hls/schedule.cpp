#include "hls/schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/registry.hpp"

namespace scflow::hls {

void Schedule::record_into(scflow::obs::Registry& reg, std::string_view prefix) const {
  const std::string p = std::string(prefix) + ".";
  reg.set_counter(p + "steps", static_cast<std::uint64_t>(num_steps));
  reg.set_counter(p + "slots", static_cast<std::uint64_t>(num_slots));
  reg.set_counter(p + "temp_regs", temp_regs.size());
  std::uint64_t ops = 0;
  for (const int s : step_of) ops += s >= 0 ? 1 : 0;
  reg.set_counter(p + "scheduled_ops", ops);
  const auto peak = [](const std::vector<int>& use) {
    int m = 0;
    for (const int u : use) m = std::max(m, u);
    return static_cast<std::uint64_t>(m);
  };
  reg.set_counter(p + "fu_mult", peak(mult_use));
  reg.set_counter(p + "fu_alu", peak(alu_use));
  reg.set_counter(p + "fu_ram_ports", peak(ram_use));
  reg.set_counter(p + "fu_rom_ports", peak(rom_use));
}

FuClass fu_class(HOp op) {
  switch (op) {
    case HOp::kAdd:
    case HOp::kSub: return FuClass::kAlu;
    case HOp::kMul: return FuClass::kMult;
    case HOp::kRamRead: return FuClass::kRamPort;
    case HOp::kRomRead: return FuClass::kRomPort;
    default: return FuClass::kNone;
  }
}

namespace {

/// Earliest step at which a value is *combinationally* available, given the
/// current (partial) schedule.  Leaves are available from step 0; an FU
/// result becomes register-available one step after its own step.
int availability(const Kernel& k, const std::vector<int>& step_of, ValueId v) {
  const HNode& n = k.at(v);
  if (fu_class(n.op) != FuClass::kNone) {
    if (step_of[static_cast<std::size_t>(v)] < 0) return -1;  // unscheduled
    return step_of[static_cast<std::size_t>(v)] + 1;
  }
  int avail = 0;
  for (ValueId a : n.args) {
    const int aa = availability(k, step_of, a);
    if (aa < 0) return -1;
    avail = std::max(avail, aa);
  }
  return avail;
}

/// Critical-path priority: number of FU ops on the longest downstream
/// chain (including the op itself).  Nodes are in SSA order, so consumers
/// always have larger indices and one reverse sweep suffices.
std::vector<int> compute_priority(const Kernel& k) {
  const auto& nodes = k.nodes();
  auto weight = [&nodes](std::size_t i) {
    return fu_class(nodes[i].op) != FuClass::kNone ? 1 : 0;
  };
  std::vector<int> height(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) height[i] = weight(i);
  for (std::size_t i = nodes.size(); i-- > 0;) {
    for (ValueId a : nodes[i].args) {
      const auto ai = static_cast<std::size_t>(a);
      height[ai] = std::max(height[ai], weight(ai) + height[i]);
    }
  }
  return height;
}

}  // namespace

Schedule schedule_kernel(const Kernel& kernel, const ResourceConstraints& rc) {
  const auto& nodes = kernel.nodes();
  Schedule s;
  s.step_of.assign(nodes.size(), -1);

  std::vector<ValueId> fu_ops;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (fu_class(nodes[i].op) != FuClass::kNone) fu_ops.push_back(static_cast<ValueId>(i));

  const auto priority = compute_priority(kernel);

  std::size_t scheduled = 0;
  int step = 0;
  std::vector<int> mult_use, alu_use, ram_use, rom_use;
  while (scheduled < fu_ops.size()) {
    if (step > 10'000) throw std::logic_error("scheduling did not converge");
    int mult_left = rc.multipliers, alu_left = rc.alus;
    int ram_left = rc.ram_ports, rom_left = rc.rom_ports;
    // Ready ops whose operands are available at this step, best first.
    std::vector<ValueId> ready;
    for (ValueId v : fu_ops) {
      if (s.step_of[static_cast<std::size_t>(v)] >= 0) continue;
      int avail = 0;
      bool ok = true;
      for (ValueId a : kernel.at(v).args) {
        const int aa = availability(kernel, s.step_of, a);
        if (aa < 0) { ok = false; break; }
        avail = std::max(avail, aa);
      }
      if (ok && avail <= step) ready.push_back(v);
    }
    std::stable_sort(ready.begin(), ready.end(), [&priority](ValueId a, ValueId b) {
      return priority[static_cast<std::size_t>(a)] > priority[static_cast<std::size_t>(b)];
    });
    int mult = 0, alu = 0, ram = 0, rom = 0;
    for (ValueId v : ready) {
      int* budget = nullptr;
      int* used = nullptr;
      switch (fu_class(kernel.at(v).op)) {
        case FuClass::kMult: budget = &mult_left; used = &mult; break;
        case FuClass::kAlu: budget = &alu_left; used = &alu; break;
        case FuClass::kRamPort: budget = &ram_left; used = &ram; break;
        case FuClass::kRomPort: budget = &rom_left; used = &rom; break;
        default: continue;
      }
      if (*budget == 0) continue;
      --*budget;
      ++*used;
      s.step_of[static_cast<std::size_t>(v)] = step;
      ++scheduled;
    }
    mult_use.push_back(mult);
    alu_use.push_back(alu);
    ram_use.push_back(ram);
    rom_use.push_back(rom);
    ++step;
  }
  s.num_steps = step;
  s.mult_use = std::move(mult_use);
  s.alu_use = std::move(alu_use);
  s.ram_use = std::move(ram_use);
  s.rom_use = std::move(rom_use);

  // Handshake padding: a wait slot after every step that touched the RAM.
  s.slot_of_step.resize(static_cast<std::size_t>(s.num_steps));
  int slot = 0;
  for (int st = 0; st < s.num_steps; ++st) {
    s.slot_of_step[static_cast<std::size_t>(st)] = slot++;
    if (s.ram_use[static_cast<std::size_t>(st)] > 0) slot += rc.ram_handshake_states;
  }
  s.num_slots = slot;

  // --- lifetime analysis + left-edge register allocation ---
  // A value needs a carry-over register iff some consumer reads it after
  // its producing step (updates/captures commit at the last step).
  std::vector<int> last_use(nodes.size(), -1);
  // Last combinational use step of every value, derived from FU operand
  // positions plus end-of-loop updates/captures.
  std::vector<int> use_step(nodes.size(), -1);
  auto mark_use = [&](ValueId v, int at_step, auto&& self) -> void {
    const HNode& n = kernel.at(v);
    if (fu_class(n.op) != FuClass::kNone) {
      use_step[static_cast<std::size_t>(v)] =
          std::max(use_step[static_cast<std::size_t>(v)], at_step);
      return;  // stop: deeper args were needed at *its* step, handled below
    }
    for (ValueId a : n.args) self(a, at_step, self);
  };
  for (ValueId v : fu_ops) {
    const int st = s.step_of[static_cast<std::size_t>(v)];
    for (ValueId a : kernel.at(v).args) mark_use(a, st, mark_use);
  }
  const int last = s.num_steps - 1;
  for (const auto& u : kernel.updates()) {
    mark_use(u.value, last, mark_use);
    if (u.pred != kNoValue) mark_use(u.pred, last, mark_use);
  }
  for (const auto& c : kernel.captures()) {
    mark_use(c.value, last, mark_use);
    mark_use(c.pred, last, mark_use);
  }
  last_use = use_step;

  s.reg_of.assign(nodes.size(), -1);
  // Left-edge: walk values by definition step; reuse a register of the
  // same width whose previous tenant died before this definition.
  std::vector<ValueId> by_def = fu_ops;
  std::stable_sort(by_def.begin(), by_def.end(), [&s](ValueId a, ValueId b) {
    return s.step_of[static_cast<std::size_t>(a)] < s.step_of[static_cast<std::size_t>(b)];
  });
  for (ValueId v : by_def) {
    const int def = s.step_of[static_cast<std::size_t>(v)];
    const int lu = last_use[static_cast<std::size_t>(v)];
    if (lu <= def) continue;  // consumed combinationally in its own step
    const int w = kernel.width(v);
    int chosen = -1;
    for (std::size_t r = 0; r < s.temp_regs.size(); ++r) {
      if (s.temp_regs[r].width == w && s.temp_regs[r].free_after <= def) {
        chosen = static_cast<int>(r);
        break;
      }
    }
    if (chosen < 0) {
      s.temp_regs.push_back({w, lu});
      chosen = static_cast<int>(s.temp_regs.size() - 1);
    } else {
      s.temp_regs[static_cast<std::size_t>(chosen)].free_after = lu;
    }
    s.reg_of[static_cast<std::size_t>(v)] = chosen;
  }
  return s;
}

}  // namespace scflow::hls
