// Behavioural synthesis: resource-constrained list scheduling, lifetime
// analysis and left-edge register allocation — the substrate's equivalent
// of the SystemC Compiler's scheduling/allocation step.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "hls/kernel.hpp"

namespace scflow::obs {
class Registry;
}

namespace scflow::hls {

struct ResourceConstraints {
  int multipliers = 1;
  int alus = 1;
  int ram_ports = 1;
  int rom_ports = 2;
  /// Handshake wait states appended after every step that performs a RAM
  /// access — the paper's "handshaking in loops" behavioural scheduling
  /// mode (the superstate-fixed mode sets this to 0).
  int ram_handshake_states = 0;
};

struct Schedule {
  /// Step index of every FU op (kNoValue-width vector; -1 for free ops).
  std::vector<int> step_of;
  /// Number of compute steps (before handshake padding).
  int num_steps = 0;
  /// slot_of_step[s] = FSM slot of compute step s after padding.
  std::vector<int> slot_of_step;
  /// Total FSM slots per iteration (steps + padding).
  int num_slots = 0;

  /// Register allocation: for every FU op needing a carry-over register,
  /// the temp-register index (-1 otherwise).
  std::vector<int> reg_of;
  struct TempReg {
    int width = 0;
    int free_after = -1;  // last use step (for tests)
  };
  std::vector<TempReg> temp_regs;

  /// Per-step FU usage (for constraint verification in tests).
  std::vector<int> mult_use, alu_use, ram_use, rom_use;

  /// Records the scheduling/allocation outcome into the unified metric
  /// registry: "<prefix>.steps", ".slots", ".temp_regs" (left-edge
  /// allocation result), ".fu_mult"/".fu_alu" (peak FUs bound, i.e. the
  /// shared-datapath width) and ".scheduled_ops".
  void record_into(scflow::obs::Registry& reg, std::string_view prefix) const;
};

/// Schedules @p kernel under @p rc.  Throws std::logic_error on malformed
/// kernels (e.g. cyclic dependencies, which SSA construction precludes).
Schedule schedule_kernel(const Kernel& kernel, const ResourceConstraints& rc);

}  // namespace scflow::hls
