// The behavioural SRC descriptions (paper §4.3/§4.4), synthesised to RTL
// by the hls scheduler/binder.
//
//  * beh_unopt — the first synthesisable behavioural model: handshaking in
//    the memory-access loops (extra wait state per RAM access, because the
//    I/O schedule is not fixed) and pessimistic bit-widths (24-bit
//    coefficient path, 48-bit accumulator) from the conservative
//    "cut-and-paste-and-refine" strategy.
//  * beh_opt   — after the paper's optimisation: fixed cycle scheme (no
//    handshake states) and trimmed widths (17-bit coefficients, 40-bit
//    accumulator), matching the hand-written RTL datapath widths.
#pragma once

#include "hls/schedule.hpp"
#include "rtl/ir.hpp"

namespace scflow::hls {

struct BehConfig {
  std::string name = "src_beh";
  int acc_bits = 40;
  int coeff_bits = 17;
  int ram_handshake_states = 0;
  bool inject_corner_bug = false;
};

[[nodiscard]] BehConfig beh_unopt_config();
[[nodiscard]] BehConfig beh_opt_config();

/// Builds the full behavioural SRC design: shared infrastructure plus the
/// hls-synthesised compute kernel and its I/O protocol wrapper.
rtl::Design build_beh_src_design(const BehConfig& config,
                                 Schedule* schedule_out = nullptr);

}  // namespace scflow::hls
