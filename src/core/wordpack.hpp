// 64-pattern word utilities shared by every bit-parallel engine in the
// tree: formal::Aig::simulate, the compiled gate backend
// (hdlsim::CompiledSim) and the CEC random-simulation passes all pack 64
// independent two-state patterns into one machine word.  One definition
// of the mixing / stream-generation / lane primitives keeps their pattern
// streams and lane conventions identical across engines.
#pragma once

#include <cstdint>
#include <string_view>

namespace scflow::core {

/// splitmix64 finaliser: full-avalanche 64-bit mix.  Used both as a hash
/// (AIG structural hashing) and as the output stage of the pattern rng.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Counter-based splitmix64 stream: state advances by the golden-gamma
/// increment, each output is the mixed state.  Deterministic, seedable,
/// and cheap enough to sit inside pattern-generation loops.
struct SplitMix64 {
  std::uint64_t s = 0;
  constexpr std::uint64_t next() {
    s += 0x9e3779b97f4a7c15ull;
    return mix64(s);
  }
};

/// Deterministic 64-bit string hash (mix64-folded bytes), for deriving
/// per-port pattern streams keyed by port name so two independently
/// constructed simulators agree on the stimulus without sharing state.
[[nodiscard]] constexpr std::uint64_t hash_str(std::string_view s) {
  std::uint64_t h = 0x243f6a8885a308d3ull;  // pi, nothing-up-my-sleeve
  for (const char c : s) h = mix64(h ^ static_cast<std::uint8_t>(c));
  return h;
}

/// The pattern word for (seed, name-hash, round, bit): the shared-stimulus
/// contract of the CEC compiled pre-pass — both sides derive each input
/// bit's 64 patterns from this one function, so identically named ports
/// see identical stimulus with no cross-simulator plumbing.
[[nodiscard]] constexpr std::uint64_t pattern_word(std::uint64_t seed,
                                                  std::uint64_t name_hash,
                                                  unsigned round, unsigned bit) {
  return mix64(seed + mix64(name_hash + mix64((std::uint64_t{round} << 32) + bit)));
}

/// Lane accessors: pattern lane @p lane (0..63) of word @p w.
[[nodiscard]] constexpr bool word_lane(std::uint64_t w, unsigned lane) {
  return ((w >> lane) & 1u) != 0;
}
constexpr void word_set_lane(std::uint64_t& w, unsigned lane, bool v) {
  const std::uint64_t m = std::uint64_t{1} << lane;
  w = v ? (w | m) : (w & ~m);
}
/// All 64 lanes driven with the same scalar bit.
[[nodiscard]] constexpr std::uint64_t word_broadcast(bool v) { return v ? ~0ull : 0ull; }
/// AIG-style phase application: complement the whole word when inverted.
[[nodiscard]] constexpr std::uint64_t word_phase(std::uint64_t w, bool invert) {
  return invert ? ~w : w;
}

}  // namespace scflow::core
