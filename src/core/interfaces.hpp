// The three interfaces of the SRC hierarchical channel (paper Fig. 5):
// SRC_CTRL (configuration), SampleWriteIF (producer side) and
// SampleReadIF (consumer side).
#pragma once

#include "dsp/src_params.hpp"

namespace scflow::model {

/// Configuration port: sets the operation mode.
class SrcCtrlIF {
 public:
  virtual ~SrcCtrlIF() = default;
  virtual void set_mode(dsp::SrcMode mode) = 0;
  [[nodiscard]] virtual dsp::SrcMode mode() const = 0;
};

/// Producer-side interface: blocking sample delivery.
class SampleWriteIF {
 public:
  virtual ~SampleWriteIF() = default;
  virtual void write_sample(dsp::StereoSample s) = 0;
};

/// Consumer-side interface: blocking sample retrieval.
class SampleReadIF {
 public:
  virtual ~SampleReadIF() = default;
  virtual dsp::StereoSample read_sample() = 0;
};

}  // namespace scflow::model
