// Refinement level 2 (paper §4.2): the SRC as a SystemC-2.0-style
// hierarchical channel.  The algorithm is encapsulated behind the three
// interfaces; internally the channel is split into three sub-modules
// "basically according to the class structure" of the C++ model (Fig. 6):
// an input stage (CInputBuffer), a coefficient store (CPolyphaseFilter)
// and a filter core thread (Filter()), synchronised by explicit events and
// communicating through interface method calls.
#pragma once

#include "core/interfaces.hpp"
#include "dsp/filter.hpp"
#include "dsp/golden_src.hpp"
#include "dsp/input_buffer.hpp"
#include "dsp/polyphase.hpp"
#include "dsp/rate_tracker.hpp"
#include "kernel/event.hpp"
#include "kernel/module.hpp"

namespace scflow::model {

class ChannelSrc : public minisc::Module,
                   public SrcCtrlIF,
                   public SampleWriteIF,
                   public SampleReadIF {
 public:
  ChannelSrc(minisc::Simulation& sim, std::string name,
             dsp::SrcMode mode = dsp::SrcMode::k44_1To48);

  // SRC_CTRL
  void set_mode(dsp::SrcMode mode) override;
  [[nodiscard]] dsp::SrcMode mode() const override { return tracker_.mode(); }

  // SampleWriteIF — called in the producer's thread context (IMC).
  void write_sample(dsp::StereoSample s) override;

  // SampleReadIF — called in the consumer's thread context; blocks until
  // the filter-core thread has produced the value.
  dsp::StereoSample read_sample() override;

  [[nodiscard]] std::uint64_t outputs_produced() const { return outputs_; }

 private:
  /// Sub-module boundary: the input stage owns the ring buffers.
  class InputStage : public minisc::Module {
   public:
    InputStage(Module& parent) : Module(parent, "input_stage") {}
    dsp::InputBuffer buffer[dsp::SrcParams::kChannels];
  };

  /// Sub-module boundary: the coefficient store owns the ROM.
  class CoeffStore : public minisc::Module {
   public:
    CoeffStore(Module& parent)
        : Module(parent, "coeff_store"), filter(dsp::make_default_rom()) {}
    dsp::PolyphaseFilter filter;
  };

  void filter_core();  ///< the channel's own functional thread

  [[nodiscard]] std::uint64_t now_ps() const { return sim().now().picoseconds(); }

  InputStage input_stage_;
  CoeffStore coeff_store_;
  dsp::RateTracker tracker_;

  // Depth bookkeeping identical to the golden model's.
  bool started_ = false;
  std::int64_t depth_ = 0;
  std::uint64_t outputs_ = 0;

  // Request/response rendezvous between read_sample() and the core thread.
  minisc::Event request_event_;
  minisc::Event done_event_;
  bool request_pending_ = false;
  dsp::StereoSample result_;
};

}  // namespace scflow::model
