// Reusable testbenches: the compiled (SystemC-style) stimulus/monitor
// modules that drive any refinement level from an SrcEvent schedule.
// These are also the "SystemC testbench" side of the paper's Fig. 9
// co-simulation comparison.
#pragma once

#include <vector>

#include "core/interfaces.hpp"
#include "core/pins.hpp"
#include "dsp/stimulus.hpp"
#include "kernel/module.hpp"

namespace scflow::model {

/// Drives the channel-level SRC through its SampleWriteIF (IMC).
class ChannelProducer : public minisc::Module {
 public:
  ChannelProducer(minisc::Simulation& sim, SampleWriteIF& target,
                  std::vector<dsp::SrcEvent> events)
      : Module(sim, "producer"), port(sim, this, "out"), events_(std::move(events)) {
    port.bind(target);
    thread("drive", [this] {
      for (const auto& e : events_) {
        if (!e.is_input) continue;
        const auto now = this->sim().now().picoseconds();
        if (e.t_ps > now) wait(minisc::Time::ps(e.t_ps - now));
        port->write_sample(e.sample);
      }
    });
  }
  minisc::Port<SampleWriteIF> port;

 private:
  std::vector<dsp::SrcEvent> events_;
};

/// Pulls outputs from the channel-level SRC through its SampleReadIF.
class ChannelConsumer : public minisc::Module {
 public:
  ChannelConsumer(minisc::Simulation& sim, SampleReadIF& target,
                  std::vector<dsp::SrcEvent> events)
      : Module(sim, "consumer"), port(sim, this, "in"), events_(std::move(events)) {
    port.bind(target);
    thread("drive", [this] {
      for (const auto& e : events_) {
        if (e.is_input) continue;
        const auto now = this->sim().now().picoseconds();
        if (e.t_ps > now) wait(minisc::Time::ps(e.t_ps - now));
        outputs.push_back(port->read_sample());
      }
    });
  }

  minisc::Port<SampleReadIF> port;
  std::vector<dsp::StereoSample> outputs;

 private:
  std::vector<dsp::SrcEvent> events_;
};

/// Drives the signal-level pins of a clocked SRC: writes sample data and
/// toggles in_strobe at each input event's exact time.
class PinProducer : public minisc::Module {
 public:
  PinProducer(minisc::Simulation& sim, SrcPins& pins, std::vector<dsp::SrcEvent> events)
      : Module(sim, "pin_producer"), pins_(&pins), events_(std::move(events)) {
    thread("drive", [this] {
      bool strobe = false;
      for (const auto& e : events_) {
        if (!e.is_input) continue;
        const auto now = this->sim().now().picoseconds();
        if (e.t_ps > now) wait(minisc::Time::ps(e.t_ps - now));
        pins_->in_left.write(Sample16(e.sample.left));
        pins_->in_right.write(Sample16(e.sample.right));
        strobe = !strobe;
        pins_->in_strobe.write(strobe);
      }
    });
  }

 private:
  SrcPins* pins_;
  std::vector<dsp::SrcEvent> events_;
};

/// Toggles out_req at each output event time and records every result the
/// DUT publishes (out_valid toggle).
class PinConsumer : public minisc::Module {
 public:
  PinConsumer(minisc::Simulation& sim, SrcPins& pins, std::vector<dsp::SrcEvent> events)
      : Module(sim, "pin_consumer"), pins_(&pins), events_(std::move(events)) {
    thread("request", [this] {
      bool req = false;
      for (const auto& e : events_) {
        if (e.is_input) continue;
        const auto now = this->sim().now().picoseconds();
        if (e.t_ps > now) wait(minisc::Time::ps(e.t_ps - now));
        req = !req;
        pins_->out_req.write(req);
        request_times_ps.push_back(this->sim().now().picoseconds());
      }
    });
    method("capture", [this] {
      const bool v = pins_->out_valid.read();
      if (v == last_valid_) return;  // initialisation run
      last_valid_ = v;
      outputs.push_back({static_cast<std::int16_t>(pins_->out_left.read().to_int64()),
                         static_cast<std::int16_t>(pins_->out_right.read().to_int64())});
      capture_times_ps.push_back(this->sim().now().picoseconds());
    }).sensitive(pins.out_valid.value_changed_event());
  }

  std::vector<dsp::StereoSample> outputs;
  std::vector<std::uint64_t> request_times_ps;  ///< when each request was issued
  std::vector<std::uint64_t> capture_times_ps;  ///< when each result appeared

 private:
  SrcPins* pins_;
  std::vector<dsp::SrcEvent> events_;
  bool last_valid_ = false;
};

}  // namespace scflow::model
