#include "core/channel_src.hpp"

namespace scflow::model {

using dsp::DepthConstants;
using P = dsp::SrcParams;

ChannelSrc::ChannelSrc(minisc::Simulation& sim, std::string name, dsp::SrcMode mode)
    : Module(sim, std::move(name)),
      input_stage_(*this),
      coeff_store_(*this),
      tracker_(mode, P::kDividerLatencyCycles * P::kClockPs),
      request_event_(sim, full_name() + ".request"),
      done_event_(sim, full_name() + ".done") {
  thread("filter_core", [this] { filter_core(); });
}

void ChannelSrc::set_mode(dsp::SrcMode mode) { tracker_.set_mode(mode); }

void ChannelSrc::write_sample(dsp::StereoSample s) {
  // Runs in the producer's thread: the channel's event-time is the call time.
  tracker_.on_input(now_ps());
  input_stage_.buffer[0].writer().push(s.left);
  input_stage_.buffer[1].writer().push(s.right);
  if (started_) {
    depth_ += DepthConstants::kOne;
    if (depth_ > DepthConstants::kMaxDepth) depth_ = DepthConstants::kMaxDepth;
  } else if (input_stage_.buffer[0].head() >= P::kStartupFill) {
    started_ = true;
    depth_ = P::kStartReadLag * DepthConstants::kOne;
  }
}

dsp::StereoSample ChannelSrc::read_sample() {
  // Runs in the consumer's thread: hand the request to the core thread and
  // block on the rendezvous (blocking interface method call).
  tracker_.on_output(now_ps());
  request_pending_ = true;
  request_event_.notify();
  wait(done_event_);
  return result_;
}

void ChannelSrc::filter_core() {
  while (true) {
    while (!request_pending_) wait(request_event_);
    request_pending_ = false;

    if (!started_) {
      result_ = {};
      ++outputs_;
      done_event_.notify();
      continue;
    }
    ++outputs_;
    const std::int64_t inc = tracker_.increment();

    const std::int64_t ceil_depth =
        (depth_ + DepthConstants::kFracMask) >> P::kFracBits;
    const int frac = static_cast<int>((-depth_) & DepthConstants::kFracMask);
    const int phase = frac >> P::kMuBits;
    const int mu = frac & ((1 << P::kMuBits) - 1);

    const unsigned newest = static_cast<unsigned>(
        input_stage_.buffer[0].head() - static_cast<std::uint64_t>(ceil_depth));
    result_.left = dsp::filter_sample(input_stage_.buffer[0], newest,
                                      coeff_store_.filter, phase, mu);
    result_.right = dsp::filter_sample(input_stage_.buffer[1], newest,
                                       coeff_store_.filter, phase, mu);

    if (depth_ > inc) depth_ -= inc;
    done_event_.notify();
  }
}

}  // namespace scflow::model
