// Signal-level pin bundle of the synthesisable SRC models.  The paper's
// communication refinement (§4.3) replaces interface method calls by
// exactly this: data signals plus toggle-handshake strobes.
#pragma once

#include "dtypes/bit_int.hpp"
#include "kernel/module.hpp"
#include "kernel/port.hpp"
#include "kernel/signal.hpp"

namespace scflow::model {

/// 16-bit audio sample as an explicit-width type (paper: type refinement).
using Sample16 = scflow::Int<16>;

/// Testbench-side signals a clocked SRC binds to.
struct SrcPins {
  explicit SrcPins(minisc::Simulation& sim)
      : in_strobe(sim, nullptr, "in_strobe", false),
        in_left(sim, nullptr, "in_left"),
        in_right(sim, nullptr, "in_right"),
        out_req(sim, nullptr, "out_req", false),
        out_valid(sim, nullptr, "out_valid", false),
        out_left(sim, nullptr, "out_left"),
        out_right(sim, nullptr, "out_right") {}

  minisc::Signal<bool> in_strobe;       ///< toggles once per input sample
  minisc::Signal<Sample16> in_left;
  minisc::Signal<Sample16> in_right;
  minisc::Signal<bool> out_req;         ///< toggles once per output request
  minisc::Signal<bool> out_valid;       ///< toggles when out_* carry a result
  minisc::Signal<Sample16> out_left;
  minisc::Signal<Sample16> out_right;
};

/// Port set shared by every clocked SRC model.
class ClockedSrcPorts : public minisc::Module {
 public:
  ClockedSrcPorts(minisc::Simulation& sim, std::string name)
      : Module(sim, std::move(name)),
        in_strobe(sim, this, "in_strobe"),
        in_left(sim, this, "in_left"),
        in_right(sim, this, "in_right"),
        out_req(sim, this, "out_req"),
        out_valid(sim, this, "out_valid"),
        out_left(sim, this, "out_left"),
        out_right(sim, this, "out_right") {}

  void bind_pins(SrcPins& pins) {
    in_strobe.bind(pins.in_strobe);
    in_left.bind(pins.in_left);
    in_right.bind(pins.in_right);
    out_req.bind(pins.out_req);
    out_valid.bind(pins.out_valid);
    out_left.bind(pins.out_left);
    out_right.bind(pins.out_right);
  }

  minisc::InPort<bool> in_strobe;
  minisc::InPort<Sample16> in_left;
  minisc::InPort<Sample16> in_right;
  minisc::InPort<bool> out_req;
  minisc::OutPort<bool> out_valid;
  minisc::OutPort<Sample16> out_left;
  minisc::OutPort<Sample16> out_right;
};

}  // namespace scflow::model
