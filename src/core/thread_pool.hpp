// Persistent worker pool for deterministic data-parallel sweeps.
//
// The pool spawns its OS threads once and then dispatches fork/join rounds
// with zero steady-state heap allocation: a round is a raw function pointer
// plus a context pointer (no std::function capture boxing), handed to the
// workers through a generation counter under one mutex.  The calling thread
// always participates as lane 0, so `ThreadPool(n)` yields `n + 1` lanes —
// a pool of zero workers degrades to a plain inline call.
//
// Used by the gate simulator's level-parallel settle sweep (one round per
// wide level) and by the sharded batch runner (one round per batch), both
// of which must stay allocation-free once warm.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace scflow::core {

class ThreadPool {
 public:
  /// Spawns @p workers OS threads (0 is valid: every run() stays inline).
  explicit ThreadPool(unsigned workers);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Lanes available to a round: the spawned workers plus the caller.
  [[nodiscard]] unsigned lanes() const { return static_cast<unsigned>(threads_.size()) + 1; }

  using Task = void (*)(void* ctx, unsigned lane);

  /// Fork/join round: runs task(ctx, lane) for every lane in [0, lanes()),
  /// lane 0 on the calling thread, and returns once all lanes finished.
  /// Worker completion synchronises with the return (acquire/release), so
  /// the caller may read anything the lanes wrote without further fences.
  void run(Task task, void* ctx);

  /// Picks a worker count for @p requested_lanes total lanes, capped to a
  /// sane maximum; 0 means "one lane per hardware thread".
  [[nodiscard]] static unsigned workers_for(unsigned requested_lanes);

 private:
  void worker_loop(unsigned lane);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped per round; workers wait on it
  unsigned running_ = 0;          // workers still inside the current round
  Task task_ = nullptr;
  void* ctx_ = nullptr;
  bool stop_ = false;
};

}  // namespace scflow::core
