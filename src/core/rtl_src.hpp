// Refinement level 5/6 (paper §4.5/§4.6): RTL SystemC.  The scheduling is
// explicit — a hand-written FSM advances one state per clock edge, with
// all variables allocated to named registers.  The datapath is implied by
// the state transitions (the paper lets Design Compiler optimise it).
//
//  * RtlSrcUnopt — conservative refinement: result values pass through an
//    extra output register stage and several latched values are shadow
//    copies left over from the behavioural code ("there were still some
//    registers that could be eliminated").
//  * RtlSrcOpt — those registers eliminated.
//
// Both are cycle-accurate FSMs producing bit-identical output sequences.
#pragma once

#include "core/pins.hpp"
#include "core/sample_ram.hpp"
#include "dsp/filter.hpp"
#include "dsp/polyphase.hpp"
#include "dsp/rate_tracker.hpp"
#include "kernel/clock.hpp"
#include "kernel/module.hpp"

namespace scflow::model {

template <bool Optimized>
class RtlSrcT : public ClockedSrcPorts {
 public:
  RtlSrcT(minisc::Simulation& sim, std::string name, minisc::Clock& clk,
          dsp::SrcMode mode, bool inject_corner_bug = false,
          bool check_ram = false)
      : ClockedSrcPorts(sim, std::move(name)),
        rom_(dsp::make_default_rom()),
        ram_(check_ram),
        tracker_(mode, dsp::SrcParams::kDividerLatencyCycles),
        inject_corner_bug_(inject_corner_bug) {
    method("fsm", [this] { on_clock(); }).sensitive(clk.posedge_event());
  }

  void set_mode(dsp::SrcMode mode) { tracker_.set_mode(mode); }
  [[nodiscard]] const SampleRam& ram() const { return ram_; }
  [[nodiscard]] std::uint64_t outputs_produced() const { return outputs_; }

 private:
  using P = dsp::SrcParams;
  using DC = dsp::DepthConstants;

  enum class State : std::uint8_t { kIdle, kMac, kRound, kWriteOut, kExtraReg };

  void on_clock() {
    if (sim().now().picoseconds() == 0) return;  // initialisation run
    ++cycle_;
    // Input interface logic: unconditioned, highest priority in the cycle.
    if (in_strobe.read() != last_in_strobe_) {
      last_in_strobe_ = in_strobe.read();
      capture_input();
    }
    switch (state_) {
      case State::kIdle: idle_state(); break;
      case State::kMac: mac_state(); break;
      case State::kRound: round_state(); break;
      case State::kWriteOut: write_state(); break;
      case State::kExtraReg: extra_reg_state(); break;
    }
  }

  void capture_input() {
    tracker_.on_input(cycle_);
    const unsigned slot = static_cast<unsigned>(wc_) & (P::kBufferSize - 1);
    ram_.write(slot, static_cast<std::int16_t>(in_left.read().to_int64()), wc_);
    ram_.write((1u << P::kBufferLog2) | slot,
               static_cast<std::int16_t>(in_right.read().to_int64()), wc_);
    ++wc_;
    if (started_) {
      depth_ += DC::kOne;
      if (depth_ > DC::kMaxDepth) depth_ = DC::kMaxDepth;
    } else if (wc_ >= P::kStartupFill) {
      started_ = true;
      depth_ = P::kStartReadLag * DC::kOne;
    }
  }

  void idle_state() {
    if (out_req.read() == last_out_req_) return;
    last_out_req_ = out_req.read();
    tracker_.on_output(cycle_);
    if (!started_) {
      result_l_ = Sample16(0);
      result_r_ = Sample16(0);
      state_ = State::kWriteOut;
      return;
    }
    ++outputs_;
    // Latch the computation parameters into working registers.
    const std::int64_t inc = tracker_.increment();
    std::int64_t ceil_depth = (depth_ + DC::kFracMask) >> P::kFracBits;
    const int frac = static_cast<int>((-depth_) & DC::kFracMask);
    phase_r_ = frac >> P::kMuBits;
    mu_r_ = frac & ((1 << P::kMuBits) - 1);
    if (inject_corner_bug_ && mu_r_ == 0 && phase_r_ == 0) ++ceil_depth;
    base_r_ = wc_ - static_cast<std::uint64_t>(ceil_depth);
    if (depth_ > inc) depth_ -= inc;  // advance atomically at the request
    if constexpr (!Optimized) {
      // Shadow registers the optimisation pass later removes.
      shadow_frac_ = frac;
      shadow_inc_ = inc;
    }
    ch_r_ = 0;
    k_r_ = 0;
    acc_ = scflow::Int<40>(0);
    state_ = State::kMac;
  }

  void mac_state() {
    const unsigned addr = (static_cast<unsigned>(ch_r_) << P::kBufferLog2) |
                          (static_cast<unsigned>(base_r_ - k_r_) & (P::kBufferSize - 1));
    const std::int16_t x = ram_.read(addr, wc_);
    const std::int32_t c = dsp::interpolated_coeff(rom_, phase_r_, mu_r_, k_r_);
    acc_ += scflow::Int<40>(static_cast<std::int64_t>(x) * c);
    if (++k_r_ == P::kTapsPerPhase) {
      k_r_ = 0;
      state_ = State::kRound;
    }
  }

  void round_state() {
    const Sample16 y(dsp::round_saturate_output(acc_.to_int64()));
    if (ch_r_ == 0) result_l_ = y; else result_r_ = y;
    acc_ = scflow::Int<40>(0);
    if (++ch_r_ == P::kChannels) {
      state_ = Optimized ? State::kWriteOut : State::kExtraReg;
    } else {
      state_ = State::kMac;
    }
  }

  void extra_reg_state() {
    // The unoptimised RTL stages the result through one more register.
    staged_l_ = result_l_;
    staged_r_ = result_r_;
    result_l_ = staged_l_;
    result_r_ = staged_r_;
    state_ = State::kWriteOut;
  }

  void write_state() {
    out_left.write(result_l_);
    out_right.write(result_r_);
    valid_state_ = !valid_state_;
    out_valid.write(valid_state_);
    state_ = State::kIdle;
  }

  dsp::CoefficientRom rom_;
  SampleRam ram_;
  dsp::RateTracker tracker_;
  bool inject_corner_bug_;

  // Registers.
  State state_ = State::kIdle;
  std::uint64_t cycle_ = 0;
  std::uint64_t wc_ = 0;
  bool started_ = false;
  std::int64_t depth_ = 0;
  bool last_in_strobe_ = false;
  bool last_out_req_ = false;
  bool valid_state_ = false;
  int phase_r_ = 0;
  int mu_r_ = 0;
  std::uint64_t base_r_ = 0;
  int ch_r_ = 0;
  int k_r_ = 0;
  scflow::Int<40> acc_{0};
  Sample16 result_l_{0};
  Sample16 result_r_{0};
  Sample16 staged_l_{0};
  Sample16 staged_r_{0};
  int shadow_frac_ = 0;   // unopt only: dead registers
  std::int64_t shadow_inc_ = 0;
  std::uint64_t outputs_ = 0;
};

using RtlSrcUnopt = RtlSrcT<false>;
using RtlSrcOpt = RtlSrcT<true>;

}  // namespace scflow::model
