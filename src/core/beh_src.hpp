// Refinement level 3/4 (paper §4.3/§4.4): the synthesisable *behavioural*
// SRC.  Communication is signal-based with toggle handshakes, a clock has
// been introduced, native types are replaced by explicit-width BitInts and
// all arithmetic lives in a single clocked thread (resource sharing).
//
// Two variants, matching the paper's optimisation step:
//  * BehSrcUnopt — "handshaking in loops": every buffer/ROM access spends
//    an extra handshake cycle (the behavioural scheduler cannot assume a
//    fixed cycle scheme), and bit-widths are chosen pessimistically
//    (48-bit accumulator, 24-bit coefficient path).
//  * BehSrcOpt — fixed cycle scheme (one MAC per clock), trimmed widths.
//
// Both compute bit-identical outputs; they differ in cycle schedule and in
// the datapath widths their synthesisable descriptions imply.
#pragma once

#include "core/pins.hpp"
#include "core/sample_ram.hpp"
#include "dsp/filter.hpp"
#include "dsp/polyphase.hpp"
#include "dsp/rate_tracker.hpp"
#include "kernel/clock.hpp"
#include "kernel/module.hpp"

namespace scflow::model {

template <int AccBits, int CoeffPathBits, bool FixedCycleScheme>
class BehSrcT : public ClockedSrcPorts {
 public:
  using Acc = scflow::Int<AccBits>;
  using CoeffPath = scflow::Int<CoeffPathBits>;

  BehSrcT(minisc::Simulation& sim, std::string name, minisc::Clock& clk,
          dsp::SrcMode mode, bool inject_corner_bug = false,
          bool check_ram = false)
      : ClockedSrcPorts(sim, std::move(name)),
        rom_(dsp::make_default_rom()),
        ram_(check_ram),
        tracker_(mode, dsp::SrcParams::kDividerLatencyCycles),
        inject_corner_bug_(inject_corner_bug) {
    thread("src_main", [this] { main_thread(); }).sensitive(clk.posedge_event());
  }

  void set_mode(dsp::SrcMode mode) { tracker_.set_mode(mode); }
  [[nodiscard]] const SampleRam& ram() const { return ram_; }
  [[nodiscard]] std::uint64_t outputs_produced() const { return outputs_; }

 private:
  using P = dsp::SrcParams;
  using DC = dsp::DepthConstants;

  /// One clock cycle: advance time, then service the input interface —
  /// input capture has priority over (and precedes) output handling within
  /// a cycle, the ordering contract every level shares.
  void tick() {
    wait();
    ++cycle_;
    poll_input();
  }

  void poll_input() {
    if (in_strobe.read() == last_in_strobe_) return;
    last_in_strobe_ = in_strobe.read();
    tracker_.on_input(cycle_);
    const unsigned slot = static_cast<unsigned>(wc_) & (P::kBufferSize - 1);
    ram_.write(slot, static_cast<std::int16_t>(in_left.read().to_int64()), wc_);
    ram_.write((1u << P::kBufferLog2) | slot,
               static_cast<std::int16_t>(in_right.read().to_int64()), wc_);
    ++wc_;
    if (started_) {
      depth_ += DC::kOne;
      if (depth_ > DC::kMaxDepth) depth_ = DC::kMaxDepth;
    } else if (wc_ >= P::kStartupFill) {
      started_ = true;
      depth_ = P::kStartReadLag * DC::kOne;
    }
  }

  /// Coefficient interpolation on the explicit-width datapath.  The
  /// unoptimised variant carries the path in CoeffPathBits (pessimistic);
  /// values are identical since nothing overflows either width.
  [[nodiscard]] CoeffPath coeff(int phase, int mu, int k) const {
    const scflow::Int<16> c0(rom_.at(dsp::proto_index(phase, k)));
    const scflow::Int<16> c1(rom_.at(dsp::proto_index(phase + 1, k)));
    const scflow::Int<17> diff = scflow::Int<17>::from(c1) - scflow::Int<17>::from(c0);
    const scflow::Int<28> prod(static_cast<std::int64_t>(mu) * diff.to_int64());
    return CoeffPath(c0.to_int64() + (prod.to_int64() >> P::kMuBits));
  }

  void main_thread() {
    while (true) {
      tick();
      if (out_req.read() != last_out_req_) {
        last_out_req_ = out_req.read();
        handle_request();
      }
    }
  }

  void handle_request() {
    tracker_.on_output(cycle_);
    if (!started_) {
      tick();
      out_left.write(Sample16(0));
      out_right.write(Sample16(0));
      toggle_valid();
      return;
    }
    ++outputs_;
    const std::int64_t inc = tracker_.increment();
    std::int64_t ceil_depth = (depth_ + DC::kFracMask) >> P::kFracBits;
    const int frac = static_cast<int>((-depth_) & DC::kFracMask);
    const int phase = frac >> P::kMuBits;
    const int mu = frac & ((1 << P::kMuBits) - 1);
    if (inject_corner_bug_ && mu == 0 && phase == 0) ++ceil_depth;
    const std::uint64_t base = wc_ - static_cast<std::uint64_t>(ceil_depth);
    if (depth_ > inc) depth_ -= inc;  // advance atomically at the request

    Sample16 result[P::kChannels];
    for (int ch = 0; ch < P::kChannels; ++ch) {
      Acc acc(0);
      for (int k = 0; k < P::kTapsPerPhase; ++k) {
        if constexpr (!FixedCycleScheme) tick();  // handshake with the RAM
        tick();                                   // the MAC cycle itself
        const unsigned addr = (static_cast<unsigned>(ch) << P::kBufferLog2) |
                              (static_cast<unsigned>(base - k) & (P::kBufferSize - 1));
        const std::int16_t x = ram_.read(addr, wc_);
        acc += Acc(static_cast<std::int64_t>(x) * coeff(phase, mu, k).to_int64());
      }
      tick();  // rounding cycle
      result[ch] = Sample16(dsp::round_saturate_output(acc.to_int64()));
    }
    tick();
    out_left.write(result[0]);
    out_right.write(result[1]);
    toggle_valid();
  }

  void toggle_valid() {
    valid_state_ = !valid_state_;
    out_valid.write(valid_state_);
  }

  dsp::CoefficientRom rom_;
  SampleRam ram_;
  dsp::RateTracker tracker_;
  bool inject_corner_bug_;

  std::uint64_t cycle_ = 0;
  std::uint64_t wc_ = 0;
  bool started_ = false;
  std::int64_t depth_ = 0;
  bool last_in_strobe_ = false;
  bool last_out_req_ = false;
  bool valid_state_ = false;
  std::uint64_t outputs_ = 0;
};

/// The first synthesisable behavioural model (paper §4.3).
using BehSrcUnopt = BehSrcT<48, 24, false>;
/// After the optimisation pass (paper §4.4).
using BehSrcOpt = BehSrcT<40, 17, true>;

}  // namespace scflow::model
