// The SRC buffer memory as seen by the clocked models: a single RAM macro
// holding both channels (address = channel << 6 | ring index).  Memories
// are black-box macros in the paper's flow (excluded from synthesis area);
// what matters is the *simulation model*, which can optionally check
// address validity — the mechanism that exposed the golden-model bug at
// gate level (paper §4.7).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "dsp/src_params.hpp"

namespace scflow::model {

class SampleRam {
 public:
  static constexpr unsigned kAddrBits = 7;  // 2 channels x 64 samples
  static constexpr unsigned kEntries = 1u << kAddrBits;
  static constexpr unsigned kAddrMask = kEntries - 1;
  /// Validity contract: a slot may be read while it holds one of the most
  /// recent kMaxReadAge samples of its channel.  The bug-free design never
  /// exceeds 55; the injected corner bug reads age 56 at the overrun cap.
  static constexpr std::uint64_t kMaxReadAge = 55;

  struct Violation {
    std::uint64_t count = 0;
    unsigned first_address = 0;
    std::uint64_t first_age = 0;
    std::string first_kind;
  };

  explicit SampleRam(bool check_addresses = false) : check_(check_addresses) {
    mem_.fill(0);
    written_at_.fill(0);
    written_.fill(false);
  }

  /// @param wc_at_write the channel's sample count at the time of writing.
  void write(unsigned addr, std::int16_t value, std::uint64_t wc_at_write) {
    addr &= kAddrMask;
    mem_[addr] = value;
    written_[addr] = true;
    written_at_[addr] = wc_at_write;
  }

  /// @param current_wc the channel's sample count at the time of reading.
  [[nodiscard]] std::int16_t read(unsigned addr, std::uint64_t current_wc) {
    addr &= kAddrMask;
    if (check_) {
      if (!written_[addr]) {
        record(addr, 0, "never-written");
      } else {
        const std::uint64_t age = current_wc - written_at_[addr];
        if (age > kMaxReadAge) record(addr, age, "stale");
      }
    }
    return mem_[addr];
  }

  [[nodiscard]] const Violation& violations() const { return violation_; }
  [[nodiscard]] bool checking() const { return check_; }

 private:
  void record(unsigned addr, std::uint64_t age, const char* kind) {
    if (violation_.count++ == 0) {
      violation_.first_address = addr;
      violation_.first_age = age;
      violation_.first_kind = kind;
    }
  }

  bool check_;
  std::array<std::int16_t, kEntries> mem_{};
  std::array<std::uint64_t, kEntries> written_at_{};
  std::array<bool, kEntries> written_{};
  Violation violation_;
};

}  // namespace scflow::model
