#include "core/run.hpp"

#include <algorithm>

#include "core/beh_src.hpp"
#include "core/channel_src.hpp"
#include "core/rtl_src.hpp"
#include "core/testbench.hpp"
#include "dsp/golden_src.hpp"
#include "kernel/clock.hpp"

namespace scflow::model {

using dsp::SrcEvent;
using dsp::SrcMode;
using dsp::StereoSample;
using P = dsp::SrcParams;

const char* level_name(RefinementLevel level) {
  switch (level) {
    case RefinementLevel::kAlgorithmicCpp: return "C++ (algorithmic)";
    case RefinementLevel::kChannelSystemC: return "SystemC (channels)";
    case RefinementLevel::kBehUnopt: return "Behavioural (unopt)";
    case RefinementLevel::kBehOpt: return "Behavioural (opt)";
    case RefinementLevel::kRtlUnopt: return "RTL (unopt)";
    case RefinementLevel::kRtlOpt: return "RTL (opt)";
  }
  return "?";
}

const char* level_slug(RefinementLevel level) {
  switch (level) {
    case RefinementLevel::kAlgorithmicCpp: return "cpp";
    case RefinementLevel::kChannelSystemC: return "channel";
    case RefinementLevel::kBehUnopt: return "beh_unopt";
    case RefinementLevel::kBehOpt: return "beh_opt";
    case RefinementLevel::kRtlUnopt: return "rtl_unopt";
    case RefinementLevel::kRtlOpt: return "rtl_opt";
  }
  return "unknown";
}

bool level_is_clocked(RefinementLevel level) {
  return level == RefinementLevel::kBehUnopt || level == RefinementLevel::kBehOpt ||
         level == RefinementLevel::kRtlUnopt || level == RefinementLevel::kRtlOpt;
}

namespace {

std::uint64_t last_event_time(const std::vector<SrcEvent>& events) {
  std::uint64_t t = 0;
  for (const auto& e : events) t = std::max(t, e.t_ps);
  return t;
}

RunResult run_algorithmic(SrcMode mode, const std::vector<SrcEvent>& events,
                          const RunOptions& options) {
  dsp::AlgorithmicSrc src(mode,
                          options.quantized_time
                              ? dsp::AlgorithmicSrc::TimeBase::kQuantizedCycles
                              : dsp::AlgorithmicSrc::TimeBase::kContinuousPs,
                          options.inject_corner_bug);
  std::vector<SrcEvent> ordered = events;
  if (options.quantized_time) {
    // Paper Fig. 7: the time quantisation is propagated back into the
    // golden model — including event *ordering*: two events landing in the
    // same clock cycle are observed input-first, even if the continuous
    // times said otherwise.
    const dsp::TimeQuantizer quant(P::kClockPs);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [&quant](const SrcEvent& a, const SrcEvent& b) {
                       const auto ca = quant.quantize_cycles(a.t_ps);
                       const auto cb = quant.quantize_cycles(b.t_ps);
                       if (ca != cb) return ca < cb;
                       return a.is_input && !b.is_input;
                     });
  }
  RunResult r;
  for (const auto& e : ordered) {
    if (e.is_input) src.push_input(e.t_ps, e.sample);
    else r.outputs.push_back(src.pull_output(e.t_ps));
  }
  r.simulated_cycles = last_event_time(events) / P::kClockPs;
  return r;
}

RunResult run_channel(SrcMode mode, const std::vector<SrcEvent>& events) {
  minisc::Simulation sim;
  ChannelSrc src(sim, "src", mode);
  ChannelProducer producer(sim, src, events);
  ChannelConsumer consumer(sim, src, events);
  sim.run();
  RunResult r;
  r.outputs = consumer.outputs;
  r.stats = sim.stats();
  r.process_activations = sim.process_activations();
  // Unclocked level: scale to simulated cycles assuming the 25 MHz clock,
  // exactly as the paper does for Fig. 8.
  r.simulated_cycles = sim.now().picoseconds() / P::kClockPs;
  return r;
}

template <class Model>
RunResult run_clocked(SrcMode mode, const std::vector<SrcEvent>& events,
                      const RunOptions& options) {
  minisc::Simulation sim;
  minisc::Clock clk(sim, "clk", minisc::Time::ps(P::kClockPs));
  SrcPins pins(sim);
  Model src(sim, "src", clk, mode, options.inject_corner_bug, options.check_ram);
  src.bind_pins(pins);
  PinProducer producer(sim, pins, events);
  PinConsumer consumer(sim, pins, events);
  // Drain margin: enough clocks for the last computation and handshakes.
  sim.run_until(minisc::Time::ps(last_event_time(events) + 300 * P::kClockPs));
  RunResult r;
  r.outputs = consumer.outputs;
  r.stats = sim.stats();
  r.process_activations = sim.process_activations();
  r.simulated_cycles = clk.posedge_count();
  r.ram_violations = src.ram().violations();
  for (std::size_t i = 0;
       i < consumer.capture_times_ps.size() && i < consumer.request_times_ps.size(); ++i)
    r.output_latency_cycles.push_back(
        (consumer.capture_times_ps[i] - consumer.request_times_ps[i]) / P::kClockPs);
  return r;
}

}  // namespace

RunResult run_level(RefinementLevel level, SrcMode mode,
                    const std::vector<SrcEvent>& events, const RunOptions& options) {
  switch (level) {
    case RefinementLevel::kAlgorithmicCpp: return run_algorithmic(mode, events, options);
    case RefinementLevel::kChannelSystemC: return run_channel(mode, events);
    case RefinementLevel::kBehUnopt: return run_clocked<BehSrcUnopt>(mode, events, options);
    case RefinementLevel::kBehOpt: return run_clocked<BehSrcOpt>(mode, events, options);
    case RefinementLevel::kRtlUnopt: return run_clocked<RtlSrcUnopt>(mode, events, options);
    case RefinementLevel::kRtlOpt: return run_clocked<RtlSrcOpt>(mode, events, options);
  }
  return {};
}

RunResult run_level_with_tone(RefinementLevel level, SrcMode mode, std::size_t samples,
                              const RunOptions& options) {
  const double in_rate = 1e12 / static_cast<double>(P::input_period_ps(mode));
  const auto inputs = dsp::make_sine_stimulus(samples, 1000.0, in_rate);
  const auto events = dsp::make_schedule(inputs, P::input_period_ps(mode), samples,
                                         P::output_period_ps(mode));
  return run_level(level, mode, events, options);
}

}  // namespace scflow::model
