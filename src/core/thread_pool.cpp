#include "core/thread_pool.hpp"

#include <algorithm>

namespace scflow::core {

ThreadPool::ThreadPool(unsigned workers) {
  threads_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w + 1); });  // lane 0 = caller
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    Task task;
    void* ctx;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = task_;
      ctx = ctx_;
    }
    task(ctx, lane);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--running_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run(Task task, void* ctx) {
  if (threads_.empty()) {
    task(ctx, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = task;
    ctx_ = ctx;
    running_ = static_cast<unsigned>(threads_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  task(ctx, 0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return running_ == 0; });
}

unsigned ThreadPool::workers_for(unsigned requested_lanes) {
  unsigned lanes = requested_lanes;
  if (lanes == 0) lanes = std::max(1u, std::thread::hardware_concurrency());
  lanes = std::min(lanes, 64u);
  return lanes - 1;
}

}  // namespace scflow::core
