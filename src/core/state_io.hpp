// Binary state serialization primitives for crash-consistent snapshots
// (serve resilience layer): a little-endian byte writer and a sticky-
// failure bounds-checked reader.  Explicit byte packing keeps the image
// stable across platforms; the reader NEVER reads past the buffer — a
// truncated or corrupt payload flips ok() and every later read returns a
// zero value, so restore code can run to the end and check ok() once
// instead of guarding every field (no crash on hostile input).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace scflow::core {

class StateWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { append(v, 2); }
  void u32(std::uint32_t v) { append(v, 4); }
  void u64(std::uint64_t v) { append(v, 8); }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  [[nodiscard]] const std::string& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  void append(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  std::string buf_;
};

class StateReader {
 public:
  explicit StateReader(std::string_view buf) : buf_(buf) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(take(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  std::uint64_t u64() { return take(8); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool read_bytes(void* out, std::size_t n) {
    if (!ok_ || buf_.size() - pos_ < n) {
      ok_ = false;
      std::memset(out, 0, n);
      return false;
    }
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  /// False once any read ran past the end of the buffer (sticky).
  [[nodiscard]] bool ok() const { return ok_; }
  /// True iff every byte was consumed and no read failed.
  [[nodiscard]] bool exhausted() const { return ok_ && pos_ == buf_.size(); }
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::uint64_t take(int n) {
    if (!ok_ || buf_.size() - pos_ < static_cast<std::size_t>(n)) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf_[pos_ + i])) << (8 * i);
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  std::string_view buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace scflow::core
