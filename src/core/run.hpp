// Uniform runners: execute any refinement level against an SrcEvent
// schedule and collect the output-sample sequence plus kernel statistics.
// The refinement-equivalence tests, the flow driver and the Fig. 8 bench
// all go through these.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/sample_ram.hpp"
#include "dsp/src_params.hpp"
#include "dsp/stimulus.hpp"
#include "kernel/simulation.hpp"

namespace scflow::model {

/// The abstraction levels of the paper's design flow (Fig. 1).
enum class RefinementLevel {
  kAlgorithmicCpp,   ///< initial C++ specification (no kernel)
  kChannelSystemC,   ///< SystemC 2.0 with hierarchical channels
  kBehUnopt,         ///< synthesisable behavioural
  kBehOpt,           ///< optimised behavioural
  kRtlUnopt,         ///< RTL
  kRtlOpt,           ///< optimised RTL
};

[[nodiscard]] const char* level_name(RefinementLevel level);
/// Short machine-readable name ("cpp", "channel", "beh_opt", ...) used as
/// the registry/JSON key for the level.
[[nodiscard]] const char* level_slug(RefinementLevel level);
[[nodiscard]] bool level_is_clocked(RefinementLevel level);

struct RunOptions {
  bool inject_corner_bug = false;
  bool check_ram = false;
  /// For kAlgorithmicCpp only: use the clock-quantised time base (the
  /// golden model after the paper's Fig. 7 back-propagation).
  bool quantized_time = false;
};

struct RunResult {
  std::vector<dsp::StereoSample> outputs;
  minisc::SimulationStats stats;               ///< zero for the C++ level
  std::uint64_t simulated_cycles = 0;          ///< 25 MHz-equivalent cycles
  SampleRam::Violation ram_violations;         ///< when check_ram was set
  /// Clocked levels: request-to-result latency of each output, in clocks.
  std::vector<std::uint64_t> output_latency_cycles;
  /// Kernel levels: per-process activation counts (full name -> count),
  /// attributing the activation load to individual processes.
  std::vector<std::pair<std::string, std::uint64_t>> process_activations;
};

/// Runs one refinement level over the schedule.
RunResult run_level(RefinementLevel level, dsp::SrcMode mode,
                    const std::vector<dsp::SrcEvent>& events,
                    const RunOptions& options = {});

/// Convenience: full stimulus construction + run for a mode.
RunResult run_level_with_tone(RefinementLevel level, dsp::SrcMode mode,
                              std::size_t samples, const RunOptions& options = {});

}  // namespace scflow::model
