// Seeded workload driver for the streaming SRC service: opens N sessions
// across a ratio table (the four paper pairs plus staged ratios), pushes
// seeded noise in chunks, steps the scheduler, pulls converted audio,
// closes everything, and verifies the service's zero-loss contract.
//
// `--check` runs the soak acceptance gate: >= 1000 sessions over >= 8
// ratios, the thread sweep {1,2,4,8}, asserting that (a) no sample is
// dropped anywhere (accepted == converted == produced == pulled after
// drain), (b) every session's output stream hash is bit-identical across
// all thread counts, and (c) the round-robin starvation streak stays
// within the rotation bound.  Failures name the gate, the offending
// session and the thread count.  Exit status is non-zero on any
// violation.
//
// `--chaos SEED` runs the resilience gate at one seed: a ChaosPlan
// injects lane stalls, mid-stream disconnects, malformed/oversized
// pushes, ring-full storms and allocation failures, all as pure
// functions of the seed — then the thread sweep {1,2,4,8} asserts the
// conservation laws hold for every surviving session, every survivor's
// output hash is bit-identical, and the fault census itself is
// identical across thread counts.  `--chaos-soak N` repeats for N
// consecutive seeds and additionally requires every fault class to have
// fired at least once over the soak.
//
// `--snapshot-roundtrip` checkpoints a mid-stream 8-ratio run through
// the crash-consistent snapshot envelope, restores into a fresh service
// at a different thread count, and asserts the continuation is
// byte-identical to the uninterrupted run — plus that the image itself
// is byte-identical across thread counts and that truncated/bit-flipped
// images are rejected with a diagnostic instead of a crash.
//
// `--ledger FILE` / `--report FILE` dump the service's obs artifacts
// (serve.ratio / serve.resilience / serve.run ledger entries, serve.*
// counters) — `scflow_report show FILE` renders them as a dashboard.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "dsp/stimulus.hpp"
#include "obs/session.hpp"
#include "serve/chaos.hpp"
#include "serve/resilience.hpp"
#include "serve/src_service.hpp"

namespace {

using scflow::dsp::StereoSample;
using scflow::serve::AdmitResult;
using scflow::serve::AdmitStatus;
using scflow::serve::ChaosClass;
using scflow::serve::ChaosOptions;
using scflow::serve::ChaosPlan;
using scflow::serve::ResilienceStats;
using scflow::serve::ServiceOptions;
using scflow::serve::SessionId;
using scflow::serve::SessionStats;
using scflow::serve::SrcService;

constexpr std::uint32_t kRatioTable[][2] = {
    {44'100, 48'000}, {48'000, 44'100}, {48'000, 48'000}, {32'000, 48'000},
    {8'000, 48'000},  {48'000, 8'000},  {22'050, 48'000}, {44'100, 8'000},
};
constexpr std::size_t kRatioCount = std::size(kRatioTable);

struct SessionResult {
  std::uint32_t fs_in = 0;
  std::uint32_t fs_out = 0;
  std::uint64_t output_hash = 0;
  std::uint64_t produced = 0;
  std::uint64_t pulled = 0;
  std::uint64_t accepted = 0;
  std::uint64_t converted_in = 0;
  std::uint32_t starve_streak_max = 0;
};

struct WorkloadResult {
  std::vector<SessionResult> sessions;
  std::uint64_t wall_ns = 0;
  std::uint64_t samples_in = 0;
  std::uint32_t starve_streak_max = 0;
  std::uint64_t job_ns_p99 = 0;
  std::uint64_t steps = 0;
  bool drained_clean = true;
};

// Runs the seeded workload with a FIXED push/step/pull interleaving —
// identical for every thread count, which is what makes the cross-thread
// hash comparison meaningful.
WorkloadResult run_workload(std::size_t n_sessions, std::size_t n_samples,
                            unsigned threads, std::uint64_t seed,
                            std::size_t step_cap, scflow::obs::Session* obs_out,
                            const char* run_label) {
  ServiceOptions opt;
  opt.threads = threads;
  opt.max_sessions = n_sessions;
  opt.input_ring = 256;
  opt.output_ring = 1'024;
  opt.work_quantum = 128;
  opt.max_sessions_per_step = step_cap;
  SrcService service(opt);

  std::vector<SessionId> ids(n_sessions);
  std::vector<std::vector<StereoSample>> stimuli(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    const auto& ratio = kRatioTable[i % kRatioCount];
    ids[i] = service.open({ratio[0], ratio[1]});
    if (!ids[i].valid()) {
      std::fprintf(stderr, "error: open() failed for session %zu\n", i);
      std::exit(1);
    }
    stimuli[i] = scflow::dsp::make_noise_stimulus(n_samples, seed + i);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::size_t> fed(n_sessions, 0);
  std::vector<std::uint64_t> pulled(n_sessions, 0);
  std::vector<StereoSample> out(512);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < n_sessions; ++i) {
      if (fed[i] < n_samples) {
        fed[i] += service.push(ids[i], stimuli[i].data() + fed[i],
                               n_samples - fed[i]);
        if (fed[i] < n_samples) progress = true;
      }
    }
    if (service.step() > 0) progress = true;
    for (std::size_t i = 0; i < n_sessions; ++i) {
      std::size_t got;
      while ((got = service.pull(ids[i], out.data(), out.size())) > 0) {
        pulled[i] += got;
        progress = true;
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  WorkloadResult result;
  result.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  result.samples_in = static_cast<std::uint64_t>(n_sessions) * n_samples;
  result.starve_streak_max = service.starve_streak_max();
  result.job_ns_p99 = service.job_ns_histogram().p99();
  result.steps = service.steps();
  for (std::size_t i = 0; i < n_sessions; ++i) {
    const SessionStats* stats = service.stats(ids[i]);
    if (stats == nullptr) {
      result.drained_clean = false;
      continue;
    }
    SessionResult r;
    r.fs_in = kRatioTable[i % kRatioCount][0];
    r.fs_out = kRatioTable[i % kRatioCount][1];
    r.output_hash = stats->output_hash;
    r.produced = stats->produced;
    r.pulled = pulled[i];
    r.accepted = stats->accepted;
    r.converted_in = stats->converted_in;
    r.starve_streak_max = stats->starve_streak_max;
    // Zero-loss contract for this run.
    if (r.accepted != n_samples || r.converted_in != n_samples ||
        r.produced != stats->pulled || r.pulled != stats->pulled) {
      result.drained_clean = false;
    }
    result.sessions.push_back(r);
    service.close(ids[i]);
  }
  service.step();  // reclaim, folding the closed sessions into the aggregates
  if (obs_out != nullptr) service.record_into(*obs_out, run_label);
  return result;
}

// Fail-fast reporting: name the violated gate, the offending session and
// the thread count, so a red soak pinpoints itself.
void report_zero_loss_failure(const WorkloadResult& r, std::size_t n_samples,
                              unsigned threads) {
  for (std::size_t i = 0; i < r.sessions.size(); ++i) {
    const SessionResult& s = r.sessions[i];
    if (s.accepted != n_samples || s.converted_in != n_samples ||
        s.produced != s.pulled) {
      std::printf(
          "FAIL[zero-loss]: threads=%u session=%zu (%u->%u) accepted=%llu "
          "converted=%llu produced=%llu pulled=%llu (expected %zu end-to-end)\n",
          threads, i, s.fs_in, s.fs_out,
          static_cast<unsigned long long>(s.accepted),
          static_cast<unsigned long long>(s.converted_in),
          static_cast<unsigned long long>(s.produced),
          static_cast<unsigned long long>(s.pulled), n_samples);
      return;
    }
  }
  std::printf("FAIL[zero-loss]: threads=%u (session vanished before drain)\n",
              threads);
}

int run_check(std::size_t n_sessions, std::size_t n_samples, std::uint64_t seed) {
  // The soak gate: >= 1000 sessions across all 8 ratios.
  if (n_sessions < 1'000) n_sessions = 1'000;
  const std::size_t step_cap = 128;
  const std::uint32_t rotation_bound =
      static_cast<std::uint32_t>((n_sessions + step_cap - 1) / step_cap) + 1;

  int failures = 0;
  std::vector<SessionResult> baseline;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const WorkloadResult r =
        run_workload(n_sessions, n_samples, threads, seed, step_cap, nullptr,
                     "check");
    std::printf(
        "threads=%u: %zu sessions, %llu samples in, wall %.1f ms, "
        "steps %llu, job p99 %.1f us, starve max %u\n",
        threads, r.sessions.size(),
        static_cast<unsigned long long>(r.samples_in),
        static_cast<double>(r.wall_ns) / 1e6,
        static_cast<unsigned long long>(r.steps),
        static_cast<double>(r.job_ns_p99) / 1e3, r.starve_streak_max);
    if (!r.drained_clean || r.sessions.size() != n_sessions) {
      report_zero_loss_failure(r, n_samples, threads);
      ++failures;
    }
    if (r.starve_streak_max > rotation_bound) {
      std::size_t worst = 0;
      for (std::size_t i = 0; i < r.sessions.size(); ++i) {
        if (r.sessions[i].starve_streak_max > r.sessions[worst].starve_streak_max)
          worst = i;
      }
      std::printf(
          "FAIL[starvation]: threads=%u session=%zu streak %u exceeds "
          "rotation bound %u\n",
          threads, worst,
          r.sessions.empty() ? r.starve_streak_max
                             : r.sessions[worst].starve_streak_max,
          rotation_bound);
      ++failures;
    }
    if (baseline.empty()) {
      baseline = r.sessions;
      continue;
    }
    for (std::size_t i = 0; i < baseline.size() && i < r.sessions.size(); ++i) {
      if (r.sessions[i].output_hash != baseline[i].output_hash ||
          r.sessions[i].produced != baseline[i].produced) {
        std::printf(
            "FAIL[hash-identity]: threads=%u session=%zu (%u->%u) hash "
            "%016llx vs baseline %016llx (produced %llu vs %llu)\n",
            threads, i, r.sessions[i].fs_in, r.sessions[i].fs_out,
            static_cast<unsigned long long>(r.sessions[i].output_hash),
            static_cast<unsigned long long>(baseline[i].output_hash),
            static_cast<unsigned long long>(r.sessions[i].produced),
            static_cast<unsigned long long>(baseline[i].produced));
        ++failures;
        break;  // first offender identifies the divergence
      }
    }
  }
  std::printf("serve soak: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Chaos gate.

/// Everything a chaos run produces that must be scheduling-invariant.
struct ChaosOutcome {
  std::vector<SessionResult> survivors;  ///< sessions not disconnected
  std::vector<std::size_t> survivor_index;
  ResilienceStats census;
  std::uint64_t steps = 0;
  bool conservation_ok = true;
  bool completed = true;  ///< false if the round cap tripped (hang guard)
  std::string first_violation;
};

ChaosOptions chaos_options_for(std::uint64_t seed) {
  ChaosOptions copt;
  copt.seed = seed;
  // Tuned for ~48 sessions x ~30 driver rounds: several fires per class
  // per soak without drowning the workload.
  copt.stall_per_dispatch = 1u << 9;
  copt.disconnect_per_round = 1u << 7;
  copt.oversized_per_round = 1u << 8;
  copt.storm_per_round = 1u << 7;
  copt.alloc_fail_per_open = 1u << 12;
  copt.storm_len_rounds = 6;
  copt.stall_budget_ns = 200'000;
  return copt;
}

// Seeded chaos workload with a FIXED driver schedule: every fault is a
// pure function of (seed, round, session) or (seed, step, slot), so two
// runs at different lane counts inject the identical fault sequence.
ChaosOutcome run_chaos_workload(std::uint64_t seed, unsigned threads,
                                std::size_t n_sessions, std::size_t n_samples,
                                scflow::obs::Session* obs_out) {
  const ChaosOptions copt = chaos_options_for(seed);
  const ChaosPlan plan(copt);

  ServiceOptions opt;
  opt.threads = threads;
  opt.max_sessions = n_sessions;
  opt.input_ring = 128;
  opt.output_ring = 512;
  opt.work_quantum = 64;
  SrcService service(opt);
  service.set_chaos(&plan);

  ChaosOutcome outcome;
  std::vector<SessionId> ids(n_sessions);
  std::vector<std::vector<StereoSample>> stimuli(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    const auto& ratio = kRatioTable[i % kRatioCount];
    AdmitResult r{};
    for (int attempt = 0; attempt < 8; ++attempt) {
      r = service.try_open({ratio[0], ratio[1]});
      if (r.status != AdmitStatus::kAllocFailed) break;  // chaos said no; retry
    }
    if (r.status != AdmitStatus::kAdmitted) {
      outcome.conservation_ok = false;
      outcome.first_violation = "session " + std::to_string(i) +
                                " not admitted after retries: " +
                                scflow::serve::admit_status_name(r.status);
      return outcome;
    }
    ids[i] = r.id;
    stimuli[i] = scflow::dsp::make_noise_stimulus(n_samples, seed * 1'000 + i);
  }

  constexpr std::size_t kChunk = 64;
  constexpr std::uint64_t kRoundCap = 100'000;  // hang guard, far above need
  std::vector<std::size_t> fed(n_sessions, 0);
  std::vector<std::uint64_t> pulled(n_sessions, 0);
  std::vector<bool> disconnected(n_sessions, false);
  std::vector<std::uint64_t> storm_until(n_sessions, 0);
  std::vector<StereoSample> out(512);

  std::uint64_t round = 0;
  bool progress = true;
  while (progress && round < kRoundCap) {
    ++round;
    progress = false;
    for (std::size_t i = 0; i < n_sessions; ++i) {
      if (disconnected[i]) continue;
      const auto si = static_cast<std::uint32_t>(i);
      if (plan.disconnect(round, si)) {
        // Mid-stream client disconnect: close without draining.
        service.close(ids[i]);
        service.note_chaos(ChaosClass::kDisconnect);
        disconnected[i] = true;
        progress = true;
        continue;
      }
      if (plan.ring_storm_start(round, si) && storm_until[i] <= round) {
        // The client stops pulling; backpressure must hold the line.
        storm_until[i] = round + copt.storm_len_rounds;
        service.note_chaos(ChaosClass::kRingStorm);
      }
      if (fed[i] < n_samples) {
        std::size_t offer = std::min(kChunk, n_samples - fed[i]);
        if (plan.oversized_push(round, si)) {
          // Malformed (null buffer) then oversized (the entire remainder,
          // typically far beyond ring capacity) — both must be refused
          // or clipped without losing accounting.
          (void)service.push(ids[i], nullptr, 3);
          offer = n_samples - fed[i];
          service.note_chaos(ChaosClass::kOversizedPush);
        }
        fed[i] += service.push(ids[i], stimuli[i].data() + fed[i], offer);
        if (fed[i] < n_samples) progress = true;
      }
    }
    if (service.step() > 0) progress = true;
    for (std::size_t i = 0; i < n_sessions; ++i) {
      if (disconnected[i]) continue;
      if (storm_until[i] > round) {
        progress = true;  // storm in flight: keep rounds ticking
        continue;
      }
      std::size_t got;
      while ((got = service.pull(ids[i], out.data(), out.size())) > 0) {
        pulled[i] += got;
        progress = true;
      }
    }
  }
  outcome.completed = round < kRoundCap;
  if (!outcome.completed) {
    outcome.conservation_ok = false;
    outcome.first_violation = "round cap tripped (possible livelock)";
  }

  for (std::size_t i = 0; i < n_sessions; ++i) {
    if (disconnected[i]) continue;
    const SessionStats* stats = service.stats(ids[i]);
    if (stats == nullptr) {
      outcome.conservation_ok = false;
      outcome.first_violation = "survivor " + std::to_string(i) + " lost its slot";
      continue;
    }
    SessionResult r;
    r.fs_in = kRatioTable[i % kRatioCount][0];
    r.fs_out = kRatioTable[i % kRatioCount][1];
    r.output_hash = stats->output_hash;
    r.produced = stats->produced;
    r.pulled = pulled[i];
    r.accepted = stats->accepted;
    r.converted_in = stats->converted_in;
    r.starve_streak_max = stats->starve_streak_max;
    // Conservation under fire: everything accepted was converted (rings
    // drained), everything produced was pulled.  Chaos may REFUSE
    // samples (counted in push_rejected) but may never lose one.
    if (r.accepted != n_samples || r.converted_in != n_samples ||
        r.produced != stats->pulled || r.pulled != stats->pulled) {
      outcome.conservation_ok = false;
      if (outcome.first_violation.empty()) {
        outcome.first_violation =
            "survivor " + std::to_string(i) + " accepted=" +
            std::to_string(r.accepted) + " converted=" +
            std::to_string(r.converted_in) + " produced=" +
            std::to_string(r.produced) + " pulled=" + std::to_string(r.pulled);
      }
    }
    outcome.survivors.push_back(r);
    outcome.survivor_index.push_back(i);
    service.close(ids[i]);
  }
  service.step();
  outcome.census = service.resilience_stats();
  outcome.steps = service.steps();
  if (obs_out != nullptr) service.record_into(*obs_out, "chaos");
  return outcome;
}

bool census_equal(const ResilienceStats& a, const ResilienceStats& b) {
  return a.chaos_stalls == b.chaos_stalls &&
         a.chaos_disconnects == b.chaos_disconnects &&
         a.chaos_oversized_pushes == b.chaos_oversized_pushes &&
         a.chaos_ring_storms == b.chaos_ring_storms &&
         a.chaos_alloc_failures == b.chaos_alloc_failures &&
         a.evict_idle == b.evict_idle && a.evict_lifetime == b.evict_lifetime &&
         a.admit_overloaded == b.admit_overloaded &&
         a.admit_rate_unsupported == b.admit_rate_unsupported;
}

/// One seed across the thread sweep.  Returns failures; accumulates the
/// fault census of the threads=1 run into @p class_totals.
int run_chaos_seed(std::uint64_t seed, std::size_t n_sessions,
                   std::size_t n_samples, std::uint64_t class_totals[5],
                   bool verbose, scflow::obs::Session* obs_out) {
  int failures = 0;
  ChaosOutcome baseline;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ChaosOutcome o = run_chaos_workload(seed, threads, n_sessions, n_samples,
                                        threads == 8 ? obs_out : nullptr);
    if (!o.conservation_ok) {
      std::printf("FAIL[chaos-conservation]: seed=%llu threads=%u: %s\n",
                  static_cast<unsigned long long>(seed), threads,
                  o.first_violation.c_str());
      ++failures;
    }
    if (threads == 1) {
      baseline = std::move(o);
      continue;
    }
    if (o.survivors.size() != baseline.survivors.size()) {
      std::printf(
          "FAIL[chaos-identity]: seed=%llu threads=%u survivor count %zu vs "
          "baseline %zu\n",
          static_cast<unsigned long long>(seed), threads, o.survivors.size(),
          baseline.survivors.size());
      ++failures;
      continue;
    }
    for (std::size_t k = 0; k < o.survivors.size(); ++k) {
      const SessionResult& a = baseline.survivors[k];
      const SessionResult& b = o.survivors[k];
      if (a.output_hash != b.output_hash || a.produced != b.produced ||
          a.accepted != b.accepted || a.converted_in != b.converted_in) {
        std::printf(
            "FAIL[chaos-identity]: seed=%llu threads=%u session=%zu (%u->%u) "
            "hash %016llx vs baseline %016llx\n",
            static_cast<unsigned long long>(seed), threads,
            o.survivor_index[k], b.fs_in, b.fs_out,
            static_cast<unsigned long long>(b.output_hash),
            static_cast<unsigned long long>(a.output_hash));
        ++failures;
        break;
      }
    }
    if (!census_equal(o.census, baseline.census)) {
      std::printf(
          "FAIL[chaos-census]: seed=%llu threads=%u fault census diverged "
          "from threads=1\n",
          static_cast<unsigned long long>(seed), threads);
      ++failures;
    }
  }
  class_totals[0] += baseline.census.chaos_stalls;
  class_totals[1] += baseline.census.chaos_disconnects;
  class_totals[2] += baseline.census.chaos_oversized_pushes;
  class_totals[3] += baseline.census.chaos_ring_storms;
  class_totals[4] += baseline.census.chaos_alloc_failures;
  if (verbose) {
    std::printf(
        "seed=%llu: %zu/%zu survivors, census stalls=%llu disconnects=%llu "
        "oversized=%llu storms=%llu alloc_fail=%llu%s\n",
        static_cast<unsigned long long>(seed), baseline.survivors.size(),
        n_sessions,
        static_cast<unsigned long long>(baseline.census.chaos_stalls),
        static_cast<unsigned long long>(baseline.census.chaos_disconnects),
        static_cast<unsigned long long>(baseline.census.chaos_oversized_pushes),
        static_cast<unsigned long long>(baseline.census.chaos_ring_storms),
        static_cast<unsigned long long>(baseline.census.chaos_alloc_failures),
        failures == 0 ? "" : "  <-- FAIL");
  }
  return failures;
}

int run_chaos(std::uint64_t base_seed, std::size_t n_seeds,
              std::size_t n_sessions, std::size_t n_samples,
              const std::string& ledger_path, const std::string& report_path,
              const char* tool_name) {
  if (n_sessions == 0) n_sessions = 48;
  if (n_samples == 0) n_samples = 400;
  std::uint64_t class_totals[5] = {};
  int failures = 0;
  scflow::obs::Session obs;
  const bool telemetry = !ledger_path.empty() || !report_path.empty();
  for (std::size_t k = 0; k < n_seeds; ++k) {
    // Telemetry from the final seed's run — the census is
    // thread-invariant, so any one run is representative.
    scflow::obs::Session* obs_out =
        telemetry && k + 1 == n_seeds ? &obs : nullptr;
    failures += run_chaos_seed(base_seed + k, n_sessions, n_samples,
                               class_totals, /*verbose=*/true, obs_out);
  }
  static const char* kClassNames[5] = {"lane_stall", "disconnect",
                                       "oversized_push", "ring_storm",
                                       "alloc_fail"};
  std::printf("chaos coverage over %zu seed(s):", n_seeds);
  for (int c = 0; c < 5; ++c) {
    std::printf(" %s=%llu", kClassNames[c],
                static_cast<unsigned long long>(class_totals[c]));
  }
  std::printf("\n");
  // Coverage is a soak property: a single seed may legitimately skip a
  // class, but over a multi-seed soak every class must fire.
  if (n_seeds > 1) {
    for (int c = 0; c < 5; ++c) {
      if (class_totals[c] == 0) {
        std::printf("FAIL[chaos-coverage]: fault class %s never fired\n",
                    kClassNames[c]);
        ++failures;
      }
    }
  }
  if (telemetry) {
    obs.ledger.meta = scflow::obs::collect_run_metadata(tool_name);
    if (!obs.dump(report_path, "", ledger_path)) {
      std::fprintf(stderr, "error: cannot write telemetry artifacts\n");
      return 1;
    }
    if (!ledger_path.empty()) std::printf("chaos ledger: %s\n", ledger_path.c_str());
  }
  std::printf("chaos gate: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Snapshot round-trip gate.

/// Driver state for the resumable snapshot workload — snapshotting the
/// service is only half the story; the driver replays its own state
/// (feed cursors, collected streams) from the same round.
struct SnapDriverState {
  std::vector<std::size_t> fed;
  std::vector<std::vector<StereoSample>> streams;  ///< everything pulled so far
  std::uint64_t round = 0;
};

/// Runs the fixed 8-ratio workload from @p state until done (or until
/// @p pause_round, exclusive, if non-zero).  Returns false on livelock.
bool run_snapshot_rounds(SrcService& service, const std::vector<SessionId>& ids,
                         const std::vector<std::vector<StereoSample>>& stimuli,
                         SnapDriverState& state, std::uint64_t pause_round) {
  const std::size_t n = ids.size();
  const std::size_t n_samples = stimuli[0].size();
  constexpr std::size_t kChunk = 48;
  std::vector<StereoSample> out(256);
  bool progress = true;
  while (progress) {
    if (pause_round != 0 && state.round >= pause_round) return true;
    ++state.round;
    progress = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (state.fed[i] < n_samples) {
        const std::size_t offer = std::min(kChunk, n_samples - state.fed[i]);
        state.fed[i] += service.push(ids[i], stimuli[i].data() + state.fed[i], offer);
        if (state.fed[i] < n_samples) progress = true;
      }
    }
    if (service.step() > 0) progress = true;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t got;
      while ((got = service.pull(ids[i], out.data(), out.size())) > 0) {
        state.streams[i].insert(state.streams[i].end(), out.begin(),
                                out.begin() + static_cast<std::ptrdiff_t>(got));
        progress = true;
      }
    }
    if (state.round > 1'000'000) return false;  // hang guard
  }
  return true;
}

int run_snapshot_roundtrip(std::uint64_t seed) {
  constexpr std::size_t kSessions = kRatioCount;  // all 8 ratio pairs
  constexpr std::size_t kSamples = 600;
  constexpr std::uint64_t kPauseRound = 5;  // mid-stream, converters warm

  ServiceOptions opt;
  opt.max_sessions = kSessions;
  opt.input_ring = 128;
  opt.output_ring = 512;
  opt.work_quantum = 64;

  std::vector<std::vector<StereoSample>> stimuli(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    stimuli[i] = scflow::dsp::make_noise_stimulus(kSamples, seed * 77 + i);
  }

  // A run-to-round-R factory: builds a service, opens the 8 sessions,
  // advances the fixed driver schedule to the pause round.
  const auto run_to_pause = [&](unsigned threads, SrcService& service,
                                std::vector<SessionId>& ids,
                                SnapDriverState& state) {
    ids.resize(kSessions);
    state.fed.assign(kSessions, 0);
    state.streams.assign(kSessions, {});
    state.round = 0;
    for (std::size_t i = 0; i < kSessions; ++i) {
      ids[i] = service.open({kRatioTable[i][0], kRatioTable[i][1]});
      if (!ids[i].valid()) return false;
    }
    (void)threads;
    return run_snapshot_rounds(service, ids, stimuli, state, kPauseRound);
  };

  int failures = 0;

  // Golden: uninterrupted run at threads=1, paused only to take the
  // reference snapshot, then driven to completion.
  SrcService golden(opt);
  std::vector<SessionId> golden_ids;
  SnapDriverState golden_state;
  if (!run_to_pause(1, golden, golden_ids, golden_state)) {
    std::printf("FAIL[snapshot]: golden run stalled before the pause round\n");
    return 1;
  }
  const SnapDriverState paused_state = golden_state;  // driver checkpoint
  const std::string image = scflow::serve::snapshot_service(golden);
  std::printf("snapshot image: %zu bytes at round %llu\n", image.size(),
              static_cast<unsigned long long>(kPauseRound));
  if (!run_snapshot_rounds(golden, golden_ids, stimuli, golden_state, 0)) {
    std::printf("FAIL[snapshot]: golden continuation stalled\n");
    return 1;
  }

  // Gate 1: the image is a pure function of the workload — a run at a
  // different lane count pauses at the same round with a byte-identical
  // snapshot.
  {
    ServiceOptions opt4 = opt;
    opt4.threads = 4;
    SrcService other(opt4);
    std::vector<SessionId> other_ids;
    SnapDriverState other_state;
    if (!run_to_pause(4, other, other_ids, other_state)) {
      std::printf("FAIL[snapshot]: threads=4 run stalled before the pause round\n");
      ++failures;
    } else {
      const std::string image4 = scflow::serve::snapshot_service(other);
      if (image4 != image) {
        std::printf(
            "FAIL[snapshot-identity]: image at threads=4 differs from "
            "threads=1 (%zu vs %zu bytes)\n",
            image4.size(), image.size());
        ++failures;
      } else {
        std::printf("image thread-invariance: ok (threads 1 vs 4 identical)\n");
      }
    }
  }

  // Gate 2: restore into a fresh service at a DIFFERENT thread count and
  // continue with the checkpointed driver state — the full per-session
  // output streams must be sample-for-sample identical to the
  // uninterrupted run, and the stats must agree.
  {
    ServiceOptions opt2 = opt;
    opt2.threads = 2;
    SrcService restored(opt2);
    std::string err;
    if (!scflow::serve::restore_service(image, restored, &err)) {
      std::printf("FAIL[snapshot-restore]: %s\n", err.c_str());
      ++failures;
    } else {
      SnapDriverState cont = paused_state;
      if (!run_snapshot_rounds(restored, golden_ids, stimuli, cont, 0)) {
        std::printf("FAIL[snapshot]: restored continuation stalled\n");
        ++failures;
      }
      for (std::size_t i = 0; i < kSessions; ++i) {
        if (cont.streams[i].size() != golden_state.streams[i].size() ||
            std::memcmp(cont.streams[i].data(), golden_state.streams[i].data(),
                        cont.streams[i].size() * sizeof(StereoSample)) != 0) {
          std::printf(
              "FAIL[snapshot-continuation]: session=%zu (%u->%u) restored "
              "stream %zu samples vs golden %zu, or content differs\n",
              i, kRatioTable[i][0], kRatioTable[i][1], cont.streams[i].size(),
              golden_state.streams[i].size());
          ++failures;
          break;
        }
        const SessionStats* a = golden.stats(golden_ids[i]);
        const SessionStats* b = restored.stats(golden_ids[i]);
        if (a == nullptr || b == nullptr || a->output_hash != b->output_hash ||
            a->produced != b->produced || a->converted_in != b->converted_in) {
          std::printf(
              "FAIL[snapshot-continuation]: session=%zu stats diverged after "
              "restore\n",
              i);
          ++failures;
          break;
        }
      }
      if (failures == 0) {
        std::printf(
            "restore continuation: ok (8 ratio pairs byte-identical, "
            "threads 1 -> 2)\n");
      }
    }
  }

  // Gate 3: corrupted images are rejected with a diagnostic, never a
  // crash and never a half-restored service.
  {
    struct Corruption {
      const char* name;
      std::string img;
    };
    std::vector<Corruption> cases;
    cases.push_back({"truncated-header", image.substr(0, 10)});
    cases.push_back({"truncated-payload", image.substr(0, image.size() / 2)});
    std::string flipped = image;
    flipped[flipped.size() / 2] = static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
    cases.push_back({"bit-flip", std::move(flipped)});
    std::string bad_magic = image;
    bad_magic[0] = 'X';
    cases.push_back({"bad-magic", std::move(bad_magic)});
    std::string trailing = image;
    trailing += "extra";
    cases.push_back({"trailing-bytes", std::move(trailing)});
    for (const Corruption& c : cases) {
      SrcService victim(opt);
      std::string err;
      if (scflow::serve::restore_service(c.img, victim, &err)) {
        std::printf("FAIL[snapshot-corruption]: %s image was ACCEPTED\n", c.name);
        ++failures;
      } else if (err.empty()) {
        std::printf("FAIL[snapshot-corruption]: %s rejected without diagnostic\n",
                    c.name);
        ++failures;
      } else {
        std::printf("corruption %-18s rejected: %s\n", c.name, err.c_str());
      }
    }
  }

  std::printf("snapshot round-trip: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_sessions = 64;
  std::size_t n_samples = 1'200;
  unsigned threads = 4;
  std::uint64_t seed = 1;
  std::size_t step_cap = 0;
  bool check = false;
  bool chaos = false;
  bool snapshot_roundtrip = false;
  std::size_t chaos_seeds = 1;
  std::size_t sessions_set = 0;
  std::size_t samples_set = 0;
  std::string ledger_path;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      chaos = true;
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--chaos-soak") == 0 && i + 1 < argc) {
      chaos = true;
      chaos_seeds = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--snapshot-roundtrip") == 0) {
      snapshot_roundtrip = true;
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      n_sessions = std::strtoul(argv[++i], nullptr, 10);
      sessions_set = n_sessions;
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      n_samples = std::strtoul(argv[++i], nullptr, 10);
      samples_set = n_samples;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--step-cap") == 0 && i + 1 < argc) {
      step_cap = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--check] [--chaos SEED] [--chaos-soak N] "
                   "[--snapshot-roundtrip] [--sessions N] [--samples N] "
                   "[--threads N] [--seed S] [--step-cap N] "
                   "[--ledger FILE] [--report FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  if (snapshot_roundtrip) return run_snapshot_roundtrip(seed);
  if (chaos) {
    return run_chaos(seed, chaos_seeds, sessions_set, samples_set, ledger_path,
                     report_path, argv[0]);
  }
  if (check) return run_check(n_sessions, n_samples, seed);

  scflow::obs::Session obs;
  const bool telemetry = !ledger_path.empty() || !report_path.empty();
  const WorkloadResult r =
      run_workload(n_sessions, n_samples, threads, seed, step_cap,
                   telemetry ? &obs : nullptr, "soak");
  const double wall_s = static_cast<double>(r.wall_ns) / 1e9;
  std::printf("sessions:            %zu (over %zu ratios)\n", r.sessions.size(),
              std::min(n_sessions, kRatioCount));
  std::printf("input samples:       %llu\n",
              static_cast<unsigned long long>(r.samples_in));
  std::printf("wall time:           %.1f ms\n", wall_s * 1e3);
  std::printf("throughput:          %.0f sessions x samples/s\n",
              static_cast<double>(r.samples_in) / wall_s);
  std::printf("scheduler steps:     %llu\n",
              static_cast<unsigned long long>(r.steps));
  std::printf("dispatch p99:        %.1f us\n",
              static_cast<double>(r.job_ns_p99) / 1e3);
  std::printf("starve streak max:   %u\n", r.starve_streak_max);
  std::printf("zero-loss contract:  %s\n", r.drained_clean ? "ok" : "VIOLATED");

  if (telemetry) {
    obs.ledger.meta = scflow::obs::collect_run_metadata(argv[0]);
    if (!obs.dump(report_path, "", ledger_path)) {
      std::fprintf(stderr, "error: cannot write telemetry artifacts\n");
      return 1;
    }
    if (!report_path.empty()) std::printf("metrics report: %s\n", report_path.c_str());
    if (!ledger_path.empty()) std::printf("run ledger: %s\n", ledger_path.c_str());
  }
  return r.drained_clean ? 0 : 1;
}
