// Seeded workload driver for the streaming SRC service: opens N sessions
// across a ratio table (the four paper pairs plus staged ratios), pushes
// seeded noise in chunks, steps the scheduler, pulls converted audio,
// closes everything, and verifies the service's zero-loss contract.
//
// `--check` runs the soak acceptance gate: >= 1000 sessions over >= 8
// ratios, the thread sweep {1,2,4,8}, asserting that (a) no sample is
// dropped anywhere (accepted == converted == produced == pulled after
// drain), (b) every session's output stream hash is bit-identical across
// all thread counts, and (c) the round-robin starvation streak stays
// within the rotation bound.  Exit status is non-zero on any violation.
//
// `--ledger FILE` / `--report FILE` dump the service's obs artifacts
// (serve.ratio / serve.run ledger entries, serve.* counters) —
// `scflow_report show --ledger FILE` renders them as a dashboard.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "dsp/stimulus.hpp"
#include "obs/session.hpp"
#include "serve/src_service.hpp"

namespace {

using scflow::dsp::StereoSample;
using scflow::serve::ServiceOptions;
using scflow::serve::SessionId;
using scflow::serve::SessionStats;
using scflow::serve::SrcService;

constexpr std::uint32_t kRatioTable[][2] = {
    {44'100, 48'000}, {48'000, 44'100}, {48'000, 48'000}, {32'000, 48'000},
    {8'000, 48'000},  {48'000, 8'000},  {22'050, 48'000}, {44'100, 8'000},
};
constexpr std::size_t kRatioCount = std::size(kRatioTable);

struct SessionResult {
  std::uint32_t fs_in = 0;
  std::uint32_t fs_out = 0;
  std::uint64_t output_hash = 0;
  std::uint64_t produced = 0;
  std::uint64_t pulled = 0;
  std::uint64_t accepted = 0;
  std::uint64_t converted_in = 0;
  std::uint32_t starve_streak_max = 0;
};

struct WorkloadResult {
  std::vector<SessionResult> sessions;
  std::uint64_t wall_ns = 0;
  std::uint64_t samples_in = 0;
  std::uint32_t starve_streak_max = 0;
  std::uint64_t job_ns_p99 = 0;
  std::uint64_t steps = 0;
  bool drained_clean = true;
};

// Runs the seeded workload with a FIXED push/step/pull interleaving —
// identical for every thread count, which is what makes the cross-thread
// hash comparison meaningful.
WorkloadResult run_workload(std::size_t n_sessions, std::size_t n_samples,
                            unsigned threads, std::uint64_t seed,
                            std::size_t step_cap, scflow::obs::Session* obs_out,
                            const char* run_label) {
  ServiceOptions opt;
  opt.threads = threads;
  opt.max_sessions = n_sessions;
  opt.input_ring = 256;
  opt.output_ring = 1'024;
  opt.work_quantum = 128;
  opt.max_sessions_per_step = step_cap;
  SrcService service(opt);

  std::vector<SessionId> ids(n_sessions);
  std::vector<std::vector<StereoSample>> stimuli(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    const auto& ratio = kRatioTable[i % kRatioCount];
    ids[i] = service.open({ratio[0], ratio[1]});
    if (!ids[i].valid()) {
      std::fprintf(stderr, "error: open() failed for session %zu\n", i);
      std::exit(1);
    }
    stimuli[i] = scflow::dsp::make_noise_stimulus(n_samples, seed + i);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::size_t> fed(n_sessions, 0);
  std::vector<std::uint64_t> pulled(n_sessions, 0);
  std::vector<StereoSample> out(512);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < n_sessions; ++i) {
      if (fed[i] < n_samples) {
        fed[i] += service.push(ids[i], stimuli[i].data() + fed[i],
                               n_samples - fed[i]);
        if (fed[i] < n_samples) progress = true;
      }
    }
    if (service.step() > 0) progress = true;
    for (std::size_t i = 0; i < n_sessions; ++i) {
      std::size_t got;
      while ((got = service.pull(ids[i], out.data(), out.size())) > 0) {
        pulled[i] += got;
        progress = true;
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  WorkloadResult result;
  result.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  result.samples_in = static_cast<std::uint64_t>(n_sessions) * n_samples;
  result.starve_streak_max = service.starve_streak_max();
  result.job_ns_p99 = service.job_ns_histogram().p99();
  result.steps = service.steps();
  for (std::size_t i = 0; i < n_sessions; ++i) {
    const SessionStats* stats = service.stats(ids[i]);
    if (stats == nullptr) {
      result.drained_clean = false;
      continue;
    }
    SessionResult r;
    r.fs_in = kRatioTable[i % kRatioCount][0];
    r.fs_out = kRatioTable[i % kRatioCount][1];
    r.output_hash = stats->output_hash;
    r.produced = stats->produced;
    r.pulled = pulled[i];
    r.accepted = stats->accepted;
    r.converted_in = stats->converted_in;
    r.starve_streak_max = stats->starve_streak_max;
    // Zero-loss contract for this run.
    if (r.accepted != n_samples || r.converted_in != n_samples ||
        r.produced != stats->pulled || r.pulled != stats->pulled) {
      result.drained_clean = false;
    }
    result.sessions.push_back(r);
    service.close(ids[i]);
  }
  service.step();  // reclaim, folding the closed sessions into the aggregates
  if (obs_out != nullptr) service.record_into(*obs_out, run_label);
  return result;
}

int run_check(std::size_t n_sessions, std::size_t n_samples, std::uint64_t seed) {
  // The soak gate: >= 1000 sessions across all 8 ratios.
  if (n_sessions < 1'000) n_sessions = 1'000;
  const std::size_t step_cap = 128;
  const std::uint32_t rotation_bound =
      static_cast<std::uint32_t>((n_sessions + step_cap - 1) / step_cap) + 1;

  int failures = 0;
  std::vector<SessionResult> baseline;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const WorkloadResult r =
        run_workload(n_sessions, n_samples, threads, seed, step_cap, nullptr,
                     "check");
    std::printf(
        "threads=%u: %zu sessions, %llu samples in, wall %.1f ms, "
        "steps %llu, job p99 %.1f us, starve max %u\n",
        threads, r.sessions.size(),
        static_cast<unsigned long long>(r.samples_in),
        static_cast<double>(r.wall_ns) / 1e6,
        static_cast<unsigned long long>(r.steps),
        static_cast<double>(r.job_ns_p99) / 1e3, r.starve_streak_max);
    if (!r.drained_clean || r.sessions.size() != n_sessions) {
      std::printf("FAIL: dropped samples or missing sessions at threads=%u\n",
                  threads);
      ++failures;
    }
    if (r.starve_streak_max > rotation_bound) {
      std::printf("FAIL: starvation streak %u exceeds rotation bound %u\n",
                  r.starve_streak_max, rotation_bound);
      ++failures;
    }
    if (baseline.empty()) {
      baseline = r.sessions;
      continue;
    }
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < baseline.size() && i < r.sessions.size(); ++i) {
      if (r.sessions[i].output_hash != baseline[i].output_hash ||
          r.sessions[i].produced != baseline[i].produced) {
        ++mismatches;
      }
    }
    if (mismatches != 0) {
      std::printf("FAIL: %zu sessions diverged from threads=1 at threads=%u\n",
                  mismatches, threads);
      ++failures;
    }
  }
  std::printf("serve soak: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_sessions = 64;
  std::size_t n_samples = 1'200;
  unsigned threads = 4;
  std::uint64_t seed = 1;
  std::size_t step_cap = 0;
  bool check = false;
  std::string ledger_path;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      n_sessions = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      n_samples = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--step-cap") == 0 && i + 1 < argc) {
      step_cap = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--check] [--sessions N] [--samples N] "
                   "[--threads N] [--seed S] [--step-cap N] "
                   "[--ledger FILE] [--report FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  if (check) return run_check(n_sessions, n_samples, seed);

  scflow::obs::Session obs;
  const bool telemetry = !ledger_path.empty() || !report_path.empty();
  const WorkloadResult r =
      run_workload(n_sessions, n_samples, threads, seed, step_cap,
                   telemetry ? &obs : nullptr, "soak");
  const double wall_s = static_cast<double>(r.wall_ns) / 1e9;
  std::printf("sessions:            %zu (over %zu ratios)\n", r.sessions.size(),
              std::min(n_sessions, kRatioCount));
  std::printf("input samples:       %llu\n",
              static_cast<unsigned long long>(r.samples_in));
  std::printf("wall time:           %.1f ms\n", wall_s * 1e3);
  std::printf("throughput:          %.0f sessions x samples/s\n",
              static_cast<double>(r.samples_in) / wall_s);
  std::printf("scheduler steps:     %llu\n",
              static_cast<unsigned long long>(r.steps));
  std::printf("dispatch p99:        %.1f us\n",
              static_cast<double>(r.job_ns_p99) / 1e3);
  std::printf("starve streak max:   %u\n", r.starve_streak_max);
  std::printf("zero-loss contract:  %s\n", r.drained_clean ? "ok" : "VIOLATED");

  if (telemetry) {
    obs.ledger.meta = scflow::obs::collect_run_metadata(argv[0]);
    if (!obs.dump(report_path, "", ledger_path)) {
      std::fprintf(stderr, "error: cannot write telemetry artifacts\n");
      return 1;
    }
    if (!report_path.empty()) std::printf("metrics report: %s\n", report_path.c_str());
    if (!ledger_path.empty()) std::printf("run ledger: %s\n", ledger_path.c_str());
  }
  return r.drained_clean ? 0 : 1;
}
