// scflow_report — renders and compares run-ledger artifacts.
//
//   scflow_report show <ledger.jsonl> [--phase P] [--design D] [--hist]
//       Per-phase tables of every entry; --hist adds histogram summaries.
//   scflow_report diff <a.jsonl> <b.jsonl> [--show-timing]
//       Per-metric deltas between two runs.  Timing metrics
//       ("duration_ns", "*_ns") never gate; exit 0 iff everything else
//       is identical, exit 1 on real deltas.
//   scflow_report validate <file.json|jsonl> [...]
//       Checks each file is well-formed JSON (JSONL: every line) and, for
//       ledgers, that the schema/shape parses.  Exit 0 iff all pass.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/ledger.hpp"

namespace {

using scflow::obs::LedgerDiff;
using scflow::obs::LoadedLedger;

int usage() {
  std::fprintf(stderr,
               "usage: scflow_report show <ledger.jsonl> [--phase P] [--design D] [--hist]\n"
               "       scflow_report diff <a.jsonl> <b.jsonl> [--show-timing]\n"
               "       scflow_report validate <file.json|jsonl> [...]\n");
  return 2;
}

bool load_or_die(const std::string& path, LoadedLedger* out) {
  std::string error;
  if (!scflow::obs::load_ledger(path, out, &error)) {
    std::fprintf(stderr, "scflow_report: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

// Service-dashboard rendering for streaming-SRC ledgers: "serve.run"
// entries become a headline line each and "serve.ratio" entries a
// per-rate-pair utilisation table.  Printed after the generic per-phase
// tables whenever a ledger carries serve.* entries, so
// `scflow_report show serve.jsonl` doubles as the service dashboard.
void print_serve_dashboard(const LoadedLedger& ledger) {
  bool any = false;
  for (const auto& e : ledger.entries)
    if (e.phase == "serve.run" || e.phase == "serve.ratio" ||
        e.phase == "serve.resilience")
      any = true;
  if (!any) return;

  std::printf("\nstreaming SRC service:\n");
  for (const auto& e : ledger.entries) {
    if (e.phase != "serve.run") continue;
    const double ms = static_cast<double>(e.duration_ns) / 1e6;
    std::printf(
        "  run %-12s %llu sessions over %llu ratios, %llu samples in -> "
        "%llu out, %llu steps, %llu dispatches, busy %.1f ms, "
        "starve max %llu\n",
        e.design.c_str(),
        static_cast<unsigned long long>(e.counter("sessions_opened")),
        static_cast<unsigned long long>(e.counter("ratios")),
        static_cast<unsigned long long>(e.counter("samples_in")),
        static_cast<unsigned long long>(e.counter("samples_out")),
        static_cast<unsigned long long>(e.counter("steps")),
        static_cast<unsigned long long>(e.counter("dispatches")), ms,
        static_cast<unsigned long long>(e.counter("starve_streak_max")));
  }
  bool header = false;
  for (const auto& e : ledger.entries) {
    if (e.phase != "serve.ratio") continue;
    if (!header) {
      std::printf("  %-16s %9s %12s %10s %12s %12s\n", "ratio", "sessions",
                  "samples_in", "rejected", "samples_out", "pulled");
      header = true;
    }
    std::printf("  %-16s %9llu %12llu %10llu %12llu %12llu\n",
                e.design.c_str(),
                static_cast<unsigned long long>(e.counter("sessions")),
                static_cast<unsigned long long>(e.counter("samples_in")),
                static_cast<unsigned long long>(e.counter("push_rejected")),
                static_cast<unsigned long long>(e.counter("samples_out")),
                static_cast<unsigned long long>(e.counter("samples_pulled")));
  }
  for (const auto& e : ledger.entries) {
    if (e.phase != "serve.resilience") continue;
    std::printf(
        "  resilience %-8s evicted %llu idle + %llu lifetime (%llu drained, "
        "%llu unpulled), shed %llu (%llu in / %llu out dropped), "
        "rejected %llu overload + %llu bad-rate\n",
        e.design.c_str(),
        static_cast<unsigned long long>(e.counter("evict_idle")),
        static_cast<unsigned long long>(e.counter("evict_lifetime")),
        static_cast<unsigned long long>(e.counter("evict_drained")),
        static_cast<unsigned long long>(e.counter("evict_unpulled")),
        static_cast<unsigned long long>(e.counter("shed_sessions")),
        static_cast<unsigned long long>(e.counter("shed_dropped_inputs")),
        static_cast<unsigned long long>(e.counter("shed_dropped_outputs")),
        static_cast<unsigned long long>(e.counter("admit_overloaded")),
        static_cast<unsigned long long>(e.counter("admit_rate_unsupported")));
    const unsigned long long chaos_total =
        e.counter("chaos_stalls") + e.counter("chaos_disconnects") +
        e.counter("chaos_oversized_pushes") + e.counter("chaos_ring_storms") +
        e.counter("chaos_alloc_failures");
    if (chaos_total > 0) {
      std::printf(
          "  chaos      %-8s %llu faults: %llu stalls, %llu disconnects, "
          "%llu oversized pushes, %llu ring storms, %llu alloc failures\n",
          e.design.c_str(), chaos_total,
          static_cast<unsigned long long>(e.counter("chaos_stalls")),
          static_cast<unsigned long long>(e.counter("chaos_disconnects")),
          static_cast<unsigned long long>(e.counter("chaos_oversized_pushes")),
          static_cast<unsigned long long>(e.counter("chaos_ring_storms")),
          static_cast<unsigned long long>(e.counter("chaos_alloc_failures")));
    }
    if (e.counter("snapshot_saves") > 0 || e.counter("snapshot_restores") > 0) {
      std::printf(
          "  snapshot   %-8s %llu saves, %llu restores, last image %llu bytes\n",
          e.design.c_str(),
          static_cast<unsigned long long>(e.counter("snapshot_saves")),
          static_cast<unsigned long long>(e.counter("snapshot_restores")),
          static_cast<unsigned long long>(e.counter("snapshot_bytes_last")));
    }
  }
}

int cmd_show(const std::vector<std::string>& args) {
  std::string path;
  std::string phase;
  std::string design;
  bool hist = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--phase" && i + 1 < args.size()) phase = args[++i];
    else if (args[i] == "--design" && i + 1 < args.size()) design = args[++i];
    else if (args[i] == "--hist") hist = true;
    else if (path.empty()) path = args[i];
    else return usage();
  }
  if (path.empty()) return usage();
  LoadedLedger ledger;
  if (!load_or_die(path, &ledger)) return 1;
  if (!phase.empty() || !design.empty()) {
    std::vector<scflow::obs::LedgerEntry> kept;
    for (auto& e : ledger.entries) {
      if (!phase.empty() && e.phase != phase) continue;
      if (!design.empty() && e.design != design) continue;
      kept.push_back(std::move(e));
    }
    ledger.entries = std::move(kept);
  }
  std::fputs(scflow::obs::format_ledger_table(ledger).c_str(), stdout);
  print_serve_dashboard(ledger);
  if (hist) {
    const std::string h = scflow::obs::format_ledger_histograms(ledger);
    if (!h.empty()) {
      std::fputs("\nhistograms:\n", stdout);
      std::fputs(h.c_str(), stdout);
    }
  }
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  bool show_timing = false;
  for (const std::string& a : args) {
    if (a == "--show-timing") show_timing = true;
    else paths.push_back(a);
  }
  if (paths.size() != 2) return usage();
  LoadedLedger a;
  LoadedLedger b;
  if (!load_or_die(paths[0], &a) || !load_or_die(paths[1], &b)) return 1;
  LedgerDiff diff = scflow::obs::diff_ledgers(a, b);
  if (!show_timing) diff.timing_only.clear();
  const std::string text = scflow::obs::format_diff(diff);
  if (!text.empty()) std::fputs(text.c_str(), stdout);
  if (diff.clean()) {
    std::printf("ledgers match: %zu vs %zu entries, 0 metric deltas (timing excluded)\n",
                a.entries.size(), b.entries.size());
    return 0;
  }
  std::printf("ledgers differ: %zu entry mismatches, %zu metric deltas\n",
              diff.only_a.size() + diff.only_b.size(), diff.deltas.size());
  return 1;
}

/// Validates one file: every line (JSONL) or the whole body (JSON) must
/// parse; files whose first line carries a scflow-ledger schema are also
/// structurally loaded.
bool validate_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "scflow_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::string error;
  if (text.find("\"schema\":\"scflow-ledger-") != std::string::npos) {
    // Lenient load: a truncated tail or bit-flipped line must not hide
    // the intact entries — report each damaged line, then fail the file.
    LoadedLedger ledger;
    if (!scflow::obs::load_ledger(path, &ledger, &error, /*skip_malformed=*/true)) {
      std::fprintf(stderr, "scflow_report: %s: %s\n", path.c_str(), error.c_str());
      return false;
    }
    for (const auto& m : ledger.malformed) {
      if (m.line_no == 0) {
        std::fprintf(stderr, "scflow_report: %s: %s\n", path.c_str(), m.error.c_str());
      } else {
        std::fprintf(stderr, "scflow_report: %s:%zu: skipped malformed line: %s\n",
                     path.c_str(), m.line_no, m.error.c_str());
      }
    }
    if (!ledger.malformed.empty()) {
      std::fprintf(stderr,
                   "scflow_report: %s: %zu malformed line(s), %zu entries intact\n",
                   path.c_str(), ledger.malformed.size(), ledger.entries.size());
      return false;
    }
    std::printf("%s: ok (ledger, %zu entries)\n", path.c_str(), ledger.entries.size());
    return true;
  }
  if (!scflow::obs::json_validate(text, &error)) {
    std::fprintf(stderr, "scflow_report: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  std::printf("%s: ok (json)\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "show") return cmd_show(args);
  if (cmd == "diff") return cmd_diff(args);
  if (cmd == "validate") {
    if (args.empty()) return usage();
    bool ok = true;
    for (const std::string& p : args) ok = validate_file(p) && ok;
    return ok ? 0 : 1;
  }
  return usage();
}
