// Gate-level refinement verification: the synthesised SRC netlists (from
// both the RTL flow and the behavioural flow) must match the quantised
// golden model bit-exactly, and the checking memory model must expose the
// injected golden-model bug — the paper's §4.7 discovery story.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/run.hpp"
#include "dsp/stimulus.hpp"
#include "hdlsim/src_gate_sim.hpp"
#include "hls/src_beh.hpp"
#include "netlist/lower.hpp"
#include "netlist/opt.hpp"
#include "rtl/passes.hpp"
#include "rtl/src_design.hpp"

namespace scflow::hdlsim {
namespace {

using dsp::SrcMode;
using P = dsp::SrcParams;

std::vector<dsp::SrcEvent> schedule(SrcMode mode, std::size_t n, std::uint64_t seed) {
  const auto inputs = dsp::make_noise_stimulus(n, seed);
  return dsp::make_schedule(inputs, P::input_period_ps(mode), n, P::output_period_ps(mode));
}

std::vector<dsp::StereoSample> golden(SrcMode mode, const std::vector<dsp::SrcEvent>& ev,
                                      bool bug = false) {
  model::RunOptions opt;
  opt.quantized_time = true;
  opt.inject_corner_bug = bug;
  return model::run_level(model::RefinementLevel::kAlgorithmicCpp, mode, ev, opt).outputs;
}

nl::Netlist synthesise(const rtl::Design& d) {
  rtl::PassOptions popt;
  const rtl::Design optimised = rtl::run_passes(d, popt);
  nl::Netlist gates = nl::lower_to_gates(optimised, {});
  gates = nl::optimize_gates(gates);
  nl::insert_scan_chain(gates);
  return gates;
}

TEST(GateLevelSrc, RtlFlowNetlistMatchesGolden) {
  const auto ev = schedule(SrcMode::k44_1To48, 60, 5);
  const auto want = golden(SrcMode::k44_1To48, ev);
  const auto gates = synthesise(rtl::build_src_design(rtl::rtl_opt_config()));
  const auto got = run_src_netlist(gates, SrcMode::k44_1To48, ev);
  ASSERT_EQ(got.outputs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(got.outputs[i], want[i]) << "output " << i;
}

TEST(GateLevelSrc, BehaviouralFlowNetlistMatchesGolden) {
  const auto ev = schedule(SrcMode::k44_1To48, 60, 6);
  const auto want = golden(SrcMode::k44_1To48, ev);
  const auto gates = synthesise(hls::build_beh_src_design(hls::beh_opt_config()));
  const auto got = run_src_netlist(gates, SrcMode::k44_1To48, ev);
  ASSERT_EQ(got.outputs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(got.outputs[i], want[i]) << "output " << i;
}

TEST(GateLevelSrc, VhdlReferenceNetlistMatchesGolden) {
  const auto ev = schedule(SrcMode::k48To48, 60, 7);
  const auto want = golden(SrcMode::k48To48, ev);
  const auto gates = synthesise(rtl::build_src_design(rtl::vhdl_ref_config()));
  const auto got = run_src_netlist(gates, SrcMode::k48To48, ev);
  ASSERT_EQ(got.outputs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) ASSERT_EQ(got.outputs[i], want[i]);
}

TEST(GateLevelSrc, CleanDesignPassesCheckingMemory) {
  const auto ev = schedule(SrcMode::k48To48, 60, 8);
  const auto gates = synthesise(rtl::build_src_design(rtl::rtl_opt_config()));
  GateSim::Options opt;
  opt.check_ram = true;
  const auto got = run_src_netlist(gates, SrcMode::k48To48, ev, opt);
  EXPECT_EQ(got.ram_violations.count, 0u)
      << got.ram_violations.first_kind << " @ " << got.ram_violations.first_address;
}

TEST(GateLevelSrc, CheckingMemoryExposesTheGoldenModelBug) {
  // The paper's §4.7 anecdote, reproduced end to end: the golden-model bug
  // (one extra sample of read lag in the mu == 0 corner) was refined all
  // the way to gates; ordinary simulation still produces plausible audio,
  // but the generated memory model with address checking flags the access
  // once the depth sits at the overrun cap.
  //
  // Drive it into the corner: the consumer stalls for a while (device
  // reset), the buffer overruns to the cap — where the read position is
  // exactly sample-aligned (mu == 0) — and the first resumed output reads
  // one sample past the validity window.
  rtl::SrcArchConfig cfg = rtl::rtl_opt_config();
  cfg.inject_corner_bug = true;
  const auto gates = synthesise(rtl::build_src_design(cfg));

  const auto inputs = dsp::make_noise_stimulus(300, 9);
  std::vector<dsp::SrcEvent> ev;
  for (std::size_t i = 0; i < inputs.size(); ++i)
    ev.push_back({(i + 1) * P::kPeriod48kPs, true, inputs[i]});
  for (std::size_t j = 0; j < 220; ++j) {
    std::uint64_t slot = j < 40 ? j : j + 60;  // 60-period consumer stall
    ev.push_back({(slot + 1) * P::kPeriod48kPs + 777, false, {}});
  }
  std::stable_sort(ev.begin(), ev.end(), [](const dsp::SrcEvent& a, const dsp::SrcEvent& b) {
    return a.t_ps < b.t_ps;
  });

  GateSim::Options opt;
  opt.check_ram = true;
  const auto got = run_src_netlist(gates, SrcMode::k48To48, ev, opt);
  EXPECT_GT(got.ram_violations.count, 0u) << "checking memory should flag the bug";
  EXPECT_EQ(got.ram_violations.first_kind, "stale");

  // Control: the clean design under the same stress stays clean, and an
  // ordinary (non-checking) simulation of the bugged design reports
  // nothing — the paper's point about the bug surviving normal simulation.
  const auto clean = synthesise(rtl::build_src_design(rtl::rtl_opt_config()));
  const auto ok = run_src_netlist(clean, SrcMode::k48To48, ev, opt);
  EXPECT_EQ(ok.ram_violations.count, 0u);
  const auto unchecked = run_src_netlist(gates, SrcMode::k48To48, ev);
  EXPECT_EQ(unchecked.ram_violations.count, 0u);
  EXPECT_EQ(unchecked.outputs.size(), got.outputs.size());
}

TEST(GateLevelSrc, GateActivityIsReported) {
  const auto ev = schedule(SrcMode::k44_1To48, 40, 10);
  const auto gates = synthesise(rtl::build_src_design(rtl::rtl_opt_config()));
  const auto got = run_src_netlist(gates, SrcMode::k44_1To48, ev);
  EXPECT_GT(got.gate_evaluations(), got.cycles);  // multiple gates per cycle
}

TEST(SimCounters, TracksTheEventEngineExactly) {
  // a --XOR-- n1 --INV-- n2 = "out"; n1 also feeds a DFF driving "q".
  // Small enough that every counter value is predictable by hand, which
  // pins down the semantics: a dirty push is a 0->1 transition of a unit's
  // dirty bit, an evaluation is a consumed bit, and construction marks
  // every unit once.
  nl::Netlist n("counters");
  const nl::NetId a = n.new_net();
  const nl::NetId b = n.new_net();
  n.add_input("a", {a});
  n.add_input("b", {b});
  const nl::NetId n1 = n.add_cell(nl::CellType::kXor2, {a, b});
  const nl::NetId n2 = n.add_cell(nl::CellType::kInv, {n1});
  const nl::NetId q = n.add_cell(nl::CellType::kDff, {n1});
  n.add_output("out", {n2});
  n.add_output("q", {q});

  GateSim sim(n);
  // Construction queues both combinational units (the flop is tracked in
  // its own bitmap, not the unit queue).
  EXPECT_EQ(sim.counters().evaluations, 0u);
  EXPECT_EQ(sim.counters().dirty_pushes, 2u);
  EXPECT_EQ(sim.counters().peak_queue_depth, 2u);

  sim.set_input("a", 0);
  sim.set_input("b", 0);
  // XOR: X->0 at level 0, then INV once at level 1.  The level-padded
  // sweep evaluates each unit at most once per settle: the XOR's re-mark
  // of the INV lands in the (not yet consumed) level-1 word, where the
  // INV's construction-time bit is already set — no second push, no
  // re-evaluation.  evaluations therefore tracks dirty_pushes exactly.
  sim.settle();
  EXPECT_EQ(sim.counters().evaluations, 2u);
  EXPECT_EQ(sim.counters().dirty_pushes, 2u);
  EXPECT_EQ(sim.counters().settle_calls, 1u);
  EXPECT_EQ(sim.counters().settle_passes, 1u);

  sim.settle();  // nothing queued: a call, but not a working pass
  EXPECT_EQ(sim.counters().settle_calls, 2u);
  EXPECT_EQ(sim.counters().settle_passes, 1u);
  EXPECT_EQ(sim.counters().evaluations, 2u);

  sim.set_input("a", 1);  // queues XOR; its change then queues INV
  sim.settle();
  EXPECT_EQ(sim.counters().evaluations, 4u);
  EXPECT_EQ(sim.counters().dirty_pushes, 4u);
  EXPECT_EQ(sim.counters().peak_queue_depth, 2u);
  EXPECT_EQ(sim.output("out"), 0u);

  sim.step();  // commits q = n1 = 1
  EXPECT_EQ(sim.output("q"), 1u);
  EXPECT_EQ(sim.counters().steady_state_allocs, 0u);
  // Every push was consumed: queue accounting must balance.
  EXPECT_EQ(sim.counters().evaluations, sim.counters().dirty_pushes);
}

TEST(SimCounters, RamWritesForceReadPortRereads) {
  const auto ev = schedule(SrcMode::k44_1To48, 40, 11);
  const auto gates = synthesise(rtl::build_src_design(rtl::rtl_opt_config()));
  const auto got = run_src_netlist(gates, SrcMode::k44_1To48, ev);
  EXPECT_GT(got.counters.ram_rereads, 0u);  // the SRC buffer RAM is written
  EXPECT_GT(got.counters.peak_queue_depth, 0u);
  EXPECT_EQ(got.counters.steady_state_allocs, 0u);
  // run_src_netlist performs one pre-loop settle to read the initial
  // out_valid, so calls lead cycles by exactly one.
  EXPECT_EQ(got.counters.settle_calls, got.cycles + 1);
}

TEST(GateSimErrors, CyclicNetlistThrowsNamingTheOffendingCell) {
  // Two inverters in a combinational loop (no flop in the cycle).  The
  // simulator must refuse at construction with a message that names the
  // design and one cell on the cycle — not hang in settle().
  nl::Netlist n("looped");
  const nl::NetId a = n.new_net();
  n.add_input("a", {a});
  const std::size_t first = n.cells().size();
  const nl::NetId x = n.add_cell(nl::CellType::kInv, {a});
  const nl::NetId y = n.add_cell(nl::CellType::kInv, {x});
  n.cells_mut()[first].inputs[0] = y;  // close the loop
  n.add_output("o", {x});
  try {
    GateSim sim(n);
    FAIL() << "expected logic_error for the combinational cycle";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("looped"), std::string::npos) << what;
    EXPECT_NE(what.find("combinational cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("INV"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace scflow::hdlsim
