// Tests for the Fig. 9 machinery: the interpreted-testbench VM ("native
// VHDL testbench") and the cosim bridge ("compiled SystemC testbench"),
// each driving interpreted-RTL and gate-level DUTs — all producing the
// golden output sequence.
#include <gtest/gtest.h>

#include "core/run.hpp"
#include "cosim/bridge.hpp"
#include "dsp/stimulus.hpp"
#include "flow/synthesis_flow.hpp"
#include "hdlsim/dut.hpp"
#include "hdlsim/testbench_vm.hpp"
#include "hls/src_beh.hpp"
#include "rtl/src_design.hpp"

namespace scflow {
namespace {

using dsp::SrcMode;
using P = dsp::SrcParams;

std::vector<dsp::SrcEvent> schedule(SrcMode mode, std::size_t n, std::uint64_t seed) {
  const auto inputs = dsp::make_noise_stimulus(n, seed);
  return dsp::make_schedule(inputs, P::input_period_ps(mode), n, P::output_period_ps(mode));
}

std::vector<dsp::StereoSample> golden(SrcMode mode, const std::vector<dsp::SrcEvent>& ev) {
  model::RunOptions opt;
  opt.quantized_time = true;
  return model::run_level(model::RefinementLevel::kAlgorithmicCpp, mode, ev, opt).outputs;
}

TEST(TestbenchVm, DrivesRtlDutToGoldenOutputs) {
  const auto ev = schedule(SrcMode::k44_1To48, 120, 31);
  const auto want = golden(SrcMode::k44_1To48, ev);
  hdlsim::RtlDut dut(rtl::build_src_design(rtl::rtl_opt_config()));
  const auto prog = hdlsim::build_src_testbench(ev, SrcMode::k44_1To48);
  const auto got = hdlsim::run_testbench_vm(dut, prog);
  ASSERT_EQ(got.outputs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(got.outputs[i], want[i]) << "output " << i;
  EXPECT_GT(got.instructions_executed, got.cycles);  // per-clock monitor
  EXPECT_GT(got.dut_work_units(), 0u);
}

TEST(TestbenchVm, DrivesGateDutToGoldenOutputs) {
  const auto ev = schedule(SrcMode::k44_1To48, 50, 32);
  const auto want = golden(SrcMode::k44_1To48, ev);
  const auto gates = flow::synthesize_to_gates(rtl::build_src_design(rtl::rtl_opt_config()));
  hdlsim::GateDut dut(gates);
  dut.set_input("scan_in", 0);
  dut.set_input("scan_enable", 0);
  const auto got = hdlsim::run_testbench_vm(dut, hdlsim::build_src_testbench(ev, SrcMode::k44_1To48));
  ASSERT_EQ(got.outputs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) ASSERT_EQ(got.outputs[i], want[i]);
}

TEST(CosimBridge, RtlDutMatchesGolden) {
  const auto ev = schedule(SrcMode::k44_1To48, 120, 33);
  const auto want = golden(SrcMode::k44_1To48, ev);
  hdlsim::RtlDut dut(rtl::build_src_design(rtl::rtl_opt_config()));
  const auto got = cosim::run_cosim(dut, SrcMode::k44_1To48, ev);
  ASSERT_EQ(got.outputs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(got.outputs[i], want[i]) << "output " << i;
  EXPECT_LT(got.syncs, got.cycles);  // event-synchronised, not lock-step
  EXPECT_GT(got.syncs, 200u);        // one batch per stimulus event
  // Event synchronisation: kernel work scales with events, not cycles.
  EXPECT_LT(got.kernel_stats.process_activations, got.cycles / 10);
}

TEST(CosimBridge, GateDutFromBehaviouralFlowMatchesGolden) {
  const auto ev = schedule(SrcMode::k44_1To48, 50, 34);
  const auto want = golden(SrcMode::k44_1To48, ev);
  const auto gates = flow::synthesize_to_gates(hls::build_beh_src_design(hls::beh_opt_config()));
  hdlsim::GateDut dut(gates);
  dut.set_input("scan_in", 0);
  dut.set_input("scan_enable", 0);
  const auto got = cosim::run_cosim(dut, SrcMode::k44_1To48, ev);
  ASSERT_EQ(got.outputs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) ASSERT_EQ(got.outputs[i], want[i]);
}

TEST(Fig9Machinery, NativeAndCosimAgreeOnOutputs) {
  const auto ev = schedule(SrcMode::k48To44_1, 120, 35);
  const rtl::Design d = rtl::build_src_design(rtl::rtl_opt_config());
  hdlsim::RtlDut native_dut(d);
  const auto native = hdlsim::run_testbench_vm(
      native_dut, hdlsim::build_src_testbench(ev, SrcMode::k48To44_1));
  hdlsim::RtlDut cosim_dut(d);
  const auto cs = cosim::run_cosim(cosim_dut, SrcMode::k48To44_1, ev);
  ASSERT_EQ(native.outputs.size(), cs.outputs.size());
  for (std::size_t i = 0; i < native.outputs.size(); ++i)
    ASSERT_EQ(native.outputs[i], cs.outputs[i]);
  // Both simulate the same number of DUT cycles (same interpreted load).
  EXPECT_NEAR(static_cast<double>(native.dut_work_units()),
              static_cast<double>(cs.dut_work_units()),
              0.01 * static_cast<double>(native.dut_work_units()));
}

}  // namespace
}  // namespace scflow
