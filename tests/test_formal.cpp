// Unit suite for the formal subsystem: AIG structural hashing, the CDCL
// SAT solver (unit propagation, assumption cores, conflict learning,
// random 3-SAT differential vs brute force), and the CEC engine
// (opt/scan/lowering equivalence, injected-bug counterexamples with
// GateSim replay, and a netlist fuzz shard).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>

#include "formal/aig.hpp"
#include "formal/bitblast.hpp"
#include "formal/cec.hpp"
#include "formal/sat.hpp"
#include "netlist/lower.hpp"
#include "netlist/opt.hpp"
#include "obs/registry.hpp"
#include "rtl/builder.hpp"

namespace scflow::formal {
namespace {

// --------------------------------------------------------------------------
// AIG
// --------------------------------------------------------------------------

TEST(AigTest, ConstantFoldsAndHashing) {
  Aig g;
  const AigLit a = g.add_input();
  const AigLit b = g.add_input();
  EXPECT_EQ(g.and2(a, kAigFalse), kAigFalse);
  EXPECT_EQ(g.and2(kAigTrue, b), b);
  EXPECT_EQ(g.and2(a, a), a);
  EXPECT_EQ(g.and2(a, aig_not(a)), kAigFalse);
  const AigLit ab = g.and2(a, b);
  EXPECT_EQ(g.and2(b, a), ab);  // canonical fanin order shares the node
  const std::size_t before = g.node_count();
  EXPECT_EQ(g.and2(a, b), ab);
  EXPECT_EQ(g.node_count(), before);
  EXPECT_EQ(g.xor2(a, a), kAigFalse);
  EXPECT_EQ(g.xnor2(a, a), kAigTrue);
  EXPECT_EQ(g.ite(kAigFalse, a, b), b);
  EXPECT_EQ(g.ite(kAigTrue, a, b), a);
}

TEST(AigTest, SimulateMatchesSemantics) {
  Aig g;
  const AigLit a = g.add_input();
  const AigLit b = g.add_input();
  const AigLit x = g.xor2(a, b);
  std::vector<std::uint64_t> in = {0b1100u, 0b1010u};
  std::vector<std::uint64_t> words;
  g.simulate(in, words);
  const std::uint64_t xw = words[aig_node(x)] ^ (aig_phase(x) ? ~0ull : 0ull);
  EXPECT_EQ(xw & 0xfu, 0b0110u);
}

// --------------------------------------------------------------------------
// SAT solver
// --------------------------------------------------------------------------

TEST(SatTest, UnitPropagationChains) {
  sat::Solver s;
  const sat::Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause({sat::mk_lit(a, true), sat::mk_lit(b)});   // a -> b
  s.add_clause({sat::mk_lit(b, true), sat::mk_lit(c)});   // b -> c
  ASSERT_EQ(s.solve({sat::mk_lit(a)}), sat::Result::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.model_value(c));
  EXPECT_GE(s.stats().propagations, 2u);
}

TEST(SatTest, RootLevelUnsat) {
  sat::Solver s;
  const sat::Var x = s.new_var();
  s.add_clause({sat::mk_lit(x)});
  EXPECT_FALSE(s.add_clause({sat::mk_lit(x, true)}));
  EXPECT_EQ(s.solve(), sat::Result::kUnsat);
  EXPECT_FALSE(s.okay());
}

TEST(SatTest, FailedAssumptionCore) {
  sat::Solver s;
  const sat::Var x = s.new_var(), y = s.new_var();
  s.add_clause({sat::mk_lit(x)});
  s.add_clause({sat::mk_lit(x, true), sat::mk_lit(y)});  // x -> y
  ASSERT_EQ(s.solve({sat::mk_lit(y, true)}), sat::Result::kUnsat);
  ASSERT_EQ(s.failed_assumptions().size(), 1u);
  EXPECT_EQ(s.failed_assumptions()[0], sat::mk_lit(y, true));
  EXPECT_TRUE(s.okay());  // still usable without the assumption
  EXPECT_EQ(s.solve(), sat::Result::kSat);
}

TEST(SatTest, CoreExcludesIrrelevantAssumptions) {
  sat::Solver s;
  const sat::Var a = s.new_var(), b = s.new_var(), d = s.new_var();
  s.add_clause({sat::mk_lit(a, true), sat::mk_lit(b, true)});  // ¬a ∨ ¬b
  ASSERT_EQ(s.solve({sat::mk_lit(d), sat::mk_lit(a), sat::mk_lit(b)}),
            sat::Result::kUnsat);
  for (const sat::Lit l : s.failed_assumptions()) {
    EXPECT_NE(sat::lit_var(l), d) << "independent assumption in core";
  }
  EXPECT_GE(s.failed_assumptions().size(), 2u);
}

/// Pigeonhole principle: @p pigeons into @p holes, one clause per pigeon
/// ("sits somewhere") plus pairwise exclusion per hole.  UNSAT whenever
/// pigeons > holes, and requires genuine conflict learning.
void add_pigeonhole(sat::Solver& s, int pigeons, int holes) {
  std::vector<std::vector<sat::Var>> v(static_cast<std::size_t>(pigeons));
  for (auto& row : v) {
    row.resize(static_cast<std::size_t>(holes));
    for (auto& var : row) var = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> c;
    for (int h = 0; h < holes; ++h)
      c.push_back(sat::mk_lit(v[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    s.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause({sat::mk_lit(v[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)], true),
                      sat::mk_lit(v[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)], true)});
}

TEST(SatTest, PigeonholeUnsatWithLearning) {
  sat::Solver s;
  add_pigeonhole(s, 5, 4);
  EXPECT_EQ(s.solve(), sat::Result::kUnsat);
  EXPECT_GT(s.stats().learned_clauses, 0u);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(SatTest, ConflictBudgetReturnsUnknown) {
  sat::Solver s;
  add_pigeonhole(s, 7, 6);
  EXPECT_EQ(s.solve({}, 1), sat::Result::kUnknown);
  EXPECT_TRUE(s.okay());
  EXPECT_EQ(s.solve(), sat::Result::kUnsat);  // solvable once unbounded
}

TEST(SatTest, RandomThreeSatDifferentialVsBruteForce) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int inst = 0; inst < 60; ++inst) {
    const int n_vars = 4 + static_cast<int>(rng() % 11);  // 4..14
    const int n_clauses = static_cast<int>(static_cast<double>(n_vars) * 4.3);
    std::vector<std::vector<sat::Lit>> clauses;
    for (int c = 0; c < n_clauses; ++c) {
      std::vector<sat::Lit> cl;
      for (int k = 0; k < 3; ++k) {
        const auto v = static_cast<sat::Var>(rng() % static_cast<std::uint64_t>(n_vars));
        cl.push_back(sat::mk_lit(v, (rng() & 1) != 0));
      }
      clauses.push_back(std::move(cl));
    }
    // Brute force.
    bool brute_sat = false;
    for (std::uint64_t m = 0; m < (1ull << n_vars) && !brute_sat; ++m) {
      bool all = true;
      for (const auto& cl : clauses) {
        bool any = false;
        for (const sat::Lit l : cl)
          any |= (((m >> sat::lit_var(l)) & 1u) != 0) != sat::lit_sign(l);
        if (!any) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    // Solver.
    sat::Solver s;
    for (int v = 0; v < n_vars; ++v) (void)s.new_var();
    bool ok = true;
    for (const auto& cl : clauses) ok = s.add_clause(cl) && ok;
    const sat::Result r = ok ? s.solve() : sat::Result::kUnsat;
    ASSERT_EQ(r == sat::Result::kSat, brute_sat) << "instance " << inst;
    if (r == sat::Result::kSat) {
      // The model must actually satisfy every clause.
      for (const auto& cl : clauses) {
        bool any = false;
        for (const sat::Lit l : cl)
          any |= s.model_value(sat::lit_var(l)) != sat::lit_sign(l);
        EXPECT_TRUE(any) << "instance " << inst;
      }
    }
  }
}

// --------------------------------------------------------------------------
// CEC
// --------------------------------------------------------------------------

rtl::Design small_design() {
  rtl::DesignBuilder b("small");
  auto x = b.input("x", 8);
  auto y = b.input("y", 8);
  auto acc = b.reg("acc", 12, 3);
  b.assign_always(acc, b.add(acc.q, b.sext(b.mul(x, y, 12), 12)));
  b.output("acc", acc.q);
  b.output("lt", b.lt_s(x, y));
  return b.finalise();
}

TEST(CecTest, OptimisedNetlistEquivalentToUnoptimised) {
  const rtl::Design d = small_design();
  const nl::Netlist gates = nl::lower_to_gates(d, {});
  const nl::Netlist opt = nl::optimize_gates(gates);
  obs::Registry reg;
  CecOptions o;
  o.metric_prefix = "t.cec";
  const CecResult res = check_equivalence(gates, opt, &reg, o);
  EXPECT_EQ(res.status, CecStatus::kEquivalent);
  EXPECT_GT(res.stats.compare_bits, 0u);
  EXPECT_EQ(reg.gauge("t.cec.equivalent"), 1.0);
  EXPECT_EQ(reg.counter("t.cec.counterexamples"), 0u);
  EXPECT_NE(reg.timer("t.cec"), nullptr);
}

TEST(CecTest, RtlVsLoweredNetlistIsStructurallyFree) {
  const rtl::Design d = small_design();
  const nl::Netlist gates = nl::lower_to_gates(d, {});
  const CecResult res = check_rtl_vs_netlist(d, gates);
  EXPECT_EQ(res.status, CecStatus::kEquivalent);
  // The RTL bitblaster mirrors the lowerer gate-for-gate, so hashing
  // collapses the whole miter without a single SAT call.
  EXPECT_EQ(res.stats.sat_calls, 0u);
  EXPECT_EQ(res.stats.bits_structural, res.stats.compare_bits);
}

TEST(CecTest, RtlVsOptimisedNetlist) {
  const rtl::Design d = small_design();
  nl::Netlist gates = nl::lower_to_gates(d, {});
  gates = nl::optimize_gates(gates);
  const CecResult res = check_rtl_vs_netlist(d, gates);
  EXPECT_EQ(res.status, CecStatus::kEquivalent);
}

TEST(CecTest, ScanInsertionEquivalentModuloScanPorts) {
  const rtl::Design d = small_design();
  const nl::Netlist pre = nl::optimize_gates(nl::lower_to_gates(d, {}));
  nl::Netlist post = pre;
  nl::insert_scan_chain(post);
  const CecResult res = check_equivalence(pre, post, nullptr, CecOptions::scan_modulo());
  EXPECT_EQ(res.status, CecStatus::kEquivalent);
}

/// Flips the first 2-input AND (with distinct inputs) into an OR — the
/// ISSUE's canonical injected miscompile.
bool inject_and_to_or(nl::Netlist& n) {
  for (nl::Cell& c : n.cells_mut()) {
    if (c.type == nl::CellType::kAnd2 && c.inputs[0] != c.inputs[1]) {
      c.type = nl::CellType::kOr2;
      return true;
    }
  }
  return false;
}

TEST(CecTest, InjectedBugYieldsReplayedCounterexample) {
  rtl::DesignBuilder b("bug");
  auto x = b.input("x", 6);
  auto y = b.input("y", 6);
  b.output("o", b.and_(x, y));
  const nl::Netlist good = nl::lower_to_gates(b.finalise(), {});
  nl::Netlist bad = good;
  ASSERT_TRUE(inject_and_to_or(bad));

  const CecResult res = check_equivalence(good, bad);
  ASSERT_EQ(res.status, CecStatus::kNotEquivalent);
  ASSERT_TRUE(res.cex.has_value());
  EXPECT_FALSE(res.cex->divergent_output.empty());
  EXPECT_NE(res.cex->value_a, res.cex->value_b);
  // The counterexample must reproduce end-to-end through GateSim.
  EXPECT_TRUE(res.cex->replayed);
  EXPECT_TRUE(res.cex->replay_confirmed);
}

TEST(CecTest, InjectedSequentialBugCaughtInNextStateCone) {
  const rtl::Design d = small_design();
  const nl::Netlist good = nl::optimize_gates(nl::lower_to_gates(d, {}));
  nl::Netlist bad = good;
  ASSERT_TRUE(inject_and_to_or(bad));
  const CecResult res = check_equivalence(good, bad);
  ASSERT_EQ(res.status, CecStatus::kNotEquivalent);
  ASSERT_TRUE(res.cex.has_value());
  EXPECT_TRUE(res.cex->replay_confirmed);
}

TEST(CecTest, AssertEquivalentThrowsWithDivergentNetAndVcd) {
  rtl::DesignBuilder b("thr");
  auto x = b.input("x", 4);
  auto y = b.input("y", 4);
  b.output("prod", b.mul(x, y, 8));
  const nl::Netlist good = nl::lower_to_gates(b.finalise(), {});
  nl::Netlist bad = good;
  ASSERT_TRUE(inject_and_to_or(bad));

  const std::string vcd_path = "cec_cex_test.vcd";
  std::remove(vcd_path.c_str());
  try {
    assert_equivalent(good, bad, nullptr, {}, vcd_path);
    FAIL() << "expected EquivalenceError";
  } catch (const EquivalenceError& e) {
    const std::string what = e.what();
    ASSERT_TRUE(e.result.cex.has_value());
    EXPECT_NE(what.find(e.result.cex->divergent_output), std::string::npos) << what;
    EXPECT_NE(what.find(vcd_path), std::string::npos) << what;
  }
  std::ifstream vcd(vcd_path);
  ASSERT_TRUE(vcd.good());
  std::string contents((std::istreambuf_iterator<char>(vcd)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(contents.find("$var"), std::string::npos);
  // The dump must name the divergent output (both sides, VCD-sanitised)
  // and carry the counterexample input vectors — a waveform that cannot be
  // traced back to the offending net is useless for triage.
  EXPECT_NE(contents.find("a_prod"), std::string::npos) << contents;
  EXPECT_NE(contents.find("b_prod"), std::string::npos) << contents;
  EXPECT_NE(contents.find(" x "), std::string::npos) << contents;
  EXPECT_NE(contents.find(" y "), std::string::npos) << contents;
  std::remove(vcd_path.c_str());
}

TEST(CecTest, CombViewExposesStateAndNextPorts) {
  const rtl::Design d = small_design();
  const nl::Netlist gates = nl::lower_to_gates(d, {});
  const nl::Netlist view = comb_view(gates);
  EXPECT_NE(view.find_input("state:acc_q0"), nullptr);
  EXPECT_NE(view.find_output("next:acc_q0"), nullptr);
  for (const nl::Cell& c : view.cells()) {
    EXPECT_FALSE(nl::cell_is_sequential(c.type));
  }
}

// --------------------------------------------------------------------------
// Fuzz shard: random gate netlists -> optimize_gates -> CEC pre/post.
// --------------------------------------------------------------------------

/// Random acyclic-combinational netlist with named flops (feedback wired
/// through the whole pool afterwards, as sequential edges may point
/// anywhere).
nl::Netlist random_named_netlist(std::mt19937_64& rng) {
  auto rnd = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  nl::Netlist n("cecfuzz");
  std::vector<nl::NetId> pool;
  const int n_inputs = rnd(1, 3);
  for (int i = 0; i < n_inputs; ++i) {
    std::vector<nl::NetId> nets;
    const int w = rnd(1, 8);
    for (int bit = 0; bit < w; ++bit) nets.push_back(n.new_net());
    pool.insert(pool.end(), nets.begin(), nets.end());
    n.add_input("in" + std::to_string(i), std::move(nets));
  }
  pool.push_back(n.const_net(false));
  pool.push_back(n.const_net(true));
  auto pick = [&]() {
    return pool[static_cast<std::size_t>(rnd(0, static_cast<int>(pool.size()) - 1))];
  };

  std::vector<std::size_t> flop_cells;
  const int n_flops = rnd(0, 6);
  for (int f = 0; f < n_flops; ++f) {
    flop_cells.push_back(n.cells().size());
    const nl::NetId q =
        n.add_cell(nl::CellType::kDff, {pick()}, static_cast<int>(rng() & 1));
    n.cells_mut().back().name = "f" + std::to_string(f);
    pool.push_back(q);
  }

  static constexpr nl::CellType kComb[] = {
      nl::CellType::kBuf,  nl::CellType::kInv,   nl::CellType::kAnd2,
      nl::CellType::kOr2,  nl::CellType::kNand2, nl::CellType::kNor2,
      nl::CellType::kXor2, nl::CellType::kXnor2, nl::CellType::kMux2,
  };
  const int n_cells = rnd(10, 80);
  for (int i = 0; i < n_cells; ++i) {
    const nl::CellType t = kComb[static_cast<std::size_t>(rnd(0, 8))];
    std::vector<nl::NetId> ins;
    for (int k = 0; k < nl::cell_input_count(t); ++k) ins.push_back(pick());
    pool.push_back(n.add_cell(t, std::move(ins)));
  }
  for (const std::size_t ci : flop_cells)
    for (nl::NetId& in : n.cells_mut()[ci].inputs) in = pick();

  const int n_outs = rnd(1, 3);
  for (int o = 0; o < n_outs; ++o) {
    std::vector<nl::NetId> nets;
    const int w = rnd(1, 6);
    for (int bit = 0; bit < w; ++bit) nets.push_back(pick());
    n.add_output("out" + std::to_string(o), std::move(nets));
  }
  return n;
}

class CecFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CecFuzz, OptPassEquivalentOnRandomNetlists) {
  constexpr int kSeedsPerShard = 25;
  for (int s = 0; s < kSeedsPerShard; ++s) {
    const unsigned seed = 0xCEC0000u + static_cast<unsigned>(GetParam() * kSeedsPerShard + s);
    std::mt19937_64 rng(seed);
    const nl::Netlist pre = random_named_netlist(rng);
    const nl::Netlist post = nl::optimize_gates(pre);
    const CecResult res = check_equivalence(pre, post);
    ASSERT_EQ(res.status, CecStatus::kEquivalent)
        << "seed " << seed
        << (res.cex ? " divergent " + res.cex->divergent_output : "");
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, CecFuzz, ::testing::Range(0, 4));

TEST(CecFuzzRtl, LoweredAndOptimisedRandomDesigns) {
  std::mt19937_64 rng(0xCEC'F00D);
  auto rnd = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  for (int iter = 0; iter < 10; ++iter) {
    rtl::DesignBuilder b("rfz" + std::to_string(iter));
    std::vector<rtl::Sig> pool;
    for (int i = 0; i < 3; ++i)
      pool.push_back(b.input("in" + std::to_string(i), rnd(1, 12)));
    auto r0 = b.reg("r0", rnd(2, 10), rnd(0, 7));
    pool.push_back(r0.q);
    for (int i = 0; i < 10; ++i) {
      const int w = rnd(1, 12);
      auto pick = [&]() {
        return pool[static_cast<std::size_t>(rnd(0, static_cast<int>(pool.size()) - 1))];
      };
      switch (rnd(0, 4)) {
        case 0: pool.push_back(b.add(b.resize_s(pick(), w), b.resize_s(pick(), w))); break;
        case 1: pool.push_back(b.xor_(b.resize_u(pick(), w), b.resize_u(pick(), w))); break;
        case 2: pool.push_back(b.mul(b.resize_s(pick(), rnd(1, 6)), b.resize_s(pick(), rnd(1, 6)), w)); break;
        case 3: pool.push_back(b.zext(b.lt_u(b.resize_u(pick(), w), b.resize_u(pick(), w)), rnd(1, 3))); break;
        default: pool.push_back(b.mux(b.resize_u(pick(), 1), b.resize_u(pick(), w), b.resize_u(pick(), w))); break;
      }
    }
    b.assign(r0, b.resize_u(pool.back(), 1), b.resize_s(pool[pool.size() - 2], r0.q.width));
    b.output("o", pool.back());
    const rtl::Design d = b.finalise();

    const nl::Netlist gates = nl::lower_to_gates(d, {});
    const nl::Netlist opt = nl::optimize_gates(gates);
    ASSERT_EQ(check_rtl_vs_netlist(d, gates).status, CecStatus::kEquivalent)
        << "iter " << iter;
    const CecResult res = check_equivalence(gates, opt);
    ASSERT_EQ(res.status, CecStatus::kEquivalent)
        << "iter " << iter
        << (res.cex ? " divergent " + res.cex->divergent_output : "");
  }
}

}  // namespace
}  // namespace scflow::formal
