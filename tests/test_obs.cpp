// Tests for the observability layer: metric registry (counters, gauges,
// nested scoped timers), JSON escaping + the structural validator, the
// Chrome trace-event writer, and the Probe increment semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/probe.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"

namespace scflow::obs {
namespace {

// --- JSON escaping -------------------------------------------------------

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("counter.name_0"), "counter.name_0");
}

TEST(JsonEscape, EscapesQuotesAndBackslash) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape(std::string("\x1f", 1)), "\\u001f");
}

TEST(JsonEscape, LeavesUtf8Alone) {
  EXPECT_EQ(json_escape("müx/µs"), "müx/µs");
}

// --- structural validator ------------------------------------------------

TEST(JsonValidate, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(json_validate("{}"));
  EXPECT_TRUE(json_validate("[]"));
  EXPECT_TRUE(json_validate(R"({"a":[1,2.5,-3e2,true,false,null,"s\n"]})"));
  EXPECT_TRUE(json_validate("  [ { } , [ ] ]  "));
}

TEST(JsonValidate, RejectsMalformedDocuments) {
  std::string err;
  EXPECT_FALSE(json_validate("", &err));
  EXPECT_FALSE(json_validate("{", &err));
  EXPECT_FALSE(json_validate("{\"a\":}", &err));
  EXPECT_FALSE(json_validate("[1,]", &err));
  EXPECT_FALSE(json_validate("{} trailing", &err));
  EXPECT_FALSE(json_validate("[01]", &err));       // leading zero
  EXPECT_FALSE(json_validate("\"\\x\"", &err));    // bad escape
  EXPECT_FALSE(json_validate("nul", &err));
  EXPECT_FALSE(err.empty());
}

// --- Probe ---------------------------------------------------------------

TEST(ProbeTest, CountsWhenEnabledOnly) {
  Probe p;
  std::uint64_t c = 0;
  p.hit(c);
  p.add(c, 10);
  EXPECT_EQ(c, 11u);
  p.set_enabled(false);
  p.hit(c);
  p.add(c, 100);
  EXPECT_EQ(c, 11u);
  p.set_enabled(true);
  p.hit(c);
  EXPECT_EQ(c, 12u);
}

// --- Registry counters / gauges ------------------------------------------

TEST(RegistryTest, CountersAccumulate) {
  Registry r;
  EXPECT_FALSE(r.has_counter("a"));
  EXPECT_EQ(r.counter("a"), 0u);
  r.count("a");
  r.count("a", 4);
  EXPECT_EQ(r.counter("a"), 5u);
  r.set_counter("a", 2);
  EXPECT_EQ(r.counter("a"), 2u);
  EXPECT_TRUE(r.has_counter("a"));
}

TEST(RegistryTest, GaugesKeepLatestValue) {
  Registry r;
  r.set_gauge("g", 1.5);
  r.set_gauge("g", -2.25);
  EXPECT_DOUBLE_EQ(r.gauge("g"), -2.25);
  EXPECT_DOUBLE_EQ(r.gauge("missing"), 0.0);
}

// --- Registry scoped timers ----------------------------------------------

TEST(RegistryTest, NestedScopesRecordHierarchicalPaths) {
  Registry r;
  {
    auto outer = r.time_scope("outer");
    {
      auto inner = r.time_scope("inner");
    }
    {
      auto inner = r.time_scope("inner");
    }
  }
  ASSERT_NE(r.timer("outer"), nullptr);
  ASSERT_NE(r.timer("outer/inner"), nullptr);
  EXPECT_EQ(r.timer("outer")->count, 1u);
  EXPECT_EQ(r.timer("outer/inner")->count, 2u);
  EXPECT_EQ(r.timer("inner"), nullptr);  // never recorded as a root scope
  // The outer scope contains both inner scopes, so it cannot be shorter.
  EXPECT_GE(r.timer("outer")->total_ns, r.timer("outer/inner")->total_ns);
}

TEST(RegistryTest, SequentialScopesAccumulate) {
  Registry r;
  for (int i = 0; i < 3; ++i) auto t = r.time_scope("step");
  ASSERT_NE(r.timer("step"), nullptr);
  EXPECT_EQ(r.timer("step")->count, 3u);
}

// --- merge ---------------------------------------------------------------

TEST(RegistryTest, MergePrefixesAndAggregates) {
  Registry a, b;
  a.count("hits", 2);
  a.set_gauge("temp", 1.0);
  b.count("hits", 3);
  b.set_gauge("temp", 9.0);
  { auto t = b.time_scope("run"); }

  a.merge_from(b, "sub");
  EXPECT_EQ(a.counter("hits"), 2u);       // untouched
  EXPECT_EQ(a.counter("sub.hits"), 3u);   // prefixed
  EXPECT_DOUBLE_EQ(a.gauge("sub.temp"), 9.0);
  ASSERT_NE(a.timer("sub.run"), nullptr);
  EXPECT_EQ(a.timer("sub.run")->count, 1u);

  // Merging again: counters add, gauges overwrite, timer counts accumulate.
  a.merge_from(b, "sub");
  EXPECT_EQ(a.counter("sub.hits"), 6u);
  EXPECT_EQ(a.timer("sub.run")->count, 2u);
}

// --- report --------------------------------------------------------------

TEST(RegistryTest, ReportJsonIsValidAndCarriesSchema) {
  Registry r;
  r.count("k.v", 7);
  r.set_gauge("g\"quoted\"", 0.5);
  { auto t = r.time_scope("phase"); }
  const std::string json = r.report_json();
  std::string err;
  EXPECT_TRUE(json_validate(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"schema\":\"scflow-obs-2\""), std::string::npos);
  EXPECT_NE(json.find("\"k.v\":7"), std::string::npos);
  EXPECT_NE(json.find("g\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\""), std::string::npos);
}

// --- trace writer --------------------------------------------------------

TEST(TraceWriterTest, EmitsWellFormedChromeTraceJson) {
  TraceWriter tw;
  tw.complete_event("slice \"x\"", "flow", 1000, 2500);
  tw.instant_event("marker", "flow", 4000, 2);
  tw.counter_event("activations", 5000, 42.0);
  EXPECT_EQ(tw.event_count(), 3u);

  const std::string json = tw.to_json();
  std::string err;
  EXPECT_TRUE(json_validate(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // ns -> us conversion: 2500 ns slice is a 2.5 us duration.
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
}

TEST(TraceWriterTest, FlowEventsCarrySharedIds) {
  TraceWriter tw;
  tw.flow_start("link", "flow", 1000, 0, 42);
  tw.flow_end("link", "flow", 3000, 3, 42);
  const std::string json = tw.to_json();
  std::string err;
  EXPECT_TRUE(json_validate(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Binding point "enclosing slice" keeps the arrow attached to the
  // consuming slice in Perfetto.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_EQ(json.find("\"id\":42", json.find("\"id\":42") + 1) != std::string::npos, true);
}

TEST(TraceWriterTest, ClockIsMonotoneFromEpoch) {
  TraceWriter tw;
  const auto a = tw.now_ns();
  const auto b = tw.now_ns();
  EXPECT_GE(b, a);
}

// --- registry + trace integration ----------------------------------------

TEST(SessionTest, ScopeCloseEmitsTraceSlice) {
  Session s;
  { auto t = s.registry.time_scope("outer"); auto u = s.registry.time_scope("in"); }
  EXPECT_EQ(s.trace.event_count(), 2u);  // one slice per closed scope
  std::string err;
  const std::string json = s.trace.to_json();
  EXPECT_TRUE(json_validate(json, &err)) << err;
  // Slices carry the leaf scope name; the hierarchy lives in the registry.
  EXPECT_NE(json.find("\"name\":\"in\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  ASSERT_NE(s.registry.timer("outer/in"), nullptr);
}

TEST(SessionTest, DumpWritesBothArtifacts) {
  Session s;
  s.registry.count("n", 1);
  { auto t = s.registry.time_scope("w"); }
  const std::string rp = ::testing::TempDir() + "obs_report.json";
  const std::string tp = ::testing::TempDir() + "obs_trace.json";
  ASSERT_TRUE(s.dump(rp, tp));
  for (const auto& path : {rp, tp}) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    EXPECT_TRUE(json_validate(buf.str(), &err)) << path << ": " << err;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace scflow::obs
