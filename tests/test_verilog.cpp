// Verilog writer/parser tests: structural round-trip preserving behaviour,
// and sanity of the behavioural RTL writer output.
#include <gtest/gtest.h>

#include <random>

#include "formal/cec.hpp"
#include "hdlsim/gate_sim.hpp"
#include "netlist/lower.hpp"
#include "rtl/builder.hpp"
#include "rtl/src_design.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace scflow::vlog {
namespace {

rtl::Design small_design() {
  rtl::DesignBuilder b("tiny");
  auto x = b.input("x", 8);
  auto y = b.input("y", 8);
  auto acc = b.reg("acc", 8, 3);
  b.assign_always(acc, b.add(acc.q, b.and_(x, y)));
  b.output("sum", b.add(x, y));
  b.output("acc", acc.q);
  return b.finalise();
}

TEST(VerilogWriter, StructuralContainsModuleAndGates) {
  const auto gates = nl::lower_to_gates(small_design(), {});
  const std::string v = write_structural(gates);
  EXPECT_NE(v.find("module tiny"), std::string::npos);
  EXPECT_NE(v.find("XOR2"), std::string::npos);
  EXPECT_NE(v.find("DFF"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(VerilogWriter, BehaviouralContainsAlwaysBlock) {
  const std::string v = write_behavioural(small_design());
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("acc_q <="), std::string::npos);
  EXPECT_NE(v.find("output [7:0] sum"), std::string::npos);
}

TEST(VerilogRoundtrip, ParsedNetlistMatchesOriginalBehaviour) {
  const auto gates = nl::lower_to_gates(small_design(), {});
  const std::string text = write_structural(gates);
  const nl::Netlist parsed = parse_structural(text);
  EXPECT_EQ(parsed.cells().size(), gates.cells().size());
  EXPECT_EQ(parsed.name(), gates.name());

  hdlsim::GateSim a(gates), b(parsed);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t xv = rng() & 0xff, yv = rng() & 0xff;
    a.set_input("x", xv);
    b.set_input("x", xv);
    a.set_input("y", yv);
    b.set_input("y", yv);
    a.step();
    b.step();
    a.settle();
    b.settle();
    ASSERT_EQ(a.output("sum"), b.output("sum"));
    ASSERT_EQ(a.output("acc"), b.output("acc"));
  }
}

TEST(VerilogRoundtrip, ScanChainSurvives) {
  auto gates = nl::lower_to_gates(small_design(), {});
  nl::insert_scan_chain(gates);
  const nl::Netlist parsed = parse_structural(write_structural(gates));
  std::size_t sdffs = 0;
  for (const auto& c : parsed.cells())
    if (c.type == nl::CellType::kSdff) ++sdffs;
  EXPECT_EQ(sdffs, 8u);
  EXPECT_NE(parsed.find_input("scan_in"), nullptr);
  EXPECT_NE(parsed.find_output("scan_out"), nullptr);
}

TEST(VerilogRoundtrip, FullSrcNetlistParses) {
  const auto gates = nl::lower_to_gates(
      rtl::build_src_design(rtl::rtl_opt_config()), {});
  const nl::Netlist parsed = parse_structural(write_structural(gates));
  EXPECT_EQ(parsed.cells().size(), gates.cells().size());
}

// The formal round-trip guarantee: emit, re-parse, re-emit, re-parse —
// every stage must be CEC-equivalent to the original, which requires the
// writer/parser to carry flop provenance names through as instance names.
TEST(VerilogRoundtrip, ReParsedNetlistIsCecEquivalent) {
  const auto gates = nl::lower_to_gates(small_design(), {});
  const nl::Netlist parsed = parse_structural(write_structural(gates));
  // Flop provenance survived the trip (needed for boundary pairing).
  std::size_t named_flops = 0;
  for (const auto& c : parsed.cells())
    if (nl::cell_is_sequential(c.type) && !c.name.empty()) ++named_flops;
  EXPECT_EQ(named_flops, 8u);

  formal::assert_equivalent(gates, parsed);
  const nl::Netlist reparsed = parse_structural(write_structural(parsed));
  formal::assert_equivalent(parsed, reparsed);
  formal::assert_equivalent(gates, reparsed);
}

TEST(VerilogRoundtrip, ScanNetlistCecEquivalentAfterRoundTrip) {
  auto gates = nl::lower_to_gates(small_design(), {});
  nl::insert_scan_chain(gates);
  const nl::Netlist parsed = parse_structural(write_structural(gates));
  formal::assert_equivalent(gates, parsed);
}

TEST(VerilogRoundtrip, FullSrcNetlistCecEquivalent) {
  const auto gates = nl::lower_to_gates(
      rtl::build_src_design(rtl::rtl_opt_config()), {});
  const nl::Netlist parsed = parse_structural(write_structural(gates));
  const formal::CecResult res = formal::check_equivalence(gates, parsed);
  EXPECT_TRUE(res.equivalent());
  // Identical structure on both sides: hashing alone closes the miter.
  EXPECT_EQ(res.stats.sat_calls, 0u);
}

TEST(VerilogParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_structural("module x (a;"), std::runtime_error);
  EXPECT_THROW(parse_structural("module x (a); input a; FOO u0 (.y(n0)); endmodule"),
               std::runtime_error);
  EXPECT_THROW(parse_structural("module x (); wire w1; INV u0 (.y(w1), .a(nope)); endmodule"),
               std::runtime_error);
  EXPECT_THROW(parse_structural("module x ();"), std::runtime_error);  // no endmodule
}

TEST(VerilogParser, ParseErrorCarriesKindAndLine) {
  try {
    (void)parse_structural("module x ();\nwire w;\nFOO u0 (.y(w));\nendmodule");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.kind(), ParseError::Kind::kUnknownCell);
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("FOO"), std::string::npos);
  }
}

TEST(VerilogParser, TruncatedInputClassifiedAsTruncated) {
  try {
    (void)parse_structural("module x (a);\ninput a;\nwire w1, w2");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.kind(), ParseError::Kind::kTruncated);
    EXPECT_STREQ(parse_error_kind_name(e.kind()), "truncated");
  }
}

TEST(VerilogParser, DuplicateDeclarationsRejected) {
  try {
    (void)parse_structural("module x ();\nwire w1;\nwire w1;\nendmodule");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.kind(), ParseError::Kind::kDuplicateDecl);
    EXPECT_NE(std::string(e.what()).find("w1"), std::string::npos);
  }
  try {
    (void)parse_structural("module x (a);\ninput a;\ninput a;\nendmodule");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.kind(), ParseError::Kind::kDuplicateDecl);
  }
}

TEST(VerilogParser, BadPortBitIndexRejected) {
  try {
    (void)parse_structural(
        "module x (a, o);\ninput [3:0] a;\noutput o;\nwire w1;\n"
        "assign w1 = a[9];\nINV u0 (.y(w1), .a(w1));\nassign o = w1;\nendmodule");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.kind(), ParseError::Kind::kBadReference);
    EXPECT_NE(std::string(e.what()).find("a"), std::string::npos);
  }
}

TEST(VerilogParser, OversizedNumbersAndWidthsRejected) {
  EXPECT_THROW(parse_structural("module x (a);\ninput [99999999999999:0] a;\nendmodule"),
               ParseError);
  EXPECT_THROW(parse_structural("module x (a);\ninput [64:0] a;\nendmodule"), ParseError);
}

// Robustness fuzz: every truncation prefix and a pile of single-character
// mutations of a real writer emission must either parse (producing a valid
// netlist) or throw ParseError — never crash, hang, or throw anything else.
TEST(VerilogParser, TruncationAndMutationFuzzNeverCrashes) {
  const auto gates = nl::lower_to_gates(small_design(), {});
  const std::string text = write_structural(gates);

  std::size_t truncated_kind = 0;
  for (std::size_t len = 0; len < text.size(); len += 7) {
    try {
      (void)parse_structural(text.substr(0, len));
    } catch (const ParseError& e) {
      if (e.kind() == ParseError::Kind::kTruncated) ++truncated_kind;
    }
  }
  // The dominant failure mode of a cut-off file must be classified as such.
  EXPECT_GT(truncated_kind, text.size() / 7 / 2);

  std::mt19937_64 rng(0xfe22);
  static constexpr char kCharset[] = "abwxyz01[]();.,_ \n";
  for (int i = 0; i < 400; ++i) {
    std::string mutated = text;
    const std::size_t pos = rng() % mutated.size();
    mutated[pos] = kCharset[rng() % (sizeof(kCharset) - 1)];
    try {
      const nl::Netlist parsed = parse_structural(mutated);
      EXPECT_FALSE(parsed.name().empty());
    } catch (const ParseError&) {
      // Structured rejection is a pass — this covers semantic validation
      // failures too (the parser wraps Netlist::validate).  Anything else
      // (std::invalid_argument out of an unguarded std::stoi, bad_alloc,
      // a crash) escapes and fails the test.
    }
  }
}

TEST(VerilogWriter, SrcBehaviouralRtlEmits) {
  const std::string v = write_behavioural(rtl::build_src_design(rtl::rtl_opt_config()));
  EXPECT_NE(v.find("module src_rtl_opt"), std::string::npos);
  EXPECT_GT(v.size(), 5000u);
}

}  // namespace
}  // namespace scflow::vlog
