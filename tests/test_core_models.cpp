// Refinement-equivalence tests: the paper's methodology ("each refinement
// step was verified for bit accuracy by simulation") as an executable
// test suite, across the whole chain
//   C++ (continuous)  ==  SystemC channels
//   C++ (quantised)   ==  BEH unopt == BEH opt == RTL unopt == RTL opt
#include <gtest/gtest.h>

#include "core/run.hpp"
#include "dsp/stimulus.hpp"

namespace scflow::model {
namespace {

using dsp::SrcEvent;
using dsp::SrcMode;
using dsp::StereoSample;
using P = dsp::SrcParams;

std::vector<SrcEvent> tone_schedule(SrcMode mode, std::size_t n, double freq = 1000.0) {
  const double in_rate = 1e12 / static_cast<double>(P::input_period_ps(mode));
  const auto inputs = dsp::make_sine_stimulus(n, freq, in_rate);
  return dsp::make_schedule(inputs, P::input_period_ps(mode), n, P::output_period_ps(mode));
}

std::vector<SrcEvent> noise_schedule(SrcMode mode, std::size_t n, std::uint64_t seed) {
  const auto inputs = dsp::make_noise_stimulus(n, seed);
  return dsp::make_schedule(inputs, P::input_period_ps(mode), n, P::output_period_ps(mode));
}

void expect_same_outputs(const RunResult& a, const RunResult& b, const char* what) {
  ASSERT_EQ(a.outputs.size(), b.outputs.size()) << what;
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    ASSERT_EQ(a.outputs[i], b.outputs[i]) << what << " differs at output " << i
        << " (" << a.outputs[i].left << "," << a.outputs[i].right << ") vs ("
        << b.outputs[i].left << "," << b.outputs[i].right << ")";
  }
}

TEST(RefinementChain, ChannelModelMatchesContinuousGolden) {
  const auto ev = tone_schedule(SrcMode::k44_1To48, 1200);
  const auto golden = run_level(RefinementLevel::kAlgorithmicCpp, SrcMode::k44_1To48, ev);
  const auto chan = run_level(RefinementLevel::kChannelSystemC, SrcMode::k44_1To48, ev);
  expect_same_outputs(golden, chan, "C++ vs channel-SystemC");
}

TEST(RefinementChain, BehUnoptMatchesQuantisedGolden) {
  const auto ev = tone_schedule(SrcMode::k44_1To48, 900);
  RunOptions quant;
  quant.quantized_time = true;
  const auto golden = run_level(RefinementLevel::kAlgorithmicCpp, SrcMode::k44_1To48, ev, quant);
  const auto beh = run_level(RefinementLevel::kBehUnopt, SrcMode::k44_1To48, ev);
  expect_same_outputs(golden, beh, "quantised C++ vs BEH-unopt");
}

TEST(RefinementChain, BehOptMatchesBehUnopt) {
  const auto ev = noise_schedule(SrcMode::k44_1To48, 900, 11);
  const auto a = run_level(RefinementLevel::kBehUnopt, SrcMode::k44_1To48, ev);
  const auto b = run_level(RefinementLevel::kBehOpt, SrcMode::k44_1To48, ev);
  expect_same_outputs(a, b, "BEH-unopt vs BEH-opt");
}

TEST(RefinementChain, RtlUnoptMatchesBehOpt) {
  const auto ev = noise_schedule(SrcMode::k44_1To48, 900, 12);
  const auto a = run_level(RefinementLevel::kBehOpt, SrcMode::k44_1To48, ev);
  const auto b = run_level(RefinementLevel::kRtlUnopt, SrcMode::k44_1To48, ev);
  expect_same_outputs(a, b, "BEH-opt vs RTL-unopt");
}

TEST(RefinementChain, RtlOptMatchesRtlUnopt) {
  const auto ev = noise_schedule(SrcMode::k44_1To48, 900, 13);
  const auto a = run_level(RefinementLevel::kRtlUnopt, SrcMode::k44_1To48, ev);
  const auto b = run_level(RefinementLevel::kRtlOpt, SrcMode::k44_1To48, ev);
  expect_same_outputs(a, b, "RTL-unopt vs RTL-opt");
}

// Property sweep: the full clocked chain agrees with the quantised golden
// model across modes and random stimuli.
class ClockedEquivalence
    : public ::testing::TestWithParam<std::tuple<SrcMode, std::uint64_t>> {};

TEST_P(ClockedEquivalence, AllClockedLevelsMatchQuantisedGolden) {
  const auto [mode, seed] = GetParam();
  const auto ev = noise_schedule(mode, 700, seed);
  RunOptions quant;
  quant.quantized_time = true;
  const auto golden = run_level(RefinementLevel::kAlgorithmicCpp, mode, ev, quant);
  for (RefinementLevel level : {RefinementLevel::kBehUnopt, RefinementLevel::kBehOpt,
                                RefinementLevel::kRtlUnopt, RefinementLevel::kRtlOpt}) {
    const auto r = run_level(level, mode, ev);
    expect_same_outputs(golden, r, level_name(level));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, ClockedEquivalence,
    ::testing::Values(std::make_tuple(SrcMode::k44_1To48, 1ull),
                      std::make_tuple(SrcMode::k44_1To48, 2ull),
                      std::make_tuple(SrcMode::k48To44_1, 3ull),
                      std::make_tuple(SrcMode::k48To44_1, 4ull),
                      std::make_tuple(SrcMode::k48To48, 5ull),
                      std::make_tuple(SrcMode::k32To48, 6ull)));

TEST(RefinementChain, QuantisationStepIsVisibleButSmall) {
  // Paper Fig. 7: the only lossy step in the chain is time quantisation.
  const auto ev = tone_schedule(SrcMode::k44_1To48, 2000);
  RunOptions quant;
  quant.quantized_time = true;
  const auto cont = run_level(RefinementLevel::kAlgorithmicCpp, SrcMode::k44_1To48, ev);
  const auto q = run_level(RefinementLevel::kAlgorithmicCpp, SrcMode::k44_1To48, ev, quant);
  ASSERT_EQ(cont.outputs.size(), q.outputs.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < cont.outputs.size(); ++i)
    if (cont.outputs[i] != q.outputs[i]) ++diffs;
  EXPECT_GT(diffs, 0u);
  EXPECT_LT(diffs, cont.outputs.size());  // most samples still agree closely
}

TEST(ClockedModels, OutputCountMatchesRequests) {
  const auto ev = tone_schedule(SrcMode::k44_1To48, 400);
  const auto r = run_level(RefinementLevel::kRtlOpt, SrcMode::k44_1To48, ev);
  std::size_t requests = 0;
  for (const auto& e : ev)
    if (!e.is_input) ++requests;
  EXPECT_EQ(r.outputs.size(), requests);
}

TEST(ClockedModels, SimulatedCyclesAreReported) {
  const auto ev = tone_schedule(SrcMode::k44_1To48, 300);
  const auto r = run_level(RefinementLevel::kBehOpt, SrcMode::k44_1To48, ev);
  // ~300 output periods at ~521 clocks each.
  EXPECT_GT(r.simulated_cycles, 100'000u);
  EXPECT_GT(r.stats.process_activations, r.simulated_cycles);
}

TEST(ClockedModels, CleanDesignHasNoRamViolations) {
  const auto ev = tone_schedule(SrcMode::k48To48, 800);
  RunOptions opt;
  opt.check_ram = true;
  for (RefinementLevel level : {RefinementLevel::kBehOpt, RefinementLevel::kRtlOpt}) {
    const auto r = run_level(level, SrcMode::k48To48, ev, opt);
    EXPECT_EQ(r.ram_violations.count, 0u) << level_name(level);
  }
}

TEST(ClockedModels, CornerBugIsInvisibleWithoutCheckingMemory) {
  // The paper's point: the bug survives ordinary simulation unnoticed —
  // outputs stay plausible (same count, similar magnitude).
  const auto ev = tone_schedule(SrcMode::k48To48, 800);
  RunOptions bug;
  bug.inject_corner_bug = true;
  const auto good = run_level(RefinementLevel::kRtlOpt, SrcMode::k48To48, ev);
  const auto bad = run_level(RefinementLevel::kRtlOpt, SrcMode::k48To48, ev, bug);
  ASSERT_EQ(good.outputs.size(), bad.outputs.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < good.outputs.size(); ++i)
    if (good.outputs[i] != bad.outputs[i]) ++diffs;
  EXPECT_GT(diffs, 0u) << "bug corner should trigger in pass-through mode";
}

TEST(ClockedModels, BuggedModelStillMatchesBuggedGolden) {
  // Function-preserving refinement preserves bugs too (paper §4.7: the
  // golden-model bug was refined down to gate level).
  const auto ev = tone_schedule(SrcMode::k48To48, 800);
  RunOptions bug;
  bug.inject_corner_bug = true;
  RunOptions bug_quant = bug;
  bug_quant.quantized_time = true;
  const auto golden = run_level(RefinementLevel::kAlgorithmicCpp, SrcMode::k48To48, ev, bug_quant);
  const auto rtl = run_level(RefinementLevel::kRtlOpt, SrcMode::k48To48, ev, bug);
  expect_same_outputs(golden, rtl, "bugged golden vs bugged RTL");
}

TEST(ClockedModels, BehUnoptTakesMoreCyclesPerOutputThanOpt) {
  // The handshake-in-loops schedule costs extra clocks (paper §4.4) —
  // visible as longer computation, though I/O behaviour is identical.
  const auto ev = tone_schedule(SrcMode::k44_1To48, 300);
  const auto unopt = run_level(RefinementLevel::kBehUnopt, SrcMode::k44_1To48, ev);
  const auto opt = run_level(RefinementLevel::kBehOpt, SrcMode::k44_1To48, ev);
  ASSERT_FALSE(unopt.output_latency_cycles.empty());
  ASSERT_EQ(unopt.output_latency_cycles.size(), opt.output_latency_cycles.size());
  // Compare a steady-state (post-startup) output's request->result latency:
  // the handshake cycles roughly double the schedule length.
  const std::size_t i = unopt.output_latency_cycles.size() - 1;
  EXPECT_GT(unopt.output_latency_cycles[i], opt.output_latency_cycles[i]);
  EXPECT_GE(unopt.output_latency_cycles[i], 30u);  // 16 MACs + 16 handshakes
  EXPECT_LE(opt.output_latency_cycles[i], 25u);    // fixed cycle scheme
  expect_same_outputs(unopt, opt, "unopt vs opt");
}

TEST(Levels, NamesAndClockedness) {
  EXPECT_STREQ(level_name(RefinementLevel::kAlgorithmicCpp), "C++ (algorithmic)");
  EXPECT_FALSE(level_is_clocked(RefinementLevel::kAlgorithmicCpp));
  EXPECT_FALSE(level_is_clocked(RefinementLevel::kChannelSystemC));
  EXPECT_TRUE(level_is_clocked(RefinementLevel::kBehUnopt));
  EXPECT_TRUE(level_is_clocked(RefinementLevel::kRtlOpt));
}

TEST(Levels, ToneRunnerProducesAudio) {
  const auto r = run_level_with_tone(RefinementLevel::kChannelSystemC,
                                     SrcMode::k44_1To48, 1500);
  std::vector<std::int16_t> tail;
  for (std::size_t i = 600; i < r.outputs.size(); ++i) tail.push_back(r.outputs[i].left);
  EXPECT_GT(dsp::tone_snr_db(tail, 1000.0, 48000.0), 40.0);
}

}  // namespace
}  // namespace scflow::model
