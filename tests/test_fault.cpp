// Fault subsystem tests: stuck-at list enumeration/collapsing, the GateSim
// injection hooks (stuck overlay + SEU flip), campaign determinism across
// thread counts, budget/watchdog degradation, the scan-vs-noscan coverage
// contract, and the SEU divergence/VCD path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <utility>

#include <map>

#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "fault/seu.hpp"
#include "flow/synthesis_flow.hpp"
#include "hdlsim/gate_sim.hpp"
#include "hls/src_beh.hpp"
#include "netlist/lower.hpp"
#include "netlist/opt.hpp"
#include "obs/session.hpp"
#include "rtl/builder.hpp"
#include "rtl/src_design.hpp"

namespace scflow::fault {
namespace {

using hdlsim::GateSim;

/// Accumulator with fully observable state (both the register and the
/// combinational result are output ports) — most faults detect quickly.
/// Returns {pre-scan netlist, scan-inserted twin of the same netlist}.
std::pair<nl::Netlist, nl::Netlist> acc_pair() {
  rtl::DesignBuilder b("faccu");
  auto x = b.input("x", 8);
  auto y = b.input("y", 8);
  auto acc = b.reg("acc", 8, 3);
  b.assign_always(acc, b.add(acc.q, b.and_(x, y)));
  b.output("sum", b.add(x, y));
  b.output("acc", acc.q);
  nl::Netlist g = nl::optimize_gates(nl::lower_to_gates(b.finalise(), {}));
  nl::Netlist pre = g;
  nl::insert_scan_chain(g);
  return {std::move(pre), std::move(g)};
}

/// State observable ONLY through scan: four flops capture XORs of the
/// inputs but drive nothing downstream; the lone functional output ignores
/// them.  Without scan their whole capture cones are untestable.
std::pair<nl::Netlist, nl::Netlist> hidden_state_pair() {
  nl::Netlist n("hidden");
  std::vector<nl::NetId> a, b;
  for (int i = 0; i < 4; ++i) a.push_back(n.new_net());
  for (int i = 0; i < 4; ++i) b.push_back(n.new_net());
  n.add_input("a", a);
  n.add_input("b", b);
  for (int i = 0; i < 4; ++i) {
    const nl::NetId x = n.add_cell(nl::CellType::kXor2, {a[static_cast<std::size_t>(i)],
                                                         b[static_cast<std::size_t>(i)]});
    (void)n.add_cell(nl::CellType::kDff, {x}, 0);
  }
  const nl::NetId o = n.add_cell(nl::CellType::kAnd2, {a[0], b[0]});
  n.add_output("o", {o});
  n.validate();
  nl::Netlist pre = n;
  nl::insert_scan_chain(n);
  return {std::move(pre), std::move(n)};
}

TEST(FaultList, CollapsesFanoutFreeRegionFaults) {
  // a -> INV -> output port.  The INV input is a single-fanout FFR edge
  // (both polarities fold into the output fault); the INV output is
  // directly observable, so it keeps both.
  nl::Netlist n("ffr");
  const nl::NetId a = n.new_net();
  n.add_input("a", {a});
  const nl::NetId inv = n.add_cell(nl::CellType::kInv, {a});
  n.add_output("o", {inv});
  FaultListStats st;
  const auto faults = enumerate_stuck_faults(n, &st);
  EXPECT_EQ(st.sites, 2u);
  EXPECT_EQ(st.raw, 4u);
  EXPECT_EQ(st.collapsed, 2u);
  ASSERT_EQ(faults.size(), 2u);
  for (const Fault& f : faults) EXPECT_EQ(f.net, inv);
}

TEST(FaultList, ControllingValueCollapseIsPolaritySpecific) {
  // a, b -> AND2 -> output.  Each input's s-a-0 is equivalent to the
  // output's s-a-0 (dropped); the s-a-1 faults are distinguishable (kept).
  nl::Netlist n("and2");
  const nl::NetId a = n.new_net(), b = n.new_net();
  n.add_input("a", {a});
  n.add_input("b", {b});
  const nl::NetId y = n.add_cell(nl::CellType::kAnd2, {a, b});
  n.add_output("o", {y});
  FaultListStats st;
  const auto faults = enumerate_stuck_faults(n, &st);
  EXPECT_EQ(st.sites, 3u);
  EXPECT_EQ(st.raw, 6u);
  EXPECT_EQ(st.collapsed, 2u);  // a s-a-0, b s-a-0
  ASSERT_EQ(faults.size(), 4u);
  for (const Fault& f : faults)
    EXPECT_TRUE(f.net == y || f.stuck_one) << describe_fault(n, f);
}

TEST(FaultList, TiePolarityFaultIsExcludedAndFansOutUncollapsed) {
  // TIE0 stuck-at-0 is the fault-free circuit — never enumerated.
  nl::Netlist n("tie");
  const nl::NetId t = n.const_net(false);
  const nl::NetId y = n.add_cell(nl::CellType::kBuf, {t});
  n.add_output("o", {y});
  FaultListStats st;
  const auto faults = enumerate_stuck_faults(n, &st);
  // Sites: tie net + buf output.  Tie s-a-0 excluded from raw; tie s-a-1
  // collapses into the BUF (single reader); buf output keeps both.
  EXPECT_EQ(st.raw, 3u);
  EXPECT_EQ(st.collapsed, 1u);
  ASSERT_EQ(faults.size(), 2u);
  for (const Fault& f : faults) EXPECT_EQ(f.net, y);
}

TEST(FaultList, DescribeFaultNamesCellOrInputPort) {
  nl::Netlist n("desc");
  const nl::NetId a = n.new_net();
  n.add_input("in_left", {a});
  const nl::NetId y = n.add_cell(nl::CellType::kInv, {a});
  n.add_output("o", {y});
  EXPECT_NE(describe_fault(n, {a, true}).find("in_left"), std::string::npos);
  EXPECT_NE(describe_fault(n, {a, true}).find("stuck-at-1"), std::string::npos);
  EXPECT_NE(describe_fault(n, {y, false}).find("INV"), std::string::npos);
}

TEST(FaultList, SampleFaultsIsCentredStrideAndDeterministic) {
  std::vector<Fault> faults;
  for (nl::NetId i = 0; i < 6; ++i) faults.push_back({i, false});
  EXPECT_EQ(sample_faults(faults, 0).size(), 6u);
  EXPECT_EQ(sample_faults(faults, 9).size(), 6u);
  // Centred stride: the middle of each span, so the tail (net 5 — the
  // list's last FFR group) is reachable; the old left-aligned stride
  // picked {0, 2, 4} and could never select the last fault.
  const auto s = sample_faults(faults, 3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].net, 1);
  EXPECT_EQ(s[1].net, 3);
  EXPECT_EQ(s[2].net, 5);
}

TEST(FaultList, SampleFaultsDegenerateSizes) {
  const auto make = [](nl::NetId count) {
    std::vector<Fault> v;
    for (nl::NetId i = 0; i < count; ++i) v.push_back({i, (i & 1) != 0});
    return v;
  };
  // Empty list, any cap.
  EXPECT_TRUE(sample_faults({}, 0).empty());
  EXPECT_TRUE(sample_faults({}, 5).empty());
  // Single-element list survives every cap.
  EXPECT_EQ(sample_faults(make(1), 1).size(), 1u);
  EXPECT_EQ(sample_faults(make(1), 7).size(), 1u);
  // Cap of one picks the middle element, not the head.
  const auto mid = sample_faults(make(9), 1);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0].net, 4);
  // Exact divisors (the N % M == 0 boundary of the old bias): indices are
  // strictly increasing, in range, and include the last span.
  for (const std::size_t m : {2u, 4u, 8u}) {
    const auto s = sample_faults(make(8), m);
    ASSERT_EQ(s.size(), m);
    for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1].net, s[i].net);
    EXPECT_GE(s.back().net, static_cast<nl::NetId>(8 - 8 / m));
  }
  // N = M + 1 (minimal oversize) still yields M distinct picks.
  const auto s = sample_faults(make(5), 4);
  ASSERT_EQ(s.size(), 4u);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1].net, s[i].net);
}

TEST(FaultInjection, StuckOverlayClampsDriverAndExternalWrites) {
  nl::Netlist n("clamp");
  const nl::NetId a = n.new_net();
  n.add_input("a", {a});
  const nl::NetId inv = n.add_cell(nl::CellType::kInv, {a});
  n.add_output("o", {inv});

  GateSim sim(n);
  sim.set_input("a", 0);
  sim.settle();
  EXPECT_EQ(sim.output("o"), 1u);

  sim.inject_stuck(inv, Logic::L0);
  sim.settle();
  EXPECT_EQ(sim.stuck_net(), inv);
  EXPECT_EQ(sim.output("o"), 0u);  // clamp forced immediately
  sim.set_input("a", 0);
  sim.settle();
  EXPECT_EQ(sim.output("o"), 0u);  // driver wants 1 — write-side clamp holds

  // External input writes clamp too.
  GateSim sim2(n);
  sim2.inject_stuck(a, Logic::L1);
  sim2.set_input("a", 0);
  sim2.settle();
  EXPECT_EQ(sim2.output("o"), 0u);  // a clamped to 1 -> INV gives 0
}

TEST(FaultInjection, FlopCommitIsClampedThroughTheStuckNet) {
  // DFF whose D is the constant 1: fault its output net to 0 and the
  // commit path must hold it at 0 on every edge.
  nl::Netlist n("flopclamp");
  const nl::NetId one = n.const_net(true);
  const nl::NetId q = n.add_cell(nl::CellType::kDff, {one}, 0);
  n.add_output("o", {q});
  GateSim sim(n);
  sim.step();
  EXPECT_EQ(sim.output("o"), 1u);
  sim.inject_stuck(q, Logic::L0);
  sim.settle();
  EXPECT_EQ(sim.output("o"), 0u);
  sim.step();  // commit would write 1; the clamp wins
  EXPECT_EQ(sim.output("o"), 0u);
}

TEST(FaultInjection, SeuFlipRecoversThroughTheInputCone) {
  nl::Netlist n("seu1");
  const nl::NetId zero = n.const_net(false);
  const nl::NetId q = n.add_cell(nl::CellType::kDff, {zero}, 0);
  n.add_output("o", {q});
  GateSim sim(n);
  sim.step();
  ASSERT_EQ(sim.flop_count(), 1u);
  EXPECT_EQ(sim.flop_output(0), q);
  EXPECT_EQ(sim.output("o"), 0u);

  EXPECT_TRUE(sim.flip_flop(0));
  sim.settle();
  EXPECT_EQ(sim.output("o"), 1u);  // upset visible this cycle
  sim.step();                      // flop re-samples D = 0
  EXPECT_EQ(sim.output("o"), 0u);  // ...and recovers like real hardware
}

TEST(FaultInjection, SeuFlipRefusesOnUnknownState) {
  nl::Netlist n("seux");
  const nl::NetId zero = n.const_net(false);
  (void)n.add_cell(nl::CellType::kDff, {zero}, 0);
  n.add_output("o", {n.cells().back().output});
  GateSim::Options opt;
  opt.x_initial_flops = true;
  GateSim sim(n, opt);
  sim.settle();  // no edge yet: state is still the power-up X
  EXPECT_FALSE(sim.flip_flop(0));
}

TEST(Campaign, DetectsMostFaultsOnObservableDesign) {
  const auto [pre, scan] = acc_pair();
  CampaignOptions opt;
  const CampaignResult r = run_campaign(scan, opt);
  EXPECT_EQ(r.design, "faccu");
  EXPECT_TRUE(r.scan_used);
  EXPECT_GT(r.stimulus_cycles, 0u);
  EXPECT_EQ(r.simulated(), r.faults.size());
  EXPECT_EQ(r.detected + r.undetected + r.undetected_budget + r.oscillating,
            r.simulated());
  EXPECT_GT(r.coverage_pct(), 50.0);
  EXPECT_GT(r.list.raw, r.list.collapsed);
  // Detected faults carry a valid observe point and cycle.
  for (const FaultResult& f : r.faults) {
    if (f.klass != FaultClass::kDetected) continue;
    EXPECT_LT(f.detect_port, r.observe_ports.size());
    EXPECT_LT(f.detect_cycle, r.stimulus_cycles);
    EXPECT_EQ(f.cycles, f.detect_cycle + 1);
  }
}

TEST(Campaign, BitIdenticalAcrossThreadCounts) {
  const auto [pre, scan] = acc_pair();
  CampaignOptions opt;  // budgets off: the determinism contract applies
  opt.threads = 1;
  const CampaignResult ref = run_campaign(scan, opt);
  for (const unsigned threads : {2u, 4u, 8u}) {
    opt.threads = threads;
    const CampaignResult got = run_campaign(scan, opt);
    ASSERT_EQ(got.faults.size(), ref.faults.size()) << "threads " << threads;
    for (std::size_t i = 0; i < ref.faults.size(); ++i)
      ASSERT_TRUE(got.faults[i] == ref.faults[i])
          << "threads " << threads << " fault " << i << " ("
          << describe_fault(scan, ref.faults[i].fault) << ")";
    EXPECT_EQ(got.detected, ref.detected) << "threads " << threads;
    EXPECT_EQ(got.undetected, ref.undetected) << "threads " << threads;
    EXPECT_EQ(got.faulty_cycles_total, ref.faulty_cycles_total)
        << "threads " << threads;
  }
}

TEST(Campaign, CycleBudgetDegradesToUndetectedBudget) {
  const auto [pre, scan] = acc_pair();
  CampaignOptions opt;
  opt.cycle_budget = 1;  // at most one simulated cycle per fault
  const CampaignResult r = run_campaign(scan, opt);
  EXPECT_GT(r.undetected_budget, 0u);
  EXPECT_EQ(r.detected + r.undetected_budget, r.simulated());
  for (const FaultResult& f : r.faults) EXPECT_LE(f.cycles, 1u);
}

TEST(Campaign, StarvedWatchdogTerminatesWithBudgetClassification) {
  // A campaign whose wall budget is already spent must still terminate,
  // classifying every fault as kUndetectedBudget instead of hanging.
  const auto [pre, scan] = acc_pair();
  CampaignOptions opt;
  opt.campaign_wall_budget_ns = 1;
  const CampaignResult r = run_campaign(scan, opt);
  EXPECT_GT(r.simulated(), 0u);
  EXPECT_EQ(r.undetected_budget, r.simulated());
  EXPECT_EQ(r.detected, 0u);
  EXPECT_EQ(r.faulty_cycles_total, 0u);  // skipped before simulating
}

TEST(Campaign, ScanStrictlyImprovesCoverageOnHiddenState) {
  const auto [pre, scan] = hidden_state_pair();
  // One shared fault universe, enumerated on the pre-scan netlist (net
  // ids are preserved by scan insertion).
  FaultListStats st;
  const std::vector<Fault> list = enumerate_stuck_faults(pre, &st);
  ASSERT_FALSE(list.empty());

  CampaignOptions opt;
  opt.scan_patterns = 4;
  const CampaignResult with_scan = run_campaign(scan, list, opt);
  const CampaignResult no_scan = run_campaign(pre, list, opt);
  EXPECT_TRUE(with_scan.scan_used);
  EXPECT_FALSE(no_scan.scan_used);
  EXPECT_EQ(with_scan.simulated(), no_scan.simulated());
  EXPECT_GT(with_scan.coverage_pct(), no_scan.coverage_pct());
  // The hidden capture cones are exactly what scan unlocks: every fault
  // detected without scan is also detected with it.
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (no_scan.faults[i].klass == FaultClass::kDetected) {
      EXPECT_EQ(with_scan.faults[i].klass, FaultClass::kDetected)
          << describe_fault(pre, list[i]);
    }
  }
}

TEST(Campaign, UninitialisableFaultyMachineClassifiedOscillating) {
  // q <= AND(q, NOT rst), flops powering up X: the good machine clears to
  // 0 at the first rst=1; with rst stuck-at-0 the state can never leave X,
  // which at the observe point reads as persistent soft divergence.
  nl::Netlist n("oscil");
  const nl::NetId rst = n.new_net();
  n.add_input("rst", {rst});
  const nl::NetId ninv = n.add_cell(nl::CellType::kInv, {rst});
  const std::size_t flop_cell = n.cells().size();
  const nl::NetId q = n.add_cell(nl::CellType::kDff, {ninv}, 0);
  const nl::NetId nand = n.add_cell(nl::CellType::kAnd2, {q, ninv});
  n.cells_mut()[flop_cell].inputs[0] = nand;
  n.add_output("o", {q});
  n.validate();

  CampaignOptions opt;
  opt.x_initial_flops = true;
  const std::vector<Fault> list = {{rst, false}};
  const CampaignResult r = run_campaign(n, list, opt);
  ASSERT_EQ(r.faults.size(), 1u);
  EXPECT_EQ(r.faults[0].klass, FaultClass::kOscillating)
      << fault_class_name(r.faults[0].klass);
  EXPECT_EQ(r.oscillating, 1u);
}

TEST(Campaign, RecordsMetricsAndBatchTimelineIntoSession) {
  const auto [pre, scan] = acc_pair();
  obs::Session session;
  CampaignOptions opt;
  opt.max_faults = 16;
  const CampaignResult r = run_campaign(scan, opt, &session);
  EXPECT_EQ(r.simulated(), 16u);
  EXPECT_GT(r.population, r.simulated());  // the cap is never silent
  const std::string p = "fault.faccu";
  EXPECT_EQ(session.registry.counter(p + ".simulated"), r.simulated());
  EXPECT_EQ(session.registry.counter(p + ".population"), r.population);
  EXPECT_EQ(session.registry.counter(p + ".detected"), r.detected);
  EXPECT_EQ(session.registry.counter(p + ".scan_used"), 1u);
  EXPECT_EQ(session.registry.counter(p + ".batch.jobs"), r.simulated());
  ASSERT_NE(session.registry.timer(p), nullptr);  // whole-campaign timer
  EXPECT_EQ(session.registry.timer(p)->count, 1u);
}

// Full-list PPSFP on the five Fig. 10 designs reproduces the sampled
// event-driven campaign with exact superset semantics: every sampled
// fault's FaultResult recurs bit-for-bit inside the full-population run,
// so the sampled coverage is a true projection of the full list (and the
// full detected set is a superset of the sampled one by construction).
TEST(Campaign, PpsfpFullListReproducesSampledCoverageOnFig10) {
  struct Design {
    const char* slug;
    rtl::Design d;
  };
  std::vector<Design> designs;
  designs.push_back({"vhdl_ref", rtl::build_src_design(rtl::vhdl_ref_config())});
  designs.push_back({"beh_unopt", hls::build_beh_src_design(hls::beh_unopt_config())});
  designs.push_back({"beh_opt", hls::build_beh_src_design(hls::beh_opt_config())});
  designs.push_back({"rtl_unopt", rtl::build_src_design(rtl::rtl_unopt_config())});
  designs.push_back({"rtl_opt", rtl::build_src_design(rtl::rtl_opt_config())});

  for (Design& e : designs) {
    nl::Netlist pre_scan("");
    const nl::Netlist gates =
        flow::synthesize_to_gates(e.d, nullptr, nullptr, e.slug, {}, &pre_scan);
    const std::vector<Fault> full = enumerate_stuck_faults(pre_scan);
    const std::vector<Fault> sampled = sample_faults(full, 60);
    ASSERT_LT(sampled.size(), full.size()) << e.slug;

    // A shortened (but shared) program keeps five full-population runs
    // inside unit-test time; both engines see the identical options.
    CampaignOptions opt;
    opt.scan_patterns = 1;
    opt.capture_cycles = 1;
    opt.functional_cycles = 8;
    opt.threads = 4;

    CampaignOptions ppsfp_opt = opt;
    ppsfp_opt.engine = CampaignOptions::Engine::kPpsfp;
    const CampaignResult whole = run_campaign(gates, full, ppsfp_opt);
    const CampaignResult subset = run_campaign(gates, sampled, opt);
    ASSERT_EQ(whole.faults.size(), full.size()) << e.slug;

    std::map<std::pair<nl::NetId, bool>, const FaultResult*> by_site;
    for (const FaultResult& fr : whole.faults)
      by_site[{fr.fault.net, fr.fault.stuck_one}] = &fr;
    std::size_t sampled_detected = 0;
    for (const FaultResult& fr : subset.faults) {
      const auto it = by_site.find({fr.fault.net, fr.fault.stuck_one});
      ASSERT_NE(it, by_site.end()) << e.slug << ": " << describe_fault(gates, fr.fault);
      EXPECT_TRUE(*it->second == fr)
          << e.slug << ": " << describe_fault(gates, fr.fault) << " full-list "
          << fault_class_name(it->second->klass) << " vs sampled "
          << fault_class_name(fr.klass);
      if (fr.klass == FaultClass::kDetected) ++sampled_detected;
    }
    EXPECT_EQ(subset.detected, sampled_detected) << e.slug;
    EXPECT_GE(whole.detected, sampled_detected) << e.slug;  // strict superset
    EXPECT_GT(whole.detected, 0u) << e.slug;
  }
}

TEST(Seu, UpsetsDivergeOnAccumulatorAndDumpVcd) {
  const auto [pre, scan] = acc_pair();
  const std::string vcd_path = "seu_divergence_test.vcd";
  std::remove(vcd_path.c_str());
  SeuOptions opt;
  opt.vcd_path = vcd_path;
  const SeuResult r = run_seu_campaign(pre, opt);
  EXPECT_EQ(r.trials.size(), static_cast<std::size_t>(opt.injections));
  EXPECT_GT(r.injected, 0u);
  // The accumulator register is an output port: every real upset is
  // immediately observable, and the state error never washes out.
  EXPECT_GT(r.diverged, 0u);
  EXPECT_EQ(r.injected, r.diverged + r.silent);
  EXPECT_FALSE(r.first_divergent_net.empty());
  ASSERT_EQ(r.vcd_written, vcd_path);

  std::ifstream vcd(vcd_path);
  ASSERT_TRUE(vcd.good());
  std::string contents((std::istreambuf_iterator<char>(vcd)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(contents.find("acc_good"), std::string::npos);
  EXPECT_NE(contents.find("acc_faulty"), std::string::npos);
  std::remove(vcd_path.c_str());

  // Determinism: the same options give bit-identical trial outcomes.
  SeuOptions opt2;  // no VCD the second time
  const SeuResult r2 = run_seu_campaign(pre, opt2);
  ASSERT_EQ(r2.trials.size(), r.trials.size());
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    EXPECT_EQ(r2.trials[i].flop, r.trials[i].flop) << i;
    EXPECT_EQ(r2.trials[i].cycle, r.trials[i].cycle) << i;
    EXPECT_EQ(r2.trials[i].diverged, r.trials[i].diverged) << i;
    EXPECT_EQ(r2.trials[i].first_divergent_cycle, r.trials[i].first_divergent_cycle) << i;
  }
}

TEST(Seu, RefusesToFlipUninitialisedXState) {
  // With X power-up and no reset path, the accumulator never leaves X:
  // every trial must be refused (no 0/1 state to upset), not crash.
  const auto [pre, scan] = acc_pair();
  SeuOptions opt;
  opt.x_initial_flops = true;
  const SeuResult r = run_seu_campaign(pre, opt);
  EXPECT_EQ(r.injected, 0u);
  EXPECT_EQ(r.skipped_x, r.trials.size());
  EXPECT_EQ(r.diverged, 0u);
  EXPECT_TRUE(r.vcd_written.empty());
}

TEST(Seu, RecordsMetricsIntoSession) {
  const auto [pre, scan] = acc_pair();
  obs::Session session;
  const SeuResult r = run_seu_campaign(pre, {}, &session);
  const std::string p = "seu.faccu";
  EXPECT_EQ(session.registry.counter(p + ".trials"), r.trials.size());
  EXPECT_EQ(session.registry.counter(p + ".diverged"), r.diverged);
  EXPECT_EQ(session.registry.counter(p + ".silent"), r.silent);
}

}  // namespace
}  // namespace scflow::fault
