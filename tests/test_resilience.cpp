// Resilience-layer tests for the streaming SRC service: SampleRing edge
// cases (u64 counter wraparound, zero capacity, concurrent SPSC stress),
// session leases and graceful eviction (drain-before-evict, generation
// invalidation), admission control and load shedding, deterministic
// chaos injection (plan purity, thread-invariant fault schedules), and
// the crash-consistent snapshot/restore envelope (bit-identical
// continuation, corruption rejection).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "dsp/stimulus.hpp"
#include "obs/session.hpp"
#include "serve/chaos.hpp"
#include "serve/resilience.hpp"
#include "serve/sample_ring.hpp"
#include "serve/src_service.hpp"

namespace scflow::serve {
namespace {

using dsp::StereoSample;

// --- SampleRing edges ----------------------------------------------------

TEST(SampleRingEdge, ZeroCapacityThrows) {
  EXPECT_THROW(SampleRing ring(0), std::invalid_argument);
}

TEST(SampleRingEdge, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SampleRing(1).capacity(), 2u);
  EXPECT_EQ(SampleRing(2).capacity(), 2u);
  EXPECT_EQ(SampleRing(3).capacity(), 4u);
  EXPECT_EQ(SampleRing(1000).capacity(), 1024u);
}

TEST(SampleRingEdge, CounterWraparoundPreservesFifoOrder) {
  // Seed head/tail 4 below the u64 wrap point, then stream enough
  // samples through to carry both counters across 2^64 -> 0.  The
  // head - tail arithmetic must stay exact through the wrap.
  constexpr std::uint64_t kStart = ~std::uint64_t{0} - 3;
  SampleRing ring(8, kStart);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.free_space(), 8u);

  std::int16_t next_in = 0;
  std::int16_t next_out = 0;
  std::uint64_t streamed = 0;
  while (streamed < 64) {  // well past the wrap at streamed == 4
    StereoSample chunk[5];
    for (auto& s : chunk) {
      s.left = next_in;
      s.right = static_cast<std::int16_t>(-next_in);
      ++next_in;
    }
    const std::size_t took = ring.push(chunk, 5);
    ASSERT_LE(took, 5u);
    next_in = static_cast<std::int16_t>(next_out + static_cast<std::int16_t>(ring.size()));
    streamed += took;
    StereoSample out[3];
    const std::size_t got = ring.pop(out, 3);
    for (std::size_t i = 0; i < got; ++i) {
      EXPECT_EQ(out[i].left, next_out);
      EXPECT_EQ(out[i].right, static_cast<std::int16_t>(-next_out));
      ++next_out;
    }
    EXPECT_LE(ring.size(), ring.capacity());
    EXPECT_EQ(ring.size() + ring.free_space(), ring.capacity());
  }
  StereoSample out[8];
  std::size_t got;
  while ((got = ring.pop(out, 8)) > 0) {
    for (std::size_t i = 0; i < got; ++i) {
      EXPECT_EQ(out[i].left, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SampleRingEdge, ConcurrentSpscStressKeepsEverySample) {
  // One producer, one consumer, tiny ring: maximum contention on the
  // head/tail handoff.  Under TSan this exercises the acquire/release
  // pairing; everywhere it checks nothing is lost or reordered.
  constexpr std::size_t kTotal = 50'000;
  SampleRing ring(4);
  std::thread producer([&] {
    std::uint32_t v = 0;
    StereoSample s;
    while (v < kTotal) {
      s.left = static_cast<std::int16_t>(v & 0x7fff);
      s.right = static_cast<std::int16_t>((v >> 15) & 0x7fff);
      if (ring.push(&s, 1) == 1) ++v;
      else std::this_thread::yield();
    }
  });
  std::uint32_t expect = 0;
  StereoSample out[8];
  while (expect < kTotal) {
    const std::size_t got = ring.pop(out, 8);
    if (got == 0) std::this_thread::yield();
    for (std::size_t i = 0; i < got; ++i) {
      ASSERT_EQ(out[i].left, static_cast<std::int16_t>(expect & 0x7fff));
      ASSERT_EQ(out[i].right, static_cast<std::int16_t>((expect >> 15) & 0x7fff));
      ++expect;
    }
  }
  producer.join();
  EXPECT_EQ(ring.size(), 0u);
}

// --- leases & eviction ---------------------------------------------------

ServiceOptions small_service(std::size_t max_sessions = 4) {
  ServiceOptions opt;
  opt.max_sessions = max_sessions;
  opt.input_ring = 64;
  opt.output_ring = 64;
  opt.work_quantum = 32;
  return opt;
}

TEST(Leases, IdleSessionIsEvictedAndCounted) {
  ServiceOptions opt = small_service();
  opt.idle_timeout_steps = 3;
  SrcService service(opt);
  const SessionId id = service.open({48'000, 48'000});
  const auto stim = dsp::make_noise_stimulus(40, 7);
  EXPECT_EQ(service.push(id, stim.data(), stim.size()), stim.size());
  service.run_until_idle();
  std::vector<StereoSample> out(64);
  while (service.pull(id, out.data(), out.size()) > 0) {}
  EXPECT_EQ(service.phase(id), SessionPhase::kOpen);

  // No client activity, nothing queued: the lease lapses and the session
  // goes straight to kEvicted (already drained).
  for (int i = 0; i < 5; ++i) service.step();
  EXPECT_EQ(service.phase(id), SessionPhase::kEvicted);
  const ResilienceStats res = service.resilience_stats();
  EXPECT_EQ(res.evict_idle, 1u);
  EXPECT_EQ(res.evict_lifetime, 0u);
  EXPECT_EQ(res.evict_drained, 1u);
  EXPECT_EQ(service.session_count(), 0u);
}

TEST(Leases, LifetimeLeaseEvictsEvenAnActiveSession) {
  ServiceOptions opt = small_service();
  opt.max_lifetime_steps = 4;
  SrcService service(opt);
  const SessionId id = service.open({44'100, 48'000});
  const auto stim = dsp::make_noise_stimulus(8, 3);
  std::vector<StereoSample> out(64);
  // The client keeps pushing and pulling every step — idle never trips,
  // but the lifetime lease still does.
  for (int i = 0; i < 8; ++i) {
    (void)service.push(id, stim.data(), stim.size());
    service.step();
    while (service.pull(id, out.data(), out.size()) > 0) {}
    if (service.phase(id) != SessionPhase::kOpen) break;
  }
  // Drain whatever the eviction left queued.
  service.run_until_idle();
  while (service.pull(id, out.data(), out.size()) > 0) {}
  EXPECT_EQ(service.phase(id), SessionPhase::kEvicted);
  EXPECT_EQ(service.resilience_stats().evict_lifetime, 1u);
}

TEST(Leases, EvictionDrainsQueuedInputsBeforeTerminal) {
  // Wedge the output ring so the session stalls with inputs queued, let
  // the idle lease lapse, then verify the drain contract: pushes are
  // refused (counted), queued inputs still convert, and only then does
  // the session reach kEvicted.  No accepted sample is dropped.
  ServiceOptions opt = small_service();
  opt.output_ring = 16;   // rounds to 16; two quanta wedge it
  opt.input_ring = 256;
  opt.work_quantum = 16;
  opt.idle_timeout_steps = 2;
  SrcService service(opt);
  const SessionId id = service.open({48'000, 48'000});
  const auto stim = dsp::make_noise_stimulus(64, 11);
  ASSERT_EQ(service.push(id, stim.data(), stim.size()), stim.size());
  // Convert until the output ring is full and the session stalls.
  for (int i = 0; i < 10; ++i) service.step();
  const SessionStats before = *service.stats(id);
  EXPECT_LT(before.converted_in, 64u);  // stalled mid-stream
  EXPECT_GT(before.converted_in, 0u);

  // Stall long enough for the idle lease: the session enters kEvicting
  // with inputs still queued.
  for (int i = 0; i < 4; ++i) service.step();
  EXPECT_EQ(service.phase(id), SessionPhase::kEvicting);

  // Pushes to an evicting session are refused and counted.
  const std::size_t accepted = service.push(id, stim.data(), 8);
  EXPECT_EQ(accepted, 0u);
  EXPECT_GE(service.resilience_stats().evict_push_rejected, 8u);

  // The client drains; the service keeps scheduling the evicting session
  // until its queue is empty, then retires it to kEvicted.
  std::vector<StereoSample> out(64);
  std::uint64_t pulled = 0;
  for (int i = 0; i < 50 && service.phase(id) != SessionPhase::kEvicted; ++i) {
    std::size_t got;
    while ((got = service.pull(id, out.data(), out.size())) > 0) pulled += got;
    service.step();
  }
  while (true) {
    const std::size_t got = service.pull(id, out.data(), out.size());
    if (got == 0) break;
    pulled += got;
  }
  EXPECT_EQ(service.phase(id), SessionPhase::kEvicted);
  const SessionStats* after = service.stats(id);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->accepted, 64u);
  EXPECT_EQ(after->converted_in, 64u);  // everything accepted was converted
  EXPECT_EQ(after->produced, pulled);   // everything produced was pulled
  EXPECT_EQ(service.resilience_stats().evict_drained, 1u);
}

TEST(Leases, SweepReclaimsEvictedSlotAndInvalidatesHandle) {
  ServiceOptions opt = small_service(1);
  opt.idle_timeout_steps = 1;
  SrcService service(opt);
  const SessionId id = service.open({48'000, 44'100});
  const auto stim = dsp::make_noise_stimulus(32, 5);
  ASSERT_EQ(service.push(id, stim.data(), stim.size()), stim.size());
  service.run_until_idle();
  for (int i = 0; i < 3; ++i) service.step();
  ASSERT_EQ(service.phase(id), SessionPhase::kEvicted);
  const std::uint64_t produced = service.stats(id)->produced;
  ASSERT_GT(produced, 0u);  // deliberately left unpulled

  EXPECT_EQ(service.sweep_evicted(), 1u);
  EXPECT_EQ(service.resilience_stats().evict_unpulled, produced);
  EXPECT_EQ(service.stats(id), nullptr);
  EXPECT_EQ(service.phase(id), SessionPhase::kUnknown);
  EXPECT_EQ(service.push(id, stim.data(), 4), 0u);

  // The slot is reusable; the stale handle never resolves to the tenant.
  const SessionId next = service.open({48'000, 48'000});
  ASSERT_TRUE(next.valid());
  EXPECT_EQ(next.slot, id.slot);
  EXPECT_NE(next.generation, id.generation);
  EXPECT_EQ(service.stats(id), nullptr);
  EXPECT_NE(service.stats(next), nullptr);
}

// --- admission control & shedding ---------------------------------------

TEST(Admission, RejectsUnsupportedRateWithReason) {
  SrcService service(small_service());
  const AdmitResult r = service.try_open({0, 48'000});
  EXPECT_EQ(r.status, AdmitStatus::kRateUnsupported);
  EXPECT_FALSE(r.id.valid());
  EXPECT_EQ(service.resilience_stats().admit_rate_unsupported, 1u);
  EXPECT_THROW((void)service.open({0, 48'000}), std::invalid_argument);
  EXPECT_STREQ(admit_status_name(r.status), "rate_unsupported");
}

TEST(Admission, FullTableRejectsAsOverloadedWithoutWatermark) {
  SrcService service(small_service(2));
  ASSERT_EQ(service.try_open({48'000, 48'000}).status, AdmitStatus::kAdmitted);
  ASSERT_EQ(service.try_open({48'000, 48'000}).status, AdmitStatus::kAdmitted);
  const AdmitResult r = service.try_open({48'000, 48'000});
  EXPECT_EQ(r.status, AdmitStatus::kOverloaded);
  EXPECT_FALSE(r.id.valid());
  EXPECT_EQ(service.resilience_stats().admit_overloaded, 1u);
  EXPECT_EQ(service.session_count(), 2u);
}

TEST(Admission, WatermarkShedsLowestProgressSession) {
  ServiceOptions opt = small_service(2);
  opt.shed_high_watermark = 2;
  SrcService service(opt);
  const SessionId lagging = service.open({48'000, 48'000});
  const SessionId leading = service.open({48'000, 48'000});
  const auto stim = dsp::make_noise_stimulus(32, 9);
  // leading converts its inputs; lagging queues 32 and never runs.
  ASSERT_EQ(service.push(leading, stim.data(), stim.size()), stim.size());
  service.run_until_idle();
  ASSERT_EQ(service.push(lagging, stim.data(), stim.size()), stim.size());

  const AdmitResult r = service.try_open({44'100, 48'000});
  EXPECT_EQ(r.status, AdmitStatus::kAdmitted);
  const ResilienceStats res = service.resilience_stats();
  EXPECT_EQ(res.shed_sessions, 1u);
  EXPECT_EQ(res.shed_dropped_inputs, 32u);  // lagging's queue, counted
  EXPECT_EQ(service.stats(lagging), nullptr);   // victim is gone
  EXPECT_NE(service.stats(leading), nullptr);   // survivor untouched
  EXPECT_EQ(service.session_count(), 2u);
}

// --- chaos plan ----------------------------------------------------------

TEST(ChaosPlan, DecisionHashIsPureAndSeedSensitive) {
  const std::uint64_t a = ChaosPlan::mix(1, 0, 10, 3);
  EXPECT_EQ(a, ChaosPlan::mix(1, 0, 10, 3));       // pure
  EXPECT_NE(a, ChaosPlan::mix(2, 0, 10, 3));       // seed matters
  EXPECT_NE(a, ChaosPlan::mix(1, 1, 10, 3));       // class salt matters
  EXPECT_NE(a, ChaosPlan::mix(1, 0, 11, 3));       // coordinates matter
  EXPECT_NE(a, ChaosPlan::mix(1, 0, 10, 4));
}

TEST(ChaosPlan, RatesBoundFiring) {
  ChaosOptions never;
  never.stall_per_dispatch = 0;
  ChaosOptions always;
  always.stall_per_dispatch = 1u << 16;  // 65536/65536
  const ChaosPlan off(never);
  const ChaosPlan on(always);
  for (std::uint64_t step = 0; step < 100; ++step) {
    EXPECT_FALSE(off.stall_lane(step, 0));
    EXPECT_TRUE(on.stall_lane(step, 0));
  }
  // Two plans with identical options agree everywhere.
  const ChaosPlan x{ChaosOptions{}};
  const ChaosPlan y{ChaosOptions{}};
  for (std::uint64_t r = 0; r < 200; ++r) {
    EXPECT_EQ(x.disconnect(r, 3), y.disconnect(r, 3));
    EXPECT_EQ(x.oversized_push(r, 3), y.oversized_push(r, 3));
    EXPECT_EQ(x.fail_allocation(r), y.fail_allocation(r));
  }
}

TEST(ChaosPlan, ClassNamesAreStable) {
  EXPECT_STREQ(chaos_class_name(ChaosClass::kLaneStall), "lane_stall");
  EXPECT_STREQ(chaos_class_name(ChaosClass::kAllocFail), "alloc_fail");
}

// Runs a fixed chaos workload (service-side injections only: stalls and
// allocation failures) and returns every session's output hash plus the
// fault census.
struct ChaosRun {
  std::vector<std::uint64_t> hashes;
  ResilienceStats census;
};

ChaosRun run_chaos_fixture(unsigned threads) {
  ChaosOptions copt;
  copt.seed = 42;
  copt.stall_per_dispatch = 1u << 13;  // ~12%: plenty of stalls
  copt.alloc_fail_per_open = 1u << 13;
  const ChaosPlan plan(copt);
  ServiceOptions opt;
  opt.threads = threads;
  opt.max_sessions = 8;
  opt.input_ring = 128;
  opt.output_ring = 512;
  opt.work_quantum = 32;
  SrcService service(opt);
  service.set_chaos(&plan);

  constexpr std::uint32_t kRates[][2] = {{44'100, 48'000}, {48'000, 44'100},
                                         {32'000, 48'000}, {48'000, 48'000}};
  std::vector<SessionId> ids;
  for (int i = 0; i < 8; ++i) {
    AdmitResult r{};
    for (int attempt = 0; attempt < 8; ++attempt) {
      r = service.try_open({kRates[i % 4][0], kRates[i % 4][1]});
      if (r.status != AdmitStatus::kAllocFailed) break;
    }
    EXPECT_EQ(r.status, AdmitStatus::kAdmitted);
    ids.push_back(r.id);
  }
  std::vector<StereoSample> out(256);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto stim = dsp::make_noise_stimulus(300, 100 + i);
    std::size_t fed = 0;
    while (fed < stim.size()) {
      fed += service.push(ids[i], stim.data() + fed, stim.size() - fed);
      service.step();
      while (service.pull(ids[i], out.data(), out.size()) > 0) {}
    }
  }
  service.run_until_idle();
  ChaosRun run;
  for (const SessionId id : ids) {
    while (service.pull(id, out.data(), out.size()) > 0) {}
    run.hashes.push_back(service.stats(id)->output_hash);
  }
  run.census = service.resilience_stats();
  return run;
}

TEST(ChaosDeterminism, FaultScheduleAndHashesAreThreadInvariant) {
  const ChaosRun base = run_chaos_fixture(1);
  EXPECT_GT(base.census.chaos_stalls, 0u);         // the plan actually fired
  EXPECT_GT(base.census.chaos_alloc_failures, 0u);
  for (unsigned threads : {2u, 4u}) {
    const ChaosRun other = run_chaos_fixture(threads);
    EXPECT_EQ(other.hashes, base.hashes) << "threads=" << threads;
    EXPECT_EQ(other.census.chaos_stalls, base.census.chaos_stalls);
    EXPECT_EQ(other.census.chaos_alloc_failures, base.census.chaos_alloc_failures);
  }
}

// --- snapshot / restore --------------------------------------------------

TEST(Snapshot, RoundTripContinuesBitIdentically) {
  ServiceOptions opt = small_service();
  opt.input_ring = 128;
  opt.output_ring = 128;
  opt.work_quantum = 32;

  const auto stim_a = dsp::make_noise_stimulus(200, 21);
  const auto stim_b = dsp::make_noise_stimulus(200, 22);

  // Golden: run halfway, snapshot mid-stream (rings non-empty), finish.
  SrcService golden(opt);
  const SessionId a = golden.open({44'100, 48'000});
  const SessionId b = golden.open({48'000, 44'100});
  ASSERT_EQ(golden.push(a, stim_a.data(), 100), 100u);
  ASSERT_EQ(golden.push(b, stim_b.data(), 100), 100u);
  golden.step();
  golden.step();
  const std::string image = snapshot_service(golden);
  ASSERT_GT(image.size(), 32u);
  EXPECT_EQ(golden.resilience_stats().snapshot_saves, 1u);

  const auto finish = [&](SrcService& s, std::vector<StereoSample>* out_a,
                          std::vector<StereoSample>* out_b) {
    std::vector<StereoSample> buf(256);
    std::size_t fed_a = 100, fed_b = 100;
    bool progress = true;
    while (progress) {
      progress = false;
      if (fed_a < 200) {
        fed_a += s.push(a, stim_a.data() + fed_a, 200 - fed_a);
        progress = true;
      }
      if (fed_b < 200) {
        fed_b += s.push(b, stim_b.data() + fed_b, 200 - fed_b);
        progress = true;
      }
      if (s.step() > 0) progress = true;
      std::size_t got;
      while ((got = s.pull(a, buf.data(), buf.size())) > 0) {
        out_a->insert(out_a->end(), buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(got));
        progress = true;
      }
      while ((got = s.pull(b, buf.data(), buf.size())) > 0) {
        out_b->insert(out_b->end(), buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(got));
        progress = true;
      }
    }
  };
  std::vector<StereoSample> gold_a, gold_b;
  finish(golden, &gold_a, &gold_b);

  // Restore at a different lane count and drive the identical schedule.
  ServiceOptions opt2 = opt;
  opt2.threads = 2;
  SrcService restored(opt2);
  std::string err;
  ASSERT_TRUE(restore_service(image, restored, &err)) << err;
  EXPECT_EQ(restored.resilience_stats().snapshot_restores, 1u);
  EXPECT_EQ(restored.phase(a), SessionPhase::kOpen);
  std::vector<StereoSample> cont_a, cont_b;
  finish(restored, &cont_a, &cont_b);

  ASSERT_EQ(cont_a.size(), gold_a.size());
  ASSERT_EQ(cont_b.size(), gold_b.size());
  EXPECT_EQ(std::memcmp(cont_a.data(), gold_a.data(),
                        gold_a.size() * sizeof(StereoSample)), 0);
  EXPECT_EQ(std::memcmp(cont_b.data(), gold_b.data(),
                        gold_b.size() * sizeof(StereoSample)), 0);
  EXPECT_EQ(restored.stats(a)->output_hash, golden.stats(a)->output_hash);
  EXPECT_EQ(restored.stats(b)->output_hash, golden.stats(b)->output_hash);
  EXPECT_EQ(restored.stats(a)->accepted, golden.stats(a)->accepted);
  EXPECT_EQ(restored.stats(b)->converted_in, golden.stats(b)->converted_in);
}

TEST(Snapshot, CorruptImagesAreRejectedWithDiagnostics) {
  SrcService source(small_service());
  const SessionId id = source.open({48'000, 48'000});
  const auto stim = dsp::make_noise_stimulus(50, 1);
  (void)source.push(id, stim.data(), stim.size());
  source.step();
  const std::string image = snapshot_service(source);

  const auto expect_rejected = [&](std::string img, const char* what) {
    SrcService victim(small_service());
    std::string err;
    EXPECT_FALSE(restore_service(img, victim, &err)) << what;
    EXPECT_FALSE(err.empty()) << what;
    // The failed restore left the service fresh and usable.
    EXPECT_TRUE(victim.open({48'000, 48'000}).valid()) << what;
  };
  expect_rejected(image.substr(0, 7), "shorter than the magic");
  expect_rejected(image.substr(0, 20), "header cut short");
  expect_rejected(image.substr(0, image.size() / 2), "payload truncated");
  std::string flipped = image;
  flipped[image.size() / 2] ^= 0x10;
  expect_rejected(flipped, "bit flip in the payload");
  std::string magic = image;
  magic[0] = 'Z';
  expect_rejected(magic, "bad magic");
  expect_rejected(image + "x", "trailing bytes");
  expect_rejected(std::string(), "empty image");
}

TEST(Snapshot, RestoreRequiresFreshService) {
  SrcService source(small_service());
  (void)source.open({48'000, 48'000});
  const std::string image = snapshot_service(source);

  SrcService used(small_service());
  (void)used.open({44'100, 48'000});
  std::string err;
  EXPECT_FALSE(restore_service(image, used, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Snapshot, VersionFieldIsChecked) {
  SrcService source(small_service());
  const std::string image = snapshot_service(source);
  std::string wrong = image;
  wrong[8] = static_cast<char>(0x7f);  // version u32 little-endian LSB
  SrcService victim(small_service());
  std::string err;
  EXPECT_FALSE(restore_service(wrong, victim, &err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;
}

// --- observability -------------------------------------------------------

TEST(ResilienceObs, CensusLandsInRegistryAndLedger) {
  ServiceOptions opt = small_service(2);
  opt.idle_timeout_steps = 1;
  SrcService service(opt);
  const SessionId id = service.open({48'000, 48'000});
  (void)id;
  for (int i = 0; i < 4; ++i) service.step();     // idle-evict it
  (void)service.try_open({0, 48'000});            // one rate rejection
  service.note_chaos(ChaosClass::kDisconnect);    // one driver-side fault
  const std::string image = snapshot_service(service);

  obs::Session session;
  service.record_into(session, "resilience_test");
  EXPECT_EQ(session.registry.counter("serve.evict.idle"), 1u);
  EXPECT_EQ(session.registry.counter("serve.evict.drained"), 1u);
  EXPECT_EQ(session.registry.counter("serve.admit.rate_unsupported"), 1u);
  EXPECT_EQ(session.registry.counter("serve.chaos.disconnects"), 1u);
  EXPECT_EQ(session.registry.counter("serve.snapshot.saves"), 1u);
  EXPECT_EQ(session.registry.counter("serve.snapshot.bytes_last"), image.size());

  bool found = false;
  for (const auto& e : session.ledger.entries()) {
    if (e.phase != "serve.resilience") continue;
    found = true;
    EXPECT_EQ(e.counter("evict_idle"), 1u);
    EXPECT_EQ(e.counter("chaos_disconnects"), 1u);
    EXPECT_EQ(e.counter("snapshot_saves"), 1u);
  }
  EXPECT_TRUE(found) << "no serve.resilience ledger entry";
}

}  // namespace
}  // namespace scflow::serve
