// Verifies the gate simulator's allocation-free steady state: once
// constructed and warmed up, set_input()/step()/output() must perform
// ZERO heap allocations — the persistent flop buffer, the dirty bitmaps
// and the preallocated scratch lists absorb every cycle.  A counting
// replacement of the global allocation functions enforces this directly,
// complementing the engine's own steady_state_allocs counter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "hdlsim/gate_sim.hpp"
#include "netlist/lower.hpp"
#include "netlist/opt.hpp"
#include "rtl/passes.hpp"
#include "rtl/src_design.hpp"

// AddressSanitizer interposes the allocator itself; replacing the global
// allocation functions underneath it breaks its bookkeeping, so the
// counting hooks (and the test) are compiled out under ASan.
#if defined(__SANITIZE_ADDRESS__)
#define SCFLOW_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SCFLOW_ASAN 1
#endif
#endif

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

#if !defined(SCFLOW_ASAN)
// Replaceable global allocation functions ([new.delete.single]); every
// vector growth or string build in the process bumps the counter.
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace scflow::hdlsim {
namespace {

void run_alloc_check(const GateSim::Options& opts) {
  rtl::PassOptions popt;
  const rtl::Design optimised = rtl::run_passes(rtl::build_src_design(rtl::rtl_opt_config()), popt);
  nl::Netlist gates = nl::lower_to_gates(optimised, {});
  gates = nl::optimize_gates(gates);
  nl::insert_scan_chain(gates);

  GateSim sim(gates, opts);
  // Resolve every port handle up front — name lookups build no strings
  // afterwards — and drive all inputs so no X lingers on control paths.
  const auto p_mode = sim.input_port("mode");
  const auto p_strobe = sim.input_port("in_strobe");
  const auto p_left = sim.input_port("in_left");
  const auto p_right = sim.input_port("in_right");
  const auto p_req = sim.input_port("out_req");
  const auto p_scan_in = sim.input_port("scan_in");
  const auto p_scan_en = sim.input_port("scan_enable");
  const auto p_valid = sim.output_port("out_valid");
  const auto p_out_l = sim.output_port("out_left");

  sim.set_input(p_mode, 0);
  sim.set_input(p_scan_in, 0);
  sim.set_input(p_scan_en, 0);
  sim.set_input(p_strobe, 0);
  sim.set_input(p_left, 0);
  sim.set_input(p_right, 0);
  sim.set_input(p_req, 0);

  // Warm-up: exercise flop commits, RAM writes and output reads so every
  // lazily-sized structure reaches its steady footprint.
  for (int i = 0; i < 300; ++i) {
    sim.set_input(p_strobe, i % 50 == 0 ? 1 : 0);
    sim.set_input(p_left, static_cast<std::uint64_t>(i * 37) & 0xffff);
    sim.set_input(p_right, static_cast<std::uint64_t>(i * 91) & 0xffff);
    sim.set_input(p_req, i % 46 == 0 ? 1 : 0);
    sim.step();
  }

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  std::uint64_t sink = 0;
  for (int i = 0; i < 500; ++i) {
    sim.set_input(p_strobe, i % 50 == 0 ? 1 : 0);
    sim.set_input(p_left, static_cast<std::uint64_t>(i * 131) & 0xffff);
    sim.set_input(p_right, static_cast<std::uint64_t>(i * 17) & 0xffff);
    sim.set_input(p_req, i % 46 == 3 ? 1 : 0);
    sim.step();
    sink += sim.output(p_valid);
    if (sim.output(p_valid) != 0) sink += sim.output(p_out_l);
  }
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "hot path allocated on the heap";
  EXPECT_EQ(sim.counters().steady_state_allocs, 0u);
  EXPECT_GT(sim.counters().evaluations, 0u);
  (void)sink;
}

TEST(GateSimAllocation, SteadyStateHotPathIsAllocationFree) {
#if defined(SCFLOW_ASAN)
  GTEST_SKIP() << "global operator new counting is incompatible with ASan";
#endif
  run_alloc_check(GateSim::Options{});
}

TEST(GateSimAllocation, WarmWorkerPoolStaysAllocationFree) {
#if defined(SCFLOW_ASAN)
  GTEST_SKIP() << "global operator new counting is incompatible with ASan";
#endif
  // The pool threads and the per-lane scratch are allocated at
  // construction; dispatching a sweep round must be a mutex/condvar
  // handshake only (raw function pointer + context, no std::function
  // boxing), so the threaded steady state allocates exactly as much as
  // the sequential one: nothing.
  GateSim::Options opts;
  opts.threads = 2;
  run_alloc_check(opts);
}

}  // namespace
}  // namespace scflow::hdlsim
